package repro_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro"
)

// TestSoakRandomConfigurations drives seeded-random combinations of
// algorithm, pattern, policy, queue capacity, engine and injection model
// through the public API and requires every run to complete without
// deadlock and without losing packets. It is the repository's fuzz-style
// robustness net; skipped under -short.
func TestSoakRandomConfigurations(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	algos := []string{
		"hypercube-adaptive:6", "hypercube-hung:6", "hypercube-ecube:5",
		"mesh-adaptive:6x6", "mesh-twophase:6x6", "mesh-xy:6x6",
		"shuffle-adaptive:5", "shuffle-static:5", "shuffle-eager:5",
		"torus-adaptive:5x5", "torus-adaptive:6x6", "ccc-adaptive:4",
		"mesh-adaptive:4x3x3", "torus-adaptive:4x3x3",
		"graph-adaptive:random-regular:n=32,k=4,seed=9",
		"graph-adaptive:dragonfly:a=3,g=7",
	}
	policies := []repro.Policy{
		repro.PolicyFirstFree, repro.PolicyRandom,
		repro.PolicyStaticFirst, repro.PolicyLastFree,
	}
	rng := rand.New(rand.NewSource(20260704))
	for i := 0; i < 60; i++ {
		spec := algos[rng.Intn(len(algos))]
		pol := policies[rng.Intn(len(policies))]
		cap := 2 + rng.Intn(6)
		perNode := 1 + rng.Intn(8)
		seed := rng.Int63()
		headOnly := rng.Intn(4) == 0
		atomic := rng.Intn(4) == 0
		name := fmt.Sprintf("%02d/%s/pol=%v/cap=%d/per=%d/head=%v/atomic=%v",
			i, spec, pol, cap, perNode, headOnly, atomic)
		t.Run(name, func(t *testing.T) {
			algo, err := repro.NewAlgorithm(spec)
			if err != nil {
				t.Fatal(err)
			}
			pat, err := repro.NewPattern("random", algo, seed)
			if err != nil {
				t.Fatal(err)
			}
			cfg := repro.Config{
				Algorithm: algo, QueueCap: cap, Policy: pol,
				Seed: seed, HeadOnly: headOnly,
			}
			src := repro.NewStaticTraffic(pat, algo, perNode, seed+1)
			want := int64(algo.Topology().Nodes() * perNode)
			kind := "buffered"
			if atomic {
				kind = "atomic"
			}
			eng, err := repro.NewSimulator(kind, cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run(context.Background(), src, repro.StaticPlan(3_000_000))
			if err != nil {
				t.Fatal(err)
			}
			m := res.Metrics
			if m.Delivered != want {
				t.Fatalf("delivered %d of %d", m.Delivered, want)
			}
			if m.MaxQueue > cap {
				t.Fatalf("queue occupancy %d exceeded capacity %d", m.MaxQueue, cap)
			}
		})
	}
}

// TestSoakWormhole does the same for the flit-level engine.
func TestSoakWormhole(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	routes := []string{
		"wh-hypercube-ecube:5", "wh-hypercube-adaptive:5",
		"wh-hypercube-nonminimal:5,2", "wh-torus-dor:5",
		"wh-torus-adaptive:5", "wh-torus-adaptive:4x3x3",
	}
	likes := map[string]string{
		"wh-hypercube-ecube:5":        "hypercube-adaptive:5",
		"wh-hypercube-adaptive:5":     "hypercube-adaptive:5",
		"wh-hypercube-nonminimal:5,2": "hypercube-adaptive:5",
		"wh-torus-dor:5":              "torus-adaptive:5x5",
		"wh-torus-adaptive:5":         "torus-adaptive:5x5",
		"wh-torus-adaptive:4x3x3":     "torus-adaptive:4x3x3",
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 24; i++ {
		spec := routes[rng.Intn(len(routes))]
		flits := 1 + rng.Intn(12)
		vcbuf := 1 + rng.Intn(3)
		perNode := 1 + rng.Intn(5)
		seed := rng.Int63()
		t.Run(fmt.Sprintf("%02d/%s/flits=%d/vcbuf=%d/per=%d", i, spec, flits, vcbuf, perNode), func(t *testing.T) {
			route, err := repro.NewWormholeRoute(spec)
			if err != nil {
				t.Fatal(err)
			}
			like, err := repro.NewAlgorithm(likes[spec])
			if err != nil {
				t.Fatal(err)
			}
			pat, err := repro.NewPattern("random", like, seed)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := repro.NewWormholeEngine(repro.WormholeConfig{
				Route: route, Flits: flits, VCBuf: vcbuf, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			m, err := eng.RunStatic(repro.NewStaticTraffic(pat, like, perNode, seed+1), 3_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if want := int64(route.Topology().Nodes() * perNode); m.Delivered != want {
				t.Fatalf("delivered %d of %d", m.Delivered, want)
			}
		})
	}
}
