package repro

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/wormhole"
)

// Wormhole re-exports: the flit-level simulator of internal/wormhole, the
// extension the paper points to for worm-hole routing ([GPS91]).
type (
	// WormholeRoute is a wormhole routing function: adaptive virtual
	// channels plus an acyclic escape sub-network.
	WormholeRoute = wormhole.Route
	// WormholeConfig configures the flit-level engine.
	WormholeConfig = wormhole.Config
	// WormholeEngine simulates worms of flits over virtual channels.
	WormholeEngine = wormhole.Engine
	// WormholeMetrics aggregates a wormhole run.
	WormholeMetrics = wormhole.Metrics
)

// WormholeRouteNames lists the specs accepted by NewWormholeRoute.
func WormholeRouteNames() []string {
	return []string{
		"wh-hypercube-ecube:<dims>",
		"wh-hypercube-adaptive:<dims>",
		"wh-hypercube-nonminimal:<dims>[,<misroutes>]",
		"wh-torus-dor:<side>[x<side>...]",
		"wh-torus-adaptive:<side>[x<side>...]",
	}
}

// NewWormholeRoute builds a wormhole routing function from a spec such as
// "wh-hypercube-adaptive:8" or "wh-torus-adaptive:16".
func NewWormholeRoute(spec string) (WormholeRoute, error) {
	name, arg, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("repro: wormhole route spec %q needs a size", spec)
	}
	shape := func() ([]int, error) {
		parts := strings.Split(arg, "x")
		out := make([]int, len(parts))
		for i, p := range parts {
			v, err := strconv.Atoi(p)
			if err != nil {
				return nil, fmt.Errorf("repro: bad shape %q in %q", arg, spec)
			}
			out[i] = v
		}
		return out, nil
	}
	switch name {
	case "wh-hypercube-ecube":
		v, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("repro: bad size in %q", spec)
		}
		return wormhole.NewHypercubeECube(v), nil
	case "wh-hypercube-adaptive":
		v, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("repro: bad size in %q", spec)
		}
		return wormhole.NewHypercubeAdaptive(v), nil
	case "wh-hypercube-nonminimal":
		dims, misStr, hasMis := strings.Cut(arg, ",")
		v, err := strconv.Atoi(dims)
		if err != nil {
			return nil, fmt.Errorf("repro: bad size in %q", spec)
		}
		mis := 2
		if hasMis {
			if mis, err = strconv.Atoi(misStr); err != nil || mis < 0 {
				return nil, fmt.Errorf("repro: bad misroute budget in %q", spec)
			}
		}
		return wormhole.NewHypercubeNonMinimal(v, mis), nil
	case "wh-torus-dor":
		sh, err := shape()
		if err != nil {
			return nil, err
		}
		if len(sh) == 1 {
			return wormhole.NewTorusDOR(sh[0]), nil
		}
		return wormhole.NewTorusDORShape(sh...), nil
	case "wh-torus-adaptive":
		sh, err := shape()
		if err != nil {
			return nil, err
		}
		if len(sh) == 1 {
			return wormhole.NewTorusAdaptive(sh[0]), nil
		}
		return wormhole.NewTorusAdaptiveShape(sh...), nil
	}
	return nil, fmt.Errorf("repro: unknown wormhole route %q (known: %s)",
		name, strings.Join(WormholeRouteNames(), ", "))
}

// NewWormholeEngine returns the flit-level wormhole simulator.
func NewWormholeEngine(cfg WormholeConfig) (*WormholeEngine, error) {
	return wormhole.NewEngine(cfg)
}

// VerifyWormholeDeadlockFree certifies a wormhole route: the escape
// sub-network alone must deliver every pair, and the (conservative) escape
// channel dependency graph must be acyclic — Duato's condition, the
// wormhole analogue of VerifyDeadlockFree. Exhaustive; use small instances.
func VerifyWormholeDeadlockFree(r WormholeRoute) error {
	return wormhole.Verify(r)
}
