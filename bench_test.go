// Benchmarks that regenerate the paper's evaluation. One benchmark per
// published table (Tables 1-12 of Section 7), plus the figure exports and
// the ablations called out in DESIGN.md.
//
// Each table benchmark runs one full row of the experiment per iteration
// and reports the paper's observables as custom metrics (Lavg, Lmax, Ir%),
// so `go test -bench .` prints measured values next to throughput. The
// benchmarks default to hypercube dimension 8 (256 nodes) to keep a full
// sweep at minutes on one core; set REPRO_BENCH_DIMS=10..14 to reproduce the
// published sizes (cmd/tables prints them against the paper's numbers).
package repro_test

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"testing"

	"repro"
	"repro/internal/bench"
)

// benchDims returns the hypercube dimension used by the table benchmarks.
func benchDims() int {
	if s := os.Getenv("REPRO_BENCH_DIMS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 2 && v <= 14 {
			return v
		}
	}
	return 8
}

// benchTable runs one row of a table experiment per iteration.
func benchTable(b *testing.B, id string) {
	b.Helper()
	ex, err := bench.FindTable(id)
	if err != nil {
		b.Fatal(err)
	}
	dims := benchDims()
	opt := bench.Options{Seed: 1, Warmup: 300, Measure: 1000}
	var row bench.Row
	for i := 0; i < b.N; i++ {
		row, err = ex.Run(dims, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.Lavg, "Lavg")
	b.ReportMetric(float64(row.Lmax), "Lmax")
	if ex.Injection == bench.Dynamic {
		b.ReportMetric(row.Ir, "Ir%")
	}
	b.ReportMetric(float64(row.Delivered)/float64(row.Cycles), "pkts/cycle")
}

// Tables 1-4: static injection, 1 packet per node.
func BenchmarkTable1RandomStatic1(b *testing.B)     { benchTable(b, "table1") }
func BenchmarkTable2ComplementStatic1(b *testing.B) { benchTable(b, "table2") }
func BenchmarkTable3TransposeStatic1(b *testing.B)  { benchTable(b, "table3") }
func BenchmarkTable4LeveledStatic1(b *testing.B)    { benchTable(b, "table4") }

// Tables 5-8: static injection, n packets per node.
func BenchmarkTable5RandomStaticN(b *testing.B)     { benchTable(b, "table5") }
func BenchmarkTable6ComplementStaticN(b *testing.B) { benchTable(b, "table6") }
func BenchmarkTable7TransposeStaticN(b *testing.B)  { benchTable(b, "table7") }
func BenchmarkTable8LeveledStaticN(b *testing.B)    { benchTable(b, "table8") }

// Tables 9-12: dynamic Bernoulli injection at lambda = 1.
func BenchmarkTable9RandomDynamic(b *testing.B)      { benchTable(b, "table9") }
func BenchmarkTable10ComplementDynamic(b *testing.B) { benchTable(b, "table10") }
func BenchmarkTable11TransposeDynamic(b *testing.B)  { benchTable(b, "table11") }
func BenchmarkTable12LeveledDynamic(b *testing.B)    { benchTable(b, "table12") }

// Figures 1-3: building and certifying the queue dependency graphs that the
// paper draws (hypercube, mesh, shuffle-exchange hung with dynamic links).
func benchFigure(b *testing.B, spec string) {
	b.Helper()
	algo, err := repro.NewAlgorithm(spec)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if err := repro.VerifyDeadlockFree(algo); err != nil {
			b.Fatal(err)
		}
		if err := repro.WriteQDG(io.Discard, algo); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1HypercubeQDG(b *testing.B) { benchFigure(b, "hypercube-adaptive:3") }
func BenchmarkFigure2MeshQDG(b *testing.B)      { benchFigure(b, "mesh-adaptive:3x3") }
func BenchmarkFigure3ShuffleQDG(b *testing.B)   { benchFigure(b, "shuffle-adaptive:3") }

// runOnce drives a static workload through the buffered engine and reports
// the paper's observables.
func runOnce(b *testing.B, algoSpec, patSpec string, perNode int, cfg repro.Config) {
	b.Helper()
	algo, err := repro.NewAlgorithm(algoSpec)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Algorithm = algo
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	eng, err := repro.NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	pat, err := repro.NewPattern(patSpec, algo, 5)
	if err != nil {
		b.Fatal(err)
	}
	var m repro.Metrics
	for i := 0; i < b.N; i++ {
		m, err = eng.RunStatic(repro.NewStaticTraffic(pat, algo, perNode, 9), 10_000_000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.AvgLatency(), "Lavg")
	b.ReportMetric(float64(m.LatencyMax), "Lmax")
	b.ReportMetric(float64(m.Cycles), "cycles")
}

// Ablation: dynamic links on/off and the oblivious comparator, under the
// adversarial complement permutation (DESIGN.md S8). The adaptive scheme
// should drain in a fraction of the hung scheme's cycles.
func BenchmarkAblationComplement(b *testing.B) {
	dims := benchDims()
	for _, variant := range []string{"hypercube-adaptive", "hypercube-hung", "hypercube-ecube"} {
		b.Run(variant, func(b *testing.B) {
			runOnce(b, fmt.Sprintf("%s:%d", variant, dims), "complement", dims, repro.Config{})
		})
	}
}

// Ablation: bounded-queue claim — queue capacity sweep under heavy random
// traffic.
func BenchmarkAblationQueueCap(b *testing.B) {
	dims := benchDims()
	for _, cap := range []int{2, 5, 16} {
		b.Run(fmt.Sprintf("cap%d", cap), func(b *testing.B) {
			runOnce(b, fmt.Sprintf("hypercube-adaptive:%d", dims), "random", dims, repro.Config{QueueCap: cap})
		})
	}
}

// Ablation: the paper leaves select unspecified; sensitivity to the
// selection policy.
func BenchmarkAblationPolicy(b *testing.B) {
	dims := benchDims()
	for _, pol := range []repro.Policy{repro.PolicyFirstFree, repro.PolicyRandom, repro.PolicyStaticFirst, repro.PolicyLastFree} {
		b.Run(pol.String(), func(b *testing.B) {
			runOnce(b, fmt.Sprintf("hypercube-adaptive:%d", dims), "transpose", dims, repro.Config{Policy: pol})
		})
	}
}

// Ablation: λ sweep for the dynamic model (the paper fixes λ=1); reports the
// saturation curve of the effective injection rate.
func BenchmarkAblationLambda(b *testing.B) {
	dims := benchDims()
	for _, lambda := range []float64{0.25, 0.5, 0.75, 1.0} {
		b.Run(fmt.Sprintf("lambda%.2f", lambda), func(b *testing.B) {
			algo, err := repro.NewAlgorithm(fmt.Sprintf("hypercube-adaptive:%d", dims))
			if err != nil {
				b.Fatal(err)
			}
			eng, err := repro.NewEngine(repro.Config{Algorithm: algo, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			pat, err := repro.NewPattern("random", algo, 5)
			if err != nil {
				b.Fatal(err)
			}
			var m repro.Metrics
			for i := 0; i < b.N; i++ {
				m, err = eng.RunDynamic(repro.NewDynamicTraffic(pat, algo, lambda, 9), 300, 1000)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(m.AvgLatency(), "Lavg")
			b.ReportMetric(100*m.InjectionRate(), "Ir%")
		})
	}
}

// Ablation: switching technique — store-and-forward (the paper) vs virtual
// cut-through [KK79], the hybrid its introduction names.
func BenchmarkAblationCutThrough(b *testing.B) {
	dims := benchDims()
	for _, vct := range []bool{false, true} {
		name := "store-and-forward"
		if vct {
			name = "cut-through"
		}
		b.Run(name, func(b *testing.B) {
			runOnce(b, fmt.Sprintf("hypercube-adaptive:%d", dims), "random", dims, repro.Config{CutThrough: vct})
		})
	}
}

// Ablation: head-of-line blocking — the strict one-head-move-per-queue
// reading of Route(q) vs the default per-buffer FIFO bypass.
func BenchmarkAblationHeadOnly(b *testing.B) {
	dims := benchDims()
	for _, head := range []bool{false, true} {
		name := "bypass"
		if head {
			name = "head-only"
		}
		b.Run(name, func(b *testing.B) {
			runOnce(b, fmt.Sprintf("hypercube-adaptive:%d", dims), "random", dims, repro.Config{HeadOnly: head})
		})
	}
}

// Mesh comparison at equal total buffering (Section 4's claim: two queues
// suffice and remain competitive).
func BenchmarkMeshTranspose(b *testing.B) {
	for _, v := range []struct {
		spec string
		cap  int
	}{
		{"mesh-adaptive:16x16", 10},
		{"mesh-twophase:16x16", 10},
		{"mesh-xy:16x16", 5},
	} {
		b.Run(v.spec, func(b *testing.B) {
			runOnce(b, v.spec, "mesh-transpose", 16, repro.Config{QueueCap: v.cap})
		})
	}
}

// Shuffle-exchange: the Section 5 scheme against its static ablation, at
// the paper's queue size and at the bubble guard's minimum.
func BenchmarkShuffleExchange(b *testing.B) {
	for _, spec := range []string{"shuffle-adaptive:8", "shuffle-static:8"} {
		for _, cap := range []int{2, 5} {
			b.Run(fmt.Sprintf("%s/cap%d", spec, cap), func(b *testing.B) {
				runOnce(b, spec, "random", 4, repro.Config{QueueCap: cap})
			})
		}
	}
}

// Torus: the Section 4 extension, random traffic.
func BenchmarkTorusRandom(b *testing.B) {
	runOnce(b, "torus-adaptive:8x8", "random", 8, repro.Config{})
}

// Wormhole extension benches: the [GPS91] direction (flit-level engine).
// Adaptive-with-escape vs dateline dimension-order on the torus, and
// adaptive vs oblivious e-cube on the hypercube, under their adversarial
// permutations.
func BenchmarkWormhole(b *testing.B) {
	cases := []struct {
		spec, algoLike, pattern string
		perNode                 int
	}{
		{"wh-torus-adaptive:12", "torus-adaptive:12x12", "mesh-transpose", 6},
		{"wh-torus-dor:12", "torus-adaptive:12x12", "mesh-transpose", 6},
		{"wh-hypercube-adaptive:8", "hypercube-adaptive:8", "transpose", 8},
		{"wh-hypercube-ecube:8", "hypercube-adaptive:8", "transpose", 8},
	}
	for _, c := range cases {
		b.Run(c.spec, func(b *testing.B) {
			route, err := repro.NewWormholeRoute(c.spec)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := repro.NewWormholeEngine(repro.WormholeConfig{Route: route, Flits: 8, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			algoLike, err := repro.NewAlgorithm(c.algoLike)
			if err != nil {
				b.Fatal(err)
			}
			pat, err := repro.NewPattern(c.pattern, algoLike, 5)
			if err != nil {
				b.Fatal(err)
			}
			var m repro.WormholeMetrics
			for i := 0; i < b.N; i++ {
				m, err = eng.RunStatic(repro.NewStaticTraffic(pat, algoLike, c.perNode, 9), 5_000_000)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(m.AvgLatency(), "Lavg")
			b.ReportMetric(m.AvgHeaderLatency(), "Lheader")
			b.ReportMetric(float64(m.Cycles), "cycles")
		})
	}
}

// CCC: the "other networks" extension, adaptive vs static under random load.
func BenchmarkCCC(b *testing.B) {
	for _, spec := range []string{"ccc-adaptive:6", "ccc-static:6"} {
		b.Run(spec, func(b *testing.B) {
			runOnce(b, spec, "random", 6, repro.Config{})
		})
	}
}

// Engine micro-benchmarks: raw simulation speed (node-cycles per second) of
// the two engines on a loaded 1K-node hypercube.
func BenchmarkEngineBuffered(b *testing.B) {
	algo, err := repro.NewAlgorithm("hypercube-adaptive:10")
	if err != nil {
		b.Fatal(err)
	}
	eng, err := repro.NewEngine(repro.Config{Algorithm: algo, Seed: 1, DisableInvariantChecks: true})
	if err != nil {
		b.Fatal(err)
	}
	pat, _ := repro.NewPattern("random", algo, 5)
	b.ResetTimer()
	var m repro.Metrics
	for i := 0; i < b.N; i++ {
		m, err = eng.RunDynamic(repro.NewDynamicTraffic(pat, algo, 1.0, 9), 0, 200)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.Cycles*int64(algo.Topology().Nodes()))*float64(b.N)/b.Elapsed().Seconds(), "node-cycles/s")
}

func BenchmarkEngineAtomic(b *testing.B) {
	algo, err := repro.NewAlgorithm("hypercube-adaptive:10")
	if err != nil {
		b.Fatal(err)
	}
	eng, err := repro.NewAtomicEngine(repro.Config{Algorithm: algo, Seed: 1, DisableInvariantChecks: true})
	if err != nil {
		b.Fatal(err)
	}
	pat, _ := repro.NewPattern("random", algo, 5)
	b.ResetTimer()
	var m repro.Metrics
	for i := 0; i < b.N; i++ {
		m, err = eng.RunDynamic(repro.NewDynamicTraffic(pat, algo, 1.0, 9), 0, 200)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.Cycles*int64(algo.Topology().Nodes()))*float64(b.N)/b.Elapsed().Seconds(), "node-cycles/s")
}
