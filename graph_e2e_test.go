package repro_test

import (
	"context"
	"fmt"
	"testing"

	"repro"
)

// TestGeneratedTopologiesEndToEnd sweeps a seed grid of generated
// networks and requires, for every instance: the derived hop-layered
// queue order passes the mechanical QDG acyclicity check, both engines
// deliver every injected packet, and the buffered engine's metrics are
// bit-identical between one and two workers (the determinism contract
// the closed-form topologies already honour).
func TestGeneratedTopologiesEndToEnd(t *testing.T) {
	var gens []string
	for seed := int64(1); seed <= 4; seed++ {
		gens = append(gens, fmt.Sprintf("random-regular:n=24,k=3,seed=%d", seed))
		gens = append(gens, fmt.Sprintf("random-regular:n=32,k=4,seed=%d", seed))
	}
	gens = append(gens,
		"dragonfly:a=2,g=5", "dragonfly:a=3,g=7", "dragonfly:a=4,g=9",
		"hyperx:3x3", "fat-tree:leaves=6,spines=3",
	)
	for _, gen := range gens {
		t.Run(gen, func(t *testing.T) {
			algo, err := repro.NewAlgorithm("graph-adaptive:" + gen)
			if err != nil {
				t.Fatal(err)
			}
			if err := repro.VerifyDeadlockFree(algo); err != nil {
				t.Fatalf("derived queue order is not deadlock-free: %v", err)
			}
			pat, err := repro.NewPattern("random", algo, 11)
			if err != nil {
				t.Fatal(err)
			}
			want := int64(algo.Topology().Nodes() * 3)
			run := func(kind string, workers int, scanPath bool) repro.Metrics {
				t.Helper()
				eng, err := repro.NewSimulator(kind, repro.Config{
					Algorithm: algo, Seed: 5, Workers: workers,
					DisableRouteTable: scanPath,
				})
				if err != nil {
					t.Fatal(err)
				}
				src := repro.NewStaticTraffic(pat, algo, 3, 13)
				res, err := eng.Run(context.Background(), src, repro.StaticPlan(1_000_000))
				if err != nil {
					t.Fatal(err)
				}
				return res.Metrics
			}
			// The default path routes through the compiled next-hop tables;
			// workers 1 vs 2 must stay bit-identical on it, and the
			// uncompiled scan path (Config.DisableRouteTable) must produce
			// the same metrics bit for bit.
			m1 := run("buffered", 1, false)
			if m1.Delivered != want {
				t.Fatalf("buffered delivered %d of %d", m1.Delivered, want)
			}
			if m2 := run("buffered", 2, false); m2 != m1 {
				t.Fatalf("metrics depend on worker count:\n 1: %+v\n 2: %+v", m1, m2)
			}
			if ms := run("buffered", 1, true); ms != m1 {
				t.Fatalf("table and scan paths disagree:\n table: %+v\n scan:  %+v", m1, ms)
			}
			ma := run("atomic", 1, false)
			if ma.Delivered != want {
				t.Fatalf("atomic delivered %d of %d", ma.Delivered, want)
			}
			if mas := run("atomic", 1, true); mas != ma {
				t.Fatalf("atomic table and scan paths disagree:\n table: %+v\n scan:  %+v", ma, mas)
			}
		})
	}
}
