package repro_test

import (
	"context"
	"strings"
	"testing"

	"repro"
)

// TestNewAlgorithmRejectsNonsense checks that malformed or out-of-range
// sizes come back as errors, never panics, for every algorithm family.
func TestNewAlgorithmRejectsNonsense(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring of the error
	}{
		{"hypercube-adaptive:-1", "out of range"},
		{"hypercube-adaptive:0", "out of range"},
		{"hypercube-adaptive:31", "out of range"},
		{"hypercube-hung:-3", "out of range"},
		{"hypercube-ecube:99", "out of range"},
		{"mesh-adaptive:0x5", "must be >= 1"},
		{"mesh-adaptive:-2x4", "must be >= 1"},
		{"mesh-adaptive:5x", "bad shape"},
		{"mesh-adaptive:", "bad shape"},
		{"mesh-twophase:4x0", "must be >= 1"},
		{"mesh-xy:0", "must be >= 1"},
		{"mesh-adaptive:100000x100000", "nodes"},
		{"shuffle-adaptive:0", "out of range"},
		{"shuffle-adaptive:27", "out of range"},
		{"shuffle-static:-1", "out of range"},
		{"shuffle-eager:40", "out of range"},
		{"ccc-adaptive:1", "out of range"},
		{"ccc-adaptive:17", "out of range"},
		{"ccc-static:0", "out of range"},
		{"torus-adaptive:2x4", "must be >= 3"},
		{"torus-adaptive:4x2", "must be >= 3"},
		{"torus-adaptive:0x0", "must be >= 3"},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("NewAlgorithm(%q) panicked: %v", c.spec, r)
				}
			}()
			_, err := repro.NewAlgorithm(c.spec)
			if err == nil {
				t.Errorf("NewAlgorithm(%q) accepted", c.spec)
				return
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("NewAlgorithm(%q) error %q does not mention %q", c.spec, err, c.want)
			}
		}()
	}
}

func TestNewPatternRejectsNonsense(t *testing.T) {
	cube, err := repro.NewAlgorithm("hypercube-adaptive:4")
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []string{"hotspot:-0.5", "hotspot:NaN", "hotspot:x", "nope", ""} {
		if _, err := repro.NewPattern(spec, cube, 1); err == nil {
			t.Errorf("NewPattern(%q) accepted", spec)
		}
	}
}

// TestEngineOptions checks that the functional-option constructors build
// the same engines as the raw Config form.
func TestEngineOptions(t *testing.T) {
	algo, err := repro.NewAlgorithm("hypercube-adaptive:5")
	if err != nil {
		t.Fatal(err)
	}
	pat, err := repro.NewPattern("random", algo, 3)
	if err != nil {
		t.Fatal(err)
	}

	lat := repro.NewLatencyObserver()
	eng, err := repro.NewEngineOpts(algo,
		repro.WithQueueCap(5),
		repro.WithPolicy(repro.PolicyRandom),
		repro.WithSeed(11),
		repro.WithWorkers(2),
		repro.WithObserver(lat),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), repro.NewStaticTraffic(pat, algo, 2, 7), repro.StaticPlan(100000))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Observed {
		t.Fatal("observer attached but RunResult.Observed is false")
	}
	if lat.Count() != res.Metrics.Delivered {
		t.Fatalf("latency observer saw %d deliveries, engine %d", lat.Count(), res.Metrics.Delivered)
	}

	// Raw Config form must agree exactly.
	ref, err := repro.NewEngine(repro.Config{
		Algorithm: algo, QueueCap: 5, Policy: repro.PolicyRandom, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ref.RunStatic(repro.NewStaticTraffic(pat, algo, 2, 7), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics != m2 {
		t.Errorf("options engine metrics differ from Config engine:\n%+v\n%+v", res.Metrics, m2)
	}

	// Atomic engine through options, with a composed observer.
	smp := repro.NewSampler(50)
	ae, err := repro.NewAtomicEngineOpts(algo,
		repro.WithSeed(11),
		repro.WithObserver(repro.MultiObserver(nil, smp)),
		repro.WithDeadlockWindow(500),
	)
	if err != nil {
		t.Fatal(err)
	}
	ares, err := ae.Run(context.Background(), repro.NewDynamicTraffic(pat, algo, 0.3, 5), repro.DynamicPlan(50, 150))
	if err != nil {
		t.Fatal(err)
	}
	if len(smp.Samples) == 0 {
		t.Fatal("sampler recorded nothing")
	}
	if got := ares.Snapshot.Counter(repro.CDelivered); got != ares.Metrics.Delivered {
		t.Errorf("snapshot delivered %d, metrics %d", got, ares.Metrics.Delivered)
	}
}

// TestWithMetricsNoObserver checks the Metrics-only path: no observer, but
// the RunResult still carries the final snapshot and Obs() is live.
func TestWithMetricsNoObserver(t *testing.T) {
	algo, err := repro.NewAlgorithm("mesh-adaptive:4x4")
	if err != nil {
		t.Fatal(err)
	}
	pat, err := repro.NewPattern("random", algo, 3)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := repro.NewEngineOpts(algo, repro.WithSeed(7), repro.WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if eng.Obs() == nil {
		t.Fatal("WithMetrics must enable the metrics core")
	}
	res, err := eng.Run(context.Background(), repro.NewStaticTraffic(pat, algo, 2, 5), repro.StaticPlan(100000))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Observed || res.Snapshot.Counter(repro.CDelivered) != res.Metrics.Delivered {
		t.Errorf("metrics-only run: observed=%v snapshot delivered=%d metrics=%d",
			res.Observed, res.Snapshot.Counter(repro.CDelivered), res.Metrics.Delivered)
	}
	if got := eng.Obs().Latest(); got.Counter(repro.CDelivered) != res.Metrics.Delivered {
		t.Errorf("Obs().Latest() delivered = %d, want %d", got.Counter(repro.CDelivered), res.Metrics.Delivered)
	}
}
