package core

import (
	"fmt"
	"math/bits"

	"repro/internal/topology"
)

// Queue classes of the two-phase hypercube and mesh schemes.
const (
	ClassA QueueClass = 0 // phase A: descending through the hung network
	ClassB QueueClass = 1 // phase B: ascending to the destination
)

// HypercubeAdaptive is the fully-adaptive minimal deadlock-free hypercube
// algorithm of Section 3. The cube is hung from node 0...0; phase A packets
// (queue q_A) correct incorrect 0s into 1s through static links and may
// additionally correct incorrect 1s into 0s through dynamic links whenever
// space is found; once no incorrect 0 remains a packet changes to phase B
// (queue q_B) and corrects the remaining incorrect 1s through static links.
// Two central queues per node, plus injection and delivery.
type HypercubeAdaptive struct {
	cube *topology.Hypercube
}

// NewHypercubeAdaptive returns the Section 3 algorithm on an n-dimensional
// hypercube.
func NewHypercubeAdaptive(dims int) *HypercubeAdaptive {
	return &HypercubeAdaptive{cube: topology.NewHypercube(dims)}
}

func (h *HypercubeAdaptive) Name() string                { return "hypercube-adaptive" }
func (h *HypercubeAdaptive) Topology() topology.Topology { return h.cube }
func (h *HypercubeAdaptive) NumClasses() int             { return 2 }
func (h *HypercubeAdaptive) ClassName(c QueueClass) string {
	if c == ClassA {
		return "qA"
	}
	return "qB"
}

func (h *HypercubeAdaptive) Props() Props {
	return Props{Minimal: true, FullyAdaptive: true}
}

func (h *HypercubeAdaptive) MaxHops(src, dst int32) int {
	return h.cube.Distance(int(src), int(dst))
}

func (h *HypercubeAdaptive) Inject(src, dst int32) (QueueClass, uint32) {
	// R~(i_s, d_m): q_A if some incorrect bit of s is 0, else q_B.
	if incorrectZeros(src, dst) != 0 {
		return ClassA, 0
	}
	return ClassB, 0
}

// PortMask implements the PortMaskRouter fast path. Phase B is one static
// q_B move per incorrect 1; phase A is one static move per incorrect 0
// (into q_B when it is the last one, q_A otherwise — all zeros share a
// target, so the two cases never mix) plus one dynamic q_A move per
// incorrect 1. Only the internal phase change (no incorrect 0 left in q_A,
// unreachable in normal operation) falls back to Candidates.
func (h *HypercubeAdaptive) PortMask(node int32, class QueueClass, work uint32, dst int32, pm *PortMasks) bool {
	if node == dst {
		return false
	}
	switch class {
	case ClassB:
		*pm = PortMasks{}
		pm.Static[ClassB] = incorrectOnes(node, dst)
		return true
	case ClassA:
		zeros := incorrectZeros(node, dst)
		if zeros == 0 {
			return false
		}
		*pm = PortMasks{Dyn: incorrectOnes(node, dst), DynClass: ClassA}
		if zeros&(zeros-1) == 0 {
			pm.Static[ClassB] = zeros // the last 0->1 correction enters q_B
		} else {
			pm.Static[ClassA] = zeros
		}
		return true
	}
	return false
}

// incorrectZeros returns the mask of dimensions where cur has a 0 that must
// become a 1 to reach dst.
func incorrectZeros(cur, dst int32) uint32 { return uint32(^cur & dst) }

// incorrectOnes returns the mask of dimensions where cur has a 1 that must
// become a 0 to reach dst.
func incorrectOnes(cur, dst int32) uint32 { return uint32(cur &^ dst) }

func (h *HypercubeAdaptive) Candidates(node int32, class QueueClass, work uint32, dst int32, buf []Move) []Move {
	if node == dst {
		return append(buf, Move{Node: node, Port: PortInternal, Kind: Static, MinFree: 1, Deliver: true})
	}
	switch class {
	case ClassA:
		zeros := incorrectZeros(node, dst)
		if zeros == 0 {
			// Unreachable in normal operation (a packet performing its last
			// 0->1 correction enters q_B directly on arrival), but kept as
			// the Section 4 routing function's internal phase change for
			// robustness.
			return append(buf, Move{Node: node, Port: PortInternal, Class: ClassB, Kind: Static, MinFree: 1})
		}
		// R~(q_A,n, d_m) = { q_A at E^t(n) : n_t != m_t }. Corrections 0->1
		// descend the hung cube (static); corrections 1->0 are the added
		// dynamic links. Emitted in low-to-high dimension order. "After
		// performing the last 0 to 1 correction, the message will enter the
		// q_B queue of the corresponding node" (Section 3): a move that
		// removes the last incorrect 0 targets q_B directly.
		diff := uint32(node ^ dst)
		for d := diff; d != 0; d &= d - 1 {
			t := bits.TrailingZeros32(d)
			kind := Static
			target := ClassA
			if node&(1<<t) != 0 {
				kind = Dynamic
			} else if zeros == 1<<t {
				target = ClassB
			}
			buf = append(buf, Move{
				Node: node ^ 1<<t, Port: int16(t), Class: target, Kind: kind, MinFree: 1,
			})
		}
		return buf
	case ClassB:
		// Only incorrect 1s remain; ascend toward the destination.
		for d := incorrectOnes(node, dst); d != 0; d &= d - 1 {
			t := bits.TrailingZeros32(d)
			buf = append(buf, Move{
				Node: node ^ 1<<t, Port: int16(t), Class: ClassB, Kind: Static, MinFree: 1,
			})
		}
		return buf
	}
	panic(fmt.Sprintf("hypercube-adaptive: invalid queue class %d", class))
}

// HypercubeHung is the underlying acyclic scheme of Section 3 *without*
// dynamic links (the routing obtained by hanging the cube from 0...0, as in
// [BGSS89]/[Kon90]): phase A corrects only incorrect 0s, so adaptivity is
// limited and traffic concentrates near node 1...1. It is the paper's
// implicit ablation baseline for the dynamic links.
type HypercubeHung struct {
	cube *topology.Hypercube
}

// NewHypercubeHung returns the hung-DAG hypercube scheme without dynamic links.
func NewHypercubeHung(dims int) *HypercubeHung {
	return &HypercubeHung{cube: topology.NewHypercube(dims)}
}

func (h *HypercubeHung) Name() string                { return "hypercube-hung" }
func (h *HypercubeHung) Topology() topology.Topology { return h.cube }
func (h *HypercubeHung) NumClasses() int             { return 2 }
func (h *HypercubeHung) ClassName(c QueueClass) string {
	if c == ClassA {
		return "qA"
	}
	return "qB"
}

func (h *HypercubeHung) Props() Props { return Props{Minimal: true} }

func (h *HypercubeHung) MaxHops(src, dst int32) int {
	return h.cube.Distance(int(src), int(dst))
}

func (h *HypercubeHung) Inject(src, dst int32) (QueueClass, uint32) {
	if incorrectZeros(src, dst) != 0 {
		return ClassA, 0
	}
	return ClassB, 0
}

// PortMask is the adaptive hypercube's mask without the dynamic links,
// mirroring the Candidates ablation.
func (h *HypercubeHung) PortMask(node int32, class QueueClass, work uint32, dst int32, pm *PortMasks) bool {
	if node == dst {
		return false
	}
	switch class {
	case ClassB:
		*pm = PortMasks{}
		pm.Static[ClassB] = incorrectOnes(node, dst)
		return true
	case ClassA:
		zeros := incorrectZeros(node, dst)
		if zeros == 0 {
			return false
		}
		*pm = PortMasks{}
		if zeros&(zeros-1) == 0 {
			pm.Static[ClassB] = zeros
		} else {
			pm.Static[ClassA] = zeros
		}
		return true
	}
	return false
}

func (h *HypercubeHung) Candidates(node int32, class QueueClass, work uint32, dst int32, buf []Move) []Move {
	if node == dst {
		return append(buf, Move{Node: node, Port: PortInternal, Kind: Static, MinFree: 1, Deliver: true})
	}
	switch class {
	case ClassA:
		zeros := incorrectZeros(node, dst)
		if zeros == 0 {
			// Unreachable fallback; see HypercubeAdaptive.Candidates.
			return append(buf, Move{Node: node, Port: PortInternal, Class: ClassB, Kind: Static, MinFree: 1})
		}
		for d := zeros; d != 0; d &= d - 1 {
			t := bits.TrailingZeros32(d)
			target := ClassA
			if zeros == 1<<t {
				target = ClassB // last 0->1 correction: enter q_B on arrival
			}
			buf = append(buf, Move{Node: node ^ 1<<t, Port: int16(t), Class: target, Kind: Static, MinFree: 1})
		}
		return buf
	case ClassB:
		for d := incorrectOnes(node, dst); d != 0; d &= d - 1 {
			t := bits.TrailingZeros32(d)
			buf = append(buf, Move{Node: node ^ 1<<t, Port: int16(t), Class: ClassB, Kind: Static, MinFree: 1})
		}
		return buf
	}
	panic(fmt.Sprintf("hypercube-hung: invalid queue class %d", class))
}

// HypercubeECube is the oblivious dimension-order baseline: every packet
// corrects its incorrect dimensions from low to high, with no adaptivity at
// all. Store-and-forward dimension-order routing with a single central queue
// can deadlock, so the classic hop-ordered buffer scheme ([Gun81]/[MS80]
// structured buffer pool) is used: a packet that has taken h hops occupies
// queue class h, and every hop moves it to class h+1 — the queue dependency
// graph is trivially acyclic, at the cost of dims+1 queues per node. This is
// exactly the "excessive amount of hardware" trade-off the paper criticizes,
// which makes it the fair oblivious comparator.
type HypercubeECube struct {
	cube *topology.Hypercube
}

// NewHypercubeECube returns the oblivious dimension-order hypercube baseline.
func NewHypercubeECube(dims int) *HypercubeECube {
	return &HypercubeECube{cube: topology.NewHypercube(dims)}
}

func (h *HypercubeECube) Name() string                { return "hypercube-ecube" }
func (h *HypercubeECube) Topology() topology.Topology { return h.cube }
func (h *HypercubeECube) NumClasses() int             { return h.cube.Dims() + 1 }
func (h *HypercubeECube) ClassName(c QueueClass) string {
	return fmt.Sprintf("hop%d", c)
}

func (h *HypercubeECube) Props() Props { return Props{Minimal: true} }

func (h *HypercubeECube) MaxHops(src, dst int32) int {
	return h.cube.Distance(int(src), int(dst))
}

func (h *HypercubeECube) Inject(src, dst int32) (QueueClass, uint32) {
	return 0, 0
}

func (h *HypercubeECube) Candidates(node int32, class QueueClass, work uint32, dst int32, buf []Move) []Move {
	if node == dst {
		return append(buf, Move{Node: node, Port: PortInternal, Kind: Static, MinFree: 1, Deliver: true})
	}
	t := bits.TrailingZeros32(uint32(node ^ dst)) // lowest incorrect dimension
	return append(buf, Move{
		Node: node ^ 1<<t, Port: int16(t), Class: class + 1, Kind: Static, MinFree: 1,
	})
}
