package core

import (
	"fmt"

	"repro/internal/topology"
)

// GraphAdaptive routes minimally and fully adaptively over an arbitrary
// strongly-connected digraph, with deadlock freedom from the hop-ordered
// structured buffer pool ([Gun81]/[MS80], the same scheme HypercubeECube
// uses): a packet that has taken h hops occupies queue class h and every
// hop moves it to class h+1, so every static transition strictly increases
// the class and the queue dependency graph is acyclic by construction —
// for *any* topology, which is what makes the scheme derivable
// mechanically from generated adjacency. Unlike the e-cube baseline the
// full candidate set is offered at every step: all ports whose endpoint is
// one hop closer to the destination, i.e. the entire minimal next-hop set,
// so the algorithm is fully adaptive in the paper's sense. The cost is the
// paper's "excessive hardware" trade-off, diameter+1 queues per node —
// acceptable here because generated irregular networks (random-regular,
// dragonfly, fat-tree, hyperX) have tiny diameters by design.
//
// All candidates are static, so every state is already maximally adaptive;
// there is no room for dynamic links without widening the per-hop class
// fan-out beyond what PortMasks can encode.
type GraphAdaptive struct {
	t      topology.Topology
	diam   int
	maskOK bool // Ports() fits the 32-bit port masks
}

// NewGraphAdaptive builds the generic minimal-adaptive algorithm over any
// strongly-connected topology. The topology must report a finite Distance
// for every ordered pair (generated *topology.Graph instances guarantee
// this at construction) and its diameter must fit the 8-bit queue-class
// space.
func NewGraphAdaptive(t topology.Topology) (*GraphAdaptive, error) {
	if t == nil {
		return nil, fmt.Errorf("core: graph-adaptive: nil topology")
	}
	a := &GraphAdaptive{t: t, maskOK: t.Ports() <= 32}
	if g, ok := t.(*topology.Graph); ok {
		a.diam = g.Diameter()
	} else {
		n := t.Nodes()
		if n > topology.MaxGraphNodes {
			return nil, fmt.Errorf("core: graph-adaptive: %s has %d nodes, above the %d-node cap for diameter scanning", t.Name(), n, topology.MaxGraphNodes)
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				d := t.Distance(u, v)
				if d < 0 {
					return nil, fmt.Errorf("core: graph-adaptive: %s is not strongly connected: no path %d -> %d", t.Name(), u, v)
				}
				if d > a.diam {
					a.diam = d
				}
			}
		}
	}
	if a.diam > 254 {
		return nil, fmt.Errorf("core: graph-adaptive: %s has diameter %d, above the 254 hop-class limit", t.Name(), a.diam)
	}
	return a, nil
}

func (a *GraphAdaptive) Name() string                { return "graph-adaptive" }
func (a *GraphAdaptive) Topology() topology.Topology { return a.t }
func (a *GraphAdaptive) NumClasses() int             { return a.diam + 1 }
func (a *GraphAdaptive) ClassName(c QueueClass) string {
	return fmt.Sprintf("hop%d", c)
}

func (a *GraphAdaptive) Props() Props {
	return Props{Minimal: true, FullyAdaptive: true}
}

func (a *GraphAdaptive) MaxHops(src, dst int32) int {
	return a.t.Distance(int(src), int(dst))
}

func (a *GraphAdaptive) Inject(src, dst int32) (QueueClass, uint32) {
	return 0, 0
}

func (a *GraphAdaptive) Candidates(node int32, class QueueClass, work uint32, dst int32, buf []Move) []Move {
	if node == dst {
		return append(buf, Move{Node: node, Port: PortInternal, Kind: Static, MinFree: 1, Deliver: true})
	}
	remain := a.t.Distance(int(node), int(dst))
	for p := 0; p < a.t.Ports(); p++ {
		v := a.t.Neighbor(int(node), p)
		if v == topology.None || a.t.Distance(v, int(dst)) != remain-1 {
			continue
		}
		buf = append(buf, Move{
			Node: int32(v), Port: int16(p), Class: class + 1, Kind: Static, MinFree: 1,
		})
	}
	return buf
}

// PortMask implements PortMaskRouter with the per-port encoding: every
// state except delivery is mask-shaped (uncredited static moves only, one
// shared target class per hop layer).
func (a *GraphAdaptive) PortMask(node int32, class QueueClass, work uint32, dst int32, pm *PortMasks) bool {
	if !a.maskOK || node == dst {
		return false
	}
	*pm = PortMasks{PerPort: true}
	remain := a.t.Distance(int(node), int(dst))
	for p := 0; p < a.t.Ports(); p++ {
		v := a.t.Neighbor(int(node), p)
		if v == topology.None || a.t.Distance(v, int(dst)) != remain-1 {
			continue
		}
		pm.StaticMask |= 1 << uint(p)
		pm.PortClass[p] = class + 1
	}
	return true
}
