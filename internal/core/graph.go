package core

import (
	"fmt"
	"math/bits"

	"repro/internal/topology"
)

// GraphAdaptive routes minimally and fully adaptively over an arbitrary
// strongly-connected digraph, with deadlock freedom from the hop-ordered
// structured buffer pool ([Gun81]/[MS80], the same scheme HypercubeECube
// uses): a packet that has taken h hops occupies queue class h and every
// hop moves it to class h+1, so every static transition strictly increases
// the class and the queue dependency graph is acyclic by construction —
// for *any* topology, which is what makes the scheme derivable
// mechanically from generated adjacency. Unlike the e-cube baseline the
// full candidate set is offered at every step: all ports whose endpoint is
// one hop closer to the destination, i.e. the entire minimal next-hop set,
// so the algorithm is fully adaptive in the paper's sense. The cost is the
// paper's "excessive hardware" trade-off, diameter+1 queues per node —
// acceptable here because generated irregular networks (random-regular,
// dragonfly, fat-tree, hyperX) have tiny diameters by design.
//
// All candidates are static, so every state is already maximally adaptive;
// there is no room for dynamic links without widening the per-hop class
// fan-out beyond what PortMasks can encode.
//
// The routing relation over a static digraph is a pure function of
// (node, destination), so NewGraphAdaptive compiles it to flat tables
// once: a destination-major uint32 mask table holding, for every
// (dst, node) pair, the set of ports one hop closer to dst (the full
// fully-adaptive candidate set), plus the flat neighbor and distance
// arrays needed so neither PortMask, Candidates, nor MaxHops touches the
// topology.Topology interface after construction. PortMask is then one
// table load plus the PortClass fill, and Candidates a mask-walk over the
// flat neighbor row. See routeTable for the memory tiering and
// WithoutRouteTable for the uncompiled scan path kept for A/B comparison.
type GraphAdaptive struct {
	t     topology.Topology
	diam  int
	n     int
	ports int
	// maskOK: Ports() fits the 32-bit port masks. Without it neither the
	// PortMasks encoding nor the compiled mask table can represent a
	// candidate set, so PortMask declines and routing scans.
	maskOK bool
	// scan routes through the interface scan path (compiled tables unused);
	// forced when maskOK is false, selected by WithoutRouteTable otherwise.
	scan bool
	// nbr and dist are the flat adjacency and all-pairs distance tables
	// (node-major and source-major respectively); for a *topology.Graph they
	// alias the topology's own backing store, costing nothing extra.
	nbr  []int32
	dist []int16
	tab  *routeTable
}

// NewGraphAdaptive builds the generic minimal-adaptive algorithm over any
// strongly-connected topology. The topology must report a finite Distance
// for every ordered pair (generated *topology.Graph instances guarantee
// this at construction) and its diameter must fit the 8-bit queue-class
// space. Construction compiles the routing relation into flat next-hop
// tables (see GraphAdaptive); options tune or disable the compilation.
func NewGraphAdaptive(t topology.Topology, opts ...GraphOption) (*GraphAdaptive, error) {
	if t == nil {
		return nil, fmt.Errorf("core: graph-adaptive: nil topology")
	}
	var o graphOptions
	o.fullLimit = RouteTableFullNodes
	for _, opt := range opts {
		opt(&o)
	}
	a := &GraphAdaptive{
		t:     t,
		n:     t.Nodes(),
		ports: t.Ports(),
	}
	a.maskOK = a.ports <= 32
	if g, ok := t.(*topology.Graph); ok {
		a.diam = g.Diameter()
		a.nbr = g.FlatNeighbors()
		a.dist = g.Distances()
	} else {
		if a.n > topology.MaxGraphNodes {
			return nil, fmt.Errorf("core: graph-adaptive: %s has %d nodes, above the %d-node cap for distance compilation", t.Name(), a.n, topology.MaxGraphNodes)
		}
		a.nbr = topology.Flatten(t)
		dist, diam, err := allPairsBFS(t.Name(), a.nbr, a.n, a.ports)
		if err != nil {
			return nil, err
		}
		a.dist, a.diam = dist, diam
	}
	if a.diam > 254 {
		return nil, fmt.Errorf("core: graph-adaptive: %s has diameter %d, above the 254 hop-class limit", t.Name(), a.diam)
	}
	a.scan = o.scanOnly || !a.maskOK
	if !a.scan {
		a.tab = newRouteTable(a.nbr, a.dist, a.n, a.ports, o.fullLimit)
	}
	return a, nil
}

// GraphOption tunes NewGraphAdaptive's route-table compilation.
type GraphOption func(*graphOptions)

type graphOptions struct {
	scanOnly  bool
	fullLimit int
}

// GraphWithoutRouteTable disables the compiled next-hop tables: every
// routing decision rescans the ports through the topology interface, as
// the pre-compilation implementation did. Routing is bit-identical either
// way (the route-table property tests pin this); the option exists for
// those tests and for same-binary before/after benchmarking — see also
// sim.Config.DisableRouteTable, which applies it at engine construction.
func GraphWithoutRouteTable() GraphOption {
	return func(o *graphOptions) { o.scanOnly = true }
}

// GraphRouteTableFullLimit overrides the RouteTableFullNodes tier
// threshold: networks with more than limit nodes get lazily-built
// per-destination mask rows instead of the full table. Exists for the
// tier-equivalence tests and for memory tuning; limit <= 0 forces the lazy
// tier for every size.
func GraphRouteTableFullLimit(limit int) GraphOption {
	return func(o *graphOptions) { o.fullLimit = limit }
}

// allPairsBFS computes the all-pairs distance table of a flat adjacency
// snapshot by per-source BFS — the generic-topology replacement for the
// O(n^2) interface-dispatched Distance rescan, with no interface call on
// any path. It fails on any unreachable ordered pair.
func allPairsBFS(name string, nbr []int32, n, ports int) (dist []int16, diam int, err error) {
	dist = make([]int16, n*n)
	queue := make([]int32, 0, n)
	for s := 0; s < n; s++ {
		row := dist[s*n : (s+1)*n]
		for i := range row {
			row[i] = -1
		}
		row[s] = 0
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := int(queue[0])
			queue = queue[1:]
			for p := 0; p < ports; p++ {
				v := nbr[u*ports+p]
				if v < 0 || int(v) == u || row[v] >= 0 {
					continue
				}
				row[v] = row[u] + 1
				queue = append(queue, v)
			}
		}
		for v, d := range row {
			if d < 0 {
				return nil, 0, fmt.Errorf("core: graph-adaptive: %s is not strongly connected: no path %d -> %d", name, s, v)
			}
			if int(d) > diam {
				diam = int(d)
			}
		}
	}
	return dist, diam, nil
}

// WithoutRouteTable returns a view of the algorithm that routes through
// the uncompiled interface scan path — bit-identical decisions, no mask
// table (the flat adjacency and distance tables are shared, immutable).
// It implements RouteTableRouter for sim.Config.DisableRouteTable.
func (a *GraphAdaptive) WithoutRouteTable() Algorithm {
	if a.scan {
		return a
	}
	b := *a
	b.scan = true
	b.tab = nil
	return &b
}

func (a *GraphAdaptive) Name() string                { return "graph-adaptive" }
func (a *GraphAdaptive) Topology() topology.Topology { return a.t }
func (a *GraphAdaptive) NumClasses() int             { return a.diam + 1 }
func (a *GraphAdaptive) ClassName(c QueueClass) string {
	return fmt.Sprintf("hop%d", c)
}

func (a *GraphAdaptive) Props() Props {
	return Props{Minimal: true, FullyAdaptive: true}
}

func (a *GraphAdaptive) MaxHops(src, dst int32) int {
	return int(a.dist[int(src)*a.n+int(dst)])
}

func (a *GraphAdaptive) Inject(src, dst int32) (QueueClass, uint32) {
	return 0, 0
}

func (a *GraphAdaptive) Candidates(node int32, class QueueClass, work uint32, dst int32, buf []Move) []Move {
	if node == dst {
		return append(buf, Move{Node: node, Port: PortInternal, Kind: Static, MinFree: 1, Deliver: true})
	}
	if a.scan {
		return a.scanCandidates(node, class, dst, buf)
	}
	base := int(node) * a.ports
	nc := class + 1
	for m := a.tab.mask(node, dst); m != 0; m &= m - 1 {
		p := bits.TrailingZeros32(m)
		buf = append(buf, Move{
			Node: a.nbr[base+p], Port: int16(p), Class: nc, Kind: Static, MinFree: 1,
		})
	}
	return buf
}

// scanCandidates is the uncompiled path: rescan every port through the
// topology interface, two dispatched calls per port. Kept reachable (see
// WithoutRouteTable) as the cross-check oracle and benchmark baseline, and
// as the only path for topologies wider than 32 ports.
func (a *GraphAdaptive) scanCandidates(node int32, class QueueClass, dst int32, buf []Move) []Move {
	remain := a.t.Distance(int(node), int(dst))
	for p := 0; p < a.ports; p++ {
		v := a.t.Neighbor(int(node), p)
		if v == topology.None || a.t.Distance(v, int(dst)) != remain-1 {
			continue
		}
		buf = append(buf, Move{
			Node: int32(v), Port: int16(p), Class: class + 1, Kind: Static, MinFree: 1,
		})
	}
	return buf
}

// PortMask implements PortMaskRouter with the per-port encoding: every
// state except delivery is mask-shaped (uncredited static moves only, one
// shared target class per hop layer). On the compiled path the static mask
// is a single table load; only the fields the per-port encoding defines
// are written (StaticMask, Dyn, Work, PerPort, and PortClass at set bits —
// everything a consumer of a PerPort mask with Dyn == 0 reads).
func (a *GraphAdaptive) PortMask(node int32, class QueueClass, work uint32, dst int32, pm *PortMasks) bool {
	if !a.maskOK || node == dst {
		return false
	}
	if a.scan {
		return a.scanPortMask(node, class, dst, pm)
	}
	mask := a.tab.mask(node, dst)
	pm.PerPort = true
	pm.StaticMask = mask
	pm.Dyn = 0
	pm.Work = 0
	pm.DynWork = 0
	nc := class + 1
	for m := mask; m != 0; m &= m - 1 {
		pm.PortClass[bits.TrailingZeros32(m)] = nc
	}
	return true
}

// scanPortMask is PortMask's uncompiled path, the port rescan counterpart
// of scanCandidates.
func (a *GraphAdaptive) scanPortMask(node int32, class QueueClass, dst int32, pm *PortMasks) bool {
	*pm = PortMasks{PerPort: true}
	remain := a.t.Distance(int(node), int(dst))
	for p := 0; p < a.ports; p++ {
		v := a.t.Neighbor(int(node), p)
		if v == topology.None || a.t.Distance(v, int(dst)) != remain-1 {
			continue
		}
		pm.StaticMask |= 1 << uint(p)
		pm.PortClass[p] = class + 1
	}
	return true
}
