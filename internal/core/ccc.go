package core

import (
	"fmt"

	"repro/internal/topology"
)

// Queue classes of the cube-connected-cycles scheme: three phases, each
// with the two dateline channels that break the vertex cycles.
const (
	ClassCCCP1C0 QueueClass = 0 // phase 1 (0->1 fixes), before the dateline
	ClassCCCP1C1 QueueClass = 1
	ClassCCCP2C0 QueueClass = 2 // phase 2 (1->0 fixes)
	ClassCCCP2C1 QueueClass = 3
	ClassCCCP3C0 QueueClass = 4 // phase 3 (ring alignment to the target position)
	ClassCCCP3C1 QueueClass = 5
)

// CCCAdaptive is an adaptive deadlock-free packet routing for the
// cube-connected cycles, built with the paper's machinery exactly as its
// introduction claims is possible ("hypercubes, meshes, shuffle-exchanges,
// cube-connected cycles, and other networks [PFGS91]"; the companion report
// was never published, so this is a reconstruction in the same style):
//
//   - Phase 1 rides each vertex cycle forward; position i is the only place
//     dimension i can be corrected, so a 0->1 correction is taken (static)
//     the moment its position comes up, and a 1->0 correction may be taken
//     early through a dynamic link. The packet changes phase the moment no
//     0->1 correction remains, folding the switch into the last cube hop.
//   - Phase 2 rides forward again performing the remaining 1->0 fixes.
//   - Phase 3 rides the (now correct) vertex's cycle to the target position.
//
// Deadlock freedom: cube hops ascend Hamming weight in phase 1 and descend
// it in phase 2; every vertex cycle is a physical ring of length exactly n,
// broken by a dateline at position 0 with two channels per phase — a packet
// stays at most n-1 ring steps per visit, so one crossing suffices and no
// bubble guard is needed (the CCC has no degenerate cycles, unlike the
// shuffle-exchange). Six central queues per node, plus injection and
// delivery; at most 4n-3 hops per packet.
type CCCAdaptive struct {
	net     *topology.CCC
	dynamic bool
}

// NewCCCAdaptive returns the adaptive CCC scheme of order dims.
func NewCCCAdaptive(dims int) *CCCAdaptive {
	return &CCCAdaptive{net: topology.NewCCC(dims), dynamic: true}
}

// NewCCCStatic returns the scheme without the phase-1 dynamic 1->0 links.
func NewCCCStatic(dims int) *CCCAdaptive {
	return &CCCAdaptive{net: topology.NewCCC(dims), dynamic: false}
}

func (c *CCCAdaptive) Name() string {
	if c.dynamic {
		return "ccc-adaptive"
	}
	return "ccc-static"
}

func (c *CCCAdaptive) Topology() topology.Topology { return c.net }
func (c *CCCAdaptive) NumClasses() int             { return 6 }

func (c *CCCAdaptive) ClassName(q QueueClass) string {
	names := [...]string{"p1c0", "p1c1", "p2c0", "p2c1", "p3c0", "p3c1"}
	if int(q) < len(names) {
		return names[q]
	}
	return fmt.Sprintf("class%d", q)
}

func (c *CCCAdaptive) Props() Props { return Props{} }

func (c *CCCAdaptive) MaxHops(src, dst int32) int {
	// <= n-1 ring steps in each of the three phases plus <= n cube hops.
	return 4 * c.net.Dims()
}

// phase1Class returns the class a packet entering vertex w in phase 1 or 2
// should start in, folding phase changes into the move that completes the
// previous phase's work.
func (c *CCCAdaptive) entryClass(w, wDst int32) QueueClass {
	if incorrectZeros(w, wDst) != 0 {
		return ClassCCCP1C0
	}
	if incorrectOnes(w, wDst) != 0 {
		return ClassCCCP2C0
	}
	return ClassCCCP3C0
}

func (c *CCCAdaptive) Inject(src, dst int32) (QueueClass, uint32) {
	w := int32(c.net.Vertex(int(src)))
	wd := int32(c.net.Vertex(int(dst)))
	return c.entryClass(w, wd), 0
}

// ringMove builds the forward ring step for the given phase base class,
// handling the dateline: the edge entering position 0 moves the packet from
// channel 0 to channel 1. A packet stays fewer than n steps per ring visit,
// so a second crossing cannot occur.
func (c *CCCAdaptive) ringMove(node int32, base, cur QueueClass) Move {
	next := c.net.Neighbor(int(node), topology.CCCRingPlus)
	channel := cur - base
	if c.net.Position(next) == 0 {
		channel = 1
	}
	return Move{
		Node: int32(next), Port: topology.CCCRingPlus,
		Class: base + channel, Kind: Static, MinFree: 1,
	}
}

// PortMask implements the PortMaskRouter fast path with the per-port
// encoding (six classes outgrow the grouped shape). Every CCC candidate set
// without an internal move is mask-eligible: a forced cube hop (whose target
// class folds the phase change via entryClass), a ring step (dateline channel
// via ringClass) optionally paired with the phase-1 dynamic cube link, or the
// phase-3 ring alignment. The unreachable internal phase changes decline to
// Candidates.
func (c *CCCAdaptive) PortMask(node int32, class QueueClass, work uint32, dst int32, pm *PortMasks) bool {
	if node == dst {
		return false
	}
	w := int32(c.net.Vertex(int(node)))
	i := c.net.Position(int(node))
	wd := int32(c.net.Vertex(int(dst)))
	bit := uint32(1) << uint(i)

	switch class {
	case ClassCCCP1C0, ClassCCCP1C1:
		zeros := incorrectZeros(w, wd)
		switch {
		case zeros&bit != 0:
			nw := w ^ int32(bit)
			*pm = PortMasks{PerPort: true, StaticMask: 1 << topology.CCCCube}
			pm.PortClass[topology.CCCCube] = c.entryClass(nw, wd)
			return true
		case zeros != 0:
			*pm = PortMasks{PerPort: true, StaticMask: 1 << topology.CCCRingPlus}
			pm.PortClass[topology.CCCRingPlus] = c.ringClass(node, ClassCCCP1C0, class)
			if c.dynamic && incorrectOnes(w, wd)&bit != 0 {
				pm.Dyn = 1 << topology.CCCCube
				pm.DynClass = ClassCCCP1C0
			}
			return true
		default:
			return false // internal phase change
		}
	case ClassCCCP2C0, ClassCCCP2C1:
		ones := incorrectOnes(w, wd)
		switch {
		case ones&bit != 0:
			nw := w ^ int32(bit)
			*pm = PortMasks{PerPort: true, StaticMask: 1 << topology.CCCCube}
			pm.PortClass[topology.CCCCube] = c.entryClass(nw, wd)
			return true
		case ones != 0:
			*pm = PortMasks{PerPort: true, StaticMask: 1 << topology.CCCRingPlus}
			pm.PortClass[topology.CCCRingPlus] = c.ringClass(node, ClassCCCP2C0, class)
			return true
		default:
			return false // internal phase change
		}
	case ClassCCCP3C0, ClassCCCP3C1:
		*pm = PortMasks{PerPort: true, StaticMask: 1 << topology.CCCRingPlus}
		pm.PortClass[topology.CCCRingPlus] = c.ringClass(node, ClassCCCP3C0, class)
		return true
	}
	return false
}

// ringClass mirrors ringMove for the mask path: the class of the forward
// ring step, accounting for the dateline crossing into channel 1.
func (c *CCCAdaptive) ringClass(node int32, base, cur QueueClass) QueueClass {
	channel := cur - base
	if c.net.Position(c.net.Neighbor(int(node), topology.CCCRingPlus)) == 0 {
		channel = 1
	}
	return base + channel
}

func (c *CCCAdaptive) Candidates(node int32, class QueueClass, work uint32, dst int32, buf []Move) []Move {
	if node == dst {
		return append(buf, Move{Node: node, Port: PortInternal, Kind: Static, MinFree: 1, Deliver: true})
	}
	w := int32(c.net.Vertex(int(node)))
	i := c.net.Position(int(node))
	wd := int32(c.net.Vertex(int(dst)))
	bit := int32(1) << i

	switch class {
	case ClassCCCP1C0, ClassCCCP1C1:
		zeros := incorrectZeros(w, wd)
		switch {
		case zeros&uint32(bit) != 0:
			// Dimension i needs its 0->1 fix and this is the only position
			// that can perform it: forced cube hop. Entering a new vertex
			// cycle resets the channel; if this was the last 0->1 fix the
			// packet proceeds straight into the next phase's queue.
			nw := w ^ bit
			return append(buf, Move{
				Node: int32(c.net.NodeAt(int(nw), i)), Port: topology.CCCCube,
				Class: c.entryClass(nw, wd), Kind: Static, MinFree: 1,
			})
		case zeros != 0:
			// More 0->1 fixes ahead: ride the cycle forward; optionally fix
			// an incorrect 1 early through the dynamic cube link.
			buf = append(buf, c.ringMove(node, ClassCCCP1C0, class))
			if c.dynamic && incorrectOnes(w, wd)&uint32(bit) != 0 {
				buf = append(buf, Move{
					Node: int32(c.net.NodeAt(int(w^bit), i)), Port: topology.CCCCube,
					Class: ClassCCCP1C0, Kind: Dynamic, MinFree: 1,
				})
			}
			return buf
		default:
			// Unreachable fallback: phase changes fold into cube hops.
			return append(buf, Move{Node: node, Port: PortInternal, Class: ClassCCCP2C0, Kind: Static, MinFree: 1})
		}
	case ClassCCCP2C0, ClassCCCP2C1:
		ones := incorrectOnes(w, wd)
		switch {
		case ones&uint32(bit) != 0:
			nw := w ^ bit
			return append(buf, Move{
				Node: int32(c.net.NodeAt(int(nw), i)), Port: topology.CCCCube,
				Class: c.entryClass(nw, wd), Kind: Static, MinFree: 1,
			})
		case ones != 0:
			return append(buf, c.ringMove(node, ClassCCCP2C0, class))
		default:
			return append(buf, Move{Node: node, Port: PortInternal, Class: ClassCCCP3C0, Kind: Static, MinFree: 1})
		}
	case ClassCCCP3C0, ClassCCCP3C1:
		// Vertex correct; ride forward to the destination position.
		return append(buf, c.ringMove(node, ClassCCCP3C0, class))
	}
	panic(fmt.Sprintf("ccc: invalid queue class %d", class))
}
