package core

import (
	"testing"

	"repro/internal/topology"
)

// TestShuffleExamSchedule pins the exam bookkeeping: after k shuffles the
// exchange flips the bit that ends at final position (n - k mod n) mod n.
func TestShuffleExamSchedule(t *testing.T) {
	s := NewShuffleExchangeAdaptive(4)
	dst := int32(0b1010) // bits: d3=1 d2=0 d1=1 d0=0
	want := map[int]int{
		0: 0, // k=0 -> position 0 -> d0 = 0
		1: 1, // k=1 -> position 3 -> d3 = 1
		2: 0, // k=2 -> position 2 -> d2 = 0
		3: 1, // k=3 -> position 1 -> d1 = 1
		4: 0, // k=4 wraps to position 0
	}
	for k, w := range want {
		if got := s.examTarget(dst, k); got != w {
			t.Errorf("examTarget(k=%d) = %d, want %d", k, got, w)
		}
	}
}

// TestShuffleForcedExchange: a 0->1 correction at the examined position
// must be the only candidate in phase 1 (phase 2 cannot perform it).
func TestShuffleForcedExchange(t *testing.T) {
	s := NewShuffleExchangeAdaptive(4)
	// Node 0110 (bit0 = 0), k=0 examines final position 0; pick dst with
	// d0 = 1 so the exchange is mandatory.
	ms := s.Candidates(0b0110, ClassP1C0, shuffleWork(0, 0), 0b0001, nil)
	if len(ms) != 1 {
		t.Fatalf("candidates = %v, want exactly the forced exchange", ms)
	}
	m := ms[0]
	if m.Port != topology.ExchangePort || m.Node != 0b0111 || m.Kind != Static {
		t.Errorf("forced exchange wrong: %+v", m)
	}
	if shuffleK(m.Work) != 0 {
		t.Errorf("exchange must not advance the shuffle count: %+v", m)
	}
}

// TestShuffleDynamicExchange: a deferrable 1->0 correction offers the
// static shuffle plus the dynamic exchange.
func TestShuffleDynamicExchange(t *testing.T) {
	s := NewShuffleExchangeAdaptive(4)
	// Node 0111 (bit0 = 1), k=0 examines final position 0; dst with d0=0.
	ms := s.Candidates(0b0111, ClassP1C0, shuffleWork(0, 0), 0b0010, nil)
	if len(ms) != 2 {
		t.Fatalf("candidates = %v, want shuffle + dynamic exchange", ms)
	}
	var sawShuffle, sawDyn bool
	for _, m := range ms {
		switch m.Port {
		case topology.ShufflePort:
			sawShuffle = m.Kind == Static && shuffleK(m.Work) == 1
		case topology.ExchangePort:
			sawDyn = m.Kind == Dynamic && m.Node == 0b0110
		}
	}
	if !sawShuffle || !sawDyn {
		t.Errorf("missing candidates: %v", ms)
	}
	// The static variant must not offer the dynamic exchange.
	ms2 := NewShuffleExchangeStatic(4).Candidates(0b0111, ClassP1C0, shuffleWork(0, 0), 0b0010, nil)
	if len(ms2) != 1 || ms2[0].Port != topology.ShufflePort {
		t.Errorf("static variant candidates = %v", ms2)
	}
}

// TestShuffleDatelineChannels: the shuffle edge entering the cycle's break
// node moves the packet to channel 1; other shuffle edges preserve the
// channel.
func TestShuffleDatelineChannels(t *testing.T) {
	s := NewShuffleExchangeAdaptive(4)
	// Cycle of 0001: 0001 -> 0010 -> 0100 -> 1000 -> 0001; break node 0001.
	// From 1000 the shuffle crosses the dateline into 0001.
	mv := s.shuffleMove(0b1000, ClassP1C0, ClassP1C0, shuffleWork(1, 0))
	if mv.Node != 0b0001 || mv.Class != ClassP1C1 {
		t.Errorf("dateline crossing: %+v", mv)
	}
	if mv.Credit != 0 {
		t.Errorf("full-length cycle crossing must not be credited: %+v", mv)
	}
	// From 0010 the shuffle stays in channel 0.
	mv = s.shuffleMove(0b0010, ClassP1C0, ClassP1C0, shuffleWork(1, 0))
	if mv.Node != 0b0100 || mv.Class != ClassP1C0 {
		t.Errorf("in-cycle move: %+v", mv)
	}
}

// TestShuffleDegenerateCredits: in the degenerate 0101/1010 cycle the entry
// into channel 1 carries credit 2 and the in-ring continuation credit 1.
func TestShuffleDegenerateCredits(t *testing.T) {
	s := NewShuffleExchangeAdaptive(4)
	// rot(1010) = 0101 = break node: crossing. From channel 0: entry.
	entry := s.shuffleMove(0b1010, ClassP1C0, ClassP1C0, shuffleWork(1, 0))
	if entry.Class != ClassP1C1 || entry.Credit != 2 {
		t.Errorf("degenerate entry: %+v", entry)
	}
	// Same crossing from channel 1: continuation.
	cont := s.shuffleMove(0b1010, ClassP1C0, ClassP1C1, shuffleWork(2, 0))
	if cont.Class != ClassP1C1 || cont.Credit != 1 {
		t.Errorf("degenerate continuation: %+v", cont)
	}
	// The non-crossing edge of the degenerate cycle in channel 1 is also an
	// in-ring continuation.
	cont2 := s.shuffleMove(0b0101, ClassP1C0, ClassP1C1, shuffleWork(2, 0))
	if cont2.Node != 0b1010 || cont2.Credit != 1 {
		t.Errorf("degenerate in-ring move: %+v", cont2)
	}
}

// TestShuffleFixedPointSpin: the rotation fixed points advance the count in
// place.
func TestShuffleFixedPointSpin(t *testing.T) {
	s := NewShuffleExchangeAdaptive(4)
	mv := s.shuffleMove(0b0000, ClassP1C0, ClassP1C0, shuffleWork(1, 0))
	if mv.Port != PortInternal || mv.Node != 0 || shuffleK(mv.Work) != 2 {
		t.Errorf("fixed-point spin: %+v", mv)
	}
}

// TestShuffleInjectSkipsPhase1: a packet with only 1->0 corrections starts
// directly in phase 2.
func TestShuffleInjectSkipsPhase1(t *testing.T) {
	s := NewShuffleExchangeAdaptive(4)
	if c, w := s.Inject(0b1110, 0b0110); c != ClassP2C0 || shuffleKSwitch(w) != 0 {
		t.Errorf("Inject(1110->0110) = class %d work %#x", c, w)
	}
	if c, _ := s.Inject(0b0110, 0b1110); c != ClassP1C0 {
		t.Errorf("Inject(0110->1110) = class %d, want phase 1", c)
	}
}

// TestShufflePhaseChangeAtBudget: at k == n a phase-1 packet changes phase
// in place, recording the switch point.
func TestShufflePhaseChangeAtBudget(t *testing.T) {
	s := NewShuffleExchangeAdaptive(4)
	ms := s.Candidates(0b0110, ClassP1C1, shuffleWork(4, 0), 0b0011, nil)
	if len(ms) != 1 || ms[0].Port != PortInternal || ms[0].Class != ClassP2C0 {
		t.Fatalf("phase change candidates = %v", ms)
	}
	if shuffleKSwitch(ms[0].Work) != 4 {
		t.Errorf("kSwitch not recorded: %+v", ms[0])
	}
}

// TestShuffleEagerSwitch: the eager variant offers the early phase switch
// exactly when no remaining phase-1 position needs a 0->1 fix.
func TestShuffleEagerSwitch(t *testing.T) {
	e := NewShuffleExchangeEager(4)
	// Node 1111 heading to 0101: only 1->0 fixes remain; at k=1 the eager
	// switch must be offered.
	ms := e.Candidates(0b1111, ClassP1C0, shuffleWork(1, 0), 0b0101, nil)
	foundSwitch := false
	for _, m := range ms {
		if m.Port == PortInternal && m.Class == ClassP2C0 {
			foundSwitch = true
			if shuffleKSwitch(m.Work) != 1 {
				t.Errorf("eager switch kSwitch wrong: %+v", m)
			}
		}
	}
	if !foundSwitch {
		t.Fatalf("eager switch not offered: %v", ms)
	}
	// The plain adaptive variant must not offer it (node 1111 is a rotation
	// fixed point, so its shuffle step is an internal self-spin staying in
	// phase 1 — only a move into a phase-2 class would be an early switch).
	ms2 := NewShuffleExchangeAdaptive(4).Candidates(0b1111, ClassP1C0, shuffleWork(1, 0), 0b0101, nil)
	for _, m := range ms2 {
		if m.Port == PortInternal && (m.Class == ClassP2C0 || m.Class == ClassP2C1) {
			t.Errorf("non-eager variant offered an early switch: %+v", m)
		}
	}
	// With a 0->1 fix ahead the eager switch must be withheld: 0000 -> 1111
	// needs every position raised.
	ms3 := e.Candidates(0b0000, ClassP1C0, shuffleWork(1, 0), 0b1111, nil)
	for _, m := range ms3 {
		if m.Port == PortInternal && m.Class == ClassP2C0 {
			t.Errorf("eager switch offered with 0->1 work remaining: %+v", m)
		}
	}
}
