package core

import (
	"fmt"
	"math/bits"

	"repro/internal/topology"
)

// TorusAdaptive is a fully-adaptive minimal deadlock-free packet routing
// scheme for k-dimensional tori, realizing the extension the paper sketches
// at the end of Section 4 ("a fully-adaptive and minimal routing technique
// for packet-switching over tori can be achieved ... following an idea
// similar to the one presented in [GPS91]"). [GPS91] is an unpublished
// technical report, so this package uses a construction that the qdg
// verifier can check mechanically:
//
//   - At injection each packet fixes, per dimension, the minimal travel
//     direction (ties on even sides are broken deterministically — the one
//     place where the scheme is not fully adaptive).
//   - Packets are classified by the set of dimensions whose wraparound link
//     they have already crossed. Wrap sets only grow, so the 2^k wrap
//     classes form a DAG.
//   - Within a wrap class no move crosses a wraparound link, so the residual
//     problem is exactly mesh routing toward a per-dimension in-class target
//     (the final coordinate, or the wrap boundary if the crossing is still
//     ahead), solved with the paper's own Section 4 two-phase scheme,
//     including its dynamic links.
//
// This costs 2^(k+1) central queues per node (8 for the 2-dimensional
// torus) instead of the 4 the paper conjectures for 2 dimensions; DESIGN.md
// discusses the deviation. Queue class c encodes (wrapSet << 1) | phase.
type TorusAdaptive struct {
	torus *topology.Torus
}

// NewTorusAdaptive returns the wrap-class torus algorithm.
func NewTorusAdaptive(shape ...int) *TorusAdaptive {
	t := &TorusAdaptive{torus: topology.NewTorus(shape...)}
	if t.torus.Dims() > 6 {
		panic("core: torus-adaptive supports at most 6 dimensions")
	}
	return t
}

func (t *TorusAdaptive) Name() string                { return "torus-adaptive" }
func (t *TorusAdaptive) Topology() topology.Topology { return t.torus }
func (t *TorusAdaptive) NumClasses() int             { return 1 << (t.torus.Dims() + 1) }

func (t *TorusAdaptive) ClassName(c QueueClass) string {
	phase := "A"
	if c&1 == 1 {
		phase = "B"
	}
	return fmt.Sprintf("w%0*b%s", t.torus.Dims(), c>>1, phase)
}

func (t *TorusAdaptive) Props() Props {
	// Fully adaptive except for direction ties on even sides (documented).
	return Props{Minimal: true, FullyAdaptive: true}
}

func (t *TorusAdaptive) MaxHops(src, dst int32) int {
	return t.torus.Distance(int(src), int(dst))
}

// dirPlus reports the travel direction chosen for dimension i of a packet
// from src to dst: true for +1 (port 2i), false for -1 (port 2i+1). For a
// tie (distance exactly side/2) the direction alternates deterministically
// with the endpoints so opposing tie traffic spreads over both senses.
func (t *TorusAdaptive) dirPlus(src, dst int32, i int) bool {
	side := t.torus.Shape()[i]
	cs, cd := t.torus.Coord(int(src), i), t.torus.Coord(int(dst), i)
	fwd := ((cd-cs)%side + side) % side
	if fwd*2 == side {
		return (cs+cd+i)%2 == 0
	}
	return fwd*2 < side
}

func (t *TorusAdaptive) dims() int { return t.torus.Dims() }

// torusPending describes the residual movement of a packet in one dimension:
// the in-class mesh movement toward the target coordinate (ascending for +
// direction, descending for -), plus possibly a wraparound crossing once the
// in-class target (the wrap boundary) is reached.
type torusPending struct {
	done     bool // coordinate correct and no crossing ahead
	ascend   bool // in-class movement uses port 2i (+1 direction)
	moving   bool // in-class movement remains (c != in-class target)
	wrapNext bool // sitting on the wrap boundary, must cross it now
}

func (t *TorusAdaptive) pending(node, dst int32, dirs, wraps uint32, i int) torusPending {
	side := t.torus.Shape()[i]
	c, z := t.torus.Coord(int(node), i), t.torus.Coord(int(dst), i)
	plus := dirs&(1<<i) != 0
	wrapped := wraps&(1<<i) != 0
	needWrap := !wrapped && c != z && ((plus && z < c) || (!plus && z > c))
	target := z
	if needWrap {
		if plus {
			target = side - 1
		} else {
			target = 0
		}
	}
	if c == target {
		return torusPending{done: !needWrap, ascend: plus, wrapNext: needWrap}
	}
	return torusPending{ascend: plus, moving: true}
}

// phaseFor returns phase A (0) if the packet has ascending in-class
// movement at node, else phase B (1).
func (t *TorusAdaptive) phaseFor(node, dst int32, dirs, wraps uint32) QueueClass {
	for i := 0; i < t.dims(); i++ {
		p := t.pending(node, dst, dirs, wraps, i)
		if p.moving && p.ascend {
			return 0
		}
	}
	return 1
}

func (t *TorusAdaptive) class(wraps uint32, phase QueueClass) QueueClass {
	return QueueClass(wraps<<1) | phase
}

func (t *TorusAdaptive) Inject(src, dst int32) (QueueClass, uint32) {
	var dirs uint32
	for i := 0; i < t.dims(); i++ {
		if t.dirPlus(src, dst, i) {
			dirs |= 1 << i
		}
	}
	return t.class(0, t.phaseFor(src, dst, dirs, 0)), dirs
}

// wrapMove builds the class-changing move across the wraparound link of
// dimension i. Wrap moves are static: they ascend the wrap-class DAG.
func (t *TorusAdaptive) wrapMove(node, dst int32, dirs, wraps uint32, i int, ascend bool) Move {
	port := 2 * i
	if !ascend {
		port++
	}
	next := int32(t.torus.Neighbor(int(node), port))
	nw := wraps | 1<<i
	return Move{
		Node: next, Port: int16(port),
		Class: t.class(nw, t.phaseFor(next, dst, dirs, nw)),
		Kind:  Static, MinFree: 1, Work: dirs,
	}
}

// PortMask implements the PortMaskRouter fast path with the per-port
// encoding (wrap classes exceed the grouped shape's 4-class limit). It
// derives the same moves as Candidates from one pass over the dimensions:
// each dimension contributes at most one port (ascend, descend, or wrap
// crossing), and the phase of every endpoint follows from counts computed
// in the same pass instead of re-walking the dimensions per move the way
// pending/phaseFor do. Only the internal phase change (phase A without
// ascent) and the phase-B-with-ascent panic state fall back to Candidates.
func (t *TorusAdaptive) PortMask(node int32, class QueueClass, work uint32, dst int32, pm *PortMasks) bool {
	if node == dst {
		return false
	}
	k := t.dims()
	wraps := uint32(class >> 1)
	phase := class & 1
	dirs := work
	shape := t.torus.Shape()
	// Per-dimension residual state, computed once: which dimensions still
	// ascend or descend within the wrap class, which sit on their wrap
	// boundary, and (for the endpoint phases) which ascents are one step
	// from their in-class target.
	var ascMask, descMask, wrapMask, gapOne uint32
	var zc [6]int32
	for i := 0; i < k; i++ {
		c, z := t.torus.Coord(int(node), i), t.torus.Coord(int(dst), i)
		zc[i] = int32(z)
		plus := dirs&(1<<uint(i)) != 0
		needWrap := wraps&(1<<uint(i)) == 0 && c != z && ((plus && z < c) || (!plus && z > c))
		target := z
		if needWrap {
			if plus {
				target = shape[i] - 1
			} else {
				target = 0
			}
		}
		switch {
		case c == target && needWrap:
			wrapMask |= 1 << uint(i)
		case c == target:
			// done in this dimension
		case plus:
			ascMask |= 1 << uint(i)
			if target-c == 1 {
				gapOne |= 1 << uint(i)
			}
		default:
			descMask |= 1 << uint(i)
		}
	}
	if phase == 0 {
		if ascMask == 0 {
			return false // internal phase change
		}
		*pm = PortMasks{PerPort: true, Work: dirs, DynWork: dirs, DynClass: class}
		for m := wrapMask; m != 0; m &= m - 1 {
			i := bits.TrailingZeros32(m)
			p := 2 * i
			if dirs&(1<<uint(i)) == 0 {
				p++
			}
			// The other ascending dimensions are untouched by the crossing,
			// so the endpoint stays in phase A.
			pm.StaticMask |= 1 << uint(p)
			pm.PortClass[p] = t.class(wraps|1<<uint(i), 0)
		}
		for m := ascMask; m != 0; m &= m - 1 {
			i := bits.TrailingZeros32(m)
			nextPhase := QueueClass(1)
			if ascMask&^(1<<uint(i)) != 0 || gapOne&(1<<uint(i)) == 0 {
				nextPhase = 0 // ascent remains at the endpoint
			}
			pm.StaticMask |= 1 << uint(2*i)
			pm.PortClass[2*i] = t.class(wraps, nextPhase)
		}
		for m := descMask; m != 0; m &= m - 1 {
			i := bits.TrailingZeros32(m)
			pm.Dyn |= 1 << uint(2*i+1)
		}
		return true
	}
	if ascMask != 0 {
		return false // Candidates panics here; keep the slow path's report
	}
	*pm = PortMasks{PerPort: true, Work: dirs, DynWork: dirs}
	for m := wrapMask; m != 0; m &= m - 1 {
		i := bits.TrailingZeros32(m)
		p := 2 * i
		nextPhase := QueueClass(1)
		if dirs&(1<<uint(i)) != 0 {
			// Crossing a + boundary lands at coordinate 0; ascent resumes
			// there unless the target coordinate is 0 itself.
			if zc[i] != 0 {
				nextPhase = 0
			}
		} else {
			p++
		}
		pm.StaticMask |= 1 << uint(p)
		pm.PortClass[p] = t.class(wraps|1<<uint(i), nextPhase)
	}
	for m := descMask; m != 0; m &= m - 1 {
		i := bits.TrailingZeros32(m)
		pm.StaticMask |= 1 << uint(2*i+1)
		pm.PortClass[2*i+1] = class
	}
	return true
}

func (t *TorusAdaptive) Candidates(node int32, class QueueClass, work uint32, dst int32, buf []Move) []Move {
	if node == dst {
		return append(buf, Move{Node: node, Port: PortInternal, Kind: Static, MinFree: 1, Deliver: true, Work: work})
	}
	wraps := uint32(class >> 1)
	phase := class & 1
	dirs := work
	n := int(node)

	if phase == 0 {
		// Phase A: ascend statically, cross pending wraps statically,
		// descend through dynamic links while ascent remains.
		hasAscent := false
		for i := 0; i < t.dims(); i++ {
			if p := t.pending(node, dst, dirs, wraps, i); p.moving && p.ascend {
				hasAscent = true
				break
			}
		}
		if !hasAscent {
			return append(buf, Move{
				Node: node, Port: PortInternal, Class: t.class(wraps, 1),
				Kind: Static, MinFree: 1, Work: work,
			})
		}
		for i := 0; i < t.dims(); i++ {
			p := t.pending(node, dst, dirs, wraps, i)
			switch {
			case p.wrapNext:
				buf = append(buf, t.wrapMove(node, dst, dirs, wraps, i, p.ascend))
			case p.moving && p.ascend:
				// The last ascending correction enters the phase-B queue of
				// the node it reaches, avoiding an internal phase change.
				next := int32(t.torus.Neighbor(n, 2*i))
				buf = append(buf, Move{
					Node: next, Port: int16(2 * i),
					Class: t.class(wraps, t.phaseFor(next, dst, dirs, wraps)),
					Kind:  Static, MinFree: 1, Work: work,
				})
			case p.moving: // descending while ascent remains: dynamic link
				buf = append(buf, Move{
					Node: int32(t.torus.Neighbor(n, 2*i+1)), Port: int16(2*i + 1),
					Class: class, Kind: Dynamic, MinFree: 1, Work: work,
				})
			}
		}
		return buf
	}

	// Phase B: descend statically; pending wrap crossings (necessarily in
	// descending dimensions sitting on their boundary) are also static.
	for i := 0; i < t.dims(); i++ {
		p := t.pending(node, dst, dirs, wraps, i)
		switch {
		case p.wrapNext:
			buf = append(buf, t.wrapMove(node, dst, dirs, wraps, i, p.ascend))
		case p.moving && !p.ascend:
			buf = append(buf, Move{
				Node: int32(t.torus.Neighbor(n, 2*i+1)), Port: int16(2*i + 1),
				Class: class, Kind: Static, MinFree: 1, Work: work,
			})
		case p.moving:
			panic(fmt.Sprintf("torus-adaptive: ascending work in phase B at node %d for %d", node, dst))
		}
	}
	return buf
}
