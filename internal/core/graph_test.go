package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/qdg"
	"repro/internal/topology"
)

func graphAlgo(t *testing.T, g *topology.Graph, err error) *core.GraphAdaptive {
	t.Helper()
	if err != nil {
		t.Fatalf("generator: %v", err)
	}
	a, err := core.NewGraphAdaptive(g)
	if err != nil {
		t.Fatalf("core.NewGraphAdaptive: %v", err)
	}
	return a
}

// TestGraphAdaptiveVerified: the automatically derived hop-layer order
// passes the full mechanical deadlock-freedom certification on every
// generator family.
func TestGraphAdaptiveVerified(t *testing.T) {
	gens := []struct {
		name string
		g    *topology.Graph
		err  error
	}{
		{"random-regular", nil, nil},
		{"dragonfly", nil, nil},
		{"hyperx", nil, nil},
		{"fat-tree", nil, nil},
	}
	gens[0].g, gens[0].err = topology.NewRandomRegular(32, 3, 1)
	gens[1].g, gens[1].err = topology.NewDragonfly(3, 4)
	gens[2].g, gens[2].err = topology.NewHyperX(3, 3)
	gens[3].g, gens[3].err = topology.NewFatTree(6, 3)
	for _, c := range gens {
		a := graphAlgo(t, c.g, c.err)
		qg, err := qdg.Build(a)
		if err != nil {
			t.Fatalf("%s: qdg.Build: %v", c.name, err)
		}
		if err := qg.Verify(); err != nil {
			t.Errorf("%s: qdg.Verify: %v", c.name, err)
		}
	}
}

// TestGraphAdaptiveMinimalAndFullyAdaptive: from every reachable state the
// candidate set is exactly the full minimal next-hop set, one class up.
func TestGraphAdaptiveMinimalAndFullyAdaptive(t *testing.T) {
	rr, rrerr := topology.NewRandomRegular(24, 3, 5)
	a := graphAlgo(t, rr, rrerr)
	top := a.Topology()
	n := top.Nodes()
	var buf []core.Move
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			class, work := a.Inject(int32(src), int32(dst))
			if class != 0 || work != 0 {
				t.Fatalf("Inject(%d,%d) = (%d,%d), want (0,0)", src, dst, class, work)
			}
			// Walk one minimal path, checking the offered set at each hop.
			node := src
			for node != dst {
				d := top.Distance(node, dst)
				buf = a.Candidates(int32(node), class, work, int32(dst), buf[:0])
				want := 0
				for p := 0; p < top.Ports(); p++ {
					if v := top.Neighbor(node, p); v != topology.None && top.Distance(v, dst) == d-1 {
						want++
					}
				}
				if len(buf) != want {
					t.Fatalf("state (%d,c%d)->%d: %d candidates, want all %d minimal hops", node, class, dst, len(buf), want)
				}
				for _, m := range buf {
					if m.Kind != core.Static || m.Deliver || m.Class != class+1 {
						t.Fatalf("state (%d,c%d)->%d: non-hop-layer move %+v", node, class, dst, m)
					}
					if top.Distance(int(m.Node), dst) != d-1 {
						t.Fatalf("state (%d,c%d)->%d: non-minimal move to %d", node, class, dst, m.Node)
					}
				}
				node, class = int(buf[0].Node), buf[0].Class
			}
			buf = a.Candidates(int32(node), class, work, int32(dst), buf[:0])
			if len(buf) != 1 || !buf[0].Deliver {
				t.Fatalf("at destination %d: candidates %+v, want single Deliver", dst, buf)
			}
			if int(class) != top.Distance(src, dst) {
				t.Fatalf("delivered %d->%d in class %d, want distance %d", src, dst, class, top.Distance(src, dst))
			}
		}
	}
}

// TestGraphAdaptivePortMaskConsistency: PortMask must describe exactly the
// Candidates set for every state it accepts, and decline delivery states.
func TestGraphAdaptivePortMaskConsistency(t *testing.T) {
	df, dferr := topology.NewDragonfly(4, 9)
	a := graphAlgo(t, df, dferr)
	top := a.Topology()
	n := top.Nodes()
	var pm core.PortMasks
	var buf []core.Move
	for node := 0; node < n; node++ {
		for dst := 0; dst < n; dst++ {
			for class := core.QueueClass(0); int(class) < a.NumClasses()-1; class++ {
				ok := a.PortMask(int32(node), class, 0, int32(dst), &pm)
				if node == dst {
					if ok {
						t.Fatalf("PortMask accepted delivery state at node %d", node)
					}
					continue
				}
				if !ok {
					t.Fatalf("PortMask declined routable state (%d,c%d)->%d", node, class, dst)
				}
				buf = a.Candidates(int32(node), class, 0, int32(dst), buf[:0])
				var want uint32
				for _, m := range buf {
					want |= 1 << uint(m.Port)
				}
				if pm.StaticMask != want || pm.Dyn != 0 || !pm.PerPort {
					t.Fatalf("state (%d,c%d)->%d: mask %032b, want %032b dyn=0 perport", node, class, dst, pm.StaticMask, want)
				}
				for _, m := range buf {
					if pm.PortClass[m.Port] != m.Class {
						t.Fatalf("state (%d,c%d)->%d port %d: class %d, want %d", node, class, dst, m.Port, pm.PortClass[m.Port], m.Class)
					}
				}
			}
		}
	}
}

func TestGraphAdaptiveOnClosedFormTopology(t *testing.T) {
	// The algorithm is generic: handed a closed-form topology (no cached
	// distance table) it must still derive the right diameter.
	a, err := core.NewGraphAdaptive(topology.NewHypercube(4))
	if err != nil {
		t.Fatalf("core.NewGraphAdaptive(hypercube): %v", err)
	}
	if a.NumClasses() != 5 {
		t.Errorf("NumClasses = %d, want 5 (diameter 4 + 1)", a.NumClasses())
	}
	if err := qdgVerify(a); err != nil {
		t.Errorf("verify on hypercube: %v", err)
	}
}

func qdgVerify(a core.Algorithm) error {
	g, err := qdg.Build(a)
	if err != nil {
		return err
	}
	return g.Verify()
}
