package core

import (
	"math/bits"
	"testing"
	"testing/quick"
)

// TestQuickHypercubeFormalFunction checks the implementation against the
// paper's formal routing function R~ on random (node, dst) pairs of an
// 8-cube: in q_A with incorrect zeros present there is one candidate per
// differing dimension (0->1 static, 1->0 dynamic, the last incorrect zero
// folding into q_B); in q_B one static candidate per incorrect one.
func TestQuickHypercubeFormalFunction(t *testing.T) {
	a := NewHypercubeAdaptive(8)
	f := func(nodeRaw, dstRaw uint8) bool {
		node, dst := int32(nodeRaw), int32(dstRaw)
		if node == dst {
			return true
		}
		diff := uint32(node ^ dst)
		zeros := incorrectZeros(node, dst)
		ones := incorrectOnes(node, dst)

		msA := a.Candidates(node, ClassA, 0, dst, nil)
		if zeros == 0 {
			// Internal fallback only.
			if len(msA) != 1 || msA[0].Port != PortInternal || msA[0].Class != ClassB {
				return false
			}
		} else {
			if len(msA) != bits.OnesCount32(diff) {
				return false
			}
			for _, m := range msA {
				dim := uint32(node^m.Node) & diff
				if dim == 0 || dim&(dim-1) != 0 {
					return false // not a single differing dimension
				}
				switch {
				case dim&zeros != 0 && zeros == dim: // last incorrect zero
					if m.Kind != Static || m.Class != ClassB {
						return false
					}
				case dim&zeros != 0:
					if m.Kind != Static || m.Class != ClassA {
						return false
					}
				default:
					if m.Kind != Dynamic || m.Class != ClassA {
						return false
					}
				}
			}
		}

		msB := a.Candidates(node, ClassB, 0, dst, nil)
		if ones == 0 {
			// A packet cannot legally be in q_B with ascending work; the
			// implementation returns the empty descent set then, which the
			// exploration never reaches. Skip.
			return true
		}
		if len(msB) != bits.OnesCount32(ones) {
			return false
		}
		for _, m := range msB {
			dim := uint32(node ^ m.Node)
			if dim&ones == 0 || m.Kind != Static || m.Class != ClassB {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickShuffleWorkEncoding round-trips the packed bookkeeping word.
func TestQuickShuffleWorkEncoding(t *testing.T) {
	f := func(k, kSwitch uint8) bool {
		w := shuffleWork(int(k), int(kSwitch))
		return shuffleK(w) == int(k) && shuffleKSwitch(w) == int(kSwitch)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickShuffleExamConsistency: the bit examined at count k+n is the
// same destination position as at count k (the exam schedule has period n).
func TestQuickShuffleExamConsistency(t *testing.T) {
	s := NewShuffleExchangeAdaptive(6)
	f := func(dstRaw uint8, kRaw uint8) bool {
		dst := int32(dstRaw) & 63
		k := int(kRaw) % 12
		return s.examTarget(dst, k) == s.examTarget(dst, k+6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickTorusDirectionMinimal: the direction chosen per dimension is
// always a minimal one.
func TestQuickTorusDirectionMinimal(t *testing.T) {
	for _, shape := range [][]int{{5, 5}, {4, 6}, {8, 8}} {
		tor := NewTorusAdaptive(shape...)
		top := tor.torus
		n := int32(top.Nodes())
		f := func(sRaw, dRaw uint16) bool {
			src, dst := int32(sRaw)%n, int32(dRaw)%n
			if src == dst {
				return true
			}
			for i := 0; i < top.Dims(); i++ {
				side := top.Shape()[i]
				cs, cd := top.Coord(int(src), i), top.Coord(int(dst), i)
				fwd := ((cd-cs)%side + side) % side
				bwd := side - fwd
				if fwd == 0 {
					continue
				}
				plus := tor.dirPlus(src, dst, i)
				if plus && fwd > bwd || !plus && bwd > fwd {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
			t.Errorf("%v: %v", shape, err)
		}
	}
}

// TestQuickMeshXYClassMonotonic: along any XY route the queue class never
// decreases (the acyclicity witness of the baseline).
func TestQuickMeshXYClassMonotonic(t *testing.T) {
	m := NewMeshXY(6, 6)
	n := int32(m.mesh.Nodes())
	f := func(sRaw, dRaw uint16) bool {
		src, dst := int32(sRaw)%n, int32(dRaw)%n
		if src == dst {
			return true
		}
		class, work := m.Inject(src, dst)
		node := src
		for {
			ms := m.Candidates(node, class, work, dst, nil)
			mv := ms[0]
			if mv.Deliver {
				return true
			}
			if mv.Class < class {
				return false
			}
			node, class, work = mv.Node, mv.Class, mv.Work
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
