package core_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
)

// seedGrid is the PR-8 generated-topology seed grid (the same instances
// graph_e2e_test.go sweeps end-to-end), one constructor per generator
// family per cell.
func seedGrid(t *testing.T) map[string]*topology.Graph {
	t.Helper()
	grid := map[string]*topology.Graph{}
	add := func(name string, g *topology.Graph, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		grid[name] = g
	}
	for seed := int64(1); seed <= 4; seed++ {
		g, err := topology.NewRandomRegular(24, 3, seed)
		add(fmt.Sprintf("random-regular:n=24,k=3,seed=%d", seed), g, err)
		g, err = topology.NewRandomRegular(32, 4, seed)
		add(fmt.Sprintf("random-regular:n=32,k=4,seed=%d", seed), g, err)
	}
	df, err := topology.NewDragonfly(4, 9)
	add("dragonfly:a=4,g=9", df, err)
	hx, err := topology.NewHyperX(3, 3)
	add("hyperx:3x3", hx, err)
	ft, err := topology.NewFatTree(6, 3)
	add("fat-tree:leaves=6,spines=3", ft, err)
	return grid
}

// maskEqual compares the fields the per-port PortMasks encoding defines —
// the table path deliberately leaves the unused grouped fields stale, so a
// whole-struct comparison would over-constrain it.
func maskEqual(a, b *core.PortMasks) bool {
	if a.PerPort != b.PerPort || a.StaticMask != b.StaticMask ||
		a.Dyn != b.Dyn || a.Work != b.Work {
		return false
	}
	for p := 0; p < 32; p++ {
		if a.StaticMask&(1<<uint(p)) != 0 && a.PortClass[p] != b.PortClass[p] {
			return false
		}
	}
	return true
}

// TestRouteTableMatchesScanPath: over the PR-8 seed grid, the compiled
// table's masks and moves must be bit-identical to the interface scan
// path's, state by state, on both memory tiers (full table and lazy
// per-destination rows).
func TestRouteTableMatchesScanPath(t *testing.T) {
	for name, g := range seedGrid(t) {
		t.Run(name, func(t *testing.T) {
			table, err := core.NewGraphAdaptive(g)
			if err != nil {
				t.Fatal(err)
			}
			lazy, err := core.NewGraphAdaptive(g, core.GraphRouteTableFullLimit(0))
			if err != nil {
				t.Fatal(err)
			}
			scan := table.WithoutRouteTable()
			if _, still := scan.(*core.GraphAdaptive); !still {
				t.Fatalf("WithoutRouteTable changed the algorithm type: %T", scan)
			}
			n := g.Nodes()
			classes := []core.QueueClass{0}
			if table.NumClasses() > 2 {
				classes = append(classes, core.QueueClass(table.NumClasses()-2))
			}
			var bufT, bufL, bufS []core.Move
			var pmT, pmL, pmS core.PortMasks
			for node := int32(0); int(node) < n; node++ {
				for dst := int32(0); int(dst) < n; dst++ {
					for _, class := range classes {
						bufT = table.Candidates(node, class, 0, dst, bufT[:0])
						bufL = lazy.Candidates(node, class, 0, dst, bufL[:0])
						bufS = scan.Candidates(node, class, 0, dst, bufS[:0])
						if !reflect.DeepEqual(bufT, bufS) {
							t.Fatalf("state (%d,c%d)->%d: table moves %+v, scan moves %+v", node, class, dst, bufT, bufS)
						}
						if !reflect.DeepEqual(bufL, bufS) {
							t.Fatalf("state (%d,c%d)->%d: lazy-tier moves %+v, scan moves %+v", node, class, dst, bufL, bufS)
						}
						okT := table.PortMask(node, class, 0, dst, &pmT)
						okL := lazy.PortMask(node, class, 0, dst, &pmL)
						okS := scan.(core.PortMaskRouter).PortMask(node, class, 0, dst, &pmS)
						if okT != okS || okL != okS {
							t.Fatalf("state (%d,c%d)->%d: PortMask ok table=%v lazy=%v scan=%v", node, class, dst, okT, okL, okS)
						}
						if !okS {
							continue
						}
						if !maskEqual(&pmT, &pmS) {
							t.Fatalf("state (%d,c%d)->%d: table mask %032b/%v, scan mask %032b/%v", node, class, dst, pmT.StaticMask, pmT, pmS.StaticMask, pmS)
						}
						if !maskEqual(&pmL, &pmS) {
							t.Fatalf("state (%d,c%d)->%d: lazy mask %032b, scan mask %032b", node, class, dst, pmL.StaticMask, pmS.StaticMask)
						}
					}
				}
			}
		})
	}
}

// TestRouteTableLazyRowsConcurrent: the lazy tier's first-touch row builds
// must be race-free and agree with the full table under concurrent access
// from many goroutines (the engines call PortMask from every worker). Run
// with -race in CI.
func TestRouteTableLazyRowsConcurrent(t *testing.T) {
	g, err := topology.NewRandomRegular(64, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	full, err := core.NewGraphAdaptive(g)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := core.NewGraphAdaptive(g, core.GraphRouteTableFullLimit(0))
	if err != nil {
		t.Fatal(err)
	}
	n := int32(g.Nodes())
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var pmF, pmL core.PortMasks
			for dst := int32(0); dst < n; dst++ {
				// Stagger destination order per goroutine so different
				// goroutines race on different first touches.
				d := (dst + int32(w)*7) % n
				for node := int32(0); node < n; node++ {
					if node == d {
						continue
					}
					full.PortMask(node, 0, 0, d, &pmF)
					lazy.PortMask(node, 0, 0, d, &pmL)
					if pmF.StaticMask != pmL.StaticMask {
						select {
						case errs <- fmt.Sprintf("node %d dst %d: full %032b lazy %032b", node, d, pmF.StaticMask, pmL.StaticMask):
						default:
						}
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if msg, bad := <-errs; bad {
		t.Fatal(msg)
	}
}

// TestRouteTableDisabledViaConfig: a scan-only instance reports itself
// through WithoutRouteTable as-is, and a wide (>32-port) topology falls
// back to the scan path with PortMask declining, matching the pre-table
// behavior.
func TestRouteTableScanOnlyInstances(t *testing.T) {
	g, err := topology.NewRandomRegular(16, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := core.NewGraphAdaptive(g, core.GraphWithoutRouteTable())
	if err != nil {
		t.Fatal(err)
	}
	if again := scan.WithoutRouteTable(); again != core.Algorithm(scan) {
		t.Fatalf("WithoutRouteTable on a scan-only instance built a new value")
	}
}
