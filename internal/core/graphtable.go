package core

import "sync/atomic"

// RouteTableFullNodes is the route-table memory tier threshold: networks
// with at most this many nodes get the full destination-major n*n uint32
// mask table at construction (2048^2 x 4 B = 16 MB worst case); larger
// networks — up to the 4096-node generator cap, where a full table would
// cost 64 MB — get deterministic per-destination rows built lazily on
// first use instead, so memory scales with the destination set actually
// routed to. Tests and memory tuning override it per instance with
// GraphRouteTableFullLimit.
const RouteTableFullNodes = 2048

// RouteTableRouter is implemented by algorithms that compile their routing
// relation into flat next-hop tables at construction (GraphAdaptive).
// WithoutRouteTable returns an equivalent algorithm routing through the
// uncompiled scan path: decisions are bit-identical, only the per-decision
// cost differs. sim.Config.DisableRouteTable applies it at engine
// construction, mirroring DisablePortMask, so both paths stay reachable in
// one binary for A/B benchmarking and cross-check tests.
type RouteTableRouter interface {
	Algorithm
	WithoutRouteTable() Algorithm
}

// routeTable is the compiled form of the minimal fully-adaptive routing
// relation over a static digraph: mask(u, dst) is the set of ports of u
// whose endpoint is one hop closer to dst — a pure function of the
// adjacency, so it is computed once here and the hot path is a single
// load. Rows are destination-major (all nodes' masks for one destination
// contiguous) because that is the unit the lazy tier builds.
type routeTable struct {
	n     int
	ports int
	nbr   []int32 // flat node-major adjacency, shared with GraphAdaptive
	dist  []int16 // flat source-major distances, shared with GraphAdaptive
	// full is the complete n*n table (full[dst*n+u]), nil on the lazy tier.
	full []uint32
	// rows holds the lazy tier's per-destination rows. A row's content is a
	// pure function of the graph, so the first-touch race is benign: every
	// builder produces identical bits and CompareAndSwap keeps exactly one
	// canonical slice; concurrent engine workers therefore stay
	// bit-deterministic. After a destination's first use the path is
	// allocation-free, like the full tier.
	rows []atomic.Pointer[[]uint32]
}

// newRouteTable compiles the mask table over the given flat adjacency and
// distance tables, choosing the tier by fullLimit.
func newRouteTable(nbr []int32, dist []int16, n, ports, fullLimit int) *routeTable {
	t := &routeTable{n: n, ports: ports, nbr: nbr, dist: dist}
	if n <= fullLimit {
		t.full = make([]uint32, n*n)
		for dst := 0; dst < n; dst++ {
			t.fillRow(dst, t.full[dst*n:(dst+1)*n])
		}
	} else {
		t.rows = make([]atomic.Pointer[[]uint32], n)
	}
	return t
}

// fillRow computes the masks of every node toward one destination: bit p
// of row[u] is set iff port p of u leads one hop closer to dst. The
// destination's own row entry stays 0 (delivery is not a port move).
func (t *routeTable) fillRow(dst int, row []uint32) {
	for u := 0; u < t.n; u++ {
		closer := int16(t.dist[u*t.n+dst]) - 1
		m := uint32(0)
		for p := 0; p < t.ports; p++ {
			if v := t.nbr[u*t.ports+p]; v >= 0 && t.dist[int(v)*t.n+dst] == closer {
				m |= 1 << uint(p)
			}
		}
		row[u] = m
	}
}

// mask returns the minimal-port candidate set of node toward dst.
func (t *routeTable) mask(node, dst int32) uint32 {
	if t.full != nil {
		return t.full[int(dst)*t.n+int(node)]
	}
	if p := t.rows[dst].Load(); p != nil {
		return (*p)[node]
	}
	return t.buildRow(dst)[node]
}

// buildRow is the lazy tier's slow path, kept out of mask so the hot path
// inlines. See routeTable.rows for why the build race is benign.
func (t *routeTable) buildRow(dst int32) []uint32 {
	row := make([]uint32, t.n)
	t.fillRow(int(dst), row)
	t.rows[dst].CompareAndSwap(nil, &row)
	return *t.rows[dst].Load()
}
