// Package core implements the paper's primary contribution: routing
// functions in the style of Section 2, expressed over per-node queues and
// split into *static* links (whose queue dependency graph is a DAG, giving
// deadlock freedom) and *dynamic* links (extra adaptivity that may close
// cycles in the queue dependency graph, but is only ever offered when the
// packet retains a static escape path).
//
// The package provides:
//
//   - the Algorithm interface shared by the simulators, the QDG verifier and
//     the experiment harness;
//   - the fully-adaptive minimal hypercube algorithm of Section 3 and its
//     ablations (hung DAG without dynamic links, oblivious e-cube);
//   - the fully-adaptive minimal mesh algorithm of Section 4 (generalized to
//     k dimensions) and its ablations (two-phase without dynamic links,
//     dimension-order with directional queues);
//   - the adaptive shuffle-exchange algorithm of Section 5 (4 queues,
//     dateline cycle breaking, dynamic 1->0 exchanges in phase 1);
//   - the 4-queue fully-adaptive minimal torus algorithm the paper sketches
//     at the end of Section 4, realized with direction classes and bubble
//     flow control.
package core

import "repro/internal/topology"

// QueueClass identifies one of a node's central routing queues. Classes are
// numbered 0..NumClasses-1; injection and delivery queues are handled
// separately by the engines, matching the paper's model in which every node
// has an injection and a delivery queue in addition to its central queues.
type QueueClass = uint8

// LinkKind distinguishes the two transition types of Section 2.
type LinkKind uint8

const (
	// Static transitions belong to the underlying acyclic queue dependency
	// graph; a packet always has at least one Static candidate (possibly
	// delivery), which is what makes the scheme deadlock-free.
	Static LinkKind = iota
	// Dynamic transitions are the paper's dynamic links: extra moves that
	// may close QDG cycles but are only taken when free space is found, and
	// always lead to a queue from which a Static route onward exists.
	Dynamic
)

func (k LinkKind) String() string {
	if k == Static {
		return "static"
	}
	return "dynamic"
}

// PortInternal marks a move that stays inside the current node (phase
// changes, delivery, and self-loop shuffle steps).
const PortInternal = -1

// Move is one candidate next placement for a packet, as produced by
// Algorithm.Candidates. A remote move names the physical output port; an
// internal move (Port == PortInternal) transfers the packet between queues
// of the same node without using a link.
type Move struct {
	Node    int32      // node holding the target queue
	Port    int16      // output port from the current node, or PortInternal
	Class   QueueClass // target queue class (meaningless when Deliver)
	Kind    LinkKind   // static or dynamic transition
	MinFree uint8      // free slots required in the target queue (>= 1)
	Credit  uint8      // credited flow control (see below); 0 for normal moves
	Deliver bool       // consume the packet at Node instead of queueing it
	Work    uint32     // packet scratch state after taking this move
}

// Credit semantics. Moves onto a bubble ring (the channel-1 queues of a
// degenerate shuffle cycle) use credit-based flow control: the sender may
// commit the packet only when the target queue's capacity minus its
// occupancy minus its already-committed inbound packets is at least Credit,
// and the commitment reserves a slot, so the packet can never stall inside
// the link buffers. Credit 2 marks a ring *entry* (it must leave a spare
// slot on the ring: the bubble), Credit 1 a ring *continuation* (it may not
// over-commit the target). Queue-level occupancy plus inbound then never
// exceeds ring capacity minus one, which rules out deadlock on the ring; see
// the shuffle-exchange algorithm and the sim package for the accounting.

// Props describes static properties of an algorithm, used by the harness
// and by the property tests to decide which invariants to assert.
type Props struct {
	// Minimal algorithms deliver every packet in exactly
	// Distance(src, dst) hops (counting link traversals).
	Minimal bool
	// FullyAdaptive algorithms offer, at injection time, every minimal
	// first hop as a candidate (the paper's definition of full adaptivity).
	FullyAdaptive bool
	// AtomicOnly algorithms rely on MinFree > 1 conditions (bubble flow
	// control) whose check-then-move must be atomic; they run on the atomic
	// engine only.
	AtomicOnly bool
	// Credits marks algorithms that emit credited moves (Move.Credit > 0,
	// the buffered-engine form of bubble reservations). Their target-queue
	// occupancy is read remotely at claim time, so the buffered engine must
	// maintain it with atomics; credit-free algorithms get plain counters.
	Credits bool
}

// Algorithm is a routing function in the sense of Section 2, expressed
// operationally: given a packet's current queue and destination, Candidates
// enumerates the legal next placements. Implementations must be stateless
// with respect to packets (all per-packet state lives in the Work word) and
// safe for concurrent use.
type Algorithm interface {
	// Name returns a short identifier such as "hypercube-adaptive".
	Name() string

	// Topology returns the network the algorithm routes on.
	Topology() topology.Topology

	// NumClasses returns the number of central queues per node.
	NumClasses() int

	// ClassName returns a short label for a queue class (for diagnostics
	// and the QDG/DOT exports), e.g. "qA".
	ClassName(c QueueClass) string

	// Inject returns the class of the first central queue a fresh packet
	// enters at src, and its initial scratch state. It corresponds to the
	// routing function applied to the injection queue.
	Inject(src, dst int32) (QueueClass, uint32)

	// Candidates appends to buf the legal moves for a packet in queue
	// (node, class) with scratch work, destined to dst, and returns the
	// extended slice. The engines guarantee buf has length 0; Candidates
	// must not retain it. Moves must be emitted in low-to-high port order
	// among remote moves, so the FirstFree selection policy matches the
	// paper's "fills its output buffers from low to high dimensions".
	//
	// The returned set must be non-empty (possibly a Deliver move) for any
	// state reachable from an Inject result, and must contain at least one
	// Static move: the routing-function constraint that guarantees every
	// packet can always progress through the underlying DAG.
	Candidates(node int32, class QueueClass, work uint32, dst int32, buf []Move) []Move

	// MaxHops bounds the number of link traversals a packet from src to dst
	// may take; the engines assert it at delivery (livelock freedom).
	MaxHops(src, dst int32) int

	// Props reports the algorithm's static properties.
	Props() Props
}

// PortMasks describes a candidate set as port bitmasks: one uncredited,
// MinFree-1 remote move per set bit — exactly the moves Candidates emits, in
// ascending port order. Two encodings share the struct:
//
//   - Grouped (PerPort false; the hypercube fast case): bit t of Static[c]
//     is a static move through port t into class c. Usable when the
//     algorithm has at most 4 central queues and its static moves cluster
//     by target class; consumers recover the class by scanning the four
//     masks, which for the two-class schemes is a one-probe loop.
//   - Per-port (PerPort true): bit t of StaticMask is a static move through
//     port t into PortClass[t]. Used when the class structure outgrows the
//     grouped shape (the torus's 2^(k+1) wrap classes, the CCC's six phase
//     classes).
//
// In both encodings bit t of Dyn is a dynamic move through port t into
// DynClass; the static masks and Dyn must be pairwise disjoint. Work is the
// packet's scratch state after any static move and DynWork after any
// dynamic move. The two usually coincide (and are both zero for the
// work-free hypercube and mesh schemes); they differ for the
// shuffle-exchange, whose deferred 1->0 corrections advance the shuffle
// count on the static shuffle step but not on the dynamic exchange.
type PortMasks struct {
	Static   [4]uint32 // grouped encoding: static moves into class c
	Dyn      uint32    // dynamic moves (through the shared dynamic buffer)
	DynClass QueueClass
	// PerPort selects the per-port encoding: static moves come from
	// StaticMask/PortClass and the Static array is ignored.
	PerPort    bool
	Work       uint32         // scratch after a static move
	DynWork    uint32         // scratch after a dynamic move
	StaticMask uint32         // per-port encoding: union of static move ports
	PortClass  [32]QueueClass // per-port encoding: target class per port
}

// StaticUnion returns the union of the static port masks under either
// encoding.
func (pm *PortMasks) StaticUnion() uint32 {
	if pm.PerPort {
		return pm.StaticMask
	}
	return pm.Static[0] | pm.Static[1] | pm.Static[2] | pm.Static[3]
}

// StaticClass returns the target class of the static move through port t
// (which must be set in the static masks) under either encoding.
func (pm *PortMasks) StaticClass(t int) QueueClass {
	if pm.PerPort {
		return pm.PortClass[t]
	}
	c := QueueClass(0)
	for pm.Static[c]&(1<<uint(t)) == 0 {
		c++
	}
	return c
}

// PortMaskRouter is an optional fast path for Algorithm implementations
// whose candidate sets from some states have the PortMasks shape (no
// internal, credited, or delivery moves, at most one scratch value per link
// kind). For every other state PortMask reports ok == false and the caller
// must fall back to Candidates. The fallback is per state, not per run: a
// partial implementor may decline any subset of states and the engines
// route exactly those packets through Candidates within the same cycle, so
// declining is always safe (the engine tests pin this with an implementor
// that declines half its states).
//
// The simulators use the interface to route their hottest scan without
// materializing Move values; implementations must keep it exactly
// consistent with Candidates, which the portmask property tests and the
// engine determinism tests cross-check. The result is written through pm
// (caller-owned scratch that the implementation fully overwrites on a true
// return) rather than returned, keeping the per-packet call free of a
// by-value struct copy.
type PortMaskRouter interface {
	PortMask(node int32, class QueueClass, work uint32, dst int32, pm *PortMasks) bool
}

// Packet is a message in flight. Engines copy packets by value; the struct
// is kept small deliberately (the 16K-node simulations keep a few hundred
// thousand of them alive).
type Packet struct {
	ID         int64
	Src, Dst   int32
	InjectedAt int64 // cycle at which the packet entered the injection queue
	Hops       uint16
	Class      QueueClass // central queue class the packet occupies / targets
	MinFree    uint8      // free slots its pending move requires (in-flight packets)
	Work       uint32     // algorithm scratch state
}

// PendingInject is one committed injection produced by a batched traffic
// source for the current cycle: node Node injects a packet destined to Dst.
// It lives here (rather than in the sim package, next to the BatchSource
// interface it serves) so traffic sources can implement batched filling
// without importing the engines.
type PendingInject struct {
	Node int32
	Dst  int32
}

// HopsMisrouted is the misroute flag, stored in the top bit of Packet.Hops
// rather than a new field so the struct stays 32 bytes. Set once a packet
// has been detoured off a minimal path by fault-degraded routing; such
// packets are exempt from the minimality and MaxHops delivery asserts.
const HopsMisrouted uint16 = 1 << 15

// HopCount returns the number of link traversals, excluding the flag bit.
func (p *Packet) HopCount() int { return int(p.Hops &^ HopsMisrouted) }

// Misrouted reports whether the packet ever left a minimal path.
func (p *Packet) Misrouted() bool { return p.Hops&HopsMisrouted != 0 }

// MarkMisrouted sets the misroute flag.
func (p *Packet) MarkMisrouted() { p.Hops |= HopsMisrouted }

// BufferClassOf maps a move to the link buffer it travels through in the
// buffered node model of Section 6: static transitions use the buffer
// associated with their target queue, dynamic transitions share the
// dedicated dynamic buffer (index NumClasses).
func BufferClassOf(a Algorithm, m Move) int {
	if m.Kind == Dynamic {
		return a.NumClasses()
	}
	return int(m.Class)
}
