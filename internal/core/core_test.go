package core

import (
	"math/rand"
	"testing"

	"repro/internal/topology"
)

// testAlgorithms returns small instances of every algorithm in the package.
func testAlgorithms() []Algorithm {
	return []Algorithm{
		NewHypercubeAdaptive(4),
		NewHypercubeHung(4),
		NewHypercubeECube(4),
		NewMeshAdaptive(4, 4),
		NewMeshAdaptive(3, 4, 2),
		NewMeshTwoPhase(4, 4),
		NewMeshXY(4, 4),
		NewMeshXY(3, 3, 3),
		NewShuffleExchangeAdaptive(4),
		NewShuffleExchangeStatic(4),
		NewShuffleExchangeEager(4),
		NewCCCAdaptive(3),
		NewCCCStatic(3),
		NewTorusAdaptive(4, 4),
		NewTorusAdaptive(5, 3),
		NewTorusAdaptive(3, 3, 3),
	}
}

// walk routes a single packet greedily from src to dst with no congestion,
// choosing among candidates with pick, and returns the number of link hops.
// It fails the test if the packet is not delivered within MaxHops link
// traversals (internal moves are bounded separately).
func walk(t *testing.T, a Algorithm, src, dst int32, pick func([]Move) Move) int {
	t.Helper()
	class, work := a.Inject(src, dst)
	node := src
	hops, internal := 0, 0
	buf := make([]Move, 0, 16)
	for {
		buf = a.Candidates(node, class, work, dst, buf[:0])
		if len(buf) == 0 {
			t.Fatalf("%s: no candidates at node=%d class=%d work=%#x dst=%d", a.Name(), node, class, work, dst)
		}
		m := pick(buf)
		if m.Deliver {
			if node != dst {
				t.Fatalf("%s: delivered at %d, want %d", a.Name(), node, dst)
			}
			return hops
		}
		if m.Port != PortInternal {
			hops++
			if want := a.Topology().Neighbor(int(node), int(m.Port)); want != int(m.Node) {
				t.Fatalf("%s: move via port %d from %d reaches %d, move says %d", a.Name(), m.Port, node, want, m.Node)
			}
		} else {
			internal++
		}
		if hops > a.MaxHops(src, dst) {
			t.Fatalf("%s: %d->%d exceeded MaxHops=%d", a.Name(), src, dst, a.MaxHops(src, dst))
		}
		if internal > 4*a.MaxHops(src, dst)+8 {
			t.Fatalf("%s: %d->%d spinning on internal moves", a.Name(), src, dst)
		}
		node, class, work = m.Node, m.Class, m.Work
	}
}

func forAllPairs(t *testing.T, a Algorithm, f func(src, dst int32)) {
	t.Helper()
	n := a.Topology().Nodes()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			f(int32(s), int32(d))
		}
	}
}

// TestWalkDeliversAllPairs routes every (src,dst) pair three ways: always
// the first candidate, always the last, and pseudo-randomly. Minimal
// algorithms must use exactly Distance(src,dst) link hops.
func TestWalkDeliversAllPairs(t *testing.T) {
	for _, a := range testAlgorithms() {
		a := a
		t.Run(a.Name()+"/"+a.Topology().Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			picks := map[string]func([]Move) Move{
				"first":  func(ms []Move) Move { return ms[0] },
				"last":   func(ms []Move) Move { return ms[len(ms)-1] },
				"random": func(ms []Move) Move { return ms[rng.Intn(len(ms))] },
			}
			for name, pick := range picks {
				forAllPairs(t, a, func(src, dst int32) {
					hops := walk(t, a, src, dst, pick)
					if a.Props().Minimal {
						if want := a.Topology().Distance(int(src), int(dst)); hops != want {
							t.Fatalf("pick=%s %d->%d took %d hops, want %d", name, src, dst, hops, want)
						}
					}
				})
			}
		})
	}
}

// TestStaticOnlyWalkDelivers re-routes every pair using only static
// candidates: the underlying DAG must reach the destination on its own.
func TestStaticOnlyWalkDelivers(t *testing.T) {
	for _, a := range testAlgorithms() {
		a := a
		t.Run(a.Name()+"/"+a.Topology().Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(2))
			pick := func(ms []Move) Move {
				static := ms[:0:0]
				for _, m := range ms {
					if m.Kind == Static {
						static = append(static, m)
					}
				}
				if len(static) == 0 {
					t.Fatalf("no static candidate among %v", ms)
				}
				return static[rng.Intn(len(static))]
			}
			forAllPairs(t, a, func(src, dst int32) { walk(t, a, src, dst, pick) })
		})
	}
}

// TestEveryStateHasStaticCandidate explores all states reachable through
// any candidate mix and checks the Section 2 requirement that a static move
// is always available.
func TestEveryStateHasStaticCandidate(t *testing.T) {
	for _, a := range testAlgorithms() {
		a := a
		t.Run(a.Name()+"/"+a.Topology().Name(), func(t *testing.T) {
			type state struct {
				node  int32
				class QueueClass
				work  uint32
				dst   int32
			}
			seen := make(map[state]bool)
			var stack []state
			forAllPairs(t, a, func(src, dst int32) {
				class, work := a.Inject(src, dst)
				s := state{src, class, work, dst}
				if !seen[s] {
					seen[s] = true
					stack = append(stack, s)
				}
			})
			buf := make([]Move, 0, 16)
			for len(stack) > 0 {
				s := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				buf = a.Candidates(s.node, s.class, s.work, s.dst, buf[:0])
				hasStatic := false
				for _, m := range buf {
					if m.Kind == Static {
						hasStatic = true
					}
					if m.Deliver {
						continue
					}
					ns := state{m.Node, m.Class, m.Work, s.dst}
					if !seen[ns] {
						seen[ns] = true
						stack = append(stack, ns)
					}
				}
				if !hasStatic {
					t.Fatalf("state node=%d class=%d work=%#x dst=%d has no static candidate",
						s.node, s.class, s.work, s.dst)
				}
			}
		})
	}
}

// TestFullAdaptivityAtInjection checks the paper's definition: for a
// fully-adaptive minimal algorithm, every neighbor on some minimal path must
// be offered as a candidate at injection time (dynamic links count: they are
// usable whenever space is found).
func TestFullAdaptivityAtInjection(t *testing.T) {
	for _, a := range testAlgorithms() {
		a := a
		if !a.Props().FullyAdaptive {
			continue
		}
		if _, isTorus := a.Topology().(*topology.Torus); isTorus {
			// The torus scheme fixes tie directions at injection; full
			// adaptivity is checked by TestTorusAdaptivityNoTies instead.
			continue
		}
		t.Run(a.Name()+"/"+a.Topology().Name(), func(t *testing.T) {
			checkFullAdaptivity(t, a, nil)
		})
	}
}

// checkFullAdaptivity verifies all minimal first hops are offered for every
// pair accepted by filter (nil accepts all).
func checkFullAdaptivity(t *testing.T, a Algorithm, filter func(src, dst int32) bool) {
	t.Helper()
	topo := a.Topology()
	buf := make([]Move, 0, 16)
	forAllPairs(t, a, func(src, dst int32) {
		if filter != nil && !filter(src, dst) {
			return
		}
		class, work := a.Inject(src, dst)
		buf = a.Candidates(src, class, work, dst, buf[:0])
		offered := make(map[int32]bool)
		for _, m := range buf {
			if !m.Deliver && m.Port != PortInternal {
				offered[m.Node] = true
			}
		}
		d := topo.Distance(int(src), int(dst))
		for p := 0; p < topo.Ports(); p++ {
			v := topo.Neighbor(int(src), p)
			if v == topology.None {
				continue
			}
			if topo.Distance(v, int(dst)) == d-1 && !offered[int32(v)] {
				t.Fatalf("%s: %d->%d: minimal first hop %d not offered (candidates %v)",
					a.Name(), src, dst, v, buf)
			}
		}
	})
}

// TestTorusAdaptivityNoTies checks full adaptivity on an odd-sided torus,
// where no direction ties exist and every minimal hop must be offered.
func TestTorusAdaptivityNoTies(t *testing.T) {
	checkFullAdaptivity(t, NewTorusAdaptive(5, 5), nil)
	checkFullAdaptivity(t, NewTorusAdaptive(3, 5, 3), nil)
}

// TestHypercubeRoutingFunction spot-checks the formal definition of Section 3.
func TestHypercubeRoutingFunction(t *testing.T) {
	a := NewHypercubeAdaptive(4)
	// s=0000, d=1010: incorrect zeros exist -> inject to qA.
	if c, _ := a.Inject(0b0000, 0b1010); c != ClassA {
		t.Errorf("Inject(0000,1010) class = %d, want qA", c)
	}
	// s=1010, d=0000: only incorrect ones -> inject to qB.
	if c, _ := a.Inject(0b1010, 0b0000); c != ClassB {
		t.Errorf("Inject(1010,0000) class = %d, want qB", c)
	}
	// In qA at 0011 heading to 1010: dims 0 (1->0), 3 (0->1) differ.
	ms := a.Candidates(0b0011, ClassA, 0, 0b1010, nil)
	if len(ms) != 2 {
		t.Fatalf("candidates = %v, want 2 moves", ms)
	}
	byNode := map[int32]Move{}
	for _, m := range ms {
		byNode[m.Node] = m
	}
	if m, ok := byNode[0b0010]; !ok || m.Kind != Dynamic {
		t.Errorf("1->0 correction to 0010 missing or not dynamic: %+v", m)
	}
	if m, ok := byNode[0b1011]; !ok || m.Kind != Static {
		t.Errorf("0->1 correction to 1011 missing or not static: %+v", m)
	}
	// In qA at 1011 heading to 1010 (only dim 0 incorrect, a 1): phase change.
	ms = a.Candidates(0b1011, ClassA, 0, 0b1010, nil)
	if len(ms) != 1 || ms[0].Port != PortInternal || ms[0].Class != ClassB {
		t.Errorf("phase change candidates = %v", ms)
	}
	// In qB at destination: deliver.
	ms = a.Candidates(0b1010, ClassB, 0, 0b1010, nil)
	if len(ms) != 1 || !ms[0].Deliver {
		t.Errorf("delivery candidates = %v", ms)
	}
}

// TestMeshRoutingFunction spot-checks the formal definition of Section 4.
func TestMeshRoutingFunction(t *testing.T) {
	a := NewMeshAdaptive(4, 4)
	m4 := a.Topology().(*topology.Mesh)
	at := func(x, y int) int32 { return int32(m4.NodeAt(x, y)) }

	// From (2,1) to (0,3): x descends (dynamic while y ascends), y ascends.
	ms := a.Candidates(at(2, 1), ClassA, 0, at(0, 3), nil)
	if len(ms) != 2 {
		t.Fatalf("candidates = %v", ms)
	}
	var sawDynDown, sawStatUp bool
	for _, m := range ms {
		if m.Node == at(1, 1) && m.Kind == Dynamic {
			sawDynDown = true
		}
		if m.Node == at(2, 2) && m.Kind == Static {
			sawStatUp = true
		}
	}
	if !sawDynDown || !sawStatUp {
		t.Errorf("expected dynamic -x and static +y moves, got %v", ms)
	}

	// From (2,1) to (0,1): pure descent -> phase change in qA.
	ms = a.Candidates(at(2, 1), ClassA, 0, at(0, 1), nil)
	if len(ms) != 1 || ms[0].Class != ClassB || ms[0].Port != PortInternal {
		t.Errorf("phase-change candidates = %v", ms)
	}

	// Injection straight into qB for a non-ascending destination.
	if c, _ := a.Inject(at(3, 3), at(1, 2)); c != ClassB {
		t.Errorf("Inject class = %d, want qB", c)
	}
}

// TestShuffleHopBound confirms Theorem 3's 3n bound is tight enough: some
// pair actually needs more than 2n link hops is *not* required, but all
// pairs must stay within 3n and the static-only scheme must too.
func TestShuffleHopBound(t *testing.T) {
	for _, a := range []Algorithm{NewShuffleExchangeAdaptive(5), NewShuffleExchangeStatic(5), NewShuffleExchangeEager(5)} {
		bound := 3 * 5
		rng := rand.New(rand.NewSource(3))
		forAllPairs(t, a, func(src, dst int32) {
			h := walk(t, a, src, dst, func(ms []Move) Move { return ms[rng.Intn(len(ms))] })
			if h > bound {
				t.Fatalf("%s: %d->%d took %d hops > 3n", a.Name(), src, dst, h)
			}
		})
	}
}

// TestECubeIsDimensionOrdered checks the oblivious baseline follows the
// unique dimension-ordered path.
func TestECubeIsDimensionOrdered(t *testing.T) {
	a := NewHypercubeECube(4)
	node, class, work := int32(0b0110), QueueClass(0), uint32(0)
	dst := int32(0b1001)
	class, work = func() (QueueClass, uint32) { c, w := a.Inject(node, dst); return c, w }()
	wantPath := []int32{0b0111, 0b0101, 0b0001, 0b1001}
	for i, want := range wantPath {
		ms := a.Candidates(node, class, work, dst, nil)
		if len(ms) != 1 {
			t.Fatalf("step %d: oblivious algorithm offered %d moves", i, len(ms))
		}
		if ms[0].Node != want {
			t.Fatalf("step %d: moved to %04b, want %04b", i, ms[0].Node, want)
		}
		if ms[0].Class != QueueClass(i+1) {
			t.Fatalf("step %d: class %d, want hop-ordered %d", i, ms[0].Class, i+1)
		}
		node, class, work = ms[0].Node, ms[0].Class, ms[0].Work
	}
	ms := a.Candidates(node, class, work, dst, nil)
	if len(ms) != 1 || !ms[0].Deliver {
		t.Fatalf("final candidates = %v", ms)
	}
}

// TestTorusWrapClassesGrow checks wrap classes only ever increase along any
// path, and that a packet crosses each dimension's wrap link at most once.
func TestTorusWrapClassesGrow(t *testing.T) {
	a := NewTorusAdaptive(4, 4)
	rng := rand.New(rand.NewSource(4))
	forAllPairs(t, a, func(src, dst int32) {
		class, work := a.Inject(src, dst)
		node := src
		buf := make([]Move, 0, 8)
		for {
			buf = a.Candidates(node, class, work, dst, buf[:0])
			m := buf[rng.Intn(len(buf))]
			if m.Deliver {
				return
			}
			if m.Class>>1 < class>>1 {
				t.Fatalf("%d->%d: wrap class shrank from %b to %b", src, dst, class>>1, m.Class>>1)
			}
			node, class, work = m.Node, m.Class, m.Work
		}
	})
}

// TestBufferClassOf pins down the buffered node model's buffer assignment.
func TestBufferClassOf(t *testing.T) {
	a := NewHypercubeAdaptive(3)
	if got := BufferClassOf(a, Move{Class: ClassB, Kind: Static}); got != 1 {
		t.Errorf("static move buffer = %d, want 1", got)
	}
	if got := BufferClassOf(a, Move{Class: ClassA, Kind: Dynamic}); got != 2 {
		t.Errorf("dynamic move buffer = %d, want NumClasses=2", got)
	}
}

// TestMinimalMovesReduceDistance checks that for minimal algorithms every
// remote candidate strictly reduces the distance to the destination.
func TestMinimalMovesReduceDistance(t *testing.T) {
	for _, a := range testAlgorithms() {
		if !a.Props().Minimal {
			continue
		}
		a := a
		t.Run(a.Name()+"/"+a.Topology().Name(), func(t *testing.T) {
			topo := a.Topology()
			rng := rand.New(rand.NewSource(5))
			buf := make([]Move, 0, 16)
			forAllPairs(t, a, func(src, dst int32) {
				class, work := a.Inject(src, dst)
				node := src
				for {
					buf = a.Candidates(node, class, work, dst, buf[:0])
					for _, m := range buf {
						if m.Deliver || m.Port == PortInternal {
							continue
						}
						d0 := topo.Distance(int(node), int(dst))
						d1 := topo.Distance(int(m.Node), int(dst))
						if d1 != d0-1 {
							t.Fatalf("%d->%d: move %d=>%d changes distance %d->%d", src, dst, node, m.Node, d0, d1)
						}
					}
					m := buf[rng.Intn(len(buf))]
					if m.Deliver {
						return
					}
					node, class, work = m.Node, m.Class, m.Work
				}
			})
		})
	}
}
