package core

import (
	"fmt"

	"repro/internal/topology"
)

// MeshAdaptive is the fully-adaptive minimal deadlock-free mesh algorithm of
// Section 4, generalized from 2 to k dimensions as the paper indicates. The
// mesh is hung from node (0,...,0) for phase A and from (n-1,...,n-1) for
// phase B. A phase-A packet moves toward higher coordinates through static
// links, and may also move toward lower coordinates through dynamic links as
// long as it still has some ascending correction left (the static escape
// path required by Section 2); once only descending corrections remain it
// changes to phase B, which descends statically. Two central queues per
// node, plus injection and delivery.
type MeshAdaptive struct {
	mesh *topology.Mesh
}

// NewMeshAdaptive returns the Section 4 algorithm on a k-dimensional mesh.
func NewMeshAdaptive(shape ...int) *MeshAdaptive {
	return &MeshAdaptive{mesh: topology.NewMesh(shape...)}
}

func (m *MeshAdaptive) Name() string                { return "mesh-adaptive" }
func (m *MeshAdaptive) Topology() topology.Topology { return m.mesh }
func (m *MeshAdaptive) NumClasses() int             { return 2 }
func (m *MeshAdaptive) ClassName(c QueueClass) string {
	if c == ClassA {
		return "qA"
	}
	return "qB"
}

func (m *MeshAdaptive) Props() Props { return Props{Minimal: true, FullyAdaptive: true} }

func (m *MeshAdaptive) MaxHops(src, dst int32) int {
	return m.mesh.Distance(int(src), int(dst))
}

func (m *MeshAdaptive) Inject(src, dst int32) (QueueClass, uint32) {
	if m.hasAscending(int(src), int(dst)) {
		return ClassA, 0
	}
	return ClassB, 0
}

// hasAscending reports whether some coordinate of dst exceeds the
// corresponding coordinate of cur.
func (m *MeshAdaptive) hasAscending(cur, dst int) bool {
	for i := 0; i < m.mesh.Dims(); i++ {
		if m.mesh.Coord(dst, i) > m.mesh.Coord(cur, i) {
			return true
		}
	}
	return false
}

// PortMask implements the PortMaskRouter fast path with the grouped
// encoding. Phase A offers one static ascending move per dimension still
// below its target — all into q_A, except that a single ascending dimension
// one step from its target makes every ascending move the last phase-A
// correction, entering q_B — plus one dynamic descending move per dimension
// above its target. Phase B is one static q_B move per descending
// dimension. Only the internal phase change (no ascent left in q_A,
// unreachable in normal operation) falls back to Candidates.
func (m *MeshAdaptive) PortMask(node int32, class QueueClass, work uint32, dst int32, pm *PortMasks) bool {
	if node == dst {
		return false
	}
	n, d := int(node), int(dst)
	var asc, desc uint32
	ascDims, gapOne := 0, false
	for i := 0; i < m.mesh.Dims(); i++ {
		cn, cd := m.mesh.Coord(n, i), m.mesh.Coord(d, i)
		switch {
		case cd > cn:
			asc |= 1 << uint(2*i)
			ascDims++
			gapOne = cd-cn == 1
		case cd < cn:
			desc |= 1 << uint(2*i+1)
		}
	}
	switch class {
	case ClassA:
		if asc == 0 {
			return false
		}
		*pm = PortMasks{Dyn: desc, DynClass: ClassA}
		if ascDims == 1 && gapOne {
			// The only ascending move is the last phase-A correction:
			// hasAscending is false at its endpoint, so it enters q_B.
			pm.Static[ClassB] = asc
		} else {
			// Either several ascending dimensions remain (each move leaves
			// the others pending) or the single one has gap > 1: every
			// endpoint still has ascent, so every move stays in q_A.
			pm.Static[ClassA] = asc
		}
		return true
	case ClassB:
		*pm = PortMasks{}
		pm.Static[ClassB] = desc
		return true
	}
	return false
}

func (m *MeshAdaptive) Candidates(node int32, class QueueClass, work uint32, dst int32, buf []Move) []Move {
	if node == dst {
		return append(buf, Move{Node: node, Port: PortInternal, Kind: Static, MinFree: 1, Deliver: true})
	}
	n, d := int(node), int(dst)
	switch class {
	case ClassA:
		if !m.hasAscending(n, d) {
			// Unreachable fallback: the last ascending correction enters
			// q_B directly on arrival (see below).
			return append(buf, Move{Node: node, Port: PortInternal, Class: ClassB, Kind: Static, MinFree: 1})
		}
		for i := 0; i < m.mesh.Dims(); i++ {
			cn, cd := m.mesh.Coord(n, i), m.mesh.Coord(d, i)
			switch {
			case cd > cn: // ascend: static link of the hung mesh
				next := m.mesh.Neighbor(n, 2*i)
				target := ClassA
				if !m.hasAscending(next, d) {
					target = ClassB // nothing left to correct in phase A
				}
				buf = append(buf, Move{
					Node: int32(next), Port: int16(2 * i),
					Class: target, Kind: Static, MinFree: 1,
				})
			case cd < cn: // descend while in phase A: dynamic link
				buf = append(buf, Move{
					Node: int32(m.mesh.Neighbor(n, 2*i+1)), Port: int16(2*i + 1),
					Class: ClassA, Kind: Dynamic, MinFree: 1,
				})
			}
		}
		return buf
	case ClassB:
		for i := 0; i < m.mesh.Dims(); i++ {
			if m.mesh.Coord(d, i) < m.mesh.Coord(n, i) {
				buf = append(buf, Move{
					Node: int32(m.mesh.Neighbor(n, 2*i+1)), Port: int16(2*i + 1),
					Class: ClassB, Kind: Static, MinFree: 1,
				})
			}
		}
		return buf
	}
	panic(fmt.Sprintf("mesh-adaptive: invalid queue class %d", class))
}

// MeshTwoPhase is the first scheme of Section 4: the same two hung phases
// but without dynamic links. Phase A only ascends, so a packet whose
// destination is entirely "below" its source along one dimension and "above"
// along another has partial adaptivity, and a packet with only descending
// corrections has a single path. Ablation baseline for the dynamic links.
type MeshTwoPhase struct {
	inner MeshAdaptive
}

// NewMeshTwoPhase returns the static two-phase mesh scheme.
func NewMeshTwoPhase(shape ...int) *MeshTwoPhase {
	return &MeshTwoPhase{inner: MeshAdaptive{mesh: topology.NewMesh(shape...)}}
}

func (m *MeshTwoPhase) Name() string                  { return "mesh-twophase" }
func (m *MeshTwoPhase) Topology() topology.Topology   { return m.inner.mesh }
func (m *MeshTwoPhase) NumClasses() int               { return 2 }
func (m *MeshTwoPhase) ClassName(c QueueClass) string { return m.inner.ClassName(c) }
func (m *MeshTwoPhase) Props() Props                  { return Props{Minimal: true} }

func (m *MeshTwoPhase) MaxHops(src, dst int32) int { return m.inner.MaxHops(src, dst) }

func (m *MeshTwoPhase) Inject(src, dst int32) (QueueClass, uint32) {
	return m.inner.Inject(src, dst)
}

// PortMask is the adaptive mesh's mask with the dynamic links removed,
// mirroring what Candidates filters.
func (m *MeshTwoPhase) PortMask(node int32, class QueueClass, work uint32, dst int32, pm *PortMasks) bool {
	if !m.inner.PortMask(node, class, work, dst, pm) {
		return false
	}
	pm.Dyn = 0
	return true
}

func (m *MeshTwoPhase) Candidates(node int32, class QueueClass, work uint32, dst int32, buf []Move) []Move {
	buf = m.inner.Candidates(node, class, work, dst, buf)
	// Drop the dynamic links; what remains is the underlying acyclic scheme.
	kept := buf[:0]
	for _, mv := range buf {
		if mv.Kind == Static {
			kept = append(kept, mv)
		}
	}
	return kept
}

// MeshXY is the oblivious dimension-order baseline (XY routing in two
// dimensions): each packet corrects its dimensions from low to high, each in
// a fixed direction. Store-and-forward dimension-order routing with a single
// central queue can deadlock head-on, so each (dimension, direction) pair
// gets its own queue class: transitions move to strictly higher classes or
// stay within a class while moving monotonically, so the QDG is acyclic.
// 2k queues per node for a k-dimensional mesh — already more than the
// adaptive scheme's two.
type MeshXY struct {
	mesh *topology.Mesh
}

// NewMeshXY returns the oblivious dimension-order mesh baseline.
func NewMeshXY(shape ...int) *MeshXY {
	return &MeshXY{mesh: topology.NewMesh(shape...)}
}

func (m *MeshXY) Name() string                { return "mesh-xy" }
func (m *MeshXY) Topology() topology.Topology { return m.mesh }
func (m *MeshXY) NumClasses() int             { return 2 * m.mesh.Dims() }
func (m *MeshXY) ClassName(c QueueClass) string {
	dir := "+"
	if c&1 == 1 {
		dir = "-"
	}
	return fmt.Sprintf("d%d%s", c/2, dir)
}

func (m *MeshXY) Props() Props { return Props{Minimal: true} }

func (m *MeshXY) MaxHops(src, dst int32) int { return m.mesh.Distance(int(src), int(dst)) }

// classFor returns the queue class of a packet at cur destined to dst: the
// (dimension, direction) of its next correction in dimension order.
func (m *MeshXY) classFor(cur, dst int) QueueClass {
	for i := 0; i < m.mesh.Dims(); i++ {
		cn, cd := m.mesh.Coord(cur, i), m.mesh.Coord(dst, i)
		if cd > cn {
			return QueueClass(2 * i)
		}
		if cd < cn {
			return QueueClass(2*i + 1)
		}
	}
	return 0 // cur == dst; class is irrelevant, delivery follows
}

func (m *MeshXY) Inject(src, dst int32) (QueueClass, uint32) {
	return m.classFor(int(src), int(dst)), 0
}

func (m *MeshXY) Candidates(node int32, class QueueClass, work uint32, dst int32, buf []Move) []Move {
	if node == dst {
		return append(buf, Move{Node: node, Port: PortInternal, Kind: Static, MinFree: 1, Deliver: true})
	}
	n, d := int(node), int(dst)
	for i := 0; i < m.mesh.Dims(); i++ {
		cn, cd := m.mesh.Coord(n, i), m.mesh.Coord(d, i)
		if cn == cd {
			continue
		}
		port := 2 * i
		if cd < cn {
			port++
		}
		next := m.mesh.Neighbor(n, port)
		nextClass := m.classFor(next, d)
		if next == d {
			// Final hop: the packet is consumed on arrival; keep the
			// current class so queue classes stay monotone along any route.
			nextClass = class
		}
		return append(buf, Move{
			Node: int32(next), Port: int16(port),
			Class: nextClass, Kind: Static, MinFree: 1,
		})
	}
	panic("mesh-xy: unreachable")
}
