package core

import (
	"testing"

	"repro/internal/topology"
)

// TestCCCForcedCubeHop: a 0->1 correction at the current position is the
// only phase-1 candidate, and the move folds the phase change when it is
// the last one.
func TestCCCForcedCubeHop(t *testing.T) {
	c := NewCCCAdaptive(3)
	net := c.net
	// At (w=010, i=0), dst vertex 011: dimension 0 needs 0->1 and is the
	// only incorrect zero -> cube hop folding into phase 2 (dimension 1 is
	// correct, no 1->0 work) ... dst vertex 011 vs w=010: diff = 001: only
	// a 0->1 at dim 0, after which the vertex is correct -> phase 3.
	node := int32(net.NodeAt(0b010, 0))
	dst := int32(net.NodeAt(0b011, 2))
	ms := c.Candidates(node, ClassCCCP1C0, 0, dst, nil)
	if len(ms) != 1 {
		t.Fatalf("candidates = %v, want the forced cube hop", ms)
	}
	m := ms[0]
	if m.Port != topology.CCCCube || m.Node != int32(net.NodeAt(0b011, 0)) {
		t.Errorf("cube hop wrong: %+v", m)
	}
	if m.Class != ClassCCCP3C0 {
		t.Errorf("phase fold wrong: class %d, want p3c0 (vertex complete)", m.Class)
	}
}

// TestCCCRideAndDynamic: with the needed 0->1 at a later position, phase 1
// rides the ring forward and may fix a 1->0 early through the dynamic link.
func TestCCCRideAndDynamic(t *testing.T) {
	c := NewCCCAdaptive(3)
	net := c.net
	// At (w=011, i=0): dst vertex 110. Diffs: dim 0 is 1->0 (dynamic here),
	// dim 2 is 0->1 (ahead at position 2).
	node := int32(net.NodeAt(0b011, 0))
	dst := int32(net.NodeAt(0b110, 1))
	ms := c.Candidates(node, ClassCCCP1C0, 0, dst, nil)
	if len(ms) != 2 {
		t.Fatalf("candidates = %v, want ring + dynamic cube", ms)
	}
	var ride, dyn bool
	for _, m := range ms {
		switch m.Port {
		case topology.CCCRingPlus:
			ride = m.Kind == Static && m.Node == int32(net.NodeAt(0b011, 1))
		case topology.CCCCube:
			dyn = m.Kind == Dynamic && m.Node == int32(net.NodeAt(0b010, 0))
		}
	}
	if !ride || !dyn {
		t.Errorf("missing candidates: %v", ms)
	}
	// The static ablation drops the dynamic link.
	ms2 := NewCCCStatic(3).Candidates(node, ClassCCCP1C0, 0, dst, nil)
	if len(ms2) != 1 || ms2[0].Port != topology.CCCRingPlus {
		t.Errorf("static variant candidates = %v", ms2)
	}
}

// TestCCCDateline: the ring edge entering position 0 switches the channel.
func TestCCCDateline(t *testing.T) {
	c := NewCCCAdaptive(4)
	net := c.net
	mv := c.ringMove(int32(net.NodeAt(5, 3)), ClassCCCP2C0, ClassCCCP2C0)
	if mv.Node != int32(net.NodeAt(5, 0)) || mv.Class != ClassCCCP2C1 {
		t.Errorf("dateline crossing: %+v", mv)
	}
	mv = c.ringMove(int32(net.NodeAt(5, 1)), ClassCCCP2C0, ClassCCCP2C1)
	if mv.Node != int32(net.NodeAt(5, 2)) || mv.Class != ClassCCCP2C1 {
		t.Errorf("channel must persist off the dateline: %+v", mv)
	}
}

// TestCCCInjectPhases: the entry class reflects the remaining work.
func TestCCCInjectPhases(t *testing.T) {
	c := NewCCCAdaptive(3)
	net := c.net
	cases := []struct {
		srcW, dstW int
		want       QueueClass
	}{
		{0b001, 0b011, ClassCCCP1C0}, // needs a 0->1
		{0b011, 0b001, ClassCCCP2C0}, // only 1->0
		{0b011, 0b011, ClassCCCP3C0}, // vertex correct, align only
	}
	for _, tc := range cases {
		src := int32(net.NodeAt(tc.srcW, 0))
		dst := int32(net.NodeAt(tc.dstW, 2))
		if got, _ := c.Inject(src, dst); got != tc.want {
			t.Errorf("Inject(w%03b->w%03b) = %d, want %d", tc.srcW, tc.dstW, got, tc.want)
		}
	}
}

// TestCCCAlignmentPhase: with the vertex correct, phase 3 rides forward to
// the destination position only.
func TestCCCAlignmentPhase(t *testing.T) {
	c := NewCCCAdaptive(4)
	net := c.net
	node := int32(net.NodeAt(9, 1))
	dst := int32(net.NodeAt(9, 3))
	ms := c.Candidates(node, ClassCCCP3C0, 0, dst, nil)
	if len(ms) != 1 || ms[0].Port != topology.CCCRingPlus || ms[0].Node != int32(net.NodeAt(9, 2)) {
		t.Fatalf("alignment candidates = %v", ms)
	}
	// At the destination node itself: deliver.
	ms = c.Candidates(dst, ClassCCCP3C0, 0, dst, nil)
	if len(ms) != 1 || !ms[0].Deliver {
		t.Fatalf("delivery candidates = %v", ms)
	}
}

// TestCCCHopBound: the 4n bound holds with slack on full all-pairs walks
// (the walks themselves run in the shared core tests; here we pin the
// constant).
func TestCCCHopBound(t *testing.T) {
	c := NewCCCAdaptive(5)
	if got := c.MaxHops(0, 1); got != 20 {
		t.Errorf("MaxHops = %d, want 4n = 20", got)
	}
}
