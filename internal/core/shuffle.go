package core

import (
	"fmt"

	"repro/internal/topology"
)

// Queue classes of the shuffle-exchange scheme: two phases, each with the
// two dateline channels that break the shuffle cycles (Section 5: "each node
// will have 4 queues, and an injection and a delivery queue").
const (
	ClassP1C0 QueueClass = 0 // phase 1, before crossing the cycle's dateline
	ClassP1C1 QueueClass = 1 // phase 1, after crossing the dateline
	ClassP2C0 QueueClass = 2 // phase 2, before crossing the dateline
	ClassP2C1 QueueClass = 3 // phase 2, after crossing the dateline
)

// shuffleWork packs the per-packet bookkeeping of the shuffle-exchange
// algorithm into the 32-bit scratch word: the total number of shuffle steps
// taken (k) and the shuffle count at which the packet switched to phase 2.
func shuffleWork(k, kSwitch int) uint32 { return uint32(k) | uint32(kSwitch)<<8 }

func shuffleK(w uint32) int       { return int(w & 0xff) }
func shuffleKSwitch(w uint32) int { return int(w >> 8 & 0xff) }

// ShuffleExchangeAdaptive is the adaptive deadlock-free shuffle-exchange
// algorithm of Section 5. A packet takes 2n shuffle steps in two phases of n
// steps each; after k shuffles the bit currently in the least-significant
// position is the one that will occupy final position (n - k mod n) mod n,
// so the packet (which records k) knows whether to traverse the exchange
// link. Phase 1 performs the 0->1 corrections through static exchange links
// and, through the added dynamic links, may opportunistically perform 1->0
// corrections too; phase 2 performs the remaining 1->0 corrections. Packets
// are consumed as soon as they arrive at their destination.
//
// Deadlock freedom: exchanges in phase 1 ascend cycle levels and in phase 2
// descend them, and within each phase the shuffle cycles are broken with a
// dateline (the shuffle edge entering the cycle's minimum-address node):
// crossing it moves the packet from channel 0 to channel 1. Degenerate
// cycles (periodic addresses, length < n) can force a packet around a cycle
// more than once; a second dateline crossing stays in channel 1 and is
// guarded by a bubble condition (the move requires two free slots in the
// target queue), so the channel-1 ring of a cycle can never fill completely.
// The paper defers the formal routing function to [PGFS91], which was never
// published; the dateline-plus-bubble realization here is verified
// mechanically by the qdg package and empirically by the deadlock watchdog.
type ShuffleExchangeAdaptive struct {
	net     *topology.ShuffleExchange
	dynamic bool // offer the phase-1 dynamic 1->0 exchange links
	eager   bool // offer the early phase switch (extension, see below)
}

// NewShuffleExchangeAdaptive returns the Section 5 algorithm on the 2^dims
// node shuffle-exchange network.
func NewShuffleExchangeAdaptive(dims int) *ShuffleExchangeAdaptive {
	return &ShuffleExchangeAdaptive{net: topology.NewShuffleExchange(dims), dynamic: true}
}

// NewShuffleExchangeStatic returns the underlying scheme without the dynamic
// links: every 1->0 correction waits for phase 2. Ablation baseline.
func NewShuffleExchangeStatic(dims int) *ShuffleExchangeAdaptive {
	return &ShuffleExchangeAdaptive{net: topology.NewShuffleExchange(dims), dynamic: false}
}

// NewShuffleExchangeEager returns the adaptive scheme extended with an early
// phase switch: a packet may enter phase 2 before completing its n phase-1
// shuffle steps as soon as none of its remaining unexamined phase-1
// positions needs a 0->1 correction (phase 2 can handle everything left).
// This shortens paths — phase 2 then ends after kSwitch+n < 2n shuffles —
// at no cost in queues; the extra internal transition descends the phase
// order, so the QDG certification is unaffected. An extension beyond the
// paper, kept separate so the published scheme stays exactly Section 5.
func NewShuffleExchangeEager(dims int) *ShuffleExchangeAdaptive {
	return &ShuffleExchangeAdaptive{net: topology.NewShuffleExchange(dims), dynamic: true, eager: true}
}

func (s *ShuffleExchangeAdaptive) Name() string {
	switch {
	case s.eager:
		return "shuffle-eager"
	case s.dynamic:
		return "shuffle-adaptive"
	default:
		return "shuffle-static"
	}
}

func (s *ShuffleExchangeAdaptive) Topology() topology.Topology { return s.net }
func (s *ShuffleExchangeAdaptive) NumClasses() int             { return 4 }

func (s *ShuffleExchangeAdaptive) ClassName(c QueueClass) string {
	switch c {
	case ClassP1C0:
		return "p1c0"
	case ClassP1C1:
		return "p1c1"
	case ClassP2C0:
		return "p2c0"
	case ClassP2C1:
		return "p2c1"
	}
	return fmt.Sprintf("class%d", c)
}

func (s *ShuffleExchangeAdaptive) Props() Props {
	// Adaptive but not minimal, and the bubble guard needs atomic
	// check-then-move semantics, so the algorithm runs on both engines but
	// its deadlock guarantee is only exact on the atomic one.
	return Props{Minimal: false, FullyAdaptive: false, Credits: true}
}

func (s *ShuffleExchangeAdaptive) MaxHops(src, dst int32) int {
	// At most 2n shuffle steps and n exchange steps (Theorem 3). Shuffle
	// steps at the two fixed points of the rotation are internal and do not
	// traverse links, so 3n also bounds the link hops. The eager variant
	// trades up to n saved phase-1 steps for up to n-1 "riding" steps that
	// realign the rotation, so its worst case is k0 + n + (n-1) shuffles
	// plus n exchanges: bounded by 4n.
	if s.eager {
		return 4 * s.net.Dims()
	}
	return 3 * s.net.Dims()
}

// examTarget returns the destination bit that the least-significant bit of
// the current address must match after k shuffle steps: an exchange taken
// now flips the bit that ends at final position (n - k mod n) mod n.
func (s *ShuffleExchangeAdaptive) examTarget(dst int32, k int) int {
	n := s.net.Dims()
	p := (n - k%n) % n
	return int(dst) >> p & 1
}

// noZeroFixRemains reports whether none of the phase-1 exam positions still
// ahead of a packet at node with shuffle count k (counts k..n-1) requires a
// 0->1 correction. The bit examined at count j currently sits at position
// (k-j) mod n of the node address and must match destination bit
// (n - j mod n) mod n.
func (s *ShuffleExchangeAdaptive) noZeroFixRemains(node, dst int32, k int) bool {
	n := s.net.Dims()
	for j := k; j < n; j++ {
		cur := int(node) >> (((k-j)%n + n) % n) & 1
		want := s.examTarget(dst, j)
		if cur == 0 && want == 1 {
			return false
		}
	}
	return true
}

func (s *ShuffleExchangeAdaptive) Inject(src, dst int32) (QueueClass, uint32) {
	if incorrectZeros(src, dst) == 0 {
		// Only 1->0 corrections (or none): skip phase 1 entirely.
		return ClassP2C0, shuffleWork(0, 0)
	}
	return ClassP1C0, shuffleWork(0, 0)
}

// shuffleMove builds the static shuffle step from node with the given phase
// base class (ClassP1C0 or ClassP2C0) and current channel.
func (s *ShuffleExchangeAdaptive) shuffleMove(node int32, base, cur QueueClass, w uint32) Move {
	k := shuffleK(w)
	next := s.net.RotLeft(int(node))
	nw := shuffleWork(k+1, shuffleKSwitch(w))
	if next == int(node) {
		// Fixed point of the rotation (0...0 / 1...1): the shuffle step is
		// internal; the packet stays put and its count advances.
		return Move{Node: node, Port: PortInternal, Class: cur, Kind: Static, MinFree: 1, Work: nw}
	}
	channel := cur - base // 0 or 1
	crossing := next == s.net.CycleBreak(int(node))
	if crossing {
		channel = 1
	}
	mv := Move{
		Node: int32(next), Port: topology.ShufflePort,
		Class: base + channel, Kind: Static, MinFree: 1, Work: nw,
	}
	// In a full-length cycle a packet stays fewer than CycleLen steps, so
	// it crosses the dateline at most once and the channel-1 queues stay
	// acyclic: ordinary blocking flow control suffices. In a degenerate
	// (periodic-address) cycle a packet may wrap again, closing the
	// channel-1 ring; every move onto that ring is then *credited* (bubble
	// flow control): an entry from channel 0 must leave a spare slot on the
	// ring (Credit 2) and a continuation may not over-commit its target
	// (Credit 1), which keeps the ring from ever filling completely.
	if channel == 1 && s.net.CycleLen(int(node)) < s.net.Dims() {
		if crossing && cur-base == 0 {
			mv.Credit = 2
		} else {
			mv.Credit = 1
		}
	}
	return mv
}

// PortMask implements the PortMaskRouter fast path with the grouped
// encoding (4 classes). Mask-eligible states are the pure link moves:
// a mandatory or phase-2 exchange, an ordinary (uncredited, non-fixed-point)
// shuffle step, and the phase-1 deferred correction, whose static shuffle
// and dynamic exchange advance the shuffle count differently — the only
// algorithm where Work and DynWork diverge. States with an internal move
// (phase changes, eager early switch, rotation fixed points) or a credited
// bubble move (degenerate-cycle channel-1 rings) decline to Candidates.
func (s *ShuffleExchangeAdaptive) PortMask(node int32, class QueueClass, work uint32, dst int32, pm *PortMasks) bool {
	if node == dst {
		return false
	}
	n := s.net.Dims()
	k := shuffleK(work)
	bit0 := int(node) & 1
	want := s.examTarget(dst, k)

	switch class {
	case ClassP1C0, ClassP1C1:
		if k == n {
			return false // internal phase change
		}
		if s.eager && s.noZeroFixRemains(node, dst, k) {
			return false // internal early switch is one of the candidates
		}
		if bit0 == 0 && want == 1 {
			*pm = PortMasks{Work: work}
			pm.Static[ClassP1C0] = 1 << topology.ExchangePort
			return true
		}
		sc, sw, ok := s.shuffleMask(node, ClassP1C0, class, work)
		if !ok {
			return false
		}
		*pm = PortMasks{Work: sw}
		pm.Static[sc] = 1 << topology.ShufflePort
		if bit0 == 1 && want == 0 && s.dynamic {
			// Deferred 1->0 fix: the dynamic exchange keeps the shuffle
			// count, the static shuffle advances it.
			pm.Dyn = 1 << topology.ExchangePort
			pm.DynClass = ClassP1C0
			pm.DynWork = work
		}
		return true
	case ClassP2C0, ClassP2C1:
		if k >= shuffleKSwitch(work)+n {
			if !s.eager {
				return false // Candidates panics; keep the slow path's report
			}
			sc, sw, ok := s.shuffleMask(node, ClassP2C0, class, work)
			if !ok {
				return false
			}
			*pm = PortMasks{Work: sw}
			pm.Static[sc] = 1 << topology.ShufflePort
			return true
		}
		if bit0 == 1 && want == 0 {
			*pm = PortMasks{Work: work}
			pm.Static[ClassP2C0] = 1 << topology.ExchangePort
			return true
		}
		if bit0 == 0 && want == 1 {
			return false // Candidates panics; keep the slow path's report
		}
		sc, sw, ok := s.shuffleMask(node, ClassP2C0, class, work)
		if !ok {
			return false
		}
		*pm = PortMasks{Work: sw}
		pm.Static[sc] = 1 << topology.ShufflePort
		return true
	}
	return false
}

// shuffleMask mirrors shuffleMove for the mask path: it returns the target
// class and scratch of the static shuffle step, or ok == false when the step
// is not mask-representable (rotation fixed point: internal; degenerate-cycle
// channel-1 ring: credited).
func (s *ShuffleExchangeAdaptive) shuffleMask(node int32, base, cur QueueClass, w uint32) (QueueClass, uint32, bool) {
	next := s.net.RotLeft(int(node))
	if next == int(node) {
		return 0, 0, false
	}
	channel := cur - base
	if next == s.net.CycleBreak(int(node)) {
		channel = 1
	}
	if channel == 1 && s.net.CycleLen(int(node)) < s.net.Dims() {
		return 0, 0, false
	}
	return base + channel, shuffleWork(shuffleK(w)+1, shuffleKSwitch(w)), true
}

func (s *ShuffleExchangeAdaptive) Candidates(node int32, class QueueClass, work uint32, dst int32, buf []Move) []Move {
	if node == dst {
		return append(buf, Move{Node: node, Port: PortInternal, Kind: Static, MinFree: 1, Deliver: true, Work: work})
	}
	n := s.net.Dims()
	k := shuffleK(work)
	bit0 := int(node) & 1
	want := s.examTarget(dst, k)

	switch class {
	case ClassP1C0, ClassP1C1:
		if k == n {
			// Phase 1 budget exhausted: change phase in place.
			return append(buf, Move{
				Node: node, Port: PortInternal, Class: ClassP2C0, Kind: Static, MinFree: 1,
				Work: shuffleWork(k, k),
			})
		}
		if s.eager && s.noZeroFixRemains(node, dst, k) {
			// Extension: none of the remaining phase-1 positions needs a
			// 0->1 correction, so phase 2 can take over immediately and the
			// packet saves up to n-k shuffle steps.
			buf = append(buf, Move{
				Node: node, Port: PortInternal, Class: ClassP2C0, Kind: Static, MinFree: 1,
				Work: shuffleWork(k, k),
			})
		}
		exch := Move{
			Node: node ^ 1, Port: topology.ExchangePort,
			Class: ClassP1C0, Kind: Static, MinFree: 1, Work: work,
		}
		switch {
		case bit0 == 0 && want == 1:
			// Mandatory 0->1 correction: phase 2 cannot perform it.
			return append(buf, exch)
		case bit0 == 1 && want == 0:
			// Deferred correction: shuffle on statically, or take the
			// dynamic exchange link and do the 1->0 fix now.
			buf = append(buf, s.shuffleMove(node, ClassP1C0, class, work))
			if s.dynamic {
				exch.Kind = Dynamic
				buf = append(buf, exch)
			}
			return buf
		default:
			return append(buf, s.shuffleMove(node, ClassP1C0, class, work))
		}
	case ClassP2C0, ClassP2C1:
		if k >= shuffleKSwitch(work)+n {
			// All exam positions have been covered. With the paper's
			// kSwitch == n this is unreachable (2n shuffles realign the
			// rotation exactly at the destination); after an eager switch
			// the packet is bit-correct but rotationally misaligned and
			// rides the destination's shuffle cycle home (< CycleLen more
			// steps, consumed by the node == dst check above).
			if !s.eager {
				panic(fmt.Sprintf("shuffle-exchange: packet for %d stranded at %d after phase 2 (k=%d)", dst, node, k))
			}
			return append(buf, s.shuffleMove(node, ClassP2C0, class, work))
		}
		if bit0 == 1 && want == 0 {
			return append(buf, Move{
				Node: node ^ 1, Port: topology.ExchangePort,
				Class: ClassP2C0, Kind: Static, MinFree: 1, Work: work,
			})
		}
		if bit0 == 0 && want == 1 {
			panic(fmt.Sprintf("shuffle-exchange: 0->1 correction required in phase 2 at node %d for %d (k=%d)", node, dst, k))
		}
		return append(buf, s.shuffleMove(node, ClassP2C0, class, work))
	}
	panic(fmt.Sprintf("shuffle-exchange: invalid queue class %d", class))
}
