package core

import (
	"fmt"
	"testing"

	"repro/internal/topology"
)

// movesFromMasks expands a PortMasks value into the Move list it promises:
// one uncredited MinFree-1 remote move per set bit, in ascending port order,
// under either encoding.
func movesFromMasks(t topology.Topology, node int32, pm *PortMasks) []Move {
	var out []Move
	all := pm.StaticUnion() | pm.Dyn
	for p := 0; p < 32; p++ {
		bit := uint32(1) << uint(p)
		if all&bit == 0 {
			continue
		}
		mv := Move{Node: int32(t.Neighbor(int(node), p)), Port: int16(p), MinFree: 1}
		if pm.Dyn&bit != 0 {
			mv.Kind = Dynamic
			mv.Class = pm.DynClass
			mv.Work = pm.DynWork
		} else {
			mv.Class = pm.StaticClass(p)
			mv.Work = pm.Work
		}
		out = append(out, mv)
	}
	return out
}

// maskShaped reports whether the candidate set could be represented by
// PortMasks at all: only remote, uncredited, MinFree-1 moves. A PortMask
// implementation may decline any state, but declining a mask-shaped state
// forfeits the fast path, so the property test also tracks acceptance
// coverage per implementor.
func maskShaped(moves []Move) bool {
	for i := range moves {
		m := &moves[i]
		if m.Deliver || m.Port == PortInternal || m.Credit != 0 || m.MinFree != 1 {
			return false
		}
	}
	return true
}

// checkMaskState cross-checks PortMask against Candidates in one state and
// returns whether the implementation accepted it.
func checkMaskState(t *testing.T, a Algorithm, pmr PortMaskRouter,
	node int32, class QueueClass, work uint32, dst int32, want []Move) bool {
	t.Helper()
	var pm PortMasks
	ok := pmr.PortMask(node, class, work, dst, &pm)
	ctx := func() string {
		return fmt.Sprintf("%s node=%d dst=%d class=%d work=%#x", a.Name(), node, dst, class, work)
	}
	if !ok {
		if maskShaped(want) && len(want) > 0 {
			// Declining is always *safe* (the engines fall back per state),
			// but every current implementor accepts exactly the mask-shaped
			// states, so a decline here is a lost fast path — flag it.
			t.Fatalf("%s: PortMask declined a mask-shaped state with moves %v", ctx(), want)
		}
		return false
	}
	if !maskShaped(want) {
		t.Fatalf("%s: PortMask accepted a state with non-mask moves %v", ctx(), want)
	}
	// Disjointness invariant under the active encoding.
	seen := uint32(0)
	masks := []uint32{pm.Dyn, pm.StaticMask}
	if !pm.PerPort {
		masks = []uint32{pm.Dyn, pm.Static[0], pm.Static[1], pm.Static[2], pm.Static[3]}
	}
	for _, m := range masks {
		if seen&m != 0 {
			t.Fatalf("%s: overlapping masks %+v", ctx(), pm)
		}
		seen |= m
	}
	got := movesFromMasks(a.Topology(), node, &pm)
	if len(got) != len(want) {
		t.Fatalf("%s: %d mask moves %v, %d candidates %v", ctx(), len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s move %d: mask %+v != candidate %+v", ctx(), i, got[i], want[i])
		}
	}
	return true
}

// maskState is a routing state as the engines see it: a packet in queue
// (node, class) with scratch work. The destination is fixed per walk.
type maskState struct {
	node  int32
	class QueueClass
	work  uint32
}

// TestPortMaskMatchesCandidatesReachable is the PortMaskRouter property test:
// for every algorithm constructor (including the ablation variants), walk
// every (class, work) state reachable from every Inject result via
// Candidates, and in each state require PortMask to either decline (legal
// only when the candidate set contains an internal, delivery, or credited
// move) or reproduce the Candidates output move-by-move. Both engines rely on
// this equivalence for bit-determinism, since a run routes each packet
// through whichever path its state selects.
func TestPortMaskMatchesCandidatesReachable(t *testing.T) {
	algos := []Algorithm{
		NewHypercubeAdaptive(4),
		NewHypercubeHung(4),
		NewHypercubeECube(4), // no PortMask: covered as the non-implementor control
		NewMeshAdaptive(4, 4),
		NewMeshAdaptive(3, 3, 3),
		NewMeshTwoPhase(4, 4),
		NewMeshXY(4, 4), // no PortMask
		NewTorusAdaptive(4, 4),
		NewTorusAdaptive(3, 5),
		NewTorusAdaptive(3, 3, 3),
		NewShuffleExchangeAdaptive(4), // dims 4 and 6 have degenerate cycles
		NewShuffleExchangeAdaptive(6),
		NewShuffleExchangeStatic(4),
		NewShuffleExchangeEager(5),
		NewCCCAdaptive(3),
		NewCCCAdaptive(4),
		NewCCCStatic(3),
	}
	for _, a := range algos {
		a := a
		t.Run(a.Name()+"/"+a.Topology().Name(), func(t *testing.T) {
			pmr, ok := a.(PortMaskRouter)
			if !ok {
				switch a.(type) {
				case *HypercubeECube, *MeshXY:
					t.Skip("oblivious baseline: no PortMask by design")
				}
				t.Fatalf("%s does not implement PortMaskRouter", a.Name())
			}
			topo := a.Topology()
			n := int32(topo.Nodes())
			buf := make([]Move, 0, 64)
			accepted, declined := 0, 0
			for dst := int32(0); dst < n; dst++ {
				visited := make(map[maskState]bool)
				var stack []maskState
				push := func(s maskState) {
					if !visited[s] {
						visited[s] = true
						stack = append(stack, s)
					}
				}
				for src := int32(0); src < n; src++ {
					class, work := a.Inject(src, dst)
					push(maskState{src, class, work})
				}
				for len(stack) > 0 {
					s := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					want := a.Candidates(s.node, s.class, s.work, dst, buf[:0])
					if checkMaskState(t, a, pmr, s.node, s.class, s.work, dst, want) {
						accepted++
					} else {
						declined++
					}
					for i := range want {
						if want[i].Deliver {
							continue
						}
						push(maskState{want[i].Node, want[i].Class, want[i].Work})
					}
				}
			}
			if accepted == 0 {
				t.Fatalf("%s: PortMask accepted no reachable state", a.Name())
			}
			t.Logf("%s: %d states accepted, %d declined", a.Name(), accepted, declined)
		})
	}
}

// TestHypercubePortMaskMatchesCandidates exhaustively cross-checks the
// hypercube fast path over every (node, dst, class) triple — including the
// states unreachable through Candidates — at sizes the reachable-state walk
// does not cover.
func TestHypercubePortMaskMatchesCandidates(t *testing.T) {
	for _, dims := range []int{3, 5, 6} {
		h := NewHypercubeAdaptive(dims)
		var pmr PortMaskRouter = h
		n := int32(1) << dims
		buf := make([]Move, 0, dims)
		for node := int32(0); node < n; node++ {
			for dst := int32(0); dst < n; dst++ {
				for _, class := range []QueueClass{ClassA, ClassB} {
					want := h.Candidates(node, class, 0, dst, buf[:0])
					checkMaskState(t, h, pmr, node, class, 0, dst, want)
				}
			}
		}
	}
}
