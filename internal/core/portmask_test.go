package core

import (
	"testing"
)

// movesFromMasks expands a PortMasks value into the Move list it promises:
// one uncredited MinFree-1 remote move per set bit, in ascending port order.
func movesFromMasks(node int32, pm PortMasks) []Move {
	var out []Move
	all := pm.Static[0] | pm.Static[1] | pm.Static[2] | pm.Static[3] | pm.Dyn
	for t := 0; t < 32; t++ {
		bit := uint32(1) << t
		if all&bit == 0 {
			continue
		}
		mv := Move{Node: node ^ 1<<t, Port: int16(t), MinFree: 1, Work: pm.Work}
		if pm.Dyn&bit != 0 {
			mv.Kind = Dynamic
			mv.Class = pm.DynClass
		} else {
			for c := QueueClass(0); ; c++ {
				if pm.Static[c]&bit != 0 {
					mv.Class = c
					break
				}
			}
		}
		out = append(out, mv)
	}
	return out
}

// TestHypercubePortMaskMatchesCandidates exhaustively cross-checks the
// PortMaskRouter fast path against Candidates: for every (node, dst, class)
// state of the hypercube algorithm, whenever PortMask reports ok the
// reconstructed move list must equal the Candidates output exactly. The
// buffered engine relies on this equivalence for bit-determinism, since it
// routes through either path depending on configuration.
func TestHypercubePortMaskMatchesCandidates(t *testing.T) {
	for _, dims := range []int{3, 5, 6} {
		h := NewHypercubeAdaptive(dims)
		var pmr PortMaskRouter = h
		n := int32(1) << dims
		buf := make([]Move, 0, dims)
		for node := int32(0); node < n; node++ {
			for dst := int32(0); dst < n; dst++ {
				for _, class := range []QueueClass{ClassA, ClassB} {
					var pm PortMasks
					ok := pmr.PortMask(node, class, 0, dst, &pm)
					want := h.Candidates(node, class, 0, dst, buf[:0])
					if !ok {
						// The fast path may decline only states Candidates
						// resolves internally (delivery or phase change).
						for _, mv := range want {
							if mv.Port != PortInternal {
								t.Fatalf("dims=%d node=%d dst=%d class=%d: PortMask declined a state with remote moves %v",
									dims, node, dst, class, want)
							}
						}
						continue
					}
					got := movesFromMasks(node, pm)
					if len(got) != len(want) {
						t.Fatalf("dims=%d node=%d dst=%d class=%d: %d mask moves, %d candidates",
							dims, node, dst, class, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("dims=%d node=%d dst=%d class=%d move %d: mask %+v != candidate %+v",
								dims, node, dst, class, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestPortMaskDisjoint checks the documented mask invariant: the four static
// masks and the dynamic mask are pairwise disjoint for every state.
func TestPortMaskDisjoint(t *testing.T) {
	h := NewHypercubeAdaptive(6)
	n := int32(1) << 6
	for node := int32(0); node < n; node++ {
		for dst := int32(0); dst < n; dst++ {
			for _, class := range []QueueClass{ClassA, ClassB} {
				var pm PortMasks
				ok := h.PortMask(node, class, 0, dst, &pm)
				if !ok {
					continue
				}
				seen := uint32(0)
				for _, m := range []uint32{pm.Static[0], pm.Static[1], pm.Static[2], pm.Static[3], pm.Dyn} {
					if seen&m != 0 {
						t.Fatalf("node=%d dst=%d class=%d: overlapping masks %+v", node, dst, class, pm)
					}
					seen |= m
				}
			}
		}
	}
}
