// Package buildid identifies the running binary for fingerprints and
// benchmark artifacts. It sits below bench, exec, sweep and store so every
// layer keys its cache entries and records with the same identity.
package buildid

import "runtime/debug"

// ID returns the embedded VCS revision (suffixed "+dirty" for modified
// trees), or "dev" when the binary carries no VCS metadata (go test, go
// run of a non-VCS tree). Fingerprints fold it in so a rebuild at a
// different revision invalidates cached results instead of resuming across
// code changes.
func ID() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	if rev == "" {
		return "dev"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if modified == "true" {
		rev += "+dirty"
	}
	return rev
}
