package wormhole

import (
	"strings"
	"testing"

	"repro/internal/topology"
)

// TestVerifyAllRoutes certifies the shipping routes: escape connectivity
// plus acyclic escape channel dependencies.
func TestVerifyAllRoutes(t *testing.T) {
	for _, r := range []Route{
		NewHypercubeECube(3),
		NewHypercubeECube(4),
		NewHypercubeAdaptive(3),
		NewHypercubeAdaptive(4),
		NewTorusDOR(4),
		NewTorusDOR(5),
		NewTorusAdaptive(4),
		NewTorusAdaptive(5),
		NewTorusAdaptiveShape(3, 4, 3),
		NewHypercubeNonMinimal(3, 2),
		NewHypercubeNonMinimal(4, 1),
	} {
		r := r
		t.Run(r.Name()+"/"+r.Topology().Name(), func(t *testing.T) {
			if err := Verify(r); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCDGCatchesBrokenRing: the no-dateline ring route must fail the
// acyclicity check (its single channel around the ring is a cycle).
func TestCDGCatchesBrokenRing(t *testing.T) {
	ring := &brokenRing{torus: topology.NewTorus(6)}
	g, err := BuildCDG(ring)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckAcyclic(); err == nil {
		t.Fatal("broken ring certified acyclic")
	} else if !strings.Contains(err.Error(), "cycle") && !strings.Contains(err.Error(), "itself") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestCDGHasDependencies sanity-checks the builder produces a non-trivial
// graph for a real route.
func TestCDGHasDependencies(t *testing.T) {
	g, err := BuildCDG(NewTorusDOR(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Escapes) == 0 || len(g.Edges) == 0 {
		t.Fatalf("empty CDG: %d channels, %d edges", len(g.Escapes), len(g.Edges))
	}
	// Dateline structure: both VC 0 and VC 1 channels must appear.
	vcs := map[int32]bool{}
	for _, e := range g.Escapes {
		vcs[e%2] = true
	}
	if !vcs[0] || !vcs[1] {
		t.Error("dateline escape channels missing a VC level")
	}
}
