package wormhole

import (
	"fmt"
	"sort"
)

// CDG is the (conservative) escape channel dependency graph of a wormhole
// route, the wormhole analogue of the packet QDG of Section 2 / [DS86a]: a
// vertex per (directed link, escape virtual channel), and an edge e1 -> e2
// whenever some reachable header trajectory allocates e1 and later requests
// e2 — a superset of both Duato's direct and indirect dependencies, since a
// worm may hold every channel back to its tail while requesting the next.
// If this conservative graph is acyclic and the escape sub-network alone
// delivers every (src, dst) pair, the route is deadlock-free.
//
// Like the QDG builder, the exploration is exhaustive over header states,
// so it is meant for small instances.
type CDG struct {
	Route   Route
	Escapes []int32           // escape channel ids, sorted
	Edges   map[[2]int32]bool // e1 -> e2 dependencies
}

// headerState is a header situation during exploration.
type headerState struct {
	node  int32
	state uint32
	dst   int32
}

// BuildCDG explores every header trajectory of the route and collects the
// escape channel dependencies.
func BuildCDG(r Route) (*CDG, error) {
	t := r.Topology()
	n := t.Nodes()
	vcs := r.NumVCs()
	chanID := func(node int32, h Hop) int32 {
		return (node*int32(t.Ports())+int32(h.Port))*int32(vcs) + int32(h.VC)
	}

	// Pass 1: reachable header states and, per state, its escape requests.
	seen := make(map[headerState]bool)
	var stack []headerState
	push := func(s headerState) {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			push(headerState{int32(src), r.Inject(int32(src), int32(dst)), int32(dst)})
		}
	}
	type edgeOut struct {
		next headerState
		esc  int32 // escape channel allocated by this hop, or -1
	}
	succ := make(map[headerState][]edgeOut)
	escSet := make(map[int32]bool)
	var buf []Hop
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.node == s.dst {
			continue
		}
		buf = r.Candidates(s.node, s.state, s.dst, buf[:0])
		if len(buf) == 0 {
			return nil, fmt.Errorf("wormhole: %s: header stranded at node %d for %d", r.Name(), s.node, s.dst)
		}
		hasEscape := false
		for _, h := range buf {
			next := headerState{int32(t.Neighbor(int(s.node), int(h.Port))), h.State, s.dst}
			esc := int32(-1)
			if h.Escape {
				hasEscape = true
				esc = chanID(s.node, h)
				escSet[esc] = true
			}
			succ[s] = append(succ[s], edgeOut{next, esc})
			push(next)
		}
		if !hasEscape {
			return nil, fmt.Errorf("wormhole: %s: no escape candidate at node %d (state %#x) for %d",
				r.Name(), s.node, s.state, s.dst)
		}
	}

	// Pass 2: for every escape allocation, every escape request reachable
	// downstream becomes a dependency edge.
	g := &CDG{Route: r, Edges: make(map[[2]int32]bool)}
	for e := range escSet {
		g.Escapes = append(g.Escapes, e)
	}
	sort.Slice(g.Escapes, func(i, j int) bool { return g.Escapes[i] < g.Escapes[j] })

	for _, outs := range succ {
		for _, o := range outs {
			if o.esc < 0 {
				continue
			}
			// BFS downstream from o.next collecting escape requests.
			visited := map[headerState]bool{o.next: true}
			frontier := []headerState{o.next}
			for len(frontier) > 0 {
				cur := frontier[len(frontier)-1]
				frontier = frontier[:len(frontier)-1]
				for _, o2 := range succ[cur] {
					if o2.esc >= 0 {
						g.Edges[[2]int32{o.esc, o2.esc}] = true
					}
					if !visited[o2.next] {
						visited[o2.next] = true
						frontier = append(frontier, o2.next)
					}
				}
			}
		}
	}
	return g, nil
}

// CheckAcyclic verifies the escape dependency graph is a DAG, returning one
// cycle on failure.
func (g *CDG) CheckAcyclic() error {
	adj := make(map[int32][]int32)
	for e := range g.Edges {
		if e[0] == e[1] {
			return fmt.Errorf("wormhole: %s: escape channel %d depends on itself", g.Route.Name(), e[0])
		}
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int32]int)
	var stack []int32
	var cycle []int32
	var dfs func(v int32) bool
	dfs = func(v int32) bool {
		color[v] = gray
		stack = append(stack, v)
		for _, w := range adj[v] {
			switch color[w] {
			case gray:
				for i, x := range stack {
					if x == w {
						cycle = append([]int32(nil), stack[i:]...)
						return true
					}
				}
			case white:
				if dfs(w) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[v] = black
		return false
	}
	for _, v := range g.Escapes {
		if color[v] == white && dfs(v) {
			return fmt.Errorf("wormhole: %s: escape channel dependency cycle %v", g.Route.Name(), cycle)
		}
	}
	return nil
}

// VerifyEscapeDelivers walks every (src, dst) pair using only escape hops
// and checks the header reaches the destination within MaxHops: the escape
// sub-network is connected on its own.
func VerifyEscapeDelivers(r Route) error {
	t := r.Topology()
	n := t.Nodes()
	var buf []Hop
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			node, state := int32(src), r.Inject(int32(src), int32(dst))
			hops := 0
			for node != int32(dst) {
				buf = r.Candidates(node, state, int32(dst), buf[:0])
				took := false
				for _, h := range buf {
					if h.Escape {
						node = int32(t.Neighbor(int(node), int(h.Port)))
						state = h.State
						hops++
						took = true
						break
					}
				}
				if !took {
					return fmt.Errorf("wormhole: %s: no escape hop at node %d for %d", r.Name(), node, dst)
				}
				if hops > r.MaxHops(int32(src), int32(dst)) {
					return fmt.Errorf("wormhole: %s: escape walk %d->%d exceeded MaxHops", r.Name(), src, dst)
				}
			}
		}
	}
	return nil
}

// Verify runs the full wormhole deadlock-freedom certification.
func Verify(r Route) error {
	if err := VerifyEscapeDelivers(r); err != nil {
		return err
	}
	g, err := BuildCDG(r)
	if err != nil {
		return err
	}
	return g.CheckAcyclic()
}
