package wormhole

import (
	"errors"
	"testing"

	"repro/internal/topology"
	"repro/internal/traffic"
)

func routesUnderTest() []Route {
	return []Route{
		NewHypercubeECube(5),
		NewHypercubeAdaptive(5),
		NewTorusDOR(5),
		NewTorusDOR(6),
		NewTorusAdaptive(5),
		NewTorusAdaptive(6),
		NewTorusDORShape(4, 5, 3),
		NewTorusAdaptiveShape(4, 5, 3),
		NewHypercubeNonMinimal(5, 2),
	}
}

// TestDrainAllRoutes floods every route with static random traffic and
// requires full delivery — the engine asserts the minimal hop count of each
// worm on the way.
func TestDrainAllRoutes(t *testing.T) {
	for _, r := range routesUnderTest() {
		r := r
		t.Run(r.Name(), func(t *testing.T) {
			nodes := r.Topology().Nodes()
			for _, flits := range []int{1, 4, 16} {
				e, err := NewEngine(Config{Route: r, Flits: flits, Seed: 1})
				if err != nil {
					t.Fatal(err)
				}
				src := traffic.NewStaticSource(traffic.Random{Nodes: nodes}, nodes, 4, 3)
				m, err := e.RunStatic(src, 1_000_000)
				if err != nil {
					t.Fatalf("flits=%d: %v", flits, err)
				}
				if m.Delivered != int64(nodes*4) {
					t.Fatalf("flits=%d: delivered %d, want %d", flits, m.Delivered, nodes*4)
				}
				if m.InFlight != 0 {
					t.Fatalf("flits=%d: %d worms left in flight", flits, m.InFlight)
				}
			}
		})
	}
}

// TestNoDeadlockUnderPressure runs the adversarial regime: long worms, tiny
// VC buffers, permutation traffic that saturates rings and dimensions.
func TestNoDeadlockUnderPressure(t *testing.T) {
	cases := []struct {
		route Route
		pat   traffic.Pattern
	}{
		{NewHypercubeAdaptive(6), traffic.Complement{Bits: 6}},
		{NewHypercubeECube(6), traffic.Complement{Bits: 6}},
		{NewTorusDOR(6), traffic.MeshTranspose{Side: 6}},
		{NewTorusAdaptive(6), traffic.MeshTranspose{Side: 6}},
		{NewTorusAdaptive(8), traffic.Random{Nodes: 64}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.route.Name()+"/"+c.pat.Name(), func(t *testing.T) {
			nodes := c.route.Topology().Nodes()
			e, err := NewEngine(Config{Route: c.route, Flits: 12, VCBuf: 1, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			src := traffic.NewStaticSource(c.pat, nodes, 6, 3)
			m, err := e.RunStatic(src, 2_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if m.Delivered != int64(nodes*6) {
				t.Fatalf("delivered %d, want %d", m.Delivered, nodes*6)
			}
		})
	}
}

// TestLatencyUncongested pins the timing: the header crosses one link per
// cycle and reaches a distance-d destination on cycle d-1 (counting from
// injection at cycle 0); the i-th flit is ejected on cycle d-1+i, so the
// full worm latency is d + F - 1 inclusive.
func TestLatencyUncongested(t *testing.T) {
	r := NewHypercubeECube(4)
	for _, flits := range []int{1, 4, 8} {
		e, err := NewEngine(Config{Route: r, Flits: flits, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		// One worm from 0 to 15: distance 4.
		src := &singleSource{dst: 15}
		m, err := e.RunStatic(src, 10000)
		if err != nil {
			t.Fatal(err)
		}
		if m.Delivered != 1 {
			t.Fatalf("delivered %d", m.Delivered)
		}
		want := int64(4 + flits - 1)
		if m.LatencyMax != want {
			t.Errorf("flits=%d: latency = %d, want %d", flits, m.LatencyMax, want)
		}
	}
}

// singleSource injects exactly one worm from node 0.
type singleSource struct {
	dst  int32
	done bool
}

func (s *singleSource) Wants(node int32, _ int64) bool { return node == 0 && !s.done }
func (s *singleSource) Take(node int32, _ int64) int32 { s.done = true; return s.dst }
func (s *singleSource) Exhausted(node int32) bool      { return node != 0 || s.done }

// TestDeterminism: fixed seeds reproduce bit-identical metrics.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) Metrics {
		r := NewTorusAdaptive(6)
		e, err := NewEngine(Config{Route: r, Flits: 8, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		src := traffic.NewBernoulliSource(traffic.Random{Nodes: 36}, 36, 0.4, seed)
		m, err := e.RunDynamic(src, 100, 400)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if a, b := run(3), run(3); a != b {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
	if a, b := run(3), run(4); a == b {
		t.Error("different seeds produced identical metrics (suspicious)")
	}
}

// TestAdaptiveUsesAdaptiveChannels: under a congesting permutation the
// adaptive scheme must actually exercise its adaptive VCs, and the escape
// network must also see use.
func TestAdaptiveUsesAdaptiveChannels(t *testing.T) {
	r := NewHypercubeAdaptive(6)
	e, err := NewEngine(Config{Route: r, Flits: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	src := traffic.NewStaticSource(traffic.Complement{Bits: 6}, 64, 6, 3)
	m, err := e.RunStatic(src, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if m.AdaptAlloc == 0 {
		t.Error("no adaptive channel allocations under complement load")
	}
	if m.EscapeAlloc == 0 {
		t.Error("escape channels never used; the fallback path is dead code")
	}
}

// TestAdaptiveBeatsObliviousOnTranspose: the headline wormhole comparison.
// (Complement is dimension-order's best case — its e-cube streams never
// collide — so the adversarial pattern here is transpose, which funnels
// e-cube traffic through shared intermediate subcubes.)
func TestAdaptiveBeatsObliviousOnTranspose(t *testing.T) {
	run := func(r Route) Metrics {
		e, err := NewEngine(Config{Route: r, Flits: 8, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		src := traffic.NewStaticSource(traffic.Transpose{Bits: 8}, 256, 8, 3)
		m, err := e.RunStatic(src, 2_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	ad := run(NewHypercubeAdaptive(8))
	ob := run(NewHypercubeECube(8))
	if ad.Cycles >= ob.Cycles {
		t.Errorf("adaptive drained in %d cycles, oblivious in %d; expected a win", ad.Cycles, ob.Cycles)
	}
}

// TestWatchdog: a deliberately cyclic route (ring with one VC and no
// dateline) must be caught by the deadlock watchdog.
type brokenRing struct{ torus *topology.Torus }

func (b *brokenRing) Name() string                 { return "wh-broken-ring" }
func (b *brokenRing) Topology() topology.Topology  { return b.torus }
func (b *brokenRing) NumVCs() int                  { return 1 }
func (b *brokenRing) Inject(src, dst int32) uint32 { return 0 }
func (b *brokenRing) Minimal() bool                { return false }
func (b *brokenRing) MaxHops(src, dst int32) int   { return b.torus.Nodes() }

func (b *brokenRing) Candidates(node int32, state uint32, dst int32, buf []Hop) []Hop {
	return append(buf, Hop{Port: 0, VC: 0, Escape: true}) // always +x, no dateline
}

func TestWatchdog(t *testing.T) {
	ring := &brokenRing{torus: topology.NewTorus(8)}
	e, err := NewEngine(Config{Route: ring, Flits: 8, VCBuf: 1, Seed: 1, DeadlockWindow: 300})
	if err != nil {
		t.Fatal(err)
	}
	sigma := make([]int32, 8)
	for i := range sigma {
		sigma[i] = int32((i + 4) % 8)
	}
	src := traffic.NewStaticSource(&traffic.Permutation{Label: "shift4", Sigma: sigma}, 8, 4, 1)
	var dl *ErrDeadlock
	if _, err := e.RunStatic(src, 1_000_000); !errors.As(err, &dl) {
		t.Errorf("expected ErrDeadlock, got %v", err)
	}
}

// TestConfigValidation covers constructor errors.
func TestConfigValidation(t *testing.T) {
	if _, err := NewEngine(Config{}); err == nil {
		t.Error("nil route accepted")
	}
	if _, err := NewEngine(Config{Route: NewTorusDOR(4), Flits: -1}); err == nil {
		t.Error("negative flit count accepted")
	}
	if _, err := NewEngine(Config{Route: NewTorusDOR(4), VCBuf: -1}); err == nil {
		t.Error("negative VC buffer accepted")
	}
}

// TestMetricsHelpers covers the accessors.
func TestMetricsHelpers(t *testing.T) {
	m := Metrics{Delivered: 4, LatencySum: 48, HeaderSum: 20, Attempts: 10, Successes: 5}
	if m.AvgLatency() != 12 || m.AvgHeaderLatency() != 5 || m.InjectionRate() != 0.5 {
		t.Errorf("metrics accessors wrong: %+v", m)
	}
	var zero Metrics
	if zero.AvgLatency() != 0 || zero.AvgHeaderLatency() != 0 || zero.InjectionRate() != 0 {
		t.Error("zero metrics should report zeros")
	}
}
