// Package wormhole is a flit-level wormhole-routing simulator, the
// extension the paper points to in its introduction and conclusion ("some
// generalizations are possible for worm-hole routing on 2-dimensional tori
// [GPS91]"; [GPS91] also covers adaptive wormhole routing on hypercubes).
// [GPS91] was never published, so the adaptive schemes here follow the same
// philosophy in its established wormhole form: adaptive virtual channels
// for full minimal adaptivity plus an acyclic *escape* sub-network that a
// blocked header can always fall back to — the wormhole counterpart of the
// paper's dynamic links over a static DAG.
//
// Model: every packet is a worm of Flits flits. Each directed physical
// link carries NumVCs virtual channels, each with a small flit buffer at
// the receiving node. A worm's header allocates one virtual channel per
// hop (it may re-evaluate its adaptive choices at every hop while blocked);
// body flits stream through the allocated chain, at most one flit per
// physical link per cycle (the virtual channels multiplex the link); the
// tail releases each channel once the last flit has left it. Delivery
// consumes one flit per cycle at the destination's ejection port.
package wormhole

import (
	"fmt"

	"repro/internal/topology"
	"repro/internal/xrand"
)

// Hop is one candidate (output port, virtual channel) pair for a header.
type Hop struct {
	Port   int16  // physical output port
	VC     uint8  // virtual channel class on that link
	State  uint32 // routing state after taking the hop
	Escape bool   // belongs to the acyclic escape sub-network
}

// Route is a wormhole routing function: the per-hop candidate generator.
// Implementations must guarantee that the escape candidates alone form a
// deadlock-free (acyclic channel dependency) network reaching every
// destination, and that a header always has at least one escape candidate —
// Duato's condition, mirroring Section 2's static-escape requirement.
type Route interface {
	Name() string
	Topology() topology.Topology
	// NumVCs returns the number of virtual channels per directed link.
	NumVCs() int
	// Inject returns the initial routing state of a worm from src to dst.
	Inject(src, dst int32) uint32
	// Candidates appends the legal next hops for a header at node with the
	// given state, destined to dst. Escape hops must be marked.
	Candidates(node int32, state uint32, dst int32, buf []Hop) []Hop
	// MaxHops bounds the header's hop count (livelock check).
	MaxHops(src, dst int32) int
	// Minimal reports whether headers always take shortest paths.
	Minimal() bool
}

// Config configures the wormhole engine.
type Config struct {
	Route Route
	// Flits is the worm length in flits (default 8).
	Flits int
	// VCBuf is the per-virtual-channel flit buffer capacity (default 2).
	VCBuf int
	// Seed drives the per-node generators (header choice among free VCs).
	Seed int64
	// DeadlockWindow aborts after this many cycles without flit movement
	// while worms remain (default 1000).
	DeadlockWindow int
}

func (c *Config) fill() error {
	if c.Route == nil {
		return fmt.Errorf("wormhole: Config.Route is nil")
	}
	if c.Flits == 0 {
		c.Flits = 8
	}
	if c.Flits < 1 {
		return fmt.Errorf("wormhole: Flits must be >= 1, got %d", c.Flits)
	}
	if c.VCBuf == 0 {
		c.VCBuf = 2
	}
	if c.VCBuf < 1 {
		return fmt.Errorf("wormhole: VCBuf must be >= 1, got %d", c.VCBuf)
	}
	if c.DeadlockWindow == 0 {
		c.DeadlockWindow = 1000
	}
	return nil
}

// Metrics aggregates a wormhole run.
type Metrics struct {
	Cycles      int64
	Injected    int64 // worms that started injecting
	Delivered   int64 // worms fully consumed at their destination
	InFlight    int64
	Attempts    int64
	Successes   int64
	LatencySum  int64 // header injection start -> tail consumed, inclusive
	LatencyMax  int64
	HeaderSum   int64 // header injection start -> header at destination
	FlitMoves   int64
	EscapeAlloc int64 // channel allocations that used an escape VC
	AdaptAlloc  int64 // channel allocations that used an adaptive VC
}

// AvgLatency is the mean full-worm latency.
func (m *Metrics) AvgLatency() float64 {
	if m.Delivered == 0 {
		return 0
	}
	return float64(m.LatencySum) / float64(m.Delivered)
}

// AvgHeaderLatency is the mean header (path-setup) latency.
func (m *Metrics) AvgHeaderLatency() float64 {
	if m.Delivered == 0 {
		return 0
	}
	return float64(m.HeaderSum) / float64(m.Delivered)
}

// InjectionRate is the dynamic model's effective injection rate.
func (m *Metrics) InjectionRate() float64 {
	if m.Attempts == 0 {
		return 0
	}
	return float64(m.Successes) / float64(m.Attempts)
}

// ErrDeadlock reports a wedged wormhole network.
type ErrDeadlock struct {
	Cycle    int64
	InFlight int
	Route    string
}

func (e *ErrDeadlock) Error() string {
	return fmt.Sprintf("wormhole: deadlock: %s made no progress by cycle %d with %d worms in flight",
		e.Route, e.Cycle, e.InFlight)
}

// vcState is one virtual channel of one directed link. Flit occupancy is
// tracked by the owning worm (worm.occ); the channel itself only records
// ownership.
type vcState struct {
	owner int32 // worm index + 1; 0 = free
}

// worm is one packet in flight.
type worm struct {
	id         int64
	src, dst   int32
	state      uint32
	injectedAt int64
	headerAt   int64 // cycle the header reached dst (-1 while routing)
	node       int32 // current header node
	hops       uint16
	atSource   int     // flits not yet injected
	consumed   int     // flits consumed at dst
	chain      []int32 // allocated VC ids, oldest first
	occ        []uint8 // flits buffered in each chain element
	tail       int     // first chain element not yet released
	done       bool
}

// TrafficSource mirrors sim.TrafficSource (duplicated to keep the packages
// independent); internal/traffic's sources satisfy both.
type TrafficSource interface {
	Wants(node int32, cycle int64) bool
	Take(node int32, cycle int64) int32
	Exhausted(node int32) bool
}

// Engine is the flit-level simulator.
type Engine struct {
	cfg   Config
	route Route
	topo  topology.Topology
	nodes int
	ports int
	vcs   int

	vc     []vcState // [(node*ports+port)*vcs + vc]
	linkRR []uint32
	rngs   []xrand.RNG

	worms   []worm
	pending []int32 // per node: waiting worm index + 1 (injection slot), 0 = none
	active  []bool
	nextID  int64
}

// NewEngine builds a wormhole engine.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	r := cfg.Route
	t := r.Topology()
	e := &Engine{
		cfg:   cfg,
		route: r,
		topo:  t,
		nodes: t.Nodes(),
		ports: t.Ports(),
		vcs:   r.NumVCs(),
	}
	e.vc = make([]vcState, e.nodes*e.ports*e.vcs)
	e.linkRR = make([]uint32, e.nodes*e.ports)
	e.rngs = make([]xrand.RNG, e.nodes)
	e.pending = make([]int32, e.nodes)
	e.active = make([]bool, e.nodes)
	e.reset()
	return e, nil
}

func (e *Engine) reset() {
	for i := range e.vc {
		e.vc[i] = vcState{}
	}
	for i := range e.linkRR {
		e.linkRR[i] = 0
	}
	for u := range e.rngs {
		e.rngs[u] = xrand.New(e.cfg.Seed, int32(u))
		e.pending[u] = 0
		e.active[u] = true
	}
	e.worms = e.worms[:0]
	e.nextID = 0
}

func (e *Engine) vcIndex(node int32, port int16, vc uint8) int32 {
	return (node*int32(e.ports)+int32(port))*int32(e.vcs) + int32(vc)
}

// linkOf recovers the directed link id of a VC id.
func (e *Engine) linkOf(vcID int32) int32 { return vcID / int32(e.vcs) }

// RunStatic drains a finite workload; RunDynamic runs warmup+measure cycles.
func (e *Engine) RunStatic(src TrafficSource, maxCycles int64) (Metrics, error) {
	return e.run(src, 0, 0, maxCycles, true)
}

// RunDynamic simulates warmup+measure cycles of dynamic injection.
func (e *Engine) RunDynamic(src TrafficSource, warmup, measure int64) (Metrics, error) {
	return e.run(src, warmup, warmup+measure, warmup+measure, false)
}

func (e *Engine) run(src TrafficSource, measureFrom, stopAt, maxCycles int64, drain bool) (Metrics, error) {
	e.reset()
	var m Metrics
	idle := 0
	// moveInto tracks, per directed link, whether its one flit of bandwidth
	// was used this cycle.
	used := make([]int64, e.nodes*e.ports)
	var cand []Hop
	for cycle := int64(0); ; cycle++ {
		if stopAt > 0 && cycle >= stopAt {
			m.Cycles = cycle
			m.InFlight = m.Injected - m.Delivered
			return m, nil
		}
		if maxCycles > 0 && cycle > maxCycles {
			m.Cycles = cycle
			m.InFlight = m.Injected - m.Delivered
			return m, fmt.Errorf("wormhole: %s exceeded %d cycles with %d worms in flight",
				e.route.Name(), maxCycles, m.Injected-m.Delivered)
		}
		prevMoves := m.FlitMoves

		// Injection: one pending worm per node.
		for u := int32(0); int(u) < e.nodes; u++ {
			if !e.active[u] {
				continue
			}
			if src.Exhausted(u) {
				e.active[u] = false
				continue
			}
			if !src.Wants(u, cycle) {
				continue
			}
			if cycle >= measureFrom {
				m.Attempts++
			}
			if e.pending[u] != 0 {
				continue
			}
			dst := src.Take(u, cycle)
			e.nextID++
			e.worms = append(e.worms, worm{
				id: e.nextID, src: u, dst: dst, state: e.route.Inject(u, dst),
				injectedAt: cycle, headerAt: -1, node: u,
				atSource: e.cfg.Flits,
			})
			e.pending[u] = int32(len(e.worms)) // index+1
			m.Injected++
			if cycle >= measureFrom {
				m.Successes++
			}
		}

		// Header allocations: a header whose leading flit is available
		// tries to claim a free VC among its candidates. One allocation per
		// link per cycle (it consumes the link's flit slot).
		for wi := range e.worms {
			w := &e.worms[wi]
			if w.done || w.node == w.dst {
				continue
			}
			// The header flit must be available to move: either still at
			// the source (no chain yet) or buffered in the last chain VC.
			if len(w.chain) == 0 {
				if w.atSource == 0 {
					continue
				}
			} else if w.occ[len(w.chain)-1] == 0 {
				continue
			}
			cand = e.route.Candidates(w.node, w.state, w.dst, cand[:0])
			if len(cand) == 0 {
				panic(fmt.Sprintf("wormhole: %s: no candidates at node %d for %d", e.route.Name(), w.node, w.dst))
			}
			// Collect free VCs whose link still has bandwidth.
			var free []int
			hasEscape := false
			for i, h := range cand {
				id := e.vcIndex(w.node, h.Port, h.VC)
				if e.vc[id].owner == 0 && used[e.linkOf(id)] <= cycle {
					free = append(free, i)
					if h.Escape {
						hasEscape = true
					}
				}
			}
			if len(free) == 0 {
				continue
			}
			// Prefer adaptive channels when available, falling back to the
			// escape channel (Duato-style usage); pick pseudo-randomly
			// among adaptive options to spread load.
			r := &e.rngs[w.node]
			pick := -1
			var adaptive []int
			for _, i := range free {
				if !cand[i].Escape {
					adaptive = append(adaptive, i)
				}
			}
			if len(adaptive) > 0 {
				pick = adaptive[r.Intn(len(adaptive))]
			} else if hasEscape {
				for _, i := range free {
					if cand[i].Escape {
						pick = i
						break
					}
				}
			}
			if pick < 0 {
				continue
			}
			h := cand[pick]
			id := e.vcIndex(w.node, h.Port, h.VC)
			link := e.linkOf(id)
			used[link] = cycle + 1
			e.vc[id].owner = int32(wi) + 1
			if len(w.chain) == 0 {
				w.atSource--
				if e.pending[w.node] == int32(wi)+1 && w.atSource == 0 {
					e.pending[w.node] = 0
				}
			} else {
				w.occ[len(w.chain)-1]--
			}
			w.chain = append(w.chain, id)
			w.occ = append(w.occ, 1) // the header flit
			w.hops++
			w.node = int32(e.topo.Neighbor(int(w.node), int(h.Port)))
			w.state = h.State
			m.FlitMoves++
			if h.Escape {
				m.EscapeAlloc++
			} else {
				m.AdaptAlloc++
			}
			if int(w.hops) > e.route.MaxHops(w.src, w.dst) {
				panic(fmt.Sprintf("wormhole: %s: worm %d exceeded MaxHops", e.route.Name(), w.id))
			}
			if w.node == w.dst && w.headerAt < 0 {
				w.headerAt = cycle
			}
			e.releaseTail(w)
		}

		// Body flit movement: for each owned VC, move one flit from the
		// upstream element (or the source) into it, bandwidth permitting.
		for wi := range e.worms {
			w := &e.worms[wi]
			if w.done {
				continue
			}
			for k := w.tail; k < len(w.chain); k++ {
				id := w.chain[k]
				if e.vc[id].owner != int32(wi)+1 {
					continue // released
				}
				if int(w.occ[k]) >= e.cfg.VCBuf {
					continue
				}
				// A body flit is available upstream: at the source for the
				// first element, in the previous element otherwise. (The
				// header flit always sits in the last element and advances
				// only through allocation, so it is never moved here: a
				// last element at occupancy >= 1 pulls body flits behind it.)
				avail := (k == 0 && w.atSource > 0) || (k > 0 && w.occ[k-1] > 0)
				if !avail {
					continue
				}
				link := e.linkOf(id)
				if used[link] > cycle {
					continue
				}
				used[link] = cycle + 1
				if k == 0 {
					w.atSource--
					if e.pending[w.src] == int32(wi)+1 && w.atSource == 0 {
						e.pending[w.src] = 0
					}
				} else {
					w.occ[k-1]--
				}
				w.occ[k]++
				m.FlitMoves++
			}
			e.releaseTail(w)
		}

		// Delivery: one flit per cycle is consumed at the destination once
		// the header has arrived.
		for wi := range e.worms {
			w := &e.worms[wi]
			if w.done || w.node != w.dst {
				continue
			}
			last := len(w.chain) - 1
			if last < 0 {
				// Zero-hop worm (src == dst; some patterns map diagonal
				// nodes to themselves): consume straight from the source.
				if w.atSource > 0 {
					w.atSource--
					w.consumed++
					m.FlitMoves++
					if w.atSource == 0 && e.pending[w.src] == int32(wi)+1 {
						e.pending[w.src] = 0
					}
				}
			} else if w.occ[last] > 0 {
				w.occ[last]--
				w.consumed++
				m.FlitMoves++
			}
			e.releaseTail(w)
			if w.consumed == e.cfg.Flits {
				w.done = true
				m.Delivered++
				if cycle >= measureFrom {
					lat := cycle - w.injectedAt + 1
					m.LatencySum += lat
					m.HeaderSum += w.headerAt - w.injectedAt + 1
					if lat > m.LatencyMax {
						m.LatencyMax = lat
					}
				}
				if e.route.Minimal() && int(w.hops) != e.topo.Distance(int(w.src), int(w.dst)) {
					panic(fmt.Sprintf("wormhole: %s: minimal route took %d hops for distance %d",
						e.route.Name(), w.hops, e.topo.Distance(int(w.src), int(w.dst))))
				}
			}
		}

		m.Cycles = cycle + 1
		m.InFlight = m.Injected - m.Delivered
		if drain && m.InFlight == 0 && e.allExhausted(src) {
			e.compact()
			return m, nil
		}
		if m.FlitMoves == prevMoves && m.InFlight > 0 {
			idle++
			if idle >= e.cfg.DeadlockWindow {
				return m, &ErrDeadlock{Cycle: cycle, InFlight: int(m.InFlight), Route: e.route.Name()}
			}
		} else {
			idle = 0
		}
		if len(e.worms) > 4*e.nodes && int(m.InFlight) < len(e.worms)/2 {
			e.compact()
		}
	}
}

// releaseTail frees fully-drained chain elements: an element is released
// once it is empty and can never be refilled (its upstream element is
// already released, or — for the first element — the source is empty). The
// header flit keeps the last element at occupancy >= 1 until delivery
// starts, so a worm in flight never releases its own head.
func (e *Engine) releaseTail(w *worm) {
	for w.tail < len(w.chain) && w.occ[w.tail] == 0 && (w.tail > 0 || w.atSource == 0) {
		e.vc[w.chain[w.tail]].owner = 0
		w.tail++
	}
}

func (e *Engine) allExhausted(src TrafficSource) bool {
	for u := 0; u < e.nodes; u++ {
		if e.active[u] {
			if !src.Exhausted(int32(u)) {
				return false
			}
			e.active[u] = false
		}
	}
	return true
}

// compact drops completed worms to bound memory in long dynamic runs,
// remapping the owner indices of the survivors.
func (e *Engine) compact() {
	live := e.worms[:0]
	remap := make(map[int32]int32, len(e.worms))
	for wi := range e.worms {
		if !e.worms[wi].done {
			remap[int32(wi)+1] = int32(len(live)) + 1
			live = append(live, e.worms[wi])
		}
	}
	for i := range e.vc {
		if e.vc[i].owner != 0 {
			e.vc[i].owner = remap[e.vc[i].owner]
		}
	}
	for u := range e.pending {
		if e.pending[u] != 0 {
			e.pending[u] = remap[e.pending[u]]
		}
	}
	e.worms = live
}
