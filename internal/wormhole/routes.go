package wormhole

import (
	"math/bits"

	"repro/internal/topology"
)

// HypercubeECube is oblivious dimension-order wormhole routing on the
// hypercube — the classic deadlock-free baseline of [DS86a]: one virtual
// channel per link suffices because dimensions are crossed in increasing
// order, which makes the channel dependency graph acyclic.
type HypercubeECube struct {
	cube *topology.Hypercube
}

// NewHypercubeECube returns the oblivious wormhole baseline.
func NewHypercubeECube(dims int) *HypercubeECube {
	return &HypercubeECube{cube: topology.NewHypercube(dims)}
}

func (h *HypercubeECube) Name() string                 { return "wh-hypercube-ecube" }
func (h *HypercubeECube) Topology() topology.Topology  { return h.cube }
func (h *HypercubeECube) NumVCs() int                  { return 1 }
func (h *HypercubeECube) Inject(src, dst int32) uint32 { return 0 }
func (h *HypercubeECube) Minimal() bool                { return true }
func (h *HypercubeECube) MaxHops(src, dst int32) int   { return h.cube.Distance(int(src), int(dst)) }

func (h *HypercubeECube) Candidates(node int32, state uint32, dst int32, buf []Hop) []Hop {
	diff := uint32(node ^ dst)
	if diff == 0 {
		return buf
	}
	t := bits.TrailingZeros32(diff)
	return append(buf, Hop{Port: int16(t), VC: 0, Escape: true})
}

// HypercubeAdaptive is fully-adaptive minimal wormhole routing on the
// hypercube in the style [GPS91] describes for "minimal and non-minimal
// adaptive, deadlock- and livelock-free worm-hole routing on the
// hypercube": an adaptive virtual channel on every link offers every
// minimal dimension, and a dimension-ordered escape channel keeps the
// scheme deadlock-free (the escape sub-network's dependency graph is
// acyclic, and a blocked header can always fall back to it). Two virtual
// channels per link.
type HypercubeAdaptive struct {
	cube *topology.Hypercube
}

// NewHypercubeAdaptive returns the adaptive wormhole hypercube scheme.
func NewHypercubeAdaptive(dims int) *HypercubeAdaptive {
	return &HypercubeAdaptive{cube: topology.NewHypercube(dims)}
}

func (h *HypercubeAdaptive) Name() string                 { return "wh-hypercube-adaptive" }
func (h *HypercubeAdaptive) Topology() topology.Topology  { return h.cube }
func (h *HypercubeAdaptive) NumVCs() int                  { return 2 }
func (h *HypercubeAdaptive) Inject(src, dst int32) uint32 { return 0 }
func (h *HypercubeAdaptive) Minimal() bool                { return true }
func (h *HypercubeAdaptive) MaxHops(src, dst int32) int   { return h.cube.Distance(int(src), int(dst)) }

func (h *HypercubeAdaptive) Candidates(node int32, state uint32, dst int32, buf []Hop) []Hop {
	diff := uint32(node ^ dst)
	if diff == 0 {
		return buf
	}
	// Escape: the dimension-ordered hop on VC 0.
	low := bits.TrailingZeros32(diff)
	buf = append(buf, Hop{Port: int16(low), VC: 0, Escape: true})
	// Adaptive: every minimal dimension on VC 1.
	for d := diff; d != 0; d &= d - 1 {
		t := bits.TrailingZeros32(d)
		buf = append(buf, Hop{Port: int16(t), VC: 1})
	}
	return buf
}

// torus state encoding: bits 0..k-1 direction (+1 if set), bits k..2k-1
// "crossed the wraparound edge of dimension i".
func torusDirs(state uint32, k int) uint32    { return state & (1<<k - 1) }
func torusCrossed(state uint32, k int) uint32 { return state >> k & (1<<k - 1) }

// TorusDOR is dimension-order wormhole routing on the k-dimensional torus
// with the [DS86a] dateline scheme: each directed ring has two virtual
// channels, and a worm moves from channel 0 to channel 1 when it crosses
// the ring's wraparound edge, which breaks the ring's channel cycle. Two
// virtual channels per link; the baseline the paper's torus remarks build
// on.
type TorusDOR struct {
	torus *topology.Torus
}

// NewTorusDOR returns the dateline dimension-order baseline on a square
// 2-dimensional torus; NewTorusDORShape accepts arbitrary k-dimensional
// shapes.
func NewTorusDOR(side int) *TorusDOR {
	return &TorusDOR{torus: topology.NewTorus2D(side)}
}

// NewTorusDORShape returns the baseline on an arbitrary torus (at most 16
// dimensions, the routing state's direction/crossed bit budget).
func NewTorusDORShape(shape ...int) *TorusDOR {
	t := topology.NewTorus(shape...)
	if t.Dims() > 16 {
		panic("wormhole: torus routes support at most 16 dimensions")
	}
	return &TorusDOR{torus: t}
}

func (t *TorusDOR) Name() string                { return "wh-torus-dor" }
func (t *TorusDOR) Topology() topology.Topology { return t.torus }
func (t *TorusDOR) NumVCs() int                 { return 2 }
func (t *TorusDOR) Minimal() bool               { return true }
func (t *TorusDOR) MaxHops(src, dst int32) int  { return t.torus.Distance(int(src), int(dst)) }

func (t *TorusDOR) Inject(src, dst int32) uint32 { return torusInject(t.torus, src, dst) }

func (t *TorusDOR) Candidates(node int32, state uint32, dst int32, buf []Hop) []Hop {
	h, ok := torusDOREscape(t.torus, node, state, dst)
	if !ok {
		return buf
	}
	return append(buf, h)
}

// TorusAdaptive is fully-adaptive minimal wormhole routing on the
// k-dimensional torus: an adaptive virtual channel offers every remaining
// minimal dimension, and the dateline dimension-order sub-network is the
// escape. Three virtual channels per link — the "very moderate hardware
// resources" regime [GPS91] claims against [LH91]'s exponential channel
// count. Direction ties on even sides are fixed at injection.
type TorusAdaptive struct {
	torus *topology.Torus
}

// NewTorusAdaptive returns the adaptive wormhole scheme on a square
// 2-dimensional torus; NewTorusAdaptiveShape accepts arbitrary shapes.
func NewTorusAdaptive(side int) *TorusAdaptive {
	return &TorusAdaptive{torus: topology.NewTorus2D(side)}
}

// NewTorusAdaptiveShape returns the adaptive scheme on an arbitrary torus
// (at most 16 dimensions).
func NewTorusAdaptiveShape(shape ...int) *TorusAdaptive {
	t := topology.NewTorus(shape...)
	if t.Dims() > 16 {
		panic("wormhole: torus routes support at most 16 dimensions")
	}
	return &TorusAdaptive{torus: t}
}

func (t *TorusAdaptive) Name() string                { return "wh-torus-adaptive" }
func (t *TorusAdaptive) Topology() topology.Topology { return t.torus }
func (t *TorusAdaptive) NumVCs() int                 { return 3 }
func (t *TorusAdaptive) Minimal() bool               { return true }
func (t *TorusAdaptive) MaxHops(src, dst int32) int  { return t.torus.Distance(int(src), int(dst)) }

func (t *TorusAdaptive) Inject(src, dst int32) uint32 { return torusInject(t.torus, src, dst) }

func (t *TorusAdaptive) Candidates(node int32, state uint32, dst int32, buf []Hop) []Hop {
	if h, ok := torusDOREscape(t.torus, node, state, dst); ok {
		buf = append(buf, h)
	}
	// Adaptive channel (VC 2) on every remaining minimal dimension.
	k := t.torus.Dims()
	dirs := torusDirs(state, k)
	for i := 0; i < k; i++ {
		c, z := t.torus.Coord(int(node), i), t.torus.Coord(int(dst), i)
		if c == z {
			continue
		}
		port, next := torusStep(t.torus, node, dirs, i)
		buf = append(buf, Hop{Port: port, VC: 2, State: torusNextState(t.torus, state, node, next, i)})
	}
	return buf
}

// torusInject fixes the minimal travel direction per dimension (ties on
// even sides alternate deterministically with the endpoints).
func torusInject(torus *topology.Torus, src, dst int32) uint32 {
	var dirs uint32
	for i := 0; i < torus.Dims(); i++ {
		side := torus.Shape()[i]
		cs, cd := torus.Coord(int(src), i), torus.Coord(int(dst), i)
		fwd := ((cd-cs)%side + side) % side
		if fwd == 0 {
			continue
		}
		if fwd*2 < side || fwd*2 == side && (cs+cd+i)%2 == 0 {
			dirs |= 1 << i
		}
	}
	return dirs
}

// torusStep returns the port of one minimal step in dimension i and the
// node it reaches.
func torusStep(torus *topology.Torus, node int32, dirs uint32, i int) (int16, int32) {
	port := int16(2 * i)
	if dirs&(1<<i) == 0 {
		port++
	}
	return port, int32(torus.Neighbor(int(node), int(port)))
}

// torusNextState updates the crossed bit when the step wraps around.
func torusNextState(torus *topology.Torus, state uint32, node, next int32, i int) uint32 {
	k := torus.Dims()
	c, nc := torus.Coord(int(node), i), torus.Coord(int(next), i)
	if c == torus.Shape()[i]-1 && nc == 0 || c == 0 && nc == torus.Shape()[i]-1 {
		state |= 1 << (k + i)
	}
	return state
}

// torusDOREscape returns the dimension-order escape hop: correct the lowest
// unfinished dimension in the fixed direction, on escape VC 0 before the
// ring's wraparound edge has been crossed and VC 1 after.
func torusDOREscape(torus *topology.Torus, node int32, state uint32, dst int32) (Hop, bool) {
	k := torus.Dims()
	dirs := torusDirs(state, k)
	crossed := torusCrossed(state, k)
	for i := 0; i < k; i++ {
		c, z := torus.Coord(int(node), i), torus.Coord(int(dst), i)
		if c == z {
			continue
		}
		port, next := torusStep(torus, node, dirs, i)
		vc := uint8(0)
		if crossed&(1<<i) != 0 {
			vc = 1
		}
		return Hop{Port: port, VC: vc, State: torusNextState(torus, state, node, next, i), Escape: true}, true
	}
	return Hop{}, false
}

// HypercubeNonMinimal extends HypercubeAdaptive with bounded misrouting —
// the non-minimal adaptive wormhole routing [GPS91] also covers. The
// adaptive virtual channel may cross a *correct* dimension up to MaxMis
// times per worm (each misroute later costs one corrective hop), which lets
// a header sidestep a congested subcube entirely; the misroute budget in
// the routing state guarantees livelock freedom.
//
// Misroutes are restricted to dimensions strictly above the current lowest
// incorrect dimension. That keeps the sequence of escape (dimension-order)
// channels a worm can ever request strictly increasing in dimension — a
// misroute can only dirty dimensions above everything already escaped — so
// the escape channel dependency graph stays acyclic even through misrouted
// detours. The CDG checker rejects the unrestricted variant: a worm could
// leave and re-request an escape channel its own body still holds.
type HypercubeNonMinimal struct {
	cube   *topology.Hypercube
	maxMis int
}

// NewHypercubeNonMinimal returns the non-minimal scheme with the given
// misroute budget per worm (>= 0; 0 degenerates to the minimal scheme).
func NewHypercubeNonMinimal(dims, maxMis int) *HypercubeNonMinimal {
	if maxMis < 0 {
		panic("wormhole: negative misroute budget")
	}
	return &HypercubeNonMinimal{cube: topology.NewHypercube(dims), maxMis: maxMis}
}

func (h *HypercubeNonMinimal) Name() string                 { return "wh-hypercube-nonminimal" }
func (h *HypercubeNonMinimal) Topology() topology.Topology  { return h.cube }
func (h *HypercubeNonMinimal) NumVCs() int                  { return 2 }
func (h *HypercubeNonMinimal) Inject(src, dst int32) uint32 { return 0 } // misroutes used
func (h *HypercubeNonMinimal) Minimal() bool                { return false }

func (h *HypercubeNonMinimal) MaxHops(src, dst int32) int {
	// Every misroute adds the detour hop plus its later correction.
	return h.cube.Distance(int(src), int(dst)) + 2*h.maxMis
}

func (h *HypercubeNonMinimal) Candidates(node int32, state uint32, dst int32, buf []Hop) []Hop {
	diff := uint32(node ^ dst)
	if diff == 0 {
		return buf
	}
	low := bits.TrailingZeros32(diff)
	buf = append(buf, Hop{Port: int16(low), VC: 0, State: state, Escape: true})
	for d := diff; d != 0; d &= d - 1 {
		t := bits.TrailingZeros32(d)
		buf = append(buf, Hop{Port: int16(t), VC: 1, State: state})
	}
	if int(state) < h.maxMis {
		// Misroutes: cross a correct dimension above the lowest incorrect
		// one, spending budget.
		for t := low + 1; t < h.cube.Dims(); t++ {
			if diff&(1<<t) == 0 {
				buf = append(buf, Hop{Port: int16(t), VC: 1, State: state + 1})
			}
		}
	}
	return buf
}
