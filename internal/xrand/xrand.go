// Package xrand provides the tiny deterministic pseudo-random generator
// shared by the simulator and the traffic generators: a splitmix64 stream
// per node. Keeping one generator per node (rather than one per run) makes
// every simulation bit-reproducible regardless of execution order or worker
// count, which the determinism tests rely on.
package xrand

// RNG is a splitmix64 state. The zero value is a valid (if fixed) stream;
// use New to derive decorrelated per-node streams from a run seed.
type RNG uint64

// New derives a per-node generator from a run seed.
func New(seed int64, node int32) RNG {
	r := RNG(uint64(seed)*0x9e3779b97f4a7c15 + uint64(uint32(node))*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb)
	r.Next() // decorrelate adjacent nodes
	return r
}

// Next returns the next 64-bit value in the stream.
func (r *RNG) Next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive bound")
	}
	return int(r.Next() % uint64(n))
}

// Coin returns true with probability p (clamped to [0,1]).
func (r *RNG) Coin(p float64) bool {
	return float64(r.Next()>>11)/(1<<53) < p
}

// Perm fills out with a uniform permutation of 0..len(out)-1.
func (r *RNG) Perm(out []int32) {
	for i := range out {
		out[i] = int32(i)
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}
