package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterministicStreams(t *testing.T) {
	a, b := New(7, 3), New(7, 3)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed/node diverged")
		}
	}
	c, d := New(7, 4), New(8, 3)
	if x := New(7, 3); x.Next() == c.Next() && x.Next() == d.Next() {
		t.Error("distinct streams look identical")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(1, 0)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("value %d drawn %d/70000 times; generator is badly skewed", v, c)
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r := New(1, 0)
	r.Intn(0)
}

func TestCoinRate(t *testing.T) {
	r := New(2, 5)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		const n = 50000
		for i := 0; i < n; i++ {
			if r.Coin(p) {
				hits++
			}
		}
		if got := float64(hits) / n; math.Abs(got-p) > 0.02 {
			t.Errorf("Coin(%.1f) rate = %.3f", p, got)
		}
	}
	if r.Coin(0) {
		t.Error("Coin(0) returned true")
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed int64, sz uint8) bool {
		n := int(sz%32) + 1
		r := New(seed, 0)
		out := make([]int32, n)
		r.Perm(out)
		seen := make([]bool, n)
		for _, v := range out {
			if v < 0 || int(v) >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPermUniformish(t *testing.T) {
	// Each position should receive each value roughly uniformly.
	const n, trials = 4, 24000
	counts := [n][n]int{}
	r := New(11, 0)
	out := make([]int32, n)
	for i := 0; i < trials; i++ {
		r.Perm(out)
		for pos, v := range out {
			counts[pos][v]++
		}
	}
	want := trials / n
	for pos := 0; pos < n; pos++ {
		for v := 0; v < n; v++ {
			if c := counts[pos][v]; c < want*8/10 || c > want*12/10 {
				t.Errorf("position %d value %d: %d draws, want ~%d", pos, v, c, want)
			}
		}
	}
}
