package spec

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/topology"
)

func TestTopologyRoundTrip(t *testing.T) {
	for _, tspec := range []string{
		"hypercube:6",
		"mesh:8x8",
		"torus:4x3x3",
		"shuffle:5",
		"ccc:3",
		"graph:random-regular:n=32,k=3,seed=7",
		"graph:dragonfly:a=4,g=9",
		"graph:hyperx:3x4",
		"graph:fat-tree:leaves=6,spines=3",
	} {
		topo, err := Topology(tspec)
		if err != nil {
			t.Errorf("Topology(%q): %v", tspec, err)
			continue
		}
		got, err := FormatTopology(topo)
		if err != nil {
			t.Errorf("FormatTopology(%q): %v", tspec, err)
			continue
		}
		if got != tspec {
			t.Errorf("round trip %q -> %q", tspec, got)
		}
	}
}

func TestTopologyErrors(t *testing.T) {
	parseCases := []string{
		"hypercube",                           // no argument
		"hypercube:0",                         // out of range
		"hypercube:31",                        // out of range
		"mesh:0x4",                            // side too small
		"torus:2x2",                           // torus needs side >= 3
		"graph:dragonfly:a=4",                 // missing g
		"graph:dragonfly:a=4,g=10,x=1",        // unknown parameter
		"graph:dragonfly:a=4,g=10",            // a does not divide g-1
		"graph:dragonfly:a=x,g=9",             // non-integer
		"graph:random-regular:n=5,k=3,seed=1", // odd n*k
		"graph:hyperx:1x4",                    // side too small
	}
	for _, tspec := range parseCases {
		_, err := Topology(tspec)
		if err == nil {
			t.Errorf("Topology(%q) accepted", tspec)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("Topology(%q): want *ParseError, got %T %v", tspec, err, err)
		} else if pe.Spec != tspec {
			t.Errorf("Topology(%q): error names spec %q", tspec, pe.Spec)
		}
	}
	for _, tspec := range []string{"ring:9", "graph:smallworld:n=10"} {
		_, err := Topology(tspec)
		var ue *UnknownNameError
		if !errors.As(err, &ue) {
			t.Errorf("Topology(%q): want *UnknownNameError, got %T %v", tspec, err, err)
		} else if ue.Kind != "topology" {
			t.Errorf("Topology(%q): error kind %q", tspec, ue.Kind)
		}
	}
}

func TestGraphAdaptiveAlgorithmSpec(t *testing.T) {
	a, err := Algorithm("graph-adaptive:dragonfly:a=4,g=9")
	if err != nil {
		t.Fatalf("Algorithm: %v", err)
	}
	if a.Topology().Nodes() != 36 {
		t.Errorf("nodes = %d, want 36", a.Topology().Nodes())
	}
	got, err := Format(a)
	if err != nil || got != "graph-adaptive:dragonfly:a=4,g=9" {
		t.Errorf("Format = %q, %v", got, err)
	}
	// Errors inside the embedded generator spec must name the algorithm
	// spec the caller wrote, not the internal "graph:..." rewrite.
	_, err = Algorithm("graph-adaptive:dragonfly:a=4,g=10")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %T %v", err, err)
	}
	if pe.Spec != "graph-adaptive:dragonfly:a=4,g=10" {
		t.Errorf("error names spec %q", pe.Spec)
	}
}

func TestSplitJoinAlgo(t *testing.T) {
	cases := []struct{ algo, family, topo string }{
		{"hypercube-adaptive:10", "hypercube-adaptive", "hypercube:10"},
		{"mesh-xy:4x3x3", "mesh-xy", "mesh:4x3x3"},
		{"torus-adaptive:8x8", "torus-adaptive", "torus:8x8"},
		{"shuffle-eager:4", "shuffle-eager", "shuffle:4"},
		{"ccc-static:3", "ccc-static", "ccc:3"},
		{"graph-adaptive:dragonfly:a=4,g=9", "graph-adaptive", "graph:dragonfly:a=4,g=9"},
	}
	for _, c := range cases {
		family, topo, err := SplitAlgo(c.algo)
		if err != nil || family != c.family || topo != c.topo {
			t.Errorf("SplitAlgo(%q) = (%q, %q, %v), want (%q, %q)", c.algo, family, topo, err, c.family, c.topo)
		}
		joined, ok := JoinAlgo(c.family, c.topo)
		if !ok || joined != c.algo {
			t.Errorf("JoinAlgo(%q, %q) = (%q, %v), want %q", c.family, c.topo, joined, ok, c.algo)
		}
	}
	if f, topo, err := SplitAlgo("mesh-adaptive"); err != nil || f != "mesh-adaptive" || topo != "" {
		t.Errorf("SplitAlgo(bare family) = (%q, %q, %v)", f, topo, err)
	}
	if _, _, err := SplitAlgo("banyan-adaptive:4"); err == nil {
		t.Error("SplitAlgo accepted unknown family")
	}
	if _, ok := JoinAlgo("hypercube-adaptive", "mesh:4x4"); ok {
		t.Error("JoinAlgo accepted mismatched topology kind")
	}
}

func TestAlgorithmOn(t *testing.T) {
	cube := topology.NewHypercube(4)
	for family, want := range map[string]string{
		"hypercube-adaptive": "hypercube-adaptive",
		"hypercube-ecube":    "hypercube-ecube",
		"graph-adaptive":     "graph-adaptive",
	} {
		a, err := AlgorithmOn(family, cube)
		if err != nil {
			t.Errorf("AlgorithmOn(%q, hypercube): %v", family, err)
			continue
		}
		if a.Name() != want {
			t.Errorf("AlgorithmOn(%q).Name() = %q", family, a.Name())
		}
	}
	_, err := AlgorithmOn("mesh-adaptive", cube)
	var pe *ParseError
	if !errors.As(err, &pe) || !strings.Contains(err.Error(), "cannot run on") {
		t.Errorf("AlgorithmOn kind mismatch: got %T %v", err, err)
	}
	var ue *UnknownNameError
	if _, err := AlgorithmOn("nope", cube); !errors.As(err, &ue) {
		t.Errorf("AlgorithmOn unknown family: got %T %v", err, err)
	}
}
