package spec

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/topology"
)

// Topology specs name a network independently of any routing algorithm —
// the v2 RunSpec separation. The five closed-form families take the same
// size arguments their combined v1 algorithm specs did ("hypercube:10",
// "mesh:16x16"), and the "graph:" kind runs a generator for irregular
// networks ("graph:random-regular:n=256,k=4,seed=7").

// TopologyNames lists the spec templates accepted by Topology.
func TopologyNames() []string {
	return []string{
		"hypercube:<dims>",
		"mesh:<side>x<side>[x...]",
		"torus:<side>x<side>[x...]",
		"shuffle:<dims>",
		"ccc:<dims>",
		"graph:random-regular:n=<n>,k=<k>,seed=<seed>",
		"graph:dragonfly:a=<a>,g=<g>",
		"graph:hyperx:<side>x<side>[x...]",
		"graph:fat-tree:leaves=<l>,spines=<s>",
	}
}

// Topology builds a network from a textual topology spec. Size bounds match
// the algorithm grammar (a "hypercube:31" fails exactly like
// "hypercube-adaptive:31" always did); generator errors (disconnected,
// over the node or port caps) surface as *ParseError naming the full spec.
func Topology(tspec string) (topology.Topology, error) {
	name, arg, ok := strings.Cut(tspec, ":")
	if !ok {
		return nil, badSpec(tspec, "topology spec needs an argument, e.g. %q", "hypercube:10")
	}
	dims := func(lo, hi int) (int, error) {
		d, err := strconv.Atoi(arg)
		if err != nil {
			return 0, badSpec(tspec, "bad dimension %q", arg)
		}
		if d < lo || d > hi {
			return 0, badSpec(tspec, "dimension %d out of range [%d,%d]", d, lo, hi)
		}
		return d, nil
	}
	switch name {
	case "hypercube":
		d, err := dims(1, 30)
		if err != nil {
			return nil, err
		}
		return topology.NewHypercube(d), nil
	case "mesh":
		s, err := parseShape(tspec, arg, 1)
		if err != nil {
			return nil, err
		}
		return topology.NewMesh(s...), nil
	case "torus":
		s, err := parseShape(tspec, arg, 3)
		if err != nil {
			return nil, err
		}
		return topology.NewTorus(s...), nil
	case "shuffle":
		d, err := dims(1, 26)
		if err != nil {
			return nil, err
		}
		return topology.NewShuffleExchange(d), nil
	case "ccc":
		d, err := dims(2, 16)
		if err != nil {
			return nil, err
		}
		return topology.NewCCC(d), nil
	case "graph":
		return generate(tspec, arg)
	}
	return nil, &UnknownNameError{Kind: "topology", Name: name, Valid: TopologyNames()}
}

// generate runs the irregular-network generator named by a "graph:" spec
// argument such as "dragonfly:a=4,g=9".
func generate(tspec, arg string) (*topology.Graph, error) {
	gen, params, _ := strings.Cut(arg, ":")
	wrap := func(g *topology.Graph, err error) (*topology.Graph, error) {
		if err != nil {
			return nil, &ParseError{Spec: tspec, Reason: err.Error()}
		}
		return g, nil
	}
	switch gen {
	case "random-regular":
		kv, err := parseKV(tspec, params, "n", "k", "seed")
		if err != nil {
			return nil, err
		}
		return wrap(topology.NewRandomRegular(int(kv["n"]), int(kv["k"]), kv["seed"]))
	case "dragonfly":
		kv, err := parseKV(tspec, params, "a", "g")
		if err != nil {
			return nil, err
		}
		return wrap(topology.NewDragonfly(int(kv["a"]), int(kv["g"])))
	case "hyperx":
		s, err := parseShape(tspec, params, 2)
		if err != nil {
			return nil, err
		}
		return wrap(topology.NewHyperX(s...))
	case "fat-tree":
		kv, err := parseKV(tspec, params, "leaves", "spines")
		if err != nil {
			return nil, err
		}
		return wrap(topology.NewFatTree(int(kv["leaves"]), int(kv["spines"])))
	}
	return nil, &UnknownNameError{Kind: "topology", Name: "graph:" + gen, Valid: TopologyNames()}
}

// parseShape parses a "<side>x<side>[x...]" argument with the same bounds
// the algorithm grammar applies.
func parseShape(spec, arg string, minSide int) ([]int, error) {
	parts := strings.Split(arg, "x")
	out := make([]int, len(parts))
	nodes := 1
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, badSpec(spec, "bad shape %q", arg)
		}
		if v < minSide {
			return nil, badSpec(spec, "side %d must be >= %d, got %d", i, minSide, v)
		}
		if nodes > maxNodes/v {
			return nil, badSpec(spec, "more than %d nodes", maxNodes)
		}
		nodes *= v
		out[i] = v
	}
	return out, nil
}

// parseKV parses a "k1=v1,k2=v2" argument requiring exactly the given keys,
// in any order, each an integer.
func parseKV(spec, arg string, keys ...string) (map[string]int64, error) {
	kv := make(map[string]int64, len(keys))
	if arg != "" {
		for _, pair := range strings.Split(arg, ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				return nil, badSpec(spec, "bad parameter %q, want key=value", pair)
			}
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, badSpec(spec, "bad value %q for %q", v, k)
			}
			if _, dup := kv[k]; dup {
				return nil, badSpec(spec, "duplicate parameter %q", k)
			}
			kv[k] = n
		}
	}
	for _, k := range keys {
		if _, ok := kv[k]; !ok {
			return nil, badSpec(spec, "missing parameter %q", k)
		}
	}
	if len(kv) != len(keys) {
		for k := range kv {
			known := false
			for _, want := range keys {
				if k == want {
					known = true
					break
				}
			}
			if !known {
				return nil, badSpec(spec, "unknown parameter %q", k)
			}
		}
	}
	return kv, nil
}

// FormatTopology renders the canonical spec of a topology built by this
// package: Topology(FormatTopology(t)) reconstructs an equivalent network.
func FormatTopology(t topology.Topology) (string, error) {
	switch t := t.(type) {
	case *topology.Hypercube:
		return "hypercube:" + strconv.Itoa(t.Dims()), nil
	case *topology.Mesh:
		return "mesh:" + joinShape(t.Shape()), nil
	case *topology.Torus:
		return "torus:" + joinShape(t.Shape()), nil
	case *topology.ShuffleExchange:
		return "shuffle:" + strconv.Itoa(t.Dims()), nil
	case *topology.CCC:
		return "ccc:" + strconv.Itoa(t.Dims()), nil
	case *topology.Graph:
		return "graph:" + t.Spec(), nil
	}
	return "", fmt.Errorf("spec: no spec syntax for topology %s", t.Name())
}

// impliedKind maps an algorithm family to the topology kind it runs on,
// or "" for an unknown family.
func impliedKind(family string) string {
	switch family {
	case "hypercube-adaptive", "hypercube-hung", "hypercube-ecube":
		return "hypercube"
	case "mesh-adaptive", "mesh-twophase", "mesh-xy":
		return "mesh"
	case "torus-adaptive":
		return "torus"
	case "shuffle-adaptive", "shuffle-static", "shuffle-eager":
		return "shuffle"
	case "ccc-adaptive", "ccc-static":
		return "ccc"
	case "graph-adaptive":
		return "graph"
	}
	return ""
}

// SplitAlgo decomposes a combined v1 algorithm spec into its bare family
// and the implied topology spec: "hypercube-adaptive:10" becomes
// ("hypercube-adaptive", "hypercube:10"), "graph-adaptive:dragonfly:a=4,g=9"
// becomes ("graph-adaptive", "graph:dragonfly:a=4,g=9"). A bare family with
// no size argument returns topoSpec == "" (the caller must supply the
// topology separately). Unknown families are an *UnknownNameError.
func SplitAlgo(algoSpec string) (family, topoSpec string, err error) {
	family, arg, sized := strings.Cut(algoSpec, ":")
	kind := impliedKind(family)
	if kind == "" {
		return "", "", &UnknownNameError{Kind: "algorithm", Name: family, Valid: AlgorithmNames()}
	}
	if !sized {
		return family, "", nil
	}
	return family, kind + ":" + arg, nil
}

// JoinAlgo is SplitAlgo's inverse: it reconstructs the combined v1
// algorithm spec from a bare family and a topology spec, or reports ok ==
// false when the pair has no v1 form (topology kind differing from the
// family's implied kind).
func JoinAlgo(family, topoSpec string) (string, bool) {
	kind := impliedKind(family)
	arg, found := strings.CutPrefix(topoSpec, kind+":")
	if kind == "" || !found {
		return "", false
	}
	return family + ":" + arg, true
}

// AlgorithmOn builds the routing algorithm of a bare family over an
// already-constructed topology — the v2 path, in which the network comes
// from Topology and the algo field carries no size. The topology must be of
// the family's kind (graph-adaptive runs on anything).
func AlgorithmOn(family string, t topology.Topology) (core.Algorithm, error) {
	mismatch := func() error {
		return badSpec(family, "algorithm cannot run on topology %s", t.Name())
	}
	switch family {
	case "graph-adaptive":
		a, err := core.NewGraphAdaptive(t)
		if err != nil {
			return nil, &ParseError{Spec: family, Reason: err.Error()}
		}
		return a, nil
	case "hypercube-adaptive", "hypercube-hung", "hypercube-ecube":
		h, ok := t.(*topology.Hypercube)
		if !ok {
			return nil, mismatch()
		}
		switch family {
		case "hypercube-adaptive":
			return core.NewHypercubeAdaptive(h.Dims()), nil
		case "hypercube-hung":
			return core.NewHypercubeHung(h.Dims()), nil
		default:
			return core.NewHypercubeECube(h.Dims()), nil
		}
	case "mesh-adaptive", "mesh-twophase", "mesh-xy":
		m, ok := t.(*topology.Mesh)
		if !ok {
			return nil, mismatch()
		}
		switch family {
		case "mesh-adaptive":
			return core.NewMeshAdaptive(m.Shape()...), nil
		case "mesh-twophase":
			return core.NewMeshTwoPhase(m.Shape()...), nil
		default:
			return core.NewMeshXY(m.Shape()...), nil
		}
	case "torus-adaptive":
		to, ok := t.(*topology.Torus)
		if !ok {
			return nil, mismatch()
		}
		return core.NewTorusAdaptive(to.Shape()...), nil
	case "shuffle-adaptive", "shuffle-static", "shuffle-eager":
		s, ok := t.(*topology.ShuffleExchange)
		if !ok {
			return nil, mismatch()
		}
		switch family {
		case "shuffle-adaptive":
			return core.NewShuffleExchangeAdaptive(s.Dims()), nil
		case "shuffle-static":
			return core.NewShuffleExchangeStatic(s.Dims()), nil
		default:
			return core.NewShuffleExchangeEager(s.Dims()), nil
		}
	case "ccc-adaptive", "ccc-static":
		c, ok := t.(*topology.CCC)
		if !ok {
			return nil, mismatch()
		}
		if family == "ccc-adaptive" {
			return core.NewCCCAdaptive(c.Dims()), nil
		}
		return core.NewCCCStatic(c.Dims()), nil
	}
	return nil, &UnknownNameError{Kind: "algorithm", Name: family, Valid: AlgorithmNames()}
}
