package spec

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/traffic"
)

func TestParseTraffic(t *testing.T) {
	cases := []struct {
		spec string
		ok   bool
		kind string
	}{
		{"", true, "bernoulli"},
		{"bernoulli", true, "bernoulli"},
		{"bernoulli:0.5", false, ""},
		{"mmpp", true, "mmpp"},
		{"mmpp:on=0.9,off=0.05,p10=0.2,p01=0.3", true, "mmpp"},
		{"mmpp:on=1.5", false, ""},
		{"mmpp:bogus=1", false, ""},
		{"mmpp:on0.9", false, ""},
		{"onoff", true, "onoff"},
		{"onoff:hi=0.9,lo=0.1,period=32,on=8", true, "onoff"},
		{"onoff:period=0", false, ""},
		{"onoff:period=16,on=20", false, ""},
		{"onoff:hi=2", false, ""},
		{"trace:run.jsonl", true, "trace"},
		{"trace:", false, ""},
		{"trace", false, ""},
	}
	for _, tc := range cases {
		ts, err := ParseTraffic(tc.spec)
		if tc.ok {
			if err != nil {
				t.Errorf("ParseTraffic(%q): %v", tc.spec, err)
			} else if ts.Kind != tc.kind {
				t.Errorf("ParseTraffic(%q).Kind = %q, want %q", tc.spec, ts.Kind, tc.kind)
			}
		} else if err == nil {
			t.Errorf("ParseTraffic(%q) accepted, want error", tc.spec)
		}
	}
}

func TestParseTrafficDefaults(t *testing.T) {
	ts, err := ParseTraffic("mmpp:off=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if ts.P10 != 0.1 || ts.P01 != 0.1 || ts.onSet {
		t.Errorf("mmpp defaults wrong: %+v", ts)
	}
	ts, err = ParseTraffic("onoff:period=100")
	if err != nil {
		t.Fatal(err)
	}
	if ts.OnCycles != 50 {
		t.Errorf("onoff on default = %d, want period/2 = 50", ts.OnCycles)
	}
}

func TestParseTrafficUnknownName(t *testing.T) {
	_, err := ParseTraffic("poisson")
	var ue *UnknownNameError
	if !errors.As(err, &ue) {
		t.Fatalf("want *UnknownNameError, got %v", err)
	}
	if ue.Kind != "traffic" {
		t.Errorf("Kind = %q, want \"traffic\"", ue.Kind)
	}
}

func TestTrafficBuild(t *testing.T) {
	pat := traffic.Random{Nodes: 64}
	for _, spec := range []string{"bernoulli", "mmpp", "onoff:hi=0.8"} {
		ts, err := ParseTraffic(spec)
		if err != nil {
			t.Fatal(err)
		}
		src, err := ts.Build(pat, 64, 0.5, 7)
		if err != nil {
			t.Fatalf("Build(%q): %v", spec, err)
		}
		if src == nil {
			t.Fatalf("Build(%q) returned nil source", spec)
		}
	}

	// Trace build opens the file at build time, not parse time.
	ts, err := ParseTraffic("trace:" + filepath.Join(t.TempDir(), "missing.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ts.Build(pat, 64, 0.5, 7); !os.IsNotExist(err) {
		t.Errorf("Build of missing trace: %v, want not-exist", err)
	}

	path := filepath.Join(t.TempDir(), "t.jsonl")
	if err := os.WriteFile(path, []byte("{\"c\":0,\"s\":1,\"d\":2}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ts, err = ParseTraffic("trace:" + path)
	if err != nil {
		t.Fatal(err)
	}
	src, err := ts.Build(pat, 64, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !src.Wants(1, 0) {
		t.Error("trace source should want node 1 at cycle 0")
	}
}
