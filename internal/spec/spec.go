// Package spec parses the textual specifications the tools and the public
// facade accept — algorithm specs like "hypercube-adaptive:10" or
// "mesh-adaptive:16x16", and traffic-pattern specs like "hotspot:0.2" — and
// formats algorithms back into their canonical specs (Format is Parse's
// inverse). Errors are structured: an unrecognized family yields an
// *UnknownNameError listing the valid names, a malformed or out-of-range
// argument a *ParseError naming the offending spec.
package spec

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// UnknownNameError reports a spec whose family name is not recognized.
type UnknownNameError struct {
	Kind  string   // what was being named: "algorithm", "pattern", "topology", "traffic"
	Name  string   // the unrecognized name
	Valid []string // the accepted names or spec templates
}

func (e *UnknownNameError) Error() string {
	return fmt.Sprintf("spec: unknown %s %q, valid: %s", e.Kind, e.Name, strings.Join(e.Valid, ", "))
}

// ParseError reports a recognized spec with a malformed or out-of-range
// argument.
type ParseError struct {
	Spec   string // the full spec as given
	Reason string // what is wrong with it
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("spec: %s: %s", e.Spec, e.Reason)
}

func badSpec(spec, format string, args ...any) error {
	return &ParseError{Spec: spec, Reason: fmt.Sprintf(format, args...)}
}

// AlgorithmNames lists the spec templates accepted by Algorithm.
func AlgorithmNames() []string {
	return []string{
		"hypercube-adaptive:<dims>",
		"hypercube-hung:<dims>",
		"hypercube-ecube:<dims>",
		"mesh-adaptive:<side>x<side>[x...]",
		"mesh-twophase:<side>x<side>[x...]",
		"mesh-xy:<side>x<side>[x...]",
		"shuffle-adaptive:<dims>",
		"shuffle-static:<dims>",
		"shuffle-eager:<dims>",
		"ccc-adaptive:<dims>",
		"ccc-static:<dims>",
		"torus-adaptive:<side>x<side>[x...]",
		"graph-adaptive:<generator-spec>",
	}
}

// PatternNames lists the spec templates accepted by Pattern.
func PatternNames() []string {
	return []string{
		"random", "complement", "transpose", "leveled", "bit-reversal",
		"mesh-transpose", "hotspot:<fraction>",
	}
}

// maxNodes caps the node count a textual spec may ask for, so a typo like
// "mesh-adaptive:100000x100000" fails fast instead of allocating.
const maxNodes = 1 << 24

// Algorithm builds a routing algorithm from a textual spec such as
// "hypercube-adaptive:10", "mesh-adaptive:16x16" or "torus-adaptive:8x8".
// Malformed or out-of-range sizes (e.g. "hypercube-adaptive:-1",
// "mesh-adaptive:0x5") are reported as errors, never panics: each family's
// topology bounds — hypercube and shuffle-exchange dimension, CCC order,
// minimum mesh/torus sides — are validated here before construction.
func Algorithm(spec string) (core.Algorithm, error) {
	name, arg, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, badSpec(spec, "algorithm spec needs a size, e.g. %q", "hypercube-adaptive:10")
	}
	dims := func(lo, hi int) (int, error) {
		d, err := strconv.Atoi(arg)
		if err != nil {
			return 0, badSpec(spec, "bad dimension %q", arg)
		}
		if d < lo || d > hi {
			return 0, badSpec(spec, "dimension %d out of range [%d,%d]", d, lo, hi)
		}
		return d, nil
	}
	shape := func(minSide int) ([]int, error) {
		parts := strings.Split(arg, "x")
		out := make([]int, len(parts))
		nodes := 1
		for i, p := range parts {
			v, err := strconv.Atoi(p)
			if err != nil {
				return nil, badSpec(spec, "bad shape %q", arg)
			}
			if v < minSide {
				return nil, badSpec(spec, "side %d must be >= %d, got %d", i, minSide, v)
			}
			if nodes > maxNodes/v {
				return nil, badSpec(spec, "more than %d nodes", maxNodes)
			}
			nodes *= v
			out[i] = v
		}
		return out, nil
	}
	switch name {
	case "hypercube-adaptive":
		d, err := dims(1, 30)
		if err != nil {
			return nil, err
		}
		return core.NewHypercubeAdaptive(d), nil
	case "hypercube-hung":
		d, err := dims(1, 30)
		if err != nil {
			return nil, err
		}
		return core.NewHypercubeHung(d), nil
	case "hypercube-ecube":
		d, err := dims(1, 30)
		if err != nil {
			return nil, err
		}
		return core.NewHypercubeECube(d), nil
	case "mesh-adaptive":
		s, err := shape(1)
		if err != nil {
			return nil, err
		}
		return core.NewMeshAdaptive(s...), nil
	case "mesh-twophase":
		s, err := shape(1)
		if err != nil {
			return nil, err
		}
		return core.NewMeshTwoPhase(s...), nil
	case "mesh-xy":
		s, err := shape(1)
		if err != nil {
			return nil, err
		}
		return core.NewMeshXY(s...), nil
	case "shuffle-adaptive":
		d, err := dims(1, 26)
		if err != nil {
			return nil, err
		}
		return core.NewShuffleExchangeAdaptive(d), nil
	case "shuffle-static":
		d, err := dims(1, 26)
		if err != nil {
			return nil, err
		}
		return core.NewShuffleExchangeStatic(d), nil
	case "shuffle-eager":
		d, err := dims(1, 26)
		if err != nil {
			return nil, err
		}
		return core.NewShuffleExchangeEager(d), nil
	case "ccc-adaptive":
		d, err := dims(2, 16)
		if err != nil {
			return nil, err
		}
		return core.NewCCCAdaptive(d), nil
	case "ccc-static":
		d, err := dims(2, 16)
		if err != nil {
			return nil, err
		}
		return core.NewCCCStatic(d), nil
	case "torus-adaptive":
		s, err := shape(3)
		if err != nil {
			return nil, err
		}
		return core.NewTorusAdaptive(s...), nil
	case "graph-adaptive":
		// The argument is a generator spec as accepted by the "graph:"
		// topology kind, e.g. "graph-adaptive:dragonfly:a=4,g=9".
		t, err := Topology("graph:" + arg)
		if err != nil {
			return nil, renameSpecErr(err, spec)
		}
		return AlgorithmOn(name, t)
	}
	return nil, &UnknownNameError{Kind: "algorithm", Name: name, Valid: AlgorithmNames()}
}

// Format renders the canonical spec of an algorithm built by this package:
// Algorithm(Format(a)) reconstructs an equivalent algorithm. It fails for
// algorithms over topologies the spec grammar cannot name.
func Format(a core.Algorithm) (string, error) {
	var arg string
	switch t := a.Topology().(type) {
	case *topology.Hypercube:
		arg = strconv.Itoa(t.Dims())
	case *topology.ShuffleExchange:
		arg = strconv.Itoa(t.Dims())
	case *topology.CCC:
		arg = strconv.Itoa(t.Dims())
	case *topology.Mesh:
		arg = joinShape(t.Shape())
	case *topology.Torus:
		arg = joinShape(t.Shape())
	case *topology.Graph:
		arg = t.Spec()
	default:
		return "", fmt.Errorf("spec: no spec syntax for topology %s", a.Topology().Name())
	}
	return a.Name() + ":" + arg, nil
}

// renameSpecErr rewrites the Spec field of a *ParseError produced while
// parsing a derived spec (e.g. the "graph:..." topology inside a
// "graph-adaptive:..." algorithm) so the error names the spec the caller
// actually wrote.
func renameSpecErr(err error, spec string) error {
	if pe, ok := err.(*ParseError); ok {
		return &ParseError{Spec: spec, Reason: pe.Reason}
	}
	return err
}

func joinShape(shape []int) string {
	parts := make([]string, len(shape))
	for i, s := range shape {
		parts[i] = strconv.Itoa(s)
	}
	return strings.Join(parts, "x")
}

// Pattern builds a traffic pattern from a textual spec for an algorithm's
// topology: "random", "complement", "transpose", "leveled", "bit-reversal",
// "mesh-transpose" and "hotspot:<fraction>". Hypercube-address patterns
// (complement, transpose, leveled, bit-reversal) require a power-of-two node
// count; mesh-transpose requires a square 2-dimensional mesh or torus.
func Pattern(pspec string, a core.Algorithm, seed int64) (traffic.Pattern, error) {
	topo := a.Topology()
	nodes := topo.Nodes()
	bits := func() (int, error) {
		b := 0
		for 1<<b < nodes {
			b++
		}
		if 1<<b != nodes {
			return 0, badSpec(pspec, "pattern needs a power-of-two node count, have %d", nodes)
		}
		return b, nil
	}
	name, arg, _ := strings.Cut(pspec, ":")
	switch name {
	case "random":
		return traffic.Random{Nodes: nodes}, nil
	case "complement":
		b, err := bits()
		if err != nil {
			return nil, err
		}
		return traffic.Complement{Bits: b}, nil
	case "transpose":
		b, err := bits()
		if err != nil {
			return nil, err
		}
		return traffic.Transpose{Bits: b}, nil
	case "leveled":
		b, err := bits()
		if err != nil {
			return nil, err
		}
		return traffic.NewLeveled(b, seed), nil
	case "bit-reversal":
		b, err := bits()
		if err != nil {
			return nil, err
		}
		return traffic.BitReversal{Bits: b}, nil
	case "mesh-transpose":
		side := 0
		switch t := topo.(type) {
		case *topology.Mesh:
			if t.Dims() == 2 && t.Shape()[0] == t.Shape()[1] {
				side = t.Shape()[0]
			}
		case *topology.Torus:
			if t.Dims() == 2 && t.Shape()[0] == t.Shape()[1] {
				side = t.Shape()[0]
			}
		}
		if side == 0 {
			return nil, badSpec(pspec, "mesh-transpose needs a square 2-dimensional mesh or torus, have %s", topo.Name())
		}
		return traffic.MeshTranspose{Side: side}, nil
	case "hotspot":
		frac := 0.2
		if arg != "" {
			v, err := strconv.ParseFloat(arg, 64)
			if err != nil || !(v >= 0 && v <= 1) { // rejects NaN too
				return nil, badSpec(pspec, "bad hotspot fraction %q", arg)
			}
			frac = v
		}
		return traffic.Hotspot{Nodes: nodes, Hot: int32(nodes / 2), Fraction: frac}, nil
	}
	return nil, &UnknownNameError{Kind: "pattern", Name: name, Valid: PatternNames()}
}
