package spec

import (
	"os"
	"strconv"
	"strings"

	"repro/internal/sim"
	"repro/internal/traffic"
)

// TrafficNames lists the spec templates accepted by ParseTraffic.
func TrafficNames() []string {
	return []string{
		"bernoulli",
		"mmpp:on=<p>,off=<p>,p10=<p>,p01=<p>",
		"onoff:hi=<p>,lo=<p>,period=<cycles>,on=<cycles>",
		"trace:<path>",
	}
}

// TrafficSpec is a parsed traffic-model spec. Parsing (ParseTraffic) is
// side-effect free — a trace path's existence is not checked until Build
// opens it — so specs can be validated, fingerprinted and shipped to a
// daemon without touching the filesystem.
type TrafficSpec struct {
	Kind string // "bernoulli", "mmpp", "onoff", "trace"

	// mmpp: injection probability per state and transition probabilities.
	// On defaults to the run's lambda when not given.
	On, Off, P10, P01 float64
	onSet             bool

	// onoff: square-wave rates and cycle counts. Hi defaults to the run's
	// lambda when not given.
	Hi, Lo           float64
	Period, OnCycles int64
	hiSet, onCycSet  bool

	// trace: path of the JSONL trace to replay.
	Path string
}

// ParseTraffic parses a traffic-model spec: "bernoulli" (the default, also
// chosen by the empty spec), "mmpp:on=0.9,off=0.05,p10=0.1,p01=0.1",
// "onoff:hi=0.9,lo=0.1,period=64,on=32", or "trace:<path>". Key=value
// arguments may appear in any order and every one has a default; rate
// parameters default to the run's lambda where noted on TrafficSpec.
func ParseTraffic(tspec string) (*TrafficSpec, error) {
	name, arg, _ := strings.Cut(tspec, ":")
	ts := &TrafficSpec{Kind: name}
	prob := func(k, v string) (float64, error) {
		p, err := strconv.ParseFloat(v, 64)
		if err != nil || !(p >= 0 && p <= 1) { // rejects NaN too
			return 0, badSpec(tspec, "bad probability %s=%q", k, v)
		}
		return p, nil
	}
	kvs := func(apply func(k, v string) error) error {
		if arg == "" {
			return nil
		}
		for _, kv := range strings.Split(arg, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return badSpec(tspec, "argument %q is not key=value", kv)
			}
			if err := apply(k, v); err != nil {
				return err
			}
		}
		return nil
	}
	switch name {
	case "", "bernoulli":
		ts.Kind = "bernoulli"
		if arg != "" {
			return nil, badSpec(tspec, "bernoulli takes no arguments (rate comes from lambda)")
		}
		return ts, nil
	case "mmpp":
		ts.P10, ts.P01 = 0.1, 0.1
		err := kvs(func(k, v string) error {
			p, err := prob(k, v)
			if err != nil {
				return err
			}
			switch k {
			case "on":
				ts.On, ts.onSet = p, true
			case "off":
				ts.Off = p
			case "p10":
				ts.P10 = p
			case "p01":
				ts.P01 = p
			default:
				return badSpec(tspec, "unknown mmpp argument %q", k)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		return ts, nil
	case "onoff":
		ts.Period = 64
		err := kvs(func(k, v string) error {
			switch k {
			case "hi":
				p, err := prob(k, v)
				if err != nil {
					return err
				}
				ts.Hi, ts.hiSet = p, true
			case "lo":
				p, err := prob(k, v)
				if err != nil {
					return err
				}
				ts.Lo = p
			case "period", "on":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil || n < 0 {
					return badSpec(tspec, "bad cycle count %s=%q", k, v)
				}
				if k == "period" {
					ts.Period = n
				} else {
					ts.OnCycles, ts.onCycSet = n, true
				}
			default:
				return badSpec(tspec, "unknown onoff argument %q", k)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if ts.Period <= 0 {
			return nil, badSpec(tspec, "period must be positive")
		}
		if !ts.onCycSet {
			ts.OnCycles = ts.Period / 2
		}
		if ts.OnCycles > ts.Period {
			return nil, badSpec(tspec, "on=%d exceeds period=%d", ts.OnCycles, ts.Period)
		}
		return ts, nil
	case "trace":
		if arg == "" {
			return nil, badSpec(tspec, "trace needs a path, e.g. %q", "trace:run.jsonl")
		}
		ts.Path = arg
		return ts, nil
	}
	return nil, &UnknownNameError{Kind: "traffic", Name: name, Valid: TrafficNames()}
}

// Dynamic reports whether the model generates open-loop dynamic traffic
// (and therefore requires a dynamic injection plan). Trace replay carries
// its own cycle stamps and works under both plan kinds.
func (ts *TrafficSpec) Dynamic() bool { return ts.Kind != "trace" }

// Build constructs the traffic source. This is the side-effectful half of
// the spec: a trace path is opened here, at run time. The pattern and seed
// feed destination draws for the generative models; lambda fills the rate
// parameters documented as defaulting to it.
func (ts *TrafficSpec) Build(pat traffic.Pattern, nodes int, lambda float64, seed int64) (sim.TrafficSource, error) {
	switch ts.Kind {
	case "bernoulli":
		return traffic.NewBernoulliSource(pat, nodes, lambda, seed), nil
	case "mmpp":
		on := ts.On
		if !ts.onSet {
			on = lambda
		}
		return traffic.NewMMPP(pat, nodes, on, ts.Off, ts.P10, ts.P01, seed), nil
	case "onoff":
		hi := ts.Hi
		if !ts.hiSet {
			hi = lambda
		}
		return traffic.NewOnOff(pat, nodes, hi, ts.Lo, ts.Period, ts.OnCycles, seed), nil
	case "trace":
		f, err := os.Open(ts.Path)
		if err != nil {
			return nil, err
		}
		return traffic.NewTraceSource(f, nodes), nil
	}
	return nil, &UnknownNameError{Kind: "traffic", Name: ts.Kind, Valid: TrafficNames()}
}
