package spec

import (
	"errors"
	"strings"
	"testing"
)

// TestFormatRoundTrip checks Format is Algorithm's inverse: every spec in
// the grammar parses, formats back to itself, and re-parses to an algorithm
// with the same name and topology.
func TestFormatRoundTrip(t *testing.T) {
	specs := []string{
		"hypercube-adaptive:6",
		"hypercube-hung:5",
		"hypercube-ecube:4",
		"mesh-adaptive:4x6",
		"mesh-twophase:3x3",
		"mesh-xy:5x5",
		"mesh-adaptive:3x4x2",
		"shuffle-adaptive:5",
		"shuffle-static:5",
		"shuffle-eager:4",
		"ccc-adaptive:3",
		"ccc-static:3",
		"torus-adaptive:4x4",
		"torus-adaptive:3x4x5",
	}
	for _, s := range specs {
		a, err := Algorithm(s)
		if err != nil {
			t.Errorf("Algorithm(%q): %v", s, err)
			continue
		}
		got, err := Format(a)
		if err != nil {
			t.Errorf("Format(Algorithm(%q)): %v", s, err)
			continue
		}
		if got != s {
			t.Errorf("round trip: %q -> %q", s, got)
			continue
		}
		b, err := Algorithm(got)
		if err != nil {
			t.Errorf("re-parse %q: %v", got, err)
			continue
		}
		if b.Name() != a.Name() || b.Topology().Nodes() != a.Topology().Nodes() {
			t.Errorf("%q re-parsed to %s/%d nodes, want %s/%d",
				s, b.Name(), b.Topology().Nodes(), a.Name(), a.Topology().Nodes())
		}
	}
}

func TestAlgorithmUnknownName(t *testing.T) {
	_, err := Algorithm("warpdrive:4")
	var ue *UnknownNameError
	if !errors.As(err, &ue) {
		t.Fatalf("want *UnknownNameError, got %v", err)
	}
	if ue.Kind != "algorithm" || ue.Name != "warpdrive" || len(ue.Valid) == 0 {
		t.Errorf("bad error fields: %+v", ue)
	}
	if !strings.Contains(ue.Error(), "hypercube-adaptive") {
		t.Errorf("error message does not list valid names: %s", ue.Error())
	}
}

func TestAlgorithmParseErrors(t *testing.T) {
	for _, s := range []string{
		"hypercube-adaptive",      // no argument
		"hypercube-adaptive:x",    // non-integer dims
		"hypercube-adaptive:0",    // below range
		"hypercube-adaptive:99",   // above range
		"mesh-adaptive:axb",       // non-integer shape
		"mesh-adaptive:0x5",       // zero side
		"torus-adaptive:2x2",      // torus side below 3
		"mesh-adaptive:5000x5000", // over the node cap
		"ccc-adaptive:1",          // CCC order below 2
	} {
		_, err := Algorithm(s)
		if err == nil {
			t.Errorf("Algorithm(%q) accepted", s)
			continue
		}
		var pe *ParseError
		if s != "hypercube-adaptive" && !errors.As(err, &pe) {
			t.Errorf("Algorithm(%q): want *ParseError, got %T %v", s, err, err)
		}
	}
}

func TestPatternUnknownName(t *testing.T) {
	a, err := Algorithm("hypercube-adaptive:4")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Pattern("zigzag", a, 1)
	var ue *UnknownNameError
	if !errors.As(err, &ue) {
		t.Fatalf("want *UnknownNameError, got %v", err)
	}
	if ue.Kind != "pattern" || ue.Name != "zigzag" {
		t.Errorf("bad error fields: %+v", ue)
	}
}

func TestPatternParseErrors(t *testing.T) {
	cube, err := Algorithm("hypercube-adaptive:4")
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := Algorithm("mesh-adaptive:3x5")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		pspec string
		on    string
	}{
		{"hotspot:2", "cube"},      // fraction > 1
		{"hotspot:x", "cube"},      // non-numeric fraction
		{"complement", "mesh"},     // 15 nodes, not a power of two
		{"mesh-transpose", "cube"}, // not a mesh
		{"mesh-transpose", "mesh"}, // not square
	} {
		a := cube
		if c.on == "mesh" {
			a = mesh
		}
		_, err := Pattern(c.pspec, a, 1)
		if err == nil {
			t.Errorf("Pattern(%q) on %s accepted", c.pspec, c.on)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("Pattern(%q) on %s: want *ParseError, got %T %v", c.pspec, c.on, err, err)
		}
	}
}

func TestNamesAreConstructible(t *testing.T) {
	for _, tmpl := range AlgorithmNames() {
		name := strings.SplitN(tmpl, ":", 2)[0]
		arg := "4"
		if strings.Contains(tmpl, "x<side>") {
			arg = "4x4"
		}
		if name == "graph-adaptive" {
			arg = "dragonfly:a=2,g=5"
		}
		if _, err := Algorithm(name + ":" + arg); err != nil {
			t.Errorf("listed algorithm %q not constructible: %v", tmpl, err)
		}
	}
	cube, _ := Algorithm("hypercube-adaptive:4")
	mesh, _ := Algorithm("mesh-adaptive:4x4")
	for _, tmpl := range PatternNames() {
		name := strings.SplitN(tmpl, ":", 2)[0]
		a := cube
		if name == "mesh-transpose" {
			a = mesh
		}
		if _, err := Pattern(name, a, 1); err != nil {
			t.Errorf("listed pattern %q not constructible: %v", tmpl, err)
		}
	}
}
