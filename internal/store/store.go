package store

import (
	"bufio"
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/obs"
)

// entryVersion is bumped whenever the on-disk entry schema changes; lines
// of another version are skipped on replay, never trusted.
const entryVersion = 1

// line is the on-disk form of one entry: a fingerprint key and an opaque
// blob. The store never interprets the blob — callers own its schema and
// are expected to fold a schema version into the fingerprint (RunSpec's
// "v":1, the sweep journal's entry version).
type line struct {
	V    int             `json:"v"`
	Key  string          `json:"key"`
	Blob json.RawMessage `json:"blob"`
}

// Options tunes an open store.
type Options struct {
	// Truncate discards any existing backing file instead of replaying it.
	Truncate bool
	// LRUCap bounds the number of entries held in memory; 0 means
	// unbounded (every replayed and written entry stays resident). The
	// backing file is append-only and keeps everything regardless — an
	// evicted entry is a cache miss, not data loss, but only a reopen
	// brings it back.
	LRUCap int
}

// Store is a content-addressed blob store: Get/Put keyed by fingerprint,
// an LRU-bounded in-memory tier, and an optional JSONL append-only backing
// file. All methods are safe for concurrent use.
type Store struct {
	mu    sync.Mutex
	f     *os.File // nil for a memory-only store
	cap   int
	ents  map[string]*list.Element
	order *list.List // front = most recently used
	stats obs.CacheStats
}

type kv struct {
	key  string
	blob []byte
}

// Open opens the store backed by the JSONL file at path, replaying existing
// entries into the in-memory tier (last write wins per key). An empty path
// yields a memory-only store.
func Open(path string, o Options) (*Store, error) {
	s := &Store{cap: o.LRUCap, ents: map[string]*list.Element{}, order: list.New()}
	if path == "" {
		return s, nil
	}
	f, err := OpenAppend(path, o.Truncate)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.f = f
	if !o.Truncate {
		if err := s.replay(path); err != nil {
			f.Close()
			return nil, err
		}
	}
	return s, nil
}

// replay loads the backing file into the in-memory tier. Malformed lines —
// including the partial trailing line a crash mid-append can leave behind —
// and entries of another schema version are skipped.
func (s *Store) replay(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: replay: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			continue
		}
		if l.V != entryVersion || l.Key == "" {
			continue
		}
		s.insert(l.Key, l.Blob)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("store: replay: %w", err)
	}
	return nil
}

// insert places an entry at the front of the LRU, evicting from the back
// when over capacity. Caller holds s.mu (or is pre-publication replay).
func (s *Store) insert(key string, blob []byte) {
	if el, ok := s.ents[key]; ok {
		el.Value = kv{key, blob}
		s.order.MoveToFront(el)
		return
	}
	s.ents[key] = s.order.PushFront(kv{key, blob})
	for s.cap > 0 && s.order.Len() > s.cap {
		back := s.order.Back()
		delete(s.ents, back.Value.(kv).key)
		s.order.Remove(back)
		s.stats.Evict()
	}
}

// Get returns the blob stored under key and marks it recently used. The
// returned slice is shared — callers must not modify it.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.ents[key]
	if !ok {
		s.stats.Miss()
		return nil, false
	}
	s.order.MoveToFront(el)
	s.stats.Hit()
	return el.Value.(kv).blob, true
}

// Put stores blob under key, overwriting any previous entry, and appends
// it to the backing file when one is configured. The blob is retained —
// callers must not modify it afterwards.
func (s *Store) Put(key string, blob []byte) error {
	if key == "" {
		return fmt.Errorf("store: empty key")
	}
	rec, err := json.Marshal(line{V: entryVersion, Key: key, Blob: blob})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.insert(key, blob)
	s.stats.Put()
	if s.f != nil {
		return appendLine(s.f, rec)
	}
	return nil
}

// Len reports the number of entries resident in memory.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// Stats exposes the hit/miss/eviction counters.
func (s *Store) Stats() *obs.CacheStats { return &s.stats }

// Close closes the backing file, if any.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
