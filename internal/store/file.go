// Package store is the content-addressed result store behind the sweep
// checkpoint and the routesimd daemon: a Get/Put blob store keyed by
// fingerprint strings (sha256 of a run's identity, options and build id),
// with an in-memory LRU tier over a JSONL append-only backing file. The
// sweep's checkpoint journal generalized: where the journal only ever
// replayed one sweep's cells, the store is a standing memoization layer
// any caller with a stable fingerprint can share.
package store

import (
	"bytes"
	"fmt"
	"io"
	"os"
)

// OpenAppend opens path for appending line-oriented records. With truncate
// the file is reset to empty; otherwise existing content is preserved —
// except a partial trailing line (the residue of a crash mid-append), which
// is trimmed so the next appended record starts on a fresh line instead of
// gluing itself onto the fragment and corrupting both.
func OpenAppend(path string, truncate bool) (*os.File, error) {
	flags := os.O_CREATE | os.O_RDWR
	if truncate {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	if err := trimPartialTail(f); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// trimPartialTail truncates f back to the end of its last complete
// ('\n'-terminated) line. A file with no newline at all is reset to empty.
func trimPartialTail(f *os.File) error {
	st, err := f.Stat()
	if err != nil {
		return err
	}
	size := st.Size()
	if size == 0 {
		return nil
	}
	// Read backwards in chunks until a newline is found.
	const chunk = 64 * 1024
	end := size
	for end > 0 {
		start := end - chunk
		if start < 0 {
			start = 0
		}
		buf := make([]byte, end-start)
		if _, err := f.ReadAt(buf, start); err != nil {
			return err
		}
		if end == size && buf[len(buf)-1] == '\n' {
			return nil // already ends on a complete line
		}
		if i := bytes.LastIndexByte(buf, '\n'); i >= 0 {
			return f.Truncate(start + int64(i) + 1)
		}
		end = start
	}
	return f.Truncate(0)
}

// appendLine writes one record plus newline and syncs, so a kill leaves at
// most one partial trailing line — which OpenAppend trims on reopen and
// scanners skip on replay.
func appendLine(f *os.File, rec []byte) error {
	if _, err := f.Write(append(rec, '\n')); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	return f.Sync()
}
