package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestMemoryRoundTrip(t *testing.T) {
	st, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, ok := st.Get("k1"); ok {
		t.Fatal("empty store claims a hit")
	}
	blob := []byte(`{"x":1}`)
	if err := st.Put("k1", blob); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Get("k1")
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("Get after Put: %q %v", got, ok)
	}
	c := st.Stats().Counts()
	if c.Hits != 1 || c.Misses != 1 || c.Puts != 1 || c.Evictions != 0 {
		t.Fatalf("counter mismatch: %+v", c)
	}
}

func TestLRUEviction(t *testing.T) {
	st, err := Open("", Options{LRUCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 3; i++ {
		if err := st.Put(fmt.Sprintf("k%d", i), []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d after 3 puts into cap-2 store", st.Len())
	}
	if _, ok := st.Get("k0"); ok {
		t.Error("oldest entry should have been evicted")
	}
	if _, ok := st.Get("k2"); !ok {
		t.Error("newest entry missing")
	}
	// k2 was just touched; putting k3 must now evict k1, not k2.
	if err := st.Put("k3", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get("k1"); ok {
		t.Error("LRU order ignored the Get: k1 should be gone")
	}
	if st.Stats().Counts().Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st.Stats().Counts().Evictions)
	}
}

func TestReopenReplays(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	st, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("a", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("b", []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("a", []byte(`{"v":3}`)); err != nil { // last write wins
		t.Fatal(err)
	}
	st.Close()

	st2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 2 {
		t.Fatalf("reopened store holds %d entries, want 2", st2.Len())
	}
	got, ok := st2.Get("a")
	if !ok || string(got) != `{"v":3}` {
		t.Fatalf("replay lost the last write: %q %v", got, ok)
	}
}

// Eviction is a cache decision, not data loss: the JSONL backing file keeps
// every entry, so an evicted key is a hit again after reopen.
func TestEvictedEntrySurvivesOnDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	st, err := Open(path, Options{LRUCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	st.Put("a", []byte(`{"v":1}`))
	st.Put("b", []byte(`{"v":2}`)) // evicts a from memory
	if _, ok := st.Get("a"); ok {
		t.Fatal("a should be evicted from memory")
	}
	st.Close()
	st2, err := Open(path, Options{}) // unbounded reopen
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got, ok := st2.Get("a"); !ok || string(got) != `{"v":1}` {
		t.Fatalf("evicted entry lost from disk: %q %v", got, ok)
	}
}

// The crash-safety fix: a partial trailing line (kill mid-append) must be
// trimmed on reopen, so the next append starts on a fresh line instead of
// gluing onto the fragment, and replay skips nothing that was complete.
func TestReopenTrimsPartialTrailingLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	st, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.Put("a", []byte(`{"v":1}`))
	st.Close()

	// Simulate the crash: append half a record with no trailing newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"v":1,"key":"b","blob":{"tru`)
	f.Close()

	st2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 1 {
		t.Fatalf("partial line counted as an entry: Len = %d", st2.Len())
	}
	if err := st2.Put("c", []byte(`{"v":3}`)); err != nil {
		t.Fatal(err)
	}
	st2.Close()

	st3, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if st3.Len() != 2 {
		t.Fatalf("append after trim corrupted the journal: Len = %d, want 2", st3.Len())
	}
	if got, ok := st3.Get("c"); !ok || string(got) != `{"v":3}` {
		t.Fatalf("entry appended after trim unreadable: %q %v", got, ok)
	}
}

func TestTruncateDiscardsExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	st, _ := Open(path, Options{})
	st.Put("a", []byte(`{}`))
	st.Close()
	st2, err := Open(path, Options{Truncate: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 0 {
		t.Fatalf("truncated store still holds %d entries", st2.Len())
	}
}
