package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/exec"
	"repro/internal/obs"
)

// sseStream writes Server-Sent Events. newSSE only sets headers; the
// implicit 200 goes out with the first event, so it is safe to construct
// one lazily on either the progress or the error path.
type sseStream struct {
	w  http.ResponseWriter
	fl http.Flusher
}

func newSSE(w http.ResponseWriter) *sseStream {
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no")
	fl, _ := w.(http.Flusher)
	return &sseStream{w: w, fl: fl}
}

func (s *sseStream) event(name string, data []byte) {
	fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", name, data)
	if s.fl != nil {
		s.fl.Flush()
	}
}

// wantsSSE reports whether the request asked for a progress stream, either
// by Accept header or the ?stream=sse query knob (curl-friendly).
func wantsSSE(r *http.Request) bool {
	if r.URL.Query().Get("stream") == "sse" {
		return true
	}
	return r.Header.Get("Accept") == "text/event-stream"
}

// progressEvent is the SSE "progress" payload: the cheap counters of the
// merged per-cycle snapshot.
type progressEvent struct {
	Cycle     int64 `json:"cycle"`
	Injected  int64 `json:"injected"`
	Delivered int64 `json:"delivered"`
	InFlight  int64 `json:"in_flight"`
}

// progressObserver taps the run's OnCycle probe every `every` cycles and
// hands events to the SSE writer goroutine over a buffered channel. Sends
// never block the simulation: when the client cannot keep up, events are
// dropped (progress is advisory; the result event is authoritative).
type progressObserver struct {
	obs.Base
	every int64
	ch    chan progressEvent
}

func newProgressObserver(every int64) *progressObserver {
	return &progressObserver{every: every, ch: make(chan progressEvent, 64)}
}

func (p *progressObserver) OnCycle(cycle int64, snap *obs.Snapshot) {
	if cycle%p.every != 0 {
		return
	}
	ev := progressEvent{
		Cycle:     cycle,
		Injected:  snap.Counter(obs.CInjected),
		Delivered: snap.Counter(obs.CDelivered),
		InFlight:  snap.Gauge(obs.GInFlight),
	}
	select {
	case p.ch <- ev:
	default: // slow consumer: drop, never stall the engine
	}
}

// streamProgress relays progress events until the run signals done, then
// drains whatever is already buffered so the stream ends in order.
func streamProgress(st *sseStream, prog *progressObserver, done <-chan struct{}) {
	for {
		select {
		case ev := <-prog.ch:
			st.event("progress", mustJSON(ev))
		case <-done:
			for {
				select {
				case ev := <-prog.ch:
					st.event("progress", mustJSON(ev))
				default:
					return
				}
			}
		}
	}
}

// streamCachedResult serves a store hit as a one-event SSE stream.
func streamCachedResult(w http.ResponseWriter, blob []byte) {
	st := newSSE(w)
	var res exec.Result
	if err := json.Unmarshal(blob, &res); err != nil {
		st.event("error", mustJSON(errorBody{Error: "corrupt store entry: " + err.Error()}))
		return
	}
	st.event("result", mustJSON(Response{Result: res, Cached: true}))
}

// streamError ends an SSE stream with a terminal error event.
func streamError(w http.ResponseWriter, err error) {
	newSSE(w).event("error", mustJSON(errorBody{Error: err.Error()}))
}
