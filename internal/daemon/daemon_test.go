package daemon

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/store"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Store == nil {
		st, err := store.Open("", store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = st
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() { hs.Close(); s.Close(); cfg.Store.Close() })
	return s, hs
}

func postSpec(t *testing.T, url string, spec exec.RunSpec) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/sim", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// The tentpole acceptance path: the same spec POSTed twice returns
// bit-identical metrics, with the second response served from the store.
func TestMissThenHit(t *testing.T) {
	srv, hs := newTestServer(t, Config{})
	spec := exec.RunSpec{Algo: "hypercube-adaptive:4", Seed: 1}

	resp1, body1 := postSpec(t, hs.URL, spec)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first POST: %d %s", resp1.StatusCode, body1)
	}
	var r1 struct {
		Cached  bool            `json:"cached"`
		FP      string          `json:"fingerprint"`
		Metrics json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal(body1, &r1); err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Fatal("first request claims a cache hit on an empty store")
	}

	resp2, body2 := postSpec(t, hs.URL, spec)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second POST: %d %s", resp2.StatusCode, body2)
	}
	var r2 struct {
		Cached  bool            `json:"cached"`
		FP      string          `json:"fingerprint"`
		Metrics json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal(body2, &r2); err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("second identical request was not served from the store")
	}
	if r1.FP != r2.FP {
		t.Fatalf("fingerprint changed between requests: %s vs %s", r1.FP, r2.FP)
	}
	if !bytes.Equal(r1.Metrics, r2.Metrics) {
		t.Fatalf("cached metrics not byte-identical:\n%s\n%s", r1.Metrics, r2.Metrics)
	}
	c := srv.st.Stats().Counts()
	if c.Hits != 1 || c.Puts != 1 {
		t.Fatalf("store counters: %+v, want 1 hit / 1 put", c)
	}

	// GET by fingerprint serves the same stored result.
	resp3, err := http.Get(hs.URL + "/v1/sim/" + r1.FP)
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("GET by fingerprint: %d", resp3.StatusCode)
	}
}

// A generated-topology run round-trips as a v2 spec: the combined and
// split spellings land on the same fingerprint, the second POST is a
// store hit, and the canonical spec echoed back carries the split form.
func TestGraphSpecV2RoundTrip(t *testing.T) {
	srv, hs := newTestServer(t, Config{})
	combined := exec.RunSpec{Algo: "graph-adaptive:dragonfly:a=2,g=5", Packets: 1, Seed: 3}
	split := exec.RunSpec{Algo: "graph-adaptive", Topology: "graph:dragonfly:a=2,g=5", Packets: 1, Seed: 3}

	resp1, body1 := postSpec(t, hs.URL, combined)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first POST: %d %s", resp1.StatusCode, body1)
	}
	var r1 struct {
		Cached  bool            `json:"cached"`
		FP      string          `json:"fingerprint"`
		V       int             `json:"v"`
		Spec    exec.RunSpec    `json:"spec"`
		Metrics json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal(body1, &r1); err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Fatal("first graph request claims a cache hit on an empty store")
	}
	if r1.V != exec.SpecVersion {
		t.Fatalf("result schema version %d, want %d", r1.V, exec.SpecVersion)
	}
	if r1.Spec.Algo != "graph-adaptive" || r1.Spec.Topology != "graph:dragonfly:a=2,g=5" {
		t.Fatalf("canonical spec not split: algo=%q topology=%q", r1.Spec.Algo, r1.Spec.Topology)
	}

	resp2, body2 := postSpec(t, hs.URL, split)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second POST: %d %s", resp2.StatusCode, body2)
	}
	var r2 struct {
		Cached  bool            `json:"cached"`
		FP      string          `json:"fingerprint"`
		Metrics json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal(body2, &r2); err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("split spelling of the same run was not served from the store")
	}
	if r1.FP != r2.FP {
		t.Fatalf("combined and split spellings disagree on the fingerprint: %s vs %s", r1.FP, r2.FP)
	}
	if !bytes.Equal(r1.Metrics, r2.Metrics) {
		t.Fatalf("cached metrics not byte-identical:\n%s\n%s", r1.Metrics, r2.Metrics)
	}
	if c := srv.st.Stats().Counts(); c.Hits != 1 || c.Puts != 1 {
		t.Fatalf("store counters: %+v, want 1 hit / 1 put", c)
	}
}

func TestValidationError(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, body := postSpec(t, hs.URL, exec.RunSpec{Algo: "ring-adaptive:8"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec: status %d, want 400", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
		Field string `json:"field"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Field != "algo" || e.Error == "" {
		t.Fatalf("error body should blame the algo field: %+v", e)
	}
}

func TestUnknownFieldRejected(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, err := http.Post(hs.URL+"/v1/sim", "application/json",
		strings.NewReader(`{"algo":"hypercube-adaptive:4","seeds":7}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("misspelled field accepted: status %d, want 400", resp.StatusCode)
	}
}

// fakeExec returns a controllable executor: each call blocks until release
// is closed.
func fakeExec(calls *atomic.Int64, release <-chan struct{}) func(context.Context, exec.RunSpec, obs.Observer) (exec.Result, error) {
	return func(ctx context.Context, s exec.RunSpec, _ obs.Observer) (exec.Result, error) {
		calls.Add(1)
		if release != nil {
			select {
			case <-release:
			case <-ctx.Done():
				return exec.Result{}, ctx.Err()
			}
		}
		return exec.Result{V: 1, Spec: s.Canon()}, nil
	}
}

// With one slot and a one-deep queue, a burst of distinct specs must see
// 429 backpressure with a Retry-After header, while every admitted request
// still completes.
func TestBackpressure429(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	_, hs := newTestServer(t, Config{Jobs: 1, QueueCap: 1, Exec: fakeExec(&calls, release)})

	specN := func(n int) exec.RunSpec {
		return exec.RunSpec{Algo: "hypercube-adaptive:4", Seed: int64(n)}
	}
	type out struct {
		code       int
		retryAfter string
	}
	var wg sync.WaitGroup
	results := make(chan out, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postSpec(t, hs.URL, specN(i))
			results <- out{resp.StatusCode, resp.Header.Get("Retry-After")}
		}(i)
	}
	// Give requests time to pile up, then let the admitted ones finish.
	time.Sleep(300 * time.Millisecond)
	close(release)
	wg.Wait()
	close(results)
	ok, rejected := 0, 0
	for r := range results {
		switch r.code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			rejected++
			if r.retryAfter == "" {
				t.Error("429 without a Retry-After header")
			}
		default:
			t.Fatalf("unexpected status %d", r.code)
		}
	}
	if rejected == 0 {
		t.Fatal("no request saw 429 despite 8 distinct specs on a 1-slot, 1-queue server")
	}
	if ok == 0 {
		t.Fatal("every request was rejected; admitted ones should complete")
	}
	if int(calls.Load()) != ok {
		t.Fatalf("executor ran %d times for %d OK responses", calls.Load(), ok)
	}
}

// Concurrent identical specs are deduplicated in flight: the executor runs
// once, the followers wait and are marked coalesced.
func TestSingleflight(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	_, hs := newTestServer(t, Config{Jobs: 4, QueueCap: 8, Exec: fakeExec(&calls, release)})
	spec := exec.RunSpec{Algo: "hypercube-adaptive:4", Seed: 9}

	type out struct {
		coalesced bool
		status    int
	}
	results := make(chan out, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := postSpec(t, hs.URL, spec)
			var r struct {
				Coalesced bool `json:"coalesced"`
			}
			json.Unmarshal(body, &r)
			results <- out{r.Coalesced, resp.StatusCode}
		}()
	}
	// Wait until the leader has actually started executing, then give the
	// followers a moment to register on the flight before releasing.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()
	close(results)
	coalesced := 0
	for r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("status %d", r.status)
		}
		if r.coalesced {
			coalesced++
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("executor ran %d times for 4 identical concurrent specs", calls.Load())
	}
	if coalesced != 3 {
		t.Fatalf("%d followers marked coalesced, want 3", coalesced)
	}
}

// SSE: a fresh run streams queued, progress (from the Observer layer) and a
// terminal result event; a cache hit streams just the result.
func TestSSEProgress(t *testing.T) {
	_, hs := newTestServer(t, Config{ProgressEvery: 10})
	spec := exec.RunSpec{Algo: "hypercube-adaptive:5", Inject: "dynamic", Warmup: 50, Measure: 200, Seed: 2}
	body, _ := json.Marshal(spec)

	events := func() map[string]int {
		req, _ := http.NewRequest("POST", hs.URL+"/v1/sim", bytes.NewReader(body))
		req.Header.Set("Accept", "text/event-stream")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
			t.Fatalf("content type %q", ct)
		}
		seen := map[string]int{}
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if name, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
				seen[name]++
			}
		}
		return seen
	}

	first := events()
	if first["queued"] != 1 || first["result"] != 1 {
		t.Fatalf("fresh SSE run: %v, want one queued and one result event", first)
	}
	if first["progress"] == 0 {
		t.Fatalf("fresh SSE run emitted no progress events: %v", first)
	}
	second := events()
	if second["result"] != 1 || second["queued"] != 0 || second["progress"] != 0 {
		t.Fatalf("cached SSE run should be a single result event: %v", second)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	postSpec(t, hs.URL, exec.RunSpec{Algo: "hypercube-adaptive:4", Seed: 1})
	postSpec(t, hs.URL, exec.RunSpec{Algo: "hypercube-adaptive:4", Seed: 1})
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, want := range []string{
		"repro_store_hits_total 1",
		"repro_store_puts_total 1",
		"repro_daemon_requests_total 2",
		"repro_daemon_executed_total 1",
		"repro_daemon_queue_len 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics page missing %q:\n%s", want, text)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status  string `json:"status"`
		BuildID string `json:"build_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("healthz: %+v", h)
	}
}

func TestMaxCostRejection(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxCost: 10})
	resp, body := postSpec(t, hs.URL, exec.RunSpec{Algo: "hypercube-adaptive:10", Seed: 1})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized spec: status %d (%s), want 413", resp.StatusCode, body)
	}
}

// A run that fails (here: canceled by RunTimeout) maps to 422, and the
// failure is not stored — the next request runs fresh.
func TestRunErrorNotCached(t *testing.T) {
	var calls atomic.Int64
	execFn := func(ctx context.Context, s exec.RunSpec, _ obs.Observer) (exec.Result, error) {
		if calls.Add(1) == 1 {
			return exec.Result{}, fmt.Errorf("transient failure")
		}
		return exec.Result{V: 1, Spec: s.Canon()}, nil
	}
	srv, hs := newTestServer(t, Config{Exec: execFn})
	spec := exec.RunSpec{Algo: "hypercube-adaptive:4", Seed: 5}
	resp, _ := postSpec(t, hs.URL, spec)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("failed run: status %d, want 422", resp.StatusCode)
	}
	if srv.st.Len() != 0 {
		t.Fatal("failed run was stored")
	}
	resp2, _ := postSpec(t, hs.URL, spec)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("retry after failure: status %d", resp2.StatusCode)
	}
}

// A v2 spec carrying a traffic model executes, caches under its own
// fingerprint (distinct from the Bernoulli default), and echoes the model
// in the canonical spec; an explicit "bernoulli" hits the default's cache
// entry. A malformed model is a 4xx validation error naming the field.
func TestTrafficSpecRoundTrip(t *testing.T) {
	srv, hs := newTestServer(t, Config{})
	base := exec.RunSpec{Algo: "hypercube-adaptive:4", Inject: "dynamic", Lambda: 0.5, Warmup: 20, Measure: 100, Seed: 2}
	mmpp := base
	mmpp.Traffic = "mmpp:on=0.9,off=0.05"

	resp1, body1 := postSpec(t, hs.URL, mmpp)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("mmpp POST: %d %s", resp1.StatusCode, body1)
	}
	var r1 struct {
		Cached  bool            `json:"cached"`
		FP      string          `json:"fingerprint"`
		Spec    exec.RunSpec    `json:"spec"`
		Metrics json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal(body1, &r1); err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Fatal("first mmpp request claims a cache hit on an empty store")
	}
	if r1.Spec.Traffic != "mmpp:on=0.9,off=0.05" {
		t.Fatalf("canonical spec lost the traffic model: %q", r1.Spec.Traffic)
	}

	resp2, body2 := postSpec(t, hs.URL, base)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("bernoulli POST: %d %s", resp2.StatusCode, body2)
	}
	var r2 struct {
		Cached bool   `json:"cached"`
		FP     string `json:"fingerprint"`
	}
	if err := json.Unmarshal(body2, &r2); err != nil {
		t.Fatal(err)
	}
	if r2.Cached {
		t.Fatal("default-traffic run must not hit the mmpp cache entry")
	}
	if r1.FP == r2.FP {
		t.Fatal("mmpp and bernoulli runs share a fingerprint")
	}

	// Explicit "bernoulli" is the same run as the default spelling.
	explicit := base
	explicit.Traffic = "bernoulli"
	resp3, body3 := postSpec(t, hs.URL, explicit)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("explicit bernoulli POST: %d %s", resp3.StatusCode, body3)
	}
	var r3 struct {
		Cached bool   `json:"cached"`
		FP     string `json:"fingerprint"`
	}
	if err := json.Unmarshal(body3, &r3); err != nil {
		t.Fatal(err)
	}
	if !r3.Cached || r3.FP != r2.FP {
		t.Fatalf("explicit bernoulli: cached=%v fp=%s, want cache hit on %s", r3.Cached, r3.FP, r2.FP)
	}
	if c := srv.st.Stats().Counts(); c.Hits != 1 || c.Puts != 2 {
		t.Fatalf("store counters: %+v, want 1 hit / 2 puts", c)
	}

	bad := base
	bad.Traffic = "poisson"
	resp4, body4 := postSpec(t, hs.URL, bad)
	if resp4.StatusCode != http.StatusUnprocessableEntity && resp4.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown traffic model: %d %s", resp4.StatusCode, body4)
	}
	if !bytes.Contains(body4, []byte("traffic")) {
		t.Fatalf("validation error does not name the traffic field: %s", body4)
	}
}
