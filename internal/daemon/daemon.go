// Package daemon implements routesimd's HTTP service: simulation as a
// service over the scheduler/store/executor split. POST /v1/sim accepts a
// canonical exec.RunSpec as JSON, serves repeats straight from the
// content-addressed result store (internal/store) without simulating,
// deduplicates concurrent identical requests in flight (singleflight), and
// queues genuine misses onto the sweep scheduler behind a bounded queue
// with HTTP 429 backpressure. Progress streams as Server-Sent Events from
// the Observer layer; /metrics exposes the store and queue counters in
// Prometheus text format next to the usual pprof handlers.
package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	httppprof "net/http/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buildid"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/sweep"
)

// Config tunes a daemon instance. Store is required; everything else has
// serving defaults.
type Config struct {
	Store *store.Store
	// Jobs bounds concurrently executing simulations; Budget is the total
	// worker budget split across them (defaults 1 and GOMAXPROCS-shaped
	// choices are the caller's: cmd/routesimd wires its flags here).
	Jobs   int
	Budget int
	// QueueCap bounds requests waiting for an execution slot; submissions
	// beyond it receive 429. Default 16.
	QueueCap int
	// MaxCost rejects specs whose estimated work (RunSpec.Cost, in
	// node-cycles) exceeds it with 413; 0 accepts everything.
	MaxCost float64
	// RunTimeout bounds a single simulation's wall clock; 0 = unbounded.
	RunTimeout time.Duration
	// ProgressEvery is the SSE progress period in cycles. Default 500.
	ProgressEvery int64
	// BuildID overrides the fingerprint build key (tests); default
	// buildid.ID().
	BuildID string
	// Exec overrides the executor (tests); default exec.Run.
	Exec func(ctx context.Context, s exec.RunSpec, o obs.Observer) (exec.Result, error)
}

// Response is the /v1/sim response envelope: the executed (or replayed)
// exec.Result plus serving metadata. Metrics is byte-identical for the
// same fingerprint whether computed or served from the store.
type Response struct {
	exec.Result
	// Cached reports the result was served from the store, no simulation
	// executed.
	Cached bool `json:"cached"`
	// Coalesced reports the request was deduplicated onto an identical
	// run already in flight (it waited, but did not execute).
	Coalesced bool `json:"coalesced,omitempty"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
	Field string `json:"field,omitempty"` // offending RunSpec field, when known
}

// flight is one in-flight execution, deduplicating identical fingerprints.
type flight struct {
	done chan struct{}
	resp Response
	err  error
	code int // HTTP status for err
}

// Server is the daemon: build one with New, mount Handler, Close on exit.
type Server struct {
	cfg   Config
	st    *store.Store
	sched *sweep.Scheduler
	mux   *http.ServeMux

	baseCtx context.Context
	stop    context.CancelFunc

	mu       sync.Mutex
	inflight map[string]*flight

	requests  atomic.Int64
	executed  atomic.Int64
	coalesced atomic.Int64
	rejected  atomic.Int64
	started   time.Time
}

// New builds a daemon over its store and starts the scheduler.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("daemon: Config.Store is required")
	}
	if cfg.Jobs < 1 {
		cfg.Jobs = 1
	}
	if cfg.Budget < 1 {
		cfg.Budget = cfg.Jobs
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 16
	}
	if cfg.ProgressEvery < 1 {
		cfg.ProgressEvery = 500
	}
	if cfg.BuildID == "" {
		cfg.BuildID = buildid.ID()
	}
	if cfg.Exec == nil {
		cfg.Exec = exec.Run
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		st:       cfg.Store,
		sched:    sweep.NewScheduler(cfg.Jobs, cfg.Budget, cfg.QueueCap),
		baseCtx:  ctx,
		stop:     stop,
		inflight: map[string]*flight{},
		started:  time.Now(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/sim", s.handleSim)
	mux.HandleFunc("/v1/sim/", s.handleGetByFP)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	s.mux = mux
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close cancels in-flight runs and shuts the scheduler down.
func (s *Server) Close() {
	s.stop()
	s.sched.Close()
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":"ok","build_id":%q,"uptime_sec":%.0f}`+"\n",
		s.cfg.BuildID, time.Since(s.started).Seconds())
}

// handleMetrics renders the serving-layer counters: store hit/miss/evict,
// queue depth, and request accounting.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.st.Stats().Counts().WriteProm(w)
	for _, m := range []struct {
		name, typ, help string
		v               int64
	}{
		{"repro_daemon_requests_total", "counter", "POST /v1/sim requests accepted for processing", s.requests.Load()},
		{"repro_daemon_executed_total", "counter", "Requests that ran a fresh simulation", s.executed.Load()},
		{"repro_daemon_coalesced_total", "counter", "Requests deduplicated onto an in-flight identical run", s.coalesced.Load()},
		{"repro_daemon_rejected_total", "counter", "Requests rejected by backpressure (429) or cost limits (413)", s.rejected.Load()},
		{"repro_daemon_queue_len", "gauge", "Requests waiting for an execution slot", int64(s.sched.QueueLen())},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", m.name, m.help, m.name, m.typ, m.name, m.v)
	}
}

// handleGetByFP serves GET /v1/sim/<fingerprint>: the stored result under
// that key, or 404.
func (s *Server) handleGetByFP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "use GET /v1/sim/<fingerprint>, or POST /v1/sim", "")
		return
	}
	fp := strings.TrimPrefix(r.URL.Path, "/v1/sim/")
	blob, ok := s.st.Get(fp)
	if !ok {
		writeErr(w, http.StatusNotFound, "no stored result for fingerprint "+fp, "")
		return
	}
	s.writeResultBlob(w, blob, true, false)
}

// handleSim is POST /v1/sim: validate, fingerprint, serve from store,
// dedup in flight, or schedule.
func (s *Server) handleSim(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "use POST with a JSON RunSpec body", "")
		return
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields() // catch misspelled spec fields at the door
	var spec exec.RunSpec
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "bad RunSpec JSON: "+err.Error(), "")
		return
	}
	if err := spec.Validate(); err != nil {
		var fe *exec.FieldError
		field := ""
		if errors.As(err, &fe) {
			field = fe.Field
		}
		writeErr(w, http.StatusBadRequest, err.Error(), field)
		return
	}
	sse := wantsSSE(r)
	fp := spec.Fingerprint(s.cfg.BuildID)
	s.requests.Add(1)

	// Cache hit: serve the stored result, no simulation.
	if blob, ok := s.st.Get(fp); ok {
		if sse {
			streamCachedResult(w, blob)
			return
		}
		s.writeResultBlob(w, blob, true, false)
		return
	}

	// Miss: join an identical in-flight run, or lead a new one.
	s.mu.Lock()
	if fl, ok := s.inflight[fp]; ok {
		s.mu.Unlock()
		s.coalesced.Add(1)
		s.waitFlight(w, r, fl, sse)
		return
	}
	fl := &flight{done: make(chan struct{})}
	s.inflight[fp] = fl
	s.mu.Unlock()
	s.lead(w, r, spec, fp, fl, sse)
}

// waitFlight blocks a coalesced request until the leader's run completes,
// then serves the shared outcome. SSE followers receive only the final
// result event — progress streams on the request that started the run.
func (s *Server) waitFlight(w http.ResponseWriter, r *http.Request, fl *flight, sse bool) {
	select {
	case <-fl.done:
	case <-r.Context().Done():
		return // client gone; the leader's run continues
	}
	resp := fl.resp
	resp.Coalesced = true
	if fl.err != nil {
		if sse {
			streamError(w, fl.err)
			return
		}
		writeErr(w, fl.code, fl.err.Error(), "")
		return
	}
	if sse {
		st := newSSE(w)
		st.event("result", mustJSON(resp))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// lead executes the run for a fingerprint this request now owns: submit to
// the scheduler (429 on a full queue), run, store, publish to followers.
func (s *Server) lead(w http.ResponseWriter, r *http.Request, spec exec.RunSpec, fp string, fl *flight, sse bool) {
	finish := func(resp Response, err error, code int) {
		fl.resp, fl.err, fl.code = resp, err, code
		s.mu.Lock()
		delete(s.inflight, fp)
		s.mu.Unlock()
		close(fl.done)
	}

	cost := spec.Cost()
	if s.cfg.MaxCost > 0 && cost > s.cfg.MaxCost {
		s.rejected.Add(1)
		err := fmt.Errorf("spec estimated cost %.3g node-cycles exceeds this server's limit %.3g", cost, s.cfg.MaxCost)
		finish(Response{}, err, http.StatusRequestEntityTooLarge)
		writeErr(w, http.StatusRequestEntityTooLarge, err.Error(), "")
		return
	}

	// The run is decoupled from the request context: once admitted, it runs
	// to completion and is stored even if the leader disconnects, so the
	// work is never wasted and followers still get their result.
	runCtx := s.baseCtx
	var cancel context.CancelFunc
	if s.cfg.RunTimeout > 0 {
		runCtx, cancel = context.WithTimeout(runCtx, s.cfg.RunTimeout)
	}

	var st *sseStream
	var prog *progressObserver
	if sse {
		st = newSSE(w)
		prog = newProgressObserver(s.cfg.ProgressEvery)
	}

	done := make(chan struct{})
	var res exec.Result
	var runErr error
	task := sweep.Task{
		Cost:           cost,
		Parallelizable: spec.Parallelizable(),
		Run: func(workers int) {
			defer close(done)
			if cancel != nil {
				defer cancel()
			}
			runSpec := spec
			if runSpec.Workers == 0 {
				runSpec.Workers = workers
			}
			var o obs.Observer
			if prog != nil {
				o = prog
			}
			res, runErr = s.cfg.Exec(runCtx, runSpec, o)
		},
	}
	if err := s.sched.TrySubmit(task); err != nil {
		s.rejected.Add(1)
		if cancel != nil {
			cancel()
		}
		code := http.StatusServiceUnavailable
		if errors.Is(err, sweep.ErrQueueFull) {
			code = http.StatusTooManyRequests
			w.Header().Set("Retry-After", "1")
		}
		finish(Response{}, err, code)
		writeErr(w, code, err.Error(), "")
		return
	}
	s.executed.Add(1)

	if sse {
		st.event("queued", []byte(fmt.Sprintf(`{"fingerprint":%q}`, fp)))
		streamProgress(st, prog, done)
	} else {
		<-done
	}

	if runErr != nil {
		err := fmt.Errorf("simulation failed: %w", runErr)
		finish(Response{}, err, http.StatusUnprocessableEntity)
		if sse {
			streamError(w, err)
			return
		}
		writeErr(w, http.StatusUnprocessableEntity, err.Error(), "")
		return
	}

	// Persist under the request fingerprint (computed with the server's
	// build id) so the next identical spec is a pure cache hit.
	res.FP = fp
	blob, err := json.Marshal(res)
	if err == nil {
		err = s.st.Put(fp, blob)
	}
	if err != nil {
		finish(Response{}, err, http.StatusInternalServerError)
		if sse {
			streamError(w, err)
			return
		}
		writeErr(w, http.StatusInternalServerError, err.Error(), "")
		return
	}
	resp := Response{Result: res}
	finish(resp, nil, 0)
	if sse {
		st.event("result", mustJSON(resp))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeResultBlob decodes a stored result blob and serves it with the
// envelope flags set.
func (s *Server) writeResultBlob(w http.ResponseWriter, blob []byte, cached, coalesced bool) {
	var res exec.Result
	if err := json.Unmarshal(blob, &res); err != nil {
		writeErr(w, http.StatusInternalServerError, "corrupt store entry: "+err.Error(), "")
		return
	}
	writeJSON(w, http.StatusOK, Response{Result: res, Cached: cached, Coalesced: coalesced})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg, field string) {
	writeJSON(w, code, errorBody{Error: msg, Field: field})
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		return []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	return b
}
