package traffic

import (
	"math/bits"

	"repro/internal/core"
)

// This file implements sim.BatchSource for the package's sources. Every
// FillCycle must consume per-node generator state exactly as the scalar
// Wants-then-Take sequence would, so the batched and scalar injection paths
// stay bit-identical (pinned by TestBatchInjectParity in internal/sim).

// batchFiller is the FillCycle half of the engines' BatchSource interface,
// restated locally so this package need not import the engines.
type batchFiller interface {
	FillCycle(cycle int64, lo, hi int32, full []uint64, out []core.PendingInject) (n, blocked int)
}

// FillCycle implements sim.BatchSource: each node with allotment left
// attempts; attempts against an occupied injection queue are counted and
// consume nothing, like the scalar path (Wants uses no generator state).
func (s *StaticSource) FillCycle(_ int64, lo, hi int32, full []uint64, out []core.PendingInject) (n, blocked int) {
	for u := lo; u < hi; u++ {
		if s.remaining[u] <= 0 {
			continue
		}
		if full[u>>6]&(1<<(uint(u)&63)) != 0 {
			blocked++
			continue
		}
		s.remaining[u]--
		out[n] = core.PendingInject{Node: u, Dst: s.pattern.Dest(u, &s.rngs[u])}
		n++
	}
	return n, blocked
}

// FillCycle implements sim.BatchSource. At lambda >= 1 every node attempts
// and Wants consumes no generator state, so occupied queues are counted
// word-at-a-time with a popcount and only the free nodes draw destinations —
// this is the saturation fast path the batched engines lean on. Below 1,
// every node flips its coin (consumed whether or not the queue has room,
// matching the scalar path where Wants precedes the queue check) and only
// willing nodes with a free queue draw a destination.
func (s *BernoulliSource) FillCycle(_ int64, lo, hi int32, full []uint64, out []core.PendingInject) (n, blocked int) {
	if s.lambda >= 1 {
		for base := lo; base < hi; base += 64 {
			wi := base >> 6
			mask := ^uint64(0)
			if rem := hi - base; rem < 64 {
				mask = (uint64(1) << uint(rem)) - 1
			}
			occ := full[wi] & mask
			blocked += bits.OnesCount64(occ)
			for free := mask &^ occ; free != 0; free &= free - 1 {
				u := base + int32(bits.TrailingZeros64(free))
				out[n] = core.PendingInject{Node: u, Dst: s.pattern.Dest(u, &s.rngs[u])}
				n++
			}
		}
		return n, blocked
	}
	for u := lo; u < hi; u++ {
		if !s.rngs[u].Coin(s.lambda) {
			continue
		}
		if full[u>>6]&(1<<(uint(u)&63)) != 0 {
			blocked++
			continue
		}
		out[n] = core.PendingInject{Node: u, Dst: s.pattern.Dest(u, &s.rngs[u])}
		n++
	}
	return n, blocked
}
