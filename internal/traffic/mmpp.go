package traffic

import (
	"repro/internal/core"
	"repro/internal/xrand"
)

// MMPPSource is a two-state Markov-modulated Bernoulli process per node: a
// node in the on state attempts with probability on, in the off state with
// probability off, and flips state with probability p10 (on->off) or p01
// (off->on) each cycle. It models bursty traffic whose time-average rate
// matches a plain Bernoulli source of rate MeanRate, so latency under
// burstiness can be compared at equal offered load.
//
// Every node consumes exactly two generator draws per cycle — one transition
// coin, one attempt coin — on both the scalar and the batched path, so the
// two stay bit-identical. The engines call Wants exactly once per node per
// cycle, which is what advances the chain.
type MMPPSource struct {
	pattern  Pattern
	on, off  float64
	p10, p01 float64
	rngs     []xrand.RNG
	state    []bool // true = on
}

// NewMMPP builds the source. Each node's initial state is drawn once, at
// construction, from the chain's stationary distribution, so bursts are not
// synchronized across nodes at cycle zero.
func NewMMPP(pattern Pattern, nodes int, on, off, p10, p01 float64, seed int64) *MMPPSource {
	s := &MMPPSource{
		pattern: pattern,
		on:      on, off: off,
		p10: p10, p01: p01,
		rngs:  make([]xrand.RNG, nodes),
		state: make([]bool, nodes),
	}
	pOn := 1.0
	if p10+p01 > 0 {
		pOn = p01 / (p10 + p01)
	}
	for u := range s.rngs {
		s.rngs[u] = xrand.New(seed, int32(u))
		s.state[u] = s.rngs[u].Coin(pOn)
	}
	return s
}

// MeanRate returns the stationary injection rate, for equal-offered-load
// comparisons against a Bernoulli source.
func (s *MMPPSource) MeanRate() float64 {
	pOn := 1.0
	if s.p10+s.p01 > 0 {
		pOn = s.p01 / (s.p10 + s.p01)
	}
	return pOn*s.on + (1-pOn)*s.off
}

// step advances node u by one cycle: transition coin, then attempt coin.
func (s *MMPPSource) step(u int32) bool {
	r := &s.rngs[u]
	if s.state[u] {
		if r.Coin(s.p10) {
			s.state[u] = false
		}
	} else {
		if r.Coin(s.p01) {
			s.state[u] = true
		}
	}
	p := s.off
	if s.state[u] {
		p = s.on
	}
	return r.Coin(p)
}

// Wants advances the node's chain for this cycle and reports the attempt.
func (s *MMPPSource) Wants(node int32, _ int64) bool { return s.step(node) }

// Take draws the destination of the packet being injected.
func (s *MMPPSource) Take(node int32, _ int64) int32 {
	return s.pattern.Dest(node, &s.rngs[node])
}

// Exhausted always reports false: dynamic sources never stop.
func (s *MMPPSource) Exhausted(int32) bool { return false }

// FillCycle implements sim.BatchSource; see the package comment in batch.go.
func (s *MMPPSource) FillCycle(_ int64, lo, hi int32, full []uint64, out []core.PendingInject) (n, blocked int) {
	for u := lo; u < hi; u++ {
		if !s.step(u) {
			continue
		}
		if full[u>>6]&(1<<(uint(u)&63)) != 0 {
			blocked++
			continue
		}
		out[n] = core.PendingInject{Node: u, Dst: s.pattern.Dest(u, &s.rngs[u])}
		n++
	}
	return n, blocked
}

// VarLambdaSource is a Bernoulli source whose rate is a deterministic
// function of the cycle, for time-varying load (ramps, square waves). Every
// node consumes exactly one coin per cycle regardless of the current rate,
// so runs stay aligned across rate schedules.
type VarLambdaSource struct {
	pattern  Pattern
	lambdaAt func(cycle int64) float64
	mean     float64
	rngs     []xrand.RNG
}

// NewVarLambda builds a source with rate lambdaAt(cycle); mean is the
// schedule's time-average rate, reported by MeanRate.
func NewVarLambda(pattern Pattern, nodes int, mean float64, lambdaAt func(int64) float64, seed int64) *VarLambdaSource {
	s := &VarLambdaSource{
		pattern:  pattern,
		lambdaAt: lambdaAt,
		mean:     mean,
		rngs:     make([]xrand.RNG, nodes),
	}
	for u := range s.rngs {
		s.rngs[u] = xrand.New(seed, int32(u))
	}
	return s
}

// NewOnOff builds a square-wave source: rate hi for the first onCycles of
// every period cycles, rate lo for the rest.
func NewOnOff(pattern Pattern, nodes int, hi, lo float64, period, onCycles int64, seed int64) *VarLambdaSource {
	mean := hi
	if period > 0 {
		mean = (float64(onCycles)*hi + float64(period-onCycles)*lo) / float64(period)
	}
	return NewVarLambda(pattern, nodes, mean, func(cycle int64) float64 {
		if cycle%period < onCycles {
			return hi
		}
		return lo
	}, seed)
}

// MeanRate returns the schedule's time-average injection rate.
func (s *VarLambdaSource) MeanRate() float64 { return s.mean }

// Wants flips the node's coin at this cycle's rate.
func (s *VarLambdaSource) Wants(node int32, cycle int64) bool {
	return s.rngs[node].Coin(s.lambdaAt(cycle))
}

// Take draws the destination of the packet being injected.
func (s *VarLambdaSource) Take(node int32, _ int64) int32 {
	return s.pattern.Dest(node, &s.rngs[node])
}

// Exhausted always reports false: dynamic sources never stop.
func (s *VarLambdaSource) Exhausted(int32) bool { return false }

// FillCycle implements sim.BatchSource; the cycle's rate is computed once
// for the shard, then each node consumes its one coin.
func (s *VarLambdaSource) FillCycle(cycle int64, lo, hi int32, full []uint64, out []core.PendingInject) (n, blocked int) {
	lam := s.lambdaAt(cycle)
	for u := lo; u < hi; u++ {
		if !s.rngs[u].Coin(lam) {
			continue
		}
		if full[u>>6]&(1<<(uint(u)&63)) != 0 {
			blocked++
			continue
		}
		out[n] = core.PendingInject{Node: u, Dst: s.pattern.Dest(u, &s.rngs[u])}
		n++
	}
	return n, blocked
}
