package traffic

import (
	"math/bits"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestRandomExcludesSelf(t *testing.T) {
	p := Random{Nodes: 16}
	r := xrand.New(7, 3)
	for i := 0; i < 1000; i++ {
		d := p.Dest(3, &r)
		if d == 3 || d < 0 || d >= 16 {
			t.Fatalf("bad destination %d", d)
		}
	}
}

func TestRandomCoversAllDestinations(t *testing.T) {
	p := Random{Nodes: 8}
	r := xrand.New(1, 0)
	seen := make(map[int32]int)
	for i := 0; i < 8000; i++ {
		seen[p.Dest(0, &r)]++
	}
	if len(seen) != 7 {
		t.Fatalf("covered %d destinations, want 7", len(seen))
	}
	for d, c := range seen {
		if c < 800 {
			t.Errorf("destination %d drawn only %d times out of 8000", d, c)
		}
	}
}

func TestComplement(t *testing.T) {
	p := Complement{Bits: 4}
	cases := map[int32]int32{0b0000: 0b1111, 0b1010: 0b0101, 0b1111: 0b0000}
	for src, want := range cases {
		if got := p.Dest(src, nil); got != want {
			t.Errorf("Dest(%04b) = %04b, want %04b", src, got, want)
		}
	}
}

func TestTransposeEven(t *testing.T) {
	p := Transpose{Bits: 4}
	// b3 b2 b1 b0 -> b1 b0 b3 b2
	cases := map[int32]int32{0b1100: 0b0011, 0b1001: 0b0110, 0b1111: 0b1111}
	for src, want := range cases {
		if got := p.Dest(src, nil); got != want {
			t.Errorf("Dest(%04b) = %04b, want %04b", src, got, want)
		}
	}
}

func TestTransposeOdd(t *testing.T) {
	p := Transpose{Bits: 5}
	// b4 b3 b2 b1 b0 -> b1 b0 b2 b4 b3 (central bit b2 unchanged).
	if got := p.Dest(0b11000, nil); got != 0b00011 {
		t.Errorf("Dest(11000) = %05b, want 00011", got)
	}
	if got := p.Dest(0b00100, nil); got != 0b00100 {
		t.Errorf("central bit moved: Dest(00100) = %05b", got)
	}
}

func TestTransposeIsInvolution(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 6, 7} {
		p := Transpose{Bits: n}
		if err := quick.Check(func(u uint16) bool {
			src := int32(u) & (1<<n - 1)
			return p.Dest(p.Dest(src, nil), nil) == src
		}, nil); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestLeveledIsLevelPreservingPermutation(t *testing.T) {
	for _, n := range []int{3, 5, 8} {
		p := NewLeveled(n, 42)
		nodes := 1 << n
		seen := make([]bool, nodes)
		for u := 0; u < nodes; u++ {
			d := p.Dest(int32(u), nil)
			if seen[d] {
				t.Fatalf("n=%d: destination %d repeated", n, d)
			}
			seen[d] = true
			if bits.OnesCount32(uint32(u)) != bits.OnesCount32(uint32(d)) {
				t.Fatalf("n=%d: %b and %b differ in level", n, u, d)
			}
		}
	}
}

func TestLeveledSeedsDiffer(t *testing.T) {
	a, b := NewLeveled(8, 1), NewLeveled(8, 2)
	same := true
	for u := int32(0); u < 256; u++ {
		if a.Dest(u, nil) != b.Dest(u, nil) {
			same = false
			break
		}
	}
	if same {
		t.Error("two seeds produced the same leveled permutation")
	}
}

func TestBitReversal(t *testing.T) {
	p := BitReversal{Bits: 5}
	if got := p.Dest(0b10110, nil); got != 0b01101 {
		t.Errorf("Dest(10110) = %05b, want 01101", got)
	}
}

func TestMeshTranspose(t *testing.T) {
	p := MeshTranspose{Side: 4}
	// (x,y)=(3,1) at node 1*4+3=7 -> (1,3) at node 3*4+1=13.
	if got := p.Dest(7, nil); got != 13 {
		t.Errorf("Dest(7) = %d, want 13", got)
	}
	// Permutation property over the whole mesh.
	perm := &Permutation{Label: "t", Sigma: make([]int32, 16)}
	for u := int32(0); u < 16; u++ {
		perm.Sigma[u] = p.Dest(u, nil)
	}
	if err := perm.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPermutationValidate(t *testing.T) {
	bad := &Permutation{Label: "bad", Sigma: []int32{0, 0, 2}}
	if err := bad.Validate(); err == nil {
		t.Error("expected validation error for repeated destination")
	}
	good := &Permutation{Label: "good", Sigma: []int32{2, 0, 1}}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
}

func TestHotspotBias(t *testing.T) {
	p := Hotspot{Nodes: 64, Hot: 5, Fraction: 0.5}
	r := xrand.New(9, 1)
	hot := 0
	for i := 0; i < 10000; i++ {
		if p.Dest(1, &r) == 5 {
			hot++
		}
	}
	// ~50% (+ the uniform component's 1/63 of the rest).
	if hot < 4500 || hot > 6000 {
		t.Errorf("hot destination drawn %d/10000 times, want ~5100", hot)
	}
}

func TestStaticSourceLifecycle(t *testing.T) {
	s := NewStaticSource(Complement{Bits: 3}, 8, 2, 1)
	if s.Exhausted(0) {
		t.Fatal("fresh source already exhausted")
	}
	if !s.Wants(0, 0) {
		t.Fatal("fresh source does not want to inject")
	}
	if got := s.Take(0, 0); got != 7 {
		t.Fatalf("Take = %d, want 7", got)
	}
	s.Take(0, 1)
	if s.Wants(0, 2) || !s.Exhausted(0) {
		t.Error("source not exhausted after taking the allotment")
	}
	if got := s.TotalRemaining(); got != 14 {
		t.Errorf("TotalRemaining = %d, want 14", got)
	}
	// A failed attempt (Wants without Take) must not consume packets.
	s.Wants(1, 3)
	s.Wants(1, 4)
	if s.Exhausted(1) {
		t.Error("Wants consumed the allotment")
	}
}

func TestBernoulliRate(t *testing.T) {
	s := NewBernoulliSource(Random{Nodes: 4}, 4, 0.3, 11)
	attempts := 0
	for c := int64(0); c < 10000; c++ {
		if s.Wants(2, c) {
			attempts++
		}
	}
	if attempts < 2700 || attempts > 3300 {
		t.Errorf("lambda=0.3 produced %d/10000 attempts", attempts)
	}
	if s.Exhausted(2) {
		t.Error("dynamic source claims exhaustion")
	}
}

func TestBernoulliLambdaOneAlwaysWants(t *testing.T) {
	s := NewBernoulliSource(Random{Nodes: 4}, 4, 1.0, 11)
	for c := int64(0); c < 100; c++ {
		if !s.Wants(0, c) {
			t.Fatal("lambda=1 skipped an attempt")
		}
	}
}

func TestRecordingSource(t *testing.T) {
	inner := NewStaticSource(Complement{Bits: 2}, 4, 1, 1)
	rec := &RecordingSource{Inner: inner}
	for u := int32(0); u < 4; u++ {
		if rec.Wants(u, 0) {
			rec.Take(u, 0)
		}
	}
	if len(rec.Taken) != 4 {
		t.Fatalf("recorded %d packets, want 4", len(rec.Taken))
	}
	if rec.Taken[1].Dst != 2 {
		t.Errorf("packet from 1 recorded dst %d, want 2", rec.Taken[1].Dst)
	}
	if !rec.Exhausted(0) {
		t.Error("recording source did not forward Exhausted")
	}
}

func TestRecordingSourceCap(t *testing.T) {
	inner := NewStaticSource(Random{Nodes: 2}, 1, 10, 1)
	rec := &RecordingSource{Inner: inner, Cap: 4}
	for c := int64(0); c < 10; c++ {
		if rec.Wants(0, c) {
			rec.Take(0, c)
		}
	}
	if len(rec.Taken) != 4 {
		t.Fatalf("capped record holds %d entries, want 4", len(rec.Taken))
	}
	if got := rec.TotalTaken(); got != 10 {
		t.Errorf("TotalTaken = %d, want 10", got)
	}
	recent := rec.Recent()
	if len(recent) != 4 {
		t.Fatalf("Recent returned %d entries, want 4", len(recent))
	}
	for i, tp := range recent {
		if want := int64(6 + i); tp.Cycle != want {
			t.Errorf("Recent[%d].Cycle = %d, want %d (oldest-first ring order)", i, tp.Cycle, want)
		}
	}
}

func TestFixedDestinations(t *testing.T) {
	ds := FixedDestinations(Complement{Bits: 2}, 4)
	if len(ds) != 4 {
		t.Fatalf("complement on 4 nodes covers %d destinations, want 4", len(ds))
	}
}
