package traffic

import (
	"bufio"
	"fmt"
	"io"
	"math/bits"
	"sync"

	"repro/internal/core"
)

// Trace JSONL schema, written by RecordingSource when streaming and read
// back by TraceSource:
//
//	{"c":<cycle>,"s":<src>,"d":<dst>}   one successful injection
//	{"c":<cycle>,"b":<count>}           blocked attempts in <cycle> (one
//	                                    record per engine shard; a reader
//	                                    sums them per cycle)
//
// Records are sorted by cycle (the engines' phase barriers guarantee this
// even when several workers record concurrently); node order within a cycle
// is unconstrained. Lines not starting with {"c": are skipped, so a trace
// can share a stream with obs JSONL metric lines.

// TraceSource replays a recorded trace: node u attempts at cycle c exactly
// when the trace holds a success record (c, u, dst), re-injecting the
// recorded destination. Replayed against the same configuration that
// produced the trace, the run is bit-identical to the original. Decoding is
// incremental (the file is never loaded whole) and allocation-free in
// steady state.
//
// On the batched path the recorded blocked counts are replayed too, so
// Attempts matches the original run exactly. The scalar path replays
// successes only (a per-node Wants cannot express a count). If replay
// diverges from the recording — a different config can fill an injection
// queue the original found free — the attempt is counted as blocked and
// retried each cycle until the queue drains.
type TraceSource struct {
	mu  sync.Mutex
	rd  *bufio.Reader
	cl  io.Closer // closed at EOF when the reader is also a Closer
	eof bool
	err error

	// One-record pushback: a decoded record that cannot be placed yet
	// (future cycle, or its node's slot is still occupied after divergence).
	pb traceRec

	// Per-node pending slot: the next success record for the node.
	// slotCycle[u] < 0 means empty; pend mirrors occupancy as a bitmap.
	slotCycle []int64
	slotDst   []int32
	pend      []uint64
	pendN     int

	blkPending int   // blocked count read but not yet granted
	grantCycle int64 // cycle whose first FillCycle call claimed blkPending
}

// traceRec is one decoded trace record held in the pushback slot.
type traceRec struct {
	valid bool
	isBlk bool
	cycle int64
	node  int32
	dst   int32
	count int
}

// NewTraceSource builds a replay source over r for a network of nodes
// nodes. If r is an io.Closer (e.g. an *os.File), it is closed when the
// trace is fully consumed.
func NewTraceSource(r io.Reader, nodes int) *TraceSource {
	s := &TraceSource{
		rd:         bufio.NewReaderSize(r, 1<<16),
		slotCycle:  make([]int64, nodes),
		slotDst:    make([]int32, nodes),
		pend:       make([]uint64, (nodes+63)/64),
		grantCycle: -1,
	}
	if c, ok := r.(io.Closer); ok {
		s.cl = c
	}
	for u := range s.slotCycle {
		s.slotCycle[u] = -1
	}
	return s
}

// Err returns the first decode or read error, if any. io.EOF is not an
// error: the trace just ended.
func (s *TraceSource) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// fail records the first error and stops further reading.
func (s *TraceSource) fail(err error) {
	if s.err == nil {
		s.err = err
	}
	s.eof = true
	if s.cl != nil {
		s.cl.Close()
		s.cl = nil
	}
}

// readTo decodes records up to and including cycle into the slots. Caller
// holds mu.
func (s *TraceSource) readTo(cycle int64) {
	for {
		if s.pb.valid {
			if s.pb.cycle > cycle {
				return
			}
			if s.pb.isBlk {
				s.blkPending += s.pb.count
				s.pb.valid = false
				continue
			}
			u := s.pb.node
			if s.slotCycle[u] >= 0 {
				return // divergence stall: node still has an unconsumed record
			}
			s.slotCycle[u] = s.pb.cycle
			s.slotDst[u] = s.pb.dst
			s.pend[u>>6] |= 1 << (uint(u) & 63)
			s.pendN++
			s.pb.valid = false
			continue
		}
		if s.eof {
			return
		}
		line, err := s.rd.ReadSlice('\n')
		if len(line) > 0 {
			if ok, perr := s.parseLine(line); perr != nil {
				s.fail(perr)
				return
			} else if ok {
				continue // parsed into pb; place it on the next pass
			}
		}
		if err != nil {
			if err != io.EOF {
				s.fail(err)
				return
			}
			s.eof = true
			if s.cl != nil {
				s.cl.Close()
				s.cl = nil
			}
			return
		}
	}
}

// parseLine decodes one trace line into the pushback record. Lines that are
// not trace records (obs metrics, blanks) are skipped with ok=false.
func (s *TraceSource) parseLine(line []byte) (ok bool, err error) {
	const pfx = `{"c":`
	if len(line) < len(pfx)+1 || string(line[:len(pfx)]) != pfx {
		return false, nil
	}
	i := len(pfx)
	cyc, i, perr := parseInt(line, i)
	if perr != nil || i+4 >= len(line) || line[i] != ',' || line[i+1] != '"' || line[i+3] != '"' || line[i+4] != ':' {
		return false, fmt.Errorf("traffic: bad trace line %q", line)
	}
	key := line[i+2]
	v1, i, perr := parseInt(line, i+5)
	if perr != nil {
		return false, fmt.Errorf("traffic: bad trace line %q", line)
	}
	switch key {
	case 'b':
		s.pb = traceRec{valid: true, isBlk: true, cycle: cyc, count: int(v1)}
	case 's':
		if i+4 >= len(line) || line[i] != ',' || string(line[i+1:i+5]) != `"d":` {
			return false, fmt.Errorf("traffic: bad trace line %q", line)
		}
		v2, _, perr := parseInt(line, i+5)
		if perr != nil {
			return false, fmt.Errorf("traffic: bad trace line %q", line)
		}
		if int(v1) >= len(s.slotCycle) || int(v2) >= len(s.slotCycle) || v1 < 0 || v2 < 0 {
			return false, fmt.Errorf("traffic: trace node out of range in %q", line)
		}
		s.pb = traceRec{valid: true, cycle: cyc, node: int32(v1), dst: int32(v2)}
	default:
		return false, fmt.Errorf("traffic: bad trace line %q", line)
	}
	return true, nil
}

// parseInt reads a non-negative decimal starting at line[i].
func parseInt(line []byte, i int) (int64, int, error) {
	start := i
	var v int64
	for i < len(line) && line[i] >= '0' && line[i] <= '9' {
		v = v*10 + int64(line[i]-'0')
		i++
	}
	if i == start {
		return 0, i, fmt.Errorf("traffic: expected digit")
	}
	return v, i, nil
}

// Wants reports whether the trace injects at this node this cycle (or holds
// an overdue record from a diverged earlier cycle).
func (s *TraceSource) Wants(node int32, cycle int64) bool {
	s.mu.Lock()
	s.readTo(cycle)
	w := s.slotCycle[node] >= 0 && s.slotCycle[node] <= cycle
	s.mu.Unlock()
	return w
}

// Take consumes the node's pending record and returns its destination.
func (s *TraceSource) Take(node int32, _ int64) int32 {
	s.mu.Lock()
	dst := s.slotDst[node]
	s.slotCycle[node] = -1
	s.pend[node>>6] &^= 1 << (uint(node) & 63)
	s.pendN--
	s.mu.Unlock()
	return dst
}

// Exhausted reports whether the whole trace has been consumed. It cannot
// answer per node without reading ahead, so it flips for all nodes at once
// when the reader hits EOF with no records pending.
func (s *TraceSource) Exhausted(int32) bool {
	s.mu.Lock()
	ex := s.eof && s.pendN == 0 && !s.pb.valid
	s.mu.Unlock()
	return ex
}

// FillCycle implements sim.BatchSource. The first shard of each cycle also
// claims the recorded blocked count, so merged Attempts match the original
// run regardless of worker count (sums commute across shards).
func (s *TraceSource) FillCycle(cycle int64, lo, hi int32, full []uint64, out []core.PendingInject) (n, blocked int) {
	s.mu.Lock()
	s.readTo(cycle)
	if s.grantCycle != cycle {
		s.grantCycle = cycle
		blocked += s.blkPending
		s.blkPending = 0
	}
	for base := lo; base < hi; base += 64 {
		wi := base >> 6
		mask := ^uint64(0)
		if rem := hi - base; rem < 64 {
			mask = (uint64(1) << uint(rem)) - 1
		}
		for w := s.pend[wi] & mask; w != 0; w &= w - 1 {
			u := base + int32(bits.TrailingZeros64(w))
			if s.slotCycle[u] > cycle {
				continue
			}
			if full[u>>6]&(1<<(uint(u)&63)) != 0 {
				blocked++ // divergence from the recorded run; retry next cycle
				continue
			}
			out[n] = core.PendingInject{Node: u, Dst: s.slotDst[u]}
			n++
			s.slotCycle[u] = -1
			s.pend[wi] &^= 1 << (uint(u) & 63)
			s.pendN--
		}
	}
	s.mu.Unlock()
	return n, blocked
}
