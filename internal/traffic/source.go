package traffic

import (
	"io"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/xrand"
)

// StaticSource is the paper's static injection model: every node has a
// fixed number of packets to inject (1 or n in Section 7). A node attempts
// every cycle until its allotment has entered the network.
type StaticSource struct {
	pattern   Pattern
	remaining []int32
	rngs      []xrand.RNG
}

// NewStaticSource builds a static source of perNode packets at each of the
// nodes, destined per pattern. The seed feeds the per-node generators used
// by random patterns.
func NewStaticSource(pattern Pattern, nodes, perNode int, seed int64) *StaticSource {
	s := &StaticSource{
		pattern:   pattern,
		remaining: make([]int32, nodes),
		rngs:      make([]xrand.RNG, nodes),
	}
	for u := range s.remaining {
		s.remaining[u] = int32(perNode)
		s.rngs[u] = xrand.New(seed, int32(u))
	}
	return s
}

// Wants reports whether the node still has packets to inject.
func (s *StaticSource) Wants(node int32, _ int64) bool { return s.remaining[node] > 0 }

// Take consumes one packet from the node's allotment.
func (s *StaticSource) Take(node int32, _ int64) int32 {
	s.remaining[node]--
	return s.pattern.Dest(node, &s.rngs[node])
}

// Exhausted reports whether the node's allotment is used up.
func (s *StaticSource) Exhausted(node int32) bool { return s.remaining[node] <= 0 }

// TotalRemaining returns the packets not yet injected (for tests).
func (s *StaticSource) TotalRemaining() int {
	t := 0
	for _, r := range s.remaining {
		t += int(r)
	}
	return t
}

// BernoulliSource is the paper's dynamic injection model: every cycle each
// node attempts to inject with probability Lambda; the destination is drawn
// from the pattern at commit time.
type BernoulliSource struct {
	pattern Pattern
	lambda  float64
	rngs    []xrand.RNG
}

// NewBernoulliSource builds a dynamic source with rate lambda in [0,1].
func NewBernoulliSource(pattern Pattern, nodes int, lambda float64, seed int64) *BernoulliSource {
	s := &BernoulliSource{
		pattern: pattern,
		lambda:  lambda,
		rngs:    make([]xrand.RNG, nodes),
	}
	for u := range s.rngs {
		s.rngs[u] = xrand.New(seed, int32(u))
	}
	return s
}

// Wants flips the node's Bernoulli coin for this cycle. Lambda = 1 attempts
// every cycle without consuming generator state, so the paper's λ=1 runs
// stay aligned across configurations.
func (s *BernoulliSource) Wants(node int32, _ int64) bool {
	if s.lambda >= 1 {
		return true
	}
	return s.rngs[node].Coin(s.lambda)
}

// Take draws the destination of the packet being injected.
func (s *BernoulliSource) Take(node int32, _ int64) int32 {
	return s.pattern.Dest(node, &s.rngs[node])
}

// Exhausted always reports false: dynamic sources never stop.
func (s *BernoulliSource) Exhausted(int32) bool { return false }

// RecordingSource wraps a source and records every taken (src, dst) pair;
// tests use it to check conservation (everything injected is delivered).
//
// By default the record grows without bound — fine for the bounded static
// runs the conservation tests drive, but a dynamic source feeding a long run
// would accumulate one entry per injection for the whole run. Set Cap to
// bound the memory: the record then keeps only the most recent Cap entries
// (a ring), and TotalTaken still counts every injection.
//
// Set W to also stream the record as trace JSONL (see trace.go for the
// schema) that a TraceSource can replay. Writes are buffered internally;
// call Flush when the run ends. On the batched injection path (the wrapper
// implements sim.BatchSource, delegating to the inner source or emulating
// Wants/Take per node) blocked-attempt counts are recorded too, so a replay
// reproduces Attempts exactly; the scalar path records successes only,
// because a count of blocked nodes cannot be attributed under per-node
// Wants/Take without reordering the stream.
type RecordingSource struct {
	Inner interface {
		Wants(node int32, cycle int64) bool
		Take(node int32, cycle int64) int32
		Exhausted(node int32) bool
	}
	// Cap bounds the record to the most recent Cap entries (0 = unbounded).
	// Set it before the first Take; changing it mid-run is not supported.
	Cap int
	// W, when non-nil, receives the record as trace JSONL. Set it before
	// the run starts.
	W io.Writer

	mu    sync.Mutex
	total int64
	next  int // ring write position, used once len(Taken) == Cap
	Taken []TakenPacket
	wbuf  []byte
	werr  error
}

// TakenPacket is one recorded injection.
type TakenPacket struct {
	Src, Dst int32
	Cycle    int64
}

func (r *RecordingSource) Wants(node int32, cycle int64) bool { return r.Inner.Wants(node, cycle) }

func (r *RecordingSource) Take(node int32, cycle int64) int32 {
	dst := r.Inner.Take(node, cycle)
	r.mu.Lock()
	r.record(node, dst, cycle)
	r.mu.Unlock()
	return dst
}

// record appends one injection to the ring and, when streaming, to the
// write buffer. Caller holds mu.
func (r *RecordingSource) record(node, dst int32, cycle int64) {
	r.total++
	tp := TakenPacket{Src: node, Dst: dst, Cycle: cycle}
	if r.Cap > 0 && len(r.Taken) >= r.Cap {
		r.Taken[r.next] = tp
		r.next++
		if r.next == r.Cap {
			r.next = 0
		}
	} else {
		r.Taken = append(r.Taken, tp)
	}
	if r.W != nil {
		r.wbuf = append(r.wbuf, `{"c":`...)
		r.wbuf = strconv.AppendInt(r.wbuf, cycle, 10)
		r.wbuf = append(r.wbuf, `,"s":`...)
		r.wbuf = strconv.AppendInt(r.wbuf, int64(node), 10)
		r.wbuf = append(r.wbuf, `,"d":`...)
		r.wbuf = strconv.AppendInt(r.wbuf, int64(dst), 10)
		r.wbuf = append(r.wbuf, '}', '\n')
		r.maybeFlush()
	}
}

// maybeFlush writes the buffer out once it is large enough that the write
// amortizes. Caller holds mu.
func (r *RecordingSource) maybeFlush() {
	if len(r.wbuf) < 1<<15 {
		return
	}
	r.flushLocked()
}

func (r *RecordingSource) flushLocked() {
	if len(r.wbuf) == 0 || r.W == nil {
		return
	}
	if _, err := r.W.Write(r.wbuf); err != nil && r.werr == nil {
		r.werr = err
	}
	r.wbuf = r.wbuf[:0]
}

// Flush writes out any buffered trace records and returns the first write
// error, if any. Call it when the run ends.
func (r *RecordingSource) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushLocked()
	return r.werr
}

// FillCycle implements sim.BatchSource: the wrapped source's cycle is
// produced (delegated when the inner source is itself a BatchSource,
// emulated per node otherwise) and recorded, including the shard's blocked
// count so a replay reproduces Attempts exactly.
func (r *RecordingSource) FillCycle(cycle int64, lo, hi int32, full []uint64, out []core.PendingInject) (n, blocked int) {
	if bs, ok := r.Inner.(batchFiller); ok {
		n, blocked = bs.FillCycle(cycle, lo, hi, full, out)
	} else {
		for u := lo; u < hi; u++ {
			if !r.Inner.Wants(u, cycle) {
				continue
			}
			if full[u>>6]&(1<<(uint(u)&63)) != 0 {
				blocked++
				continue
			}
			out[n] = core.PendingInject{Node: u, Dst: r.Inner.Take(u, cycle)}
			n++
		}
	}
	r.mu.Lock()
	for i := range out[:n] {
		r.record(out[i].Node, out[i].Dst, cycle)
	}
	if blocked > 0 && r.W != nil {
		r.wbuf = append(r.wbuf, `{"c":`...)
		r.wbuf = strconv.AppendInt(r.wbuf, cycle, 10)
		r.wbuf = append(r.wbuf, `,"b":`...)
		r.wbuf = strconv.AppendInt(r.wbuf, int64(blocked), 10)
		r.wbuf = append(r.wbuf, '}', '\n')
		r.maybeFlush()
	}
	r.mu.Unlock()
	return n, blocked
}

func (r *RecordingSource) Exhausted(node int32) bool { return r.Inner.Exhausted(node) }

// TotalTaken returns the number of injections ever recorded, including
// entries a Cap ring has since overwritten.
func (r *RecordingSource) TotalTaken() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Recent returns the recorded entries in oldest-first order, undoing the
// ring rotation when Cap is set. The slice is a copy.
func (r *RecordingSource) Recent() []TakenPacket {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TakenPacket, 0, len(r.Taken))
	if r.Cap > 0 && len(r.Taken) >= r.Cap {
		out = append(out, r.Taken[r.next:]...)
		out = append(out, r.Taken[:r.next]...)
		return out
	}
	return append(out, r.Taken...)
}
