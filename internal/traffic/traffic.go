// Package traffic provides the communication patterns and injection models
// of Section 7 of the paper, plus a few standard extras used by the
// extension experiments.
//
// A Pattern maps a source node to a destination (randomly or through a
// fixed permutation); a source combines a pattern with an injection process
// (static: a fixed number of packets per node; dynamic: a Bernoulli attempt
// per cycle with rate lambda) and implements sim.TrafficSource.
package traffic

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/xrand"
)

// Pattern produces destinations for injected packets.
type Pattern interface {
	// Name returns a short identifier such as "random" or "complement".
	Name() string
	// Dest returns the destination of a packet injected at src. Random
	// patterns draw from r; permutation patterns ignore it.
	Dest(src int32, r *xrand.RNG) int32
}

// Random is the paper's "Random Routing" pattern: each packet's destination
// is uniform over all nodes except the source. It does not, in general,
// form a permutation.
type Random struct {
	Nodes int
}

func (Random) Name() string { return "random" }

func (p Random) Dest(src int32, r *xrand.RNG) int32 {
	d := int32(r.Intn(p.Nodes - 1))
	if d >= src {
		d++
	}
	return d
}

// Complement sends every packet from a node to its bitwise complement
// (hypercube addresses of width Bits).
type Complement struct {
	Bits int
}

func (Complement) Name() string { return "complement" }

func (p Complement) Dest(src int32, _ *xrand.RNG) int32 {
	return ^src & int32(1<<p.Bits-1)
}

// Transpose swaps the two halves of the address; with an odd number of bits
// the central bit stays in place (Section 7.1).
type Transpose struct {
	Bits int
}

func (Transpose) Name() string { return "transpose" }

func (p Transpose) Dest(src int32, _ *xrand.RNG) int32 {
	n := p.Bits
	h := n / 2
	low := src & (1<<h - 1)
	high := src >> (n - h) // top h bits
	mid := src >> h & (1<<(n-2*h) - 1)
	return low<<(n-h) | mid<<h | high
}

// Leveled is the paper's "Leveled Permutation": a random permutation in
// which every node sends to a node of its own Hamming weight. [FCS90]
// reported congestion for such permutations under oblivious minimal
// routing, which makes them a good adversary for adaptivity.
type Leveled struct {
	perm []int32
}

// NewLeveled builds a leveled permutation of the 2^width hypercube nodes
// using the given seed: within each Hamming-weight level the nodes are
// permuted uniformly at random.
func NewLeveled(width int, seed int64) *Leveled {
	n := 1 << width
	byLevel := make([][]int32, width+1)
	for u := 0; u < n; u++ {
		l := bits.OnesCount32(uint32(u))
		byLevel[l] = append(byLevel[l], int32(u))
	}
	perm := make([]int32, n)
	r := xrand.New(seed, -1)
	for _, nodes := range byLevel {
		idx := make([]int32, len(nodes))
		r.Perm(idx)
		for i, u := range nodes {
			perm[u] = nodes[idx[i]]
		}
	}
	return &Leveled{perm: perm}
}

func (*Leveled) Name() string { return "leveled" }

func (p *Leveled) Dest(src int32, _ *xrand.RNG) int32 { return p.perm[src] }

// Permutation wraps an arbitrary fixed permutation (σ(i) must be a
// permutation of 0..len-1).
type Permutation struct {
	Label string
	Sigma []int32
}

func (p *Permutation) Name() string { return p.Label }

func (p *Permutation) Dest(src int32, _ *xrand.RNG) int32 { return p.Sigma[src] }

// Validate checks Sigma is a permutation.
func (p *Permutation) Validate() error {
	seen := make([]bool, len(p.Sigma))
	for _, d := range p.Sigma {
		if d < 0 || int(d) >= len(p.Sigma) || seen[d] {
			return fmt.Errorf("traffic: %s: not a permutation", p.Label)
		}
		seen[d] = true
	}
	return nil
}

// BitReversal reverses the Bits-bit address: the classic adversary for
// dimension-ordered routing.
type BitReversal struct {
	Bits int
}

func (BitReversal) Name() string { return "bit-reversal" }

func (p BitReversal) Dest(src int32, _ *xrand.RNG) int32 {
	return int32(bits.Reverse32(uint32(src)) >> (32 - p.Bits))
}

// MeshTranspose sends (x, y) to (y, x) on a side x side 2-dimensional
// mesh or torus with row-major node numbering.
type MeshTranspose struct {
	Side int
}

func (MeshTranspose) Name() string { return "mesh-transpose" }

func (p MeshTranspose) Dest(src int32, _ *xrand.RNG) int32 {
	x := int(src) % p.Side
	y := int(src) / p.Side
	return int32(y + x*p.Side)
}

// Hotspot sends each packet to a fixed hot node with probability Fraction
// and uniformly at random otherwise. An extension workload for studying how
// adaptivity spreads contention.
type Hotspot struct {
	Nodes    int
	Hot      int32
	Fraction float64
}

func (Hotspot) Name() string { return "hotspot" }

func (p Hotspot) Dest(src int32, r *xrand.RNG) int32 {
	if r.Coin(p.Fraction) && p.Hot != src {
		return p.Hot
	}
	d := int32(r.Intn(p.Nodes - 1))
	if d >= src {
		d++
	}
	return d
}

// FixedDestinations returns the sorted list of distinct destinations a
// permutation pattern produces; a helper for tests.
func FixedDestinations(p Pattern, nodes int) []int32 {
	var r xrand.RNG
	set := make(map[int32]bool)
	for u := 0; u < nodes; u++ {
		set[p.Dest(int32(u), &r)] = true
	}
	out := make([]int32, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
