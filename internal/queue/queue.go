// Package queue provides the bounded FIFO packet queues used by the routing
// nodes. The critical resources of packet routing are exactly these queues
// (Section 2 of the paper), so their semantics are kept deliberately strict:
// fixed capacity, FIFO arrival order, and removal either from the head or
// from an arbitrary position (the node model lets a message behind a blocked
// head depart first when it wants a different output buffer, while "the
// first one in the queue in FIFO order" wins any contended buffer).
package queue

import "fmt"

// FIFO is a bounded first-in first-out queue of values of type T backed by a
// ring buffer. The zero value is unusable; use New.
type FIFO[T any] struct {
	buf   []T
	head  int // index of the oldest element
	count int
}

// New returns an empty FIFO with the given fixed capacity (cap >= 1).
func New[T any](capacity int) *FIFO[T] {
	if capacity < 1 {
		panic(fmt.Sprintf("queue: capacity must be >= 1, got %d", capacity))
	}
	return &FIFO[T]{buf: make([]T, capacity)}
}

// idx maps a FIFO position (0 <= i <= count) to its ring-buffer index.
// head and i are both below len(buf) (or i == count == len at the tail of a
// full queue), so a single conditional wrap replaces the integer division a
// % would cost on this hot path.
func (q *FIFO[T]) idx(i int) int {
	j := q.head + i
	if j >= len(q.buf) {
		j -= len(q.buf)
	}
	return j
}

// Cap returns the fixed capacity.
func (q *FIFO[T]) Cap() int { return len(q.buf) }

// Len returns the number of queued elements.
func (q *FIFO[T]) Len() int { return q.count }

// Free returns the number of free slots.
func (q *FIFO[T]) Free() int { return len(q.buf) - q.count }

// Full reports whether no free slot remains.
func (q *FIFO[T]) Full() bool { return q.count == len(q.buf) }

// Empty reports whether the queue holds no elements.
func (q *FIFO[T]) Empty() bool { return q.count == 0 }

// Push appends v at the tail. It reports false (and does not modify the
// queue) if the queue is full.
func (q *FIFO[T]) Push(v T) bool {
	if q.count == len(q.buf) {
		return false
	}
	q.buf[q.idx(q.count)] = v
	q.count++
	return true
}

// Pop removes and returns the head element. It reports false on an empty
// queue.
func (q *FIFO[T]) Pop() (T, bool) {
	var zero T
	if q.count == 0 {
		return zero, false
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head = q.idx(1)
	q.count--
	return v, true
}

// At returns the i-th element in FIFO order (0 is the head). It panics if i
// is out of range.
func (q *FIFO[T]) At(i int) T {
	if i < 0 || i >= q.count {
		panic(fmt.Sprintf("queue: index %d out of range [0,%d)", i, q.count))
	}
	return q.buf[q.idx(i)]
}

// Remove deletes the i-th element in FIFO order and returns it, preserving
// the relative order of the remaining elements. It panics if i is out of
// range. Capacity is tiny in practice (the paper fixes it at 5), so the
// O(len) shift is irrelevant.
func (q *FIFO[T]) Remove(i int) T {
	if i < 0 || i >= q.count {
		panic(fmt.Sprintf("queue: index %d out of range [0,%d)", i, q.count))
	}
	v := q.At(i)
	var zero T
	for j := i; j > 0; j-- {
		q.buf[q.idx(j)] = q.buf[q.idx(j-1)]
	}
	q.buf[q.head] = zero
	q.head = q.idx(1)
	q.count--
	return v
}

// Set replaces the i-th element in FIFO order (0 is the head) in place. It
// panics if i is out of range. The node model uses it for self-spinning
// moves (shuffle steps at rotation fixed points) that advance a packet's
// bookkeeping without relocating it.
func (q *FIFO[T]) Set(i int, v T) {
	if i < 0 || i >= q.count {
		panic(fmt.Sprintf("queue: index %d out of range [0,%d)", i, q.count))
	}
	q.buf[q.idx(i)] = v
}

// Clear removes all elements.
func (q *FIFO[T]) Clear() {
	var zero T
	for i := 0; i < q.count; i++ {
		q.buf[q.idx(i)] = zero
	}
	q.head, q.count = 0, 0
}
