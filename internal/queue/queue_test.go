package queue

import (
	"testing"
	"testing/quick"
)

func TestPushPopOrder(t *testing.T) {
	q := New[int](3)
	for i := 1; i <= 3; i++ {
		if !q.Push(i) {
			t.Fatalf("Push(%d) failed", i)
		}
	}
	if q.Push(4) {
		t.Fatal("Push succeeded on a full queue")
	}
	for i := 1; i <= 3; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = %d,%v want %d,true", v, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop succeeded on an empty queue")
	}
}

func TestWraparound(t *testing.T) {
	q := New[int](2)
	for round := 0; round < 10; round++ {
		if !q.Push(round) || !q.Push(round+100) {
			t.Fatal("push failed")
		}
		if v, _ := q.Pop(); v != round {
			t.Fatalf("round %d: got %d", round, v)
		}
		if v, _ := q.Pop(); v != round+100 {
			t.Fatalf("round %d: got %d", round, v)
		}
	}
}

func TestAt(t *testing.T) {
	q := New[string](4)
	q.Push("a")
	q.Push("b")
	q.Pop() // advance head so the ring wraps
	q.Push("c")
	q.Push("d")
	q.Push("e")
	want := []string{"b", "c", "d", "e"}
	for i, w := range want {
		if got := q.At(i); got != w {
			t.Errorf("At(%d) = %q, want %q", i, got, w)
		}
	}
}

func TestRemoveMiddle(t *testing.T) {
	q := New[int](5)
	q.Push(0) // force wraparound
	q.Pop()
	for i := 1; i <= 5; i++ {
		q.Push(i)
	}
	if got := q.Remove(2); got != 3 {
		t.Fatalf("Remove(2) = %d, want 3", got)
	}
	want := []int{1, 2, 4, 5}
	if q.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", q.Len(), len(want))
	}
	for i, w := range want {
		if got := q.At(i); got != w {
			t.Errorf("At(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestRemoveHeadAndTail(t *testing.T) {
	q := New[int](3)
	q.Push(10)
	q.Push(20)
	q.Push(30)
	if got := q.Remove(0); got != 10 {
		t.Fatalf("Remove(0) = %d", got)
	}
	if got := q.Remove(q.Len() - 1); got != 30 {
		t.Fatalf("Remove(tail) = %d", got)
	}
	if v, _ := q.Pop(); v != 20 {
		t.Fatalf("Pop = %d, want 20", v)
	}
}

func TestCounters(t *testing.T) {
	q := New[int](4)
	if !q.Empty() || q.Full() || q.Free() != 4 || q.Cap() != 4 {
		t.Fatal("fresh queue counters wrong")
	}
	q.Push(1)
	q.Push(2)
	if q.Len() != 2 || q.Free() != 2 || q.Empty() || q.Full() {
		t.Fatal("counters wrong after 2 pushes")
	}
	q.Push(3)
	q.Push(4)
	if !q.Full() || q.Free() != 0 {
		t.Fatal("counters wrong when full")
	}
	q.Clear()
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("Clear did not empty the queue")
	}
}

func TestPanicsOnBadIndex(t *testing.T) {
	q := New[int](2)
	q.Push(1)
	for _, i := range []int{-1, 1, 2} {
		func(i int) {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) did not panic", i)
				}
			}()
			q.At(i)
		}(i)
	}
}

func TestPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New[int](0)
}

// TestQuickModel drives the FIFO with random operation sequences and checks
// it against a plain-slice model.
func TestQuickModel(t *testing.T) {
	f := func(ops []uint8, capacity uint8) bool {
		c := int(capacity%7) + 1
		q := New[int](c)
		var model []int
		next := 0
		for _, op := range ops {
			switch op % 3 {
			case 0: // push
				ok := q.Push(next)
				if ok != (len(model) < c) {
					return false
				}
				if ok {
					model = append(model, next)
				}
				next++
			case 1: // pop
				v, ok := q.Pop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			case 2: // remove at pseudo-random index
				if len(model) == 0 {
					continue
				}
				i := int(op) % len(model)
				if q.Remove(i) != model[i] {
					return false
				}
				model = append(model[:i:i], model[i+1:]...)
			}
			if q.Len() != len(model) {
				return false
			}
			for i, w := range model {
				if q.At(i) != w {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
