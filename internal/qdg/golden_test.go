package qdg

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestGoldenDOT pins the Figure 1-3 exports against checked-in golden
// files, so accidental changes to the QDG structure or the DOT rendering
// are caught. Regenerate with:
//
//	go run ./cmd/qdgviz -algo <spec> -verify=false > internal/qdg/testdata/<file>
func TestGoldenDOT(t *testing.T) {
	cases := []struct {
		file string
		algo core.Algorithm
	}{
		{"fig1_hypercube3.dot", core.NewHypercubeAdaptive(3)},
		{"fig2_mesh3x3.dot", core.NewMeshAdaptive(3, 3)},
		{"fig3_shuffle3.dot", core.NewShuffleExchangeAdaptive(3)},
	}
	for _, c := range cases {
		c := c
		t.Run(c.file, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", c.file))
			if err != nil {
				t.Fatal(err)
			}
			g, err := Build(c.algo)
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			if err := g.WriteDOT(&sb); err != nil {
				t.Fatal(err)
			}
			if sb.String() != string(want) {
				t.Errorf("%s: DOT output changed; regenerate the golden file if intentional.\nfirst diff near: %s",
					c.file, firstDiff(sb.String(), string(want)))
			}
		})
	}
}

func firstDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return "line " + la[i] + " != " + lb[i]
		}
	}
	return "length mismatch"
}
