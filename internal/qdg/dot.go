package qdg

import (
	"fmt"
	"io"
	"sort"
)

// WriteDOT renders the QDG in Graphviz DOT format, reproducing the paper's
// Figures 1-3 (the hung networks with their dynamic links): static edges are
// drawn solid, dynamic edges dashed, and bubble-guarded edges dotted, with
// queues of the same node grouped in a cluster. Queues are ranked by their
// static level so the drawing "hangs" the network exactly like the figures.
func (g *Graph) WriteDOT(w io.Writer) error {
	levels, err := g.Levels()
	if err != nil {
		// Guarded schemes may lack levels for queues on guarded rings; fall
		// back to a flat drawing.
		levels = map[Queue]int{}
	}
	var b []byte
	p := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	p("digraph %q {\n", g.Algo.Name())
	p("  rankdir=TB;\n  node [shape=box, fontsize=10];\n")

	nodes := map[int32][]Queue{}
	for _, q := range g.Queues {
		nodes[q.Node] = append(nodes[q.Node], q)
	}
	var ids []int32
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p("  subgraph cluster_n%d {\n    label=\"node %d\";\n", id, id)
		for _, q := range nodes[id] {
			p("    %q [label=\"%s\\nlvl %d\"];\n", g.QueueName(q), g.QueueName(q), levels[q])
		}
		p("  }\n")
	}

	writeEdges := func(edges map[Edge]bool, style string) {
		var es []Edge
		for e := range edges {
			es = append(es, e)
		}
		sort.Slice(es, func(i, j int) bool {
			a, b := es[i], es[j]
			if a.From != b.From {
				if a.From.Node != b.From.Node {
					return a.From.Node < b.From.Node
				}
				return a.From.Class < b.From.Class
			}
			if a.To.Node != b.To.Node {
				return a.To.Node < b.To.Node
			}
			return a.To.Class < b.To.Class
		})
		for _, e := range es {
			p("  %q -> %q [style=%s];\n", g.QueueName(e.From), g.QueueName(e.To), style)
		}
	}
	writeEdges(g.Static, "solid")
	writeEdges(g.Dynamic, "dashed")
	writeEdges(g.Guarded, "dotted")
	p("}\n")
	_, err = w.Write(b)
	return err
}
