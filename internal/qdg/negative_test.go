package qdg

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
)

// The verifier is only trustworthy if it rejects broken designs. These
// deliberately flawed algorithms each violate one of the Section 2
// conditions and must fail the corresponding check.

// cyclicStatic routes around a ring with a single static class and no
// dateline: a textbook static QDG cycle.
type cyclicStatic struct{ torus *topology.Torus }

func (c *cyclicStatic) Name() string                                    { return "broken-cyclic-static" }
func (c *cyclicStatic) Topology() topology.Topology                     { return c.torus }
func (c *cyclicStatic) NumClasses() int                                 { return 1 }
func (c *cyclicStatic) ClassName(core.QueueClass) string                { return "q" }
func (c *cyclicStatic) Props() core.Props                               { return core.Props{} }
func (c *cyclicStatic) MaxHops(src, dst int32) int                      { return c.torus.Nodes() }
func (c *cyclicStatic) Inject(src, dst int32) (core.QueueClass, uint32) { return 0, 0 }

func (c *cyclicStatic) Candidates(node int32, class core.QueueClass, work uint32, dst int32, buf []core.Move) []core.Move {
	if node == dst {
		return append(buf, core.Move{Node: node, Port: core.PortInternal, Kind: core.Static, MinFree: 1, Deliver: true})
	}
	return append(buf, core.Move{
		Node: int32(c.torus.Neighbor(int(node), 0)), Port: 0, Kind: core.Static, MinFree: 1,
	})
}

func TestVerifierRejectsStaticCycle(t *testing.T) {
	g, err := Build(&cyclicStatic{torus: topology.NewTorus(5)})
	if err != nil {
		t.Fatal(err)
	}
	err = g.CheckStaticStructure()
	if err == nil {
		t.Fatal("static ring certified")
	}
	if !strings.Contains(err.Error(), "ring") && !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("unexpected diagnosis: %v", err)
	}
	if err := g.CheckStaticAcyclic(); err == nil {
		t.Fatal("CheckStaticAcyclic missed the ring")
	}
}

// noEscape is a hypercube scheme whose packets, once every remaining
// correction is 1->0, are offered only *dynamic* moves: the Section 2
// escape condition is violated even though every individual move is fine.
type noEscape struct{ cube *topology.Hypercube }

func (n *noEscape) Name() string                                    { return "broken-no-escape" }
func (n *noEscape) Topology() topology.Topology                     { return n.cube }
func (n *noEscape) NumClasses() int                                 { return 1 }
func (n *noEscape) ClassName(core.QueueClass) string                { return "q" }
func (n *noEscape) Props() core.Props                               { return core.Props{} }
func (n *noEscape) MaxHops(src, dst int32) int                      { return n.cube.Dims() }
func (n *noEscape) Inject(src, dst int32) (core.QueueClass, uint32) { return 0, 0 }

func (n *noEscape) Candidates(node int32, class core.QueueClass, work uint32, dst int32, buf []core.Move) []core.Move {
	if node == dst {
		return append(buf, core.Move{Node: node, Port: core.PortInternal, Kind: core.Static, MinFree: 1, Deliver: true})
	}
	diff := uint32(node ^ dst)
	for d := diff; d != 0; d &= d - 1 {
		t := trailing(d)
		kind := core.Static
		if node&(1<<t) != 0 {
			kind = core.Dynamic // all 1->0 fixes dynamic, no static fallback
		}
		buf = append(buf, core.Move{Node: node ^ 1<<t, Port: int16(t), Kind: kind, MinFree: 1})
	}
	return buf
}

func trailing(v uint32) int {
	t := 0
	for v&1 == 0 {
		v >>= 1
		t++
	}
	return t
}

func TestVerifierRejectsMissingEscape(t *testing.T) {
	g, err := Build(&noEscape{cube: topology.NewHypercube(3)})
	if err != nil {
		t.Fatal(err)
	}
	// A state with only 1->0 corrections has no static candidate at all:
	// both the one-step escape check and the static-progress closure must
	// reject the scheme.
	if err := g.CheckDynamicEscape(); err == nil {
		t.Error("CheckDynamicEscape accepted a scheme with dynamic-only states")
	}
	if err := g.CheckStaticProgress(); err == nil {
		t.Error("CheckStaticProgress accepted a scheme with dynamic-only states")
	}
	if err := g.Verify(); err == nil {
		t.Error("Verify accepted the broken scheme")
	}
}

// trapDoor reaches the destination statically from injection states but
// strands the states that only dynamic links create: from the "wrong side"
// queue the only static option loops between two helper classes that never
// deliver. CheckDynamicEscape (one step) passes — the trap has a static
// move — but CheckStaticProgress must catch it.
type trapDoor struct{ cube *topology.Hypercube }

func (tr *trapDoor) Name() string                                    { return "broken-trap-door" }
func (tr *trapDoor) Topology() topology.Topology                     { return tr.cube }
func (tr *trapDoor) NumClasses() int                                 { return 2 }
func (tr *trapDoor) ClassName(c core.QueueClass) string              { return [...]string{"main", "trap"}[c] }
func (tr *trapDoor) Props() core.Props                               { return core.Props{} }
func (tr *trapDoor) MaxHops(src, dst int32) int                      { return 4 * tr.cube.Dims() }
func (tr *trapDoor) Inject(src, dst int32) (core.QueueClass, uint32) { return 0, 0 }

func (tr *trapDoor) Candidates(node int32, class core.QueueClass, work uint32, dst int32, buf []core.Move) []core.Move {
	if class == 1 {
		// The trap: a static self-spin that advances bookkeeping forever
		// without ever delivering (work flips to dodge in-place detection
		// being meaningless here: it is still the same queue).
		return append(buf, core.Move{
			Node: node ^ 1, Port: 0, Class: 1, Kind: core.Static, MinFree: 1, Work: work ^ 1,
		})
	}
	if node == dst {
		return append(buf, core.Move{Node: node, Port: core.PortInternal, Kind: core.Static, MinFree: 1, Deliver: true})
	}
	t := trailing(uint32(node ^ dst))
	buf = append(buf, core.Move{Node: node ^ 1<<t, Port: int16(t), Class: 0, Kind: core.Static, MinFree: 1})
	// The dynamic door into the trap.
	return append(buf, core.Move{Node: node ^ 1, Port: 0, Class: 1, Kind: core.Dynamic, MinFree: 1})
}

func TestVerifierRejectsTrapDoor(t *testing.T) {
	g, err := Build(&trapDoor{cube: topology.NewHypercube(3)})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckDynamicEscape(); err != nil {
		t.Fatalf("one-step escape unexpectedly failed (the trap has static moves): %v", err)
	}
	if err := g.CheckStaticProgress(); err == nil {
		t.Error("CheckStaticProgress accepted a scheme whose dynamic states never deliver")
	}
}

// TestCycleErrorReportsPath pins the diagnostic contract: a rejected QDG
// yields a *CycleError whose Path is a genuine cycle in the static graph —
// consecutive queues on adjacent nodes, closing back on the first — with a
// matching human-readable rendering.
func TestCycleErrorReportsPath(t *testing.T) {
	torus := topology.NewTorus(5)
	g, err := Build(&cyclicStatic{torus: torus})
	if err != nil {
		t.Fatal(err)
	}
	var ce *CycleError
	if err := g.CheckStaticAcyclic(); !errors.As(err, &ce) {
		t.Fatalf("CheckStaticAcyclic returned %T %v, want *CycleError", err, err)
	}
	if ce.Algorithm != "broken-cyclic-static" || ce.Reason == "" {
		t.Errorf("bad error header: %+v", ce)
	}
	if len(ce.Path) < 2 || len(ce.PathNames) != len(ce.Path) {
		t.Fatalf("path not populated: %+v", ce)
	}
	// The ring routes +1 in dimension 0; every consecutive pair (wrapping)
	// must be that physical step.
	for i, q := range ce.Path {
		next := ce.Path[(i+1)%len(ce.Path)]
		if int(next.Node) != torus.Neighbor(int(q.Node), 0) {
			t.Errorf("path step %d: %d -> %d is not a ring edge", i, q.Node, next.Node)
		}
	}
	if !strings.Contains(ce.Error(), " -> ") {
		t.Errorf("rendered error lacks the path: %s", ce.Error())
	}

	var ce2 *CycleError
	if err := g.CheckStaticStructure(); !errors.As(err, &ce2) {
		t.Fatalf("CheckStaticStructure returned no *CycleError")
	}
	if len(ce2.Path) == 0 {
		t.Errorf("structure check reported no path: %+v", ce2)
	}
}
