// Package qdg builds and verifies queue dependency graphs (Section 2 of the
// paper). For a given Algorithm it explores every packet state reachable
// from any (source, destination) injection, projects the states onto queues
// (node, class), and records which queue-to-queue transitions the routing
// function can generate. Deadlock freedom then reduces to:
//
//  1. the static edge set forms a DAG (CheckStaticAcyclic), and
//  2. every dynamic transition leads to a state that still has a static
//     candidate — the packet always retains an escape path through the
//     underlying DAG (CheckDynamicEscape).
//
// Edges that carry a bubble guard (MinFree >= 2) are collected separately:
// they are allowed to close static cycles because the guard keeps the
// guarded ring from ever filling completely (see the shuffle-exchange
// algorithm's documentation).
//
// The exploration is exhaustive, so it is meant for the small networks used
// by tests and by cmd/qdgviz; its cost is O(states x candidates).
package qdg

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// Queue identifies a vertex of the QDG: one central queue of one node.
type Queue struct {
	Node  int32
	Class core.QueueClass
}

// Edge is a directed QDG edge between two central queues.
type Edge struct {
	From, To Queue
}

// Graph is the queue dependency graph of an algorithm, annotated with the
// link kinds of Section 2.
type Graph struct {
	Algo    core.Algorithm
	Queues  []Queue
	Static  map[Edge]bool  // A_s: unguarded static edges (MinFree == 1)
	Dynamic map[Edge]bool  // A_d: the added dynamic links
	Guarded map[Edge]bool  // static edges with a bubble guard (MinFree >= 2)
	Inject  map[Queue]bool // queues that receive packets straight from injection

	index map[Queue]int
}

// state is a packet situation during exploration.
type state struct {
	node  int32
	class core.QueueClass
	work  uint32
	dst   int32
}

// Build explores the algorithm exhaustively and returns its QDG. It also
// re-verifies, state by state, the routing-function constraints: candidates
// are never empty, and every move is at most one hop away (checked against
// the topology by core's Move construction, asserted here for internal
// consistency).
func Build(a core.Algorithm) (*Graph, error) {
	g := &Graph{
		Algo:    a,
		Static:  make(map[Edge]bool),
		Dynamic: make(map[Edge]bool),
		Guarded: make(map[Edge]bool),
		Inject:  make(map[Queue]bool),
		index:   make(map[Queue]int),
	}
	n := a.Topology().Nodes()
	seen := make(map[state]bool)
	var stack []state
	push := func(s state) {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			class, work := a.Inject(int32(src), int32(dst))
			g.Inject[Queue{int32(src), class}] = true
			push(state{int32(src), class, work, int32(dst)})
		}
	}
	buf := make([]core.Move, 0, 32)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		g.touch(Queue{s.node, s.class})
		buf = a.Candidates(s.node, s.class, s.work, s.dst, buf[:0])
		if len(buf) == 0 {
			return nil, fmt.Errorf("qdg: %s: empty candidate set at node=%d class=%d work=%#x dst=%d",
				a.Name(), s.node, s.class, s.work, s.dst)
		}
		for _, m := range buf {
			if m.Deliver {
				continue // delivery queues have infinite capacity: no dependency
			}
			push(state{m.Node, m.Class, m.Work, s.dst})
			from := Queue{s.node, s.class}
			to := Queue{m.Node, m.Class}
			if from == to {
				continue // in-place move: the packet keeps its own slot
			}
			g.touch(to)
			e := Edge{from, to}
			switch {
			case m.Kind == core.Dynamic:
				g.Dynamic[e] = true
			case m.Credit >= 2 || m.MinFree >= 2:
				g.Guarded[e] = true
			default:
				g.Static[e] = true
			}
		}
	}
	sort.Slice(g.Queues, func(i, j int) bool {
		a, b := g.Queues[i], g.Queues[j]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Class < b.Class
	})
	for i, q := range g.Queues {
		g.index[q] = i
	}
	return g, nil
}

func (g *Graph) touch(q Queue) {
	if _, ok := g.index[q]; !ok {
		g.index[q] = len(g.Queues)
		g.Queues = append(g.Queues, q)
	}
}

// CycleError reports a cycle in the queue dependency graph that the
// certification could not discharge. Path is the offending cycle as a queue
// sequence (the first vertex repeats implicitly); PathNames renders it with
// the algorithm's class names, node by node.
type CycleError struct {
	Algorithm string
	Reason    string // why the cycle is fatal
	Path      []Queue
	PathNames []string
}

func (e *CycleError) Error() string {
	return fmt.Sprintf("qdg: %s: %s: %s", e.Algorithm, e.Reason, strings.Join(e.PathNames, " -> "))
}

// cycleError builds a CycleError with the path rendered.
func (g *Graph) cycleError(reason string, path []Queue) *CycleError {
	names := make([]string, len(path))
	for i, q := range path {
		names[i] = g.QueueName(q)
	}
	return &CycleError{
		Algorithm: g.Algo.Name(), Reason: reason,
		Path: append([]Queue(nil), path...), PathNames: names,
	}
}

// CheckStaticAcyclic verifies that the static edges (guarded ones included)
// form a DAG. Algorithms relying on bubble rings fail this check and must
// pass CheckStaticStructure instead; pure DAG schemes pass both. A detected
// cycle is reported as a *CycleError carrying the queue path.
func (g *Graph) CheckStaticAcyclic() error {
	cycle := findCycle(g.Queues, g.allStatic())
	if cycle == nil {
		return nil
	}
	return g.cycleError("static QDG has a cycle", cycle)
}

func (g *Graph) allStatic() map[Edge]bool {
	all := make(map[Edge]bool, len(g.Static)+len(g.Guarded))
	for e := range g.Static {
		all[e] = true
	}
	for e := range g.Guarded {
		all[e] = true
	}
	return all
}

// CheckStaticStructure is the deadlock-freedom certification for the static
// edge set, allowing bubble rings: every nontrivial strongly connected
// component of the static graph must be a certified bubble ring —
//
//   - a simple unidirectional ring (each member has exactly one static edge
//     within the component),
//   - among queues of a single class,
//   - all of whose entry edges (static edges arriving from outside the
//     component) are bubble guarded (MinFree >= 2),
//   - with no dynamic edge and no injection landing inside it.
//
// The SCC condensation of a digraph is always acyclic, so once every
// nontrivial component is a certified ring the usual DAG induction applies
// between components, and the bubble invariant ("an entry leaves at least
// one free slot on the ring, and in-ring moves preserve occupancy") rules
// out deadlock within each ring.
func (g *Graph) CheckStaticStructure() error {
	static := g.allStatic()
	comps := sccs(g.Queues, static)
	for _, comp := range comps {
		if len(comp) == 1 {
			q := comp[0]
			if static[Edge{q, q}] {
				return fmt.Errorf("qdg: %s: static self-dependency at %s", g.Algo.Name(), g.QueueName(q))
			}
			continue
		}
		member := make(map[Queue]bool, len(comp))
		for _, q := range comp {
			member[q] = true
		}
		// Every nontrivial SCC contains a cycle; extract one so failed
		// certifications report the offending queue path, not just the
		// violated condition.
		inner := make(map[Edge]bool)
		for e := range static {
			if member[e.From] && member[e.To] {
				inner[e] = true
			}
		}
		cyc := findCycle(comp, inner)
		class := comp[0].Class
		for _, q := range comp {
			if q.Class != class {
				return g.cycleError(fmt.Sprintf("static cycle mixes classes (%s vs %s)",
					g.QueueName(comp[0]), g.QueueName(q)), cyc)
			}
			if g.Inject[q] {
				return g.cycleError(fmt.Sprintf("injection lands inside bubble ring at %s", g.QueueName(q)), cyc)
			}
			out := 0
			for e := range static {
				if e.From == q && member[e.To] {
					out++
				}
			}
			if out != 1 {
				return g.cycleError(fmt.Sprintf("static cycle is not a certified bubble ring: %s has %d internal edges",
					g.QueueName(q), out), cyc)
			}
		}
		for e := range g.Static { // unguarded entries into the ring are fatal
			if !member[e.From] && member[e.To] {
				return g.cycleError(fmt.Sprintf("unguarded entry %s into bubble ring", g.formatEdge(e)), cyc)
			}
		}
		for e := range g.Dynamic {
			if !member[e.From] && member[e.To] {
				return g.cycleError(fmt.Sprintf("dynamic entry %s into bubble ring", g.formatEdge(e)), cyc)
			}
		}
	}
	return nil
}

// CheckDynamicEscape re-verifies, for every reachable state, that each
// dynamic candidate leads to a state whose own candidate set contains a
// static move: the Section 2 condition "if q' ∈ R~(q,d) and q' ∉ R(q,d)
// then R(q',d) ≠ ∅".
func (g *Graph) CheckDynamicEscape() error {
	a := g.Algo
	n := a.Topology().Nodes()
	seen := make(map[state]bool)
	var stack []state
	push := func(s state) {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			class, work := a.Inject(int32(src), int32(dst))
			push(state{int32(src), class, work, int32(dst)})
		}
	}
	buf := make([]core.Move, 0, 32)
	esc := make([]core.Move, 0, 32)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		buf = a.Candidates(s.node, s.class, s.work, s.dst, buf[:0])
		for _, m := range buf {
			if m.Deliver {
				continue
			}
			push(state{m.Node, m.Class, m.Work, s.dst})
			if m.Kind != core.Dynamic {
				continue
			}
			esc = a.Candidates(m.Node, m.Class, m.Work, s.dst, esc[:0])
			hasStatic := false
			for _, em := range esc {
				if em.Kind == core.Static {
					hasStatic = true
					break
				}
			}
			if !hasStatic {
				return fmt.Errorf("qdg: %s: dynamic move to node=%d class=%d (dst=%d) has no static escape",
					a.Name(), m.Node, m.Class, s.dst)
			}
		}
	}
	return nil
}

// CheckStaticProgress verifies the routing-function constraint 2 of
// Section 2 in full: from *every* reachable packet state — including the
// states only dynamic links can create — a path of static moves alone leads
// to delivery. (CheckDynamicEscape is the one-step version; this is the
// closure: backward reachability from the delivering states over static
// edges must cover the whole reachable state space.)
func (g *Graph) CheckStaticProgress() error {
	a := g.Algo
	n := a.Topology().Nodes()

	// Forward exploration collecting all states and the static edges.
	seen := make(map[state]bool)
	var stack []state
	push := func(s state) {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			class, work := a.Inject(int32(src), int32(dst))
			push(state{int32(src), class, work, int32(dst)})
		}
	}
	preds := make(map[state][]state) // static predecessors
	delivering := make(map[state]bool)
	buf := make([]core.Move, 0, 32)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		buf = a.Candidates(s.node, s.class, s.work, s.dst, buf[:0])
		for _, m := range buf {
			if m.Deliver {
				if m.Kind == core.Static {
					delivering[s] = true
				}
				continue
			}
			ns := state{m.Node, m.Class, m.Work, s.dst}
			push(ns)
			if m.Kind == core.Static {
				preds[ns] = append(preds[ns], s)
			}
		}
	}

	// Backward reachability from the delivering states over static edges.
	ok := make(map[state]bool, len(seen))
	var frontier []state
	for s := range delivering {
		ok[s] = true
		frontier = append(frontier, s)
	}
	for len(frontier) > 0 {
		s := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, p := range preds[s] {
			if !ok[p] {
				ok[p] = true
				frontier = append(frontier, p)
			}
		}
	}
	for s := range seen {
		if !ok[s] {
			return fmt.Errorf("qdg: %s: no static-only path to delivery from node=%d class=%d work=%#x dst=%d",
				a.Name(), s.node, s.class, s.work, s.dst)
		}
	}
	return nil
}

// Verify runs the full certification: static structure (DAG up to certified
// bubble rings), the one-step dynamic-escape condition, and static-only
// progress from every reachable state.
func (g *Graph) Verify() error {
	if err := g.CheckStaticStructure(); err != nil {
		return err
	}
	if err := g.CheckDynamicEscape(); err != nil {
		return err
	}
	return g.CheckStaticProgress()
}

// Levels returns, for each queue, the length of the longest static-edge path
// from any queue with no incoming static edge — the paper's Level function
// (injection queues are outside the graph; queues entered directly from
// injection have level 0). It requires an acyclic static edge set.
func (g *Graph) Levels() (map[Queue]int, error) {
	if err := g.CheckStaticAcyclic(); err != nil {
		return nil, err
	}
	order, err := topoOrder(g.Queues, g.Static)
	if err != nil {
		return nil, err
	}
	levels := make(map[Queue]int, len(g.Queues))
	for _, q := range order {
		if _, ok := levels[q]; !ok {
			levels[q] = 0
		}
		for e := range g.Static {
			if e.From == q {
				if l := levels[q] + 1; l > levels[e.To] {
					levels[e.To] = l
				}
			}
		}
	}
	return levels, nil
}

// HasCycleWithDynamic reports whether adding the dynamic edges closes at
// least one cycle — i.e. whether the algorithm genuinely exercises the
// paper's dynamically-acyclic regime rather than being a plain DAG scheme.
func (g *Graph) HasCycleWithDynamic() bool {
	all := make(map[Edge]bool, len(g.Static)+len(g.Dynamic)+len(g.Guarded))
	for e := range g.Static {
		all[e] = true
	}
	for e := range g.Guarded {
		all[e] = true
	}
	for e := range g.Dynamic {
		all[e] = true
	}
	return findCycle(g.Queues, all) != nil
}

func (g *Graph) formatEdge(e Edge) string {
	return fmt.Sprintf("%s -> %s", g.QueueName(e.From), g.QueueName(e.To))
}

func (g *Graph) formatPath(path []Queue) string {
	s := ""
	for i, q := range path {
		if i > 0 {
			s += " -> "
		}
		s += g.QueueName(q)
	}
	return s
}

// QueueName renders a queue as "qA@5"-style text.
func (g *Graph) QueueName(q Queue) string {
	return fmt.Sprintf("%s@%d", g.Algo.ClassName(q.Class), q.Node)
}

// findCycle returns one directed cycle (as a vertex path whose first vertex
// repeats implicitly) in the given edge set, or nil if acyclic.
func findCycle(vertices []Queue, edges map[Edge]bool) []Queue {
	adj := make(map[Queue][]Queue, len(vertices))
	for e := range edges {
		adj[e.From] = append(adj[e.From], e.To)
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[Queue]int, len(vertices))
	var stack []Queue
	var cycle []Queue
	var dfs func(q Queue) bool
	dfs = func(q Queue) bool {
		color[q] = gray
		stack = append(stack, q)
		for _, next := range adj[q] {
			switch color[next] {
			case gray:
				for i, v := range stack {
					if v == next {
						cycle = append([]Queue(nil), stack[i:]...)
						return true
					}
				}
			case white:
				if dfs(next) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[q] = black
		return false
	}
	for _, v := range vertices {
		if color[v] == white && dfs(v) {
			return cycle
		}
	}
	return nil
}

// sccs returns the strongly connected components of the digraph using
// Tarjan's algorithm (iteration order fixed by the vertex slice, so results
// are deterministic).
func sccs(vertices []Queue, edges map[Edge]bool) [][]Queue {
	adj := make(map[Queue][]Queue, len(vertices))
	for e := range edges {
		adj[e.From] = append(adj[e.From], e.To)
	}
	for _, vs := range adj {
		sort.Slice(vs, func(i, j int) bool {
			if vs[i].Node != vs[j].Node {
				return vs[i].Node < vs[j].Node
			}
			return vs[i].Class < vs[j].Class
		})
	}
	index := make(map[Queue]int, len(vertices))
	low := make(map[Queue]int, len(vertices))
	onStack := make(map[Queue]bool, len(vertices))
	var stack []Queue
	var comps [][]Queue
	counter := 0
	var strongconnect func(v Queue)
	strongconnect = func(v Queue) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []Queue
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			comps = append(comps, comp)
		}
	}
	for _, v := range vertices {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return comps
}

// topoOrder returns a topological order of the vertices under the edge set.
func topoOrder(vertices []Queue, edges map[Edge]bool) ([]Queue, error) {
	indeg := make(map[Queue]int, len(vertices))
	adj := make(map[Queue][]Queue)
	for _, v := range vertices {
		indeg[v] = 0
	}
	for e := range edges {
		adj[e.From] = append(adj[e.From], e.To)
		indeg[e.To]++
	}
	var order, frontier []Queue
	for _, v := range vertices {
		if indeg[v] == 0 {
			frontier = append(frontier, v)
		}
	}
	for len(frontier) > 0 {
		v := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		order = append(order, v)
		for _, w := range adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				frontier = append(frontier, w)
			}
		}
	}
	if len(order) != len(vertices) {
		return nil, fmt.Errorf("qdg: graph is not acyclic")
	}
	return order, nil
}
