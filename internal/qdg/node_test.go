package qdg

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestHypercubeNodeDesign pins down the Figure 4 buffer structure on the
// 4-cube: at any node, a link in the 0->1 direction (the bit is 0) carries
// qA traffic plus the q_B traffic of packets doing their last correction,
// while a link in the 1->0 direction carries dynamic traffic plus qB.
func TestHypercubeNodeDesign(t *testing.T) {
	a := core.NewHypercubeAdaptive(4)
	const node = 0b0101
	d, err := DescribeNode(a, node)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		out, ok := d.OutBuffers[p]
		if !ok {
			t.Errorf("port %d has no output buffers", p)
			continue
		}
		got := strings.Join(out, ",")
		if node&(1<<p) == 0 { // 0->1 direction: ascending
			if got != "qA,qB" {
				t.Errorf("ascending port %d buffers = %s, want qA,qB", p, got)
			}
		} else { // 1->0 direction: dynamic + phase B
			if got != "dynamic,qB" {
				t.Errorf("descending port %d buffers = %s, want dynamic,qB", p, got)
			}
		}
	}
	// Every link is paired: 4 inbound links with buffers too.
	if len(d.InBuffers) != 4 {
		t.Errorf("inbound link count = %d, want 4", len(d.InBuffers))
	}
	s := d.String()
	for _, want := range []string{"hypercube-adaptive", "2 central queues", "qA", "qB", "injection + delivery"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

// TestShuffleNodeDesign checks the Figure 6 structure: the shuffle link
// carries the four phase/channel queues' static traffic, the exchange link
// carries phase-entry traffic plus the dynamic 1->0 corrections. The probed
// node has bit 0 set: only such nodes originate the dynamic 1->0 exchange.
func TestShuffleNodeDesign(t *testing.T) {
	a := core.NewShuffleExchangeAdaptive(4)
	d, err := DescribeNode(a, 0b0111)
	if err != nil {
		t.Fatal(err)
	}
	shuffleOut := strings.Join(d.OutBuffers[0], ",")
	if !strings.Contains(shuffleOut, "p1c0") || strings.Contains(shuffleOut, "dynamic") {
		t.Errorf("shuffle port buffers = %s; want phase queues, no dynamic", shuffleOut)
	}
	exchOut := strings.Join(d.OutBuffers[1], ",")
	if !strings.Contains(exchOut, "dynamic") {
		t.Errorf("exchange port buffers = %s; want a dynamic buffer", exchOut)
	}
}

// TestMeshBorderNodeDesign: a mesh corner only has two connected ports.
func TestMeshBorderNodeDesign(t *testing.T) {
	a := core.NewMeshAdaptive(3, 3)
	d, err := DescribeNode(a, 0) // corner (0,0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.OutBuffers) != 2 {
		t.Errorf("corner node has %d outbound link-buffer sets, want 2", len(d.OutBuffers))
	}
	for p := range d.OutBuffers {
		if p != 0 && p != 2 { // +x and +y only
			t.Errorf("corner node uses unexpected port %d", p)
		}
	}
}
