package qdg

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// verifiedAlgorithms are the algorithm instances whose deadlock-freedom
// structure the QDG checker must certify. Sizes are chosen to include the
// interesting corner cases: hypercube n=3 (the paper's Figure 1), meshes
// with unequal sides, shuffle-exchange n=4 (which contains the degenerate
// cycles 0101/1010 and the two rotation fixed points) and tori with both
// odd and even sides (even sides exercise direction ties).
func verifiedAlgorithms() []core.Algorithm {
	return []core.Algorithm{
		core.NewHypercubeAdaptive(2),
		core.NewHypercubeAdaptive(3),
		core.NewHypercubeAdaptive(4),
		core.NewHypercubeHung(3),
		core.NewHypercubeHung(4),
		core.NewHypercubeECube(3),
		core.NewHypercubeECube(4),
		core.NewMeshAdaptive(3, 3),
		core.NewMeshAdaptive(4, 4),
		core.NewMeshAdaptive(2, 5),
		core.NewMeshAdaptive(3, 3, 2),
		core.NewMeshTwoPhase(3, 3),
		core.NewMeshTwoPhase(4, 4),
		core.NewMeshXY(3, 3),
		core.NewMeshXY(4, 4),
		core.NewShuffleExchangeAdaptive(2),
		core.NewShuffleExchangeAdaptive(3),
		core.NewShuffleExchangeAdaptive(4),
		core.NewShuffleExchangeStatic(3),
		core.NewShuffleExchangeStatic(4),
		core.NewShuffleExchangeEager(4),
		core.NewShuffleExchangeEager(6),
		core.NewCCCAdaptive(2),
		core.NewCCCAdaptive(3),
		core.NewCCCAdaptive(4),
		core.NewCCCStatic(3),
		core.NewTorusAdaptive(3, 3),
		core.NewTorusAdaptive(4, 4),
		core.NewTorusAdaptive(5, 3),
		core.NewTorusAdaptive(3, 3, 3),
	}
}

// TestVerifyAll is the central deadlock-freedom certification: for every
// algorithm the static QDG must be acyclic, guarded edges must stay within
// one queue class, and every dynamic move must retain a static escape.
func TestVerifyAll(t *testing.T) {
	for _, a := range verifiedAlgorithms() {
		a := a
		t.Run(a.Name()+"/"+a.Topology().Name(), func(t *testing.T) {
			g, err := Build(a)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDynamicLinksCloseCycles checks the adaptive schemes genuinely live in
// the "dynamically acyclic" regime: with dynamic links included the QDG has
// cycles, which is the whole point of the paper's Section 2 machinery.
func TestDynamicLinksCloseCycles(t *testing.T) {
	for _, a := range []core.Algorithm{
		core.NewHypercubeAdaptive(3),
		core.NewMeshAdaptive(3, 3),
		core.NewShuffleExchangeAdaptive(3),
		core.NewCCCAdaptive(3),
	} {
		g, err := Build(a)
		if err != nil {
			t.Fatal(err)
		}
		if len(g.Dynamic) == 0 {
			t.Errorf("%s: no dynamic edges found", a.Name())
		}
		if !g.HasCycleWithDynamic() {
			t.Errorf("%s: dynamic links close no cycle; the scheme is degenerate", a.Name())
		}
	}
}

// TestStaticSchemesHaveNoDynamicEdges pins the ablation baselines down.
func TestStaticSchemesHaveNoDynamicEdges(t *testing.T) {
	for _, a := range []core.Algorithm{
		core.NewHypercubeHung(4),
		core.NewHypercubeECube(4),
		core.NewMeshTwoPhase(4, 4),
		core.NewMeshXY(4, 4),
		core.NewShuffleExchangeStatic(4),
	} {
		g, err := Build(a)
		if err != nil {
			t.Fatal(err)
		}
		if len(g.Dynamic) != 0 {
			t.Errorf("%s: unexpected dynamic edges: %d", a.Name(), len(g.Dynamic))
		}
	}
}

// TestHypercubeLevels verifies the Section 2 level structure on the
// 3-hypercube hung from 000 (Figure 1): static qA edges ascend one level per
// hop, and dynamic edges never ascend (the paper's Level(q) >= Level(q')
// convention for dynamic links).
func TestHypercubeLevels(t *testing.T) {
	a := core.NewHypercubeAdaptive(3)
	g, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	for e := range g.Static {
		if levels[e.To] <= levels[e.From] {
			t.Errorf("static edge %s -> %s does not ascend levels (%d -> %d)",
				g.QueueName(e.From), g.QueueName(e.To), levels[e.From], levels[e.To])
		}
	}
	for e := range g.Dynamic {
		if levels[e.To] > levels[e.From] {
			t.Errorf("dynamic edge %s -> %s ascends levels (%d -> %d)",
				g.QueueName(e.From), g.QueueName(e.To), levels[e.From], levels[e.To])
		}
	}
	// qB at node 111 (all ones) sits at the bottom of the hung cube: three
	// static hops below the highest injection point.
	if got := levels[Queue{Node: 7, Class: 1}]; got != 3 {
		t.Errorf("level(qB@111) = %d, want 3", got)
	}
}

// TestHypercubeQDGShape checks Figure 1's edge structure quantitatively on
// the 3-cube: each qA has static edges to qA of higher-weight neighbors,
// dynamic edges to qA of lower-weight neighbors, one internal edge to its
// own qB, and qB descends statically.
func TestHypercubeQDGShape(t *testing.T) {
	a := core.NewHypercubeAdaptive(3)
	g, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	// 2 queues per node, except qA at node 111: a packet performing its last
	// 0->1 correction enters q_B directly on arrival, so the top node's qA
	// is never occupied.
	if len(g.Queues) != 15 {
		t.Fatalf("queue count = %d, want 15", len(g.Queues))
	}
	for _, q := range g.Queues {
		if q.Node == 7 && q.Class == 0 {
			t.Error("qA@111 is reachable; the phase fold is broken")
		}
	}
	weight := func(u int32) int {
		w := 0
		for v := u; v != 0; v &= v - 1 {
			w++
		}
		return w
	}
	for e := range g.Static {
		switch {
		case e.From.Class == 0 && e.To.Class == 0: // qA -> qA ascends weight
			if weight(e.To.Node) != weight(e.From.Node)+1 {
				t.Errorf("static qA edge %d->%d does not ascend Hamming weight", e.From.Node, e.To.Node)
			}
		case e.From.Class == 0 && e.To.Class == 1:
			// Last 0->1 correction: one ascending hop straight into q_B.
			if weight(e.To.Node) != weight(e.From.Node)+1 {
				t.Errorf("phase-fold edge %d->%d does not ascend Hamming weight", e.From.Node, e.To.Node)
			}
		case e.From.Class == 1 && e.To.Class == 1: // qB -> qB descends weight
			if weight(e.To.Node) != weight(e.From.Node)-1 {
				t.Errorf("static qB edge %d->%d does not descend Hamming weight", e.From.Node, e.To.Node)
			}
		default:
			t.Errorf("unexpected static edge %v", e)
		}
	}
	for e := range g.Dynamic {
		if e.From.Class != 0 || e.To.Class != 0 || weight(e.To.Node) != weight(e.From.Node)-1 {
			t.Errorf("unexpected dynamic edge %v", e)
		}
	}
	// Every qA with weight < 3 has at least one outgoing static qA edge; the
	// 3-cube's 8 nodes all have both queues reachable.
	if len(g.Static) == 0 || len(g.Dynamic) == 0 {
		t.Fatal("edge sets unexpectedly empty")
	}
}

// TestShuffleGuardedEdgesOnlyOnDegenerateCycles: at n=3 every cycle has full
// length (no periodic addresses except the fixed points, whose shuffle steps
// are internal), so no guarded edge should appear; at n=4 the 0101/1010
// cycle needs the bubble guard.
func TestShuffleGuardedEdgesOnlyOnDegenerateCycles(t *testing.T) {
	g3, err := Build(core.NewShuffleExchangeAdaptive(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(g3.Guarded) != 0 {
		t.Errorf("n=3: unexpected guarded edges: %d", len(g3.Guarded))
	}
	g4, err := Build(core.NewShuffleExchangeAdaptive(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(g4.Guarded) == 0 {
		t.Errorf("n=4: expected guarded edges on the degenerate 0101 cycle")
	}
	// Guarded edges are ring entries: channel 0 -> channel 1 of some phase.
	for e := range g4.Guarded {
		if e.From.Class+1 != e.To.Class || e.To.Class%2 != 1 {
			t.Errorf("guarded edge is not a c0->c1 ring entry: %v", e)
		}
	}
	// The static graph of n=4 must NOT be acyclic (the 0101 channel-1 ring),
	// yet the structural certification must pass.
	if err := g4.CheckStaticAcyclic(); err == nil {
		t.Error("n=4: expected a static cycle on the degenerate channel-1 ring")
	}
	if err := g4.CheckStaticStructure(); err != nil {
		t.Errorf("n=4: structure certification failed: %v", err)
	}
}

// TestWriteDOT smoke-tests the Figure 1-3 exports.
func TestWriteDOT(t *testing.T) {
	for _, a := range []core.Algorithm{
		core.NewHypercubeAdaptive(3),       // Figure 1
		core.NewMeshAdaptive(3, 3),         // Figure 2
		core.NewShuffleExchangeAdaptive(3), // Figure 3
	} {
		g, err := Build(a)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := g.WriteDOT(&sb); err != nil {
			t.Fatal(err)
		}
		out := sb.String()
		for _, want := range []string{"digraph", "style=solid", "style=dashed", "subgraph cluster_n0"} {
			if !strings.Contains(out, want) {
				t.Errorf("%s: DOT output missing %q", a.Name(), want)
			}
		}
	}
}

// TestBuildDeterministic ensures two builds of the same algorithm agree,
// protecting the DOT goldens and the checker against map-iteration leaks.
func TestBuildDeterministic(t *testing.T) {
	a := core.NewMeshAdaptive(3, 3)
	g1, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 strings.Builder
	if err := g1.WriteDOT(&b1); err != nil {
		t.Fatal(err)
	}
	if err := g2.WriteDOT(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("DOT output differs between two identical builds")
	}
}
