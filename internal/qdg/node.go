package qdg

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/topology"
)

// NodeDesign describes the functional router design of Section 6 for one
// node: which link buffers the node actually needs, per physical port and
// direction, given the algorithm's reachable transitions. It is the textual
// rendering of the paper's Figures 4-6.
type NodeDesign struct {
	Algo core.Algorithm
	Node int32
	// OutBuffers[p] lists the output buffer labels of port p (traffic
	// leaving Node), e.g. ["qA", "qB", "dynamic"].
	OutBuffers map[int][]string
	// InBuffers[p] lists the input buffer labels for traffic arriving over
	// the reverse of port p (from Neighbor(Node, p) into Node). For
	// unidirectional links (shuffle) the key is the inbound port of the
	// sending node, offset by 1000 to keep it distinct.
	InBuffers map[int][]string
}

// DescribeNode explores every reachable transition of the algorithm and
// collects the buffers incident to the given node.
func DescribeNode(a core.Algorithm, node int32) (*NodeDesign, error) {
	d := &NodeDesign{
		Algo:       a,
		Node:       node,
		OutBuffers: make(map[int][]string),
		InBuffers:  make(map[int][]string),
	}
	t := a.Topology()
	n := t.Nodes()
	seen := make(map[state]bool)
	var stack []state
	push := func(s state) {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			class, work := a.Inject(int32(src), int32(dst))
			push(state{int32(src), class, work, int32(dst)})
		}
	}
	outSet := make(map[int]map[string]bool)
	inSet := make(map[int]map[string]bool)
	add := func(set map[int]map[string]bool, port int, label string) {
		if set[port] == nil {
			set[port] = make(map[string]bool)
		}
		set[port][label] = true
	}
	label := func(m core.Move) string {
		if m.Kind == core.Dynamic {
			return "dynamic"
		}
		return a.ClassName(m.Class)
	}
	buf := make([]core.Move, 0, 32)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		buf = a.Candidates(s.node, s.class, s.work, s.dst, buf[:0])
		for _, m := range buf {
			if !m.Deliver {
				push(state{m.Node, m.Class, m.Work, s.dst})
			}
			if m.Port == core.PortInternal {
				continue
			}
			if s.node == node {
				add(outSet, int(m.Port), label(m))
			}
			if m.Node == node {
				// Traffic arriving into node: identify the inbound link by
				// the reverse port when it exists, else tag the sender port.
				rp := t.ReversePort(int(s.node), int(m.Port))
				key := 1000 + int(m.Port)
				if rp != topology.None {
					key = rp
				}
				add(inSet, key, label(m))
			}
		}
	}
	for p, set := range outSet {
		d.OutBuffers[p] = sortedKeys(set)
	}
	for p, set := range inSet {
		d.InBuffers[p] = sortedKeys(set)
	}
	return d, nil
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders the node design as the paper's figures describe it: per
// physical link, the output and input buffers with their associated queues.
func (d *NodeDesign) String() string {
	t := d.Algo.Topology()
	var sb strings.Builder
	fmt.Fprintf(&sb, "node %d of %s under %s: %d central queues (", d.Node, t.Name(), d.Algo.Name(), d.Algo.NumClasses())
	for c := 0; c < d.Algo.NumClasses(); c++ {
		if c > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(d.Algo.ClassName(core.QueueClass(c)))
	}
	sb.WriteString(") + injection + delivery\n")
	ports := make([]int, 0, len(d.OutBuffers))
	for p := range d.OutBuffers {
		ports = append(ports, p)
	}
	sort.Ints(ports)
	for _, p := range ports {
		fmt.Fprintf(&sb, "  port %d -> node %-6d out buffers: %s\n", p, t.Neighbor(int(d.Node), p), strings.Join(d.OutBuffers[p], ", "))
	}
	inPorts := make([]int, 0, len(d.InBuffers))
	for p := range d.InBuffers {
		inPorts = append(inPorts, p)
	}
	sort.Ints(inPorts)
	for _, p := range inPorts {
		from := "?"
		if p < 1000 {
			from = fmt.Sprint(t.Neighbor(int(d.Node), p))
		} else {
			from = fmt.Sprintf("(unidirectional, sender port %d)", p-1000)
		}
		fmt.Fprintf(&sb, "  in from %-22s in buffers: %s\n", from, strings.Join(d.InBuffers[p], ", "))
	}
	return sb.String()
}
