package obs

import (
	"fmt"
	"strings"
)

// DumpLimit caps the number of wait-for entries a DeadlockDump carries, so a
// jammed 16K-node network does not produce a megabyte-scale error value.
const DumpLimit = 128

// WaitTarget is one output a blocked packet is waiting on.
type WaitTarget struct {
	Node    int32 // neighbor the full output buffer leads to
	Port    int16 // output port of the blocked packet's node
	Class   uint8 // buffer class (NumClasses = the shared dynamic buffer)
	Dynamic bool  // the wait is through the shared dynamic buffer
	Dead    bool  // the link or its endpoint is currently dead
}

// WaitFor describes one blocked head packet: where it sits and which output
// buffers it is waiting to find free.
type WaitFor struct {
	Node     int32 // node holding the packet
	Class    uint8 // central queue class it occupies
	QueueLen int   // occupancy of that queue
	PacketID int64
	Dst      int32
	WaitsOn  []WaitTarget
}

// DeadlockDump is the wait-for state captured when the deadlock watchdog
// fires: one entry per blocked queue head, capped at DumpLimit entries.
type DeadlockDump struct {
	Cycle     int64 // cycle at which the watchdog fired
	Window    int64 // configured no-progress window
	InFlight  int64 // packets stuck in the network
	Waits     []WaitFor
	Truncated bool // true when more than DumpLimit heads were blocked
}

// String renders the dump compactly, one blocked head per line.
func (d *DeadlockDump) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "deadlock dump @cycle %d (window %d, %d in flight, %d blocked heads",
		d.Cycle, d.Window, d.InFlight, len(d.Waits))
	if d.Truncated {
		b.WriteString("+")
	}
	b.WriteString("):\n")
	for _, w := range d.Waits {
		fmt.Fprintf(&b, "  node %d q%d len=%d pkt %d -> %d waits on", w.Node, w.Class, w.QueueLen, w.PacketID, w.Dst)
		for _, t := range w.WaitsOn {
			kind := "s"
			if t.Dynamic {
				kind = "d"
			}
			dead := ""
			if t.Dead {
				dead = " DEAD"
			}
			fmt.Fprintf(&b, " [p%d->%d c%d %s%s]", t.Port, t.Node, t.Class, kind, dead)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// DeadlockObserver is an optional extension of Observer: implementations
// receive the wait-for dump when the engine's deadlock watchdog fires. The
// engine discovers it by type assertion, so plain observers need not change.
type DeadlockObserver interface {
	Observer
	OnDeadlock(dump *DeadlockDump)
}
