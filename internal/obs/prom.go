package obs

import (
	"fmt"
	"io"
	"net/http"
)

// promHelp documents each metric family for the exposition format.
var (
	counterHelp = [NumCounters]string{
		"Injection attempts (all cycles)",
		"Injection attempts refused by an occupied injection queue",
		"Packets that entered an injection queue",
		"Packets consumed at their destination",
		"Packet movements (progress events)",
		"Movements over dynamic links",
		"Packets transferred across a physical link",
		"Phase (a) scans that found no admissible free buffer",
		"Phase (a) scans skipped by the wait-mask cache",
		"Arrivals posted to a cross-shard mail lane",
		"Packets forwarded by virtual cut-through",
		"Non-minimal moves taken because faults emptied the candidate set",
		"Packets dropped by fault handling",
		"Injections deferred by retry-with-backoff under faults",
		"Shard-boundary recomputations (occupancy-weighted rebalancing)",
		"Wall-clock ns in the injection phase (PhaseProf only)",
		"Wall-clock ns in node phase (a) (PhaseProf only)",
		"Wall-clock ns in node phase (b) (PhaseProf only)",
		"Wall-clock ns in the link phase (PhaseProf only)",
		"Wall-clock ns in the per-cycle stats merge (PhaseProf only)",
		"Wall-clock ns in the rest of the cycle (PhaseProf only)",
	}
	gaugeHelp = [NumGauges]string{
		"Packets currently held in central queues",
		"Packets anywhere in the network",
		"Maximum single-queue occupancy observed",
		"Nodes on the active worklist",
	}
	histHelp = [NumHists]string{
		"Per-packet age at delivery, in cycles",
		"Central-queue occupancy observed at each push",
	}
)

// WriteProm renders the snapshot in the Prometheus text exposition format,
// under the metric namespace "repro_". Counters gain a _total suffix;
// histograms are rendered as cumulative le-labelled buckets with _sum and
// _count, per the Prometheus histogram convention.
func (s *Snapshot) WriteProm(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP repro_cycles_total Completed simulation cycles\n# TYPE repro_cycles_total counter\nrepro_cycles_total %d\n", s.Cycle); err != nil {
		return err
	}
	for c := CounterID(0); c < NumCounters; c++ {
		name := "repro_" + c.String() + "_total"
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			name, counterHelp[c], name, name, s.Counters[c]); err != nil {
			return err
		}
	}
	for g := GaugeID(0); g < NumGauges; g++ {
		name := "repro_" + g.String()
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
			name, gaugeHelp[g], name, name, s.Gauges[g]); err != nil {
			return err
		}
	}
	for h := HistID(0); h < NumHists; h++ {
		name := "repro_" + h.String()
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, histHelp[h], name); err != nil {
			return err
		}
		cum := int64(0)
		for b := 0; b < HistBuckets; b++ {
			cum += s.Hists[h][b]
			le := "+Inf"
			if up := BucketUpper(b); up >= 0 {
				le = fmt.Sprint(up)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, s.HistSum[h], name, s.HistCount[h]); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns an http.Handler serving the core's latest published
// snapshot in Prometheus text format: mount it at /metrics. It is safe to
// scrape while a run executes.
func (c *Core) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := c.Latest()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = snap.WriteProm(w)
	})
}
