package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestBucketMapping(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{1 << 14, 14}, {1<<15 - 1, 14}, {1 << 15, 15}, {1 << 40, 15},
	}
	for _, c := range cases {
		if got := BucketOf(c.v); got != c.want {
			t.Errorf("BucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every bucket's upper bound must map back into that bucket, and the
	// next value into the next bucket.
	for b := 0; b < HistBuckets-1; b++ {
		up := BucketUpper(b)
		if got := BucketOf(up); got != b {
			t.Errorf("BucketOf(upper(%d)=%d) = %d", b, up, got)
		}
		if got := BucketOf(up + 1); got != b+1 {
			t.Errorf("BucketOf(upper(%d)+1) = %d, want %d", b, got, b+1)
		}
	}
	if BucketUpper(HistBuckets-1) != -1 {
		t.Errorf("last bucket must be unbounded")
	}
}

func TestShardFoldAndSnapshot(t *testing.T) {
	c := NewCore()
	var a, b Shard
	a.Inc(CInjected)
	a.Add(CMoves, 10)
	a.GaugeAdd(GQueueOccupancy, 3)
	a.Observe(HLatency, 5)
	b.Inc(CInjected)
	b.GaugeAdd(GQueueOccupancy, -1)
	b.Observe(HLatency, 9)
	b.Observe(HQueueLen, 2)
	c.Fold(&a)
	c.Fold(&b)
	c.AddCounter(CDelivered, 7)
	c.SetGauge(GInFlight, 42)
	snap := c.EndCycle(12)

	if snap.Cycle != 12 {
		t.Errorf("Cycle = %d", snap.Cycle)
	}
	if snap.Counter(CInjected) != 2 || snap.Counter(CMoves) != 10 || snap.Counter(CDelivered) != 7 {
		t.Errorf("counters wrong: %+v", snap.Counters)
	}
	if snap.Gauge(GQueueOccupancy) != 2 || snap.Gauge(GInFlight) != 42 {
		t.Errorf("gauges wrong: %+v", snap.Gauges)
	}
	if snap.HistCount[HLatency] != 2 || snap.HistSum[HLatency] != 14 {
		t.Errorf("latency hist wrong: count=%d sum=%d", snap.HistCount[HLatency], snap.HistSum[HLatency])
	}
	if got := snap.HistMean(HLatency); got != 7 {
		t.Errorf("HistMean = %v, want 7", got)
	}
	// Folding clears the shard.
	if a != (Shard{}) || b != (Shard{}) {
		t.Errorf("Fold must clear the shard")
	}
	// Latest returns the published copy.
	if got := c.Latest(); got != *snap {
		t.Errorf("Latest != EndCycle snapshot")
	}
	c.Reset()
	if got := c.Latest(); got != (Snapshot{}) {
		t.Errorf("Reset must clear the published snapshot")
	}
}

func TestCanonicalZeroesWorkerDependentMetrics(t *testing.T) {
	var s Snapshot
	s.Counters[CMailPosts] = 5
	s.Gauges[GLiveNodes] = 9
	s.Counters[CDelivered] = 3
	canon := s.Canonical()
	if canon.Counters[CMailPosts] != 0 || canon.Gauges[GLiveNodes] != 0 {
		t.Errorf("Canonical kept worker-dependent metrics: %+v", canon)
	}
	if canon.Counters[CDelivered] != 3 {
		t.Errorf("Canonical must keep other metrics")
	}
}

type countingObserver struct {
	Base
	delivers, cycles, dones int
}

func (c *countingObserver) OnDeliver(core.Packet, int64) { c.delivers++ }
func (c *countingObserver) OnCycle(int64, *Snapshot)     { c.cycles++ }
func (c *countingObserver) OnDone(*Snapshot)             { c.dones++ }

func TestMulti(t *testing.T) {
	if Multi(nil, nil) != nil {
		t.Errorf("Multi of nils must be nil")
	}
	a := &countingObserver{}
	if got := Multi(nil, a); got != a {
		t.Errorf("Multi of one observer must unwrap it")
	}
	b := &countingObserver{}
	m := Multi(a, nil, b)
	var snap Snapshot
	m.OnDeliver(core.Packet{}, 1)
	m.OnCycle(0, &snap)
	m.OnCycle(1, &snap)
	m.OnDone(&snap)
	for i, o := range []*countingObserver{a, b} {
		if o.delivers != 1 || o.cycles != 2 || o.dones != 1 {
			t.Errorf("observer %d: %+v", i, *o)
		}
	}
}

func TestLatencyObserver(t *testing.T) {
	l := NewLatency()
	l.OnDeliver(core.Packet{Hops: 3}, 7)
	l.OnDeliver(core.Packet{Hops: 4}, 9)
	if l.Count() != 2 || l.Mean() != 8 {
		t.Errorf("latency observer: n=%d mean=%v", l.Count(), l.Mean())
	}
	var _ Observer = l // must satisfy the interface
}

func TestSampler(t *testing.T) {
	s := NewSampler(10)
	var snap Snapshot
	for cy := int64(0); cy < 25; cy++ {
		snap.Cycle = cy + 1
		snap.Counters[CDelivered] = cy
		s.OnCycle(cy, &snap)
	}
	s.OnDone(&snap)
	// Cycles 0, 10, 20 sample; OnDone adds the final point.
	if len(s.Samples) != 4 {
		t.Fatalf("samples = %d, want 4", len(s.Samples))
	}
	if s.Samples[3].Cycle != 25 || s.Samples[3].Delivered != 24 {
		t.Errorf("final sample wrong: %+v", s.Samples[3])
	}
	// OnDone must not duplicate a point already taken at the same cycle.
	s2 := NewSampler(1)
	snap.Cycle = 1
	s2.OnCycle(0, &snap)
	s2.OnDone(&snap)
	if len(s2.Samples) != 1 {
		t.Errorf("OnDone duplicated the final sample: %d", len(s2.Samples))
	}
}

func TestJSONLWriter(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONLWriter(&buf, 5)
	var snap Snapshot
	for cy := int64(0); cy < 12; cy++ {
		snap.Cycle = cy + 1
		snap.Counters[CInjected] = cy * 2
		j.OnCycle(cy, &snap)
	}
	j.OnDone(&snap)
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	if j.Lines() != 4 { // cycles 0, 5, 10 + final
		t.Fatalf("lines = %d, want 4", j.Lines())
	}
	sc := bufio.NewScanner(&buf)
	n, finals := 0, 0
	for sc.Scan() {
		var rec struct {
			Cycle    int64            `json:"cycle"`
			Final    bool             `json:"final"`
			Counters map[string]int64 `json:"counters"`
			Hists    map[string]struct {
				Buckets []int64 `json:"buckets"`
				Count   int64   `json:"count"`
			} `json:"hists"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if _, ok := rec.Counters["injected"]; !ok {
			t.Errorf("line %d: no injected counter", n)
		}
		if h, ok := rec.Hists["latency"]; !ok || len(h.Buckets) != HistBuckets {
			t.Errorf("line %d: bad latency histogram", n)
		}
		if rec.Final {
			finals++
			if rec.Counters["injected"] != 22 {
				t.Errorf("final line: injected=%d", rec.Counters["injected"])
			}
		}
		n++
	}
	if n != 4 || finals != 1 {
		t.Errorf("lines=%d finals=%d", n, finals)
	}
}

func TestWritePromFormat(t *testing.T) {
	var s Snapshot
	s.Cycle = 100
	s.Counters[CDelivered] = 50
	s.Gauges[GQueueOccupancy] = 7
	s.Hists[HLatency][0] = 2
	s.Hists[HLatency][3] = 1
	s.HistSum[HLatency] = 12
	s.HistCount[HLatency] = 3
	var buf strings.Builder
	if err := s.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"repro_cycles_total 100",
		"repro_delivered_total 50",
		"repro_queue_occupancy 7",
		`repro_latency_bucket{le="1"} 2`,
		`repro_latency_bucket{le="15"} 3`, // cumulative through bucket 3
		`repro_latency_bucket{le="+Inf"} 3`,
		"repro_latency_sum 12",
		"repro_latency_count 3",
		"# TYPE repro_latency histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q", want)
		}
	}
}
