package obs

import (
	"repro/internal/core"
	"repro/internal/stats"
)

// Observer receives the three probes of a simulation run. It replaces the
// raw Config.OnDeliver / Config.OnCycle callbacks: attach one via
// Config.Observer (or the repro.WithObserver option) and the engine enables
// its metrics core for the run.
//
// Contract:
//
//   - OnDeliver is called at every delivery with the packet and its
//     measured latency (cycles since network entry). With Workers > 1 it is
//     called concurrently from the worker goroutines and must be safe for
//     parallel use. It must not mutate the packet's meaning for the run —
//     observers are read-only taps; the engine's results must be
//     bit-identical with or without them.
//   - OnCycle is called once at the end of every simulated cycle, outside
//     the parallel phases, with the merged metric snapshot. The snapshot
//     pointer is only valid during the call; copy it to retain it.
//   - OnDone is called exactly once when the run ends — normally, by
//     context cancellation, or with an error (deadlock, cycle budget) —
//     with the final snapshot.
type Observer interface {
	OnDeliver(pkt core.Packet, latency int64)
	OnCycle(cycle int64, snap *Snapshot)
	OnDone(snap *Snapshot)
}

// Base is a no-op Observer for embedding: override only the probes you need.
type Base struct{}

func (Base) OnDeliver(core.Packet, int64) {}
func (Base) OnCycle(int64, *Snapshot)     {}
func (Base) OnDone(*Snapshot)             {}

// MultiObserver fans every probe out to a list of observers, in order.
type MultiObserver []Observer

// Multi composes observers into one, dropping nils. It returns nil when
// nothing remains and the single observer unwrapped when one does.
func Multi(os ...Observer) Observer {
	var m MultiObserver
	for _, o := range os {
		if o != nil {
			m = append(m, o)
		}
	}
	switch len(m) {
	case 0:
		return nil
	case 1:
		return m[0]
	}
	return m
}

func (m MultiObserver) OnDeliver(pkt core.Packet, latency int64) {
	for _, o := range m {
		o.OnDeliver(pkt, latency)
	}
}

func (m MultiObserver) OnCycle(cycle int64, snap *Snapshot) {
	for _, o := range m {
		o.OnCycle(cycle, snap)
	}
}

func (m MultiObserver) OnDone(snap *Snapshot) {
	for _, o := range m {
		o.OnDone(snap)
	}
}

// OnDeadlock forwards the watchdog dump to every member that implements
// DeadlockObserver, making MultiObserver itself a DeadlockObserver.
func (m MultiObserver) OnDeadlock(dump *DeadlockDump) {
	for _, o := range m {
		if d, ok := o.(DeadlockObserver); ok {
			d.OnDeadlock(dump)
		}
	}
}

// Latency is the latency-collection observer: it absorbs stats.Collector
// (streaming mean/variance, exact percentiles, histograms) behind the
// Observer interface. Safe for concurrent delivery under Workers > 1.
type Latency struct {
	*stats.Collector
}

// NewLatency returns an empty latency observer.
func NewLatency() *Latency { return &Latency{Collector: stats.NewCollector()} }

func (l *Latency) OnCycle(int64, *Snapshot) {}
func (l *Latency) OnDone(*Snapshot)         {}

// Sample is one point of the Sampler's time series, derived entirely from
// the merged snapshot (so the series is bit-deterministic up to Canonical).
type Sample struct {
	Cycle        int64 `json:"cycle"`
	QueueOcc     int64 `json:"queue_occupancy"`
	MaxQueue     int64 `json:"max_queue"`
	InFlight     int64 `json:"in_flight"`
	Injected     int64 `json:"injected"`
	Delivered    int64 `json:"delivered"`
	Backpressure int64 `json:"inj_backpressure"`
}

// Sampler records a queue-occupancy time series every Every cycles (plus a
// final point at OnDone), the signal behind the paper's observation that
// congestion concentrates without dynamic links.
type Sampler struct {
	Every   int64
	Samples []Sample
}

// NewSampler returns a sampler with the given period (minimum 1).
func NewSampler(every int64) *Sampler {
	if every < 1 {
		every = 1
	}
	return &Sampler{Every: every}
}

func (s *Sampler) OnDeliver(core.Packet, int64) {}

func (s *Sampler) OnCycle(cycle int64, snap *Snapshot) {
	if cycle%s.Every == 0 {
		s.record(snap)
	}
}

func (s *Sampler) OnDone(snap *Snapshot) {
	if n := len(s.Samples); n == 0 || s.Samples[n-1].Cycle != snap.Cycle {
		s.record(snap)
	}
}

func (s *Sampler) record(snap *Snapshot) {
	s.Samples = append(s.Samples, Sample{
		Cycle:        snap.Cycle,
		QueueOcc:     snap.Gauges[GQueueOccupancy],
		MaxQueue:     snap.Gauges[GMaxQueue],
		InFlight:     snap.Gauges[GInFlight],
		Injected:     snap.Counters[CInjected],
		Delivered:    snap.Counters[CDelivered],
		Backpressure: snap.Counters[CInjBackpressure],
	})
}
