// Package obs is the engine observability core: a fixed set of counters,
// gauges, and fixed-bucket histograms describing what the simulators do
// cycle by cycle — injection backpressure, central-queue occupancy, link
// utilization, output-buffer stalls, wait-mask parking, mail-lane traffic,
// and per-packet age at delivery.
//
// The design keeps the engines' hot loop allocation-free and bit-
// deterministic under parallel execution:
//
//   - every worker accumulates into its own Shard (plain int64 arrays, no
//     atomics, no maps), so instrumentation in the phase bodies costs an
//     increment behind one predictable branch;
//   - once per cycle, at the barrier where the engine already folds its
//     per-worker statistics, the shards are folded into the Core's
//     cumulative Snapshot in worker order — every fold is a commutative
//     sum, so the merged values are independent of execution timing;
//   - Snapshot is a fixed-size value type (arrays, not maps or slices), so
//     publishing one is a memcpy and reading one never races with the run.
//
// Cross-worker determinism: for a fixed seed, every metric is bit-identical
// regardless of Config.Workers except CMailPosts and GLiveNodes, which
// describe the parallel machinery itself (packets cross shard boundaries
// only when shards exist, and a mail-delivered arrival marks its node live
// one phase later than a same-shard arrival). Snapshot.Canonical zeroes
// those two for cross-worker-count comparisons.
package obs

import (
	"math/bits"
	"sync"
)

// CounterID names one monotonically increasing counter.
type CounterID uint8

// The counters. All are cumulative over the run.
const (
	// CInjAttempts counts injection attempts (every cycle, not just the
	// measurement window — contrast Metrics.Attempts).
	CInjAttempts CounterID = iota
	// CInjBackpressure counts attempts refused because the node's injection
	// queue was still occupied: the saturation signal of Section 7.1.
	CInjBackpressure
	// CInjected counts packets that entered an injection queue.
	CInjected
	// CDelivered counts packets consumed at their destination.
	CDelivered
	// CMoves counts packet movements (progress events).
	CMoves
	// CDynamicMoves counts movements over dynamic links.
	CDynamicMoves
	// CLinkTransfers counts packets moved across a physical link (the link
	// utilization numerator; each directed link moves at most one per cycle).
	CLinkTransfers
	// COutputStalls counts phase (a) scans that left a packet in place
	// because no admissible move had a free output buffer.
	COutputStalls
	// CWaitParked counts phase (a) scans skipped outright by the wait-mask
	// cache (the packet was parked on still-full buffers).
	CWaitParked
	// CMailPosts counts arrivals posted to a cross-shard mail lane. It is
	// zero with Workers <= 1 and depends on the shard layout; see Canonical.
	CMailPosts
	// CCutThrough counts packets forwarded input-buffer to output-buffer
	// without being stored in a central queue (virtual cut-through).
	CCutThrough
	// CMisrouted counts non-minimal moves taken because faults emptied the
	// packet's minimal candidate set (fault-degraded routing).
	CMisrouted
	// CFaultDrops counts packets dropped by fault handling: caught in a dead
	// node or link buffer, out of misroute hop budget, or unroutable at
	// injection.
	CFaultDrops
	// CInjRetries counts injections deferred by retry-with-backoff because
	// the node's queue pool was saturated under faults.
	CInjRetries
	// CShardRebalances counts shard-boundary recomputations (occupancy-
	// weighted rebalancing, Config.RebalanceEvery). Like CMailPosts it
	// describes the parallel machinery (zero with Workers <= 1); see
	// Canonical.
	CShardRebalances

	// The phase-time counters accumulate wall-clock nanoseconds per engine
	// phase, measured at the cycle barrier. They are populated only under
	// Config.PhaseProf, are wall-clock (hence nondeterministic), and are
	// zeroed by Canonical. CPhaseMergeNs covers the sequential per-cycle
	// stats merge; CPhaseOtherNs is the remainder of the cycle (watchdog,
	// observer probes, fault replay).
	CPhaseInjectNs
	CPhaseANs
	CPhaseBNs
	CPhaseLinkNs
	CPhaseMergeNs
	CPhaseOtherNs

	NumCounters
)

var counterNames = [NumCounters]string{
	"inj_attempts", "inj_backpressure", "injected", "delivered",
	"moves", "dynamic_moves", "link_transfers", "output_stalls",
	"wait_parked", "mail_posts", "cutthrough_moves",
	"misrouted", "fault_drops", "inj_retries", "shard_rebalances",
	"phase_inject_ns", "phase_a_ns", "phase_b_ns", "phase_link_ns",
	"phase_merge_ns", "phase_other_ns",
}

// String returns the counter's snake_case metric name.
func (c CounterID) String() string { return counterNames[c] }

// GaugeID names one instantaneous gauge, sampled at the end of each cycle.
type GaugeID uint8

// The gauges.
const (
	// GQueueOccupancy is the total number of packets currently held in
	// central queues, maintained incrementally at every push and drop.
	GQueueOccupancy GaugeID = iota
	// GInFlight is injected minus delivered: packets anywhere in the
	// network (queues, injection slots, link buffers).
	GInFlight
	// GMaxQueue is the maximum single-queue occupancy observed so far.
	GMaxQueue
	// GLiveNodes is the number of nodes on the engine's active worklist.
	// Like CMailPosts it depends on the worker count; see Canonical.
	GLiveNodes
	// GDeadLinks is the number of currently dead directed links.
	GDeadLinks
	// GDeadNodes is the number of currently dead nodes.
	GDeadNodes

	NumGauges
)

var gaugeNames = [NumGauges]string{
	"queue_occupancy", "in_flight", "max_queue", "live_nodes",
	"dead_links", "dead_nodes",
}

// String returns the gauge's snake_case metric name.
func (g GaugeID) String() string { return gaugeNames[g] }

// HistID names one fixed-bucket histogram.
type HistID uint8

// The histograms.
const (
	// HLatency is the per-packet age at delivery (cycles from network
	// entry), the distribution behind the paper's L_avg and L_max.
	HLatency HistID = iota
	// HQueueLen is the central-queue occupancy observed at each push: how
	// full queues run, the signal behind the paper's queue-size study.
	HQueueLen
	// HDropAge is the per-packet age (cycles since network entry) at the
	// moment fault handling dropped it.
	HDropAge

	NumHists
)

var histNames = [NumHists]string{"latency", "queue_len", "drop_age"}

// String returns the histogram's snake_case metric name.
func (h HistID) String() string { return histNames[h] }

// HistBuckets is the number of buckets per histogram. Bucket b holds values
// v with 2^b <= v < 2^(b+1) (bucket 0 additionally holds v <= 1, the last
// bucket holds everything larger): exponential buckets cover the whole
// latency range of a saturated large network in 16 slots.
const HistBuckets = 16

// BucketOf returns the bucket index for a value.
func BucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v)) - 1
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// BucketUpper returns the inclusive upper bound of bucket b (the Prometheus
// "le" label); the last bucket is unbounded.
func BucketUpper(b int) int64 {
	if b >= HistBuckets-1 {
		return -1 // +Inf
	}
	return int64(1)<<(b+1) - 1
}

// Snapshot is one merged, self-consistent view of every metric, taken at a
// cycle boundary. It is a fixed-size value: copy it freely.
type Snapshot struct {
	// Cycle is the number of completed cycles when the snapshot was taken.
	Cycle    int64
	Counters [NumCounters]int64
	Gauges   [NumGauges]int64
	Hists    [NumHists][HistBuckets]int64
	// HistSum and HistCount are the running sum and count of each
	// histogram's observations (the Prometheus _sum and _count series).
	HistSum   [NumHists]int64
	HistCount [NumHists]int64
}

// Counter returns one counter's value.
func (s *Snapshot) Counter(c CounterID) int64 { return s.Counters[c] }

// Gauge returns one gauge's value.
func (s *Snapshot) Gauge(g GaugeID) int64 { return s.Gauges[g] }

// HistMean returns the mean of a histogram's observations (0 when empty).
func (s *Snapshot) HistMean(h HistID) float64 {
	if s.HistCount[h] == 0 {
		return 0
	}
	return float64(s.HistSum[h]) / float64(s.HistCount[h])
}

// Canonical returns the snapshot with the worker-layout-dependent metrics
// (CMailPosts, CShardRebalances, GLiveNodes) and the wall-clock phase-time
// counters zeroed. Two runs that differ only in Config.Workers (or in
// Config.RebalanceEvery / Config.PhaseProf) produce bit-identical canonical
// snapshots.
func (s Snapshot) Canonical() Snapshot {
	s.Counters[CMailPosts] = 0
	s.Counters[CShardRebalances] = 0
	for c := CPhaseInjectNs; c <= CPhaseOtherNs; c++ {
		s.Counters[c] = 0
	}
	s.Gauges[GLiveNodes] = 0
	return s
}

// Shard is one worker's metric accumulator for the current cycle. The
// engine owns one per worker (embedded in its per-worker stats block, so
// shards inherit the engine's false-sharing padding) and folds them into
// the Core at the cycle barrier.
type Shard struct {
	Counters   [NumCounters]int64
	GaugeDelta [NumGauges]int64 // applied as += at fold time
	Hists      [NumHists][HistBuckets]int64
	HistSum    [NumHists]int64
	HistCount  [NumHists]int64
}

// Inc adds one to a counter.
func (s *Shard) Inc(c CounterID) { s.Counters[c]++ }

// Add adds n to a counter.
func (s *Shard) Add(c CounterID, n int64) { s.Counters[c] += n }

// GaugeAdd accumulates a gauge delta (e.g. +1 per push, -1 per drop).
func (s *Shard) GaugeAdd(g GaugeID, d int64) { s.GaugeDelta[g] += d }

// Observe records one histogram observation.
func (s *Shard) Observe(h HistID, v int64) {
	s.Hists[h][BucketOf(v)]++
	s.HistSum[h] += v
	s.HistCount[h]++
}

// Core is the merge point: the cumulative Snapshot owned by the run loop,
// plus a mutex-guarded published copy for concurrent readers (the /metrics
// endpoint reads while the run executes).
type Core struct {
	snap Snapshot

	mu   sync.Mutex
	last Snapshot
}

// NewCore returns an empty core.
func NewCore() *Core { return &Core{} }

// Reset clears every metric; the engines call it at the start of each run.
func (c *Core) Reset() {
	c.snap = Snapshot{}
	c.mu.Lock()
	c.last = Snapshot{}
	c.mu.Unlock()
}

// Fold adds one worker shard into the cumulative snapshot and clears it.
// Called once per worker per cycle, from the single merge goroutine.
func (c *Core) Fold(sh *Shard) {
	for i := range sh.Counters {
		c.snap.Counters[i] += sh.Counters[i]
	}
	for i := range sh.GaugeDelta {
		c.snap.Gauges[i] += sh.GaugeDelta[i]
	}
	for h := 0; h < int(NumHists); h++ {
		for b := 0; b < HistBuckets; b++ {
			c.snap.Hists[h][b] += sh.Hists[h][b]
		}
		c.snap.HistSum[h] += sh.HistSum[h]
		c.snap.HistCount[h] += sh.HistCount[h]
	}
	*sh = Shard{}
}

// AddCounter adds n to a counter directly on the merged snapshot; the
// engines use it for values they already fold per cycle (moves, deliveries)
// so the hot loop need not double-count them.
func (c *Core) AddCounter(id CounterID, n int64) { c.snap.Counters[id] += n }

// SetGauge sets a gauge to an absolute value on the merged snapshot.
func (c *Core) SetGauge(id GaugeID, v int64) { c.snap.Gauges[id] = v }

// EndCycle stamps the cycle count, publishes a copy for concurrent readers,
// and returns the cumulative snapshot. The returned pointer is owned by the
// run loop: observers may read it during their OnCycle call but must copy
// it to retain it.
func (c *Core) EndCycle(cycle int64) *Snapshot {
	c.snap.Cycle = cycle
	c.mu.Lock()
	c.last = c.snap
	c.mu.Unlock()
	return &c.snap
}

// Latest returns a copy of the most recently published snapshot. Safe to
// call from any goroutine at any time, including mid-run.
func (c *Core) Latest() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}
