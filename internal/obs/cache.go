package obs

import (
	"fmt"
	"io"
	"sync/atomic"
)

// CacheStats counts the hit/miss/eviction traffic of a content-addressed
// result store (internal/store). Unlike the simulation metrics core these
// counters describe the serving layer, not a run: they accumulate across
// requests for the lifetime of the store and are safe for concurrent use.
type CacheStats struct {
	hits      atomic.Int64
	misses    atomic.Int64
	puts      atomic.Int64
	evictions atomic.Int64
}

// Hit records a Get served from the store.
func (s *CacheStats) Hit() { s.hits.Add(1) }

// Miss records a Get that found nothing.
func (s *CacheStats) Miss() { s.misses.Add(1) }

// Put records an entry admitted to the store.
func (s *CacheStats) Put() { s.puts.Add(1) }

// Evict records an entry displaced from the in-memory tier.
func (s *CacheStats) Evict() { s.evictions.Add(1) }

// CacheCounts is one consistent-enough reading of the stats (each counter
// is read atomically; the set is not a snapshot of a single instant).
type CacheCounts struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Puts      int64 `json:"puts"`
	Evictions int64 `json:"evictions"`
}

// Counts returns the current counter values.
func (s *CacheStats) Counts() CacheCounts {
	return CacheCounts{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Puts:      s.puts.Load(),
		Evictions: s.evictions.Load(),
	}
}

// WriteProm renders the counts in the Prometheus text exposition format
// under the repro_store_ namespace; the daemon appends it to the /metrics
// page after the simulation metrics.
func (c CacheCounts) WriteProm(w io.Writer) error {
	for _, m := range []struct {
		name, help string
		v          int64
	}{
		{"repro_store_hits_total", "Store lookups served from the result cache", c.Hits},
		{"repro_store_misses_total", "Store lookups that found no entry", c.Misses},
		{"repro_store_puts_total", "Results admitted to the store", c.Puts},
		{"repro_store_evictions_total", "Entries displaced from the in-memory LRU tier", c.Evictions},
	} {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			m.name, m.help, m.name, m.name, m.v); err != nil {
			return err
		}
	}
	return nil
}
