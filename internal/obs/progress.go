package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// SweepEventKind names the progress probes of a sweep orchestrator run.
type SweepEventKind int

// The sweep progress probes: a cell starting, a cell finishing, a cell
// satisfied from the resume checkpoint, and the whole sweep completing.
const (
	SweepJobStart SweepEventKind = iota
	SweepJobDone
	SweepJobCached
	SweepDone
)

// SweepEvent is one progress event of a sweep run. It is the sweep-level
// sibling of the per-cycle Observer probes: the orchestrator emits one event
// per cell transition instead of one per simulated cycle, carrying enough of
// the cost model to render a live status line with an ETA.
type SweepEvent struct {
	Kind    SweepEventKind
	Job     string // cell id ("table9/n12"); empty for SweepDone
	Workers int    // per-simulation workers granted to the cell

	Done       int     // completed cells so far, including cached ones
	Total      int     // total cells in the sweep
	CostDone   float64 // completed estimated cost (node-cycles)
	CostTotal  float64 // total estimated cost of the sweep
	ElapsedSec float64 // wall-clock since the sweep started
	ETASec     float64 // cost-model estimate of the remaining time; <0 unknown
}

// SweepSink receives sweep progress events. Like Observer, sinks are
// read-only taps: the orchestrator's results must be identical with or
// without one attached. Events may be emitted from concurrent cell
// goroutines; implementations must be safe for parallel use.
type SweepSink interface {
	OnSweepEvent(ev SweepEvent)
}

// SweepProgress renders sweep events as live status lines. It writes at
// most one line per event, serialized by an internal mutex, and is meant to
// be pointed at stderr so the deterministic table output on stdout stays
// clean for diffing.
type SweepProgress struct {
	W io.Writer

	mu sync.Mutex
}

// NewSweepProgress returns a progress renderer writing to w.
func NewSweepProgress(w io.Writer) *SweepProgress { return &SweepProgress{W: w} }

// OnSweepEvent implements SweepSink.
func (p *SweepProgress) OnSweepEvent(ev SweepEvent) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pct := 0.0
	if ev.CostTotal > 0 {
		pct = 100 * ev.CostDone / ev.CostTotal
	}
	switch ev.Kind {
	case SweepJobStart:
		fmt.Fprintf(p.W, "[%3d/%3d %3.0f%%] start  %-24s w=%d\n",
			ev.Done, ev.Total, pct, ev.Job, ev.Workers)
	case SweepJobDone:
		fmt.Fprintf(p.W, "[%3d/%3d %3.0f%%] done   %-24s elapsed %s eta %s\n",
			ev.Done, ev.Total, pct, ev.Job, fmtSec(ev.ElapsedSec), fmtSec(ev.ETASec))
	case SweepJobCached:
		fmt.Fprintf(p.W, "[%3d/%3d %3.0f%%] cached %-24s (resumed from checkpoint)\n",
			ev.Done, ev.Total, pct, ev.Job)
	case SweepDone:
		fmt.Fprintf(p.W, "[%3d/%3d 100%%] sweep done in %s\n",
			ev.Done, ev.Total, fmtSec(ev.ElapsedSec))
	}
}

// fmtSec renders a duration in seconds compactly; negative means unknown.
func fmtSec(s float64) string {
	if s < 0 {
		return "?"
	}
	return time.Duration(s * float64(time.Second)).Round(100 * time.Millisecond).String()
}
