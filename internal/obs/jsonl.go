package obs

import (
	"encoding/json"
	"io"

	"repro/internal/core"
)

// jsonlRecord is the line schema of the JSONL time-series writer. Counter,
// gauge, and histogram names are the String() forms of the IDs; histograms
// are emitted as per-bucket counts plus sum and count (bucket b covers
// values up to BucketUpper(b)). encoding/json sorts map keys, so the output
// is byte-stable for a deterministic run.
type jsonlRecord struct {
	Cycle    int64                `json:"cycle"`
	Final    bool                 `json:"final,omitempty"`
	Counters map[string]int64     `json:"counters"`
	Gauges   map[string]int64     `json:"gauges"`
	Hists    map[string]jsonlHist `json:"hists"`
}

type jsonlHist struct {
	Buckets [HistBuckets]int64 `json:"buckets"`
	Sum     int64              `json:"sum"`
	Count   int64              `json:"count"`
}

// JSONLWriter is an Observer that writes one JSON line per sampling period
// (and a last line marked "final" at OnDone) to an io.Writer: the
// time-series artifact behind `routesim -metrics out.jsonl`. Write errors
// are sticky and reported by Err; probes after an error are no-ops.
type JSONLWriter struct {
	enc   *json.Encoder
	every int64
	err   error
	wrote int64
}

// NewJSONLWriter returns a writer sampling every `every` cycles (min 1).
func NewJSONLWriter(w io.Writer, every int64) *JSONLWriter {
	if every < 1 {
		every = 1
	}
	return &JSONLWriter{enc: json.NewEncoder(w), every: every}
}

// Err returns the first write or encode error, if any.
func (j *JSONLWriter) Err() error { return j.err }

// Lines returns the number of records written so far.
func (j *JSONLWriter) Lines() int64 { return j.wrote }

func (j *JSONLWriter) OnDeliver(core.Packet, int64) {}

func (j *JSONLWriter) OnCycle(cycle int64, snap *Snapshot) {
	if cycle%j.every == 0 {
		j.write(snap, false)
	}
}

func (j *JSONLWriter) OnDone(snap *Snapshot) {
	j.write(snap, true)
}

func (j *JSONLWriter) write(snap *Snapshot, final bool) {
	if j.err != nil {
		return
	}
	rec := jsonlRecord{
		Cycle:    snap.Cycle,
		Final:    final,
		Counters: make(map[string]int64, NumCounters),
		Gauges:   make(map[string]int64, NumGauges),
		Hists:    make(map[string]jsonlHist, NumHists),
	}
	for c := CounterID(0); c < NumCounters; c++ {
		rec.Counters[c.String()] = snap.Counters[c]
	}
	for g := GaugeID(0); g < NumGauges; g++ {
		rec.Gauges[g.String()] = snap.Gauges[g]
	}
	for h := HistID(0); h < NumHists; h++ {
		rec.Hists[h.String()] = jsonlHist{
			Buckets: snap.Hists[h],
			Sum:     snap.HistSum[h],
			Count:   snap.HistCount[h],
		}
	}
	if err := j.enc.Encode(&rec); err != nil {
		j.err = err
		return
	}
	j.wrote++
}
