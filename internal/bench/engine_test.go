package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestEngineBenchAppendReplaces pins the trajectory-file semantics: appends
// with a fresh label accumulate oldest-first, re-appending an existing label
// replaces that run in place, and the file round-trips through JSON.
func TestEngineBenchAppendReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	mk := func(label string, cps float64) EngineBenchRun {
		return EngineBenchRun{
			Label: label, Date: "2026-08-06", NumCPU: 1, GoMaxProcs: 1,
			Results: []EngineBenchResult{{Dims: 8, Nodes: 256, Workers: 1, Cycles: 500, CyclesPerSec: cps}},
		}
	}
	for _, r := range []EngineBenchRun{mk("seed", 100), mk("opt", 150), mk("opt", 200)} {
		if err := AppendEngineBench(path, r); err != nil {
			t.Fatal(err)
		}
	}
	f, err := LoadEngineBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Runs) != 2 {
		t.Fatalf("got %d runs, want 2 (same-label append must replace)", len(f.Runs))
	}
	if f.Runs[0].Label != "seed" || f.Runs[1].Label != "opt" {
		t.Fatalf("unexpected run order: %q, %q", f.Runs[0].Label, f.Runs[1].Label)
	}
	if got := f.Runs[1].Results[0].CyclesPerSec; got != 200 {
		t.Fatalf("replaced run has cycles/s %v, want 200", got)
	}
	if f.Benchmark == "" {
		t.Fatal("benchmark workload description missing")
	}
}

// TestEngineBenchLoadMissing checks that a missing file loads as an empty,
// properly-labeled trajectory (the first revision bootstraps the artifact).
func TestEngineBenchLoadMissing(t *testing.T) {
	f, err := LoadEngineBench(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Runs) != 0 || f.Benchmark == "" {
		t.Fatalf("unexpected empty-load result: %+v", f)
	}
}

// TestEngineBenchFormatSpeedup checks the speedup column against a baseline.
func TestEngineBenchFormatSpeedup(t *testing.T) {
	base := EngineBenchRun{Results: []EngineBenchResult{{Dims: 8, Workers: 1, CyclesPerSec: 100}}}
	run := EngineBenchRun{Label: "x", Results: []EngineBenchResult{{Dims: 8, Workers: 1, CyclesPerSec: 250}}}
	out := FormatEngineBench(run, &base)
	if !strings.Contains(out, "2.50x") {
		t.Fatalf("speedup column missing from:\n%s", out)
	}
}
