package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestEngineBenchAppendReplaces pins the trajectory-file semantics: appends
// with a fresh label accumulate oldest-first, re-appending an existing label
// replaces that run in place, and the file round-trips through JSON.
func TestEngineBenchAppendReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	mk := func(label string, cps float64) EngineBenchRun {
		return EngineBenchRun{
			Label: label, Date: "2026-08-06", NumCPU: 1, GoMaxProcs: 1,
			Results: []EngineBenchResult{{Dims: 8, Nodes: 256, Workers: 1, Cycles: 500, CyclesPerSec: cps}},
		}
	}
	for _, r := range []EngineBenchRun{mk("seed", 100), mk("opt", 150), mk("opt", 200)} {
		if err := AppendEngineBench(path, r); err != nil {
			t.Fatal(err)
		}
	}
	f, err := LoadEngineBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Runs) != 2 {
		t.Fatalf("got %d runs, want 2 (same-label append must replace)", len(f.Runs))
	}
	if f.Runs[0].Label != "seed" || f.Runs[1].Label != "opt" {
		t.Fatalf("unexpected run order: %q, %q", f.Runs[0].Label, f.Runs[1].Label)
	}
	if got := f.Runs[1].Results[0].CyclesPerSec; got != 200 {
		t.Fatalf("replaced run has cycles/s %v, want 200", got)
	}
	if f.Benchmark == "" {
		t.Fatal("benchmark workload description missing")
	}
}

// TestEngineBenchLoadMissing checks that a missing file loads as an empty,
// properly-labeled trajectory (the first revision bootstraps the artifact).
func TestEngineBenchLoadMissing(t *testing.T) {
	f, err := LoadEngineBench(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Runs) != 0 || f.Benchmark == "" {
		t.Fatalf("unexpected empty-load result: %+v", f)
	}
}

// TestEngineBenchFormatSpeedup checks the speedup column against a baseline.
func TestEngineBenchFormatSpeedup(t *testing.T) {
	base := EngineBenchRun{Results: []EngineBenchResult{{Dims: 8, Workers: 1, CyclesPerSec: 100}}}
	run := EngineBenchRun{Label: "x", Results: []EngineBenchResult{{Dims: 8, Workers: 1, CyclesPerSec: 250}}}
	out := FormatEngineBench(run, &base)
	if !strings.Contains(out, "2.50x") {
		t.Fatalf("speedup column missing from:\n%s", out)
	}
}

// TestEngineBenchTrafficCells smoke-runs one tiny cell per traffic model and
// checks the before/after matching semantics: NoBatch is excluded from the
// cell key (so a -nobatch baseline pairs with the fast-path run) while the
// traffic model is part of it.
func TestEngineBenchTrafficCells(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps four simulations")
	}
	for _, model := range []string{"", "mmpp", "trace", "perm"} {
		cfg := EngineBenchConfig{
			Dims: []int{4}, Workers: []int{1}, Warmup: 10, Measure: 40,
			Repeat: 1, Traffic: model,
		}
		run, err := RunEngineBench("t", cfg)
		if err != nil {
			t.Fatalf("traffic=%q: %v", model, err)
		}
		r := run.Results[0]
		if r.Cycles != 50 || r.CyclesPerSec <= 0 {
			t.Errorf("traffic=%q: implausible cell %+v", model, r)
		}
		if r.Delivered == 0 {
			t.Errorf("traffic=%q: no deliveries", model)
		}
	}

	fast := EngineBenchResult{Dims: 4, Workers: 1}
	slow := EngineBenchRun{Results: []EngineBenchResult{{Dims: 4, Workers: 1, NoBatch: true, CyclesPerSec: 1}}}
	if matchCell(&slow, &fast) == nil {
		t.Error("NoBatch baseline cell must match the fast-path cell")
	}
	mmpp := EngineBenchResult{Dims: 4, Workers: 1, Traffic: "mmpp"}
	if matchCell(&slow, &mmpp) != nil {
		t.Error("different traffic models must not match")
	}
	bern := EngineBenchResult{Dims: 4, Workers: 1, Traffic: "bernoulli"}
	if matchCell(&slow, &bern) == nil {
		t.Error("explicit \"bernoulli\" must match a legacy unlabeled cell")
	}
}

// TestRunAdversary smoke-runs the permutation search on a tiny hypercube and
// checks determinism and the shape of the result.
func TestRunAdversary(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several simulations")
	}
	cfg := AdversaryConfig{
		AlgoSpec: "hypercube-adaptive:4", Lambda: 0.4,
		Warmup: 20, Measure: 100, Iters: 4, Seed: 3,
	}
	a, err := RunAdversary(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Nodes != 16 || len(a.Sigma) != 16 || len(a.Evals) != 5 {
		t.Fatalf("unexpected shape: nodes=%d sigma=%d evals=%d", a.Nodes, len(a.Sigma), len(a.Evals))
	}
	seen := make([]bool, 16)
	for _, d := range a.Sigma {
		seen[d] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("Sigma is not a permutation: %d missing", i)
		}
	}
	if a.BestP99 < a.Evals[0].P99 {
		t.Errorf("best p99 %d below the initial permutation's %d", a.BestP99, a.Evals[0].P99)
	}
	b, err := RunAdversary(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.BestP99 != a.BestP99 || b.RandomP99 != a.RandomP99 {
		t.Errorf("search is not deterministic: %d/%d vs %d/%d", a.BestP99, a.RandomP99, b.BestP99, b.RandomP99)
	}
	if FormatAdversary(a) == "" {
		t.Error("empty report")
	}
}
