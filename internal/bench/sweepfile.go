package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// SweepBenchRun records one wall-clock measurement of a tables sweep: the
// before/after evidence for the orchestrator's speedup claims. Unlike
// EngineBenchRun this measures the whole end-to-end reproduction (job
// scheduling, worker splitting, checkpoint I/O included), so runs are only
// comparable at equal suite/table/maxn/engine and on the same host.
type SweepBenchRun struct {
	Label      string  `json:"label"`
	Date       string  `json:"date"`
	Suite      string  `json:"suite"`
	Table      string  `json:"table,omitempty"`
	MaxN       int     `json:"maxn"`
	Jobs       int     `json:"jobs"`
	Budget     int     `json:"budget"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Engine     string  `json:"engine"`
	Cells      int     `json:"cells"`
	Cached     int     `json:"cached,omitempty"`
	WallSec    float64 `json:"wall_sec"`
	BuildID    string  `json:"build_id,omitempty"`
	Notes      string  `json:"notes,omitempty"`
}

// SweepBenchFile is the BENCH_sweep.json trajectory: one record per
// measured sweep configuration, appended across revisions.
type SweepBenchFile struct {
	Benchmark string          `json:"benchmark"`
	Runs      []SweepBenchRun `json:"runs"`
}

const sweepBenchWorkload = "cmd/tables full-sweep wall clock (internal/sweep orchestrator)"

// LoadSweepBench reads a sweep trajectory file; a missing file yields an
// empty trajectory so the first run bootstraps it.
func LoadSweepBench(path string) (SweepBenchFile, error) {
	f := SweepBenchFile{Benchmark: sweepBenchWorkload}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return f, nil
	}
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("bench: %s: %w", path, err)
	}
	return f, nil
}

// AppendSweepBench appends run to the trajectory at path, replacing any
// existing run with the same label.
func AppendSweepBench(path string, run SweepBenchRun) error {
	f, err := LoadSweepBench(path)
	if err != nil {
		return err
	}
	f.Benchmark = sweepBenchWorkload
	replaced := false
	for i := range f.Runs {
		if f.Runs[i].Label == run.Label {
			f.Runs[i] = run
			replaced = true
			break
		}
	}
	if !replaced {
		f.Runs = append(f.Runs, run)
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
