// Multi-core scaling benchmark: the measurement protocol behind
// BENCH_scaling.json. Where BENCH_engine.json tracks absolute throughput
// across revisions, this file answers a different question — how throughput
// changes with the worker count on one host — so the artifact records the
// full parallel-efficiency curve (speedup vs workers=1, per worker count)
// plus the per-phase wall-clock breakdown that explains where the speedup
// stops.
//
// Regenerate with:
//
//	go run ./cmd/enginebench -scaling -label <revision>
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"repro/internal/buildid"
	"runtime"
	"time"

	"repro/internal/sim"
	"repro/internal/traffic"
)

// BuildID identifies the running binary: the embedded VCS revision
// (suffixed "+dirty" for modified trees), or "dev" when the binary carries
// no VCS metadata (go test, go run of a non-VCS tree). Recorded in every
// benchmark artifact so a measurement can be traced back to the code that
// produced it; the sweep checkpoints and the result store use the same key
// to invalidate resumes and cache entries across rebuilds. It delegates to
// internal/buildid, the shared identity every layer keys by.
func BuildID() string { return buildid.ID() }

// ScalingConfig selects one scaling measurement: a single (engine, algo,
// dims) workload swept over a list of worker counts.
type ScalingConfig struct {
	Engine  string // "buffered" (default) or "atomic"
	Algo    string // benchAlgorithm selector (default "hypercube")
	Dims    int    // per-algo size (default: largest of the engine-bench defaults)
	Workers []int  // worker counts (default 1, 2, 4, ... doubling, plus GOMAXPROCS)
	Warmup  int64  // warmup cycles per run (default 100)
	Measure int64  // measured cycles per run (default 400)
	Seed    int64  // simulation seed (default 1)
	Repeat  int    // timed repetitions per point; the fastest is kept (default 3)
	// PhaseProf additionally times each point's phases (a separate, slower
	// pass; the headline cycles/s never pays the timer overhead).
	PhaseProf bool
	// RebalanceEvery forwards sim.Config.RebalanceEvery to every point.
	RebalanceEvery int
}

// defaultScalingWorkers is the protocol's worker-count ladder: powers of two
// up to GOMAXPROCS, plus GOMAXPROCS itself when it is not a power of two.
func defaultScalingWorkers() []int {
	maxw := runtime.GOMAXPROCS(0)
	var ws []int
	for w := 1; w <= maxw; w *= 2 {
		ws = append(ws, w)
	}
	if len(ws) == 0 || ws[len(ws)-1] != maxw {
		ws = append(ws, maxw)
	}
	return ws
}

func (c *ScalingConfig) fill() {
	if c.Engine == "" {
		c.Engine = "buffered"
	}
	if c.Algo == "" {
		c.Algo = "hypercube"
	}
	if c.Dims == 0 {
		switch c.Algo {
		case "mesh", "torus":
			c.Dims = 32
		case "shuffle":
			c.Dims = 14
		case "ccc":
			c.Dims = 8
		default:
			c.Dims = 12
		}
	}
	if c.Engine == "atomic" {
		// Atomic semantics are inherently sequential (Workers is ignored), so
		// the curve has exactly one point; recording more would present copies
		// of the same measurement as a scaling curve.
		c.Workers = []int{1}
	}
	if len(c.Workers) == 0 {
		c.Workers = defaultScalingWorkers()
	}
	seen := map[int]bool{}
	uniq := c.Workers[:0]
	for _, w := range c.Workers {
		if w >= 1 && !seen[w] {
			seen[w] = true
			uniq = append(uniq, w)
		}
	}
	c.Workers = uniq
	if c.Warmup == 0 {
		c.Warmup = 100
	}
	if c.Measure == 0 {
		c.Measure = 400
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Repeat == 0 {
		c.Repeat = 3
	}
}

// PhaseBreakdown is the serialized form of sim.PhaseTimes.
type PhaseBreakdown struct {
	InjectNs int64 `json:"inject_ns"`
	PhaseANs int64 `json:"phase_a_ns"`
	PhaseBNs int64 `json:"phase_b_ns"`
	LinkNs   int64 `json:"link_ns"`
	MergeNs  int64 `json:"merge_ns"`
	OtherNs  int64 `json:"other_ns"`
	Cycles   int64 `json:"cycles"`
}

// ScalingPoint is one worker count's measurement on the curve.
type ScalingPoint struct {
	Workers      int     `json:"workers"`
	Cycles       int64   `json:"cycles,omitempty"`
	Cells        int     `json:"cells,omitempty"` // sweep records: cells completed
	ElapsedSec   float64 `json:"elapsed_sec"`
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
	PktsPerSec   float64 `json:"pkts_per_sec,omitempty"`
	CellsPerSec  float64 `json:"cells_per_sec,omitempty"` // sweep records
	// Speedup is throughput relative to the run's workers=1 point;
	// Efficiency is Speedup/Workers (1.0 = perfect linear scaling).
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
	// Phases is the per-phase wall-clock breakdown from a separate PhaseProf
	// pass (nil unless requested; the timed pass never carries the timers).
	Phases *PhaseBreakdown `json:"phases,omitempty"`
}

// ScalingRun is one recorded scaling curve.
type ScalingRun struct {
	Label string `json:"label"`
	Date  string `json:"date"`
	// Kind is "engine" (cycles/s of one simulator workload vs Workers) or
	// "sweep" (cells/s of a tables sweep vs -jobs).
	Kind           string         `json:"kind"`
	Engine         string         `json:"engine"`
	Algo           string         `json:"algo,omitempty"`
	Dims           int            `json:"dims,omitempty"`
	Nodes          int            `json:"nodes,omitempty"`
	Suite          string         `json:"suite,omitempty"` // sweep records
	MaxN           int            `json:"maxn,omitempty"`  // sweep records
	NumCPU         int            `json:"num_cpu"`
	GoMaxProcs     int            `json:"gomaxprocs"`
	GoVersion      string         `json:"go_version"`
	BuildID        string         `json:"build_id,omitempty"`
	RebalanceEvery int            `json:"rebalance_every,omitempty"`
	Warmup         int64          `json:"warmup,omitempty"`
	Measure        int64          `json:"measure,omitempty"`
	Seed           int64          `json:"seed,omitempty"`
	Note           string         `json:"note,omitempty"`
	Points         []ScalingPoint `json:"points"`
}

// ScalingFile is the BENCH_scaling.json artifact: one run per recorded
// curve, replaced in place when a curve with the same coordinates is
// re-measured under the same label.
type ScalingFile struct {
	Benchmark string       `json:"benchmark"`
	Runs      []ScalingRun `json:"runs"`
}

const scalingWorkload = "throughput vs worker count on one host: engine curves measure cycles/s of a fixed dynamic workload per sim.Config.Workers; sweep curves measure cells/s of a tables sweep per -jobs; speedup is relative to the curve's workers=1 point"

// HostStamp fills the host/build metadata every scaling record carries;
// exported for sweep-level callers (cmd/tables) that assemble their own runs.
func (r *ScalingRun) HostStamp() {
	r.Date = time.Now().UTC().Format("2006-01-02")
	r.NumCPU = runtime.NumCPU()
	r.GoMaxProcs = runtime.GOMAXPROCS(0)
	r.GoVersion = runtime.Version()
	r.BuildID = BuildID()
}

// FinishCurve derives the speedup/efficiency columns from the recorded
// throughputs, against the curve's workers=1 point (or its first point when
// no workers=1 measurement exists).
func FinishCurve(points []ScalingPoint) {
	if len(points) == 0 {
		return
	}
	base := points[0]
	for _, p := range points {
		if p.Workers == 1 {
			base = p
			break
		}
	}
	ref := base.CyclesPerSec
	for i := range points {
		p := &points[i]
		tp, rf := p.CyclesPerSec, ref
		if rf == 0 {
			tp, rf = p.CellsPerSec, base.CellsPerSec
		}
		if rf == 0 || p.Workers == 0 {
			continue
		}
		p.Speedup = tp / rf
		p.Efficiency = p.Speedup / float64(p.Workers)
	}
}

// RunScaling measures one scaling curve: each worker count is timed like an
// engine-bench cell (fastest of Repeat repetitions, metrics off), and — when
// cfg.PhaseProf asks for it — profiled once more with per-phase timers so the
// curve carries its own bottleneck explanation.
func RunScaling(label string, cfg ScalingConfig) (ScalingRun, error) {
	cfg.fill()
	algo, err := benchAlgorithm(cfg.Algo, cfg.Dims)
	if err != nil {
		return ScalingRun{}, err
	}
	nodes := algo.Topology().Nodes()
	lambda := benchLambda(cfg.Algo)
	run := ScalingRun{
		Label: label, Kind: "engine",
		Engine: cfg.Engine, Algo: cfg.Algo, Dims: cfg.Dims, Nodes: nodes,
		RebalanceEvery: cfg.RebalanceEvery,
		Warmup:         cfg.Warmup, Measure: cfg.Measure, Seed: cfg.Seed,
	}
	run.HostStamp()
	for _, workers := range cfg.Workers {
		pt := ScalingPoint{Workers: workers}
		for rep := 0; rep < cfg.Repeat; rep++ {
			eng, err := sim.NewSimulator(cfg.Engine, sim.Config{
				Algorithm:      algo,
				Seed:           cfg.Seed,
				Workers:        workers,
				RebalanceEvery: cfg.RebalanceEvery,
			})
			if err != nil {
				return run, err
			}
			src := traffic.NewBernoulliSource(traffic.Random{Nodes: nodes}, nodes, lambda, cfg.Seed+2)
			start := time.Now()
			res, err := eng.Run(nil, src, sim.DynamicPlan(cfg.Warmup, cfg.Measure))
			if err != nil {
				return run, fmt.Errorf("bench: scaling engine=%s algo=%s dims=%d workers=%d: %w",
					cfg.Engine, cfg.Algo, cfg.Dims, workers, err)
			}
			el := time.Since(start).Seconds()
			m := res.Metrics
			if rep == 0 || el < pt.ElapsedSec {
				pt.Cycles = m.Cycles
				pt.ElapsedSec = el
				pt.CyclesPerSec = float64(m.Cycles) / el
				pt.PktsPerSec = float64(m.Delivered) / el
			}
		}
		if cfg.PhaseProf {
			eng, err := sim.NewSimulator(cfg.Engine, sim.Config{
				Algorithm:      algo,
				Seed:           cfg.Seed,
				Workers:        workers,
				RebalanceEvery: cfg.RebalanceEvery,
				PhaseProf:      true,
			})
			if err != nil {
				return run, err
			}
			src := traffic.NewBernoulliSource(traffic.Random{Nodes: nodes}, nodes, lambda, cfg.Seed+2)
			if _, err := eng.Run(nil, src, sim.DynamicPlan(cfg.Warmup, cfg.Measure)); err != nil {
				return run, fmt.Errorf("bench: scaling phaseprof workers=%d: %w", workers, err)
			}
			t := eng.PhaseTimes()
			pt.Phases = &PhaseBreakdown{
				InjectNs: t.InjectNs, PhaseANs: t.PhaseANs, PhaseBNs: t.PhaseBNs,
				LinkNs: t.LinkNs, MergeNs: t.MergeNs, OtherNs: t.OtherNs,
				Cycles: t.Cycles,
			}
		}
		run.Points = append(run.Points, pt)
	}
	FinishCurve(run.Points)
	return run, nil
}

// LoadScaling reads a scaling artifact; a missing file yields an empty one
// so the first run bootstraps it.
func LoadScaling(path string) (ScalingFile, error) {
	f := ScalingFile{Benchmark: scalingWorkload}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return f, nil
	}
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("bench: %s: %w", path, err)
	}
	return f, nil
}

// sameCurve reports whether two runs describe the same curve coordinates
// (so re-measuring replaces the record instead of duplicating it).
func sameCurve(a, b *ScalingRun) bool {
	return a.Label == b.Label && a.Kind == b.Kind && a.Engine == b.Engine &&
		a.Algo == b.Algo && a.Dims == b.Dims && a.Suite == b.Suite &&
		a.RebalanceEvery == b.RebalanceEvery
}

// AppendScaling appends run to the artifact at path, replacing any existing
// run with the same curve coordinates.
func AppendScaling(path string, run ScalingRun) error {
	f, err := LoadScaling(path)
	if err != nil {
		return err
	}
	f.Benchmark = scalingWorkload
	replaced := false
	for i := range f.Runs {
		if sameCurve(&f.Runs[i], &run) {
			f.Runs[i] = run
			replaced = true
			break
		}
	}
	if !replaced {
		f.Runs = append(f.Runs, run)
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatScaling renders one curve as an aligned table, with the phase
// breakdown (as percentages of the profiled run's total) when recorded.
func FormatScaling(run ScalingRun) string {
	s := fmt.Sprintf("scaling %q kind=%s engine=%s", run.Label, run.Kind, run.Engine)
	if run.Kind == "engine" {
		s += fmt.Sprintf(" algo=%s dims=%d nodes=%d", run.Algo, run.Dims, run.Nodes)
	} else {
		s += fmt.Sprintf(" suite=%s maxn=%d", run.Suite, run.MaxN)
	}
	s += fmt.Sprintf(" (ncpu=%d gomaxprocs=%d", run.NumCPU, run.GoMaxProcs)
	if run.RebalanceEvery > 0 {
		s += fmt.Sprintf(" rebalance=%d", run.RebalanceEvery)
	}
	s += ")\n workers | throughput/s  speedup  efficiency"
	hasPhases := false
	for i := range run.Points {
		if run.Points[i].Phases != nil {
			hasPhases = true
		}
	}
	if hasPhases {
		s += " | inject% a% b% link% merge% other%"
	}
	s += "\n"
	for i := range run.Points {
		p := &run.Points[i]
		tp := p.CyclesPerSec
		if tp == 0 {
			tp = p.CellsPerSec
		}
		s += fmt.Sprintf(" %7d | %12.1f  %6.2fx  %9.2f", p.Workers, tp, p.Speedup, p.Efficiency)
		if ph := p.Phases; ph != nil {
			total := ph.InjectNs + ph.PhaseANs + ph.PhaseBNs + ph.LinkNs + ph.MergeNs + ph.OtherNs
			if total > 0 {
				pc := func(v int64) float64 { return 100 * float64(v) / float64(total) }
				s += fmt.Sprintf(" | %6.1f %4.1f %4.1f %5.1f %6.1f %6.1f",
					pc(ph.InjectNs), pc(ph.PhaseANs), pc(ph.PhaseBNs),
					pc(ph.LinkNs), pc(ph.MergeNs), pc(ph.OtherNs))
			}
		}
		s += "\n"
	}
	return s
}
