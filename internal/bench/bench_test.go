package bench

import (
	"math"
	"strings"
	"testing"
)

func TestTablesComplete(t *testing.T) {
	tables := Tables()
	if len(tables) != 12 {
		t.Fatalf("got %d experiments, want 12", len(tables))
	}
	for i, ex := range tables {
		if want := "table" + string(rune('1'+i)); i < 9 && ex.ID != want {
			t.Errorf("experiment %d id = %q, want %q", i, ex.ID, want)
		}
		if len(ex.Paper) < 5 {
			t.Errorf("%s: only %d paper rows", ex.ID, len(ex.Paper))
		}
		for _, r := range ex.Paper {
			if r.Lavg <= 0 || r.Lmax <= 0 {
				t.Errorf("%s: bad paper row %+v", ex.ID, r)
			}
			if ex.Injection == Dynamic && r.Ir <= 0 {
				t.Errorf("%s: dynamic row missing Ir: %+v", ex.ID, r)
			}
		}
	}
}

func TestFindTable(t *testing.T) {
	ex, err := FindTable("table7")
	if err != nil || ex.Pattern != Transp || ex.Injection != StaticN {
		t.Fatalf("FindTable(table7) = %+v, %v", ex, err)
	}
	if _, err := FindTable("table99"); err == nil {
		t.Fatal("FindTable accepted a bogus id")
	}
}

// TestRunStaticTables runs the four static-1 experiments at a small size and
// sanity-checks the measured values against the analytic expectations that
// also hold at n=6: complement is exactly 2n+1, the others are near their
// mean distance times two plus one.
func TestRunStaticTables(t *testing.T) {
	for _, id := range []string{"table1", "table2", "table3", "table4"} {
		ex, err := FindTable(id)
		if err != nil {
			t.Fatal(err)
		}
		row, err := ex.Run(6, Options{Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if row.Delivered != 64 {
			t.Errorf("%s: delivered %d, want 64", id, row.Delivered)
		}
		if row.Lavg < 5 || row.Lavg > 14 {
			t.Errorf("%s: implausible Lavg %.2f", id, row.Lavg)
		}
		if id == "table2" && row.Lavg != 13 {
			t.Errorf("table2: Lavg = %.2f, want exactly 2n+1 = 13", row.Lavg)
		}
	}
}

// TestRunDynamicTable smoke-tests a dynamic experiment at a small size.
func TestRunDynamicTable(t *testing.T) {
	ex, err := FindTable("table9")
	if err != nil {
		t.Fatal(err)
	}
	row, err := ex.Run(6, Options{Seed: 3, Warmup: 100, Measure: 400})
	if err != nil {
		t.Fatal(err)
	}
	if row.Ir <= 20 || row.Ir > 100 {
		t.Errorf("Ir = %.1f%% implausible", row.Ir)
	}
	if row.Lavg < 5 || row.Lavg > 30 {
		t.Errorf("Lavg = %.2f implausible", row.Lavg)
	}
}

// TestAblationVariants checks the hung and ecube variants run and that the
// adaptive scheme beats the hung scheme on complement, the paper's headline.
func TestAblationVariants(t *testing.T) {
	ex, err := FindTable("table6") // complement, n packets
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := ex.Run(6, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	hung, err := ex.Run(6, Options{Seed: 3, Algorithm: "hung"})
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Cycles >= hung.Cycles {
		t.Errorf("adaptive drained in %d cycles, hung in %d; expected a clear win", adaptive.Cycles, hung.Cycles)
	}
	if _, err := ex.Run(6, Options{Seed: 3, Algorithm: "ecube"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(6, Options{Seed: 3, Algorithm: "bogus"}); err == nil {
		t.Fatal("bogus algorithm variant accepted")
	}
}

// TestRunAllRespectsMaxDims verifies dimension filtering.
func TestRunAllRespectsMaxDims(t *testing.T) {
	ex, err := FindTable("table2")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ex.RunAll(10, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Dims != 10 {
		t.Fatalf("RunAll(10) returned %d rows", len(rows))
	}
	// Exact closed form at the published size: complement, 1 packet.
	if rows[0].Lavg != 21 || rows[0].Lmax != 21 {
		t.Errorf("table2 n=10: got %.2f/%d, want the paper's exact 21/21", rows[0].Lavg, rows[0].Lmax)
	}
	if math.Abs(rows[0].Lavg-rows[0].Paper.Lavg) > 1e-9 {
		t.Errorf("paper row not attached correctly: %+v", rows[0].Paper)
	}
}

func TestFormat(t *testing.T) {
	ex, _ := FindTable("table9")
	out := ex.Format([]Row{{Dims: 10, Nodes: 1024, Lavg: 12.3, Lmax: 31, Ir: 92, Paper: PaperRow{10, 12.10, 30, 93}}})
	for _, want := range []string{"table9", "12.30", "12.10", "Ir"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
	ex2, _ := FindTable("table1")
	out2 := ex2.Format([]Row{{Dims: 10, Nodes: 1024, Lavg: 11.0, Lmax: 19, Paper: PaperRow{10, 10.96, 19, 0}}})
	if strings.Contains(out2, "Ir") {
		t.Errorf("static table format mentions Ir:\n%s", out2)
	}
}
