// Engine throughput benchmark: the perf-trajectory harness behind
// BENCH_engine.json. Unlike the table experiments (bench.go), which report
// the paper's observables, this file measures the *simulator itself* —
// cycles per second and delivered packets per second of the buffered engine
// under the paper's λ=1 dynamic random workload — so every PR that touches
// the hot loop can show its delta against the recorded trajectory.
//
// Regenerate with:
//
//	go run ./cmd/enginebench -label <revision> -out BENCH_engine.json
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

// EngineBenchConfig selects the grid the engine benchmark sweeps.
type EngineBenchConfig struct {
	// Algo selects the routing algorithm / topology: "hypercube" (default),
	// "mesh", "torus", "shuffle", "ccc", "graph", "dragonfly", "hyperx", or
	// "fattree". Dims is interpreted per algo (hypercube/shuffle/ccc:
	// dimensions; mesh/torus: side of a square; graph: node count of a
	// random 4-regular network, seed 1; dragonfly: routers per group a,
	// with g=2a+1 groups; hyperx: side of a square lattice; fattree:
	// leaves, with spines=leaves/2).
	Algo    string
	Dims    []int  // sizes to sweep (default per Algo)
	Workers []int  // worker counts (default 1 and NumCPU, deduplicated)
	Warmup  int64  // warmup cycles per run (default 100)
	Measure int64  // measured cycles per run (default 400)
	Seed    int64  // simulation seed (default 1)
	Repeat  int    // timed repetitions per cell; the fastest is kept (default 3)
	Engine  string // simulation model: "buffered" (default) or "atomic"
	// NoMask disables the PortMaskRouter fast path (Config.DisablePortMask),
	// giving a same-binary baseline for before/after mask measurements.
	NoMask bool
	// NoTable disables the compiled next-hop route tables
	// (Config.DisableRouteTable), giving a same-binary baseline for
	// before/after route-table measurements on the graph-adaptive cells.
	NoTable bool
	// NoBatch disables the batched injection fast path
	// (Config.DisableBatchInject), giving a same-binary baseline for
	// before/after batch-injection measurements.
	NoBatch bool
	// Traffic selects the injection model the cells time: "bernoulli"
	// (default), "mmpp" (bursty, on-rate = the cell's lambda), "trace"
	// (record one bernoulli run per cell to a temporary JSONL, then time
	// its replay), or "perm" (bernoulli attempts over a fixed seeded
	// random permutation — the adversarial-search workload shape).
	Traffic string
}

func (c *EngineBenchConfig) fill() {
	if c.Algo == "" {
		c.Algo = "hypercube"
	}
	if len(c.Dims) == 0 {
		switch c.Algo {
		case "mesh", "torus":
			c.Dims = []int{16, 24, 32}
		case "shuffle":
			c.Dims = []int{10, 12, 14}
		case "ccc":
			c.Dims = []int{6, 7, 8}
		case "graph":
			c.Dims = []int{128, 256, 512}
		case "dragonfly":
			c.Dims = []int{4, 6, 8}
		case "hyperx":
			c.Dims = []int{8, 12, 16}
		case "fattree":
			c.Dims = []int{16, 24, 32}
		default:
			c.Dims = []int{8, 10, 12}
		}
	}
	if c.Engine == "" {
		c.Engine = "buffered"
	}
	if c.Engine == "atomic" {
		// Atomic semantics are inherently sequential; extra worker cells
		// would just duplicate the workers=1 measurement.
		c.Workers = []int{1}
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1, runtime.NumCPU()}
	}
	seen := map[int]bool{}
	uniq := c.Workers[:0]
	for _, w := range c.Workers {
		if w >= 1 && !seen[w] {
			seen[w] = true
			uniq = append(uniq, w)
		}
	}
	c.Workers = uniq
	if c.Warmup == 0 {
		c.Warmup = 100
	}
	if c.Measure == 0 {
		c.Measure = 400
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Repeat == 0 {
		c.Repeat = 3
	}
}

// EngineBenchResult is one cell of the sweep: one (dims, workers) pair.
// Each cell is timed twice — once with observability off and once with the
// metrics core enabled (Config.Metrics, no observer) — so the trajectory
// tracks the instrumentation overhead across revisions.
type EngineBenchResult struct {
	// Engine is the simulation model the cell timed; empty in runs recorded
	// before the benchmark covered the atomic engine (implying "buffered").
	Engine string `json:"engine,omitempty"`
	// Algo is the routing algorithm the cell timed; empty in runs recorded
	// before the benchmark covered non-hypercube topologies (implying
	// "hypercube").
	Algo string `json:"algo,omitempty"`
	// NoMask marks cells timed with the port-mask fast path disabled
	// (baseline cells of a before/after mask measurement).
	NoMask bool `json:"nomask,omitempty"`
	// NoTable marks cells timed with the compiled next-hop route tables
	// disabled (baseline cells of a before/after route-table measurement on
	// graph-adaptive topologies).
	NoTable bool `json:"notable,omitempty"`
	// NoBatch marks cells timed with the batched injection fast path
	// disabled (baseline cells of a before/after batch-injection
	// measurement).
	NoBatch bool `json:"nobatch,omitempty"`
	// Traffic is the injection model the cell timed; empty in runs recorded
	// before the benchmark covered non-Bernoulli models (implying
	// "bernoulli").
	Traffic      string  `json:"traffic,omitempty"`
	Dims         int     `json:"dims"`
	Nodes        int     `json:"nodes"`
	Workers      int     `json:"workers"`
	Cycles       int64   `json:"cycles"`
	Delivered    int64   `json:"delivered"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	PktsPerSec   float64 `json:"pkts_per_sec"`
	// CyclesPerSecObs is the same workload with the metrics core enabled
	// (0 in runs recorded before the observability layer existed).
	CyclesPerSecObs float64 `json:"cycles_per_sec_obs,omitempty"`
}

// ObsOverheadPct returns the relative slowdown of the with-metrics run in
// percent (negative = faster), or 0 when the pair was not recorded.
func (r *EngineBenchResult) ObsOverheadPct() float64 {
	if r.CyclesPerSecObs == 0 || r.CyclesPerSec == 0 {
		return 0
	}
	return 100 * (r.CyclesPerSec - r.CyclesPerSecObs) / r.CyclesPerSec
}

// EngineBenchRun is one labeled sweep (one revision of the engine).
type EngineBenchRun struct {
	Label      string `json:"label"`
	Date       string `json:"date"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	// BuildID is the VCS revision of the binary that recorded the run
	// ("dev" under go run/test of a non-VCS tree; empty in runs recorded
	// before the field existed).
	BuildID string `json:"build_id,omitempty"`
	// Note carries free-form context for cross-run comparisons (e.g. "host
	// slower than previous runs; compare against a same-day baseline").
	Note    string              `json:"note,omitempty"`
	Results []EngineBenchResult `json:"results"`
}

// EngineBenchFile is the trajectory artifact: one run appended per revision
// that touches the engine, oldest first.
type EngineBenchFile struct {
	Benchmark string           `json:"benchmark"`
	Runs      []EngineBenchRun `json:"runs"`
}

// engineBenchWorkload names the fixed workload so the artifact is
// self-describing.
const engineBenchWorkload = "dynamic random traffic, queue cap 5; per-algo injection rates: hypercube lambda=1, mesh 0.08, torus 0.2, shuffle 0.02, ccc 0.04, graph 0.05, dragonfly 0.1, hyperx 0.1, fattree 0.1 (the extended-suite rates); engine buffered or atomic per cell"

// benchAlgorithm constructs the algorithm for one cell. size follows the
// algo's natural parameter: dimensions for hypercube/shuffle/ccc, the side
// of a square for mesh/torus.
func benchAlgorithm(algo string, size int) (core.Algorithm, error) {
	switch algo {
	case "hypercube":
		return core.NewHypercubeAdaptive(size), nil
	case "mesh":
		return core.NewMeshAdaptive(size, size), nil
	case "torus":
		return core.NewTorusAdaptive(size, size), nil
	case "shuffle":
		return core.NewShuffleExchangeAdaptive(size), nil
	case "ccc":
		return core.NewCCCAdaptive(size), nil
	case "graph":
		t, err := topology.NewRandomRegular(size, 4, 1)
		if err != nil {
			return nil, err
		}
		return core.NewGraphAdaptive(t)
	case "dragonfly":
		t, err := topology.NewDragonfly(size, 2*size+1)
		if err != nil {
			return nil, err
		}
		return core.NewGraphAdaptive(t)
	case "hyperx":
		t, err := topology.NewHyperX(size, size)
		if err != nil {
			return nil, err
		}
		return core.NewGraphAdaptive(t)
	case "fattree":
		t, err := topology.NewFatTree(size, size/2)
		if err != nil {
			return nil, err
		}
		return core.NewGraphAdaptive(t)
	}
	return nil, fmt.Errorf("bench: unknown algo %q (want hypercube, mesh, torus, shuffle, ccc, graph, dragonfly, hyperx, or fattree)", algo)
}

// benchLambda is the per-node injection probability for one cell — the
// extended-suite rates, so the benchmark load matches what the sweep
// wall-clock actually pays (and stays below each topology's saturation
// point; λ=1 would saturate or even deadlock-abort the weaker networks).
func benchLambda(algo string) float64 {
	switch algo {
	case "mesh":
		return 0.08
	case "torus":
		return 0.2
	case "shuffle":
		return 0.02
	case "ccc":
		return 0.04
	case "graph":
		return 0.05
	case "dragonfly":
		return 0.1
	case "hyperx":
		return 0.1
	case "fattree":
		return 0.1
	}
	return 1.0
}

// RunEngineBench executes the sweep and returns the labeled run.
func RunEngineBench(label string, cfg EngineBenchConfig) (EngineBenchRun, error) {
	cfg.fill()
	run := EngineBenchRun{
		Label:      label,
		Date:       time.Now().UTC().Format("2006-01-02"),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		BuildID:    BuildID(),
	}
	for _, dims := range cfg.Dims {
		for _, workers := range cfg.Workers {
			res, err := engineBenchCell(dims, workers, cfg)
			if err != nil {
				return run, fmt.Errorf("bench: engine=%s algo=%s dims=%d workers=%d: %w", cfg.Engine, cfg.Algo, dims, workers, err)
			}
			run.Results = append(run.Results, res)
		}
	}
	return run, nil
}

// engineBenchCell times one (dims, workers) cell, keeping the fastest of
// cfg.Repeat repetitions. The simulation itself is deterministic, so
// repetitions only shake out scheduling and cache noise. The cell is timed
// again with the metrics core enabled to record instrumentation overhead.
func engineBenchCell(dims, workers int, cfg EngineBenchConfig) (EngineBenchResult, error) {
	algo, err := benchAlgorithm(cfg.Algo, dims)
	if err != nil {
		return EngineBenchResult{}, err
	}
	nodes := algo.Topology().Nodes()
	lambda := benchLambda(cfg.Algo)
	newSource, cleanup, err := benchSource(cfg, algo, nodes, lambda, workers)
	if err != nil {
		return EngineBenchResult{}, err
	}
	defer cleanup()
	best := EngineBenchResult{
		Engine: cfg.Engine, Algo: cfg.Algo, NoMask: cfg.NoMask, NoTable: cfg.NoTable,
		NoBatch: cfg.NoBatch, Traffic: cfg.Traffic,
		Dims: dims, Nodes: nodes, Workers: workers,
	}
	for _, withObs := range []bool{false, true} {
		eng, err := sim.NewSimulator(cfg.Engine, sim.Config{
			Algorithm:          algo,
			Seed:               cfg.Seed,
			Workers:            workers,
			Metrics:            withObs,
			DisablePortMask:    cfg.NoMask,
			DisableRouteTable:  cfg.NoTable,
			DisableBatchInject: cfg.NoBatch,
		})
		if err != nil {
			return EngineBenchResult{}, err
		}
		for rep := 0; rep < cfg.Repeat; rep++ {
			src, err := newSource()
			if err != nil {
				return EngineBenchResult{}, err
			}
			start := time.Now()
			res, err := eng.Run(nil, src, sim.DynamicPlan(cfg.Warmup, cfg.Measure))
			if err != nil {
				return EngineBenchResult{}, err
			}
			m := res.Metrics
			el := time.Since(start).Seconds()
			if withObs {
				if cps := float64(m.Cycles) / el; rep == 0 || cps > best.CyclesPerSecObs {
					best.CyclesPerSecObs = cps
				}
			} else if rep == 0 || el < best.ElapsedSec {
				best.Cycles = m.Cycles
				best.Delivered = m.Delivered
				best.ElapsedSec = el
				best.CyclesPerSec = float64(m.Cycles) / el
				best.PktsPerSec = float64(m.Delivered) / el
			}
		}
	}
	return best, nil
}

// benchSource returns a factory producing a fresh, deterministic traffic
// source per repetition for cfg.Traffic, plus a cleanup for any artifacts.
// The "trace" model pays its recording cost once here, outside the timed
// region: a bernoulli run of the same shape is recorded to a temporary
// JSONL, and every repetition times a replay of that file.
func benchSource(cfg EngineBenchConfig, algo core.Algorithm, nodes int, lambda float64, workers int) (func() (sim.TrafficSource, error), func(), error) {
	pat := traffic.Pattern(traffic.Random{Nodes: nodes})
	nop := func() {}
	switch cfg.Traffic {
	case "", "bernoulli":
		return func() (sim.TrafficSource, error) {
			return traffic.NewBernoulliSource(pat, nodes, lambda, cfg.Seed+2), nil
		}, nop, nil
	case "mmpp":
		return func() (sim.TrafficSource, error) {
			return traffic.NewMMPP(pat, nodes, lambda, 0.05*lambda, 0.1, 0.1, cfg.Seed+2), nil
		}, nop, nil
	case "perm":
		sigma := make([]int32, nodes)
		rng := xrand.New(cfg.Seed+3, 0)
		rng.Perm(sigma)
		perm := &traffic.Permutation{Label: "bench-perm", Sigma: sigma}
		return func() (sim.TrafficSource, error) {
			return traffic.NewBernoulliSource(perm, nodes, lambda, cfg.Seed+2), nil
		}, nop, nil
	case "trace":
		f, err := os.CreateTemp("", "enginebench-*.jsonl")
		if err != nil {
			return nil, nop, err
		}
		path := f.Name()
		cleanup := func() { os.Remove(path) }
		rec := &traffic.RecordingSource{
			Inner: traffic.NewBernoulliSource(pat, nodes, lambda, cfg.Seed+2),
			Cap:   1,
			W:     f,
		}
		eng, err := sim.NewSimulator(cfg.Engine, sim.Config{Algorithm: algo, Seed: cfg.Seed, Workers: workers})
		if err == nil {
			_, err = eng.Run(nil, rec, sim.DynamicPlan(cfg.Warmup, cfg.Measure))
		}
		if err == nil {
			err = rec.Flush()
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			cleanup()
			return nil, nop, err
		}
		return func() (sim.TrafficSource, error) {
			tf, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			return traffic.NewTraceSource(tf, nodes), nil
		}, cleanup, nil
	}
	return nil, nop, fmt.Errorf("bench: unknown traffic model %q (want bernoulli, mmpp, trace, or perm)", cfg.Traffic)
}

// LoadEngineBench reads a trajectory file; a missing file yields an empty
// trajectory so the first run bootstraps it.
func LoadEngineBench(path string) (EngineBenchFile, error) {
	f := EngineBenchFile{Benchmark: engineBenchWorkload}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return f, nil
	}
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("bench: %s: %w", path, err)
	}
	return f, nil
}

// AppendEngineBench appends run to the trajectory at path, replacing any
// existing run with the same label (so re-running a revision updates it in
// place rather than duplicating the entry).
func AppendEngineBench(path string, run EngineBenchRun) error {
	f, err := LoadEngineBench(path)
	if err != nil {
		return err
	}
	f.Benchmark = engineBenchWorkload
	replaced := false
	for i := range f.Runs {
		if f.Runs[i].Label == run.Label {
			f.Runs[i] = run
			replaced = true
			break
		}
	}
	if !replaced {
		f.Runs = append(f.Runs, run)
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// engineOf normalizes the engine name of a recorded cell: cells from before
// the benchmark covered the atomic engine carry no name and mean "buffered".
func engineOf(r *EngineBenchResult) string {
	if r.Engine == "" {
		return "buffered"
	}
	return r.Engine
}

// algoOf normalizes the algorithm name of a recorded cell: cells from before
// the benchmark covered non-hypercube topologies carry no name and mean
// "hypercube".
func algoOf(r *EngineBenchResult) string {
	if r.Algo == "" {
		return "hypercube"
	}
	return r.Algo
}

// trafficOf normalizes the traffic model of a recorded cell: cells from
// before the benchmark covered non-Bernoulli models carry no name and mean
// "bernoulli".
func trafficOf(r *EngineBenchResult) string {
	if r.Traffic == "" {
		return "bernoulli"
	}
	return r.Traffic
}

// matchCell returns the cell of run with the same (engine, algo, traffic,
// dims, workers) coordinates as r, or nil. NoMask, NoTable and NoBatch are
// deliberately not part of the key: a fast-path run compared against a
// -nomask, -notable or -nobatch baseline run is exactly the before/after
// measurement those flags exist for.
func matchCell(run *EngineBenchRun, r *EngineBenchResult) *EngineBenchResult {
	for i := range run.Results {
		b := &run.Results[i]
		if engineOf(b) == engineOf(r) && algoOf(b) == algoOf(r) && trafficOf(b) == trafficOf(r) &&
			b.Dims == r.Dims && b.Workers == r.Workers {
			return b
		}
	}
	return nil
}

// FormatEngineBench renders a run as an aligned table, with per-cell
// speedups against a baseline run when one is supplied.
func FormatEngineBench(run EngineBenchRun, baseline *EngineBenchRun) string {
	s := fmt.Sprintf("engine bench %q (%s, ncpu=%d)\n", run.Label, run.Date, run.NumCPU)
	s += "   engine      algo   traffic dims   nodes workers |   cycles/s     pkts/s  obs-ovh"
	if baseline != nil {
		s += " | vs " + baseline.Label
	}
	s += "\n"
	for i := range run.Results {
		r := &run.Results[i]
		s += fmt.Sprintf(" %8s %9s %9s   %2d %7d %7d | %10.1f %10.1f  %+6.1f%%",
			engineOf(r), algoOf(r), trafficOf(r), r.Dims, r.Nodes, r.Workers, r.CyclesPerSec, r.PktsPerSec, r.ObsOverheadPct())
		if baseline != nil {
			if b := matchCell(baseline, r); b != nil && b.CyclesPerSec > 0 {
				s += fmt.Sprintf(" | %5.2fx", r.CyclesPerSec/b.CyclesPerSec)
			}
		}
		s += "\n"
	}
	return s
}

// EngineBenchRegression is one cell of a trajectory comparison whose
// throughput fell below the tolerated fraction of the baseline.
type EngineBenchRegression struct {
	Engine       string
	Algo         string
	Dims         int
	Workers      int
	BaselineCPS  float64
	CurrentCPS   float64
	RelativeLoss float64 // fraction of baseline throughput lost (0.10 = -10%)
}

func (r EngineBenchRegression) String() string {
	return fmt.Sprintf("%s %s dims=%d workers=%d: %.1f -> %.1f cycles/s (%.1f%% regression)",
		r.Engine, r.Algo, r.Dims, r.Workers, r.BaselineCPS, r.CurrentCPS, 100*r.RelativeLoss)
}

// CompareEngineBench compares the matching cells of two runs and returns the
// cells of cur that regressed by more than tolerance (a fraction: 0.10
// tolerates a 10% slowdown). Cells without a matching baseline coordinate
// are skipped; the comparison gates the CI "sequential path unchanged"
// criterion, so only cycles/s (not the noisier obs pair) is judged.
func CompareEngineBench(base, cur EngineBenchRun, tolerance float64) []EngineBenchRegression {
	var regs []EngineBenchRegression
	for i := range cur.Results {
		r := &cur.Results[i]
		b := matchCell(&base, r)
		if b == nil || b.CyclesPerSec <= 0 || r.CyclesPerSec <= 0 {
			continue
		}
		loss := (b.CyclesPerSec - r.CyclesPerSec) / b.CyclesPerSec
		if loss > tolerance {
			regs = append(regs, EngineBenchRegression{
				Engine:       engineOf(r),
				Algo:         algoOf(r),
				Dims:         r.Dims,
				Workers:      r.Workers,
				BaselineCPS:  b.CyclesPerSec,
				CurrentCPS:   r.CyclesPerSec,
				RelativeLoss: loss,
			})
		}
	}
	return regs
}
