package bench

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/spec"
)

// Extended is one experiment of the extended suite: the measurements the
// paper announced but never published ("Simulations on higher-dimensional
// hypercubes and other topologies will be reported soon", end of Section 1).
// Same methodology as Tables 1-12 — the buffered node model, queue capacity
// 5, static 1/n-packet and dynamic Bernoulli injection — applied to the
// paper's other networks.
type Extended struct {
	ID        string
	Title     string
	SizeLabel string // what Sizes means: "side" or "dims"
	Sizes     []int
	Injection InjectionKind
	Lambda    float64 // dynamic runs: per-topology rate chosen below saturation collapse
	Algo      func(size int) core.Algorithm
	// Pattern is a spec-grammar pattern name ("random", "mesh-transpose");
	// the run path resolves it against the algorithm's topology, exactly as
	// a POSTed RunSpec would.
	Pattern string
	// PerNode overrides the static-N packet count (0 = the size itself,
	// matching the paper's "n packets" convention).
	PerNode func(size int) int
}

// ExtendedSuite returns the extended experiments: 2-D meshes, 2-D tori,
// shuffle-exchanges and cube-connected cycles under the Section 7
// methodology. Dynamic rates are fixed per topology at roughly 60-80% of
// the uniform-traffic saturation point, where latency and the effective
// injection rate are both informative (λ=1 drives the low-degree networks
// straight into the saturated regime studied separately in EXPERIMENTS.md).
func ExtendedSuite() []Extended {
	meshAlgo := func(side int) core.Algorithm { return core.NewMeshAdaptive(side, side) }
	torusAlgo := func(side int) core.Algorithm { return core.NewTorusAdaptive(side, side) }
	shuffleAlgo := func(dims int) core.Algorithm { return core.NewShuffleExchangeAdaptive(dims) }
	cccAlgo := func(dims int) core.Algorithm { return core.NewCCCAdaptive(dims) }
	return []Extended{
		{
			ID: "ext-mesh-random-n", Title: "Mesh, random, n packets (n = side)",
			SizeLabel: "side", Sizes: []int{8, 16, 24, 32}, Injection: StaticN,
			Algo: meshAlgo, Pattern: "random",
		},
		{
			ID: "ext-mesh-transpose-n", Title: "Mesh, matrix transpose, n packets",
			SizeLabel: "side", Sizes: []int{8, 16, 24, 32}, Injection: StaticN,
			Algo: meshAlgo, Pattern: "mesh-transpose",
		},
		{
			ID: "ext-mesh-random-dyn", Title: "Mesh, random, dynamic lambda=0.08",
			SizeLabel: "side", Sizes: []int{8, 16, 24}, Injection: Dynamic, Lambda: 0.08,
			Algo: meshAlgo, Pattern: "random",
		},
		{
			ID: "ext-torus-random-n", Title: "Torus, random, n packets",
			SizeLabel: "side", Sizes: []int{8, 16, 24}, Injection: StaticN,
			Algo: torusAlgo, Pattern: "random",
		},
		{
			ID: "ext-torus-random-dyn", Title: "Torus, random, dynamic lambda=0.2",
			SizeLabel: "side", Sizes: []int{8, 16, 24}, Injection: Dynamic, Lambda: 0.2,
			Algo: torusAlgo, Pattern: "random",
		},
		{
			ID: "ext-shuffle-random-n", Title: "Shuffle-exchange, random, n packets (n = dims)",
			SizeLabel: "dims", Sizes: []int{8, 10, 12}, Injection: StaticN,
			Algo: shuffleAlgo, Pattern: "random",
		},
		{
			ID: "ext-shuffle-random-dyn", Title: "Shuffle-exchange, random, dynamic lambda=0.02",
			SizeLabel: "dims", Sizes: []int{8, 10, 12}, Injection: Dynamic, Lambda: 0.02,
			Algo: shuffleAlgo, Pattern: "random",
		},
		{
			ID: "ext-ccc-random-n", Title: "Cube-connected cycles, random, n packets (n = order)",
			SizeLabel: "dims", Sizes: []int{5, 6, 7, 8}, Injection: StaticN,
			Algo: cccAlgo, Pattern: "random",
		},
		{
			ID: "ext-ccc-random-dyn", Title: "Cube-connected cycles, random, dynamic lambda=0.04",
			SizeLabel: "dims", Sizes: []int{5, 6, 7}, Injection: Dynamic, Lambda: 0.04,
			Algo: cccAlgo, Pattern: "random",
		},
	}
}

// FindExtended returns the extended experiment with the given id.
func FindExtended(id string) (Extended, error) {
	for _, ex := range ExtendedSuite() {
		if ex.ID == id {
			return ex, nil
		}
	}
	return Extended{}, fmt.Errorf("bench: unknown extended experiment %q", id)
}

// Cell returns orchestration facts about the cell at the given size; see
// (Experiment).Cell.
func (ex Extended) Cell(size int, opt Options) (nodes int, parallelizable bool, err error) {
	opt.fill()
	a := ex.Algo(size)
	return a.Topology().Nodes(), !a.Props().Credits && opt.Engine != "atomic", nil
}

// PacketsPerNode returns the static-N injection count for the size.
func (ex Extended) PacketsPerNode(size int) int {
	if ex.PerNode != nil {
		return ex.PerNode(size)
	}
	return size
}

// Run executes one row of the extended experiment.
func (ex Extended) Run(size int, opt Options) (Row, error) {
	return ex.RunCtx(nil, size, opt)
}

// Spec translates one extended-suite cell into the canonical exec.RunSpec;
// see (Experiment).Spec. The algorithm spec string is recovered from the
// constructed algorithm via spec.Format, so the cell and its spec always
// agree.
func (ex Extended) Spec(size int, opt Options) (exec.RunSpec, error) {
	opt.fill()
	algoSpec, err := spec.Format(ex.Algo(size))
	if err != nil {
		return exec.RunSpec{}, fmt.Errorf("bench: %s %s=%d: %w", ex.ID, ex.SizeLabel, size, err)
	}
	s := exec.RunSpec{
		V:              exec.SpecVersion,
		Algo:           algoSpec,
		Pattern:        ex.Pattern,
		Engine:         opt.Engine,
		Policy:         opt.Policy.String(),
		Seed:           opt.Seed,
		QueueCap:       opt.QueueCap,
		Workers:        opt.Workers,
		RebalanceEvery: opt.RebalanceEvery,
	}
	switch ex.Injection {
	case Static1:
		s.Inject, s.Packets = "static", 1
	case StaticN:
		s.Inject, s.Packets = "static", ex.PacketsPerNode(size)
	case Dynamic:
		s.Inject, s.Lambda, s.Warmup, s.Measure = "dynamic", ex.Lambda, opt.Warmup, opt.Measure
		s.Traffic = opt.Traffic
	default:
		return exec.RunSpec{}, fmt.Errorf("bench: unknown injection %q", ex.Injection)
	}
	return s, nil
}

// RunCtx is Run with cancellation; see (Experiment).RunCtx. Like the
// published tables, extended cells execute through the canonical
// exec.RunSpec path.
func (ex Extended) RunCtx(ctx context.Context, size int, opt Options) (Row, error) {
	opt.fill()
	s, err := ex.Spec(size, opt)
	if err != nil {
		return Row{}, err
	}
	res, err := exec.Run(ctx, s, nil)
	if err != nil {
		return Row{}, err
	}
	m := res.Metrics
	return Row{
		Dims:      size,
		Nodes:     ex.Algo(size).Topology().Nodes(),
		Lavg:      m.AvgLatency(),
		Lmax:      m.LatencyMax,
		Ir:        100 * m.InjectionRate(),
		Cycles:    m.Cycles,
		Delivered: m.Delivered,
	}, nil
}

// RunAll executes every size up to maxSize (0 = all).
func (ex Extended) RunAll(maxSize int, opt Options) ([]Row, error) {
	var rows []Row
	for _, s := range ex.Sizes {
		if maxSize > 0 && s > maxSize {
			continue
		}
		r, err := ex.Run(s, opt)
		if err != nil {
			return rows, fmt.Errorf("%s %s=%d: %w", ex.ID, ex.SizeLabel, s, err)
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// Format renders the measured rows.
func (ex Extended) Format(rows []Row) string {
	s := fmt.Sprintf("%s: %s\n", ex.ID, ex.Title)
	if ex.Injection == Dynamic {
		s += fmt.Sprintf("  %4s      N |   Lavg   Lmax  Ir%%\n", ex.SizeLabel)
		for _, r := range rows {
			s += fmt.Sprintf("  %4d %6d | %6.2f %6d  %3.0f\n", r.Dims, r.Nodes, r.Lavg, r.Lmax, r.Ir)
		}
	} else {
		s += fmt.Sprintf("  %4s      N |   Lavg   Lmax   cycles\n", ex.SizeLabel)
		for _, r := range rows {
			s += fmt.Sprintf("  %4d %6d | %6.2f %6d %8d\n", r.Dims, r.Nodes, r.Lavg, r.Lmax, r.Cycles)
		}
	}
	return s
}
