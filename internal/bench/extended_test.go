package bench

import (
	"strings"
	"testing"
)

func TestExtendedSuiteWellFormed(t *testing.T) {
	suite := ExtendedSuite()
	if len(suite) < 8 {
		t.Fatalf("extended suite has only %d experiments", len(suite))
	}
	seen := map[string]bool{}
	for _, ex := range suite {
		if !strings.HasPrefix(ex.ID, "ext-") {
			t.Errorf("%s: extended ids must start with ext-", ex.ID)
		}
		if seen[ex.ID] {
			t.Errorf("duplicate id %s", ex.ID)
		}
		seen[ex.ID] = true
		if len(ex.Sizes) == 0 || ex.Algo == nil || ex.Pattern == "" {
			t.Errorf("%s: incomplete definition", ex.ID)
		}
		if ex.Injection == Dynamic && (ex.Lambda <= 0 || ex.Lambda > 1) {
			t.Errorf("%s: bad lambda %v", ex.ID, ex.Lambda)
		}
	}
}

func TestFindExtended(t *testing.T) {
	ex, err := FindExtended("ext-torus-random-n")
	if err != nil || ex.Injection != StaticN {
		t.Fatalf("FindExtended = %+v, %v", ex, err)
	}
	if _, err := FindExtended("ext-nope"); err == nil {
		t.Fatal("bogus extended id accepted")
	}
}

func TestExtendedRunSmall(t *testing.T) {
	// Static: smallest size of each topology drains completely.
	for _, id := range []string{"ext-mesh-random-n", "ext-torus-random-n", "ext-shuffle-random-n", "ext-ccc-random-n"} {
		ex, err := FindExtended(id)
		if err != nil {
			t.Fatal(err)
		}
		size := ex.Sizes[0]
		row, err := ex.Run(size, Options{Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if row.Delivered != int64(row.Nodes*size) {
			t.Errorf("%s: delivered %d, want %d", id, row.Delivered, row.Nodes*size)
		}
		if row.Lavg <= 0 {
			t.Errorf("%s: Lavg = %v", id, row.Lavg)
		}
	}
	// Dynamic: a short run produces sane observables.
	ex, err := FindExtended("ext-torus-random-dyn")
	if err != nil {
		t.Fatal(err)
	}
	row, err := ex.Run(8, Options{Seed: 3, Warmup: 100, Measure: 300})
	if err != nil {
		t.Fatal(err)
	}
	if row.Ir <= 10 || row.Ir > 100 {
		t.Errorf("Ir = %.1f implausible", row.Ir)
	}
}

func TestExtendedFormat(t *testing.T) {
	ex, _ := FindExtended("ext-mesh-random-dyn")
	out := ex.Format([]Row{{Dims: 8, Nodes: 64, Lavg: 12.5, Lmax: 40, Ir: 97}})
	for _, want := range []string{"ext-mesh-random-dyn", "12.50", "Ir"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
	ex2, _ := FindExtended("ext-mesh-random-n")
	out2 := ex2.Format([]Row{{Dims: 8, Nodes: 64, Lavg: 12.5, Lmax: 40, Cycles: 99}})
	if !strings.Contains(out2, "cycles") || strings.Contains(out2, "Ir") {
		t.Errorf("static format wrong:\n%s", out2)
	}
}

func TestExtendedRunAllRespectsMax(t *testing.T) {
	ex, _ := FindExtended("ext-ccc-random-n")
	rows, err := ex.RunAll(5, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Dims != 5 {
		t.Fatalf("RunAll(5) returned %d rows", len(rows))
	}
}
