// Package bench is the experiment harness that regenerates the paper's
// evaluation (Section 7): one Experiment per published table, carrying the
// paper's reported numbers so runs print paper-vs-measured side by side.
//
// All twelve tables simulate the fully-adaptive hypercube algorithm with
// injection queue size 1 and central queue capacity 5, across hypercube
// dimensions 10-14 (1K-16K nodes); Table 12 additionally reports n=9.
// Static experiments inject 1 or n packets per node and drain; dynamic
// experiments run a Bernoulli λ=1 process and measure the steady state.
package bench

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/sim"
)

// PatternKind names the four communication patterns of Section 7.1.
type PatternKind string

// The paper's communication patterns.
const (
	Random  PatternKind = "random"
	Compl   PatternKind = "complement"
	Transp  PatternKind = "transpose"
	Leveled PatternKind = "leveled"
)

// InjectionKind distinguishes the injection models of Section 7.1.
type InjectionKind string

// Injection models: static with 1 packet per node, static with n packets
// per node, and dynamic Bernoulli λ=1.
const (
	Static1 InjectionKind = "static-1"
	StaticN InjectionKind = "static-n"
	Dynamic InjectionKind = "dynamic"
)

// PaperRow is one row of a published table.
type PaperRow struct {
	Dims int     // hypercube dimension n
	Lavg float64 // published average latency
	Lmax int64   // published maximum latency
	Ir   float64 // published effective injection rate in percent (dynamic only)
}

// Experiment describes one table of the paper.
type Experiment struct {
	ID        string // "table1" ... "table12"
	Title     string // the paper's caption
	Pattern   PatternKind
	Injection InjectionKind
	Paper     []PaperRow
}

// Row is one measured row, paired with the paper's values.
type Row struct {
	Dims      int
	Nodes     int
	Lavg      float64
	Lmax      int64
	Ir        float64 // percent; meaningful only for dynamic experiments
	Cycles    int64
	Delivered int64
	Paper     PaperRow
}

// Options tunes a run. The zero value reproduces the paper's setup.
type Options struct {
	Seed     int64
	QueueCap int        // default 5 (the paper's value)
	Policy   sim.Policy // default PolicyFirstFree (the paper's fill order)
	Warmup   int64      // dynamic runs: warmup cycles (default 500)
	Measure  int64      // dynamic runs: measured cycles (default 1500)
	Workers  int
	// Algorithm overrides the fully-adaptive scheme for ablations:
	// "adaptive" (default), "hung", "ecube".
	Algorithm string
	// Engine selects the simulation model: "buffered" (default, the paper's
	// node model) or "atomic" (the Section 2 reference model).
	Engine string
	// RebalanceEvery forwards sim.Config.RebalanceEvery: occupancy-weighted
	// shard re-cuts every N cycles (0 = off; only meaningful with Workers > 1
	// on the buffered engine). Results are identical either way; the knob
	// only trades re-cut cost against better load balance.
	RebalanceEvery int
	// Traffic overrides the injection model of dynamic cells for ablations:
	// a RunSpec traffic spec such as "mmpp" or "onoff:hi=0.9,lo=0.1" (empty
	// = the paper's Bernoulli process). Static cells ignore it.
	Traffic string
}

// Filled returns the options with unset fields replaced by the paper's
// defaults — the exported form of the fill step, for callers (the sweep
// orchestrator) that need the effective values for cost estimates and
// checkpoint fingerprints.
func (o Options) Filled() Options {
	o.fill()
	return o
}

func (o *Options) fill() {
	if o.QueueCap == 0 {
		o.QueueCap = 5
	}
	if o.Warmup == 0 {
		o.Warmup = 500
	}
	if o.Measure == 0 {
		o.Measure = 1500
	}
	if o.Algorithm == "" {
		o.Algorithm = "adaptive"
	}
}

// Tables returns the twelve experiments of Section 7 with the paper's
// published values.
func Tables() []Experiment {
	return []Experiment{
		{
			ID: "table1", Title: "Random Routing, 1 packet", Pattern: Random, Injection: Static1,
			Paper: []PaperRow{{10, 10.96, 19, 0}, {11, 12.09, 21, 0}, {12, 13.08, 25, 0}, {13, 14.03, 27, 0}, {14, 15.04, 29, 0}},
		},
		{
			ID: "table2", Title: "Complement, 1 packet", Pattern: Compl, Injection: Static1,
			Paper: []PaperRow{{10, 21, 21, 0}, {11, 23, 23, 0}, {12, 25, 25, 0}, {13, 27, 27, 0}, {14, 29, 29, 0}},
		},
		{
			ID: "table3", Title: "Transpose, 1 packet", Pattern: Transp, Injection: Static1,
			Paper: []PaperRow{{10, 11.09, 21, 0}, {11, 11.09, 21, 0}, {12, 13.13, 25, 0}, {13, 13.13, 25, 0}, {14, 15.23, 29, 0}},
		},
		{
			ID: "table4", Title: "Leveled Permutation, 1 packet", Pattern: Leveled, Injection: Static1,
			Paper: []PaperRow{{10, 10.10, 21, 0}, {11, 10.98, 21, 0}, {12, 12.06, 25, 0}, {13, 13.07, 25, 0}, {14, 14.03, 29, 0}},
		},
		{
			ID: "table5", Title: "Random Routing, n packets", Pattern: Random, Injection: StaticN,
			Paper: []PaperRow{{10, 11.33, 22, 0}, {11, 12.52, 25, 0}, {12, 13.76, 27, 0}, {13, 15.02, 30, 0}, {14, 16.54, 32, 0}},
		},
		{
			ID: "table6", Title: "Complement, n packets", Pattern: Compl, Injection: StaticN,
			Paper: []PaperRow{{10, 21, 21, 0}, {11, 24.99, 30, 0}, {12, 28.61, 35, 0}, {13, 32.74, 39, 0}, {14, 36.23, 44, 0}},
		},
		{
			ID: "table7", Title: "Transpose, n packets", Pattern: Transp, Injection: StaticN,
			Paper: []PaperRow{{10, 12.27, 26, 0}, {11, 12.40, 32, 0}, {12, 16.01, 37, 0}, {13, 16.22, 36, 0}, {14, 20.49, 43, 0}},
		},
		{
			ID: "table8", Title: "Leveled Permutation, n packets", Pattern: Leveled, Injection: StaticN,
			Paper: []PaperRow{{10, 10.78, 23, 0}, {11, 11.77, 25, 0}, {12, 13.17, 28, 0}, {13, 14.60, 32, 0}, {14, 16.03, 37, 0}},
		},
		{
			ID: "table9", Title: "Random Routing, lambda=1", Pattern: Random, Injection: Dynamic,
			Paper: []PaperRow{{10, 12.10, 30, 93}, {11, 13.47, 35, 89}, {12, 15.01, 37, 85}, {13, 16.58, 44, 81}, {14, 18.30, 49, 76}},
		},
		{
			ID: "table10", Title: "Complement, lambda=1", Pattern: Compl, Injection: Dynamic,
			Paper: []PaperRow{{10, 33.32, 52, 55}, {11, 39.29, 58, 49}, {12, 45.60, 68, 45}, {13, 52.87, 79, 41}, {14, 60.70, 90, 38}},
		},
		{
			ID: "table11", Title: "Transpose, lambda=1", Pattern: Transp, Injection: Dynamic,
			Paper: []PaperRow{{10, 14.67, 36, 83}, {11, 14.67, 36, 83}, {12, 15.78, 49, 73}, {13, 20.31, 54, 71}, {14, 27.33, 66, 61}},
		},
		{
			ID: "table12", Title: "Leveled Permutation, lambda=1", Pattern: Leveled, Injection: Dynamic,
			Paper: []PaperRow{{9, 11.28, 37, 94}, {10, 12.47, 43, 91}, {11, 13.50, 48, 89}, {12, 15.17, 56, 84}, {13, 16.91, 53, 80}, {14, 18.46, 57, 75}},
		},
	}
}

// FindTable returns the experiment with the given id ("table7").
func FindTable(id string) (Experiment, error) {
	for _, ex := range Tables() {
		if ex.ID == id {
			return ex, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}

// algorithm builds the hypercube algorithm variant for the options.
func algorithm(dims int, opt Options) (core.Algorithm, error) {
	switch opt.Algorithm {
	case "adaptive":
		return core.NewHypercubeAdaptive(dims), nil
	case "hung":
		return core.NewHypercubeHung(dims), nil
	case "ecube":
		return core.NewHypercubeECube(dims), nil
	}
	return nil, fmt.Errorf("bench: unknown algorithm variant %q", opt.Algorithm)
}

// paperRow returns the published values for dims, or a zero row.
func (ex Experiment) paperRow(dims int) PaperRow {
	for _, r := range ex.Paper {
		if r.Dims == dims {
			return r
		}
	}
	return PaperRow{Dims: dims}
}

// Dims lists the hypercube dimensions the paper reports for this table.
func (ex Experiment) Dims() []int {
	out := make([]int, len(ex.Paper))
	for i, r := range ex.Paper {
		out[i] = r.Dims
	}
	return out
}

// Cell returns orchestration facts about the cell at the given dimension:
// its node count and whether the cell may be simulated with Workers > 1
// without changing its results (credited algorithms tie-break differently
// across worker counts; the atomic engine ignores Workers entirely, so
// granting it more would only waste budget).
func (ex Experiment) Cell(dims int, opt Options) (nodes int, parallelizable bool, err error) {
	opt.fill()
	a, err := algorithm(dims, opt)
	if err != nil {
		return 0, false, err
	}
	return a.Topology().Nodes(), !a.Props().Credits && opt.Engine != "atomic", nil
}

// Run executes one row of the experiment at the given hypercube dimension.
func (ex Experiment) Run(dims int, opt Options) (Row, error) {
	return ex.RunCtx(nil, dims, opt)
}

// Spec translates one table cell into the canonical exec.RunSpec: the
// paper's algorithm variant and pattern as spec strings, the injection
// model as packets-per-node or a λ=1 Bernoulli window, and the options'
// result-affecting knobs. The returned spec is what RunCtx executes.
func (ex Experiment) Spec(dims int, opt Options) (exec.RunSpec, error) {
	opt.fill()
	s := exec.RunSpec{
		V:              exec.SpecVersion,
		Algo:           fmt.Sprintf("hypercube-%s:%d", opt.Algorithm, dims),
		Pattern:        string(ex.Pattern),
		Engine:         opt.Engine,
		Policy:         opt.Policy.String(),
		Seed:           opt.Seed,
		QueueCap:       opt.QueueCap,
		Workers:        opt.Workers,
		RebalanceEvery: opt.RebalanceEvery,
	}
	switch ex.Injection {
	case Static1:
		s.Inject, s.Packets = "static", 1
	case StaticN:
		s.Inject, s.Packets = "static", dims
	case Dynamic:
		s.Inject, s.Lambda, s.Warmup, s.Measure = "dynamic", 1, opt.Warmup, opt.Measure
		s.Traffic = opt.Traffic
	default:
		return exec.RunSpec{}, fmt.Errorf("bench: unknown injection %q", ex.Injection)
	}
	return s, nil
}

// RunCtx is Run with cancellation: the simulation stops within one cycle of
// ctx being canceled and the cell returns ctx's error.
//
// Execution goes through the canonical exec.RunSpec path — the same
// assembly the daemon and the result store use — so a table cell and a
// POSTed spec with the same parameters are the same run, fingerprint and
// all.
func (ex Experiment) RunCtx(ctx context.Context, dims int, opt Options) (Row, error) {
	opt.fill()
	s, err := ex.Spec(dims, opt)
	if err != nil {
		return Row{}, err
	}
	res, err := exec.Run(ctx, s, nil)
	if err != nil {
		return Row{}, err
	}
	m := res.Metrics
	return Row{
		Dims:      dims,
		Nodes:     1 << dims,
		Lavg:      m.AvgLatency(),
		Lmax:      m.LatencyMax,
		Ir:        100 * m.InjectionRate(),
		Cycles:    m.Cycles,
		Delivered: m.Delivered,
		Paper:     ex.paperRow(dims),
	}, nil
}

// RunAll executes the experiment at every dimension the paper reports, up
// to maxDims (0 = all).
func (ex Experiment) RunAll(maxDims int, opt Options) ([]Row, error) {
	var rows []Row
	for _, d := range ex.Dims() {
		if maxDims > 0 && d > maxDims {
			continue
		}
		r, err := ex.Run(d, opt)
		if err != nil {
			return rows, fmt.Errorf("%s n=%d: %w", ex.ID, d, err)
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// Format renders measured rows against the paper's values.
func (ex Experiment) Format(rows []Row) string {
	s := fmt.Sprintf("%s: %s\n", ex.ID, ex.Title)
	if ex.Injection == Dynamic {
		s += "  n      N |   Lavg   Lmax  Ir%% |  paper:  Lavg   Lmax  Ir%%\n"
		for _, r := range rows {
			s += fmt.Sprintf(" %2d %6d | %6.2f %6d  %3.0f |         %6.2f %6d  %3.0f\n",
				r.Dims, r.Nodes, r.Lavg, r.Lmax, r.Ir, r.Paper.Lavg, r.Paper.Lmax, r.Paper.Ir)
		}
	} else {
		s += "  n      N |   Lavg   Lmax |  paper:  Lavg   Lmax\n"
		for _, r := range rows {
			s += fmt.Sprintf(" %2d %6d | %6.2f %6d |         %6.2f %6d\n",
				r.Dims, r.Nodes, r.Lavg, r.Lmax, r.Paper.Lavg, r.Paper.Lmax)
		}
	}
	return s
}
