// Adversarial-permutation search: a hill-climb over fixed permutation
// patterns (traffic.Permutation) maximizing tail latency. Random traffic
// averages away worst-case contention; this harness searches the
// permutation space for the σ that hurts a routing algorithm most, giving
// the evaluation a principled adversarial workload to report next to the
// paper's four fixed patterns.
package bench

import (
	"context"
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

// AdversaryConfig configures the adversarial-permutation search.
type AdversaryConfig struct {
	AlgoSpec string  // algorithm spec, e.g. "hypercube-adaptive:6"
	Engine   string  // simulation model: "buffered" (default) or "atomic"
	Lambda   float64 // per-node injection probability (default 0.5)
	Warmup   int64   // warmup cycles per evaluation (default 100)
	Measure  int64   // measured cycles per evaluation (default 400)
	Workers  int     // engine workers (default 1)
	Iters    int     // hill-climb iterations (default 40)
	// Swaps is the mutation size: how many random transpositions separate
	// a candidate from the incumbent (default max(1, nodes/64)).
	Swaps int
	Seed  int64 // search and simulation seed (default 1)
}

func (c *AdversaryConfig) fill() {
	if c.Engine == "" {
		c.Engine = "buffered"
	}
	if c.Lambda == 0 {
		c.Lambda = 0.5
	}
	if c.Warmup == 0 {
		c.Warmup = 100
	}
	if c.Measure == 0 {
		c.Measure = 400
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Iters == 0 {
		c.Iters = 40
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// AdversaryEval is one scored workload of the search.
type AdversaryEval struct {
	Iter     int     `json:"iter"` // 0 is the initial random permutation
	P50      int64   `json:"p50"`
	P99      int64   `json:"p99"`
	Mean     float64 `json:"mean"`
	Accepted bool    `json:"accepted"` // became the incumbent
}

// AdversaryResult is the outcome of a search: the worst permutation found
// and the trajectory that led there.
type AdversaryResult struct {
	AlgoSpec string  `json:"algo"`
	Nodes    int     `json:"nodes"`
	Lambda   float64 `json:"lambda"`
	// RandomP50/P99 score the uniform-random pattern under the identical
	// plan — the baseline the adversarial tail is compared against.
	RandomP50 int64           `json:"random_p50"`
	RandomP99 int64           `json:"random_p99"`
	BestP50   int64           `json:"best_p50"`
	BestP99   int64           `json:"best_p99"`
	BestMean  float64         `json:"best_mean"`
	Sigma     []int32         `json:"sigma"` // the worst permutation found
	Evals     []AdversaryEval `json:"evals"`
}

// RunAdversary hill-climbs over permutations of cfg.AlgoSpec's nodes,
// evaluating each candidate with a full deterministic simulation and
// keeping the one with the worst p99 latency (ties broken by p50, then
// mean). Every evaluation reuses the same seed and plan, so the objective
// is noise-free: a candidate is accepted only for genuinely worse tails,
// and the search is reproducible from (AlgoSpec, Seed).
func RunAdversary(ctx context.Context, cfg AdversaryConfig) (AdversaryResult, error) {
	cfg.fill()
	algo, err := spec.Algorithm(cfg.AlgoSpec)
	if err != nil {
		return AdversaryResult{}, err
	}
	nodes := algo.Topology().Nodes()
	if cfg.Swaps == 0 {
		cfg.Swaps = nodes / 64
		if cfg.Swaps < 1 {
			cfg.Swaps = 1
		}
	}
	res := AdversaryResult{AlgoSpec: cfg.AlgoSpec, Nodes: nodes, Lambda: cfg.Lambda}

	score := func(pat traffic.Pattern) (AdversaryEval, error) {
		lat := obs.NewLatency()
		eng, err := sim.NewSimulator(cfg.Engine, sim.Config{
			Algorithm: algo,
			Seed:      cfg.Seed,
			Workers:   cfg.Workers,
			Observer:  lat,
		})
		if err != nil {
			return AdversaryEval{}, err
		}
		src := traffic.NewBernoulliSource(pat, nodes, cfg.Lambda, cfg.Seed+2)
		if _, err := eng.Run(ctx, src, sim.DynamicPlan(cfg.Warmup, cfg.Measure)); err != nil {
			return AdversaryEval{}, err
		}
		return AdversaryEval{P50: lat.Percentile(50), P99: lat.Percentile(99), Mean: lat.Mean()}, nil
	}
	worse := func(a, b AdversaryEval) bool {
		if a.P99 != b.P99 {
			return a.P99 > b.P99
		}
		if a.P50 != b.P50 {
			return a.P50 > b.P50
		}
		return a.Mean > b.Mean
	}

	base, err := score(traffic.Random{Nodes: nodes})
	if err != nil {
		return res, fmt.Errorf("bench: adversary baseline: %w", err)
	}
	res.RandomP50, res.RandomP99 = base.P50, base.P99

	rng := xrand.New(cfg.Seed+11, 0)
	sigma := make([]int32, nodes)
	rng.Perm(sigma)
	best, err := score(&traffic.Permutation{Label: "adversary", Sigma: sigma})
	if err != nil {
		return res, err
	}
	best.Accepted = true
	res.Evals = append(res.Evals, best)

	cand := make([]int32, nodes)
	for iter := 1; iter <= cfg.Iters; iter++ {
		copy(cand, sigma)
		for s := 0; s < cfg.Swaps; s++ {
			i, j := rng.Intn(nodes), rng.Intn(nodes)
			cand[i], cand[j] = cand[j], cand[i]
		}
		ev, err := score(&traffic.Permutation{Label: "adversary", Sigma: cand})
		if err != nil {
			return res, err
		}
		ev.Iter = iter
		if worse(ev, best) {
			ev.Accepted = true
			copy(sigma, cand)
			best = ev
			best.Accepted = true
		}
		res.Evals = append(res.Evals, ev)
	}
	res.BestP50, res.BestP99, res.BestMean = best.P50, best.P99, best.Mean
	res.Sigma = sigma
	return res, nil
}

// FormatAdversary renders a search result as a short report.
func FormatAdversary(r AdversaryResult) string {
	s := fmt.Sprintf("adversarial permutation search: %s (%d nodes, lambda=%.3g, %d evals)\n",
		r.AlgoSpec, r.Nodes, r.Lambda, len(r.Evals))
	s += fmt.Sprintf("  random baseline: p50=%d p99=%d\n", r.RandomP50, r.RandomP99)
	s += fmt.Sprintf("  worst found:     p50=%d p99=%d mean=%.2f\n", r.BestP50, r.BestP99, r.BestMean)
	for _, ev := range r.Evals {
		mark := " "
		if ev.Accepted {
			mark = "*"
		}
		s += fmt.Sprintf("  %s iter %3d: p50=%4d p99=%4d mean=%7.2f\n", mark, ev.Iter, ev.P50, ev.P99, ev.Mean)
	}
	return s
}
