package sweep

import (
	"reflect"
	"testing"
)

func TestLPTOrder(t *testing.T) {
	jobs := []Job{
		{Seq: 0, Cost: 10},
		{Seq: 1, Cost: 500},
		{Seq: 2, Cost: 500},
		{Seq: 3, Cost: 9000},
		{Seq: 4, Cost: 1},
	}
	got := LPTOrder(jobs, []int{0, 1, 2, 3, 4})
	want := []int{3, 1, 2, 0, 4} // desc cost, ties by ascending Seq
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("LPTOrder = %v, want %v", got, want)
	}
}

func TestLPTOrderSubset(t *testing.T) {
	jobs := []Job{
		{Seq: 0, Cost: 10},
		{Seq: 1, Cost: 500},
		{Seq: 2, Cost: 9000},
	}
	pending := []int{0, 2} // job 1 already checkpointed
	got := LPTOrder(jobs, pending)
	want := []int{2, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("LPTOrder = %v, want %v", got, want)
	}
	if !reflect.DeepEqual(pending, []int{0, 2}) {
		t.Fatalf("LPTOrder mutated its input: %v", pending)
	}
}

func TestWorkersFor(t *testing.T) {
	big := float64(DefaultSmallCost) * 4
	cases := []struct {
		name               string
		job                Job
		budget, slots      int
		smallCost, maxCost float64
		want               int
	}{
		{"not parallelizable", Job{Parallelizable: false, Cost: big}, 8, 2, DefaultSmallCost, big, 1},
		{"budget one", Job{Parallelizable: true, Cost: big}, 1, 2, DefaultSmallCost, big, 1},
		{"below small cost", Job{Parallelizable: true, Cost: 100}, 8, 2, DefaultSmallCost, big, 1},
		{"dominant cell gets full budget", Job{Parallelizable: true, Cost: big}, 8, 2, DefaultSmallCost, big, 8},
		{"half-cost cell gets half", Job{Parallelizable: true, Cost: big / 2}, 8, 2, DefaultSmallCost, big, 4},
		{"floor at budget/slots", Job{Parallelizable: true, Cost: big / 1000}, 8, 2, 0, big, 4},
		{"never exceeds budget", Job{Parallelizable: true, Cost: big}, 3, 1, DefaultSmallCost, big / 2, 3},
	}
	for _, c := range cases {
		if got := WorkersFor(c.job, c.budget, c.slots, c.smallCost, c.maxCost); got != c.want {
			t.Errorf("%s: WorkersFor = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestSlotPoolAdmission(t *testing.T) {
	p := newSlotPool(2, 4)
	if !p.acquire(3) {
		t.Fatal("first acquire refused")
	}
	if !p.acquire(1) {
		t.Fatal("second acquire refused")
	}
	// Pool is now full on both axes; a third acquire must block until a
	// release, and must observe the freed capacity.
	done := make(chan bool, 1)
	go func() { done <- p.acquire(2) }()
	select {
	case <-done:
		t.Fatal("acquire succeeded with no free slot")
	default:
	}
	p.release(3)
	if ok := <-done; !ok {
		t.Fatal("acquire failed after release")
	}
	p.release(1)
	p.release(2)
}

func TestSlotPoolClose(t *testing.T) {
	p := newSlotPool(1, 1)
	if !p.acquire(1) {
		t.Fatal("acquire refused")
	}
	done := make(chan bool, 1)
	go func() { done <- p.acquire(1) }()
	p.close()
	if ok := <-done; ok {
		t.Fatal("acquire succeeded on a closed pool")
	}
	if p.acquire(1) {
		t.Fatal("acquire after close succeeded")
	}
}
