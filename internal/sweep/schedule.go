package sweep

import (
	"context"
	"math"
	"sort"
	"sync"
)

// DefaultSmallCost is the cost (estimated node-cycles) below which a cell
// runs with a single worker: per-cycle barrier overhead beats the shard
// parallelism on small networks and short drains.
const DefaultSmallCost = 1 << 20

// LPTOrder returns the indices of pending ordered longest-processing-time
// first: descending cost, ties broken by ascending Seq. Starting the most
// expensive cells first bounds the makespan tail — the classic LPT
// guarantee — so an n=14 dynamic cell never starts last and runs alone
// after every slot has drained.
func LPTOrder(jobs []Job, pending []int) []int {
	order := append([]int(nil), pending...)
	sort.SliceStable(order, func(a, b int) bool {
		ja, jb := jobs[order[a]], jobs[order[b]]
		if ja.Cost != jb.Cost {
			return ja.Cost > jb.Cost
		}
		return ja.Seq < jb.Seq
	})
	return order
}

// WorkersFor splits the global worker budget between concurrent cells and
// per-simulation parallelism. Cheap cells (below smallCost) and cells whose
// results are not worker-invariant run sequentially; the rest receive a
// share of the budget proportional to their cost, floored at budget/slots,
// so the dominant cells (the n=14 dynamic runs) widen toward the whole
// machine instead of serializing the sweep tail on one worker.
func WorkersFor(job Job, budget, slots int, smallCost, maxCost float64) int {
	if !job.Parallelizable || budget <= 1 || job.Cost < smallCost {
		return 1
	}
	w := 1
	if maxCost > 0 {
		w = int(math.Round(float64(budget) * job.Cost / maxCost))
	}
	if base := budget / slots; w < base {
		w = base
	}
	if w < 1 {
		w = 1
	}
	if w > budget {
		w = budget
	}
	return w
}

// slotPool is a weighted admission gate: at most `jobs` cells run at once,
// and their worker grants sum to at most `budget`. Acquire blocks until
// both constraints admit the request; the dispatcher acquires in LPT order,
// so admission order is deterministic even though completion order is not.
type slotPool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	jobs    int
	workers int
	closed  bool
}

func newSlotPool(jobs, workers int) *slotPool {
	p := &slotPool{jobs: jobs, workers: workers}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// acquire claims one job slot and w worker tokens, blocking until granted.
// It reports false if the pool closed (sweep canceled) while waiting.
// w must not exceed the pool's total budget.
func (p *slotPool) acquire(w int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for !p.closed && (p.jobs < 1 || p.workers < w) {
		p.cond.Wait()
	}
	if p.closed {
		return false
	}
	p.jobs--
	p.workers -= w
	return true
}

// release returns a cell's job slot and worker tokens.
func (p *slotPool) release(w int) {
	p.mu.Lock()
	p.jobs++
	p.workers += w
	p.mu.Unlock()
	p.cond.Broadcast()
}

// close unblocks every waiter; subsequent acquires fail.
func (p *slotPool) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// closeOnDone closes the pool when ctx is canceled, unblocking the
// dispatcher; the returned stop func releases the watcher goroutine.
func (p *slotPool) closeOnDone(ctx context.Context) (stop func()) {
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			p.close()
		case <-done:
		}
	}()
	return func() { close(done) }
}
