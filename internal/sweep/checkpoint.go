package sweep

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/bench"
	"repro/internal/store"
)

// entryVersion is bumped whenever the journal schema or the fingerprint
// recipe changes; entries with another version are ignored on resume.
const entryVersion = 1

// Entry is one journaled cell result: the checkpoint unit of a sweep. A
// sweep appends one line per completed cell, so a killed run resumes by
// replaying the journal and skipping every cell whose fingerprint matches.
type Entry struct {
	V          int       `json:"v"`
	FP         string    `json:"fp"`
	Job        string    `json:"job"`
	Seq        int       `json:"seq"`
	ElapsedSec float64   `json:"elapsed_sec"`
	Row        bench.Row `json:"row"`
}

// Fingerprint keys a journaled cell by everything that determines its rows:
// the cell identity, every result-affecting option (seed, queue capacity,
// policy, warmup/measure window, algorithm variant, engine), and the build
// identity — so a checkpoint written by a different configuration or binary
// is ignored rather than silently reused. Workers is deliberately excluded:
// engine results are bit-deterministic across worker counts (the scheduler
// varies Workers per cell without invalidating checkpoints).
func Fingerprint(job Job, opt bench.Options, buildID string) string {
	opt = opt.Filled()
	s := fmt.Sprintf("v%d|job=%s|suite=%s|exp=%s|size=%d|seed=%d|cap=%d|policy=%d|warmup=%d|measure=%d|algo=%s|engine=%s|build=%s",
		entryVersion, job.ID, job.Suite, job.Exp, job.Size,
		opt.Seed, opt.QueueCap, opt.Policy, opt.Warmup, opt.Measure,
		opt.Algorithm, engineName(opt.Engine), buildID)
	h := sha256.Sum256([]byte(s))
	return hex.EncodeToString(h[:8])
}

// engineName normalizes the engine selector ("" means buffered).
func engineName(engine string) string {
	if engine == "" {
		return "buffered"
	}
	return engine
}

// BuildID identifies the running binary for checkpoint fingerprints: the
// embedded VCS revision (suffixed "+dirty" for modified trees), or "dev"
// when the binary carries no VCS metadata (go test, go run of a non-VCS
// tree). Rebuilding at a different revision therefore invalidates
// checkpoints instead of resuming across code changes.
func BuildID() string { return bench.BuildID() }

// Journal appends completed cells to a JSONL checkpoint file. Appends are
// serialized and each entry is written with a single Write followed by
// Sync, so a kill leaves at most one partial trailing line — which
// LoadJournal skips and store.OpenAppend trims on reopen, so a resumed
// sweep can never glue a fresh entry onto a crash's partial line.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// OpenJournal opens the checkpoint at path for appending. With resume
// false the file is truncated (a fresh sweep starts a fresh journal);
// with resume true existing entries are preserved — except a partial
// trailing line left by a crash mid-append, which is trimmed so the next
// entry starts on a fresh line — and new cells append.
func OpenJournal(path string, resume bool) (*Journal, error) {
	f, err := store.OpenAppend(path, !resume)
	if err != nil {
		return nil, fmt.Errorf("sweep: checkpoint: %w", err)
	}
	return &Journal{f: f}, nil
}

// Append journals one completed cell.
func (j *Journal) Append(e Entry) error {
	e.V = entryVersion
	data, err := json.Marshal(&e)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("sweep: checkpoint append: %w", err)
	}
	return j.f.Sync()
}

// Close closes the journal file.
func (j *Journal) Close() error { return j.f.Close() }

// LoadJournal reads a checkpoint and returns its entries keyed by
// fingerprint (last entry wins on duplicates). A missing file yields an
// empty map; malformed lines — including the partial trailing line a kill
// mid-append can leave — and entries of another schema version are skipped,
// never trusted.
func LoadJournal(path string) (map[string]Entry, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return map[string]Entry{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sweep: checkpoint: %w", err)
	}
	defer f.Close()
	out := map[string]Entry{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		var e Entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			continue // partial or corrupt line: ignore, re-run the cell
		}
		if e.V != entryVersion || e.FP == "" {
			continue
		}
		out[e.FP] = e
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sweep: checkpoint: %w", err)
	}
	return out, nil
}
