package sweep

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
)

func testJob() Job {
	return Job{ID: "table9/n10", Suite: SuitePaper, Exp: "table9", Size: 10, Seq: 0}
}

// The fingerprint must change with everything that changes the rows — and
// with nothing else. Workers is the deliberate exception: results are
// worker-invariant, so the scheduler may vary it freely across resumes.
func TestFingerprintInvalidation(t *testing.T) {
	base := bench.Options{Seed: 1}.Filled()
	fp := Fingerprint(testJob(), base, "build-a")

	variants := map[string]func() string{
		"seed": func() string {
			o := base
			o.Seed = 2
			return Fingerprint(testJob(), o, "build-a")
		},
		"queue cap": func() string {
			o := base
			o.QueueCap = 7
			return Fingerprint(testJob(), o, "build-a")
		},
		"warmup": func() string {
			o := base
			o.Warmup = 999
			return Fingerprint(testJob(), o, "build-a")
		},
		"algorithm": func() string {
			o := base
			o.Algorithm = "ecube"
			return Fingerprint(testJob(), o, "build-a")
		},
		"engine": func() string {
			o := base
			o.Engine = "atomic"
			return Fingerprint(testJob(), o, "build-a")
		},
		"build": func() string {
			return Fingerprint(testJob(), base, "build-b")
		},
		"job": func() string {
			j := testJob()
			j.ID, j.Size = "table9/n12", 12
			return Fingerprint(j, base, "build-a")
		},
	}
	for name, f := range variants {
		if f() == fp {
			t.Errorf("changing %s did not change the fingerprint", name)
		}
	}

	same := base
	same.Workers = 8
	if Fingerprint(testJob(), same, "build-a") != fp {
		t.Error("changing Workers changed the fingerprint; checkpoints must survive worker-count changes")
	}
	if Fingerprint(testJob(), base, "build-a") != fp {
		t.Error("fingerprint is not deterministic")
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	e1 := Entry{FP: "aa", Job: "table9/n10", Seq: 0, ElapsedSec: 1.5, Row: bench.Row{Dims: 10, Nodes: 1024, Lavg: 12.5}}
	e2 := Entry{FP: "bb", Job: "table9/n12", Seq: 1, ElapsedSec: 9.25, Row: bench.Row{Dims: 12, Nodes: 4096, Lavg: 14.25}}
	for _, e := range []Entry{e1, e2} {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d entries, want 2", len(got))
	}
	if r := got["bb"].Row; r != e2.Row {
		t.Fatalf("row mismatch: got %+v want %+v", r, e2.Row)
	}
}

func TestJournalSkipsPartialTrailingLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Entry{FP: "aa", Job: "a", Row: bench.Row{Dims: 10}}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Simulate a kill mid-append: a truncated JSON line with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"v":1,"fp":"bb","job":"tru`)
	f.Close()

	got, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("loaded %d entries, want 1 (partial line must be skipped)", len(got))
	}
	if _, ok := got["aa"]; !ok {
		t.Fatal("intact entry lost")
	}
}

func TestJournalIgnoresOtherVersions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	os.WriteFile(path, []byte(`{"v":99,"fp":"aa","job":"a"}`+"\n"), 0o644)
	got, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("loaded %d entries from a foreign schema version, want 0", len(got))
	}
}

func TestLoadJournalMissingFile(t *testing.T) {
	got, err := LoadJournal(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("missing file yielded %d entries", len(got))
	}
}

func TestOpenJournalTruncatesWithoutResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	os.WriteFile(path, []byte("stale\n"), 0o644)
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	data, _ := os.ReadFile(path)
	if len(data) != 0 {
		t.Fatalf("fresh sweep did not truncate the stale journal: %q", data)
	}
}

// The resume-append regression: before OpenJournal trimmed the partial
// trailing line a crash can leave, a resumed sweep's first Append glued its
// entry onto the fragment, producing one corrupt line that lost BOTH cells.
// Now the fragment is trimmed on open, so the pre-crash entry and the
// post-resume entry both survive a reload.
func TestOpenJournalResumeAfterPartialLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Entry{FP: "aa", Job: "a", Row: bench.Row{Dims: 10}}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Kill mid-append: half a record, no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"v":1,"fp":"bb","job":"tru`)
	f.Close()

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(Entry{FP: "cc", Job: "c", Row: bench.Row{Dims: 12}}); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	got, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d entries, want 2 (aa from before the crash, cc after resume)", len(got))
	}
	if _, ok := got["aa"]; !ok {
		t.Fatal("pre-crash entry lost")
	}
	if _, ok := got["cc"]; !ok {
		t.Fatal("post-resume entry lost (glued onto the partial line?)")
	}
}
