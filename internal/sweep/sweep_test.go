package sweep

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/bench"
)

// testOptions keeps the simulated windows short: the determinism claims
// under test do not depend on the window length.
func testOptions() bench.Options {
	return bench.Options{Seed: 1, Warmup: 50, Measure: 100}.Filled()
}

func testJobs(t *testing.T, opt bench.Options) []Job {
	t.Helper()
	jobs, err := BuildJobs(SuitePaper, "", 10, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) < 10 {
		t.Fatalf("paper suite at maxn 10 yielded only %d jobs", len(jobs))
	}
	return jobs
}

func rowsOf(results []Result) []bench.Row {
	rows := make([]bench.Row, len(results))
	for i, r := range results {
		rows[i] = r.Row
	}
	return rows
}

// The merged results must be identical whatever the concurrency level: the
// scheduler varies worker counts and completion order, never the rows.
func TestSweepDeterminismAcrossJobs(t *testing.T) {
	opt := testOptions()
	jobs := testJobs(t, opt)

	seq, err := Run(context.Background(), jobs, opt, Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), jobs, opt, Options{Jobs: 4, Budget: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i].Row != par[i].Row {
			t.Errorf("%s: jobs=1 row %+v != jobs=4 row %+v", jobs[i].ID, seq[i].Row, par[i].Row)
		}
	}
}

// A sweep killed after N cells and resumed must produce exactly the rows of
// an uninterrupted run, with the first run's cells served from checkpoint.
func TestSweepStopAndResume(t *testing.T) {
	opt := testOptions()
	jobs := testJobs(t, opt)
	ckpt := filepath.Join(t.TempDir(), "ckpt.jsonl")

	full, err := Run(context.Background(), jobs, opt, Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}

	const stopAfter = 4
	_, err = Run(context.Background(), jobs, opt, Options{
		Jobs: 2, Budget: 2, Checkpoint: ckpt, StopAfter: stopAfter,
	})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("stop-after run returned %v, want ErrStopped", err)
	}

	resumed, err := Run(context.Background(), jobs, opt, Options{
		Jobs: 2, Budget: 2, Checkpoint: ckpt, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cachedCount := 0
	for _, r := range resumed {
		if r.Cached {
			cachedCount++
		}
	}
	if cachedCount < stopAfter {
		t.Errorf("resume served %d cells from checkpoint, want >= %d", cachedCount, stopAfter)
	}
	if cachedCount == len(resumed) {
		t.Error("every cell was cached; the stop-after run did not stop early")
	}
	fullRows, resumedRows := rowsOf(full), rowsOf(resumed)
	for i := range fullRows {
		if fullRows[i] != resumedRows[i] {
			t.Errorf("%s: uninterrupted row %+v != resumed row %+v", jobs[i].ID, fullRows[i], resumedRows[i])
		}
	}
}

// A checkpoint recorded under different options must be ignored wholesale:
// resuming with a new seed re-runs every cell.
func TestSweepResumeIgnoresStaleCheckpoint(t *testing.T) {
	opt := testOptions()
	jobs := testJobs(t, opt)
	ckpt := filepath.Join(t.TempDir(), "ckpt.jsonl")

	if _, err := Run(context.Background(), jobs, opt, Options{Jobs: 1, Checkpoint: ckpt}); err != nil {
		t.Fatal(err)
	}

	newOpt := opt
	newOpt.Seed = 42
	newJobs := testJobs(t, newOpt)
	resumed, err := Run(context.Background(), newJobs, newOpt, Options{
		Jobs: 1, Checkpoint: ckpt, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range resumed {
		if r.Cached {
			t.Errorf("%s: cell served from a checkpoint recorded under another seed", r.Job.ID)
		}
	}
}

// Cancellation must surface as a context error, not hang or a corrupt merge.
func TestSweepCancel(t *testing.T) {
	opt := testOptions()
	jobs := testJobs(t, opt)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, jobs, opt, Options{Jobs: 2, Budget: 2})
	if err == nil {
		t.Fatal("canceled sweep returned nil error")
	}
}

func TestBuildJobsShape(t *testing.T) {
	opt := testOptions()
	jobs, err := BuildJobs(SuiteAll, "", 12, opt)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i, j := range jobs {
		if j.Seq != i {
			t.Fatalf("job %s has Seq %d at position %d", j.ID, j.Seq, i)
		}
		if seen[j.ID] {
			t.Fatalf("duplicate job id %s", j.ID)
		}
		seen[j.ID] = true
		if j.Cost <= 0 {
			t.Errorf("%s: non-positive cost %f", j.ID, j.Cost)
		}
		if j.Nodes <= 0 {
			t.Errorf("%s: non-positive nodes %d", j.ID, j.Nodes)
		}
	}
	// The credited shuffle-exchange cells must be pinned to one worker:
	// their tie-breaking is worker-count dependent.
	sawShuffle := false
	for _, j := range jobs {
		if j.Exp == "ext-shuffle-random-n" || j.Exp == "ext-shuffle-random-dyn" {
			sawShuffle = true
			if j.Parallelizable {
				t.Errorf("%s: credited algorithm marked parallelizable", j.ID)
			}
		}
	}
	if !sawShuffle {
		t.Fatal("suite all did not include shuffle-exchange cells")
	}

	// The atomic engine ignores Workers: nothing is parallelizable there.
	aOpt := opt
	aOpt.Engine = "atomic"
	aJobs, err := BuildJobs(SuitePaper, "", 10, aOpt)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range aJobs {
		if j.Parallelizable {
			t.Errorf("%s: atomic-engine cell marked parallelizable", j.ID)
		}
	}
}

func TestBuildJobsSingleTable(t *testing.T) {
	opt := testOptions()
	jobs, err := BuildJobs(SuitePaper, "table9", 12, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.Exp != "table9" {
			t.Fatalf("table selector leaked job %s", j.ID)
		}
	}
	if len(jobs) != 3 { // n = 10, 11, 12
		t.Fatalf("table9 at maxn 12 yielded %d jobs, want 3", len(jobs))
	}
	if _, err := BuildJobs(SuitePaper, "no-such-table", 0, opt); err == nil {
		t.Fatal("unknown table accepted")
	}
}
