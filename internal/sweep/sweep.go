// Package sweep is the parallel orchestrator behind cmd/tables: it turns
// the paper's evaluation (bench.Tables, bench.ExtendedSuite) into a flat
// list of independent (experiment, size) cells with per-cell cost
// estimates, schedules them longest-processing-time-first onto a bounded
// slot pool that splits a global worker budget between concurrent cells
// and per-simulation Workers, and journals every completed cell to a JSONL
// checkpoint so a killed sweep resumes instead of restarting.
//
// Determinism: every cell is an independent, bit-deterministic simulation
// whose results do not depend on the Workers count (credited algorithms,
// the exception, are pinned to one worker), and merged results are ordered
// by the cells' canonical sequence — so the sweep's output is bit-identical
// regardless of the concurrency level, scheduling interleaving, or a
// kill/resume cycle in the middle.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
)

// Suite selectors accepted by BuildJobs, mirroring cmd/tables -suite.
const (
	SuitePaper    = "paper"
	SuiteExtended = "extended"
	SuiteAll      = "all"
)

// Job is one schedulable cell of a sweep: a single (experiment, size) row.
type Job struct {
	ID    string // "table9/n12", "ext-mesh-random-n/side16"
	Suite string // SuitePaper or SuiteExtended
	Exp   string // experiment id within the suite
	Size  int    // hypercube dimension, or the topology's size parameter
	Seq   int    // canonical output position (the sequential run's order)
	Nodes int
	// Cost estimates the cell's work in node-cycles: nodes x window for
	// dynamic cells, total minimal hop work for static ones. It drives the
	// LPT schedule, the worker split, and the progress ETA — only relative
	// accuracy matters.
	Cost float64
	// Parallelizable cells may be granted Workers > 1: their results are
	// invariant under the worker count and the engine honors it.
	Parallelizable bool
}

// BuildJobs flattens the selected experiments into the sweep's job list, in
// canonical (sequential-output) order. table, when non-empty, selects one
// experiment by id and overrides suite; maxN bounds the hypercube dimension
// of paper cells (0 = all) and is ignored for extended cells, matching the
// sequential path.
func BuildJobs(suite, table string, maxN int, opt bench.Options) ([]Job, error) {
	opt = opt.Filled()
	var paper []bench.Experiment
	var ext []bench.Extended
	switch {
	case table != "":
		if ex, err := bench.FindTable(table); err == nil {
			paper = []bench.Experiment{ex}
		} else if xe, err := bench.FindExtended(table); err == nil {
			ext = []bench.Extended{xe}
		} else {
			return nil, fmt.Errorf("sweep: unknown experiment %q", table)
		}
	case suite == SuitePaper:
		paper = bench.Tables()
	case suite == SuiteExtended:
		ext = bench.ExtendedSuite()
	case suite == SuiteAll:
		paper = bench.Tables()
		ext = bench.ExtendedSuite()
	default:
		return nil, fmt.Errorf("sweep: unknown suite %q (want paper|extended|all)", suite)
	}

	var jobs []Job
	for _, ex := range paper {
		for _, d := range ex.Dims() {
			if maxN > 0 && d > maxN {
				continue
			}
			nodes, par, err := ex.Cell(d, opt)
			if err != nil {
				return nil, err
			}
			perNode := 1
			if ex.Injection == bench.StaticN {
				perNode = d
			}
			jobs = append(jobs, Job{
				ID:    fmt.Sprintf("%s/n%d", ex.ID, d),
				Suite: SuitePaper, Exp: ex.ID, Size: d, Seq: len(jobs),
				Nodes:          nodes,
				Cost:           cellCost(ex.Injection, nodes, perNode, d, opt),
				Parallelizable: par,
			})
		}
	}
	for _, ex := range ext {
		for _, s := range ex.Sizes {
			nodes, par, err := ex.Cell(s, opt)
			if err != nil {
				return nil, err
			}
			perNode := 1
			if ex.Injection == bench.StaticN {
				perNode = ex.PacketsPerNode(s)
			}
			jobs = append(jobs, Job{
				ID:    fmt.Sprintf("%s/%s%d", ex.ID, ex.SizeLabel, s),
				Suite: SuiteExtended, Exp: ex.ID, Size: s, Seq: len(jobs),
				Nodes:          nodes,
				Cost:           cellCost(ex.Injection, nodes, perNode, 2*s, opt),
				Parallelizable: par,
			})
		}
	}
	return jobs, nil
}

// cellCost estimates a cell's work in node-cycles. Dynamic cells simulate
// exactly warmup+measure cycles over all nodes; static cells drain, so
// their work tracks the total minimal hop count (packets x diameter)
// rather than the cycle count — calibrated against the recorded sequential
// sweep, where the dynamic cells dominate by two orders of magnitude.
func cellCost(inj bench.InjectionKind, nodes, perNode, diam int, opt bench.Options) float64 {
	if inj == bench.Dynamic {
		return float64(nodes) * float64(opt.Warmup+opt.Measure)
	}
	if diam < 1 {
		diam = 1
	}
	return float64(nodes) * float64(perNode) * float64(diam)
}

// Result is one completed cell, in canonical order in Run's result slice.
type Result struct {
	Job        Job
	Row        bench.Row
	ElapsedSec float64
	Cached     bool // satisfied from the resume checkpoint, not re-run
}

// ErrStopped reports that the sweep hit Options.StopAfter and exited early
// on purpose; the checkpoint journal holds the completed cells.
var ErrStopped = errors.New("sweep: stopped after requested number of cells")

// Options tunes a sweep run. The zero value runs sequentially with no
// checkpointing — the exact behavior of the old cmd/tables loop.
type Options struct {
	Jobs   int // concurrent cells (default 1)
	Budget int // total worker budget across concurrent cells (default GOMAXPROCS)
	// FixedWorkers forces every cell to this Workers value (the -workers
	// flag); 0 lets the scheduler split Budget cost-aware per cell.
	FixedWorkers int
	Checkpoint   string // JSONL journal path ("" = no checkpointing)
	Resume       bool   // skip cells already journaled under a matching fingerprint
	// StopAfter ends the sweep with ErrStopped once that many cells have
	// completed in this run (0 = run to completion); the deterministic
	// "kill" half of the kill/resume tests and CI smoke job.
	StopAfter int
	BuildID   string        // fingerprint build key (default BuildID())
	Sink      obs.SweepSink // progress events (nil = none)
	SmallCost float64       // cells cheaper than this run sequentially (default DefaultSmallCost)
}

func (o *Options) fill() {
	if o.Jobs < 1 {
		o.Jobs = 1
	}
	if o.Budget < 1 {
		o.Budget = runtime.GOMAXPROCS(0)
	}
	if o.BuildID == "" {
		o.BuildID = BuildID()
	}
	if o.SmallCost == 0 {
		o.SmallCost = DefaultSmallCost
	}
}

// Run executes the jobs under the sweep options and returns one Result per
// job, in the jobs' (canonical) order. On ErrStopped or cancellation the
// results of unfinished cells are zero; completed cells are already in the
// checkpoint journal when one is configured.
func Run(ctx context.Context, jobs []Job, opt bench.Options, o Options) ([]Result, error) {
	o.fill()
	opt = opt.Filled()
	if ctx == nil {
		ctx = context.Background()
	}

	var cached map[string]Entry
	var journal *Journal
	if o.Checkpoint != "" {
		if o.Resume {
			var err error
			if cached, err = LoadJournal(o.Checkpoint); err != nil {
				return nil, err
			}
		}
		var err error
		if journal, err = OpenJournal(o.Checkpoint, o.Resume); err != nil {
			return nil, err
		}
		defer journal.Close()
	}

	results := make([]Result, len(jobs))
	prog := newProgress(jobs, o.Sink)
	fps := make([]string, len(jobs))
	var pending []int
	for i, job := range jobs {
		fps[i] = Fingerprint(job, opt, o.BuildID)
		if e, ok := cached[fps[i]]; ok {
			results[i] = Result{Job: job, Row: e.Row, ElapsedSec: e.ElapsedSec, Cached: true}
			prog.cached(job)
			continue
		}
		pending = append(pending, i)
	}

	order := LPTOrder(jobs, pending)
	maxCost := 0.0
	for _, i := range pending {
		if jobs[i].Cost > maxCost {
			maxCost = jobs[i].Cost
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	pool := newSlotPool(o.Jobs, o.Budget)
	defer pool.closeOnDone(runCtx)()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		executed int
		stopped  bool
	)
	for _, idx := range order {
		job := jobs[idx]
		w := WorkersFor(job, o.Budget, o.Jobs, o.SmallCost, maxCost)
		if o.FixedWorkers > 0 {
			w = o.FixedWorkers
			if w > o.Budget {
				w = o.Budget
			}
		}
		if !pool.acquire(w) {
			break // sweep canceled or stopped while waiting
		}
		wg.Add(1)
		go func(idx int, job Job, w int) {
			defer wg.Done()
			defer pool.release(w)
			prog.start(job, w)
			jobOpt := opt
			// A one-worker grant means "run this cell sequentially": the
			// engine's plain single-threaded path (Workers 0) computes the
			// same results as a one-worker pool without the pool overhead.
			jobOpt.Workers = w
			if w == 1 {
				jobOpt.Workers = 0
			}
			t0 := time.Now()
			row, err := runCell(runCtx, job, jobOpt)
			elapsed := time.Since(t0).Seconds()

			mu.Lock()
			if err != nil {
				if firstErr == nil && !errors.Is(err, context.Canceled) {
					firstErr = fmt.Errorf("%s: %w", job.ID, err)
				}
				mu.Unlock()
				cancel()
				return
			}
			results[idx] = Result{Job: job, Row: row, ElapsedSec: elapsed}
			if journal != nil {
				if jerr := journal.Append(Entry{
					FP: fps[idx], Job: job.ID, Seq: job.Seq, ElapsedSec: elapsed, Row: row,
				}); jerr != nil && firstErr == nil {
					firstErr = jerr
				}
			}
			executed++
			stopNow := o.StopAfter > 0 && executed >= o.StopAfter && !stopped
			if stopNow {
				stopped = true
			}
			failed := firstErr != nil
			mu.Unlock()
			prog.done(job)
			if stopNow || failed {
				cancel()
			}
		}(idx, job, w)
	}
	wg.Wait()

	switch {
	case firstErr != nil:
		return results, firstErr
	case stopped:
		return results, ErrStopped
	case ctx.Err() != nil:
		return results, ctx.Err()
	}
	prog.sweepDone()
	return results, nil
}

// runCell executes one cell against its experiment.
func runCell(ctx context.Context, job Job, opt bench.Options) (bench.Row, error) {
	switch job.Suite {
	case SuitePaper:
		ex, err := bench.FindTable(job.Exp)
		if err != nil {
			return bench.Row{}, err
		}
		return ex.RunCtx(ctx, job.Size, opt)
	case SuiteExtended:
		ex, err := bench.FindExtended(job.Exp)
		if err != nil {
			return bench.Row{}, err
		}
		return ex.RunCtx(ctx, job.Size, opt)
	}
	return bench.Row{}, fmt.Errorf("sweep: unknown suite %q", job.Suite)
}

// progress aggregates completion state and derives the events' ETA from the
// cost model: the rate is measured over executed cost only, so resumed
// (cached) cells advance the progress fraction without skewing the rate.
type progress struct {
	sink obs.SweepSink
	t0   time.Time

	mu        sync.Mutex
	doneCells int
	total     int
	costDone  float64
	costTotal float64
	execDone  float64 // executed (non-cached) cost completed
	execTotal float64 // executed cost scheduled for this run
}

func newProgress(jobs []Job, sink obs.SweepSink) *progress {
	p := &progress{sink: sink, t0: time.Now(), total: len(jobs)}
	for _, j := range jobs {
		p.costTotal += j.Cost
	}
	p.execTotal = p.costTotal
	return p
}

func (p *progress) emit(kind obs.SweepEventKind, job string, workers int) {
	if p.sink == nil {
		return
	}
	elapsed := time.Since(p.t0).Seconds()
	eta := -1.0
	if p.execDone > 0 && elapsed > 0 {
		rate := p.execDone / elapsed
		eta = (p.execTotal - p.execDone) / rate
	}
	p.sink.OnSweepEvent(obs.SweepEvent{
		Kind: kind, Job: job, Workers: workers,
		Done: p.doneCells, Total: p.total,
		CostDone: p.costDone, CostTotal: p.costTotal,
		ElapsedSec: elapsed, ETASec: eta,
	})
}

func (p *progress) cached(job Job) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.doneCells++
	p.costDone += job.Cost
	p.execTotal -= job.Cost
	p.emit(obs.SweepJobCached, job.ID, 0)
}

func (p *progress) start(job Job, workers int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.emit(obs.SweepJobStart, job.ID, workers)
}

func (p *progress) done(job Job) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.doneCells++
	p.costDone += job.Cost
	p.execDone += job.Cost
	p.emit(obs.SweepJobDone, job.ID, 0)
}

func (p *progress) sweepDone() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.emit(obs.SweepDone, "", 0)
}
