package sweep

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSchedulerRunsTasks(t *testing.T) {
	s := NewScheduler(2, 4, 8)
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		err := s.TrySubmit(Task{Cost: 1, Run: func(int) {
			n.Add(1)
			wg.Done()
		}})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	wg.Wait()
	s.Close()
	if n.Load() != 5 {
		t.Fatalf("ran %d tasks, want 5", n.Load())
	}
}

// Cheap or worker-sensitive tasks run sequentially (workers 0); expensive
// parallelizable tasks get an equal split of the budget.
func TestSchedulerWorkerGrants(t *testing.T) {
	s := NewScheduler(2, 8, 8)
	defer s.Close()
	grant := func(task Task) int {
		ch := make(chan int, 1)
		run := task.Run
		task.Run = func(w int) {
			if run != nil {
				run(w)
			}
			ch <- w
		}
		if err := s.TrySubmit(task); err != nil {
			t.Fatal(err)
		}
		return <-ch
	}
	if w := grant(Task{Cost: DefaultSmallCost * 2, Parallelizable: true}); w != 4 {
		t.Errorf("expensive parallelizable task got %d workers, want 8/2=4", w)
	}
	if w := grant(Task{Cost: DefaultSmallCost * 2, Parallelizable: false}); w != 0 {
		t.Errorf("non-parallelizable task got workers=%d, want 0 (sequential)", w)
	}
	if w := grant(Task{Cost: 1, Parallelizable: true}); w != 0 {
		t.Errorf("cheap task got workers=%d, want 0 (sequential)", w)
	}
}

// The backpressure contract the daemon's 429 path relies on: with every
// slot busy and the queue full, TrySubmit fails fast with ErrQueueFull.
func TestSchedulerQueueFull(t *testing.T) {
	s := NewScheduler(1, 1, 1)
	block := make(chan struct{})
	started := make(chan struct{})
	if err := s.TrySubmit(Task{Run: func(int) { close(started); <-block }}); err != nil {
		t.Fatal(err)
	}
	<-started // the slot is now occupied
	if err := s.TrySubmit(Task{Run: func(int) { <-block }}); err != nil {
		t.Fatalf("queue of cap 1 rejected its first queued task: %v", err)
	}
	// Slot busy, queue holding one task: the next submission must bounce.
	// The dispatcher may briefly hold the queued task before blocking on
	// the pool, so allow a short settle.
	deadline := time.Now().Add(2 * time.Second)
	for {
		err := s.TrySubmit(Task{Run: func(int) {}})
		if errors.Is(err, ErrQueueFull) {
			break
		}
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled: TrySubmit kept succeeding")
		}
		time.Sleep(time.Millisecond)
	}
	close(block)
	s.Close()
}

func TestSchedulerClosed(t *testing.T) {
	s := NewScheduler(1, 1, 4)
	s.Close()
	if err := s.TrySubmit(Task{Run: func(int) {}}); !errors.Is(err, ErrSchedClosed) {
		t.Fatalf("submit after Close: %v, want ErrSchedClosed", err)
	}
	s.Close() // idempotent
}

// Close waits for everything already admitted or queued to finish.
func TestSchedulerCloseDrains(t *testing.T) {
	s := NewScheduler(1, 1, 8)
	var n atomic.Int64
	for i := 0; i < 4; i++ {
		if err := s.TrySubmit(Task{Run: func(int) {
			time.Sleep(5 * time.Millisecond)
			n.Add(1)
		}}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if n.Load() != 4 {
		t.Fatalf("Close returned with %d/4 tasks finished", n.Load())
	}
}
