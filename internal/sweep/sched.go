package sweep

import (
	"errors"
	"sync"
)

// ErrQueueFull reports that a Scheduler's bounded submission queue is at
// capacity; the daemon maps it to HTTP 429 backpressure.
var ErrQueueFull = errors.New("sweep: job queue full")

// ErrSchedClosed reports a submission to a closed Scheduler.
var ErrSchedClosed = errors.New("sweep: scheduler closed")

// Task is one unit of work submitted to a Scheduler: a cost estimate (the
// sweep cell cost model's units, node-cycles), whether its results are
// invariant under Workers > 1, and the function to run. Run receives the
// worker grant the scheduler decided for it.
type Task struct {
	Cost           float64
	Parallelizable bool
	Run            func(workers int)
}

// Scheduler is the long-running form of the sweep's admission machinery,
// built for the daemon's request traffic: where Run schedules a fixed job
// list LPT-first and exits, the Scheduler accepts tasks forever through a
// bounded queue, admits them through the same weighted slot pool (at most
// `jobs` concurrent tasks, worker grants summing to at most `budget`), and
// grants each the worker count the sweep's split rules would give it.
// Submission order is service order (no LPT re-sort: a service must not
// starve cheap requests behind expensive ones).
type Scheduler struct {
	pool      *slotPool
	tasks     chan Task
	jobs      int
	budget    int
	smallCost float64

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup // running tasks
	loopWg sync.WaitGroup // dispatcher goroutine
}

// NewScheduler starts a scheduler with `jobs` concurrent task slots, a
// total worker budget of `budget`, and a submission queue of queueCap
// pending tasks (beyond the ones already running). jobs and budget floor
// at 1; queueCap at 0 (every submission beyond the running set is
// rejected).
func NewScheduler(jobs, budget, queueCap int) *Scheduler {
	if jobs < 1 {
		jobs = 1
	}
	if budget < 1 {
		budget = 1
	}
	if queueCap < 0 {
		queueCap = 0
	}
	s := &Scheduler{
		pool:      newSlotPool(jobs, budget),
		tasks:     make(chan Task, queueCap),
		jobs:      jobs,
		budget:    budget,
		smallCost: DefaultSmallCost,
	}
	s.loopWg.Add(1)
	go s.dispatch()
	return s
}

// grant decides a task's worker count: the online analogue of WorkersFor.
// Cheap or worker-sensitive tasks run sequentially; the rest receive an
// equal split of the budget across slots (no cost-proportional widening —
// an online scheduler cannot know the queue's future cost distribution).
func (s *Scheduler) grant(t Task) int {
	if !t.Parallelizable || s.budget <= 1 || t.Cost < s.smallCost {
		return 1
	}
	w := s.budget / s.jobs
	if w < 1 {
		w = 1
	}
	return w
}

// dispatch admits queued tasks through the slot pool, in submission order.
func (s *Scheduler) dispatch() {
	defer s.loopWg.Done()
	for t := range s.tasks {
		w := s.grant(t)
		if !s.pool.acquire(w) {
			return // pool closed: drop remaining queued tasks
		}
		s.wg.Add(1)
		go func(t Task, w int) {
			defer s.wg.Done()
			defer s.pool.release(w)
			// A one-worker grant means "run sequentially": Workers 0 is the
			// engines' plain single-threaded path (same results, no pool).
			if w == 1 {
				w = 0
			}
			t.Run(w)
		}(t, w)
	}
}

// TrySubmit enqueues a task without blocking. It returns ErrQueueFull when
// the bounded queue is at capacity (the backpressure signal) and
// ErrSchedClosed after Close.
func (s *Scheduler) TrySubmit(t Task) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrSchedClosed
	}
	select {
	case s.tasks <- t:
		s.mu.Unlock()
		return nil
	default:
		s.mu.Unlock()
		return ErrQueueFull
	}
}

// QueueLen reports the number of tasks waiting for admission (not yet
// granted a slot), for the daemon's metrics page.
func (s *Scheduler) QueueLen() int { return len(s.tasks) }

// Close stops accepting tasks and waits for the queue to drain and every
// running task to finish. The scheduler does not cancel work it already
// admitted — cancel the tasks' own ctx first for a fast stop.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.tasks)
	s.mu.Unlock()
	s.loopWg.Wait()
	s.wg.Wait()
	s.pool.close()
}
