package topology

import "fmt"

// Torus is a k-dimensional torus: a mesh whose borders wrap around. Port
// numbering matches Mesh: port 2*i moves +1 (mod side) in dimension i, port
// 2*i+1 moves -1.
type Torus struct {
	shape  []int
	stride []int
	nodes  int
}

// NewTorus returns the torus with the given per-dimension side lengths.
// Sides of length 1 or 2 are rejected: they would create self-loops or
// parallel links, which the buffered node model does not support.
func NewTorus(shape ...int) *Torus {
	if len(shape) == 0 {
		panic("topology: torus needs at least one dimension")
	}
	t := &Torus{shape: append([]int(nil), shape...), stride: make([]int, len(shape)), nodes: 1}
	for i, s := range shape {
		if s < 3 {
			panic(fmt.Sprintf("topology: torus side %d must be >= 3, got %d", i, s))
		}
		t.stride[i] = t.nodes
		t.nodes *= s
	}
	return t
}

// NewTorus2D returns the side x side 2-dimensional torus.
func NewTorus2D(side int) *Torus { return NewTorus(side, side) }

// Dims returns the number of dimensions.
func (t *Torus) Dims() int { return len(t.shape) }

// Shape returns the per-dimension side lengths. The caller must not modify it.
func (t *Torus) Shape() []int { return t.shape }

func (t *Torus) Name() string {
	s := "torus("
	for i, d := range t.shape {
		if i > 0 {
			s += "x"
		}
		s += fmt.Sprint(d)
	}
	return s + ")"
}

func (t *Torus) Nodes() int { return t.nodes }
func (t *Torus) Ports() int { return 2 * len(t.shape) }

// Coord returns the coordinate of u along dimension i.
func (t *Torus) Coord(u, i int) int { return u / t.stride[i] % t.shape[i] }

// NodeAt returns the node id at the given coordinates.
func (t *Torus) NodeAt(coord ...int) int {
	if len(coord) != len(t.shape) {
		panic("topology: wrong coordinate count")
	}
	u := 0
	for i, c := range coord {
		if c < 0 || c >= t.shape[i] {
			panic(fmt.Sprintf("topology: coordinate %d out of range: %d", i, c))
		}
		u += c * t.stride[i]
	}
	return u
}

func (t *Torus) Neighbor(u, p int) int {
	if p < 0 || p >= 2*len(t.shape) {
		return None
	}
	dim, dir := p/2, 1-2*(p&1)
	side := t.shape[dim]
	c := t.Coord(u, dim)
	nc := c + dir
	if nc < 0 {
		nc += side
	} else if nc >= side {
		nc -= side
	}
	return u + (nc-c)*t.stride[dim]
}

func (t *Torus) ReversePort(u, p int) int {
	if p < 0 || p >= t.Ports() {
		return None
	}
	return p ^ 1
}

func (t *Torus) PortTo(u, v int) int {
	for p := 0; p < t.Ports(); p++ {
		if t.Neighbor(u, p) == v {
			return p
		}
	}
	return None
}

// Distance is the sum over dimensions of the wrap-aware coordinate distance.
func (t *Torus) Distance(a, b int) int {
	d := 0
	for i, side := range t.shape {
		diff := t.Coord(a, i) - t.Coord(b, i)
		if diff < 0 {
			diff = -diff
		}
		if side-diff < diff {
			diff = side - diff
		}
		d += diff
	}
	return d
}
