package topology

import (
	"fmt"
	"math/bits"
)

// Hypercube is the binary n-cube: 2^n nodes, node u adjacent to u^(1<<i) for
// every dimension i. Port i flips bit i, so ports are naturally ordered from
// low to high dimension.
type Hypercube struct {
	dims  int
	nodes int
}

// NewHypercube returns the binary hypercube with the given number of
// dimensions (1 <= dims <= 30).
func NewHypercube(dims int) *Hypercube {
	if dims < 1 || dims > 30 {
		panic(fmt.Sprintf("topology: hypercube dimension %d out of range [1,30]", dims))
	}
	return &Hypercube{dims: dims, nodes: 1 << dims}
}

// Dims returns the number of dimensions n (so Nodes() == 1<<n).
func (h *Hypercube) Dims() int { return h.dims }

func (h *Hypercube) Name() string { return fmt.Sprintf("hypercube(%d)", h.dims) }
func (h *Hypercube) Nodes() int   { return h.nodes }
func (h *Hypercube) Ports() int   { return h.dims }

func (h *Hypercube) Neighbor(u, p int) int {
	if p < 0 || p >= h.dims {
		return None
	}
	return u ^ (1 << p)
}

// ReversePort returns p: hypercube links are undirected and symmetric.
func (h *Hypercube) ReversePort(u, p int) int {
	if p < 0 || p >= h.dims {
		return None
	}
	return p
}

func (h *Hypercube) PortTo(u, v int) int {
	d := u ^ v
	if d == 0 || d&(d-1) != 0 {
		return None
	}
	return bits.TrailingZeros32(uint32(d))
}

// Distance is the Hamming distance between the two node addresses.
func (h *Hypercube) Distance(a, b int) int {
	return bits.OnesCount32(uint32(a ^ b))
}

// Level returns the Hamming weight of u, i.e. the level of u when the cube
// is hung from node 0...0 (Section 3 of the paper).
func (h *Hypercube) Level(u int) int { return bits.OnesCount32(uint32(u)) }
