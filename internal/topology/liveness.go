package topology

// Liveness overlays a mutable alive/dead state on an immutable Topology.
// Nodes and directed links (u, port) start alive; fault injection kills and
// revives them. Liveness itself is not safe for concurrent mutation — the
// simulator applies fault events sequentially at cycle boundaries.
type Liveness struct {
	topo      Topology
	ports     int
	nodeDead  []uint64 // bitset over nodes
	linkDead  []uint64 // bitset over node*ports directed links
	deadNodes int
	deadLinks int
}

// NewLiveness returns an all-alive liveness overlay for t.
func NewLiveness(t Topology) *Liveness {
	n, p := t.Nodes(), t.Ports()
	return &Liveness{
		topo:     t,
		ports:    p,
		nodeDead: make([]uint64, (n+63)/64),
		linkDead: make([]uint64, (n*p+63)/64),
	}
}

// NodeAlive reports whether node u is alive.
func (l *Liveness) NodeAlive(u int) bool {
	return l.nodeDead[u>>6]&(1<<(uint(u)&63)) == 0
}

// LinkAlive reports whether the directed link out of u through port p is
// alive. A link whose endpoint node is dead is still reported alive here;
// use Usable for the combined check.
func (l *Liveness) LinkAlive(u, p int) bool {
	i := u*l.ports + p
	return l.linkDead[i>>6]&(1<<(uint(i)&63)) == 0
}

// Usable reports whether the directed link (u, p) can carry traffic: the
// link itself, its source node and its destination node are all alive, and
// the port is connected.
func (l *Liveness) Usable(u, p int) bool {
	v := l.topo.Neighbor(u, p)
	return v != None && l.NodeAlive(u) && l.NodeAlive(v) && l.LinkAlive(u, p)
}

// KillNode marks node u dead. Reports whether the state changed.
func (l *Liveness) KillNode(u int) bool {
	w, b := u>>6, uint64(1)<<(uint(u)&63)
	if l.nodeDead[w]&b != 0 {
		return false
	}
	l.nodeDead[w] |= b
	l.deadNodes++
	return true
}

// ReviveNode marks node u alive again. Reports whether the state changed.
func (l *Liveness) ReviveNode(u int) bool {
	w, b := u>>6, uint64(1)<<(uint(u)&63)
	if l.nodeDead[w]&b == 0 {
		return false
	}
	l.nodeDead[w] &^= b
	l.deadNodes--
	return true
}

// KillLink marks the directed link (u, p) dead. Reports whether the state
// changed.
func (l *Liveness) KillLink(u, p int) bool {
	i := u*l.ports + p
	w, b := i>>6, uint64(1)<<(uint(i)&63)
	if l.linkDead[w]&b != 0 {
		return false
	}
	l.linkDead[w] |= b
	l.deadLinks++
	return true
}

// ReviveLink marks the directed link (u, p) alive again. Reports whether the
// state changed.
func (l *Liveness) ReviveLink(u, p int) bool {
	i := u*l.ports + p
	w, b := i>>6, uint64(1)<<(uint(i)&63)
	if l.linkDead[w]&b == 0 {
		return false
	}
	l.linkDead[w] &^= b
	l.deadLinks--
	return true
}

// DeadNodes returns the number of currently dead nodes.
func (l *Liveness) DeadNodes() int { return l.deadNodes }

// DeadLinks returns the number of currently dead directed links.
func (l *Liveness) DeadLinks() int { return l.deadLinks }

// Reset revives every node and link.
func (l *Liveness) Reset() {
	for i := range l.nodeDead {
		l.nodeDead[i] = 0
	}
	for i := range l.linkDead {
		l.linkDead[i] = 0
	}
	l.deadNodes, l.deadLinks = 0, 0
}

// LivePorts returns the bitmask of ports of u whose directed links are
// usable (connected, link alive, both endpoints alive). Ports() must be at
// most 32, which holds for every topology in this repository.
func (l *Liveness) LivePorts(u int) uint32 {
	var m uint32
	if !l.NodeAlive(u) {
		return 0
	}
	for p := 0; p < l.ports; p++ {
		if l.Usable(u, p) {
			m |= 1 << uint(p)
		}
	}
	return m
}
