package topology

import (
	"fmt"
	"sort"
)

// MaxGraphNodes caps the size of a generated irregular network. The Graph
// type keeps an all-pairs distance table (the only representation that works
// for networks with no closed-form metric), so the memory cost is
// Nodes()^2; 4096 nodes is a 32 MiB table, the largest we let a spec ask
// for.
const MaxGraphNodes = 4096

// MaxGraphPorts caps the per-node port count of a generated network at the
// width of the engines' port bitmasks, so every Graph instance stays
// eligible for the PortMaskRouter fast path.
const MaxGraphPorts = 32

// Graph is an arbitrary strongly-connected digraph given by explicit
// adjacency — the escape hatch from the paper's five fixed families. A
// generator (NewRandomRegular, NewDragonfly, NewHyperX, NewFatTree, or
// NewGraph for hand-built adjacency) produces the instance once; after
// construction it is immutable, ships a precomputed all-pairs BFS distance
// table, and implements Topology exactly like the closed-form networks do,
// so the algorithms, the engines, the fault planner and the qdg verifier
// need no special cases.
type Graph struct {
	spec  string // canonical generator spec, e.g. "dragonfly:a=4,g=9"
	n     int
	ports int
	nbr   []int32 // n*ports neighbor table, None-padded
	rev   []int16 // n*ports reverse-port table, None where asymmetric
	dist  []int16 // n*n all-pairs BFS distances
	diam  int
}

// NewGraph builds a Graph from explicit adjacency: adj[u] lists the
// out-neighbors of u in port order. The digraph must be simple (no
// self-loops, no duplicate edges from one node), strongly connected, and
// within the MaxGraphNodes / MaxGraphPorts bounds. spec is the canonical
// generator spec recorded for Spec and Name.
func NewGraph(spec string, adj [][]int32) (*Graph, error) {
	n := len(adj)
	if n < 2 {
		return nil, fmt.Errorf("topology: graph %s: need at least 2 nodes, got %d", spec, n)
	}
	if n > MaxGraphNodes {
		return nil, fmt.Errorf("topology: graph %s: %d nodes exceeds the %d-node cap", spec, n, MaxGraphNodes)
	}
	ports := 0
	for _, row := range adj {
		if len(row) > ports {
			ports = len(row)
		}
	}
	if ports == 0 {
		return nil, fmt.Errorf("topology: graph %s: a node has no out-links", spec)
	}
	if ports > MaxGraphPorts {
		return nil, fmt.Errorf("topology: graph %s: %d ports exceeds the %d-port cap", spec, ports, MaxGraphPorts)
	}
	g := &Graph{spec: spec, n: n, ports: ports}
	g.nbr = make([]int32, n*ports)
	for i := range g.nbr {
		g.nbr[i] = None
	}
	for u, row := range adj {
		seen := make(map[int32]bool, len(row))
		for p, v := range row {
			if v == None {
				continue
			}
			if int(v) < 0 || int(v) >= n {
				return nil, fmt.Errorf("topology: graph %s: node %d port %d leads to out-of-range node %d", spec, u, p, v)
			}
			if int(v) == u {
				return nil, fmt.Errorf("topology: graph %s: node %d has a self-loop", spec, u)
			}
			if seen[v] {
				return nil, fmt.Errorf("topology: graph %s: node %d has duplicate links to %d", spec, u, v)
			}
			seen[v] = true
			g.nbr[u*ports+p] = v
		}
	}
	g.rev = make([]int16, n*ports)
	for u := 0; u < n; u++ {
		for p := 0; p < ports; p++ {
			g.rev[u*ports+p] = int16(None)
			if v := g.nbr[u*ports+p]; v != None {
				g.rev[u*ports+p] = int16(g.PortTo(int(v), u))
			}
		}
	}
	if err := g.computeDistances(); err != nil {
		return nil, err
	}
	return g, nil
}

// computeDistances fills the all-pairs BFS table and the diameter, failing
// on any unreachable pair (the routing algorithms need a finite minimal
// distance between every ordered pair).
func (g *Graph) computeDistances() error {
	g.dist = make([]int16, g.n*g.n)
	queue := make([]int32, 0, g.n)
	for s := 0; s < g.n; s++ {
		row := g.dist[s*g.n : (s+1)*g.n]
		for i := range row {
			row[i] = -1
		}
		row[s] = 0
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := int(queue[0])
			queue = queue[1:]
			for p := 0; p < g.ports; p++ {
				v := g.nbr[u*g.ports+p]
				if v == None || row[v] >= 0 {
					continue
				}
				row[v] = row[u] + 1
				queue = append(queue, v)
			}
		}
		for v, d := range row {
			if d < 0 {
				return fmt.Errorf("topology: graph %s: not strongly connected: no path %d -> %d", g.spec, s, v)
			}
			if int(d) > g.diam {
				g.diam = int(d)
			}
		}
	}
	return nil
}

// Spec returns the canonical generator spec of the instance, e.g.
// "random-regular:n=256,k=4,seed=7" — the argument grammar of
// internal/spec's "graph:" topology kind.
func (g *Graph) Spec() string { return g.spec }

// FlatNeighbors returns the graph's node-major flat neighbor table:
// FlatNeighbors()[u*Ports()+p] is Neighbor(u, p), None-padded. The slice is
// the graph's own backing store, shared so the compiled routing paths can
// index adjacency arithmetically without an interface call per port;
// callers must treat it as read-only.
func (g *Graph) FlatNeighbors() []int32 { return g.nbr }

// Distances returns the all-pairs BFS distance table, source-major:
// Distances()[u*Nodes()+v] is Distance(u, v). Like FlatNeighbors, the slice
// is the graph's backing store and must be treated as read-only.
func (g *Graph) Distances() []int16 { return g.dist }

// Diameter returns the longest shortest path over all ordered node pairs.
func (g *Graph) Diameter() int { return g.diam }

func (g *Graph) Name() string { return "graph(" + g.spec + ")" }
func (g *Graph) Nodes() int   { return g.n }
func (g *Graph) Ports() int   { return g.ports }

func (g *Graph) Neighbor(u, p int) int {
	if u < 0 || u >= g.n || p < 0 || p >= g.ports {
		return None
	}
	return int(g.nbr[u*g.ports+p])
}

func (g *Graph) ReversePort(u, p int) int {
	if u < 0 || u >= g.n || p < 0 || p >= g.ports {
		return None
	}
	return int(g.rev[u*g.ports+p])
}

func (g *Graph) PortTo(u, v int) int {
	for p := 0; p < g.ports; p++ {
		if g.nbr[u*g.ports+p] == int32(v) {
			return p
		}
	}
	return None
}

func (g *Graph) Distance(a, b int) int { return int(g.dist[a*g.n+b]) }

// sortedAdj canonicalizes an undirected adjacency-set representation into
// per-node port lists ordered by ascending neighbor id, so a generated
// instance depends only on its parameters, never on map iteration or on the
// order edges were produced in.
func sortedAdj(sets []map[int32]bool) [][]int32 {
	adj := make([][]int32, len(sets))
	for u, set := range sets {
		row := make([]int32, 0, len(set))
		for v := range set {
			row = append(row, v)
		}
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		adj[u] = row
	}
	return adj
}
