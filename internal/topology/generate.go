package topology

import (
	"fmt"

	"repro/internal/xrand"
)

// Generators for irregular interconnection networks. Each returns a *Graph
// whose adjacency is a pure function of its parameters: the random-regular
// generator derives every coin flip from the seed through xrand, and the
// structured generators (dragonfly, hyperx, fat-tree) are deterministic by
// construction, so the same spec always yields the same instance — the
// property that lets a generated topology live inside a fingerprinted
// RunSpec.

// NewRandomRegular generates a connected random k-regular undirected graph
// on n nodes (every link bidirectional) by the configuration model: n*k
// stubs are shuffled with a seeded generator and paired off; pairings with
// self-loops or duplicate edges, and graphs that come out disconnected, are
// rejected and retried with a seed derived from the attempt number, so the
// result is simple, connected, and deterministic in (n, k, seed).
func NewRandomRegular(n, k int, seed int64) (*Graph, error) {
	switch {
	case n < 4 || n > MaxGraphNodes:
		return nil, fmt.Errorf("topology: random-regular: n must be in [4,%d], got %d", MaxGraphNodes, n)
	case k < 2 || k > MaxGraphPorts:
		return nil, fmt.Errorf("topology: random-regular: k must be in [2,%d], got %d", MaxGraphPorts, k)
	case k >= n:
		return nil, fmt.Errorf("topology: random-regular: k=%d needs more than %d nodes", k, n)
	case n*k%2 != 0:
		return nil, fmt.Errorf("topology: random-regular: n*k must be even, got %dx%d", n, k)
	}
	spec := fmt.Sprintf("random-regular:n=%d,k=%d,seed=%d", n, k, seed)
	stubs := make([]int32, n*k)
	for attempt := 0; attempt < 200; attempt++ {
		rng := xrand.New(seed, int32(attempt))
		rng.Perm(stubs)
		sets := make([]map[int32]bool, n)
		for u := range sets {
			sets[u] = make(map[int32]bool, k)
		}
		ok := true
		for i := 0; i < len(stubs) && ok; i += 2 {
			u, v := int32(int(stubs[i])/k), int32(int(stubs[i+1])/k)
			if u == v || sets[u][v] {
				ok = false // self-loop or duplicate edge: reject the pairing
				break
			}
			sets[u][v] = true
			sets[v][u] = true
		}
		if !ok {
			continue
		}
		g, err := NewGraph(spec, sortedAdj(sets))
		if err != nil {
			continue // disconnected: retry with the next derived stream
		}
		return g, nil
	}
	return nil, fmt.Errorf("topology: random-regular: no simple connected pairing found for n=%d k=%d seed=%d", n, k, seed)
}

// NewDragonfly generates the canonical two-level dragonfly of Kim et al.
// (ISCA 2008) at router granularity: g groups of a routers, each group a
// full local mesh, and one bidirectional global link between every pair of
// groups. Each router hosts h = (g-1)/a global links (g-1 must divide
// evenly), with group gi's global channel c (0 <= c < g-1) leading to group
// (gi+1+c) mod g from router c/h — the standard relative-group wiring, which
// makes both endpoints derive the same link. Ports 0..a-2 are local,
// a-1..a-2+h global.
func NewDragonfly(a, g int) (*Graph, error) {
	switch {
	case a < 2:
		return nil, fmt.Errorf("topology: dragonfly: a must be >= 2, got %d", a)
	case g < 3:
		return nil, fmt.Errorf("topology: dragonfly: g must be >= 3, got %d", g)
	case (g-1)%a != 0:
		return nil, fmt.Errorf("topology: dragonfly: a=%d must divide g-1=%d (h=(g-1)/a global links per router)", a, g-1)
	}
	h := (g - 1) / a
	n := a * g
	if n > MaxGraphNodes {
		return nil, fmt.Errorf("topology: dragonfly: %d routers exceeds the %d-node cap", n, MaxGraphNodes)
	}
	if a-1+h > MaxGraphPorts {
		return nil, fmt.Errorf("topology: dragonfly: %d ports exceeds the %d-port cap", a-1+h, MaxGraphPorts)
	}
	spec := fmt.Sprintf("dragonfly:a=%d,g=%d", a, g)
	adj := make([][]int32, n)
	for gi := 0; gi < g; gi++ {
		for j := 0; j < a; j++ {
			u := gi*a + j
			row := make([]int32, 0, a-1+h)
			for j2 := 0; j2 < a; j2++ { // local full mesh
				if j2 != j {
					row = append(row, int32(gi*a+j2))
				}
			}
			for l := 0; l < h; l++ { // global channels hosted by this router
				c := j*h + l
				gj := (gi + 1 + c) % g
				cBack := (g - 2 - c) % g // index of the same channel on the peer side
				row = append(row, int32(gj*a+cBack/h))
			}
			adj[u] = row
		}
	}
	return NewGraph(spec, adj)
}

// NewHyperX generates a HyperX / flattened-butterfly network: nodes on a
// k-dimensional integer lattice with every pair of nodes that differ in
// exactly one coordinate directly connected. Ports are ordered low
// dimension first, within a dimension by ascending peer coordinate. The
// diameter equals the number of dimensions.
func NewHyperX(shape ...int) (*Graph, error) {
	if len(shape) == 0 {
		return nil, fmt.Errorf("topology: hyperx: need at least one dimension")
	}
	n, ports := 1, 0
	for i, s := range shape {
		if s < 2 {
			return nil, fmt.Errorf("topology: hyperx: side %d must be >= 2, got %d", i, s)
		}
		if n > MaxGraphNodes/s {
			return nil, fmt.Errorf("topology: hyperx: more than %d nodes", MaxGraphNodes)
		}
		n *= s
		ports += s - 1
	}
	if ports > MaxGraphPorts {
		return nil, fmt.Errorf("topology: hyperx: %d ports exceeds the %d-port cap", ports, MaxGraphPorts)
	}
	spec := "hyperx:"
	for i, s := range shape {
		if i > 0 {
			spec += "x"
		}
		spec += fmt.Sprint(s)
	}
	adj := make([][]int32, n)
	for u := 0; u < n; u++ {
		row := make([]int32, 0, ports)
		stride := 1
		for _, s := range shape {
			c := u / stride % s
			for c2 := 0; c2 < s; c2++ {
				if c2 != c {
					row = append(row, int32(u+(c2-c)*stride))
				}
			}
			stride *= s
		}
		adj[u] = row
	}
	return NewGraph(spec, adj)
}

// NewFatTree generates a two-level folded-Clos (leaf-spine) network:
// `leaves` leaf routers each connected to every one of `spines` spine
// routers by a bidirectional link. Leaves are nodes 0..leaves-1, spines
// follow. Any leaf pair is two hops apart through any spine, so the network
// is the canonical multi-path diameter-2 fabric.
func NewFatTree(leaves, spines int) (*Graph, error) {
	switch {
	case leaves < 2:
		return nil, fmt.Errorf("topology: fat-tree: leaves must be >= 2, got %d", leaves)
	case spines < 1:
		return nil, fmt.Errorf("topology: fat-tree: spines must be >= 1, got %d", spines)
	case leaves > MaxGraphPorts || spines > MaxGraphPorts:
		return nil, fmt.Errorf("topology: fat-tree: %dx%d exceeds the %d-port cap", leaves, spines, MaxGraphPorts)
	}
	n := leaves + spines
	spec := fmt.Sprintf("fat-tree:leaves=%d,spines=%d", leaves, spines)
	adj := make([][]int32, n)
	for l := 0; l < leaves; l++ {
		row := make([]int32, spines)
		for s := 0; s < spines; s++ {
			row[s] = int32(leaves + s)
		}
		adj[l] = row
	}
	for s := 0; s < spines; s++ {
		row := make([]int32, leaves)
		for l := 0; l < leaves; l++ {
			row[l] = int32(l)
		}
		adj[leaves+s] = row
	}
	return NewGraph(spec, adj)
}
