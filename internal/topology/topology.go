// Package topology provides the static interconnection networks used by the
// routing algorithms and the simulator: binary hypercubes, k-dimensional
// meshes, 2-dimensional tori, and shuffle-exchange networks.
//
// Nodes are numbered 0..Nodes()-1. Every node exposes a fixed list of
// directed output ports, enumerated "from low to high dimensions" exactly as
// the node model of the paper requires (Section 7.1: "each node fills its
// output buffers from low to high dimensions"). Port p of node u leads to
// node Neighbor(u, p); the reverse port is ReversePort(u, p). A port with no
// link attached (mesh borders) reports Neighbor == -1.
package topology

import "fmt"

// None marks a missing neighbor (e.g. beyond a mesh border).
const None = -1

// Topology is a static network of Nodes() nodes. Implementations must be
// immutable after construction and safe for concurrent use.
type Topology interface {
	// Name returns a short human-readable identifier such as "hypercube(10)".
	Name() string

	// Nodes returns the number of nodes in the network.
	Nodes() int

	// Ports returns the number of output ports per node. Every node has the
	// same port count; ports without an attached link return Neighbor == None.
	Ports() int

	// Neighbor returns the node reached from u through output port p, or
	// None if the port is not connected.
	Neighbor(u, p int) int

	// ReversePort returns the port of Neighbor(u,p) that leads back to u, or
	// None if the link is unidirectional (shuffle links) or absent.
	ReversePort(u, p int) int

	// PortTo returns the lowest-numbered port of u that leads to v, or None.
	PortTo(u, v int) int

	// Distance returns the length of a shortest path from a to b following
	// directed links.
	Distance(a, b int) int
}

// Flatten snapshots the adjacency of any Topology into the node-major flat
// neighbor table the compiled routing paths index arithmetically:
// Flatten(t)[u*t.Ports()+p] is t.Neighbor(u, p), None-padded. Graph
// instances hand out their internal table through FlatNeighbors without
// copying; Flatten is the generic export for every other implementation
// (one interface call per port, once, at construction time).
func Flatten(t Topology) []int32 {
	if g, ok := t.(*Graph); ok {
		return g.FlatNeighbors()
	}
	n, ports := t.Nodes(), t.Ports()
	nbr := make([]int32, n*ports)
	for u := 0; u < n; u++ {
		for p := 0; p < ports; p++ {
			nbr[u*ports+p] = int32(t.Neighbor(u, p))
		}
	}
	return nbr
}

// Degree returns the number of connected output ports of u.
func Degree(t Topology, u int) int {
	d := 0
	for p := 0; p < t.Ports(); p++ {
		if t.Neighbor(u, p) != None {
			d++
		}
	}
	return d
}

// Validate performs structural sanity checks that every Topology
// implementation must satisfy. It is used by tests and by the experiment
// harness before long runs.
func Validate(t Topology) error {
	n := t.Nodes()
	if n <= 0 {
		return fmt.Errorf("topology %s: non-positive node count %d", t.Name(), n)
	}
	for u := 0; u < n; u++ {
		for p := 0; p < t.Ports(); p++ {
			v := t.Neighbor(u, p)
			if v == None {
				continue
			}
			if v < 0 || v >= n {
				return fmt.Errorf("topology %s: node %d port %d leads to out-of-range node %d", t.Name(), u, p, v)
			}
			if rp := t.ReversePort(u, p); rp != None {
				if got := t.Neighbor(v, rp); got != u {
					return fmt.Errorf("topology %s: reverse port mismatch: %d --p%d--> %d --p%d--> %d (want %d)",
						t.Name(), u, p, v, rp, got, u)
				}
			}
			if q := t.PortTo(u, v); q == None {
				return fmt.Errorf("topology %s: PortTo(%d,%d) = None but port %d connects them", t.Name(), u, v, p)
			}
		}
	}
	return nil
}

// BFSDistance computes the shortest directed path length from a to b by
// breadth-first search. Implementations with closed-form distances use it as
// a test oracle; ShuffleExchange uses it directly (memoized).
func BFSDistance(t Topology, a, b int) int {
	if a == b {
		return 0
	}
	n := t.Nodes()
	dist := make([]int16, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[a] = 0
	queue := make([]int32, 0, n)
	queue = append(queue, int32(a))
	for len(queue) > 0 {
		u := int(queue[0])
		queue = queue[1:]
		for p := 0; p < t.Ports(); p++ {
			v := t.Neighbor(u, p)
			if v == None || dist[v] >= 0 {
				continue
			}
			dist[v] = dist[u] + 1
			if v == b {
				return int(dist[v])
			}
			queue = append(queue, int32(v))
		}
	}
	return -1
}
