package topology

import (
	"fmt"
	"sync"
)

// CCC port numbers.
const (
	// CCCRingPlus moves one position forward around the vertex cycle.
	CCCRingPlus = 0
	// CCCRingMinus moves one position backward around the vertex cycle.
	CCCRingMinus = 1
	// CCCCube crosses the hypercube link of the current position.
	CCCCube = 2
)

// CCC is the cube-connected cycles network of order n: every vertex w of
// the binary n-cube is replaced by a cycle of n nodes (w, 0) ... (w, n-1),
// and node (w, i) carries the cube link of dimension i to (w ^ 1<<i, i).
// Node (w, i) has id w*n + i. The paper's introduction lists the CCC among
// the networks its techniques cover (via [PFGS91]).
type CCC struct {
	dims  int
	nodes int

	mu      sync.Mutex
	distRow map[int][]int16
}

// NewCCC returns the cube-connected cycles of order dims (2 <= dims <= 16).
func NewCCC(dims int) *CCC {
	if dims < 2 || dims > 16 {
		panic(fmt.Sprintf("topology: CCC order %d out of range [2,16]", dims))
	}
	return &CCC{dims: dims, nodes: dims << dims, distRow: make(map[int][]int16)}
}

// Dims returns the order n: 2^n cycles of n nodes each.
func (c *CCC) Dims() int { return c.dims }

func (c *CCC) Name() string { return fmt.Sprintf("ccc(%d)", c.dims) }
func (c *CCC) Nodes() int   { return c.nodes }
func (c *CCC) Ports() int   { return 3 }

// Vertex returns the hypercube vertex w of node u.
func (c *CCC) Vertex(u int) int { return u / c.dims }

// Position returns the cycle position i of node u.
func (c *CCC) Position(u int) int { return u % c.dims }

// NodeAt returns the id of node (w, i).
func (c *CCC) NodeAt(w, i int) int {
	if w < 0 || w >= 1<<c.dims || i < 0 || i >= c.dims {
		panic(fmt.Sprintf("topology: CCC coordinate (%d,%d) out of range", w, i))
	}
	return w*c.dims + i
}

func (c *CCC) Neighbor(u, p int) int {
	w, i := c.Vertex(u), c.Position(u)
	switch p {
	case CCCRingPlus:
		return c.NodeAt(w, (i+1)%c.dims)
	case CCCRingMinus:
		return c.NodeAt(w, (i+c.dims-1)%c.dims)
	case CCCCube:
		return c.NodeAt(w^1<<i, i)
	}
	return None
}

func (c *CCC) ReversePort(u, p int) int {
	switch p {
	case CCCRingPlus:
		if c.dims == 2 {
			// Cycles of length 2: the two ring ports reach the same node,
			// and the lower-numbered one is its own reverse.
			return CCCRingPlus
		}
		return CCCRingMinus
	case CCCRingMinus:
		if c.dims == 2 {
			return CCCRingMinus
		}
		return CCCRingPlus
	case CCCCube:
		return CCCCube
	}
	return None
}

func (c *CCC) PortTo(u, v int) int {
	for p := 0; p < 3; p++ {
		if c.Neighbor(u, p) == v {
			return p
		}
	}
	return None
}

// Distance is the shortest path length (memoized BFS; CCC distances have no
// convenient closed form).
func (c *CCC) Distance(a, b int) int {
	c.mu.Lock()
	row, ok := c.distRow[a]
	c.mu.Unlock()
	if !ok {
		row = c.bfsRow(a)
		c.mu.Lock()
		c.distRow[a] = row
		c.mu.Unlock()
	}
	return int(row[b])
}

func (c *CCC) bfsRow(a int) []int16 {
	row := make([]int16, c.nodes)
	for i := range row {
		row[i] = -1
	}
	row[a] = 0
	queue := []int32{int32(a)}
	for len(queue) > 0 {
		u := int(queue[0])
		queue = queue[1:]
		for p := 0; p < 3; p++ {
			v := c.Neighbor(u, p)
			if v >= 0 && row[v] < 0 {
				row[v] = row[u] + 1
				queue = append(queue, int32(v))
			}
		}
	}
	return row
}
