package topology

import (
	"strings"
	"testing"
)

// mustGraph returns a helper that unwraps a generator result and runs the
// package-wide structural Validate checks, so tests can write
// mustGraph(t)(NewDragonfly(4, 9)).
func mustGraph(t *testing.T) func(*Graph, error) *Graph {
	return func(g *Graph, err error) *Graph {
		t.Helper()
		if err != nil {
			t.Fatalf("generator failed: %v", err)
		}
		if err := Validate(g); err != nil {
			t.Fatalf("Validate: %v", err)
		}
		return g
	}
}

func TestNewGraphValidation(t *testing.T) {
	cases := []struct {
		name string
		adj  [][]int32
		want string
	}{
		{"too small", [][]int32{{0}}, "at least 2 nodes"},
		{"self-loop", [][]int32{{0, 1}, {0}}, "self-loop"},
		{"duplicate", [][]int32{{1, 1}, {0}}, "duplicate"},
		{"out of range", [][]int32{{5}, {0}}, "out-of-range"},
		{"no out-links", [][]int32{{}, {}}, "no out-links"},
		{"disconnected", [][]int32{{1}, {0}, {3}, {2}}, "not strongly connected"},
		{"one-way sink", [][]int32{{1}, {2}, {None, None}}, "not strongly connected"},
	}
	for _, c := range cases {
		if _, err := NewGraph("test", c.adj); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got error %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestGraphDirectedCycle(t *testing.T) {
	// Directed 4-ring: strongly connected but asymmetric; ReversePort must
	// report None everywhere and distances must follow link direction.
	g := mustGraph(t)(NewGraph("ring4", [][]int32{{1}, {2}, {3}, {0}}))
	if g.Diameter() != 3 {
		t.Errorf("diameter = %d, want 3", g.Diameter())
	}
	if d := g.Distance(1, 0); d != 3 {
		t.Errorf("Distance(1,0) = %d, want 3 (directed)", d)
	}
	if rp := g.ReversePort(0, 0); rp != None {
		t.Errorf("ReversePort on one-way link = %d, want None", rp)
	}
}

func TestRandomRegularProperties(t *testing.T) {
	g := mustGraph(t)(NewRandomRegular(64, 4, 7))
	if g.Nodes() != 64 || g.Ports() != 4 {
		t.Fatalf("got %d nodes %d ports, want 64/4", g.Nodes(), g.Ports())
	}
	for u := 0; u < g.Nodes(); u++ {
		if d := Degree(g, u); d != 4 {
			t.Errorf("node %d degree %d, want 4", u, d)
		}
		for p := 0; p < g.Ports(); p++ {
			v := g.Neighbor(u, p)
			if g.ReversePort(u, p) == None {
				t.Errorf("link %d->%d has no reverse: graph must be undirected", u, v)
			}
			if p > 0 && v <= g.Neighbor(u, p-1) {
				t.Errorf("node %d ports not in ascending neighbor order", u)
			}
		}
	}
	if g.Spec() != "random-regular:n=64,k=4,seed=7" {
		t.Errorf("spec = %q", g.Spec())
	}
}

func TestRandomRegularDeterminism(t *testing.T) {
	a := mustGraph(t)(NewRandomRegular(128, 3, 42))
	b := mustGraph(t)(NewRandomRegular(128, 3, 42))
	for u := 0; u < a.Nodes(); u++ {
		for p := 0; p < a.Ports(); p++ {
			if a.Neighbor(u, p) != b.Neighbor(u, p) {
				t.Fatalf("same parameters produced different graphs at node %d port %d", u, p)
			}
		}
	}
	c := mustGraph(t)(NewRandomRegular(128, 3, 43))
	same := true
	for u := 0; u < a.Nodes() && same; u++ {
		for p := 0; p < a.Ports(); p++ {
			if a.Neighbor(u, p) != c.Neighbor(u, p) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestRandomRegularErrors(t *testing.T) {
	for _, c := range []struct{ n, k int }{{3, 2}, {8, 1}, {8, 9}, {5, 3}, {MaxGraphNodes + 2, 2}} {
		if _, err := NewRandomRegular(c.n, c.k, 1); err == nil {
			t.Errorf("NewRandomRegular(%d,%d) accepted invalid parameters", c.n, c.k)
		}
	}
}

func TestDragonflyStructure(t *testing.T) {
	g := mustGraph(t)(NewDragonfly(4, 9)) // h=2: 36 routers, 3 local + 2 global ports
	if g.Nodes() != 36 || g.Ports() != 5 {
		t.Fatalf("got %d nodes %d ports, want 36/5", g.Nodes(), g.Ports())
	}
	// Exactly one global link between every pair of groups.
	pairs := make(map[[2]int]int)
	for u := 0; u < g.Nodes(); u++ {
		gu := u / 4
		for p := 0; p < g.Ports(); p++ {
			v := g.Neighbor(u, p)
			gv := v / 4
			if gu == gv {
				if p >= 3 {
					t.Errorf("global port %d of node %d stays inside group %d", p, u, gu)
				}
				continue
			}
			if p < 3 {
				t.Errorf("local port %d of node %d leaves group %d", p, u, gu)
			}
			pairs[[2]int{gu, gv}]++
		}
	}
	for gi := 0; gi < 9; gi++ {
		for gj := 0; gj < 9; gj++ {
			if gi == gj {
				continue
			}
			if pairs[[2]int{gi, gj}] != 1 {
				t.Errorf("groups %d->%d have %d global links, want 1", gi, gj, pairs[[2]int{gi, gj}])
			}
		}
	}
	// Diameter 3: local, global, local.
	if g.Diameter() != 3 {
		t.Errorf("diameter = %d, want 3", g.Diameter())
	}
	if _, err := NewDragonfly(4, 10); err == nil {
		t.Error("NewDragonfly(4,10) accepted a!=divisor of g-1")
	}
}

func TestHyperXStructure(t *testing.T) {
	g := mustGraph(t)(NewHyperX(4, 4))
	if g.Nodes() != 16 || g.Ports() != 6 {
		t.Fatalf("got %d nodes %d ports, want 16/6", g.Nodes(), g.Ports())
	}
	if g.Diameter() != 2 {
		t.Errorf("diameter = %d, want 2 (one hop per dimension)", g.Diameter())
	}
	// 1-D HyperX is a complete graph.
	k := mustGraph(t)(NewHyperX(8))
	if k.Diameter() != 1 {
		t.Errorf("K8 diameter = %d, want 1", k.Diameter())
	}
	if _, err := NewHyperX(1, 4); err == nil {
		t.Error("NewHyperX accepted side 1")
	}
}

func TestFatTreeStructure(t *testing.T) {
	g := mustGraph(t)(NewFatTree(8, 4))
	if g.Nodes() != 12 || g.Ports() != 8 {
		t.Fatalf("got %d nodes %d ports, want 12/8", g.Nodes(), g.Ports())
	}
	if g.Diameter() != 2 {
		t.Errorf("diameter = %d, want 2 (leaf-spine-leaf)", g.Diameter())
	}
	// Every leaf reaches every spine directly; leaves never link to leaves.
	for l := 0; l < 8; l++ {
		for l2 := 0; l2 < 8; l2++ {
			if l != l2 && g.PortTo(l, l2) != None {
				t.Errorf("leaf %d directly linked to leaf %d", l, l2)
			}
		}
		for s := 0; s < 4; s++ {
			if g.PortTo(l, 8+s) == None {
				t.Errorf("leaf %d not linked to spine %d", l, s)
			}
		}
	}
}

func TestGraphDistanceMatchesBFS(t *testing.T) {
	g := mustGraph(t)(NewDragonfly(2, 5))
	for a := 0; a < g.Nodes(); a++ {
		for b := 0; b < g.Nodes(); b++ {
			if got, want := g.Distance(a, b), BFSDistance(g, a, b); got != want {
				t.Fatalf("Distance(%d,%d) = %d, BFS says %d", a, b, got, want)
			}
		}
	}
}
