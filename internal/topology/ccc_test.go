package topology

import "testing"

func TestCCCBasics(t *testing.T) {
	c := NewCCC(3)
	if c.Nodes() != 24 || c.Ports() != 3 || c.Dims() != 3 {
		t.Fatalf("nodes=%d ports=%d dims=%d", c.Nodes(), c.Ports(), c.Dims())
	}
	u := c.NodeAt(0b101, 1)
	if c.Vertex(u) != 0b101 || c.Position(u) != 1 {
		t.Fatalf("coordinate round trip failed for %d", u)
	}
	if got := c.Neighbor(u, CCCRingPlus); got != c.NodeAt(0b101, 2) {
		t.Errorf("ring+ = %d, want %d", got, c.NodeAt(0b101, 2))
	}
	if got := c.Neighbor(u, CCCRingMinus); got != c.NodeAt(0b101, 0) {
		t.Errorf("ring- = %d, want %d", got, c.NodeAt(0b101, 0))
	}
	// Cube link at position 1 flips bit 1.
	if got := c.Neighbor(u, CCCCube); got != c.NodeAt(0b111, 1) {
		t.Errorf("cube = %d, want %d", got, c.NodeAt(0b111, 1))
	}
}

func TestCCCValidate(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5} {
		if err := Validate(NewCCC(n)); err != nil {
			t.Errorf("ccc(%d): %v", n, err)
		}
	}
}

func TestCCCRingWrap(t *testing.T) {
	c := NewCCC(4)
	top := c.NodeAt(0, 3)
	if got := c.Neighbor(top, CCCRingPlus); got != c.NodeAt(0, 0) {
		t.Errorf("ring wrap = %d, want %d", got, c.NodeAt(0, 0))
	}
	if got := c.Neighbor(c.NodeAt(0, 0), CCCRingMinus); got != top {
		t.Errorf("ring wrap back = %d, want %d", got, top)
	}
}

func TestCCCDistanceSane(t *testing.T) {
	c := NewCCC(3)
	// Same cycle, adjacent positions: distance 1.
	if got := c.Distance(c.NodeAt(2, 0), c.NodeAt(2, 1)); got != 1 {
		t.Errorf("adjacent ring distance = %d", got)
	}
	// Across one cube link: distance 1.
	if got := c.Distance(c.NodeAt(0, 2), c.NodeAt(0b100, 2)); got != 1 {
		t.Errorf("cube link distance = %d", got)
	}
	// All pairs reachable and within the known CCC diameter bound of
	// 2n + floor(n/2) - 2 for n >= 4 (loose check: <= 3n here).
	for a := 0; a < c.Nodes(); a++ {
		for b := 0; b < c.Nodes(); b++ {
			d := c.Distance(a, b)
			if d < 0 || d > 3*c.Dims() {
				t.Fatalf("Distance(%d,%d) = %d", a, b, d)
			}
		}
	}
}

func TestCCCOrderTwoParallelRings(t *testing.T) {
	// CCC(2): cycles of length two; both ring ports reach the same node.
	c := NewCCC(2)
	u := c.NodeAt(1, 0)
	if c.Neighbor(u, CCCRingPlus) != c.Neighbor(u, CCCRingMinus) {
		t.Error("length-2 cycle ports should coincide")
	}
	if err := Validate(c); err != nil {
		t.Fatal(err)
	}
}
