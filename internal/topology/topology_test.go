package topology

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestHypercubeBasics(t *testing.T) {
	h := NewHypercube(4)
	if h.Nodes() != 16 {
		t.Fatalf("Nodes() = %d, want 16", h.Nodes())
	}
	if h.Ports() != 4 {
		t.Fatalf("Ports() = %d, want 4", h.Ports())
	}
	if got := h.Neighbor(0b1010, 0); got != 0b1011 {
		t.Errorf("Neighbor(1010,0) = %04b, want 1011", got)
	}
	if got := h.Neighbor(0b1010, 3); got != 0b0010 {
		t.Errorf("Neighbor(1010,3) = %04b, want 0010", got)
	}
	if got := h.PortTo(0b1010, 0b1000); got != 1 {
		t.Errorf("PortTo(1010,1000) = %d, want 1", got)
	}
	if got := h.PortTo(0b1010, 0b0101); got != None {
		t.Errorf("PortTo(1010,0101) = %d, want None", got)
	}
	if got := h.Distance(0b1010, 0b0101); got != 4 {
		t.Errorf("Distance(1010,0101) = %d, want 4", got)
	}
	if got := h.Level(0b1011); got != 3 {
		t.Errorf("Level(1011) = %d, want 3", got)
	}
}

func TestHypercubeValidate(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		if err := Validate(NewHypercube(n)); err != nil {
			t.Errorf("hypercube(%d): %v", n, err)
		}
	}
}

func TestHypercubeDistanceMatchesBFS(t *testing.T) {
	h := NewHypercube(5)
	for a := 0; a < h.Nodes(); a += 3 {
		for b := 0; b < h.Nodes(); b += 5 {
			if got, want := h.Distance(a, b), BFSDistance(h, a, b); got != want {
				t.Fatalf("Distance(%d,%d) = %d, BFS = %d", a, b, got, want)
			}
		}
	}
}

func TestHypercubePanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHypercube(0) did not panic")
		}
	}()
	NewHypercube(0)
}

func TestMeshBasics(t *testing.T) {
	m := NewMesh2D(4)
	if m.Nodes() != 16 || m.Ports() != 4 || m.Dims() != 2 {
		t.Fatalf("unexpected mesh shape: nodes=%d ports=%d dims=%d", m.Nodes(), m.Ports(), m.Dims())
	}
	u := m.NodeAt(2, 1)
	if m.Coord(u, 0) != 2 || m.Coord(u, 1) != 1 {
		t.Fatalf("coordinate round trip failed for %d", u)
	}
	if got := m.Neighbor(u, 0); got != m.NodeAt(3, 1) {
		t.Errorf("+x neighbor = %d, want %d", got, m.NodeAt(3, 1))
	}
	if got := m.Neighbor(u, 1); got != m.NodeAt(1, 1) {
		t.Errorf("-x neighbor = %d, want %d", got, m.NodeAt(1, 1))
	}
	if got := m.Neighbor(u, 2); got != m.NodeAt(2, 2) {
		t.Errorf("+y neighbor = %d, want %d", got, m.NodeAt(2, 2))
	}
	// Border: (3,*) has no +x neighbor, (0,*) no -x.
	if got := m.Neighbor(m.NodeAt(3, 2), 0); got != None {
		t.Errorf("border +x neighbor = %d, want None", got)
	}
	if got := m.Neighbor(m.NodeAt(0, 0), 1); got != None {
		t.Errorf("border -x neighbor = %d, want None", got)
	}
	if got := m.Distance(m.NodeAt(0, 3), m.NodeAt(2, 1)); got != 4 {
		t.Errorf("Distance = %d, want 4", got)
	}
	if got := m.Level(m.NodeAt(2, 3)); got != 5 {
		t.Errorf("Level = %d, want 5", got)
	}
}

func TestMeshKDimensional(t *testing.T) {
	m := NewMesh(3, 4, 2)
	if m.Nodes() != 24 || m.Ports() != 6 {
		t.Fatalf("nodes=%d ports=%d", m.Nodes(), m.Ports())
	}
	if err := Validate(m); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < m.Nodes(); a++ {
		for b := 0; b < m.Nodes(); b += 7 {
			if got, want := m.Distance(a, b), BFSDistance(m, a, b); got != want {
				t.Fatalf("Distance(%d,%d) = %d, BFS = %d", a, b, got, want)
			}
		}
	}
}

func TestMeshValidate(t *testing.T) {
	for _, m := range []*Mesh{NewMesh(1), NewMesh(5), NewMesh2D(2), NewMesh2D(5), NewMesh(2, 3, 4)} {
		if err := Validate(m); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

func TestTorusBasics(t *testing.T) {
	to := NewTorus2D(4)
	if to.Nodes() != 16 || to.Ports() != 4 {
		t.Fatalf("nodes=%d ports=%d", to.Nodes(), to.Ports())
	}
	// Wraparound both ways.
	if got := to.Neighbor(to.NodeAt(3, 2), 0); got != to.NodeAt(0, 2) {
		t.Errorf("wrap +x = %d, want %d", got, to.NodeAt(0, 2))
	}
	if got := to.Neighbor(to.NodeAt(0, 1), 1); got != to.NodeAt(3, 1) {
		t.Errorf("wrap -x = %d, want %d", got, to.NodeAt(3, 1))
	}
	if got := to.Distance(to.NodeAt(0, 0), to.NodeAt(3, 3)); got != 2 {
		t.Errorf("Distance = %d, want 2 (wrap both dims)", got)
	}
	if got := to.Distance(to.NodeAt(0, 0), to.NodeAt(2, 2)); got != 4 {
		t.Errorf("Distance = %d, want 4", got)
	}
}

func TestTorusValidateAndDistance(t *testing.T) {
	for _, to := range []*Torus{NewTorus2D(3), NewTorus2D(5), NewTorus(3, 4), NewTorus(4, 3, 3)} {
		if err := Validate(to); err != nil {
			t.Fatalf("%s: %v", to.Name(), err)
		}
		for a := 0; a < to.Nodes(); a += 2 {
			for b := 0; b < to.Nodes(); b += 3 {
				if got, want := to.Distance(a, b), BFSDistance(to, a, b); got != want {
					t.Fatalf("%s: Distance(%d,%d) = %d, BFS = %d", to.Name(), a, b, got, want)
				}
			}
		}
	}
}

func TestTorusRejectsTinySides(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTorus(2,4) did not panic")
		}
	}()
	NewTorus(2, 4)
}

func TestShuffleExchangeBasics(t *testing.T) {
	s := NewShuffleExchange(3)
	if s.Nodes() != 8 || s.Ports() != 2 {
		t.Fatalf("nodes=%d ports=%d", s.Nodes(), s.Ports())
	}
	if got := s.RotLeft(0b110); got != 0b101 {
		t.Errorf("RotLeft(110) = %03b, want 101", got)
	}
	if got := s.RotRight(0b101); got != 0b110 {
		t.Errorf("RotRight(101) = %03b, want 110", got)
	}
	if got := s.Neighbor(0b110, ShufflePort); got != 0b101 {
		t.Errorf("shuffle neighbor = %03b", got)
	}
	if got := s.Neighbor(0b110, ExchangePort); got != 0b111 {
		t.Errorf("exchange neighbor = %03b", got)
	}
	if err := Validate(s); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleRotationInverse(t *testing.T) {
	s := NewShuffleExchange(7)
	if err := quick.Check(func(u int) bool {
		u &= s.Nodes() - 1
		return s.RotRight(s.RotLeft(u)) == u && s.RotLeft(s.RotRight(u)) == u
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleCycles(t *testing.T) {
	s := NewShuffleExchange(4)
	// 0000 and 1111 are fixed points.
	if got := s.CycleLen(0b0000); got != 1 {
		t.Errorf("CycleLen(0000) = %d, want 1", got)
	}
	if got := s.CycleLen(0b1111); got != 1 {
		t.Errorf("CycleLen(1111) = %d, want 1", got)
	}
	// 0101/1010 form a degenerate length-2 cycle.
	if got := s.CycleLen(0b0101); got != 2 {
		t.Errorf("CycleLen(0101) = %d, want 2", got)
	}
	if got := s.CycleBreak(0b1010); got != 0b0101 {
		t.Errorf("CycleBreak(1010) = %04b, want 0101", got)
	}
	if got := s.CyclePos(0b0101); got != 0 {
		t.Errorf("CyclePos(0101) = %d, want 0", got)
	}
	if got := s.CyclePos(0b1010); got != 1 {
		t.Errorf("CyclePos(1010) = %d, want 1", got)
	}
	// 0001's cycle has full length 4 and break node 0001.
	if got := s.CycleLen(0b0001); got != 4 {
		t.Errorf("CycleLen(0001) = %d, want 4", got)
	}
	if got := s.CyclePos(0b0100); got != 2 {
		t.Errorf("CyclePos(0100) = %d, want 2", got)
	}
}

func TestShuffleCycleInvariants(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 6} {
		s := NewShuffleExchange(n)
		for u := 0; u < s.Nodes(); u++ {
			l := s.CycleLen(u)
			if n%l != 0 {
				t.Fatalf("n=%d: CycleLen(%d) = %d does not divide n", n, u, l)
			}
			// All cycle members share break node, length and level.
			br, lev := s.CycleBreak(u), s.Level(u)
			v := s.RotLeft(u)
			for v != u {
				if s.CycleBreak(v) != br || s.CycleLen(v) != l || s.Level(v) != lev {
					t.Fatalf("n=%d: cycle of %d is inconsistent at %d", n, u, v)
				}
				v = s.RotLeft(v)
			}
			// Position advances by one per shuffle step, mod cycle length.
			if got, want := s.CyclePos(s.RotLeft(u)), (s.CyclePos(u)+1)%l; got != want {
				t.Fatalf("n=%d: CyclePos(rot(%d)) = %d, want %d", n, u, got, want)
			}
		}
	}
}

func TestShuffleDistanceSymmetryNotAssumed(t *testing.T) {
	// Shuffle links are directed; distance need not be symmetric, but must
	// always be reachable (the network is strongly connected).
	s := NewShuffleExchange(4)
	for a := 0; a < s.Nodes(); a++ {
		for b := 0; b < s.Nodes(); b++ {
			if d := s.Distance(a, b); d < 0 {
				t.Fatalf("unreachable: %d -> %d", a, b)
			} else if d > 3*s.Dims() {
				t.Fatalf("Distance(%d,%d) = %d exceeds 3n", a, b, d)
			}
		}
	}
}

func TestDegree(t *testing.T) {
	m := NewMesh2D(3)
	if got := Degree(m, m.NodeAt(0, 0)); got != 2 {
		t.Errorf("corner degree = %d, want 2", got)
	}
	if got := Degree(m, m.NodeAt(1, 0)); got != 3 {
		t.Errorf("edge degree = %d, want 3", got)
	}
	if got := Degree(m, m.NodeAt(1, 1)); got != 4 {
		t.Errorf("center degree = %d, want 4", got)
	}
}

func TestHypercubeLevelQuick(t *testing.T) {
	h := NewHypercube(16)
	if err := quick.Check(func(u uint16) bool {
		return h.Level(int(u)) == bits.OnesCount16(u)
	}, nil); err != nil {
		t.Error(err)
	}
}
