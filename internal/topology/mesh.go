package topology

import "fmt"

// Mesh is a k-dimensional mesh with side lengths Shape. Node coordinates are
// mixed-radix: node id = c[0] + c[1]*Shape[0] + c[2]*Shape[0]*Shape[1] + ...
// Ports are ordered low dimension first; within a dimension the increasing
// direction comes first: port 2*i is +1 in dimension i, port 2*i+1 is -1.
// Border ports report Neighbor == None.
type Mesh struct {
	shape  []int
	stride []int
	nodes  int
}

// NewMesh returns the mesh with the given per-dimension side lengths.
func NewMesh(shape ...int) *Mesh {
	if len(shape) == 0 {
		panic("topology: mesh needs at least one dimension")
	}
	m := &Mesh{shape: append([]int(nil), shape...), stride: make([]int, len(shape)), nodes: 1}
	for i, s := range shape {
		if s < 1 {
			panic(fmt.Sprintf("topology: mesh side %d must be >= 1, got %d", i, s))
		}
		m.stride[i] = m.nodes
		m.nodes *= s
	}
	return m
}

// NewMesh2D returns the square 2-dimensional side x side mesh studied in
// Section 4 of the paper.
func NewMesh2D(side int) *Mesh { return NewMesh(side, side) }

// Dims returns the number of dimensions.
func (m *Mesh) Dims() int { return len(m.shape) }

// Shape returns the per-dimension side lengths. The caller must not modify it.
func (m *Mesh) Shape() []int { return m.shape }

func (m *Mesh) Name() string {
	s := "mesh("
	for i, d := range m.shape {
		if i > 0 {
			s += "x"
		}
		s += fmt.Sprint(d)
	}
	return s + ")"
}

func (m *Mesh) Nodes() int { return m.nodes }
func (m *Mesh) Ports() int { return 2 * len(m.shape) }

// Coord returns the coordinate of u along dimension i.
func (m *Mesh) Coord(u, i int) int { return u / m.stride[i] % m.shape[i] }

// NodeAt returns the node id at the given coordinates.
func (m *Mesh) NodeAt(coord ...int) int {
	if len(coord) != len(m.shape) {
		panic("topology: wrong coordinate count")
	}
	u := 0
	for i, c := range coord {
		if c < 0 || c >= m.shape[i] {
			panic(fmt.Sprintf("topology: coordinate %d out of range: %d", i, c))
		}
		u += c * m.stride[i]
	}
	return u
}

func (m *Mesh) Neighbor(u, p int) int {
	if p < 0 || p >= 2*len(m.shape) {
		return None
	}
	dim, dir := p/2, 1-2*(p&1) // +1 for even ports, -1 for odd
	c := m.Coord(u, dim) + dir
	if c < 0 || c >= m.shape[dim] {
		return None
	}
	return u + dir*m.stride[dim]
}

func (m *Mesh) ReversePort(u, p int) int {
	if m.Neighbor(u, p) == None {
		return None
	}
	return p ^ 1 // +1 and -1 ports of the same dimension are adjacent numbers
}

func (m *Mesh) PortTo(u, v int) int {
	for p := 0; p < m.Ports(); p++ {
		if m.Neighbor(u, p) == v {
			return p
		}
	}
	return None
}

// Distance is the Manhattan distance between the two nodes.
func (m *Mesh) Distance(a, b int) int {
	d := 0
	for i := range m.shape {
		ca, cb := m.Coord(a, i), m.Coord(b, i)
		if ca > cb {
			d += ca - cb
		} else {
			d += cb - ca
		}
	}
	return d
}

// Level returns the coordinate sum of u: the level of u when the mesh is
// hung from node (0,...,0) as in Section 4 of the paper.
func (m *Mesh) Level(u int) int {
	l := 0
	for i := range m.shape {
		l += m.Coord(u, i)
	}
	return l
}
