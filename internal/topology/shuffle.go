package topology

import (
	"fmt"
	"sync"
)

// Shuffle-exchange port numbers.
const (
	// ShufflePort is the directed shuffle link u -> rotLeft(u).
	ShufflePort = 0
	// ExchangePort is the (undirected) exchange link u <-> u^1.
	ExchangePort = 1
)

// ShuffleExchange is the 2^n-node shuffle-exchange network. Each node u has
// a directed shuffle link to rotLeft(u) (the left rotation of its n-bit
// address) and an undirected exchange link to u^1.
//
// The connected components of the shuffle links alone are the "shuffle
// cycles" of Section 5 of the paper; all nodes of a cycle share the same
// Hamming weight (the cycle's level). Cycle-related helpers (CycleLen,
// CyclePos, CycleBreak) implement the cycle-breaking bookkeeping the routing
// algorithm needs.
type ShuffleExchange struct {
	dims  int
	nodes int

	mu      sync.Mutex
	distRow map[int][]int16 // memoized BFS rows for Distance
}

// NewShuffleExchange returns the 2^dims-node shuffle-exchange network
// (1 <= dims <= 26).
func NewShuffleExchange(dims int) *ShuffleExchange {
	if dims < 1 || dims > 26 {
		panic(fmt.Sprintf("topology: shuffle-exchange dimension %d out of range [1,26]", dims))
	}
	return &ShuffleExchange{dims: dims, nodes: 1 << dims, distRow: make(map[int][]int16)}
}

// Dims returns the address width n (so Nodes() == 1<<n).
func (s *ShuffleExchange) Dims() int { return s.dims }

func (s *ShuffleExchange) Name() string { return fmt.Sprintf("shuffle-exchange(%d)", s.dims) }
func (s *ShuffleExchange) Nodes() int   { return s.nodes }
func (s *ShuffleExchange) Ports() int   { return 2 }

// RotLeft rotates the n-bit address one position to the left (the shuffle
// permutation).
func (s *ShuffleExchange) RotLeft(u int) int {
	return (u<<1 | u>>(s.dims-1)) & (s.nodes - 1)
}

// RotRight rotates the n-bit address one position to the right.
func (s *ShuffleExchange) RotRight(u int) int {
	return (u>>1 | (u&1)<<(s.dims-1)) & (s.nodes - 1)
}

func (s *ShuffleExchange) Neighbor(u, p int) int {
	switch p {
	case ShufflePort:
		return s.RotLeft(u)
	case ExchangePort:
		return u ^ 1
	}
	return None
}

func (s *ShuffleExchange) ReversePort(u, p int) int {
	switch p {
	case ShufflePort:
		// Shuffle links are directed; rotLeft(u) only leads back to u when
		// the rotation is an involution on u (cycles of length <= 2).
		if s.RotLeft(s.RotLeft(u)) == u {
			return ShufflePort
		}
		return None
	case ExchangePort:
		return ExchangePort
	}
	return None
}

func (s *ShuffleExchange) PortTo(u, v int) int {
	if s.RotLeft(u) == v {
		return ShufflePort
	}
	if u^1 == v {
		return ExchangePort
	}
	return None
}

// Distance is the shortest directed path length (memoized BFS; there is no
// simple closed form for shuffle-exchange distances).
func (s *ShuffleExchange) Distance(a, b int) int {
	s.mu.Lock()
	row, ok := s.distRow[a]
	s.mu.Unlock()
	if !ok {
		row = s.bfsRow(a)
		s.mu.Lock()
		s.distRow[a] = row
		s.mu.Unlock()
	}
	return int(row[b])
}

func (s *ShuffleExchange) bfsRow(a int) []int16 {
	row := make([]int16, s.nodes)
	for i := range row {
		row[i] = -1
	}
	row[a] = 0
	queue := []int32{int32(a)}
	for len(queue) > 0 {
		u := int(queue[0])
		queue = queue[1:]
		for p := 0; p < 2; p++ {
			v := s.Neighbor(u, p)
			if row[v] < 0 {
				row[v] = row[u] + 1
				queue = append(queue, int32(v))
			}
		}
	}
	return row
}

// CycleLen returns the length of u's shuffle cycle: the smallest L >= 1 with
// rotLeft^L(u) == u. L always divides Dims(); L < Dims() only for periodic
// ("degenerate") addresses such as 0101.
func (s *ShuffleExchange) CycleLen(u int) int {
	v := s.RotLeft(u)
	l := 1
	for v != u {
		v = s.RotLeft(v)
		l++
	}
	return l
}

// CycleBreak returns the break node of u's shuffle cycle: the minimum
// address in the rotation orbit. The paper notes any node of a cycle can be
// chosen to break it; the minimum gives a canonical, stateless choice.
func (s *ShuffleExchange) CycleBreak(u int) int {
	min := u
	v := s.RotLeft(u)
	for v != u {
		if v < min {
			min = v
		}
		v = s.RotLeft(v)
	}
	return min
}

// CyclePos returns the number of shuffle steps from the cycle's break node
// to u (0 for the break node itself). The shuffle edge entering the break
// node — the edge from the node at position CycleLen-1 — is the cycle's
// dateline: traversing it moves a message from queue channel 0 to channel 1.
func (s *ShuffleExchange) CyclePos(u int) int {
	v := s.CycleBreak(u)
	pos := 0
	for v != u {
		v = s.RotLeft(v)
		pos++
	}
	return pos
}

// Level returns the Hamming weight of u, which is constant across u's
// shuffle cycle and is the cycle's level in the sense of Section 5.
func (s *ShuffleExchange) Level(u int) int {
	l := 0
	for v := u; v != 0; v &= v - 1 {
		l++
	}
	return l
}
