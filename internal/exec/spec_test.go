package exec

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
)

// small is a cheap, valid spec used throughout; dim-4 hypercube, static.
func small() RunSpec {
	return RunSpec{Algo: "hypercube-adaptive:4", Seed: 1}
}

func TestCanonFillsPaperDefaults(t *testing.T) {
	c := small().Canon()
	if c.V != SpecVersion || c.Pattern != "random" || c.Engine != "buffered" ||
		c.Policy != "first-free" || c.Inject != "static" || c.Packets != 1 ||
		c.MaxCycles != 10_000_000 || c.QueueCap != 5 {
		t.Fatalf("canonical form misses paper defaults: %+v", c)
	}
	if c.Lambda != 0 || c.Warmup != 0 || c.Measure != 0 {
		t.Fatalf("static canon should zero the dynamic window: %+v", c)
	}
	d := RunSpec{Algo: "hypercube-adaptive:4", Inject: "dynamic"}.Canon()
	if d.Lambda != 1 || d.Warmup != 500 || d.Measure != 1500 || d.Packets != 0 || d.MaxCycles != 0 {
		t.Fatalf("dynamic canon wrong: %+v", d)
	}
}

func TestValidateFieldErrors(t *testing.T) {
	cases := []struct {
		name  string
		mut   func(*RunSpec)
		field string
	}{
		{"missing algo", func(s *RunSpec) { s.Algo = "" }, "algo"},
		{"bad algo", func(s *RunSpec) { s.Algo = "hypercube-adaptive:0" }, "algo"},
		{"unknown algo", func(s *RunSpec) { s.Algo = "ring-adaptive:8" }, "algo"},
		{"bad pattern", func(s *RunSpec) { s.Pattern = "zigzag" }, "pattern"},
		{"bad engine", func(s *RunSpec) { s.Engine = "quantum" }, "engine"},
		{"bad policy", func(s *RunSpec) { s.Policy = "best-fit" }, "policy"},
		{"bad inject", func(s *RunSpec) { s.Inject = "burst" }, "inject"},
		{"bad packets", func(s *RunSpec) { s.Packets = -1 }, "packets"},
		{"bad lambda", func(s *RunSpec) { s.Inject = "dynamic"; s.Lambda = 2 }, "lambda"},
		{"bad measure", func(s *RunSpec) { s.Inject = "dynamic"; s.Measure = -1 }, "measure"},
		{"bad cap", func(s *RunSpec) { s.QueueCap = -2 }, "queue_cap"},
		{"bad workers", func(s *RunSpec) { s.Workers = -1 }, "workers"},
		{"bad faults", func(s *RunSpec) { s.Faults = "link:1:2" }, "faults"},
		{"bad version", func(s *RunSpec) { s.V = 99 }, "v"},
	}
	for _, tc := range cases {
		s := small()
		tc.mut(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, s)
			continue
		}
		var fe *FieldError
		if !errors.As(err, &fe) {
			t.Errorf("%s: error %v is not a *FieldError", tc.name, err)
			continue
		}
		if fe.Field != tc.field {
			t.Errorf("%s: blamed field %q, want %q (%v)", tc.name, fe.Field, tc.field, err)
		}
	}
}

// The satellite rule: Workers > 1 on the atomic engine is an error, not a
// silent no-op.
func TestValidateRejectsAtomicWorkers(t *testing.T) {
	s := small()
	s.Engine = "atomic"
	s.Workers = 4
	err := s.Validate()
	var fe *FieldError
	if !errors.As(err, &fe) || fe.Field != "workers" {
		t.Fatalf("want workers FieldError, got %v", err)
	}
	s.Workers = 1 // one worker is the sequential path: allowed
	if err := s.Validate(); err != nil {
		t.Fatalf("atomic with workers=1 should validate: %v", err)
	}
}

// Fingerprint must be a function of the spec's content, not of its JSON
// spelling: reordered fields, explicit defaults, and excluded execution
// knobs all map to the same key.
func TestFingerprintStability(t *testing.T) {
	base := RunSpec{Algo: "hypercube-adaptive:6", Pattern: "transpose", Seed: 7, QueueCap: 5}
	fp := base.Fingerprint("build1")

	reordered := []byte(`{"queue_cap":5,"seed":7,"pattern":"transpose","algo":"hypercube-adaptive:6"}`)
	var s2 RunSpec
	if err := json.Unmarshal(reordered, &s2); err != nil {
		t.Fatal(err)
	}
	if got := s2.Fingerprint("build1"); got != fp {
		t.Errorf("JSON field order changed the fingerprint: %s vs %s", got, fp)
	}

	explicit := base
	explicit.V = SpecVersion
	explicit.Engine = "buffered"
	explicit.Policy = "first-free"
	explicit.Inject = "static"
	explicit.Packets = 1
	explicit.MaxCycles = 10_000_000
	if got := explicit.Fingerprint("build1"); got != fp {
		t.Errorf("spelling out the defaults changed the fingerprint: %s vs %s", got, fp)
	}

	knobs := base
	knobs.Workers = 8
	knobs.RebalanceEvery = 64
	if got := knobs.Fingerprint("build1"); got != fp {
		t.Errorf("Workers/RebalanceEvery leaked into the fingerprint: %s vs %s", got, fp)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := small()
	fp := base.Fingerprint("build1")
	muts := map[string]func(*RunSpec){
		"algo":    func(s *RunSpec) { s.Algo = "hypercube-adaptive:5" },
		"pattern": func(s *RunSpec) { s.Pattern = "complement" },
		"engine":  func(s *RunSpec) { s.Engine = "atomic" },
		"policy":  func(s *RunSpec) { s.Policy = "random" },
		"seed":    func(s *RunSpec) { s.Seed = 2 },
		"packets": func(s *RunSpec) { s.Packets = 3 },
		"cap":     func(s *RunSpec) { s.QueueCap = 6 },
		"faults":  func(s *RunSpec) { s.Faults = "node:3@100" },
	}
	for name, mut := range muts {
		s := base
		mut(&s)
		if s.Fingerprint("build1") == fp {
			t.Errorf("changing %s did not change the fingerprint", name)
		}
	}
	if base.Fingerprint("build2") == fp {
		t.Error("changing the build id did not change the fingerprint")
	}
}

func TestBuildAndRun(t *testing.T) {
	s := small()
	eng, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if eng == nil {
		t.Fatal("Build returned a nil simulator")
	}
	res, err := Run(context.Background(), s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Delivered != 16 { // 16 nodes x 1 packet
		t.Fatalf("dim-4 static-1 run delivered %d packets, want 16", res.Metrics.Delivered)
	}
	if res.FP != s.Fingerprint(BuildID()) {
		t.Errorf("result fingerprint %s does not match the spec's %s", res.FP, s.Fingerprint(BuildID()))
	}
	if res.Spec.Packets != 1 || res.Spec.Engine != "buffered" {
		t.Errorf("result spec is not canonical: %+v", res.Spec)
	}
}

// Two executions of the same spec must produce identical Metrics — the
// invariant that makes the fingerprint a content address.
func TestRunDeterministic(t *testing.T) {
	s := RunSpec{Algo: "hypercube-adaptive:5", Inject: "dynamic", Warmup: 50, Measure: 100, Seed: 3}
	a, err := Run(context.Background(), s, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics != b.Metrics {
		t.Fatalf("same spec, different metrics:\n%+v\n%+v", a.Metrics, b.Metrics)
	}
}

func TestCostAndParallelizable(t *testing.T) {
	stat := small()
	dyn := RunSpec{Algo: "hypercube-adaptive:4", Inject: "dynamic", Warmup: 100, Measure: 300}
	if stat.Cost() <= 0 || dyn.Cost() <= 0 {
		t.Fatalf("valid specs must have positive cost: %v %v", stat.Cost(), dyn.Cost())
	}
	if (RunSpec{}).Cost() != 0 {
		t.Error("invalid spec should cost 0")
	}
	if !stat.Parallelizable() {
		t.Error("buffered non-credited run should be parallelizable")
	}
	atomic := small()
	atomic.Engine = "atomic"
	if atomic.Parallelizable() {
		t.Error("atomic engine must not be parallelizable")
	}
}
