package exec

import (
	"context"
	"time"

	"repro/internal/buildid"
	"repro/internal/obs"
	"repro/internal/sim"
)

// simObserver is the observer type Build threads through to the engine
// config; an alias so spec.go stays free of the obs import noise.
type simObserver = obs.Observer

// Result is the serializable outcome of executing a RunSpec: what the
// store persists under the spec's fingerprint and the daemon returns from
// POST /v1/sim. Metrics is the deterministic payload — byte-identical for
// the same fingerprint whether freshly simulated or served from the store;
// ElapsedSec and BuildID describe the execution that produced it.
type Result struct {
	V          int         `json:"v"`
	FP         string      `json:"fingerprint"`
	Spec       RunSpec     `json:"spec"` // canonical form
	Metrics    sim.Metrics `json:"metrics"`
	ElapsedSec float64     `json:"elapsed_sec"`
	BuildID    string      `json:"build_id"`
}

// BuildID identifies the running binary for fingerprints; see
// bench.BuildID.
func BuildID() string { return buildid.ID() }

// Run validates the spec, builds the engine, source and plan, and executes
// the run to completion (or ctx cancellation). o, when non-nil, taps the
// run's Observer probes — progress streaming for the daemon's SSE
// endpoint; observers are read-only, so the Result is bit-identical with
// or without one.
func Run(ctx context.Context, s RunSpec, o obs.Observer) (Result, error) {
	c, err := s.compile()
	if err != nil {
		return Result{}, err
	}
	eng, err := c.build(o)
	if err != nil {
		return Result{}, err
	}
	src, plan, err := c.source()
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	res, err := eng.Run(ctx, src, plan)
	if err != nil {
		return Result{}, err
	}
	return Result{
		V:          SpecVersion,
		FP:         s.Fingerprint(BuildID()),
		Spec:       c.spec,
		Metrics:    res.Metrics,
		ElapsedSec: time.Since(start).Seconds(),
		BuildID:    BuildID(),
	}, nil
}
