// Package exec is the executor of the simulation-as-a-service stack: it
// defines RunSpec, the one canonical, serializable description of a
// simulation run, and turns specs into engine runs. Everything that used to
// describe a run its own way — raw sim.Config assembly, the public facade's
// functional options, the sweep's cell identities — converges here: the
// bench harness builds RunSpecs for its cells, the routesimd daemon accepts
// them as its request body, and the fingerprint a spec hashes to is the key
// of the content-addressed result store (internal/store).
package exec

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/traffic"
)

// SpecVersion is the current RunSpec schema version. Version 2 splits the
// network out of the algorithm spec: "algo" carries the bare family
// ("hypercube-adaptive") and the new "topology" field the network spec
// ("hypercube:10", "graph:dragonfly:a=4,g=9"). Version-1 specs (combined
// "hypercube-adaptive:10" algos, no topology field) are accepted
// everywhere and canonicalized to v2 by Canon; their fingerprints are
// unchanged (Fingerprint reconstructs the v1 recipe for every
// v1-expressible spec), so stored results survive the schema change.
const SpecVersion = 2

// RunSpec is the canonical description of one simulation run — the single
// source of truth the engines, the bench harness, the sweep, and the
// routesimd HTTP API all build from. The zero value of every optional
// field selects the paper's defaults (Canon documents each). Workers and
// RebalanceEvery are execution knobs, not identity: results are
// bit-deterministic across both (the engines' documented invariant), so
// Fingerprint deliberately excludes them.
type RunSpec struct {
	// V is the spec schema version; 0 is treated as the current version,
	// and v1 specs are accepted and canonicalized to v2.
	V int `json:"v"`
	// Algo is the algorithm family, e.g. "hypercube-adaptive",
	// "mesh-adaptive", "graph-adaptive", with the network named by
	// Topology. The combined v1 form ("hypercube-adaptive:10") is still
	// accepted: Canon splits it into family + implied topology.
	Algo string `json:"algo"`
	// Topology is the network spec (internal/spec topology grammar):
	// "hypercube:10", "mesh:16x16", "torus:8x8", "shuffle:5", "ccc:4", or a
	// generated irregular network such as
	// "graph:random-regular:n=256,k=4,seed=7" or "graph:dragonfly:a=4,g=9".
	// Empty with a combined v1 Algo means the topology the algo implies.
	Topology string `json:"topology,omitempty"`
	// Pattern is the traffic-pattern spec: "random", "complement",
	// "transpose", "leveled", "bit-reversal", "mesh-transpose",
	// "hotspot:<frac>". Default "random".
	Pattern string `json:"pattern,omitempty"`
	// Engine selects the simulation model: "buffered" (default) or
	// "atomic".
	Engine string `json:"engine,omitempty"`
	// Policy selects among admissible moves: "first-free" (default),
	// "random", "static-first", "last-free".
	Policy string `json:"policy,omitempty"`
	// Seed makes the run reproducible; the pattern and traffic source
	// derive their seeds from it (Seed+1 and Seed+2, the bench harness's
	// long-standing convention).
	Seed int64 `json:"seed,omitempty"`
	// Inject selects the injection model: "static" (default) or "dynamic".
	Inject string `json:"inject,omitempty"`
	// Traffic selects the dynamic traffic model (internal/spec traffic
	// grammar): "bernoulli" (default), "mmpp:on=..,off=..,p10=..,p01=..",
	// "onoff:hi=..,lo=..,period=..,on=..", or "trace:<path>". The generative
	// models require Inject "dynamic"; trace replay works with either
	// injection plan. Rate parameters documented as defaulting do so from
	// Lambda.
	Traffic string `json:"traffic,omitempty"`
	// Packets is the static model's packets per node (default 1).
	Packets int `json:"packets,omitempty"`
	// Lambda is the dynamic model's per-cycle injection probability
	// (default 1, the paper's λ=1).
	Lambda float64 `json:"lambda,omitempty"`
	// Warmup and Measure are the dynamic model's window (defaults 500 and
	// 1500, the paper's Section 7.1 protocol).
	Warmup  int64 `json:"warmup,omitempty"`
	Measure int64 `json:"measure,omitempty"`
	// MaxCycles bounds a static run (default 10,000,000).
	MaxCycles int64 `json:"max_cycles,omitempty"`
	// QueueCap is the central-queue capacity (default 5, the paper's value).
	QueueCap int `json:"queue_cap,omitempty"`
	// Faults is a fault-schedule spec in the fault.ParseSpec grammar, e.g.
	// "links:0.05@0,node:3@100+50". Empty means no faults.
	Faults string `json:"faults,omitempty"`
	// HopBudget bounds fault-misroute detours; 0 selects the plan default.
	HopBudget int `json:"hop_budget,omitempty"`
	// Workers shards the buffered engine across goroutines. Results are
	// bit-identical for any value, so it is excluded from Fingerprint.
	// The atomic engine is inherently sequential: Validate rejects
	// Workers > 1 with Engine "atomic" instead of silently ignoring it.
	Workers int `json:"workers,omitempty"`
	// RebalanceEvery forwards sim.Config.RebalanceEvery (occupancy-weighted
	// shard re-cuts; results identical either way, excluded from
	// Fingerprint).
	RebalanceEvery int `json:"rebalance_every,omitempty"`
}

// FieldError reports a RunSpec field that failed validation — the
// spec-level sibling of internal/spec's ParseError. Err, when non-nil,
// carries the underlying structured parse error (e.g. *spec.ParseError or
// *spec.UnknownNameError) and is exposed through Unwrap for errors.As.
type FieldError struct {
	Field  string // the RunSpec field, as its JSON name ("algo", "lambda")
	Reason string
	Err    error
}

func (e *FieldError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("runspec: field %q: %v", e.Field, e.Err)
	}
	return fmt.Sprintf("runspec: field %q: %s", e.Field, e.Reason)
}

func (e *FieldError) Unwrap() error { return e.Err }

func fieldErr(field, format string, args ...any) error {
	return &FieldError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// Canon returns the spec with every defaulted field made explicit: V set
// to SpecVersion, engine/policy/inject/pattern names normalized, and the
// paper's default parameters filled in. Fingerprint and the daemon's
// responses always use the canonical form, so two specs that differ only
// in how they spell a default are the same run.
//
// Canon is also the v1 -> v2 rewrite: a combined v1 algo spec
// ("hypercube-adaptive:10") is split into the bare family plus the implied
// topology field ("hypercube:10"), and V 0/1 become SpecVersion. A spec
// whose explicit Topology contradicts its combined Algo is left combined
// for Validate to reject.
func (s RunSpec) Canon() RunSpec {
	c := s
	if c.V == 0 || c.V == 1 {
		c.V = SpecVersion
	}
	if family, topoSpec, err := spec.SplitAlgo(c.Algo); err == nil && topoSpec != "" {
		if c.Topology == "" || c.Topology == topoSpec {
			c.Algo, c.Topology = family, topoSpec
		}
	}
	if c.Pattern == "" {
		c.Pattern = "random"
	}
	if c.Engine == "" {
		c.Engine = "buffered"
	}
	if c.Policy == "" {
		c.Policy = "first-free"
	}
	if c.Inject == "" {
		c.Inject = "static"
	}
	switch c.Inject {
	case "static":
		if c.Packets == 0 {
			c.Packets = 1
		}
		if c.MaxCycles == 0 {
			c.MaxCycles = 10_000_000
		}
		c.Lambda, c.Warmup, c.Measure = 0, 0, 0
	case "dynamic":
		if c.Lambda == 0 {
			c.Lambda = 1
		}
		if c.Warmup == 0 {
			c.Warmup = 500
		}
		if c.Measure == 0 {
			c.Measure = 1500
		}
		if c.Traffic == "" {
			c.Traffic = "bernoulli"
		}
		c.Packets, c.MaxCycles = 0, 0
	}
	if c.QueueCap == 0 {
		c.QueueCap = 5
	}
	return c
}

// Validate checks the spec without building it. Errors are structured:
// every failure is a *FieldError naming the offending field, wrapping the
// underlying *spec.ParseError / *spec.UnknownNameError when the field
// value itself is a sub-spec.
func (s RunSpec) Validate() error {
	_, err := s.compile()
	return err
}

// compiled is the validated, constructed form of a spec.
type compiled struct {
	spec    RunSpec // canonical
	algo    core.Algorithm
	pat     traffic.Pattern
	policy  sim.Policy
	plan    fault.Plan // zero unless faults are set
	faults  *fault.Plan
	traffic *spec.TrafficSpec // nil when the spec names no traffic model
}

func (s RunSpec) compile() (*compiled, error) {
	// A combined v1 algo that contradicts an explicit topology survives
	// Canon un-split; detect the conflict against the original spec so the
	// error can name both halves.
	if family, topoSpec, err := spec.SplitAlgo(s.Algo); err == nil && topoSpec != "" && s.Topology != "" && s.Topology != topoSpec {
		return nil, fieldErr("topology", "%q conflicts with the topology %q implied by algo %q; use the bare family %q with an explicit topology",
			s.Topology, topoSpec, s.Algo, family)
	}
	c := s.Canon()
	if c.V != SpecVersion {
		return nil, fieldErr("v", "unsupported spec version %d (this build speaks %d)", c.V, SpecVersion)
	}
	if c.Algo == "" {
		return nil, fieldErr("algo", "required; e.g. %q (see AlgorithmNames)", "hypercube-adaptive:8")
	}
	family, _, err := spec.SplitAlgo(c.Algo)
	if err != nil {
		return nil, &FieldError{Field: "algo", Err: err}
	}
	if c.Topology == "" {
		return nil, fieldErr("topology", "required with bare algorithm family %q; e.g. %q, or use the combined form %q", c.Algo, "hypercube:8", c.Algo+":8")
	}
	topo, err := spec.Topology(c.Topology)
	if err != nil {
		// When the topology was implied by a combined v1 algo spec, the bad
		// value arrived through the algo field; blame what the caller wrote.
		field := "topology"
		if s.Topology == "" {
			field = "algo"
		}
		return nil, &FieldError{Field: field, Err: err}
	}
	algo, err := spec.AlgorithmOn(family, topo)
	if err != nil {
		return nil, &FieldError{Field: "algo", Err: err}
	}
	pat, err := spec.Pattern(c.Pattern, algo, c.Seed+1)
	if err != nil {
		return nil, &FieldError{Field: "pattern", Err: err}
	}
	switch c.Engine {
	case "buffered", "atomic":
	default:
		return nil, fieldErr("engine", "unknown engine %q, valid: %v", c.Engine, sim.EngineKinds)
	}
	policy, err := sim.ParsePolicy(c.Policy)
	if err != nil {
		return nil, &FieldError{Field: "policy", Err: err}
	}
	switch c.Inject {
	case "static":
		if c.Packets < 1 {
			return nil, fieldErr("packets", "static injection needs packets >= 1, got %d", c.Packets)
		}
		if c.MaxCycles < 1 {
			return nil, fieldErr("max_cycles", "must be >= 1, got %d", c.MaxCycles)
		}
	case "dynamic":
		if !(c.Lambda > 0 && c.Lambda <= 1) { // rejects NaN too
			return nil, fieldErr("lambda", "must be in (0,1], got %v", c.Lambda)
		}
		if c.Warmup < 0 || c.Measure < 1 {
			return nil, fieldErr("measure", "dynamic window needs warmup >= 0 and measure >= 1, got %d/%d", c.Warmup, c.Measure)
		}
	default:
		return nil, fieldErr("inject", "unknown injection model %q, valid: static, dynamic", c.Inject)
	}
	if c.QueueCap < 1 {
		return nil, fieldErr("queue_cap", "must be >= 1, got %d", c.QueueCap)
	}
	if c.Workers < 0 {
		return nil, fieldErr("workers", "must be >= 0, got %d", c.Workers)
	}
	if c.Workers > 1 && c.Engine == "atomic" {
		return nil, fieldErr("workers",
			"the atomic engine is inherently sequential and cannot use %d workers; omit workers or use the buffered engine", c.Workers)
	}
	out := &compiled{spec: c, algo: algo, pat: pat, policy: policy}
	if c.Traffic != "" {
		ts, err := spec.ParseTraffic(c.Traffic)
		if err != nil {
			return nil, &FieldError{Field: "traffic", Err: err}
		}
		if ts.Dynamic() && c.Inject != "dynamic" {
			return nil, fieldErr("traffic", "model %q generates dynamic traffic and needs inject \"dynamic\", got %q", ts.Kind, c.Inject)
		}
		out.traffic = ts
	}
	if c.Faults != "" {
		plan, err := fault.ParseSpec(c.Faults)
		if err != nil {
			return nil, &FieldError{Field: "faults", Err: err}
		}
		out.faults = plan
	}
	if c.HopBudget < 0 {
		return nil, fieldErr("hop_budget", "must be >= 0, got %d", c.HopBudget)
	}
	return out, nil
}

// Fingerprint hashes everything that determines the run's results — the
// canonical spec fields plus the build identity — into the store key for
// its result. The recipe is an explicit field-ordered string, so the hash
// is stable across JSON field reordering and Go struct changes; Workers
// and RebalanceEvery are excluded because results are bit-deterministic
// across both. The spec version is folded in, so a schema change
// invalidates stored entries instead of misreading them, and so does
// buildID, so a rebuilt binary re-simulates rather than trusting results
// of different code.
// Every spec expressible in the v1 grammar — a v1 family on its implied
// topology kind — hashes the exact v1 recipe (version literal 1, combined
// algo spec, no topology part), so every store entry written before the v2
// schema still matches. Only specs v1 could not express (graph-adaptive
// over a generated network) use the v2 recipe with its separate topology
// field.
func (s RunSpec) Fingerprint(buildID string) string {
	c := s.Canon()
	version, algoField, topoPart := 1, c.Algo, ""
	if c.Topology != "" {
		if combined, ok := spec.JoinAlgo(c.Algo, c.Topology); ok && c.Algo != "graph-adaptive" {
			algoField = combined
		} else {
			version, topoPart = 2, "|topology="+c.Topology
		}
	}
	// The traffic part appears only for non-default models, so every spec
	// that predates the traffic field — and every spec spelling the default
	// explicitly — keeps the fingerprint it always had. No older recipe can
	// collide with the inserted part: the fields before it (faults, hop)
	// never contain "|traffic=".
	trafficPart := ""
	if c.Traffic != "" && c.Traffic != "bernoulli" {
		trafficPart = "|traffic=" + c.Traffic
	}
	id := fmt.Sprintf("rs%d|algo=%s%s|pattern=%s|engine=%s|policy=%s|seed=%d|inject=%s|packets=%d|lambda=%g|warmup=%d|measure=%d|maxcycles=%d|cap=%d|faults=%s|hop=%d%s|build=%s",
		version, algoField, topoPart, c.Pattern, c.Engine, c.Policy, c.Seed, c.Inject,
		c.Packets, c.Lambda, c.Warmup, c.Measure, c.MaxCycles,
		c.QueueCap, c.Faults, c.HopBudget, trafficPart, buildID)
	h := sha256.Sum256([]byte(id))
	return hex.EncodeToString(h[:12])
}

// Build validates the spec and constructs the selected simulation engine,
// configured but not yet running — the spec-level replacement for
// assembling a sim.Config by hand. Use Source for the matching traffic
// source and plan, or Run to do both and execute.
func (s RunSpec) Build() (sim.Simulator, error) {
	c, err := s.compile()
	if err != nil {
		return nil, err
	}
	return c.build(nil)
}

func (c *compiled) build(o simObserver) (sim.Simulator, error) {
	cfg := sim.Config{
		Algorithm:      c.algo,
		QueueCap:       c.spec.QueueCap,
		Policy:         c.policy,
		Seed:           c.spec.Seed,
		Workers:        c.spec.Workers,
		RebalanceEvery: c.spec.RebalanceEvery,
		Faults:         c.faults,
		HopBudget:      c.spec.HopBudget,
	}
	if o != nil {
		cfg.Observer = o
	}
	return sim.NewSimulator(c.spec.Engine, cfg)
}

// Source validates the spec and constructs its traffic source and run
// plan, the counterpart of Build.
func (s RunSpec) Source() (sim.TrafficSource, sim.Plan, error) {
	c, err := s.compile()
	if err != nil {
		return nil, sim.Plan{}, err
	}
	return c.source()
}

// source builds the traffic source and plan. It can fail: a trace model
// opens its file here, at run time.
func (c *compiled) source() (sim.TrafficSource, sim.Plan, error) {
	nodes := c.algo.Topology().Nodes()
	plan := sim.StaticPlan(c.spec.MaxCycles)
	if c.spec.Inject == "dynamic" {
		plan = sim.DynamicPlan(c.spec.Warmup, c.spec.Measure)
	}
	if c.traffic != nil {
		src, err := c.traffic.Build(c.pat, nodes, c.spec.Lambda, c.spec.Seed+2)
		if err != nil {
			return nil, sim.Plan{}, &FieldError{Field: "traffic", Reason: err.Error(), Err: err}
		}
		return src, plan, nil
	}
	if c.spec.Inject == "dynamic" {
		return traffic.NewBernoulliSource(c.pat, nodes, c.spec.Lambda, c.spec.Seed+2), plan, nil
	}
	return traffic.NewStaticSource(c.pat, nodes, c.spec.Packets, c.spec.Seed+2), plan, nil
}

// Cost estimates the run's work in node-cycles for admission control and
// worker-grant decisions — the RunSpec analogue of the sweep's cell cost
// model. Only relative accuracy matters. Invalid specs cost 0.
func (s RunSpec) Cost() float64 {
	c, err := s.compile()
	if err != nil {
		return 0
	}
	nodes := c.algo.Topology().Nodes()
	if c.spec.Inject == "dynamic" {
		return float64(nodes) * float64(c.spec.Warmup+c.spec.Measure)
	}
	diam := 1
	for 1<<diam < nodes {
		diam++
	}
	return float64(nodes) * float64(c.spec.Packets) * float64(diam)
}

// Parallelizable reports whether the run's results are invariant under
// Workers > 1 (credited algorithms and the atomic engine are not), the
// fact the scheduler needs to decide worker grants. Invalid specs report
// false.
func (s RunSpec) Parallelizable() bool {
	c, err := s.compile()
	if err != nil {
		return false
	}
	return !c.algo.Props().Credits && c.spec.Engine != "atomic"
}
