package exec

import (
	"errors"
	"testing"
)

// TestGoldenV1Fingerprints pins the fingerprint of one spec per v1
// algorithm family (plus assorted option shapes) to the exact values the
// v1 schema produced, captured before the v2 topology split. These are the
// store keys of every result cached before the schema change: if any of
// them moves, warmed stores and checkpoint journals silently go cold.
func TestGoldenV1Fingerprints(t *testing.T) {
	cases := []struct {
		spec RunSpec
		want string
	}{
		{RunSpec{Algo: "hypercube-adaptive:4", Seed: 1}, "745de69293f7f39a26b4ef70"},
		{RunSpec{Algo: "hypercube-adaptive:10", Pattern: "transpose", Inject: "dynamic", Seed: 7}, "6e69f36aadd1b07d5cdd14d8"},
		{RunSpec{Algo: "hypercube-hung:6", Policy: "random", Seed: 2}, "4e4a87633f267feb67260a15"},
		{RunSpec{Algo: "hypercube-ecube:5", Engine: "atomic", Seed: 3}, "6a8789fb09333b8cc6bf6ae3"},
		{RunSpec{Algo: "mesh-adaptive:16x16", Pattern: "mesh-transpose", Seed: 4, QueueCap: 7}, "b0d9ca82e1dc0bb9bd4374cb"},
		{RunSpec{Algo: "mesh-twophase:8x8", Inject: "dynamic", Lambda: 0.08, Seed: 5}, "d72406ad2752bc3fbf8c5857"},
		{RunSpec{Algo: "mesh-xy:4x3x3", Seed: 6}, "1883f36980d4af77c382f240"},
		{RunSpec{Algo: "torus-adaptive:8x8", Faults: "links:0.05@0", HopBudget: 12, Seed: 8}, "9d145ab94f7207d5f4d3d7c9"},
		{RunSpec{Algo: "shuffle-adaptive:5", Engine: "atomic", Seed: 9}, "4c6028b4747a93942b990296"},
		{RunSpec{Algo: "shuffle-static:4", Packets: 3, Seed: 10}, "415b7eefa4d03c186aa91e7d"},
		{RunSpec{Algo: "shuffle-eager:4", Seed: 11}, "189bf533ff8f7684502c9c58"},
		{RunSpec{Algo: "ccc-adaptive:4", Pattern: "hotspot:0.3", Seed: 12}, "657713edb15ee404dd3b84d4"},
		{RunSpec{Algo: "ccc-static:3", MaxCycles: 12345, Seed: 13}, "46ca73b0ba08ad251f098eb3"},
		{RunSpec{Algo: "torus-adaptive:4x3x3", Workers: 8, RebalanceEvery: 64, Seed: 14}, "9c7805cdc040c203cd9710ea"},
	}
	for _, c := range cases {
		if got := c.spec.Fingerprint("golden-build"); got != c.want {
			t.Errorf("%s: fingerprint drifted: got %s, want %s", c.spec.Algo, got, c.want)
		}
		// The v2 spelling of the same run — bare family plus explicit
		// topology — must land on the same store key.
		v2 := c.spec.Canon()
		if v2.Topology == "" {
			t.Errorf("%s: Canon did not derive a topology", c.spec.Algo)
			continue
		}
		if got := v2.Fingerprint("golden-build"); got != c.want {
			t.Errorf("%s: v2 spelling moved the fingerprint: got %s, want %s", c.spec.Algo, got, c.want)
		}
		// An explicitly versioned v1 spec is the same run too.
		v1 := c.spec
		v1.V = 1
		if got := v1.Fingerprint("golden-build"); got != c.want {
			t.Errorf("%s: explicit v:1 moved the fingerprint: got %s", c.spec.Algo, got)
		}
	}
}

func TestCanonSplitsCombinedAlgo(t *testing.T) {
	c := RunSpec{Algo: "hypercube-adaptive:6"}.Canon()
	if c.V != SpecVersion || c.Algo != "hypercube-adaptive" || c.Topology != "hypercube:6" {
		t.Errorf("Canon = v%d algo=%q topology=%q", c.V, c.Algo, c.Topology)
	}
	c = RunSpec{V: 1, Algo: "graph-adaptive:dragonfly:a=4,g=9"}.Canon()
	if c.Algo != "graph-adaptive" || c.Topology != "graph:dragonfly:a=4,g=9" {
		t.Errorf("Canon(graph) = algo=%q topology=%q", c.Algo, c.Topology)
	}
	// Already-split specs pass through unchanged.
	c = RunSpec{Algo: "mesh-xy", Topology: "mesh:4x4"}.Canon()
	if c.Algo != "mesh-xy" || c.Topology != "mesh:4x4" {
		t.Errorf("Canon(split) = algo=%q topology=%q", c.Algo, c.Topology)
	}
	// A redundant-but-consistent pair collapses to the split form.
	c = RunSpec{Algo: "mesh-xy:4x4", Topology: "mesh:4x4"}.Canon()
	if c.Algo != "mesh-xy" || c.Topology != "mesh:4x4" {
		t.Errorf("Canon(redundant) = algo=%q topology=%q", c.Algo, c.Topology)
	}
}

func TestValidateV2Fields(t *testing.T) {
	// Bare family with explicit topology is the canonical v2 form.
	s := RunSpec{Algo: "hypercube-adaptive", Topology: "hypercube:4"}
	if err := s.Validate(); err != nil {
		t.Errorf("v2 split spec rejected: %v", err)
	}
	// graph-adaptive over a generated network.
	s = RunSpec{Algo: "graph-adaptive", Topology: "graph:random-regular:n=16,k=3,seed=1"}
	if err := s.Validate(); err != nil {
		t.Errorf("graph-adaptive spec rejected: %v", err)
	}
	cases := []struct {
		name  string
		spec  RunSpec
		field string
	}{
		{"conflict", RunSpec{Algo: "hypercube-adaptive:6", Topology: "hypercube:5"}, "topology"},
		{"kind conflict", RunSpec{Algo: "mesh-adaptive:4x4", Topology: "torus:4x4"}, "topology"},
		{"missing topology", RunSpec{Algo: "hypercube-adaptive"}, "topology"},
		{"bad topology", RunSpec{Algo: "graph-adaptive", Topology: "graph:dragonfly:a=4,g=10"}, "topology"},
		{"unknown topology", RunSpec{Algo: "graph-adaptive", Topology: "ring:9"}, "topology"},
		{"algo/topology mismatch", RunSpec{Algo: "mesh-adaptive", Topology: "hypercube:4"}, "algo"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.spec)
			continue
		}
		var fe *FieldError
		if !errors.As(err, &fe) {
			t.Errorf("%s: error %v is not a *FieldError", tc.name, err)
			continue
		}
		if fe.Field != tc.field {
			t.Errorf("%s: blamed field %q, want %q (%v)", tc.name, fe.Field, tc.field, err)
		}
	}
}

// TestGraphFingerprintShape: generated-topology specs use the v2 recipe and
// are sensitive to the generator parameters.
func TestGraphFingerprintShape(t *testing.T) {
	base := RunSpec{Algo: "graph-adaptive", Topology: "graph:dragonfly:a=4,g=9", Seed: 1}
	fp := base.Fingerprint("b")
	// The combined algo spelling is the same run.
	combined := RunSpec{Algo: "graph-adaptive:dragonfly:a=4,g=9", Seed: 1}
	if got := combined.Fingerprint("b"); got != fp {
		t.Errorf("combined graph spelling moved the fingerprint: %s vs %s", got, fp)
	}
	other := base
	other.Topology = "graph:dragonfly:a=4,g=13"
	if other.Fingerprint("b") == fp {
		t.Error("different generator parameters share a fingerprint")
	}
}

// TestTrafficFingerprints pins the traffic field's fingerprint behavior:
// the default model (empty or explicit "bernoulli") must not move any
// pre-traffic store key, while non-default models get their own stable key.
func TestTrafficFingerprints(t *testing.T) {
	base := RunSpec{Algo: "hypercube-adaptive:10", Pattern: "transpose", Inject: "dynamic", Seed: 7}
	const want = "6e69f36aadd1b07d5cdd14d8" // golden v1 value, pinned above
	if got := base.Fingerprint("golden-build"); got != want {
		t.Fatalf("base fingerprint drifted: %s", got)
	}
	explicit := base
	explicit.Traffic = "bernoulli"
	if got := explicit.Fingerprint("golden-build"); got != want {
		t.Errorf("explicit default traffic moved the fingerprint: got %s, want %s", got, want)
	}

	mmpp := base
	mmpp.Traffic = "mmpp:on=0.9,off=0.05,p10=0.1,p01=0.1"
	const wantMMPP = "5d48e5123fe54048a8277d11"
	if got := mmpp.Fingerprint("golden-build"); got != wantMMPP {
		t.Errorf("mmpp fingerprint drifted: got %s, want %s", got, wantMMPP)
	}
	if got := mmpp.Fingerprint("golden-build"); got == want {
		t.Error("mmpp traffic did not change the fingerprint")
	}
}

func TestValidateTrafficField(t *testing.T) {
	ok := RunSpec{Algo: "hypercube-adaptive:4", Inject: "dynamic", Traffic: "mmpp:on=0.8"}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid mmpp spec rejected: %v", err)
	}
	var fe *FieldError
	bad := RunSpec{Algo: "hypercube-adaptive:4", Inject: "dynamic", Traffic: "poisson"}
	if err := bad.Validate(); !errors.As(err, &fe) || fe.Field != "traffic" {
		t.Errorf("unknown traffic model: %v", err)
	}
	static := RunSpec{Algo: "hypercube-adaptive:4", Traffic: "mmpp"}
	if err := static.Validate(); !errors.As(err, &fe) || fe.Field != "traffic" {
		t.Errorf("mmpp under static injection should fail on the traffic field: %v", err)
	}
	// Trace replay is allowed under both plans; parse errors still surface.
	trace := RunSpec{Algo: "hypercube-adaptive:4", Traffic: "trace:run.jsonl"}
	if err := trace.Validate(); err != nil {
		t.Errorf("trace under static injection rejected: %v", err)
	}
	malformed := RunSpec{Algo: "hypercube-adaptive:4", Inject: "dynamic", Traffic: "mmpp:on=2"}
	if err := malformed.Validate(); !errors.As(err, &fe) || fe.Field != "traffic" {
		t.Errorf("malformed mmpp: %v", err)
	}
}
