package sim

import (
	"context"
	"fmt"
	"math/bits"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// AtomicEngine is the abstract store-and-forward model of Section 2: the
// greedy Route(q) procedure applied directly to the central queues, with no
// link buffers. Each cycle every queue may advance its head packet into one
// admissible target queue (checked and applied atomically, so MinFree-based
// bubble conditions are exact by construction), every node may accept one
// injected packet, and deliveries are immediate.
//
// It is the reference semantics for deadlock-freedom studies and for quick
// algorithm comparisons; the buffered Engine is the one that reproduces the
// paper's latency tables.
type AtomicEngine struct {
	cfg     Config
	algo    core.Algorithm
	topo    topology.Topology
	nodes   int
	classes int
	obsState

	// Central queues live in one flat slab, mirroring the buffered
	// engine's layout: queue qi = node*classes+class occupies
	// qbuf[qi*queueCap : (qi+1)*queueCap] as a ring with head qhead[qi]
	// and length qlen[qi]. One slab instead of nodes*classes separate
	// FIFO allocations keeps the per-cycle sweep over every queue on
	// sequential memory.
	qbuf     []core.Packet
	qhead    []int32
	qlen     []int32
	queueCap int

	// Port-mask fast path (see nodePhaseA in engine.go for the buffered
	// counterpart): with a PortMaskRouter algorithm and the FirstFree
	// policy, mask-eligible head packets route through an inline bitmask
	// scan over the neighbor table instead of materializing Moves. nbr is
	// the same node*ports+port layout the buffered engine uses.
	ports  int
	nbr    []int32
	pmr    core.PortMaskRouter
	maskFF bool

	injQ   []injSlot
	rngs   []xrand.RNG
	nextID []int64
	// injFull mirrors injQ[u].full as a bitmap for the batched injection
	// path (see BatchSource); maintained unconditionally, like the buffered
	// engine's. curBatch is non-nil while the current run is batched;
	// batchBuf is its reusable PendingInject buffer.
	injFull  []uint64
	curBatch BatchSource
	batchBuf []core.PendingInject
	// actBits marks nodes whose traffic source may still inject (bit u of
	// word u/64), replacing a []bool sweep over all nodes: the injection
	// loop iterates set bits only, so drained sources cost nothing.
	actBits []uint64
	headID  []int64 // per-queue head snapshot: one move per packet per cycle

	// flt is the fault-injection machinery; nil without Config.Faults.
	flt *faultState

	rs atomicRunState
}

// atomicRunState is the control state of the atomic engine's stepwise run;
// see runState for the buffered engine's equivalent.
type atomicRunState struct {
	src       TrafficSource
	win       runWindow
	stopAt    int64
	maxCycles int64
	drain     bool
	idle      int
	m         Metrics
	st        cycleStats
	cand      [64]core.Move
	adm       [64]int
	pm        core.PortMasks
	chooser   Engine // borrows (*Engine).choose for policy selection
	// pt accumulates the per-section wall-clock breakdown under PhaseProf
	// (the atomic model's sections map onto the phase names: injection draws
	// -> Inject, injection-queue drain -> PhaseB, Route(q) sweep -> PhaseA);
	// lastCycleEnd anchors OtherNs.
	pt           PhaseTimes
	lastCycleEnd time.Time

	active bool
	done   bool
	res    RunResult
	err    error
}

// NewAtomicEngine builds an atomic engine for the configuration. Workers is
// ignored: atomic semantics are inherently sequential.
func NewAtomicEngine(cfg Config) (*AtomicEngine, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	a := cfg.Algorithm
	t := a.Topology()
	e := &AtomicEngine{
		cfg:     cfg,
		algo:    a,
		topo:    t,
		nodes:   t.Nodes(),
		classes: a.NumClasses(),
	}
	nQueues := e.nodes * e.classes
	e.queueCap = cfg.QueueCap
	e.qbuf = make([]core.Packet, nQueues*e.queueCap)
	e.qhead = make([]int32, nQueues)
	e.qlen = make([]int32, nQueues)
	e.injQ = make([]injSlot, e.nodes)
	e.rngs = make([]xrand.RNG, e.nodes)
	e.nextID = make([]int64, e.nodes)
	e.actBits = make([]uint64, (e.nodes+63)/64)
	e.injFull = make([]uint64, (e.nodes+63)/64)
	e.headID = make([]int64, nQueues)
	e.ports = t.Ports()
	if !cfg.DisablePortMask {
		e.pmr, _ = a.(core.PortMaskRouter)
	}
	if e.pmr != nil && e.ports <= 32 {
		e.nbr = make([]int32, e.nodes*e.ports)
		for u := 0; u < e.nodes; u++ {
			for p := 0; p < e.ports; p++ {
				v := t.Neighbor(u, p)
				if v == topology.None || v == u {
					e.nbr[u*e.ports+p] = -1
				} else {
					e.nbr[u*e.ports+p] = int32(v)
				}
			}
		}
	}
	e.maskFF = e.pmr != nil && e.nbr != nil && cfg.Policy == PolicyFirstFree
	if !cfg.Faults.Empty() {
		if t.Ports() > 32 {
			return nil, fmt.Errorf("sim: fault injection supports at most 32 ports per node, %s has %d", t.Name(), t.Ports())
		}
		sched, err := cfg.Faults.Compile(t)
		if err != nil {
			return nil, err
		}
		e.flt = newFaultState(t, sched, cfg.HopBudget)
	}
	e.initObs(&cfg)
	e.reset()
	return e, nil
}

func (e *AtomicEngine) reset() {
	for i := range e.qlen {
		e.qlen[i] = 0
		e.qhead[i] = 0
	}
	for u := 0; u < e.nodes; u++ {
		e.injQ[u] = injSlot{}
		e.rngs[u] = xrand.New(e.cfg.Seed, int32(u))
		e.nextID[u] = int64(u) << 36
	}
	for i := range e.actBits {
		e.actBits[i] = ^uint64(0)
	}
	for i := range e.injFull {
		e.injFull[i] = 0
	}
	if tail := uint(e.nodes) & 63; tail != 0 {
		e.actBits[len(e.actBits)-1] = (uint64(1) << tail) - 1
	}
	if e.flt != nil {
		e.flt.reset()
	}
	if e.obsOn {
		e.obsCore.Reset()
	}
}

func (e *AtomicEngine) queueIndex(node int32, class core.QueueClass) int {
	return int(node)*e.classes + int(class)
}

// qAt returns the i-th packet (FIFO order) of queue qi, in place.
func (e *AtomicEngine) qAt(qi int, i int32) *core.Packet {
	pos := e.qhead[qi] + i
	if pos >= int32(e.queueCap) {
		pos -= int32(e.queueCap)
	}
	return &e.qbuf[qi*e.queueCap+int(pos)]
}

// qPush appends the packet to queue qi and returns the new length.
func (e *AtomicEngine) qPush(qi int, pkt *core.Packet) int {
	n := e.qlen[qi]
	if int(n) == e.queueCap {
		panic("sim: push into a full queue (admissibility bug)")
	}
	pos := e.qhead[qi] + n
	if pos >= int32(e.queueCap) {
		pos -= int32(e.queueCap)
	}
	e.qbuf[qi*e.queueCap+int(pos)] = *pkt
	e.qlen[qi] = n + 1
	return int(n + 1)
}

// qPop removes and returns the head packet of queue qi.
func (e *AtomicEngine) qPop(qi int) core.Packet {
	pkt := *e.qAt(qi, 0)
	head := e.qhead[qi] + 1
	if head >= int32(e.queueCap) {
		head -= int32(e.queueCap)
	}
	e.qhead[qi] = head
	e.qlen[qi]--
	return pkt
}

// qFree returns the free capacity of queue qi.
func (e *AtomicEngine) qFree(qi int) int {
	return e.queueCap - int(e.qlen[qi])
}

// RunStatic simulates until the finite traffic of src has drained.
func (e *AtomicEngine) RunStatic(src TrafficSource, maxCycles int64) (Metrics, error) {
	res, err := e.run(context.Background(), src, runWindow{0, -1}, 0, maxCycles, true)
	return res.Metrics, err
}

// RunDynamic simulates warmup+measure cycles of dynamic injection.
func (e *AtomicEngine) RunDynamic(src TrafficSource, warmup, measure int64) (Metrics, error) {
	res, err := e.run(context.Background(), src, runWindow{warmup, warmup + measure}, warmup+measure, warmup+measure, false)
	return res.Metrics, err
}

// Start begins a stepwise run; see (*Engine).Start.
func (e *AtomicEngine) Start(src TrafficSource, plan Plan) {
	win, stopAt, maxCycles, drain := plan.params()
	e.start(src, win, stopAt, maxCycles, drain)
}

func (e *AtomicEngine) start(src TrafficSource, win runWindow, stopAt, maxCycles int64, drain bool) {
	e.reset()
	e.curBatch = batchFor(src, &e.cfg, e.flt != nil)
	if e.curBatch != nil && e.batchBuf == nil {
		e.batchBuf = make([]core.PendingInject, e.nodes)
	}
	e.rs = atomicRunState{
		src: src, win: win, stopAt: stopAt, maxCycles: maxCycles, drain: drain,
		active:  true,
		chooser: Engine{cfg: e.cfg},
	}
}

func (e *AtomicEngine) end(wasCanceled bool, err error) {
	rs := &e.rs
	rs.res = e.finish(rs.m, wasCanceled)
	rs.err = err
	rs.done = true
	rs.src = nil
	e.curBatch = nil
}

// Result returns the outcome of the run once Step reported done; see
// (*Engine).Result.
func (e *AtomicEngine) Result() (RunResult, error) { return e.rs.res, e.rs.err }

// Metrics returns the aggregate metrics of the current stepwise run.
func (e *AtomicEngine) Metrics() Metrics { return e.rs.m }

func (e *AtomicEngine) run(ctx context.Context, src TrafficSource, win runWindow, stopAt, maxCycles int64, drain bool) (RunResult, error) {
	e.start(src, win, stopAt, maxCycles, drain)
	for {
		if canceled(ctx) {
			e.end(true, ctx.Err())
			return e.rs.res, e.rs.err
		}
		if done, _ := e.Step(); done {
			return e.rs.res, e.rs.err
		}
	}
}

// Step simulates one cycle of the started plan; see (*Engine).Step.
func (e *AtomicEngine) Step() (done bool, err error) {
	rs := &e.rs
	if !rs.active {
		panic("sim: Step called before Start")
	}
	if rs.done {
		return true, rs.err
	}
	m := &rs.m
	cycle := m.Cycles
	if rs.stopAt > 0 && cycle >= rs.stopAt {
		e.end(false, nil)
		return true, rs.err
	}
	if rs.maxCycles > 0 && cycle > rs.maxCycles {
		e.end(false, fmt.Errorf("sim: %s exceeded %d cycles with %d packets in flight",
			e.algo.Name(), rs.maxCycles, m.InFlight))
		return true, rs.err
	}
	prevMoves := m.Moves
	st := &rs.st
	src, win := rs.src, rs.win
	f := e.flt
	if f != nil {
		e.applyFaultsAtomic(cycle, st)
	}
	prof := e.cfg.PhaseProf
	var t0, t1, t2, t3 time.Time
	var other int64
	if prof {
		t0 = time.Now()
		if !rs.lastCycleEnd.IsZero() {
			other = t0.Sub(rs.lastCycleEnd).Nanoseconds()
		}
	}

	// Injection attempts, over nodes whose source may still inject.
	if bs := e.curBatch; bs != nil {
		e.injectBatchAtomic(bs, cycle, win, st)
	} else {
		e.injectScalarAtomic(src, f, cycle, win, st)
	}

	if prof {
		t1 = time.Now()
	}

	// Snapshot the head of every queue: a packet may advance at most
	// once per cycle, even if it lands in a queue processed later.
	for qi := range e.qlen {
		if e.qlen[qi] == 0 {
			e.headID[qi] = 0
		} else {
			e.headID[qi] = e.qAt(qi, 0).ID
		}
	}

	// Drain injection queues into central queues (one hop of the model).
	for u := int32(0); int(u) < e.nodes; u++ {
		sl := &e.injQ[u]
		if !sl.full {
			continue
		}
		if sl.pkt.Dst == u {
			e.deliverAtomic(sl.pkt, cycle, win, st)
			sl.full = false
			e.injFull[u>>6] &^= 1 << (uint(u) & 63)
			continue
		}
		qi := e.queueIndex(u, sl.pkt.Class)
		if e.qFree(qi) >= 1 {
			sl.pkt.InjectedAt = cycle // latency runs from network entry
			l := e.qPush(qi, &sl.pkt)
			if l > st.maxQueue {
				st.maxQueue = l
			}
			if e.obsOn {
				st.obs.GaugeAdd(obs.GQueueOccupancy, 1)
				st.obs.Observe(obs.HQueueLen, int64(l))
			}
			sl.full = false
			e.injFull[u>>6] &^= 1 << (uint(u) & 63)
			st.moves++
		}
	}

	if prof {
		t2 = time.Now()
	}

	// Route(q) for every queue: advance the head packet if possible.
	for u := int32(0); int(u) < e.nodes; u++ {
		r := &e.rngs[u]
		for c := 0; c < e.classes; c++ {
			qi := int(u)*e.classes + c
			if e.qlen[qi] == 0 || e.qAt(qi, 0).ID != e.headID[qi] {
				continue
			}
			pkt := *e.qAt(qi, 0)
			if e.maskFF && pkt.Dst != u {
				// Port-mask fast path: identical move-by-move to running the
				// FirstFree selection over Candidates (including the hashed
				// pick for fault-displaced packets), but the moves are
				// implied by the mask bits and never built. States PortMask
				// declines fall through to the Candidates scan below.
				pm := &rs.pm
				if e.pmr.PortMask(u, core.QueueClass(c), pkt.Work, pkt.Dst, pm) {
					union := pm.StaticUnion() | pm.Dyn
					if f != nil {
						lp := f.livePorts[u]
						pm.Static[0] &= lp
						pm.Static[1] &= lp
						pm.Static[2] &= lp
						pm.Static[3] &= lp
						pm.StaticMask &= lp
						pm.Dyn &= lp
						union = pm.StaticUnion() | pm.Dyn
						if union == 0 {
							e.misrouteAtomic(u, qi, cycle, st)
							continue
						}
					}
					// The atomic model's admissibility depends on the target
					// queue, so (unlike the buffered probe-and-stop scan) the
					// full admissible port set is computed — which the slow
					// path does anyway, and the hashed misroute pick needs.
					adm := uint32(0)
					nbase := int(u) * e.ports
					for mk := union; mk != 0; mk &= mk - 1 {
						p := bits.TrailingZeros32(mk)
						bit := uint32(1) << uint(p)
						tc := 0
						switch {
						case pm.Dyn&bit != 0:
							tc = int(pm.DynClass)
						case pm.PerPort:
							tc = int(pm.PortClass[p])
						default:
							for pm.Static[tc]&bit == 0 {
								tc++
							}
						}
						if e.qFree(int(e.nbr[nbase+p])*e.classes+tc) >= 1 {
							adm |= bit
						}
					}
					if adm == 0 {
						if e.obsOn {
							st.obs.Inc(obs.COutputStalls)
						}
						continue
					}
					sel := bits.TrailingZeros32(adm)
					if f != nil && adm&(adm-1) != 0 && pkt.Misrouted() {
						k := int(misrouteHash(cycle, pkt.ID, pkt.HopCount()) % uint32(bits.OnesCount32(adm)))
						mk := adm
						for i := 0; i < k; i++ {
							mk &= mk - 1
						}
						sel = bits.TrailingZeros32(mk)
					}
					bit := uint32(1) << uint(sel)
					dyn := pm.Dyn&bit != 0
					tc := 0
					switch {
					case dyn:
						tc = int(pm.DynClass)
					case pm.PerPort:
						tc = int(pm.PortClass[sel])
					default:
						for pm.Static[tc]&bit == 0 {
							tc++
						}
					}
					pkt = e.qPop(qi)
					pkt.Hops++
					pkt.Class = core.QueueClass(tc)
					if dyn {
						pkt.Work = pm.DynWork
					} else {
						pkt.Work = pm.Work
					}
					l := e.qPush(int(e.nbr[nbase+sel])*e.classes+tc, &pkt)
					if l > st.maxQueue {
						st.maxQueue = l
					}
					if e.obsOn {
						st.obs.Observe(obs.HQueueLen, int64(l))
						st.obs.Inc(obs.CLinkTransfers)
					}
					st.moves++
					if dyn {
						st.dynamicMoves++
					}
					continue
				}
			}
			moves := e.algo.Candidates(u, core.QueueClass(c), pkt.Work, pkt.Dst, rs.cand[:0])
			if f != nil {
				moves = f.filterLiveMoves(u, moves)
				if len(moves) == 0 {
					// Faults removed every candidate: misroute or drop.
					e.misrouteAtomic(u, qi, cycle, st)
					continue
				}
			}
			nAdm := 0
			for i := range moves {
				if e.admissible(u, core.QueueClass(c), moves[i]) {
					rs.adm[nAdm] = i
					nAdm++
				}
			}
			if nAdm == 0 {
				if e.obsOn {
					st.obs.Inc(obs.COutputStalls)
				}
				continue
			}
			var mv core.Move
			if f != nil && nAdm > 1 && pkt.Misrouted() &&
				(e.cfg.Policy == PolicyFirstFree || e.cfg.Policy == PolicyLastFree) {
				// Positional policies would deterministically walk a
				// fault-displaced packet back into the dead minimal cut;
				// hash the pick instead (see Engine.misroute).
				mv = moves[rs.adm[int(misrouteHash(cycle, pkt.ID, pkt.HopCount())%uint32(nAdm))]]
			} else {
				mv = moves[rs.chooser.choose(r, moves, rs.adm[:nAdm])]
			}
			switch {
			case mv.Deliver:
				pkt = e.qPop(qi)
				if e.obsOn {
					st.obs.GaugeAdd(obs.GQueueOccupancy, -1)
				}
				e.deliverAtomic(pkt, cycle, win, st)
			case mv.Node == u && mv.Class == core.QueueClass(c) && mv.Port == core.PortInternal:
				pkt.Work = mv.Work
				*e.qAt(qi, 0) = pkt
				st.moves++
			default:
				pkt = e.qPop(qi)
				if mv.Port != core.PortInternal {
					pkt.Hops++
				}
				pkt.Class = mv.Class
				pkt.Work = mv.Work
				qi2 := e.queueIndex(mv.Node, mv.Class)
				l := e.qPush(qi2, &pkt)
				if l > st.maxQueue {
					st.maxQueue = l
				}
				if e.obsOn {
					// Pop and push cancel in the occupancy gauge.
					st.obs.Observe(obs.HQueueLen, int64(l))
					if mv.Port != core.PortInternal {
						st.obs.Inc(obs.CLinkTransfers)
					}
				}
				st.moves++
				if mv.Kind == core.Dynamic {
					st.dynamicMoves++
				}
			}
		}
	}

	if prof {
		t3 = time.Now()
	}

	m.Moves += st.moves
	m.DynamicMoves += st.dynamicMoves
	m.Injected += st.injected
	m.Delivered += st.delivered
	m.Dropped += st.dropped
	m.Attempts += st.attempts
	m.Successes += st.successes
	m.LatencySum += st.latencySum
	m.Measured += st.measured
	if st.latencyMax > m.LatencyMax {
		m.LatencyMax = st.latencyMax
	}
	if st.maxQueue > m.MaxQueue {
		m.MaxQueue = st.maxQueue
	}
	if e.obsOn {
		sh := &st.obs
		sh.Add(obs.CInjected, st.injected)
		sh.Add(obs.CDelivered, st.delivered)
		sh.Add(obs.CMoves, st.moves)
		sh.Add(obs.CDynamicMoves, st.dynamicMoves)
		e.obsCore.Fold(sh)
	}
	*st = cycleStats{}
	if prof {
		t4 := time.Now()
		inj := t1.Sub(t0).Nanoseconds()
		drain := t2.Sub(t1).Nanoseconds()
		route := t3.Sub(t2).Nanoseconds()
		merge := t4.Sub(t3).Nanoseconds()
		rs.pt.add(inj, route, drain, 0, merge, other)
		rs.lastCycleEnd = t4
		if e.obsOn {
			c := e.obsCore
			c.AddCounter(obs.CPhaseInjectNs, inj)
			c.AddCounter(obs.CPhaseANs, route)
			c.AddCounter(obs.CPhaseBNs, drain)
			c.AddCounter(obs.CPhaseMergeNs, merge)
			c.AddCounter(obs.CPhaseOtherNs, other)
		}
	}
	m.Cycles = cycle + 1
	m.InFlight = m.Injected - m.Delivered - m.Dropped
	if e.obsOn {
		c := e.obsCore
		c.SetGauge(obs.GInFlight, m.InFlight)
		c.SetGauge(obs.GMaxQueue, int64(m.MaxQueue))
		if f != nil {
			c.SetGauge(obs.GDeadLinks, int64(f.live.DeadLinks()))
			c.SetGauge(obs.GDeadNodes, int64(f.live.DeadNodes()))
		}
		snap := c.EndCycle(m.Cycles)
		if e.observer != nil {
			e.observer.OnCycle(cycle, snap)
		}
	}
	if e.cfg.OnCycle != nil {
		e.cfg.OnCycle(cycle)
	}

	if rs.drain && m.InFlight == 0 && e.allExhausted(rs.src) {
		e.end(false, nil)
		return true, nil
	}
	if m.Moves == prevMoves && m.InFlight > 0 {
		rs.idle++
		if rs.idle >= e.cfg.DeadlockWindow {
			derr := &ErrDeadlock{Cycle: cycle, InFlight: int(m.InFlight), Algorithm: e.algo.Name()}
			derr.Dump = buildDeadlockDump(e.algo, e.flt, int64(e.cfg.DeadlockWindow), cycle, m.InFlight, e.headAt)
			if d, ok := e.observer.(obs.DeadlockObserver); ok {
				d.OnDeadlock(derr.Dump)
			}
			e.end(false, derr)
			return true, rs.err
		}
	} else {
		rs.idle = 0
	}
	return false, nil
}

// headAt exposes queue heads to the deadlock-dump builder.
func (e *AtomicEngine) headAt(u, c int) (*core.Packet, int) {
	qi := u*e.classes + c
	if e.qlen[qi] == 0 {
		return nil, 0
	}
	return e.qAt(qi, 0), int(e.qlen[qi])
}

// applyFaultsAtomic replays the schedule events due at or before cycle.
// Links carry no state in the atomic model, so only node kills purge.
func (e *AtomicEngine) applyFaultsAtomic(cycle int64, st *cycleStats) {
	f := e.flt
	evs := f.sched.Events
	changed := false
	for f.nextEv < len(evs) && evs[f.nextEv].At <= cycle {
		ev := evs[f.nextEv]
		f.nextEv++
		switch {
		case ev.Port < 0 && ev.Up:
			f.live.ReviveNode(int(ev.Node))
		case ev.Port < 0:
			if f.live.KillNode(int(ev.Node)) {
				e.purgeNodeAtomic(ev.Node, cycle, st)
			}
		case ev.Up:
			f.live.ReviveLink(int(ev.Node), int(ev.Port))
		default:
			f.live.KillLink(int(ev.Node), int(ev.Port))
		}
		changed = true
	}
	if changed {
		f.recomputeLivePorts()
	}
}

// purgeNodeAtomic drops everything a dead node holds. Nothing re-enters it:
// routing and misrouting consult livePorts, which excludes dead endpoints.
func (e *AtomicEngine) purgeNodeAtomic(u int32, cycle int64, st *cycleStats) {
	for c := 0; c < e.classes; c++ {
		qi := e.queueIndex(u, core.QueueClass(c))
		n := int(e.qlen[qi])
		for i := 0; i < n; i++ {
			e.dropAtomic(e.qAt(qi, int32(i)), cycle, st)
		}
		e.qlen[qi] = 0
		e.qhead[qi] = 0
		if e.obsOn && n > 0 {
			st.obs.GaugeAdd(obs.GQueueOccupancy, -int64(n))
		}
	}
	if e.injQ[u].full {
		e.dropAtomic(&e.injQ[u].pkt, cycle, st)
		e.injQ[u] = injSlot{}
		e.injFull[u>>6] &^= 1 << (uint(u) & 63)
	}
}

// dropAtomic accounts one packet lost to faults.
func (e *AtomicEngine) dropAtomic(pkt *core.Packet, cycle int64, st *cycleStats) {
	st.dropped++
	if e.obsOn {
		st.obs.Inc(obs.CFaultDrops)
		st.obs.Observe(obs.HDropAge, cycle-pkt.InjectedAt+1)
	}
}

// misrouteAtomic is the atomic model's degraded-routing fallback: the head
// packet of queue qi, whose every minimal candidate died, moves into any
// surviving neighbor's queue (re-entering it as a fresh injection with the
// misroute flag set) or is dropped once its hop budget runs out.
func (e *AtomicEngine) misrouteAtomic(u int32, qi int, cycle int64, st *cycleStats) {
	f := e.flt
	pkt := *e.qAt(qi, 0)
	lp := f.livePorts[u]
	if lp == 0 || pkt.HopCount() >= e.algo.MaxHops(pkt.Src, pkt.Dst)+f.hopBudget {
		dropped := e.qPop(qi)
		if e.obsOn {
			st.obs.GaugeAdd(obs.GQueueOccupancy, -1)
		}
		e.dropAtomic(&dropped, cycle, st)
		return
	}
	// Hashed start port, not a (cycle+hops) rotation: see Engine.misroute
	// for why the rotation can orbit a packet forever.
	n := bits.OnesCount32(lp)
	k := int(misrouteHash(cycle, pkt.ID, pkt.HopCount()) % uint32(n))
	upper := lp
	for i := 0; i < k; i++ {
		upper &= upper - 1
	}
	for _, mk := range [2]uint32{upper, lp ^ upper} {
		for ; mk != 0; mk &= mk - 1 {
			p := bits.TrailingZeros32(mk)
			v := int32(e.topo.Neighbor(int(u), p))
			class, work := e.algo.Inject(v, pkt.Dst)
			qi2 := e.queueIndex(v, class)
			if e.qFree(qi2) < 1 {
				continue
			}
			pkt = e.qPop(qi)
			pkt.Hops++
			pkt.MarkMisrouted()
			pkt.Class = class
			pkt.Work = work
			l := e.qPush(qi2, &pkt)
			if l > st.maxQueue {
				st.maxQueue = l
			}
			if e.obsOn {
				st.obs.Observe(obs.HQueueLen, int64(l))
				st.obs.Inc(obs.CLinkTransfers)
				st.obs.Inc(obs.CMisrouted)
			}
			st.moves++
			return
		}
	}
	if e.obsOn {
		st.obs.Inc(obs.COutputStalls)
	}
}

func (e *AtomicEngine) allExhausted(src TrafficSource) bool {
	for wi := range e.actBits {
		for word := e.actBits[wi]; word != 0; word &= word - 1 {
			b := bits.TrailingZeros64(word)
			if !src.Exhausted(int32(wi<<6 + b)) {
				return false
			}
			e.actBits[wi] &^= 1 << uint(b)
		}
	}
	return true
}

// admissible implements the atomic model's check: a move may be taken iff
// the target queue has MinFree free slots right now (deliveries and
// in-place moves are always admissible).
func (e *AtomicEngine) admissible(u int32, class core.QueueClass, mv core.Move) bool {
	switch {
	case mv.Deliver:
		return true
	case mv.Node == u && mv.Class == class && mv.Port == core.PortInternal:
		return true
	default:
		required := int(mv.MinFree)
		// In the atomic model nothing is ever in flight, so a credited
		// move's condition reduces to requiring Credit free slots.
		if int(mv.Credit) > required {
			required = int(mv.Credit)
		}
		return e.qFree(e.queueIndex(mv.Node, mv.Class)) >= required
	}
}

func (e *AtomicEngine) deliverAtomic(pkt core.Packet, cycle int64, win runWindow, st *cycleStats) {
	if !e.cfg.DisableInvariantChecks && !pkt.Misrouted() {
		bound := e.algo.MaxHops(pkt.Src, pkt.Dst)
		if pkt.HopCount() > bound {
			panic(fmt.Sprintf("sim: %s: packet %d took %d hops from %d to %d, bound %d",
				e.algo.Name(), pkt.ID, pkt.HopCount(), pkt.Src, pkt.Dst, bound))
		}
		if e.algo.Props().Minimal && pkt.HopCount() != bound {
			panic(fmt.Sprintf("sim: %s: minimal algorithm delivered packet %d in %d hops, distance %d",
				e.algo.Name(), pkt.ID, pkt.HopCount(), bound))
		}
	}
	st.delivered++
	st.moves++
	lat := cycle - pkt.InjectedAt + 1
	if e.cfg.OnDeliver != nil {
		e.cfg.OnDeliver(pkt, lat)
	}
	if e.observer != nil {
		e.observer.OnDeliver(pkt, lat)
	}
	if e.obsOn {
		st.obs.Observe(obs.HLatency, lat)
	}
	if win.contains(cycle) {
		st.latencySum += lat
		st.measured++
		if lat > st.latencyMax {
			st.latencyMax = lat
		}
	}
}

// injectScalarAtomic is the per-node injection phase of Step: one
// Wants/Take round per active node, interleaved with fault gating. The
// batched path (injectBatchAtomic) replaces it when the source implements
// BatchSource and no faults are active.
func (e *AtomicEngine) injectScalarAtomic(src TrafficSource, f *faultState, cycle int64, win runWindow, st *cycleStats) {
	for wi := range e.actBits {
		for word := e.actBits[wi]; word != 0; word &= word - 1 {
			b := bits.TrailingZeros64(word)
			u := int32(wi<<6 + b)
			if src.Exhausted(u) {
				e.actBits[wi] &^= 1 << uint(b)
				continue
			}
			if f != nil {
				if !f.live.NodeAlive(int(u)) {
					continue
				}
				if cycle < f.injNext[u] {
					if e.obsOn {
						st.obs.Inc(obs.CInjRetries)
					}
					continue
				}
			}
			if !src.Wants(u, cycle) {
				continue
			}
			if win.contains(cycle) {
				st.attempts++
			}
			if e.obsOn {
				st.obs.Inc(obs.CInjAttempts)
			}
			if e.injQ[u].full {
				if e.obsOn {
					st.obs.Inc(obs.CInjBackpressure)
				}
				if f != nil {
					f.backoff(u, cycle)
				}
				continue
			}
			dst := src.Take(u, cycle)
			if f != nil {
				f.injFail[u] = 0
				if !f.live.NodeAlive(int(dst)) || (f.livePorts[u] == 0 && dst != u) {
					e.nextID[u]++
					st.injected++
					if win.contains(cycle) {
						st.successes++
					}
					pkt := core.Packet{ID: e.nextID[u], Src: u, Dst: dst, InjectedAt: cycle}
					e.dropAtomic(&pkt, cycle, st)
					continue
				}
			}
			class, work := e.algo.Inject(u, dst)
			e.nextID[u]++
			e.injQ[u] = injSlot{
				pkt: core.Packet{
					ID: e.nextID[u], Src: u, Dst: dst, InjectedAt: cycle,
					Class: class, MinFree: 1, Work: work,
				},
				full: true,
			}
			e.injFull[u>>6] |= 1 << (uint(u) & 63)
			st.injected++
			if win.contains(cycle) {
				st.successes++
			}
		}
	}
}
