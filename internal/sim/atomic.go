package sim

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/queue"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// AtomicEngine is the abstract store-and-forward model of Section 2: the
// greedy Route(q) procedure applied directly to the central queues, with no
// link buffers. Each cycle every queue may advance its head packet into one
// admissible target queue (checked and applied atomically, so MinFree-based
// bubble conditions are exact by construction), every node may accept one
// injected packet, and deliveries are immediate.
//
// It is the reference semantics for deadlock-freedom studies and for quick
// algorithm comparisons; the buffered Engine is the one that reproduces the
// paper's latency tables.
type AtomicEngine struct {
	cfg     Config
	algo    core.Algorithm
	topo    topology.Topology
	nodes   int
	classes int
	obsState

	queues []*queue.FIFO[core.Packet]
	injQ   []injSlot
	rngs   []xrand.RNG
	nextID []int64
	active []bool
	headID []int64 // per-queue head snapshot: one move per packet per cycle
}

// NewAtomicEngine builds an atomic engine for the configuration. Workers is
// ignored: atomic semantics are inherently sequential.
func NewAtomicEngine(cfg Config) (*AtomicEngine, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	a := cfg.Algorithm
	t := a.Topology()
	e := &AtomicEngine{
		cfg:     cfg,
		algo:    a,
		topo:    t,
		nodes:   t.Nodes(),
		classes: a.NumClasses(),
	}
	e.queues = make([]*queue.FIFO[core.Packet], e.nodes*e.classes)
	for i := range e.queues {
		e.queues[i] = queue.New[core.Packet](cfg.QueueCap)
	}
	e.injQ = make([]injSlot, e.nodes)
	e.rngs = make([]xrand.RNG, e.nodes)
	e.nextID = make([]int64, e.nodes)
	e.active = make([]bool, e.nodes)
	e.headID = make([]int64, len(e.queues))
	e.initObs(&cfg)
	e.reset()
	return e, nil
}

func (e *AtomicEngine) reset() {
	for _, q := range e.queues {
		q.Clear()
	}
	for u := 0; u < e.nodes; u++ {
		e.injQ[u] = injSlot{}
		e.rngs[u] = xrand.New(e.cfg.Seed, int32(u))
		e.nextID[u] = int64(u) << 36
		e.active[u] = true
	}
	if e.obsOn {
		e.obsCore.Reset()
	}
}

func (e *AtomicEngine) queueAt(node int32, class core.QueueClass) *queue.FIFO[core.Packet] {
	return e.queues[int(node)*e.classes+int(class)]
}

// RunStatic simulates until the finite traffic of src has drained.
func (e *AtomicEngine) RunStatic(src TrafficSource, maxCycles int64) (Metrics, error) {
	res, err := e.run(context.Background(), src, runWindow{0, -1}, 0, maxCycles, true)
	return res.Metrics, err
}

// RunDynamic simulates warmup+measure cycles of dynamic injection.
func (e *AtomicEngine) RunDynamic(src TrafficSource, warmup, measure int64) (Metrics, error) {
	res, err := e.run(context.Background(), src, runWindow{warmup, warmup + measure}, warmup+measure, warmup+measure, false)
	return res.Metrics, err
}

func (e *AtomicEngine) run(ctx context.Context, src TrafficSource, win runWindow, stopAt, maxCycles int64, drain bool) (RunResult, error) {
	e.reset()
	var m Metrics
	var st cycleStats
	var cand [64]core.Move
	var adm [64]int
	idle := 0
	eng := Engine{cfg: e.cfg} // borrow choose()

	for cycle := int64(0); ; cycle++ {
		if canceled(ctx) {
			m.Cycles = cycle
			m.InFlight = m.Injected - m.Delivered
			return e.finish(m, true), ctx.Err()
		}
		if stopAt > 0 && cycle >= stopAt {
			m.Cycles = cycle
			m.InFlight = m.Injected - m.Delivered
			return e.finish(m, false), nil
		}
		if maxCycles > 0 && cycle > maxCycles {
			m.Cycles = cycle
			m.InFlight = m.Injected - m.Delivered
			return e.finish(m, false), fmt.Errorf("sim: %s exceeded %d cycles with %d packets in flight",
				e.algo.Name(), maxCycles, m.InFlight)
		}
		prevMoves := m.Moves

		// Injection attempts.
		for u := int32(0); int(u) < e.nodes; u++ {
			if !e.active[u] {
				continue
			}
			if src.Exhausted(u) {
				e.active[u] = false
				continue
			}
			if !src.Wants(u, cycle) {
				continue
			}
			if win.contains(cycle) {
				st.attempts++
			}
			if e.obsOn {
				st.obs.Inc(obs.CInjAttempts)
			}
			if e.injQ[u].full {
				if e.obsOn {
					st.obs.Inc(obs.CInjBackpressure)
				}
				continue
			}
			dst := src.Take(u, cycle)
			class, work := e.algo.Inject(u, dst)
			e.nextID[u]++
			e.injQ[u] = injSlot{
				pkt: core.Packet{
					ID: e.nextID[u], Src: u, Dst: dst, InjectedAt: cycle,
					Class: class, MinFree: 1, Work: work,
				},
				full: true,
			}
			st.injected++
			if win.contains(cycle) {
				st.successes++
			}
		}

		// Snapshot the head of every queue: a packet may advance at most
		// once per cycle, even if it lands in a queue processed later.
		for i, q := range e.queues {
			if q.Empty() {
				e.headID[i] = 0
			} else {
				e.headID[i] = q.At(0).ID
			}
		}

		// Drain injection queues into central queues (one hop of the model).
		for u := int32(0); int(u) < e.nodes; u++ {
			sl := &e.injQ[u]
			if !sl.full {
				continue
			}
			if sl.pkt.Dst == u {
				e.deliverAtomic(sl.pkt, cycle, win, &st)
				sl.full = false
				continue
			}
			q := e.queueAt(u, sl.pkt.Class)
			if q.Free() >= 1 {
				sl.pkt.InjectedAt = cycle // latency runs from network entry
				q.Push(sl.pkt)
				if l := q.Len(); l > st.maxQueue {
					st.maxQueue = l
				}
				if e.obsOn {
					st.obs.GaugeAdd(obs.GQueueOccupancy, 1)
					st.obs.Observe(obs.HQueueLen, int64(q.Len()))
				}
				sl.full = false
				st.moves++
			}
		}

		// Route(q) for every queue: advance the head packet if possible.
		for u := int32(0); int(u) < e.nodes; u++ {
			r := &e.rngs[u]
			for c := 0; c < e.classes; c++ {
				qi := int(u)*e.classes + c
				q := e.queues[qi]
				if q.Empty() || q.At(0).ID != e.headID[qi] {
					continue
				}
				pkt := q.At(0)
				moves := e.algo.Candidates(u, core.QueueClass(c), pkt.Work, pkt.Dst, cand[:0])
				nAdm := 0
				for i, mv := range moves {
					if e.admissible(u, core.QueueClass(c), mv) {
						adm[nAdm] = i
						nAdm++
					}
				}
				if nAdm == 0 {
					if e.obsOn {
						st.obs.Inc(obs.COutputStalls)
					}
					continue
				}
				mv := moves[eng.choose(r, moves, adm[:nAdm])]
				switch {
				case mv.Deliver:
					pkt, _ = q.Pop()
					if e.obsOn {
						st.obs.GaugeAdd(obs.GQueueOccupancy, -1)
					}
					e.deliverAtomic(pkt, cycle, win, &st)
				case mv.Node == u && mv.Class == core.QueueClass(c) && mv.Port == core.PortInternal:
					pkt.Work = mv.Work
					q.Set(0, pkt)
					st.moves++
				default:
					pkt, _ = q.Pop()
					if mv.Port != core.PortInternal {
						pkt.Hops++
					}
					pkt.Class = mv.Class
					pkt.Work = mv.Work
					q2 := e.queueAt(mv.Node, mv.Class)
					q2.Push(pkt)
					if l := q2.Len(); l > st.maxQueue {
						st.maxQueue = l
					}
					if e.obsOn {
						// Pop and push cancel in the occupancy gauge.
						st.obs.Observe(obs.HQueueLen, int64(q2.Len()))
						if mv.Port != core.PortInternal {
							st.obs.Inc(obs.CLinkTransfers)
						}
					}
					st.moves++
					if mv.Kind == core.Dynamic {
						st.dynamicMoves++
					}
				}
			}
		}

		m.Moves += st.moves
		m.DynamicMoves += st.dynamicMoves
		m.Injected += st.injected
		m.Delivered += st.delivered
		m.Attempts += st.attempts
		m.Successes += st.successes
		m.LatencySum += st.latencySum
		m.Measured += st.measured
		if st.latencyMax > m.LatencyMax {
			m.LatencyMax = st.latencyMax
		}
		if st.maxQueue > m.MaxQueue {
			m.MaxQueue = st.maxQueue
		}
		if e.obsOn {
			sh := &st.obs
			sh.Add(obs.CInjected, st.injected)
			sh.Add(obs.CDelivered, st.delivered)
			sh.Add(obs.CMoves, st.moves)
			sh.Add(obs.CDynamicMoves, st.dynamicMoves)
			e.obsCore.Fold(sh)
		}
		st = cycleStats{}
		m.Cycles = cycle + 1
		m.InFlight = m.Injected - m.Delivered
		if e.obsOn {
			c := e.obsCore
			c.SetGauge(obs.GInFlight, m.InFlight)
			c.SetGauge(obs.GMaxQueue, int64(m.MaxQueue))
			snap := c.EndCycle(m.Cycles)
			if e.observer != nil {
				e.observer.OnCycle(cycle, snap)
			}
		}
		if e.cfg.OnCycle != nil {
			e.cfg.OnCycle(cycle)
		}

		if drain && m.InFlight == 0 && e.allExhausted(src) {
			return e.finish(m, false), nil
		}
		if m.Moves == prevMoves && m.InFlight > 0 {
			idle++
			if idle >= e.cfg.DeadlockWindow {
				return e.finish(m, false), &ErrDeadlock{Cycle: cycle, InFlight: int(m.InFlight), Algorithm: e.algo.Name()}
			}
		} else {
			idle = 0
		}
	}
}

func (e *AtomicEngine) allExhausted(src TrafficSource) bool {
	for u := 0; u < e.nodes; u++ {
		if e.active[u] {
			if !src.Exhausted(int32(u)) {
				return false
			}
			e.active[u] = false
		}
	}
	return true
}

// admissible implements the atomic model's check: a move may be taken iff
// the target queue has MinFree free slots right now (deliveries and
// in-place moves are always admissible).
func (e *AtomicEngine) admissible(u int32, class core.QueueClass, mv core.Move) bool {
	switch {
	case mv.Deliver:
		return true
	case mv.Node == u && mv.Class == class && mv.Port == core.PortInternal:
		return true
	default:
		required := int(mv.MinFree)
		// In the atomic model nothing is ever in flight, so a credited
		// move's condition reduces to requiring Credit free slots.
		if int(mv.Credit) > required {
			required = int(mv.Credit)
		}
		return e.queueAt(mv.Node, mv.Class).Free() >= required
	}
}

func (e *AtomicEngine) deliverAtomic(pkt core.Packet, cycle int64, win runWindow, st *cycleStats) {
	if !e.cfg.DisableInvariantChecks {
		bound := e.algo.MaxHops(pkt.Src, pkt.Dst)
		if int(pkt.Hops) > bound {
			panic(fmt.Sprintf("sim: %s: packet %d took %d hops from %d to %d, bound %d",
				e.algo.Name(), pkt.ID, pkt.Hops, pkt.Src, pkt.Dst, bound))
		}
		if e.algo.Props().Minimal && int(pkt.Hops) != bound {
			panic(fmt.Sprintf("sim: %s: minimal algorithm delivered packet %d in %d hops, distance %d",
				e.algo.Name(), pkt.ID, pkt.Hops, bound))
		}
	}
	st.delivered++
	st.moves++
	lat := cycle - pkt.InjectedAt + 1
	if e.cfg.OnDeliver != nil {
		e.cfg.OnDeliver(pkt, lat)
	}
	if e.observer != nil {
		e.observer.OnDeliver(pkt, lat)
	}
	if e.obsOn {
		st.obs.Observe(obs.HLatency, lat)
	}
	if win.contains(cycle) {
		st.latencySum += lat
		st.measured++
		if lat > st.latencyMax {
			st.latencyMax = lat
		}
	}
}
