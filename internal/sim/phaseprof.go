package sim

// PhaseTimes is the per-phase wall-clock breakdown of a run, accumulated at
// the cycle barrier when Config.PhaseProf is set (all fields stay zero
// otherwise). It answers the scaling question "which phase limits the
// speedup": the parallel phases (inject, node (a), node (b), link) should
// shrink with the worker count while the sequential sections (merge, other)
// stay flat — whichever dominates at high worker counts is the bottleneck.
//
// The times are measured around the coordinator's phase dispatch, so each
// parallel phase's figure includes its barrier (release, spin, wake): the
// breakdown deliberately charges synchronization to the phase that paid it.
type PhaseTimes struct {
	InjectNs int64 // injection phase (incl. mail-lane fold)
	PhaseANs int64 // node phase (a): queues -> output buffers
	PhaseBNs int64 // node phase (b): input buffers -> queues
	LinkNs   int64 // link phase (0 for the atomic engine, which has no links)
	MergeNs  int64 // sequential per-cycle stats/metric merge
	OtherNs  int64 // rest of the cycle: watchdog, observer probes, fault replay
	Cycles   int64 // cycles the breakdown covers
}

// TotalNs returns the summed wall time across all phases.
func (p PhaseTimes) TotalNs() int64 {
	return p.InjectNs + p.PhaseANs + p.PhaseBNs + p.LinkNs + p.MergeNs + p.OtherNs
}

// add accumulates one cycle's phase samples.
func (p *PhaseTimes) add(inject, a, b, link, merge, other int64) {
	p.InjectNs += inject
	p.PhaseANs += a
	p.PhaseBNs += b
	p.LinkNs += link
	p.MergeNs += merge
	p.OtherNs += other
	p.Cycles++
}

// PhaseTimes returns the accumulated per-phase breakdown of the current (or
// finished) run; all zero unless Config.PhaseProf was set.
func (e *Engine) PhaseTimes() PhaseTimes { return e.rs.pt }

// PhaseTimes returns the atomic engine's per-phase breakdown; the atomic
// model's "phases" are its three sequential sections: injection draws map to
// InjectNs, the injection-queue drain to PhaseBNs, and the Route(q) sweep to
// PhaseANs (there is no link phase).
func (e *AtomicEngine) PhaseTimes() PhaseTimes { return e.rs.pt }
