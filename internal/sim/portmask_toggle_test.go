package sim

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/traffic"
)

// portMaskAlgos are the PortMaskRouter implementors the toggle tests sweep,
// at sizes small enough to keep the matrix fast but large enough for wrap
// classes, degenerate shuffle cycles, and multi-dimension adaptivity.
var portMaskAlgos = []struct {
	name string
	mk   func() core.Algorithm
}{
	{"hypercube", func() core.Algorithm { return core.NewHypercubeAdaptive(6) }},
	{"hypercube-hung", func() core.Algorithm { return core.NewHypercubeHung(6) }},
	{"mesh", func() core.Algorithm { return core.NewMeshAdaptive(8, 8) }},
	{"mesh-3d", func() core.Algorithm { return core.NewMeshAdaptive(4, 4, 4) }},
	{"mesh-twophase", func() core.Algorithm { return core.NewMeshTwoPhase(8, 8) }},
	{"torus", func() core.Algorithm { return core.NewTorusAdaptive(6, 6) }},
	{"torus-3d", func() core.Algorithm { return core.NewTorusAdaptive(3, 3, 3) }},
	{"shuffle", func() core.Algorithm { return core.NewShuffleExchangeAdaptive(6) }},
	{"shuffle-eager", func() core.Algorithm { return core.NewShuffleExchangeEager(6) }},
	{"ccc", func() core.Algorithm { return core.NewCCCAdaptive(3) }},
}

// runToggled runs one (engine, algorithm, traffic) combination with the
// port-mask path enabled or disabled and returns the metrics.
func runToggled(t *testing.T, atomic bool, mk func() core.Algorithm, disable bool,
	inject string, faults *fault.Plan, workers int) Metrics {
	t.Helper()
	a := mk()
	nodes := a.Topology().Nodes()
	cfg := Config{
		Algorithm:       a,
		Seed:            12345,
		Workers:         workers,
		DisablePortMask: disable,
		Faults:          faults,
	}
	var (
		m   Metrics
		err error
	)
	runEither := func(e interface {
		RunStatic(TrafficSource, int64) (Metrics, error)
		RunDynamic(TrafficSource, int64, int64) (Metrics, error)
	}) (Metrics, error) {
		if inject == "static" {
			src := traffic.NewStaticSource(traffic.Random{Nodes: nodes}, nodes, 3, 99)
			return e.RunStatic(src, 1_000_000)
		}
		src := traffic.NewBernoulliSource(traffic.Random{Nodes: nodes}, nodes, 0.2, 99)
		return e.RunDynamic(src, 50, 150)
	}
	if atomic {
		e, nerr := NewAtomicEngine(cfg)
		if nerr != nil {
			t.Fatal(nerr)
		}
		m, err = runEither(e)
	} else {
		e, nerr := NewEngine(cfg)
		if nerr != nil {
			t.Fatal(nerr)
		}
		m, err = runEither(e)
	}
	if err != nil {
		t.Fatalf("mask-disabled=%v: %v", disable, err)
	}
	return m
}

// TestPortMaskToggleDeterminism pins the fast path's central contract on the
// buffered engine: for every PortMaskRouter algorithm, metrics are
// bit-identical with the mask path forced on and off, under both injection
// models and across worker counts. Combined with the core package's
// reachable-state cross-check this shows the engines route move-by-move
// identically through either path.
func TestPortMaskToggleDeterminism(t *testing.T) {
	for _, al := range portMaskAlgos {
		for _, inject := range []string{"static", "dynamic"} {
			al, inject := al, inject
			t.Run(fmt.Sprintf("%s/%s", al.name, inject), func(t *testing.T) {
				t.Parallel()
				want := runToggled(t, false, al.mk, false, inject, nil, 1)
				for _, workers := range []int{1, 2} {
					if got := runToggled(t, false, al.mk, true, inject, nil, workers); got != want {
						t.Errorf("workers=%d mask-off diverged:\n got  %+v\n want %+v", workers, got, want)
					}
				}
			})
		}
	}
}

// TestAtomicPortMaskToggleDeterminism is the atomic-engine counterpart: the
// new inline bitmask scan must reproduce the Candidates-based Route(q)
// decision (FirstFree over ascending ports) bit-identically.
func TestAtomicPortMaskToggleDeterminism(t *testing.T) {
	for _, al := range portMaskAlgos {
		for _, inject := range []string{"static", "dynamic"} {
			al, inject := al, inject
			t.Run(fmt.Sprintf("%s/%s", al.name, inject), func(t *testing.T) {
				t.Parallel()
				want := runToggled(t, true, al.mk, false, inject, nil, 0)
				if got := runToggled(t, true, al.mk, true, inject, nil, 0); got != want {
					t.Errorf("mask-off diverged:\n got  %+v\n want %+v", got, want)
				}
			})
		}
	}
}

// TestPortMaskFaultDeterminism toggles the mask path under an active fault
// plan: dead-link masking and the hashed misroute pick must behave
// identically whether the candidate set is a mask or a Move slice. Both
// engines, both mesh and torus (the per-port encoding) plus the hypercube
// (the grouped one).
func TestPortMaskFaultDeterminism(t *testing.T) {
	plan := func() *fault.Plan {
		p := &fault.Plan{}
		p.FailRandomLinks(0.05, 1, 0, fault.Forever)
		p.FailLink(3, 2, 3, 40)
		p.FailNode(9, 2, 100)
		return p
	}
	algos := []struct {
		name string
		mk   func() core.Algorithm
	}{
		{"hypercube", func() core.Algorithm { return core.NewHypercubeAdaptive(6) }},
		{"mesh", func() core.Algorithm { return core.NewMeshAdaptive(8, 8) }},
		{"torus", func() core.Algorithm { return core.NewTorusAdaptive(6, 6) }},
	}
	for _, al := range algos {
		for _, engine := range []string{"buffered", "atomic"} {
			al, engine := al, engine
			t.Run(al.name+"/"+engine, func(t *testing.T) {
				t.Parallel()
				atomic := engine == "atomic"
				workers := 2
				if atomic {
					workers = 0
				}
				want := runToggled(t, atomic, al.mk, false, "dynamic", plan(), workers)
				if got := runToggled(t, atomic, al.mk, true, "dynamic", plan(), workers); got != want {
					t.Errorf("mask-off diverged under faults:\n got  %+v\n want %+v", got, want)
				}
			})
		}
	}
}

// halfMaskHypercube wraps the adaptive hypercube but declines the port-mask
// fast path at every odd node, exercising the per-packet (not per-run)
// fallback documented on core.PortMaskRouter: the engines must route the
// declined packets through Candidates within the same cycle and produce
// metrics identical to a run with the mask path disabled entirely.
type halfMaskHypercube struct {
	*core.HypercubeAdaptive
}

func (h halfMaskHypercube) PortMask(node int32, class core.QueueClass, work uint32, dst int32, pm *core.PortMasks) bool {
	if node&1 == 1 {
		return false
	}
	return h.HypercubeAdaptive.PortMask(node, class, work, dst, pm)
}

// TestPortMaskPartialImplementorFallback pins the per-state fallback on both
// engines with a partial implementor that declines half its states.
func TestPortMaskPartialImplementorFallback(t *testing.T) {
	mk := func() core.Algorithm { return halfMaskHypercube{core.NewHypercubeAdaptive(6)} }
	for _, engine := range []string{"buffered", "atomic"} {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			t.Parallel()
			atomic := engine == "atomic"
			workers := 2
			if atomic {
				workers = 0
			}
			for _, inject := range []string{"static", "dynamic"} {
				want := runToggled(t, atomic, mk, true, inject, nil, workers)
				if got := runToggled(t, atomic, mk, false, inject, nil, workers); got != want {
					t.Errorf("%s: partial implementor diverged from mask-off:\n got  %+v\n want %+v", inject, got, want)
				}
			}
		})
	}
}
