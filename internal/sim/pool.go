package sim

import (
	"runtime"
	"sync/atomic"
)

// phasePool is the persistent worker pool behind the buffered engine's
// parallel phases. The workers are spawned once (in NewEngine) and parked on
// a lightweight phase barrier: release is an atomic epoch bump that waiting
// workers observe by spinning, with a mutex/cond park as the slow path, so
// the four phases of every cycle cost neither goroutine creation nor
// WaitGroup churn. Worker 0 is the coordinator itself: run executes shard 0
// inline, so a pool of n workers owns only n-1 goroutines.
//
// The barrier doubles as the memory fence of the engine's determinism
// argument: every plain field a worker reads (the per-cycle run state, the
// shard-owned arrays) is written before the epoch bump and read after
// observing it, and every worker write is sequenced before the pending
// countdown the coordinator waits on.
type phasePool struct {
	n  int           // total workers, including the inline worker 0
	fn func(w int)   // current phase body; set by run before the epoch bump
	mu chan struct{} // slow-path park lock (1-buffered semaphore)

	epoch    atomic.Uint32 // bumped once per phase to release the workers
	pending  atomic.Int32  // workers still inside the current phase
	sleepers atomic.Int32  // workers parked on the slow path
	stopping atomic.Bool   // set once; workers drain and exit
	wake     chan struct{} // closed-and-replaced broadcast for parked workers
}

// Spin budgets of the barrier fast path. The first loop is a pure atomic
// spin (the release gap between phases is a few hundred nanoseconds when
// the coordinator merges once per cycle); the second yields the processor
// so single-P runs with many workers cannot livelock; after both, workers
// park and cost one futex wake.
const (
	poolSpin  = 512
	poolYield = 128
)

// newPhasePool spawns n-1 worker goroutines parked on the barrier.
func newPhasePool(n int) *phasePool {
	p := &phasePool{n: n, wake: make(chan struct{}), mu: make(chan struct{}, 1)}
	p.mu <- struct{}{}
	for w := 1; w < n; w++ {
		go p.loop(w)
	}
	return p
}

// run executes fn(w) for every worker shard and returns when all are done.
func (p *phasePool) run(fn func(w int)) {
	p.fn = fn
	p.pending.Store(int32(p.n - 1))
	p.epoch.Add(1)
	if p.sleepers.Load() > 0 {
		p.broadcast()
	}
	fn(0)
	for i := 0; p.pending.Load() != 0; i++ {
		if i > poolSpin {
			runtime.Gosched()
		}
	}
}

// clear drops the phase closure so the pool does not retain the engine
// between runs (the engine's finalizer is what eventually stops the pool).
func (p *phasePool) clear() { p.fn = nil }

// stop releases the workers for exit. Safe to call more than once; called
// from the engine finalizer, so it must not block on a running phase (by
// construction it cannot: the engine is unreachable, hence no run is live).
func (p *phasePool) stop() {
	if p.stopping.Swap(true) {
		return
	}
	p.epoch.Add(1)
	p.broadcast()
}

// broadcast wakes every parked worker by replacing the wake channel and
// closing the old one.
func (p *phasePool) broadcast() {
	<-p.mu
	old := p.wake
	p.wake = make(chan struct{})
	p.mu <- struct{}{}
	close(old)
}

// loop is the body of one pooled worker.
func (p *phasePool) loop(w int) {
	last := uint32(0)
	for {
		last = p.await(last)
		if p.stopping.Load() {
			return
		}
		p.fn(w)
		p.pending.Add(-1)
	}
}

// await blocks until the epoch moves past last and returns the new value:
// atomic spin, then yield, then park.
func (p *phasePool) await(last uint32) uint32 {
	for i := 0; i < poolSpin; i++ {
		if e := p.epoch.Load(); e != last {
			return e
		}
	}
	for i := 0; i < poolYield; i++ {
		if e := p.epoch.Load(); e != last {
			return e
		}
		runtime.Gosched()
	}
	for {
		<-p.mu
		wake := p.wake
		p.mu <- struct{}{}
		// Publish the intent to sleep BEFORE re-checking the epoch: atomics
		// are sequentially consistent, so a release that this check misses
		// must observe sleepers > 0 and broadcast, which closes the wake
		// generation captured above — the park cannot miss it.
		p.sleepers.Add(1)
		if e := p.epoch.Load(); e != last {
			p.sleepers.Add(-1)
			return e
		}
		<-wake
		p.sleepers.Add(-1)
	}
}
