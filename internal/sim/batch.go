package sim

import (
	"repro/internal/core"
	"repro/internal/obs"
)

// BatchSource is the optional batched extension of TrafficSource. A source
// that implements it lets the engines replace the per-node Wants/Take
// interface dispatch of the injection phase with one FillCycle call per
// worker shard per cycle: the source writes the cycle's injections into a
// flat buffer and the engine commits them in a tight loop with no interface
// calls inside. Both engines detect the interface at the start of a run;
// Config.DisableBatchInject forces the scalar path as a same-binary
// baseline (mirroring DisablePortMask and DisableRouteTable), and runs with
// fault injection always use the scalar path.
//
// The contract makes the two paths bit-identical, which the determinism
// tests pin:
//
//   - full is the engine's injection-queue occupancy bitmap: bit u (word
//     u/64, bit u%64) is set while node u's injection queue is occupied, so
//     an attempt there fails. FillCycle must count such attempts in blocked
//     without consuming a destination draw — exactly like the scalar path,
//     where a Wants against a full queue is counted but Take is not called.
//   - Free nodes that attempt must append to out in ascending node order
//     and consume per-node generator state exactly as the scalar
//     Wants-then-Take sequence would.
//   - [lo, hi) is one worker's shard; lo is 64-aligned and hi is either
//     64-aligned or the node count. FillCycle must touch only per-node
//     state of [lo, hi) and only the words of full covering [lo, hi):
//     other words are concurrently owned by other workers. Any shared
//     state (e.g. a trace reader) must synchronize internally and behave
//     identically for every shard decomposition.
//   - out has capacity for at least hi-lo entries.
type BatchSource interface {
	TrafficSource
	// FillCycle produces the injections of nodes [lo, hi) for cycle. It
	// returns the number of entries written to out and the count of
	// attempts that failed against an occupied injection queue.
	FillCycle(cycle int64, lo, hi int32, full []uint64, out []core.PendingInject) (n, blocked int)
}

// batchFor returns src as a BatchSource when the engine may use the batched
// injection path for this run: the source implements it, the config does
// not disable it, and the run carries no fault state (fault backoff and
// dead-node gating are interleaved per node in the scalar path).
func batchFor(src TrafficSource, cfg *Config, faulted bool) BatchSource {
	if cfg.DisableBatchInject || faulted {
		return nil
	}
	bs, _ := src.(BatchSource)
	return bs
}

// injectBatch is the buffered engine's batched injection phase over one
// shard: one FillCycle call, then a commit loop over the returned entries.
// It must account attempts, successes and the obs counters exactly like
// injectNode does per node.
func (e *Engine) injectBatch(w int, lo, hi int32, bs BatchSource, cycle int64, win runWindow, st *cycleStats) {
	buf := e.batchBuf[w]
	n, blocked := bs.FillCycle(cycle, lo, hi, e.injFull, buf)
	inWin := win.contains(cycle)
	if inWin {
		st.attempts += int64(n + blocked)
	}
	if e.obsOn {
		st.obs.Add(obs.CInjAttempts, int64(n+blocked))
		st.obs.Add(obs.CInjBackpressure, int64(blocked))
	}
	for i := range buf[:n] {
		u, dst := buf[i].Node, buf[i].Dst
		class, work := e.algo.Inject(u, dst)
		e.nextID[u]++
		e.injQ[u] = injSlot{
			pkt: core.Packet{
				ID: e.nextID[u], Src: u, Dst: dst, InjectedAt: cycle,
				Class: class, MinFree: 1, Work: work,
			},
			full: true,
		}
		e.injFull[u>>6] |= 1 << (uint(u) & 63)
		e.setLive(u)
	}
	st.injected += int64(n)
	if inWin {
		st.successes += int64(n)
	}
}

// injectBatchAtomic is the atomic engine's batched injection phase: the
// whole node range is one shard.
func (e *AtomicEngine) injectBatchAtomic(bs BatchSource, cycle int64, win runWindow, st *cycleStats) {
	buf := e.batchBuf
	n, blocked := bs.FillCycle(cycle, 0, int32(e.nodes), e.injFull, buf)
	inWin := win.contains(cycle)
	if inWin {
		st.attempts += int64(n + blocked)
	}
	if e.obsOn {
		st.obs.Add(obs.CInjAttempts, int64(n+blocked))
		st.obs.Add(obs.CInjBackpressure, int64(blocked))
	}
	for i := range buf[:n] {
		u, dst := buf[i].Node, buf[i].Dst
		class, work := e.algo.Inject(u, dst)
		e.nextID[u]++
		e.injQ[u] = injSlot{
			pkt: core.Packet{
				ID: e.nextID[u], Src: u, Dst: dst, InjectedAt: cycle,
				Class: class, MinFree: 1, Work: work,
			},
			full: true,
		}
		e.injFull[u>>6] |= 1 << (uint(u) & 63)
	}
	st.injected += int64(n)
	if inWin {
		st.successes += int64(n)
	}
}
