package sim

import "repro/internal/core"

// QueueSnapshot reports the instantaneous occupancy of one central queue.
type QueueSnapshot struct {
	Node  int32
	Class core.QueueClass
	Len   int
	Cap   int
}

// Snapshot invokes f for every central queue with its current occupancy.
// It must not be called while a Run* is in progress (the engines are not
// reentrant); its intended use is from the OnCycle hook or after a run, to
// study where congestion accumulates — e.g. the paper's observation that
// without dynamic links traffic concentrates around node 1...1.
func (e *Engine) Snapshot(f func(QueueSnapshot)) {
	for u := 0; u < e.nodes; u++ {
		for c := 0; c < e.classes; c++ {
			f(QueueSnapshot{
				Node: int32(u), Class: core.QueueClass(c),
				Len: int(e.qlen[u*e.classes+c]), Cap: e.queueCap,
			})
		}
	}
}

// Snapshot invokes f for every central queue of the atomic engine.
func (e *AtomicEngine) Snapshot(f func(QueueSnapshot)) {
	for u := 0; u < e.nodes; u++ {
		for c := 0; c < e.classes; c++ {
			f(QueueSnapshot{
				Node: int32(u), Class: core.QueueClass(c),
				Len: int(e.qlen[u*e.classes+c]), Cap: e.queueCap,
			})
		}
	}
}

// InNetwork counts the packets currently inside the buffered engine: in
// central queues, in the injection queues, and in the link buffers. At any
// phase boundary Injected == Delivered + InNetwork must hold exactly; the
// conservation tests assert it every cycle.
func (e *Engine) InNetwork() int {
	total := 0
	for _, l := range e.qlen {
		total += int(l)
	}
	for i := range e.injQ {
		if e.injQ[i].full {
			total++
		}
	}
	for _, f := range e.outFull {
		total += int(f)
	}
	for _, f := range e.inFull {
		total += int(f)
	}
	return total
}

// InNetwork counts the packets currently inside the atomic engine.
func (e *AtomicEngine) InNetwork() int {
	total := 0
	for _, l := range e.qlen {
		total += int(l)
	}
	for i := range e.injQ {
		if e.injQ[i].full {
			total++
		}
	}
	return total
}
