// Steady-state allocation regression: both engines' Step must not allocate
// once a run is warmed up, with the metrics core on or off — the zero-alloc
// property the hot-loop scratch buffers exist to provide. Excluded from
// -race builds: race instrumentation inserts allocations of its own.
//
//go:build !race

package sim

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func TestSteadyStateAllocs(t *testing.T) {
	cases := []struct {
		engine  string
		algo    string
		workers int
		metrics bool
	}{
		{"buffered", "hypercube", 1, false},
		{"buffered", "hypercube", 1, true},
		{"buffered", "hypercube", 2, false},
		{"buffered", "hypercube", 2, true},
		{"atomic", "hypercube", 1, false},
		{"atomic", "hypercube", 1, true},
		// Graph-adaptive runs route through the compiled next-hop tables;
		// the table path must not allocate after construction either.
		{"buffered", "graph", 1, false},
		{"buffered", "graph", 1, true},
		{"buffered", "graph", 2, false},
		{"atomic", "graph", 1, false},
		{"atomic", "graph", 1, true},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("%s/%s/workers=%d/metrics=%v", tc.engine, tc.algo, tc.workers, tc.metrics)
		t.Run(name, func(t *testing.T) {
			var algo core.Algorithm = core.NewHypercubeAdaptive(6)
			lambda := 1.0
			if tc.algo == "graph" {
				g, err := topology.NewRandomRegular(64, 4, 1)
				if err != nil {
					t.Fatal(err)
				}
				if algo, err = core.NewGraphAdaptive(g); err != nil {
					t.Fatal(err)
				}
				lambda = 0.3 // below saturation, matching the bench rates
			}
			eng, err := NewSimulator(tc.engine, Config{
				Algorithm: algo,
				Seed:      1,
				Workers:   tc.workers,
				Metrics:   tc.metrics,
			})
			if err != nil {
				t.Fatal(err)
			}
			nodes := algo.Topology().Nodes()
			src := traffic.NewBernoulliSource(traffic.Random{Nodes: nodes}, nodes, lambda, 3)
			// A plan far longer than the test steps, so Step never completes
			// (completion tears down run state, which is not the steady state).
			eng.Start(src, DynamicPlan(0, 1<<30))
			for i := 0; i < 200; i++ {
				if done, err := eng.Step(); done {
					t.Fatalf("warmup finished early: %v", err)
				}
			}
			// AllocsPerRun pins GOMAXPROCS to 1 for the measurement; the
			// worker pool's parked goroutines then make progress through its
			// yield path, so multi-worker cells stay measurable.
			allocs := testing.AllocsPerRun(100, func() {
				if done, err := eng.Step(); done {
					t.Fatalf("run finished mid-measurement: %v", err)
				}
			})
			if allocs != 0 {
				t.Errorf("Step allocates %.1f times per cycle in steady state, want 0", allocs)
			}
		})
	}
}
