// Steady-state allocation regression: both engines' Step must not allocate
// once a run is warmed up, with the metrics core on or off — the zero-alloc
// property the hot-loop scratch buffers exist to provide. Excluded from
// -race builds: race instrumentation inserts allocations of its own.
//
//go:build !race

package sim

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/traffic"
)

func TestSteadyStateAllocs(t *testing.T) {
	cases := []struct {
		engine  string
		workers int
		metrics bool
	}{
		{"buffered", 1, false},
		{"buffered", 1, true},
		{"buffered", 2, false},
		{"buffered", 2, true},
		{"atomic", 1, false},
		{"atomic", 1, true},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("%s/workers=%d/metrics=%v", tc.engine, tc.workers, tc.metrics)
		t.Run(name, func(t *testing.T) {
			algo := core.NewHypercubeAdaptive(6)
			eng, err := NewSimulator(tc.engine, Config{
				Algorithm: algo,
				Seed:      1,
				Workers:   tc.workers,
				Metrics:   tc.metrics,
			})
			if err != nil {
				t.Fatal(err)
			}
			nodes := algo.Topology().Nodes()
			src := traffic.NewBernoulliSource(traffic.Random{Nodes: nodes}, nodes, 1.0, 3)
			// A plan far longer than the test steps, so Step never completes
			// (completion tears down run state, which is not the steady state).
			eng.Start(src, DynamicPlan(0, 1<<30))
			for i := 0; i < 200; i++ {
				if done, err := eng.Step(); done {
					t.Fatalf("warmup finished early: %v", err)
				}
			}
			// AllocsPerRun pins GOMAXPROCS to 1 for the measurement; the
			// worker pool's parked goroutines then make progress through its
			// yield path, so multi-worker cells stay measurable.
			allocs := testing.AllocsPerRun(100, func() {
				if done, err := eng.Step(); done {
					t.Fatalf("run finished mid-measurement: %v", err)
				}
			})
			if allocs != 0 {
				t.Errorf("Step allocates %.1f times per cycle in steady state, want 0", allocs)
			}
		})
	}
}
