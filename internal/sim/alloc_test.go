// Steady-state allocation regression: both engines' Step must not allocate
// once a run is warmed up, with the metrics core on or off — the zero-alloc
// property the hot-loop scratch buffers exist to provide. Excluded from
// -race builds: race instrumentation inserts allocations of its own.
//
//go:build !race

package sim

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func TestSteadyStateAllocs(t *testing.T) {
	cases := []struct {
		engine  string
		algo    string
		workers int
		metrics bool
		source  string // "" = bernoulli
		noBatch bool
	}{
		{engine: "buffered", algo: "hypercube", workers: 1},
		{engine: "buffered", algo: "hypercube", workers: 1, metrics: true},
		{engine: "buffered", algo: "hypercube", workers: 2},
		{engine: "buffered", algo: "hypercube", workers: 2, metrics: true},
		{engine: "atomic", algo: "hypercube", workers: 1},
		{engine: "atomic", algo: "hypercube", workers: 1, metrics: true},
		// The sources implement BatchSource, so the cases above exercise the
		// batched injection path; DisableBatchInject keeps the scalar path
		// covered too.
		{engine: "buffered", algo: "hypercube", workers: 1, noBatch: true},
		{engine: "buffered", algo: "hypercube", workers: 2, noBatch: true},
		{engine: "atomic", algo: "hypercube", workers: 1, noBatch: true},
		// The other traffic models must be allocation-free on both paths:
		// bursty MMPP, the time-varying square wave, and trace replay from a
		// pre-opened file (incremental decode, no per-packet allocation).
		{engine: "buffered", algo: "hypercube", workers: 1, source: "mmpp"},
		{engine: "buffered", algo: "hypercube", workers: 2, source: "mmpp"},
		{engine: "atomic", algo: "hypercube", workers: 1, source: "mmpp"},
		{engine: "buffered", algo: "hypercube", workers: 1, source: "onoff"},
		{engine: "buffered", algo: "hypercube", workers: 1, source: "trace"},
		{engine: "buffered", algo: "hypercube", workers: 2, source: "trace"},
		{engine: "atomic", algo: "hypercube", workers: 1, source: "trace"},
		{engine: "buffered", algo: "hypercube", workers: 1, source: "mmpp", noBatch: true},
		// Graph-adaptive runs route through the compiled next-hop tables;
		// the table path must not allocate after construction either.
		{engine: "buffered", algo: "graph", workers: 1},
		{engine: "buffered", algo: "graph", workers: 1, metrics: true},
		{engine: "buffered", algo: "graph", workers: 2},
		{engine: "atomic", algo: "graph", workers: 1},
		{engine: "atomic", algo: "graph", workers: 1, metrics: true},
	}
	for _, tc := range cases {
		source := tc.source
		if source == "" {
			source = "bernoulli"
		}
		name := fmt.Sprintf("%s/%s/workers=%d/metrics=%v/%s/nobatch=%v",
			tc.engine, tc.algo, tc.workers, tc.metrics, source, tc.noBatch)
		t.Run(name, func(t *testing.T) {
			var algo core.Algorithm = core.NewHypercubeAdaptive(6)
			lambda := 1.0
			if tc.algo == "graph" {
				g, err := topology.NewRandomRegular(64, 4, 1)
				if err != nil {
					t.Fatal(err)
				}
				if algo, err = core.NewGraphAdaptive(g); err != nil {
					t.Fatal(err)
				}
				lambda = 0.3 // below saturation, matching the bench rates
			}
			eng, err := NewSimulator(tc.engine, Config{
				Algorithm:          algo,
				Seed:               1,
				Workers:            tc.workers,
				Metrics:            tc.metrics,
				DisableBatchInject: tc.noBatch,
			})
			if err != nil {
				t.Fatal(err)
			}
			nodes := algo.Topology().Nodes()
			var src TrafficSource
			switch source {
			case "bernoulli":
				src = traffic.NewBernoulliSource(traffic.Random{Nodes: nodes}, nodes, lambda, 3)
			case "mmpp":
				src = traffic.NewMMPP(traffic.Random{Nodes: nodes}, nodes, 0.9, 0.05, 0.1, 0.1, 3)
			case "onoff":
				src = traffic.NewOnOff(traffic.Random{Nodes: nodes}, nodes, 0.9, 0.1, 64, 32, 3)
			case "trace":
				src = traffic.NewTraceSource(openAllocTrace(t, tc.engine, nodes), nodes)
			}
			// A plan far longer than the test steps, so Step never completes
			// (completion tears down run state, which is not the steady state).
			eng.Start(src, DynamicPlan(0, 1<<30))
			for i := 0; i < 200; i++ {
				if done, err := eng.Step(); done {
					t.Fatalf("warmup finished early: %v", err)
				}
			}
			// AllocsPerRun pins GOMAXPROCS to 1 for the measurement; the
			// worker pool's parked goroutines then make progress through its
			// yield path, so multi-worker cells stay measurable.
			allocs := testing.AllocsPerRun(100, func() {
				if done, err := eng.Step(); done {
					t.Fatalf("run finished mid-measurement: %v", err)
				}
			})
			if allocs != 0 {
				t.Errorf("Step allocates %.1f times per cycle in steady state, want 0", allocs)
			}
		})
	}
}

// openAllocTrace records a short saturated run to a temp file and reopens
// it, so the trace-replay alloc cases decode from a real pre-opened file.
func openAllocTrace(t *testing.T, engine string, nodes int) *os.File {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewSimulator(engine, Config{Algorithm: core.NewHypercubeAdaptive(6), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec := &traffic.RecordingSource{
		Inner: traffic.NewBernoulliSource(traffic.Random{Nodes: nodes}, nodes, 1.0, 3),
		Cap:   1,
		W:     f,
	}
	if _, err := e.Run(context.Background(), rec, DynamicPlan(0, 600)); err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return rf
}

// TestTraceReplayMillionsZeroAlloc is the acceptance run for the trace
// pipeline at scale: a recorded run of over two million packets replays
// bit-exactly from disk, with zero steady-state allocations per cycle
// measured mid-replay. The run is dim-10 at saturation, so it also soaks the
// batched injection path's word-level occupancy scan.
func TestTraceReplayMillionsZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-packet run")
	}
	const dim = 10
	const targetPackets = 2_100_000
	mkEngine := func() Simulator {
		e, err := NewSimulator("buffered", Config{
			Algorithm: core.NewHypercubeAdaptive(dim),
			Seed:      5,
			Workers:   2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	nodes := 1 << dim

	// Probe the sustained injection rate, then size the recorded run to
	// clear the packet target.
	probe, err := mkEngine().Run(context.Background(),
		traffic.NewBernoulliSource(traffic.Random{Nodes: nodes}, nodes, 1.0, 9),
		DynamicPlan(0, 300))
	if err != nil {
		t.Fatal(err)
	}
	perCycle := float64(probe.Metrics.Injected) / 300
	cycles := int64(targetPackets/perCycle) + 100

	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := &traffic.RecordingSource{
		Inner: traffic.NewBernoulliSource(traffic.Random{Nodes: nodes}, nodes, 1.0, 9),
		Cap:   1,
		W:     f,
	}
	res1, err := mkEngine().Run(context.Background(), rec, DynamicPlan(0, cycles))
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if res1.Metrics.Injected < 2_000_000 {
		t.Fatalf("recorded run injected %d packets, want >= 2M", res1.Metrics.Injected)
	}

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	src := traffic.NewTraceSource(rf, nodes)
	e := mkEngine()
	e.Start(src, DynamicPlan(0, cycles))
	for i := 0; i < 200; i++ {
		if done, err := e.Step(); done {
			t.Fatalf("replay finished early: %v", err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if done, err := e.Step(); done {
			t.Fatalf("replay finished mid-measurement: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("trace replay allocates %.1f times per cycle in steady state, want 0", allocs)
	}
	for {
		done, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	res2, err := e.Result()
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Err(); err != nil {
		t.Fatalf("trace decode: %v", err)
	}
	if res1.Metrics != res2.Metrics {
		t.Errorf("replay diverged from recording:\n recorded %+v\n replayed %+v", res1.Metrics, res2.Metrics)
	}
}
