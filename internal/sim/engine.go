package sim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/queue"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// slot is a single-packet link buffer (input or output).
type slot struct {
	pkt  core.Packet
	kind core.LinkKind // kind of the transition the packet is taking
	full bool
}

// Engine is the buffered cycle-accurate simulator of Sections 6 and 7.1.
//
// Every directed link (u, port) carries bufClasses = NumClasses+1 output
// buffers at u and the matching input buffers at the far end: one buffer per
// static target queue plus one shared buffer for dynamic transitions,
// exactly the node designs of Figures 4-6. One routing cycle is:
//
//	injection: each node draws from the traffic source into its (size-1)
//	           injection queue;
//	node  (a): each node moves packets from its central queues into free
//	           output buffers / internal targets, scanning packets in FIFO
//	           order so the first message in FIFO order wins a contended
//	           buffer;
//	node  (b): each node drains its input buffers and injection queue into
//	           the central queues under a rotating fair order, consuming
//	           packets that arrived at their destination;
//	link:      each directed link transfers at most one packet, choosing
//	           among its occupied output buffers under a rotating fair
//	           order, and only into an empty input buffer.
type Engine struct {
	cfg        Config
	algo       core.Algorithm
	topo       topology.Topology
	nodes      int
	ports      int
	classes    int
	bufClasses int

	queues  []*queue.FIFO[core.Packet] // [node*classes + class]
	occ     []int32                    // atomic occupancy mirror of queues
	inbound []int32                    // committed-but-not-delivered packets per queue (credit accounting)
	injQ    []slot                     // per-node injection queue (size 1)
	outSlot []slot                     // [(node*ports+port)*bufClasses + bc]
	inSlot  []slot                     // same index: input buffer at the far end
	// incomingSlots[v] lists, in deterministic order, the inSlot indices
	// that deliver packets into v (all buffer classes of all inbound links).
	incomingSlots [][]int32
	linkRR        []uint32 // per directed link: buffer-class rotation
	nodeRR        []uint32 // per node: input-drain rotation
	rngs          []xrand.RNG
	nextID        []int64 // per-node packet id counters (determinism)

	active []bool // per node: traffic source not yet exhausted

	workers  int
	statsBuf []cycleStats // one per worker
	scratch  []workerScratch
}

// workerScratch holds per-worker reusable buffers so the hot loop does not
// allocate.
type workerScratch struct {
	cand []core.Move
	adm  []int
}

// cycleStats accumulates per-worker, per-cycle observations that are merged
// into Metrics after each phase barrier.
type cycleStats struct {
	moves        int64
	dynamicMoves int64
	injected     int64
	delivered    int64
	attempts     int64
	successes    int64
	latencySum   int64
	latencyMax   int64
	measured     int64
	maxQueue     int
	_            [40]byte // pad to avoid false sharing between workers
}

// NewEngine builds a buffered engine for the given configuration.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	a := cfg.Algorithm
	if a.Props().AtomicOnly {
		return nil, fmt.Errorf("sim: algorithm %s requires the atomic engine", a.Name())
	}
	t := a.Topology()
	e := &Engine{
		cfg:        cfg,
		algo:       a,
		topo:       t,
		nodes:      t.Nodes(),
		ports:      t.Ports(),
		classes:    a.NumClasses(),
		bufClasses: a.NumClasses() + 1,
		workers:    cfg.Workers,
	}
	e.queues = make([]*queue.FIFO[core.Packet], e.nodes*e.classes)
	for i := range e.queues {
		e.queues[i] = queue.New[core.Packet](cfg.QueueCap)
	}
	e.occ = make([]int32, len(e.queues))
	e.inbound = make([]int32, len(e.queues))
	e.injQ = make([]slot, e.nodes)
	nLinks := e.nodes * e.ports
	e.outSlot = make([]slot, nLinks*e.bufClasses)
	e.inSlot = make([]slot, nLinks*e.bufClasses)
	e.incomingSlots = make([][]int32, e.nodes)
	for u := 0; u < e.nodes; u++ {
		for p := 0; p < e.ports; p++ {
			v := t.Neighbor(u, p)
			if v == topology.None || v == u {
				continue
			}
			base := (u*e.ports + p) * e.bufClasses
			for bc := 0; bc < e.bufClasses; bc++ {
				e.incomingSlots[v] = append(e.incomingSlots[v], int32(base+bc))
			}
		}
	}
	e.linkRR = make([]uint32, nLinks)
	e.nodeRR = make([]uint32, e.nodes)
	e.rngs = make([]xrand.RNG, e.nodes)
	e.nextID = make([]int64, e.nodes)
	e.active = make([]bool, e.nodes)
	e.statsBuf = make([]cycleStats, e.workers)
	e.scratch = make([]workerScratch, e.workers)
	for i := range e.scratch {
		e.scratch[i] = workerScratch{cand: make([]core.Move, 0, 64), adm: make([]int, 64)}
	}
	e.reset()
	return e, nil
}

func (e *Engine) reset() {
	for i, q := range e.queues {
		q.Clear()
		e.occ[i] = 0
		e.inbound[i] = 0
	}
	for i := range e.injQ {
		e.injQ[i] = slot{}
	}
	for i := range e.outSlot {
		e.outSlot[i] = slot{}
	}
	for i := range e.inSlot {
		e.inSlot[i] = slot{}
	}
	for i := range e.linkRR {
		e.linkRR[i] = 0
	}
	for u := range e.nodeRR {
		e.nodeRR[u] = 0
		e.rngs[u] = xrand.New(e.cfg.Seed, int32(u))
		e.nextID[u] = int64(u) << 36
		e.active[u] = true
	}
}

// queueAt returns the central queue (node, class).
func (e *Engine) queueAt(node int32, class core.QueueClass) *queue.FIFO[core.Packet] {
	return e.queues[int(node)*e.classes+int(class)]
}

func (e *Engine) queueIndex(node int32, class core.QueueClass) int {
	return int(node)*e.classes + int(class)
}

// qPush and qRemove route every central-queue mutation through the atomic
// occupancy mirror, which credited claims read from other nodes.
func (e *Engine) qPush(qi int, pkt core.Packet) int {
	if !e.queues[qi].Push(pkt) {
		panic("sim: push into a full queue (admissibility bug)")
	}
	atomic.AddInt32(&e.occ[qi], 1)
	return e.queues[qi].Len()
}

func (e *Engine) qRemove(qi, idx int) core.Packet {
	pkt := e.queues[qi].Remove(idx)
	atomic.AddInt32(&e.occ[qi], -1)
	return pkt
}

// effectiveFree returns the target queue's capacity minus occupancy minus
// committed inbound packets. Reads are atomic; during node phase (a) the
// target's occupancy can only shrink (its owner may pop packets out), so a
// stale read is conservative.
func (e *Engine) effectiveFree(qi int) int32 {
	return int32(e.cfg.QueueCap) - atomic.LoadInt32(&e.occ[qi]) - atomic.LoadInt32(&e.inbound[qi])
}

// tryReserve atomically reserves one inbound slot at queue qi, succeeding
// only while effectiveFree >= need. Several nodes may race for the same
// queue under RemoteLookahead; the CAS keeps occupancy+inbound <= capacity,
// so a reserved packet's eventual push can never find the queue full.
func (e *Engine) tryReserve(qi int, need int32) bool {
	for {
		in := atomic.LoadInt32(&e.inbound[qi])
		free := int32(e.cfg.QueueCap) - atomic.LoadInt32(&e.occ[qi]) - in
		if free < need {
			return false
		}
		if atomic.CompareAndSwapInt32(&e.inbound[qi], in, in+1) {
			return true
		}
	}
}

// runWindow holds the measurement bounds of a run.
type runWindow struct {
	start int64 // first cycle whose deliveries/attempts are measured
	end   int64 // exclusive; <0 means measure to the end of the run
}

func (w runWindow) contains(cycle int64) bool {
	return cycle >= w.start && (w.end < 0 || cycle < w.end)
}

// RunStatic injects the (finite) traffic of src and simulates until every
// packet has been delivered, returning the full-run metrics. It returns
// *ErrDeadlock if the watchdog fires and an error if maxCycles (0 = none) is
// exceeded.
func (e *Engine) RunStatic(src TrafficSource, maxCycles int64) (Metrics, error) {
	return e.run(src, runWindow{0, -1}, 0, maxCycles, true)
}

// RunDynamic simulates warmup+measure cycles of dynamic injection,
// measuring latency and the effective injection rate over deliveries and
// attempts that fall in the measurement window.
func (e *Engine) RunDynamic(src TrafficSource, warmup, measure int64) (Metrics, error) {
	return e.run(src, runWindow{warmup, warmup + measure}, warmup+measure, warmup+measure, false)
}

func (e *Engine) run(src TrafficSource, win runWindow, stopAt, maxCycles int64, drain bool) (Metrics, error) {
	e.reset()
	var m Metrics
	idle := 0
	for cycle := int64(0); ; cycle++ {
		if stopAt > 0 && cycle >= stopAt {
			m.Cycles = cycle
			m.InFlight = m.Injected - m.Delivered
			return m, nil
		}
		if maxCycles > 0 && cycle > maxCycles {
			m.Cycles = cycle
			m.InFlight = m.Injected - m.Delivered
			return m, fmt.Errorf("sim: %s exceeded %d cycles with %d packets in flight",
				e.algo.Name(), maxCycles, m.InFlight)
		}

		prevMoves := m.Moves
		e.parallel(func(w, lo, hi int) {
			st := &e.statsBuf[w]
			for u := lo; u < hi; u++ {
				e.injectPhase(int32(u), cycle, src, win, st)
			}
		})
		e.merge(&m, win)
		e.parallel(func(w, lo, hi int) {
			st := &e.statsBuf[w]
			sc := &e.scratch[w]
			for u := lo; u < hi; u++ {
				e.nodePhaseA(int32(u), cycle, win, st, sc)
			}
		})
		e.merge(&m, win)
		e.parallel(func(w, lo, hi int) {
			st := &e.statsBuf[w]
			for u := lo; u < hi; u++ {
				e.nodePhaseB(int32(u), cycle, win, st)
			}
		})
		e.merge(&m, win)
		e.parallel(func(w, lo, hi int) {
			st := &e.statsBuf[w]
			for u := lo; u < hi; u++ {
				e.linkPhase(int32(u), st)
			}
		})
		e.merge(&m, win)
		m.Cycles = cycle + 1
		m.InFlight = m.Injected - m.Delivered
		if e.cfg.OnCycle != nil {
			e.cfg.OnCycle(cycle)
		}

		if drain && m.InFlight == 0 && e.allExhausted(src) {
			return m, nil
		}
		if m.Moves == prevMoves && m.InFlight > 0 {
			idle++
			if idle >= e.cfg.DeadlockWindow {
				return m, &ErrDeadlock{Cycle: cycle, InFlight: int(m.InFlight), Algorithm: e.algo.Name()}
			}
		} else {
			idle = 0
		}
	}
}

func (e *Engine) allExhausted(src TrafficSource) bool {
	for u := 0; u < e.nodes; u++ {
		if e.active[u] {
			if !src.Exhausted(int32(u)) {
				return false
			}
			e.active[u] = false
		}
	}
	return true
}

// parallel runs f over the node range, sharded across the configured number
// of workers with a barrier at the end. With one worker it runs inline.
func (e *Engine) parallel(f func(worker, lo, hi int)) {
	if e.workers <= 1 {
		f(0, 0, e.nodes)
		return
	}
	var wg sync.WaitGroup
	chunk := (e.nodes + e.workers - 1) / e.workers
	for w := 0; w < e.workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > e.nodes {
			hi = e.nodes
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			f(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// merge folds the per-worker cycle stats into the run metrics.
func (e *Engine) merge(m *Metrics, win runWindow) {
	for i := range e.statsBuf {
		st := &e.statsBuf[i]
		m.Moves += st.moves
		m.DynamicMoves += st.dynamicMoves
		m.Injected += st.injected
		m.Delivered += st.delivered
		m.Attempts += st.attempts
		m.Successes += st.successes
		m.LatencySum += st.latencySum
		m.Measured += st.measured
		if st.latencyMax > m.LatencyMax {
			m.LatencyMax = st.latencyMax
		}
		if st.maxQueue > m.MaxQueue {
			m.MaxQueue = st.maxQueue
		}
		*st = cycleStats{}
	}
}

// injectPhase lets node u attempt one injection into its injection queue.
func (e *Engine) injectPhase(u int32, cycle int64, src TrafficSource, win runWindow, st *cycleStats) {
	if !e.active[u] {
		return
	}
	if src.Exhausted(u) {
		e.active[u] = false
		return
	}
	if !src.Wants(u, cycle) {
		return
	}
	if win.contains(cycle) {
		st.attempts++
	}
	if e.injQ[u].full {
		return // injection queue occupied: the attempt fails
	}
	dst := src.Take(u, cycle)
	class, work := e.algo.Inject(u, dst)
	e.nextID[u]++
	e.injQ[u] = slot{
		pkt: core.Packet{
			ID: e.nextID[u], Src: u, Dst: dst, InjectedAt: cycle,
			Class: class, MinFree: 1, Work: work,
		},
		kind: core.Static,
		full: true,
	}
	st.injected++
	if win.contains(cycle) {
		st.successes++
	}
}

// nodePhaseA moves packets from u's central queues into output buffers and
// internal targets. Packets are scanned in FIFO order per queue (classes in
// ascending order), so the first packet in FIFO order wins any contended
// buffer, as Section 7.1 prescribes.
func (e *Engine) nodePhaseA(u int32, cycle int64, win runWindow, st *cycleStats, sc *workerScratch) {
	r := &e.rngs[u]
	// Snapshot the queue lengths so packets moved internally this cycle
	// (e.g. a phase change into q_B) are not scanned again.
	var lens [256]int
	for c := 0; c < e.classes; c++ {
		lens[c] = e.queueAt(u, core.QueueClass(c)).Len()
		if e.cfg.HeadOnly && lens[c] > 1 {
			lens[c] = 1
		}
	}
	// Rotate the class scan order each cycle: several queues can feed the
	// same output buffer (e.g. a phase-A packet performing its last 0->1
	// correction and a phase-B packet share the B buffer of a link), and a
	// fixed scan order would let one class starve the other indefinitely.
	for off := 0; off < e.classes; off++ {
		c := off + int(cycle)%e.classes
		if c >= e.classes {
			c -= e.classes
		}
		q := e.queueAt(u, core.QueueClass(c))
		idx := 0
		for scanned := 0; scanned < lens[c]; scanned++ {
			pkt := q.At(idx)
			sc.cand = e.algo.Candidates(int32(u), core.QueueClass(c), pkt.Work, pkt.Dst, sc.cand[:0])
			moves := sc.cand
			if len(moves) > len(sc.adm) {
				sc.adm = make([]int, len(moves))
			}
			nAdm := 0
			for i, mv := range moves {
				if e.admissibleA(u, core.QueueClass(c), mv) {
					sc.adm[nAdm] = i
					nAdm++
				}
			}
			if nAdm == 0 {
				idx++
				continue
			}
			mv := moves[e.choose(r, moves, sc.adm[:nAdm])]
			qi := e.queueIndex(u, core.QueueClass(c))
			switch {
			case mv.Deliver:
				e.deliver(e.qRemove(qi, idx), cycle, win, st)
			case mv.Port == core.PortInternal && mv.Node == u && mv.Class == core.QueueClass(c):
				// Self-spin: advance bookkeeping in place.
				pkt.Work = mv.Work
				q.Set(idx, pkt)
				idx++
				st.moves++
			case mv.Port == core.PortInternal:
				pkt = e.qRemove(qi, idx)
				pkt.Class = mv.Class
				pkt.Work = mv.Work
				pkt.MinFree = 1
				if l := e.qPush(e.queueIndex(u, mv.Class), pkt); l > st.maxQueue {
					st.maxQueue = l
				}
				st.moves++
			default:
				if mv.Credit > 0 {
					// Credited move: reserve the slot before committing.
					// The unique upstream claimer makes the CAS a formality,
					// but it keeps the invariant machine-checked.
					if !e.tryReserve(e.queueIndex(mv.Node, mv.Class), int32(mv.Credit)) {
						idx++
						continue
					}
					pkt = e.qRemove(qi, idx)
					pkt.MinFree = 0 // marks the reservation for the drain
				} else {
					pkt = e.qRemove(qi, idx)
					pkt.MinFree = mv.MinFree
				}
				pkt.Class = mv.Class
				pkt.Work = mv.Work
				si := (int(u)*e.ports+int(mv.Port))*e.bufClasses + core.BufferClassOf(e.algo, mv)
				e.outSlot[si] = slot{pkt: pkt, kind: mv.Kind, full: true}
				st.moves++
				if mv.Kind == core.Dynamic {
					st.dynamicMoves++
				}
			}
		}
	}
}

// admissibleA reports whether a move can be taken during node phase (a):
// output buffer free for remote moves (plus the credit reservation for
// credited moves), capacity available for internal ones.
func (e *Engine) admissibleA(u int32, class core.QueueClass, mv core.Move) bool {
	switch {
	case mv.Deliver:
		return true
	case mv.Port == core.PortInternal && mv.Node == u && mv.Class == class:
		return true // in-place
	case mv.Port == core.PortInternal:
		// Internal moves must not consume slots reserved by inbound
		// credited packets.
		return e.effectiveFree(e.queueIndex(u, mv.Class)) >= int32(mv.MinFree)
	default:
		si := (int(u)*e.ports+int(mv.Port))*e.bufClasses + core.BufferClassOf(e.algo, mv)
		if e.outSlot[si].full {
			return false
		}
		if mv.Credit > 0 {
			return e.effectiveFree(e.queueIndex(mv.Node, mv.Class)) >= int32(mv.Credit)
		}
		if e.cfg.RemoteLookahead {
			// Advisory: only commit toward a queue that currently has room.
			// No reservation is taken; transient overcommit simply waits in
			// the link buffers as under plain buffered flow control.
			qi := e.queueIndex(mv.Node, mv.Class)
			return atomic.LoadInt32(&e.occ[qi]) < int32(e.cfg.QueueCap)
		}
		return true
	}
}

// choose applies the configured policy to the admissible move indices.
func (e *Engine) choose(r *xrand.RNG, moves []core.Move, adm []int) int {
	switch e.cfg.Policy {
	case PolicyFirstFree:
		return adm[0]
	case PolicyLastFree:
		return adm[len(adm)-1]
	case PolicyStaticFirst:
		var static [64]int
		n := 0
		for _, i := range adm {
			if moves[i].Kind == core.Static {
				static[n] = i
				n++
			}
		}
		if n > 0 {
			return static[r.Intn(n)]
		}
		return adm[r.Intn(len(adm))]
	default: // PolicyRandom
		return adm[r.Intn(len(adm))]
	}
}

// nodePhaseB drains u's input buffers and injection queue into the central
// queues under a rotating fair order, consuming packets that reached their
// destination directly from the buffer.
func (e *Engine) nodePhaseB(u int32, cycle int64, win runWindow, st *cycleStats) {
	in := e.incomingSlots[u]
	total := len(in) + 1 // +1 for the injection queue
	start := int(e.nodeRR[u]) % total
	e.nodeRR[u]++
	for i := 0; i < total; i++ {
		s := start + i
		if s >= total {
			s -= total
		}
		if s == len(in) {
			// Injection queue. Latency is measured from *network entry*
			// (leaving the injection queue): time spent waiting in the
			// injection queue is charged to the effective injection rate,
			// not to latency, matching Section 7's bounded L_max under
			// saturation.
			sl := &e.injQ[u]
			if !sl.full {
				continue
			}
			qi := e.queueIndex(u, sl.pkt.Class)
			if e.effectiveFree(qi) >= int32(sl.pkt.MinFree) {
				sl.pkt.InjectedAt = cycle
				if l := e.qPush(qi, sl.pkt); l > st.maxQueue {
					st.maxQueue = l
				}
				sl.full = false
				st.moves++
			}
			continue
		}
		sl := &e.inSlot[in[s]]
		if !sl.full {
			continue
		}
		if e.cfg.CutThrough && sl.pkt.Dst != u && sl.pkt.MinFree != 0 && e.cutThrough(u, sl, st) {
			continue
		}
		if sl.pkt.Dst == u {
			if sl.pkt.MinFree == 0 {
				// Release the credit reservation of a packet consumed
				// straight from the input buffer.
				atomic.AddInt32(&e.inbound[e.queueIndex(u, sl.pkt.Class)], -1)
			}
			e.deliver(sl.pkt, cycle, win, st)
			sl.full = false
			continue
		}
		qi := e.queueIndex(u, sl.pkt.Class)
		if sl.pkt.MinFree == 0 {
			// Credited packet: its slot was reserved at claim time, so the
			// push cannot fail; release the reservation.
			pkt := sl.pkt
			pkt.MinFree = 1
			if l := e.qPush(qi, pkt); l > st.maxQueue {
				st.maxQueue = l
			}
			atomic.AddInt32(&e.inbound[qi], -1)
			sl.full = false
			st.moves++
			continue
		}
		if e.queues[qi].Free() >= int(sl.pkt.MinFree) {
			if l := e.qPush(qi, sl.pkt); l > st.maxQueue {
				st.maxQueue = l
			}
			sl.full = false
			st.moves++
		}
	}
}

// cutThrough attempts to forward an input-buffer packet straight to a free
// output buffer (virtual cut-through). It must not be used for credited
// packets (their reservation is tied to the queue they bypass). Reports
// whether the packet moved.
func (e *Engine) cutThrough(u int32, sl *slot, st *cycleStats) bool {
	sc := &e.scratch[0]
	if e.workers > 1 {
		// Under parallel execution each worker owns a contiguous node
		// range; index the scratch by the worker that owns u.
		chunk := (e.nodes + e.workers - 1) / e.workers
		sc = &e.scratch[int(u)/chunk]
	}
	pkt := sl.pkt
	sc.cand = e.algo.Candidates(u, pkt.Class, pkt.Work, pkt.Dst, sc.cand[:0])
	for _, mv := range sc.cand {
		if mv.Deliver || mv.Port == core.PortInternal || mv.Credit > 0 {
			// Internal transitions and credited (bubble-reserved) moves go
			// through the queues; everything else may cut through — the
			// packet only ever occupies buffers that were free, so the
			// deadlock analysis is unchanged and waiting strictly shrinks.
			continue
		}
		si := (int(u)*e.ports+int(mv.Port))*e.bufClasses + core.BufferClassOf(e.algo, mv)
		if e.outSlot[si].full {
			continue
		}
		pkt.Class = mv.Class
		pkt.Work = mv.Work
		pkt.MinFree = mv.MinFree
		e.outSlot[si] = slot{pkt: pkt, kind: mv.Kind, full: true}
		sl.full = false
		st.moves++
		if mv.Kind == core.Dynamic {
			st.dynamicMoves++
		}
		return true
	}
	return false
}

// linkPhase transfers at most one packet per direction over each of u's
// outgoing links, into empty input buffers, rotating over the buffer
// classes for fairness.
func (e *Engine) linkPhase(u int32, st *cycleStats) {
	for p := 0; p < e.ports; p++ {
		if e.topo.Neighbor(int(u), p) == topology.None {
			continue
		}
		l := int(u)*e.ports + p
		base := l * e.bufClasses
		start := int(e.linkRR[l]) % e.bufClasses
		for i := 0; i < e.bufClasses; i++ {
			bc := start + i
			if bc >= e.bufClasses {
				bc -= e.bufClasses
			}
			out := &e.outSlot[base+bc]
			if !out.full {
				continue
			}
			in := &e.inSlot[base+bc]
			if in.full {
				continue
			}
			out.pkt.Hops++
			*in = *out
			out.full = false
			e.linkRR[l]++
			st.moves++
			break // one packet per link per cycle
		}
	}
}

// deliver consumes a packet at its destination and updates statistics,
// asserting the livelock-freedom hop bound (and exact minimality for
// minimal algorithms).
func (e *Engine) deliver(pkt core.Packet, cycle int64, win runWindow, st *cycleStats) {
	if !e.cfg.DisableInvariantChecks {
		bound := e.algo.MaxHops(pkt.Src, pkt.Dst)
		if int(pkt.Hops) > bound {
			panic(fmt.Sprintf("sim: %s: packet %d took %d hops from %d to %d, bound %d",
				e.algo.Name(), pkt.ID, pkt.Hops, pkt.Src, pkt.Dst, bound))
		}
		if e.algo.Props().Minimal && int(pkt.Hops) != bound {
			panic(fmt.Sprintf("sim: %s: minimal algorithm delivered packet %d in %d hops, distance %d",
				e.algo.Name(), pkt.ID, pkt.Hops, bound))
		}
	}
	st.delivered++
	st.moves++
	lat := cycle - pkt.InjectedAt + 1
	if e.cfg.OnDeliver != nil {
		e.cfg.OnDeliver(pkt, lat)
	}
	if win.contains(cycle) {
		st.latencySum += lat
		st.measured++
		if lat > st.latencyMax {
			st.latencyMax = lat
		}
	}
}
