package sim

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// injSlot is the per-node injection queue (size 1).
type injSlot struct {
	pkt  core.Packet
	full bool
}

// Engine is the buffered cycle-accurate simulator of Sections 6 and 7.1.
//
// Every directed link (u, port) carries bufClasses = NumClasses+1 output
// buffers at u and the matching input buffers at the far end: one buffer per
// static target queue plus one shared buffer for dynamic transitions,
// exactly the node designs of Figures 4-6. One routing cycle is:
//
//	injection: each node draws from the traffic source into its (size-1)
//	           injection queue;
//	node  (a): each node moves packets from its central queues into free
//	           output buffers / internal targets, scanning packets in FIFO
//	           order so the first message in FIFO order wins a contended
//	           buffer;
//	node  (b): each node drains its input buffers and injection queue into
//	           the central queues under a rotating fair order, consuming
//	           packets that arrived at their destination;
//	link:      each directed link transfers at most one packet, choosing
//	           among its occupied output buffers under a rotating fair
//	           order, and only into an empty input buffer.
//
// The hot loop is organized for throughput:
//
//   - the central queues are one contiguous packet slab with per-queue
//     head/length arrays (structure of arrays), so queue scans stay in
//     cache and need no per-queue ring allocations;
//   - link buffers split their occupancy flags from the packet payloads, so
//     the admissibility probes and the link/drain scans touch a compact flag
//     array instead of striding through packet-sized slots;
//   - per-node and per-link occupancy counters (qTotal, inCount, outCount,
//     outLink) let every phase exit its scans as soon as the remaining work
//     is known to be zero;
//   - a live-node bitmap (liveBits) — the active worklist — is maintained
//     incrementally at inject/push/drain/link time, so the phases iterate
//     only nodes that currently hold a packet and the drain tail of a
//     static run costs O(active), not O(N);
//   - with Workers > 1 the phases run on a persistent worker pool (pool.go)
//     sharded by contiguous, 64-aligned node ranges; packets crossing a
//     shard boundary are posted to per-worker-pair mail lanes and folded in
//     at the next cycle's injection phase, which keeps every array owned by
//     exactly one worker between barriers.
//
// Determinism: for a fixed seed the engine is bit-deterministic and
// independent of Workers. Every cross-shard interaction is either
// barrier-ordered (mail lanes, input buffers) or reads the previous cycle's
// snapshot (occSnap under RemoteLookahead), so node order within a phase
// cannot influence the outcome. The one exception is credited moves
// (shuffle-exchange bubble rings): their commit CAS reads live occupancy, so
// with Workers > 1 they remain correct and deadlock-free but may tie-break
// differently from the sequential run.
type Engine struct {
	cfg        Config
	algo       core.Algorithm
	topo       topology.Topology
	nodes      int
	ports      int
	classes    int
	bufClasses int
	queueCap   int

	// Central queues: fixed-capacity FIFO rings over one packet slab.
	// Queue qi = node*classes+class occupies qbuf[qi*queueCap:(qi+1)*queueCap].
	qbuf  []core.Packet
	qhead []int32
	qlen  []int32

	// Blocked-packet wait masks (waitFast engines only). qwait parallels
	// qbuf: a non-zero mask records the node-local output-buffer slots
	// (bit p*bufClasses+bc) a fully-blocked packet is waiting on, and
	// outMask[u] mirrors u's outFull flags as a bitset. While every masked
	// slot stays full, re-running the candidate scan provably fails the
	// same way, so phase (a) skips it — packets park without paying the
	// Candidates call every cycle.
	qwait   []uint64
	outMask []uint64

	occ     []int32 // atomic occupancy mirror of the queues
	inbound []int32 // committed-but-not-delivered packets per queue (credit accounting)
	occSnap []int32 // cycle-start copy of occ; only under RemoteLookahead

	injQ []injSlot // per-node injection queue (size 1)
	// injFull mirrors injQ[u].full as a bitmap (bit u of word u/64); the
	// batched injection path hands it to BatchSource.FillCycle so the
	// source can fail blocked attempts without a per-node engine call. It
	// is maintained unconditionally (set at injection commit, cleared when
	// phase (b) drains the slot) — one masked OR per event — so scalar and
	// batched runs on the same engine never see a stale word. Shards are
	// 64-aligned, so every word has exactly one writer between barriers.
	injFull []uint64

	// Output buffers, structure of arrays, indexed by sender:
	// [(node*ports+port)*bufClasses+bc].
	outPkt  []core.Packet
	outFull []uint8
	outLink []uint8 // per directed link: number of occupied output buffers
	nbr     []int32 // neighbor table [node*ports+port]; -1 for missing links

	// Input buffers, indexed by *receiver*: node v's buffers occupy
	// inPkt[inBase[v] : inBase[v]+inDeg[v]], ordered by (sending node,
	// port, buffer class) ascending, so the phase (b) drain scans a
	// contiguous flag range — and reads payloads from adjacent cache
	// lines — instead of chasing per-link indices.
	inPkt   []core.Packet
	inFull  []uint8
	inBase  []int32
	inDeg   []int32
	linkDst []int32  // per directed link: first input-buffer index at the far end
	linkRR  []uint32 // per directed link: next buffer class to favor (< bufClasses)
	rngs    []xrand.RNG
	nextID  []int64 // per-node packet id counters (determinism)

	// Active worklists. liveBits marks nodes holding any packet (central
	// queues, injection queue, input or output buffers); injBits marks nodes
	// whose traffic source is not yet exhausted. Shards are 64-aligned, so
	// every word has exactly one writer between barriers.
	liveBits []uint64
	injBits  []uint64
	qTotal   []int32 // per node: packets across its central queues
	inCount  []int32 // per node: occupied inbound input buffers
	outCount []int32 // per node: occupied output buffers

	// minimal caches Props().Minimal so the per-delivery hop assertion does
	// not pay an interface call.
	minimal bool
	// pmr is the algorithm's optional PortMaskRouter fast path (nil when not
	// implemented); used by the FirstFree phase (a) scan.
	pmr core.PortMaskRouter
	// atomicOcc selects atomic maintenance of occ/inbound; plain counters
	// suffice for credit-free algorithms, whose occupancy is only ever read
	// by the owning worker (see core.Props.Credits).
	atomicOcc bool
	// waitFast enables the blocked-packet wait-mask cache. It requires a
	// node's output buffers to fit one word, and failure causes beyond
	// "that buffer is full" (credit reservations, remote lookahead, link
	// liveness) to be absent, because those can clear without any local
	// buffer changing — which is why fault-enabled engines run without it.
	waitFast bool
	// flt is the fault-injection machinery; nil when Config.Faults is unset,
	// so the no-fault hot path pays one pointer test per guarded site.
	flt      *faultState
	slotPort [64]uint8 // waitFast: outMask bit -> port (avoids a division)
	owner    []int32   // node -> owning worker (avoids a division per transfer)

	obsState

	workers int
	// bounds holds the shard boundaries: worker w owns nodes
	// [bounds[w], bounds[w+1]). Always 64-aligned (except the final bound,
	// the node count) so every liveBits/injBits word has exactly one writer;
	// uniform at reset, re-cut by rebalance when Config.RebalanceEvery asks
	// for occupancy-weighted sharding.
	bounds   []int32
	rebW     []int64      // rebalance scratch: per-64-node-block occupancy weights
	statsBuf []cycleStats // one per worker
	scratch  []workerScratch
	// mail holds the workers*workers cross-shard arrival lanes, src-major:
	// lane srcWorker*workers+dstWorker. See mailLane.
	mail []mailLane
	pool *phasePool
	// fuseOK records that the inject/(a)/(b) phases touch only shard-owned
	// state (no occupancy snapshot, no credited occupancy probes), so one
	// worker may run them back-to-back and a cycle needs two barriers
	// instead of four; start() honors Config.DisableFusion/PhaseProf.
	fuseOK bool

	// Per-run state read by the pool workers; every write is sequenced
	// before the phase barrier that releases them.
	curSrc   TrafficSource
	curWin   runWindow
	curCycle int64
	// curBatch is non-nil while the current run uses the batched injection
	// path (see BatchSource); batchBuf holds one reusable PendingInject
	// buffer per worker, sized to the node count so any shard fits after a
	// rebalance. Allocated on the first batched run, then reused.
	curBatch BatchSource
	batchBuf [][]core.PendingInject

	// rs is the control state of the stepwise run driver (Start/Step).
	rs runState
}

// mailLane is one cross-shard arrival lane: the nodes of dstWorker's shard
// that received a packet from srcWorker's link phase this cycle, folded into
// dstWorker's worklist at the next cycle's injection phase. Lanes are stored
// src-major (lane srcWorker*workers+dstWorker), so all the lanes a worker
// appends to during its link phase are contiguous memory it owns; the pad
// keeps each slice header on its own cache line, so the appends of adjacent
// workers (and the fold's header reset in the injection phase) never share a
// line.
type mailLane struct {
	buf []int32
	_   [40]byte // slice header (24 bytes on 64-bit) padded to a cache line
}

// workerScratch holds per-worker reusable buffers so the hot loop does not
// allocate.
type workerScratch struct {
	cand []core.Move
	adm  []int
	lens []int32        // phase (a) queue-length snapshot, sized to NumClasses
	pm   core.PortMasks // PortMaskRouter scratch, overwritten per call

	// Phase (b) rotation cache: start = cycle mod (inDeg+1) computed once
	// per distinct degree per cycle, not once per node (regular topologies
	// pay a single division per worker per cycle).
	rotCycle int64
	rotTotal int
	rotStart int

	// Failure accumulator filled by admissibleA across one candidate scan:
	// the output-buffer slots that blocked remote moves, and whether every
	// failure was of that kind (the precondition for caching the mask).
	failMask uint64
	failOK   bool

	// Tail pad: scratches live one-per-worker in a contiguous slice, and a
	// trailing cache line guarantees no two workers' written fields ever
	// share a line regardless of the struct's total size.
	_ [64]byte
}

// cycleStats accumulates per-worker observations that are folded into
// Metrics once per cycle.
type cycleStats struct {
	moves        int64
	dynamicMoves int64
	injected     int64
	delivered    int64
	dropped      int64
	attempts     int64
	successes    int64
	latencySum   int64
	latencyMax   int64
	measured     int64
	maxQueue     int
	_            [40]byte // pad: keeps the counters and the shard on separate lines

	// obs is the worker's metric shard, folded into the engine's obs.Core
	// at the same barrier that merges the fields above. It stays zero (and
	// unread) unless the engine's metrics core is enabled.
	obs obs.Shard

	// Tail pad: stats live one-per-worker in a contiguous slice, and a
	// trailing cache line guarantees no two workers' per-cycle increments
	// ever share a line regardless of the struct's total size.
	_ [64]byte
}

// NewEngine builds a buffered engine for the given configuration. Engines
// with Workers > 1 own a persistent worker pool whose goroutines are
// created here, parked between runs, and reaped by a finalizer once the
// engine is unreachable.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	a := cfg.Algorithm
	if a.Props().AtomicOnly {
		return nil, fmt.Errorf("sim: algorithm %s requires the atomic engine", a.Name())
	}
	t := a.Topology()
	e := &Engine{
		cfg:        cfg,
		algo:       a,
		topo:       t,
		nodes:      t.Nodes(),
		ports:      t.Ports(),
		classes:    a.NumClasses(),
		bufClasses: a.NumClasses() + 1,
		queueCap:   cfg.QueueCap,
		workers:    cfg.Workers,
	}
	nQueues := e.nodes * e.classes
	e.qbuf = make([]core.Packet, nQueues*e.queueCap)
	e.qhead = make([]int32, nQueues)
	e.qlen = make([]int32, nQueues)
	e.occ = make([]int32, nQueues)
	e.inbound = make([]int32, nQueues)
	if cfg.RemoteLookahead {
		e.occSnap = make([]int32, nQueues)
	}
	e.injQ = make([]injSlot, e.nodes)
	nLinks := e.nodes * e.ports
	e.outPkt = make([]core.Packet, nLinks*e.bufClasses)
	e.outFull = make([]uint8, nLinks*e.bufClasses)
	e.outLink = make([]uint8, nLinks)
	e.nbr = make([]int32, nLinks)
	e.linkDst = make([]int32, nLinks)
	e.inBase = make([]int32, e.nodes)
	e.inDeg = make([]int32, e.nodes)
	// Two passes: size each receiver's contiguous input-buffer range, then
	// hand out slot indices in (sender, port, class) ascending order — the
	// same deterministic drain order as a per-link slot list would give.
	for u := 0; u < e.nodes; u++ {
		for p := 0; p < e.ports; p++ {
			v := t.Neighbor(u, p)
			e.nbr[u*e.ports+p] = int32(v)
			e.linkDst[u*e.ports+p] = -1
			if v == topology.None || v == u {
				e.nbr[u*e.ports+p] = -1
				continue
			}
			e.inDeg[v] += int32(e.bufClasses)
		}
	}
	nIn := int32(0)
	for v := 0; v < e.nodes; v++ {
		e.inBase[v] = nIn
		nIn += e.inDeg[v]
	}
	next := make([]int32, e.nodes)
	for u := 0; u < e.nodes; u++ {
		for p := 0; p < e.ports; p++ {
			v := e.nbr[u*e.ports+p]
			if v < 0 {
				continue
			}
			e.linkDst[u*e.ports+p] = e.inBase[v] + next[v]
			next[v] += int32(e.bufClasses)
		}
	}
	e.inPkt = make([]core.Packet, nIn)
	e.inFull = make([]uint8, nIn)
	e.linkRR = make([]uint32, nLinks)
	e.atomicOcc = a.Props().Credits
	e.minimal = a.Props().Minimal
	if !cfg.DisablePortMask {
		e.pmr, _ = a.(core.PortMaskRouter)
	}
	if !cfg.Faults.Empty() {
		if e.ports > 32 {
			return nil, fmt.Errorf("sim: fault injection supports at most 32 ports per node, %s has %d", t.Name(), e.ports)
		}
		sched, err := cfg.Faults.Compile(t)
		if err != nil {
			return nil, err
		}
		e.flt = newFaultState(t, sched, cfg.HopBudget)
	}
	e.waitFast = e.ports*e.bufClasses <= 64 && !e.atomicOcc && !cfg.RemoteLookahead && e.flt == nil
	if e.waitFast {
		e.qwait = make([]uint64, len(e.qbuf))
		e.outMask = make([]uint64, e.nodes)
		for b := 0; b < e.ports*e.bufClasses; b++ {
			e.slotPort[b] = uint8(b / e.bufClasses)
		}
	}
	e.rngs = make([]xrand.RNG, e.nodes)
	e.nextID = make([]int64, e.nodes)
	nWords := (e.nodes + 63) / 64
	e.liveBits = make([]uint64, nWords)
	e.injBits = make([]uint64, nWords)
	e.injFull = make([]uint64, nWords)
	e.qTotal = make([]int32, e.nodes)
	e.inCount = make([]int32, e.nodes)
	e.outCount = make([]int32, e.nodes)
	e.bounds = make([]int32, e.workers+1)
	e.owner = make([]int32, e.nodes)
	e.uniformBounds()
	e.fuseOK = !cfg.RemoteLookahead && !e.atomicOcc
	e.statsBuf = make([]cycleStats, e.workers)
	e.scratch = make([]workerScratch, e.workers)
	for i := range e.scratch {
		e.scratch[i].cand = make([]core.Move, 0, 64)
		e.scratch[i].adm = make([]int, 64)
		e.scratch[i].lens = make([]int32, e.classes)
	}
	e.mail = make([]mailLane, e.workers*e.workers)
	if e.workers > 1 && cfg.RebalanceEvery > 0 {
		e.rebW = make([]int64, (e.nodes+63)/64)
	}
	e.initObs(&cfg)
	if e.workers > 1 {
		e.pool = newPhasePool(e.workers)
		runtime.SetFinalizer(e, (*Engine).stopPool)
	}
	e.reset()
	return e, nil
}

// stopPool reaps the pooled goroutines; installed as the engine finalizer.
func (e *Engine) stopPool() {
	if e.pool != nil {
		e.pool.stop()
	}
}

func (e *Engine) reset() {
	for i := range e.qlen {
		e.qlen[i] = 0
		e.qhead[i] = 0
		e.occ[i] = 0
		e.inbound[i] = 0
	}
	if e.occSnap != nil {
		for i := range e.occSnap {
			e.occSnap[i] = 0
		}
	}
	if e.waitFast {
		for i := range e.qwait {
			e.qwait[i] = 0
		}
		for i := range e.outMask {
			e.outMask[i] = 0
		}
	}
	for i := range e.injQ {
		e.injQ[i] = injSlot{}
	}
	for i := range e.injFull {
		e.injFull[i] = 0
	}
	for i := range e.outFull {
		e.outFull[i] = 0
	}
	for i := range e.inFull {
		e.inFull[i] = 0
	}
	for i := range e.outLink {
		e.outLink[i] = 0
		e.linkRR[i] = 0
	}
	for u := range e.rngs {
		e.rngs[u] = xrand.New(e.cfg.Seed, int32(u))
		e.nextID[u] = int64(u) << 36
		e.qTotal[u] = 0
		e.inCount[u] = 0
		e.outCount[u] = 0
	}
	for i := range e.liveBits {
		e.liveBits[i] = 0
		e.injBits[i] = ^uint64(0)
	}
	if tail := uint(e.nodes % 64); tail != 0 {
		e.injBits[len(e.injBits)-1] = (uint64(1) << tail) - 1
	}
	for i := range e.mail {
		e.mail[i].buf = e.mail[i].buf[:0]
	}
	if e.cfg.RebalanceEvery > 0 {
		// A previous run may have left occupancy-weighted boundaries behind.
		e.uniformBounds()
	}
	if e.flt != nil {
		e.flt.reset()
	}
	if e.obsOn {
		e.obsCore.Reset()
	}
}

// shard returns worker w's node range.
func (e *Engine) shard(w int) (lo, hi int) {
	return int(e.bounds[w]), int(e.bounds[w+1])
}

// uniformBounds cuts the node range into equal 64-aligned shards (the reset
// layout) and refreshes the owner table.
func (e *Engine) uniformBounds() {
	chunk := (((e.nodes+e.workers-1)/e.workers + 63) / 64) * 64
	for w := 0; w <= e.workers; w++ {
		b := w * chunk
		if b > e.nodes {
			b = e.nodes
		}
		e.bounds[w] = int32(b)
	}
	e.setOwners()
}

// setOwners rebuilds the node -> worker table from the current bounds.
func (e *Engine) setOwners() {
	for w := 0; w < e.workers; w++ {
		lo, hi := e.bounds[w], e.bounds[w+1]
		for u := lo; u < hi; u++ {
			e.owner[u] = int32(w)
		}
	}
}

// rebalance re-cuts the shard boundaries so every worker owns roughly the
// same packet population, at 64-node block granularity (preserving the
// one-writer-per-bitmap-word invariant). It runs sequentially at the cycle
// boundary; because no phase ever lets the shard layout influence routing
// decisions, moving a boundary cannot change the simulation's results — only
// which worker performs which node's work.
func (e *Engine) rebalance() {
	// Pending mail lanes were addressed to the old owners; fold them here so
	// the coming injection phase finds them empty and no worker updates
	// counters outside its new shard.
	for i := range e.mail {
		for _, v := range e.mail[i].buf {
			e.inCount[v]++
			e.setLive(v)
		}
		e.mail[i].buf = e.mail[i].buf[:0]
	}
	// weight(u) = 1 + qTotal[u]: the constant term keeps empty regions from
	// collapsing into one shard (every node still costs a worklist probe),
	// while the queue population tracks where the phase (a)/(b) scans
	// concentrate.
	nb := len(e.rebW)
	total := int64(0)
	for b := 0; b < nb; b++ {
		lo := b * 64
		hi := lo + 64
		if hi > e.nodes {
			hi = e.nodes
		}
		wt := int64(hi - lo)
		for u := lo; u < hi; u++ {
			wt += int64(e.qTotal[u])
		}
		e.rebW[b] = wt
		total += wt
	}
	// Boundary w sits at the first block edge whose weight prefix reaches
	// total*w/workers; successive targets are nondecreasing, so the scan
	// resumes where the previous boundary left off.
	prefix := int64(0)
	b := 0
	for w := 1; w < e.workers; w++ {
		target := total * int64(w) / int64(e.workers)
		for b < nb && prefix < target {
			prefix += e.rebW[b]
			b++
		}
		bound := b * 64
		if bound > e.nodes {
			bound = e.nodes
		}
		e.bounds[w] = int32(bound)
	}
	e.bounds[0] = 0
	e.bounds[e.workers] = int32(e.nodes)
	e.setOwners()
	if e.obsOn {
		e.statsBuf[0].obs.Inc(obs.CShardRebalances)
	}
}

func (e *Engine) setLive(u int32) {
	e.liveBits[u>>6] |= 1 << (uint(u) & 63)
}

func (e *Engine) queueIndex(node int32, class core.QueueClass) int {
	return int(node)*e.classes + int(class)
}

// qAt returns the i-th packet (FIFO order) of queue qi, in place.
func (e *Engine) qAt(qi int, i int32) *core.Packet {
	pos := e.qhead[qi] + i
	if pos >= int32(e.queueCap) {
		pos -= int32(e.queueCap)
	}
	return &e.qbuf[qi*e.queueCap+int(pos)]
}

// qPush and qDrop route every central-queue mutation through the atomic
// occupancy mirror (read by credited claims from other nodes) and the
// per-node worklist total. qPush takes the packet by pointer so the hot
// paths copy it from its previous resting place straight into the slab.
func (e *Engine) qPush(u int32, qi int, pkt *core.Packet) int {
	n := e.qlen[qi]
	if int(n) == e.queueCap {
		panic("sim: push into a full queue (admissibility bug)")
	}
	pos := e.qhead[qi] + n
	if pos >= int32(e.queueCap) {
		pos -= int32(e.queueCap)
	}
	e.qbuf[qi*e.queueCap+int(pos)] = *pkt
	if e.waitFast {
		e.qwait[qi*e.queueCap+int(pos)] = 0
	}
	e.qlen[qi] = n + 1
	e.qTotal[u]++
	if e.atomicOcc {
		atomic.AddInt32(&e.occ[qi], 1)
	} else {
		e.occ[qi]++
	}
	if e.obsOn {
		sh := &e.statsBuf[e.owner[u]].obs
		sh.GaugeAdd(obs.GQueueOccupancy, 1)
		sh.Observe(obs.HQueueLen, int64(n+1))
	}
	return int(n + 1)
}

// qDrop removes the idx-th packet (FIFO order) of queue qi without
// materializing a copy: the phase (a) commit paths read the packet in place
// (qAt) and write its successor buffer directly, so the removal itself only
// has to shift and account.
func (e *Engine) qDrop(u int32, qi int, idx int32) {
	cap32 := int32(e.queueCap)
	base := qi * e.queueCap
	head := e.qhead[qi]
	// Shift the elements before idx up by one slot, preserving FIFO order
	// of the remainder, then advance the head past the vacated slot.
	for j := idx; j > 0; j-- {
		dst := head + j
		if dst >= cap32 {
			dst -= cap32
		}
		src := head + j - 1
		if src >= cap32 {
			src -= cap32
		}
		e.qbuf[base+int(dst)] = e.qbuf[base+int(src)]
		if e.waitFast {
			e.qwait[base+int(dst)] = e.qwait[base+int(src)]
		}
	}
	head++
	if head >= cap32 {
		head -= cap32
	}
	e.qhead[qi] = head
	e.qlen[qi]--
	e.qTotal[u]--
	if e.atomicOcc {
		atomic.AddInt32(&e.occ[qi], -1)
	} else {
		e.occ[qi]--
	}
	if e.obsOn {
		e.statsBuf[e.owner[u]].obs.GaugeAdd(obs.GQueueOccupancy, -1)
	}
}

// effectiveFree returns the target queue's capacity minus occupancy minus
// committed inbound packets. With credits the reads are atomic (remote
// claimers race with the owner); during node phase (a) the target's
// occupancy can only shrink, so a stale read is conservative. Without
// credits only the owning worker ever reads a queue's occupancy, and plain
// loads suffice.
func (e *Engine) effectiveFree(qi int) int32 {
	if e.atomicOcc {
		return int32(e.queueCap) - atomic.LoadInt32(&e.occ[qi]) - atomic.LoadInt32(&e.inbound[qi])
	}
	return int32(e.queueCap) - e.occ[qi] - e.inbound[qi]
}

// tryReserve atomically reserves one inbound slot at queue qi, succeeding
// only while effectiveFree >= need. Several nodes may race for the same
// queue under RemoteLookahead; the CAS keeps occupancy+inbound <= capacity,
// so a reserved packet's eventual push can never find the queue full.
func (e *Engine) tryReserve(qi int, need int32) bool {
	for {
		in := atomic.LoadInt32(&e.inbound[qi])
		free := int32(e.queueCap) - atomic.LoadInt32(&e.occ[qi]) - in
		if free < need {
			return false
		}
		if atomic.CompareAndSwapInt32(&e.inbound[qi], in, in+1) {
			return true
		}
	}
}

// runWindow holds the measurement bounds of a run.
type runWindow struct {
	start int64 // first cycle whose deliveries/attempts are measured
	end   int64 // exclusive; <0 means measure to the end of the run
}

func (w runWindow) contains(cycle int64) bool {
	return cycle >= w.start && (w.end < 0 || cycle < w.end)
}

// RunStatic injects the (finite) traffic of src and simulates until every
// packet has been delivered, returning the full-run metrics. It returns
// *ErrDeadlock if the watchdog fires and an error if maxCycles (0 = none) is
// exceeded. It is equivalent to Run with a background context and
// StaticPlan; use Run for cancellation and the full RunResult.
func (e *Engine) RunStatic(src TrafficSource, maxCycles int64) (Metrics, error) {
	res, err := e.run(context.Background(), src, runWindow{0, -1}, 0, maxCycles, true)
	return res.Metrics, err
}

// RunDynamic simulates warmup+measure cycles of dynamic injection,
// measuring latency and the effective injection rate over deliveries and
// attempts that fall in the measurement window. It is equivalent to Run
// with a background context and DynamicPlan.
func (e *Engine) RunDynamic(src TrafficSource, warmup, measure int64) (Metrics, error) {
	res, err := e.run(context.Background(), src, runWindow{warmup, warmup + measure}, warmup+measure, warmup+measure, false)
	return res.Metrics, err
}

// runState is the control state of a stepwise run: everything the old
// monolithic run loop kept on its stack, so that Step can execute exactly
// one cycle per call. The four phase closures are built once per run; the
// pool releases them clear at the end so parked workers never retain the
// engine.
type runState struct {
	src       TrafficSource
	win       runWindow
	stopAt    int64
	maxCycles int64
	drain     bool
	idle      int
	m         Metrics

	inject, phaseA, phaseB, link func(int)
	// fused runs inject+(a)+(b) back-to-back per worker (one barrier instead
	// of three); non-nil only when the engine's fuseOK holds and neither
	// DisableFusion nor PhaseProf forces the split pipeline.
	fused func(int)
	// pt accumulates the per-phase wall-clock breakdown under PhaseProf;
	// lastCycleEnd anchors OtherNs (the inter-phase remainder of each cycle).
	pt           PhaseTimes
	lastCycleEnd time.Time

	active bool // Start was called
	done   bool // the run finished; res/err hold the outcome
	res    RunResult
	err    error
}

// Start begins a stepwise run: the engine is reset and each subsequent Step
// call simulates exactly one cycle. Run is Start plus a Step loop; use
// Start/Step directly to interleave simulation with other work or inspect
// engine state between cycles (Snapshot, Metrics).
func (e *Engine) Start(src TrafficSource, plan Plan) {
	win, stopAt, maxCycles, drain := plan.params()
	e.start(src, win, stopAt, maxCycles, drain)
}

func (e *Engine) start(src TrafficSource, win runWindow, stopAt, maxCycles int64, drain bool) {
	e.reset()
	e.curSrc, e.curWin = src, win
	e.curBatch = batchFor(src, &e.cfg, e.flt != nil)
	if e.curBatch != nil && e.batchBuf == nil {
		e.batchBuf = make([][]core.PendingInject, e.workers)
		for i := range e.batchBuf {
			e.batchBuf[i] = make([]core.PendingInject, e.nodes)
		}
	}
	e.rs = runState{
		src: src, win: win, stopAt: stopAt, maxCycles: maxCycles, drain: drain,
		active: true,
		inject: func(w int) { e.workerInject(w) },
		phaseA: func(w int) { e.workerPhaseA(w) },
		phaseB: func(w int) { e.workerPhaseB(w) },
		link:   func(w int) { e.workerLink(w) },
	}
	if e.fuseOK && !e.cfg.DisableFusion && !e.cfg.PhaseProf {
		// Inject/(a)/(b) touch only shard-owned state here (no occupancy
		// snapshot, no credited probes), so one worker can run them
		// back-to-back: the cycle pays two barriers instead of four. The
		// link phase still needs its own barrier — it writes remote input
		// buffers and reads remote inFull flags.
		e.rs.fused = func(w int) {
			e.workerInject(w)
			e.workerPhaseA(w)
			e.workerPhaseB(w)
		}
	}
}

// end records the run's outcome (firing OnDone exactly once) and releases
// the per-run state so parked pool workers never retain the engine.
func (e *Engine) end(wasCanceled bool, err error) {
	rs := &e.rs
	rs.res = e.finish(rs.m, wasCanceled)
	rs.err = err
	rs.done = true
	rs.inject, rs.phaseA, rs.phaseB, rs.link, rs.fused = nil, nil, nil, nil, nil
	rs.src = nil
	e.curSrc = nil
	e.curBatch = nil
	if e.pool != nil {
		e.pool.clear()
	}
}

// Step simulates one cycle of the started plan and reports whether the run
// finished (normally or with an error); Result then returns the outcome.
// Calling Step again after done is a no-op returning the same outcome.
func (e *Engine) Step() (done bool, err error) {
	rs := &e.rs
	if !rs.active {
		panic("sim: Step called before Start")
	}
	if rs.done {
		return true, rs.err
	}
	m := &rs.m
	cycle := m.Cycles
	if rs.stopAt > 0 && cycle >= rs.stopAt {
		e.end(false, nil)
		return true, rs.err
	}
	if rs.maxCycles > 0 && cycle > rs.maxCycles {
		e.end(false, fmt.Errorf("sim: %s exceeded %d cycles with %d packets in flight",
			e.algo.Name(), rs.maxCycles, m.InFlight))
		return true, rs.err
	}

	prevMoves := m.Moves
	e.curCycle = cycle
	if e.flt != nil {
		// Fault events apply sequentially at the cycle boundary, before the
		// parallel phases observe the liveness masks.
		e.applyFaults(cycle, &e.statsBuf[0])
	}
	if e.workers > 1 && e.cfg.RebalanceEvery > 0 && cycle > 0 &&
		cycle%int64(e.cfg.RebalanceEvery) == 0 {
		e.rebalance()
	}
	switch {
	case e.cfg.PhaseProf:
		// Timed split pipeline: each phase's figure includes its barrier, so
		// synchronization cost is charged to the phase that paid it. OtherNs
		// is everything between the previous cycle's merge and this cycle's
		// injection (watchdog, faults, observer probes, plan bookkeeping).
		t0 := time.Now()
		other := int64(0)
		if !rs.lastCycleEnd.IsZero() {
			other = t0.Sub(rs.lastCycleEnd).Nanoseconds()
		}
		e.exec(rs.inject)
		t1 := time.Now()
		e.exec(rs.phaseA)
		t2 := time.Now()
		e.exec(rs.phaseB)
		t3 := time.Now()
		e.exec(rs.link)
		t4 := time.Now()
		e.mergeCycle(m)
		t5 := time.Now()
		rs.pt.add(t1.Sub(t0).Nanoseconds(), t2.Sub(t1).Nanoseconds(),
			t3.Sub(t2).Nanoseconds(), t4.Sub(t3).Nanoseconds(),
			t5.Sub(t4).Nanoseconds(), other)
		rs.lastCycleEnd = t5
		if e.obsOn {
			c := e.obsCore
			c.AddCounter(obs.CPhaseInjectNs, t1.Sub(t0).Nanoseconds())
			c.AddCounter(obs.CPhaseANs, t2.Sub(t1).Nanoseconds())
			c.AddCounter(obs.CPhaseBNs, t3.Sub(t2).Nanoseconds())
			c.AddCounter(obs.CPhaseLinkNs, t4.Sub(t3).Nanoseconds())
			c.AddCounter(obs.CPhaseMergeNs, t5.Sub(t4).Nanoseconds())
			c.AddCounter(obs.CPhaseOtherNs, other)
		}
	case rs.fused != nil:
		e.exec(rs.fused)
		e.exec(rs.link)
		e.mergeCycle(m)
	default:
		e.exec(rs.inject)
		e.exec(rs.phaseA)
		e.exec(rs.phaseB)
		e.exec(rs.link)
		e.mergeCycle(m)
	}
	m.Cycles = cycle + 1
	m.InFlight = m.Injected - m.Delivered - m.Dropped
	if e.obsOn {
		c := e.obsCore
		c.SetGauge(obs.GInFlight, m.InFlight)
		c.SetGauge(obs.GMaxQueue, int64(m.MaxQueue))
		c.SetGauge(obs.GLiveNodes, e.liveCount())
		if e.flt != nil {
			c.SetGauge(obs.GDeadLinks, int64(e.flt.live.DeadLinks()))
			c.SetGauge(obs.GDeadNodes, int64(e.flt.live.DeadNodes()))
		}
		snap := c.EndCycle(m.Cycles)
		if e.observer != nil {
			e.observer.OnCycle(cycle, snap)
		}
	}
	if e.cfg.OnCycle != nil {
		e.cfg.OnCycle(cycle)
	}

	if rs.drain && m.InFlight == 0 && e.allExhausted(rs.src) {
		e.end(false, nil)
		return true, nil
	}
	if m.Moves == prevMoves && m.InFlight > 0 {
		rs.idle++
		if rs.idle >= e.cfg.DeadlockWindow {
			derr := &ErrDeadlock{Cycle: cycle, InFlight: int(m.InFlight), Algorithm: e.algo.Name()}
			derr.Dump = buildDeadlockDump(e.algo, e.flt, int64(e.cfg.DeadlockWindow), cycle, m.InFlight, e.headAt)
			if d, ok := e.observer.(obs.DeadlockObserver); ok {
				d.OnDeadlock(derr.Dump)
			}
			e.end(false, derr)
			return true, rs.err
		}
	} else {
		rs.idle = 0
	}
	return false, nil
}

// Result returns the outcome of the run once Step reported done (or Run
// returned); before that it returns the zero RunResult and a nil error.
func (e *Engine) Result() (RunResult, error) { return e.rs.res, e.rs.err }

// Metrics returns the aggregate metrics of the current (possibly still
// running) stepwise run.
func (e *Engine) Metrics() Metrics { return e.rs.m }

// headAt exposes queue heads to the deadlock-dump builder.
func (e *Engine) headAt(u, c int) (*core.Packet, int) {
	qi := u*e.classes + c
	if e.qlen[qi] == 0 {
		return nil, 0
	}
	return e.qAt(qi, 0), int(e.qlen[qi])
}

func (e *Engine) run(ctx context.Context, src TrafficSource, win runWindow, stopAt, maxCycles int64, drain bool) (RunResult, error) {
	e.start(src, win, stopAt, maxCycles, drain)
	defer func() {
		// Guard against panics mid-cycle: the pool must not retain the
		// engine's closures, and curSrc must not leak across runs.
		if !e.rs.done {
			e.curSrc = nil
			e.curBatch = nil
			e.rs.src, e.rs.inject, e.rs.phaseA, e.rs.phaseB, e.rs.link, e.rs.fused = nil, nil, nil, nil, nil, nil
			if e.pool != nil {
				e.pool.clear()
			}
		}
	}()
	for {
		if canceled(ctx) {
			e.end(true, ctx.Err())
			return e.rs.res, e.rs.err
		}
		if done, _ := e.Step(); done {
			return e.rs.res, e.rs.err
		}
	}
}

// liveCount returns the number of nodes on the active worklist.
func (e *Engine) liveCount() int64 {
	n := 0
	for _, w := range e.liveBits {
		n += bits.OnesCount64(w)
	}
	return int64(n)
}

// exec runs one phase across the worker shards: inline with one worker, on
// the persistent pool otherwise.
func (e *Engine) exec(fn func(int)) {
	if e.pool == nil {
		fn(0)
		return
	}
	e.pool.run(fn)
}

// allExhausted probes the still-active traffic sources in ascending node
// order, retiring nodes whose source has drained; it iterates only the
// worklist of active sources, not all N nodes.
func (e *Engine) allExhausted(src TrafficSource) bool {
	for wi := range e.injBits {
		for word := e.injBits[wi]; word != 0; word &= word - 1 {
			b := bits.TrailingZeros64(word)
			if !src.Exhausted(int32(wi*64 + b)) {
				return false
			}
			e.injBits[wi] &^= 1 << uint(b)
		}
	}
	return true
}

// mergeCycle folds the per-worker cycle stats into the run metrics, once
// per cycle. With the metrics core enabled it also mirrors the fields the
// metrics share with Metrics into each worker's obs shard (so the hot loop
// never double-counts them) and folds the shards — in worker order, so the
// merged snapshot is bit-deterministic.
func (e *Engine) mergeCycle(m *Metrics) {
	for i := range e.statsBuf {
		st := &e.statsBuf[i]
		m.Moves += st.moves
		m.DynamicMoves += st.dynamicMoves
		m.Injected += st.injected
		m.Delivered += st.delivered
		m.Dropped += st.dropped
		m.Attempts += st.attempts
		m.Successes += st.successes
		m.LatencySum += st.latencySum
		m.Measured += st.measured
		if st.latencyMax > m.LatencyMax {
			m.LatencyMax = st.latencyMax
		}
		if st.maxQueue > m.MaxQueue {
			m.MaxQueue = st.maxQueue
		}
		if e.obsOn {
			sh := &st.obs
			sh.Add(obs.CInjected, st.injected)
			sh.Add(obs.CDelivered, st.delivered)
			sh.Add(obs.CMoves, st.moves)
			sh.Add(obs.CDynamicMoves, st.dynamicMoves)
			e.obsCore.Fold(sh)
		}
		*st = cycleStats{}
	}
}

// workerInject is the injection phase over one shard. It first folds in the
// arrival mail posted by the previous cycle's link phase (worklist and
// inbound-counter maintenance for packets that crossed a shard boundary),
// then snapshots the shard's queue occupancy when RemoteLookahead needs it,
// then lets every source-active node attempt one injection.
func (e *Engine) workerInject(w int) {
	nw := e.workers
	for src := 0; src < nw; src++ {
		lane := &e.mail[src*nw+w]
		if len(lane.buf) == 0 {
			continue
		}
		for _, v := range lane.buf {
			e.inCount[v]++
			e.setLive(v)
		}
		lane.buf = lane.buf[:0]
	}
	lo, hi := e.shard(w)
	if lo >= hi {
		return
	}
	if e.occSnap != nil {
		copy(e.occSnap[lo*e.classes:hi*e.classes], e.occ[lo*e.classes:hi*e.classes])
	}
	st := &e.statsBuf[w]
	cycle, src, win := e.curCycle, e.curSrc, e.curWin
	if bs := e.curBatch; bs != nil {
		e.injectBatch(w, int32(lo), int32(hi), bs, cycle, win, st)
		return
	}
	base := lo >> 6
	for wi, word := range e.injBits[base : (hi+63)>>6] {
		for ; word != 0; word &= word - 1 {
			u := int32((base+wi)*64 + bits.TrailingZeros64(word))
			e.injectNode(u, cycle, src, win, st)
		}
	}
}

// injectNode lets node u attempt one injection into its injection queue.
func (e *Engine) injectNode(u int32, cycle int64, src TrafficSource, win runWindow, st *cycleStats) {
	if src.Exhausted(u) {
		e.injBits[u>>6] &^= 1 << (uint(u) & 63)
		return
	}
	f := e.flt
	if f != nil {
		if !f.live.NodeAlive(int(u)) {
			return // a dead node does not consult its source
		}
		if cycle < f.injNext[u] {
			// Retry-with-backoff: the node's last attempts hit a saturated
			// queue pool; it sits out the backoff window.
			if e.obsOn {
				st.obs.Inc(obs.CInjRetries)
			}
			return
		}
	}
	if !src.Wants(u, cycle) {
		return
	}
	if win.contains(cycle) {
		st.attempts++
	}
	if e.obsOn {
		st.obs.Inc(obs.CInjAttempts)
		if e.injQ[u].full {
			st.obs.Inc(obs.CInjBackpressure)
		}
	}
	if e.injQ[u].full {
		if f != nil {
			f.backoff(u, cycle)
		}
		return // injection queue occupied: the attempt fails
	}
	dst := src.Take(u, cycle)
	if f != nil {
		f.injFail[u] = 0
		if !f.live.NodeAlive(int(dst)) || (f.livePorts[u] == 0 && dst != u) {
			// Unroutable at injection: the destination is dead, or the
			// source is isolated. The packet counts as injected and then
			// immediately dropped, keeping Injected-Delivered-Dropped exact.
			e.nextID[u]++
			st.injected++
			if win.contains(cycle) {
				st.successes++
			}
			pkt := core.Packet{ID: e.nextID[u], Src: u, Dst: dst, InjectedAt: cycle}
			e.faultDropPacket(&pkt, cycle, st)
			return
		}
	}
	class, work := e.algo.Inject(u, dst)
	e.nextID[u]++
	e.injQ[u] = injSlot{
		pkt: core.Packet{
			ID: e.nextID[u], Src: u, Dst: dst, InjectedAt: cycle,
			Class: class, MinFree: 1, Work: work,
		},
		full: true,
	}
	e.injFull[u>>6] |= 1 << (uint(u) & 63)
	e.setLive(u)
	st.injected++
	if win.contains(cycle) {
		st.successes++
	}
}

// workerPhaseA runs node phase (a) over the live nodes of one shard.
func (e *Engine) workerPhaseA(w int) {
	lo, hi := e.shard(w)
	if lo >= hi {
		return
	}
	st := &e.statsBuf[w]
	sc := &e.scratch[w]
	cycle, win := e.curCycle, e.curWin
	base := lo >> 6
	for wi, word := range e.liveBits[base : (hi+63)>>6] {
		for ; word != 0; word &= word - 1 {
			u := int32((base+wi)*64 + bits.TrailingZeros64(word))
			if e.qTotal[u] != 0 {
				e.nodePhaseA(u, cycle, win, st, sc)
			}
		}
	}
}

// nodePhaseA moves packets from u's central queues into output buffers and
// internal targets. Packets are scanned in FIFO order per queue (classes in
// ascending order), so the first packet in FIFO order wins any contended
// buffer, as Section 7.1 prescribes.
func (e *Engine) nodePhaseA(u int32, cycle int64, win runWindow, st *cycleStats, sc *workerScratch) {
	r := &e.rngs[u]
	wf := e.waitFast
	on := e.obsOn
	pol := e.cfg.Policy
	headOnly := e.cfg.HeadOnly
	// fastAdm marks configurations whose remote uncredited moves are decided
	// by the output-buffer flag alone (no lookahead), letting the FirstFree
	// scan below probe the flag inline instead of calling admissibleA.
	fastAdm := e.occSnap == nil
	// fastFF additionally requires the FirstFree policy and a PortMaskRouter
	// algorithm (unless Config.DisablePortMask cleared e.pmr): eligible
	// packets then route without materializing Moves. These are the only
	// per-run conditions; per-state eligibility is PortMask's ok result
	// below, so a partial implementor that declines some (or even most)
	// states simply routes those packets through the Candidates scan within
	// the same cycle — the fallback is per packet, not per run.
	fastFF := fastAdm && e.pmr != nil && pol == PolicyFirstFree
	lbase := int(u) * e.ports
	obase := lbase * e.bufClasses
	qi0 := int(u) * e.classes
	// Snapshot the queue lengths so packets moved internally this cycle
	// (e.g. a phase change into q_B) are not scanned again.
	lens := sc.lens
	for c := 0; c < e.classes; c++ {
		l := e.qlen[qi0+c]
		if headOnly && l > 1 {
			l = 1
		}
		lens[c] = l
	}
	// Rotate the class scan order each cycle: several queues can feed the
	// same output buffer (e.g. a phase-A packet performing its last 0->1
	// correction and a phase-B packet share the B buffer of a link), and a
	// fixed scan order would let one class starve the other indefinitely.
	for off := 0; off < e.classes; off++ {
		c := off + int(cycle)%e.classes
		if c >= e.classes {
			c -= e.classes
		}
		if lens[c] == 0 {
			continue
		}
		qi := qi0 + c
		idx := int32(0)
		for scanned := int32(0); scanned < lens[c]; scanned++ {
			pos := e.qhead[qi] + idx
			if pos >= int32(e.queueCap) {
				pos -= int32(e.queueCap)
			}
			pi := qi*e.queueCap + int(pos)
			pkt := &e.qbuf[pi]
			if wf {
				// Blocked-packet fast path: if every buffer the packet was
				// waiting on is still full, the candidate scan is known to
				// fail and is skipped outright.
				if wmask := e.qwait[pi]; wmask != 0 && e.outMask[u]&wmask == wmask {
					if on {
						st.obs.Inc(obs.CWaitParked)
					}
					idx++
					continue
				}
			}
			if fastFF && pkt.Dst != u {
				// Port-mask fast path: identical move-by-move to running the
				// FirstFree scan over Candidates, but the moves are implied
				// by the mask bits (ascending ports) and never built.
				if pm := &sc.pm; e.pmr.PortMask(u, core.QueueClass(c), pkt.Work, pkt.Dst, pm) {
					fail := uint64(0)
					port, found, tgt := 0, -1, 0
					dyn := false
					if e.flt == nil {
						// Fault-free scan: kept branch-for-branch identical to
						// the pre-fault engine so an unused fault subsystem
						// costs the hot path nothing.
						for mk := pm.StaticUnion() | pm.Dyn; mk != 0; mk &= mk - 1 {
							t := bits.TrailingZeros32(mk)
							bit := uint32(1) << uint(t)
							tc, bc := 0, 0
							d := pm.Dyn&bit != 0
							switch {
							case d:
								tc, bc = int(pm.DynClass), e.classes
							case pm.PerPort:
								tc = int(pm.PortClass[t])
								bc = tc
							default:
								for pm.Static[tc]&bit == 0 {
									tc++
								}
								bc = tc
							}
							b := t*e.bufClasses + bc
							if e.outFull[obase+b] != 0 {
								fail |= 1 << uint(b&63)
								continue
							}
							port, found, tgt, dyn = t, b, tc, d
							break
						}
					} else {
						// Mask out dead links; if that empties the candidate
						// set, fall back to misrouting over survivors.
						lp := e.flt.livePorts[u]
						pm.Static[0] &= lp
						pm.Static[1] &= lp
						pm.Static[2] &= lp
						pm.Static[3] &= lp
						pm.StaticMask &= lp
						pm.Dyn &= lp
						union := pm.StaticUnion() | pm.Dyn
						if union == 0 {
							if !e.misroute(u, qi, idx, pkt, cycle, st) {
								idx++
							}
							continue
						}
						lower := uint32(0)
						if union&(union-1) != 0 && pkt.Misrouted() {
							// A fault-displaced packet must not scan low-to-high:
							// first-free would deterministically re-take the
							// dimension its last misroute came over, orbiting it
							// back into the dead minimal cut forever. Hash the
							// scan start instead (node-local, worker-safe) by
							// splitting the mask at the k-th set bit.
							k := int(misrouteHash(cycle, pkt.ID, pkt.HopCount()) % uint32(bits.OnesCount32(union)))
							up := union
							for i := 0; i < k; i++ {
								up &= up - 1
							}
							lower = union ^ up
							union = up
						}
						for mk := union; ; mk &= mk - 1 {
							if mk == 0 {
								if lower == 0 {
									break
								}
								mk, lower = lower, 0 // wrap to the skipped low bits
							}
							t := bits.TrailingZeros32(mk)
							bit := uint32(1) << uint(t)
							tc, bc := 0, 0
							d := pm.Dyn&bit != 0
							switch {
							case d:
								tc, bc = int(pm.DynClass), e.classes
							case pm.PerPort:
								tc = int(pm.PortClass[t])
								bc = tc
							default:
								for pm.Static[tc]&bit == 0 {
									tc++
								}
								bc = tc
							}
							b := t*e.bufClasses + bc
							if e.outFull[obase+b] != 0 {
								fail |= 1 << uint(b&63)
								continue
							}
							port, found, tgt, dyn = t, b, tc, d
							break
						}
					}
					if found < 0 {
						if wf {
							e.qwait[pi] = fail // every failure was a full buffer
						}
						if on {
							st.obs.Inc(obs.COutputStalls)
						}
						idx++
						continue
					}
					si := obase + found
					out := &e.outPkt[si]
					*out = *pkt
					out.Class = core.QueueClass(tgt)
					if dyn {
						out.Work = pm.DynWork
					} else {
						out.Work = pm.Work
					}
					out.MinFree = 1
					out.Hops++
					e.qDrop(u, qi, idx)
					e.outFull[si] = 1
					if wf {
						e.outMask[u] |= 1 << uint(found&63)
					}
					e.outLink[lbase+port]++
					e.outCount[u]++
					st.moves++
					if dyn {
						st.dynamicMoves++
					}
					continue
				}
			}
			sc.cand = e.algo.Candidates(u, core.QueueClass(c), pkt.Work, pkt.Dst, sc.cand[:0])
			moves := sc.cand
			if e.flt != nil {
				moves = e.flt.filterLiveMoves(u, moves)
				if len(moves) == 0 {
					// Faults removed every candidate (deliveries and internal
					// moves always survive the filter): misroute or drop.
					if !e.misroute(u, qi, idx, pkt, cycle, st) {
						idx++
					}
					continue
				}
			}
			sc.failMask, sc.failOK = 0, true
			// Select among the admissible candidates. The positional
			// policies short-circuit the admissibility scan; the random
			// policies need the full admissible set (and its count) to keep
			// the per-node RNG stream aligned.
			mvi := -1
			switch pol {
			case PolicyFirstFree:
				if e.flt != nil && len(moves) > 1 && pkt.Misrouted() {
					// Hashed scan start for fault-displaced packets: see the
					// port-mask path above for why first-free would orbit
					// them back into the dead minimal cut.
					start := int(misrouteHash(cycle, pkt.ID, pkt.HopCount()) % uint32(len(moves)))
					for ii := range moves {
						i := ii + start
						if i >= len(moves) {
							i -= len(moves)
						}
						m := &moves[i]
						if fastAdm && m.Port >= 0 && m.Credit == 0 {
							bc := int(m.Class)
							if m.Kind == core.Dynamic {
								bc = e.classes
							}
							bc += int(m.Port) * e.bufClasses
							if e.outFull[obase+bc] != 0 {
								sc.failMask |= 1 << uint(bc&63)
								continue
							}
							mvi = i
							break
						}
						if e.admissibleA(u, core.QueueClass(c), m, sc) {
							mvi = i
							break
						}
					}
					break
				}
				for i := range moves {
					m := &moves[i]
					if fastAdm && m.Port >= 0 && m.Credit == 0 {
						bc := int(m.Class)
						if m.Kind == core.Dynamic {
							bc = e.classes
						}
						bc += int(m.Port) * e.bufClasses
						if e.outFull[obase+bc] != 0 {
							sc.failMask |= 1 << uint(bc&63)
							continue
						}
						mvi = i
						break
					}
					if e.admissibleA(u, core.QueueClass(c), m, sc) {
						mvi = i
						break
					}
				}
			case PolicyLastFree:
				for i := len(moves) - 1; i >= 0; i-- {
					if e.admissibleA(u, core.QueueClass(c), &moves[i], sc) {
						mvi = i
						break
					}
				}
			default:
				if len(moves) > len(sc.adm) {
					sc.adm = make([]int, len(moves)+16)
				}
				nAdm := 0
				for i := range moves {
					if e.admissibleA(u, core.QueueClass(c), &moves[i], sc) {
						sc.adm[nAdm] = i
						nAdm++
					}
				}
				if nAdm > 0 {
					mvi = e.choose(r, moves, sc.adm[:nAdm])
				}
			}
			if mvi < 0 {
				if wf {
					m := sc.failMask
					if !sc.failOK {
						m = 0 // uncacheable failure mode; rescan next cycle
					}
					e.qwait[pi] = m
				}
				if on {
					st.obs.Inc(obs.COutputStalls)
				}
				idx++
				continue
			}
			mv := &moves[mvi]
			switch {
			case mv.Deliver:
				e.deliver(*pkt, cycle, win, st)
				e.qDrop(u, qi, idx)
			case mv.Port == core.PortInternal && mv.Node == u && mv.Class == core.QueueClass(c):
				// Self-spin: advance bookkeeping in place.
				pkt.Work = mv.Work
				idx++
				st.moves++
			case mv.Port == core.PortInternal:
				// The slot is edited in place, pushed slab-to-slab, then
				// dropped; the target queue is a different region of the
				// slab (the in-place case above caught class == c).
				pkt.Class = mv.Class
				pkt.Work = mv.Work
				pkt.MinFree = 1
				if l := e.qPush(u, qi0+int(mv.Class), pkt); l > st.maxQueue {
					st.maxQueue = l
				}
				e.qDrop(u, qi, idx)
				st.moves++
			default:
				if mv.Credit > 0 {
					// Credited move: reserve the slot before committing.
					// The unique upstream claimer makes the CAS a formality,
					// but it keeps the invariant machine-checked.
					if !e.tryReserve(e.queueIndex(mv.Node, mv.Class), int32(mv.Credit)) {
						idx++
						continue
					}
				}
				bc := int(mv.Class)
				if mv.Kind == core.Dynamic {
					bc = e.classes
				}
				link := int(u)*e.ports + int(mv.Port)
				si := link*e.bufClasses + bc
				out := &e.outPkt[si]
				*out = *pkt
				out.Class = mv.Class
				out.Work = mv.Work
				if mv.Credit > 0 {
					out.MinFree = 0 // marks the reservation for the drain
				} else {
					out.MinFree = mv.MinFree
				}
				// The hop is counted at commit time rather than at transfer:
				// a packet is never observed while it waits in the link
				// buffers, so charging the traversal early is equivalent and
				// keeps the link phase free of read-modify-write traffic on
				// the payload.
				out.Hops++
				e.qDrop(u, qi, idx)
				e.outFull[si] = 1
				if wf {
					e.outMask[u] |= 1 << uint((int(mv.Port)*e.bufClasses+bc)&63)
				}
				e.outLink[link]++
				e.outCount[u]++
				st.moves++
				if mv.Kind == core.Dynamic {
					st.dynamicMoves++
				}
			}
		}
	}
}

// admissibleA reports whether a move can be taken during node phase (a):
// output buffer free for remote moves (plus the credit reservation for
// credited moves), capacity available for internal ones. Failures feed the
// scratch accumulator behind the wait-mask cache: a remote move blocked by
// a full buffer records the buffer's node-local slot bit; any other failure
// mode poisons the mask (those can clear without a local buffer event).
func (e *Engine) admissibleA(u int32, class core.QueueClass, mv *core.Move, sc *workerScratch) bool {
	switch {
	case mv.Deliver:
		return true
	case mv.Port == core.PortInternal && mv.Node == u && mv.Class == class:
		return true // in-place
	case mv.Port == core.PortInternal:
		// Internal moves must not consume slots reserved by inbound
		// credited packets.
		if e.effectiveFree(e.queueIndex(u, mv.Class)) >= int32(mv.MinFree) {
			return true
		}
		sc.failOK = false
		return false
	default:
		bc := int(mv.Port)*e.bufClasses + int(mv.Class)
		if mv.Kind == core.Dynamic {
			bc = int(mv.Port)*e.bufClasses + e.classes
		}
		if e.outFull[int(u)*e.ports*e.bufClasses+bc] != 0 {
			sc.failMask |= 1 << uint(bc&63)
			return false
		}
		if mv.Credit > 0 {
			if e.effectiveFree(e.queueIndex(mv.Node, mv.Class)) >= int32(mv.Credit) {
				return true
			}
			sc.failOK = false
			return false
		}
		if e.occSnap != nil {
			// Advisory lookahead: only commit toward a queue that had room
			// at the start of the cycle. The snapshot (not the live
			// occupancy) keeps the decision independent of the node
			// processing order, hence of the worker count. No reservation
			// is taken; transient overcommit simply waits in the link
			// buffers as under plain buffered flow control.
			if e.occSnap[e.queueIndex(mv.Node, mv.Class)] < int32(e.queueCap) {
				return true
			}
			sc.failOK = false
			return false
		}
		return true
	}
}

// choose applies the configured policy to the admissible move indices.
func (e *Engine) choose(r *xrand.RNG, moves []core.Move, adm []int) int {
	switch e.cfg.Policy {
	case PolicyFirstFree:
		return adm[0]
	case PolicyLastFree:
		return adm[len(adm)-1]
	case PolicyStaticFirst:
		var static [64]int
		n := 0
		for _, i := range adm {
			if moves[i].Kind == core.Static {
				static[n] = i
				n++
			}
		}
		if n > 0 {
			return static[r.Intn(n)]
		}
		return adm[r.Intn(len(adm))]
	default: // PolicyRandom
		return adm[r.Intn(len(adm))]
	}
}

// workerPhaseB runs node phase (b) over the live nodes of one shard.
func (e *Engine) workerPhaseB(w int) {
	lo, hi := e.shard(w)
	if lo >= hi {
		return
	}
	st := &e.statsBuf[w]
	sc := &e.scratch[w]
	cycle, win := e.curCycle, e.curWin
	base := lo >> 6
	for wi, word := range e.liveBits[base : (hi+63)>>6] {
		for ; word != 0; word &= word - 1 {
			u := int32((base+wi)*64 + bits.TrailingZeros64(word))
			if e.inCount[u] != 0 || e.injQ[u].full {
				e.nodePhaseB(u, cycle, win, st, sc)
			}
		}
	}
}

// nodePhaseB drains u's input buffers and injection queue into the central
// queues under a rotating fair order, consuming packets that reached their
// destination directly from the buffer. The occupancy counters bound the
// scan: it stops as soon as every occupied buffer has been considered.
func (e *Engine) nodePhaseB(u int32, cycle int64, win runWindow, st *cycleStats, sc *workerScratch) {
	deg := int(e.inDeg[u])
	base := e.inBase[u]
	ct := e.cfg.CutThrough
	total := deg + 1 // +1 for the injection queue
	left := int(e.inCount[u])
	if e.injQ[u].full {
		left++
	}
	// The rotation advances once per cycle whether or not the node is
	// scanned; deriving it from the cycle keeps idle nodes skippable
	// without a per-node counter, and the per-worker cache makes the
	// division once-per-cycle on regular (uniform-degree) topologies.
	if sc.rotCycle != cycle || sc.rotTotal != total {
		sc.rotCycle, sc.rotTotal = cycle, total
		sc.rotStart = int(cycle % int64(total))
	}
	start := sc.rotStart
	for i := 0; i < total && left > 0; i++ {
		s := start + i
		if s >= total {
			s -= total
		}
		if s == deg {
			// Injection queue. Latency is measured from *network entry*
			// (leaving the injection queue): time spent waiting in the
			// injection queue is charged to the effective injection rate,
			// not to latency, matching Section 7's bounded L_max under
			// saturation.
			sl := &e.injQ[u]
			if !sl.full {
				continue
			}
			left--
			qi := e.queueIndex(u, sl.pkt.Class)
			if e.effectiveFree(qi) >= int32(sl.pkt.MinFree) {
				sl.pkt.InjectedAt = cycle
				if l := e.qPush(u, qi, &sl.pkt); l > st.maxQueue {
					st.maxQueue = l
				}
				sl.full = false
				e.injFull[u>>6] &^= 1 << (uint(u) & 63)
				st.moves++
			}
			continue
		}
		si := base + int32(s)
		if e.inFull[si] == 0 {
			continue
		}
		left--
		pkt := &e.inPkt[si]
		if ct && pkt.Dst != u && pkt.MinFree != 0 && e.cutThrough(u, si, pkt, st, sc) {
			continue
		}
		if pkt.Dst == u {
			if pkt.MinFree == 0 {
				// Release the credit reservation of a packet consumed
				// straight from the input buffer.
				atomic.AddInt32(&e.inbound[e.queueIndex(u, pkt.Class)], -1)
			}
			e.deliver(*pkt, cycle, win, st)
			e.inFull[si] = 0
			e.inCount[u]--
			continue
		}
		qi := e.queueIndex(u, pkt.Class)
		if pkt.MinFree == 0 {
			// Credited packet: its slot was reserved at claim time, so the
			// push cannot fail; release the reservation. The buffer slot is
			// edited in place (it is cleared right after).
			pkt.MinFree = 1
			if l := e.qPush(u, qi, pkt); l > st.maxQueue {
				st.maxQueue = l
			}
			atomic.AddInt32(&e.inbound[qi], -1)
			e.inFull[si] = 0
			e.inCount[u]--
			st.moves++
			continue
		}
		if int32(e.queueCap)-e.qlen[qi] >= int32(pkt.MinFree) {
			if l := e.qPush(u, qi, pkt); l > st.maxQueue {
				st.maxQueue = l
			}
			e.inFull[si] = 0
			e.inCount[u]--
			st.moves++
		}
	}
}

// cutThrough attempts to forward an input-buffer packet straight to a free
// output buffer (virtual cut-through). It must not be used for credited
// packets (their reservation is tied to the queue they bypass). Reports
// whether the packet moved.
func (e *Engine) cutThrough(u int32, si int32, src *core.Packet, st *cycleStats, sc *workerScratch) bool {
	pkt := *src
	sc.cand = e.algo.Candidates(u, pkt.Class, pkt.Work, pkt.Dst, sc.cand[:0])
	for i := range sc.cand {
		mv := &sc.cand[i]
		if mv.Deliver || mv.Port == core.PortInternal || mv.Credit > 0 {
			// Internal transitions and credited (bubble-reserved) moves go
			// through the queues; everything else may cut through — the
			// packet only ever occupies buffers that were free, so the
			// deadlock analysis is unchanged and waiting strictly shrinks.
			continue
		}
		if e.flt != nil && !e.flt.portAlive(u, mv.Port) {
			continue
		}
		bc := int(mv.Class)
		if mv.Kind == core.Dynamic {
			bc = e.classes
		}
		link := int(u)*e.ports + int(mv.Port)
		so := link*e.bufClasses + bc
		if e.outFull[so] != 0 {
			continue
		}
		pkt.Class = mv.Class
		pkt.Work = mv.Work
		pkt.MinFree = mv.MinFree
		pkt.Hops++ // charged at commit time, as in phase (a)
		e.outPkt[so] = pkt
		e.outFull[so] = 1
		if e.waitFast {
			e.outMask[u] |= 1 << uint((int(mv.Port)*e.bufClasses+bc)&63)
		}
		e.outLink[link]++
		e.outCount[u]++
		e.inFull[si] = 0
		e.inCount[u]--
		st.moves++
		if mv.Kind == core.Dynamic {
			st.dynamicMoves++
		}
		if e.obsOn {
			st.obs.Inc(obs.CCutThrough)
		}
		return true
	}
	return false
}

// workerLink runs the link phase over the live nodes of one shard, then
// retires nodes that no longer hold any packet from the worklist.
func (e *Engine) workerLink(w int) {
	lo, hi := e.shard(w)
	if lo >= hi {
		return
	}
	st := &e.statsBuf[w]
	base := lo >> 6
	for wi := base; wi < (hi+63)>>6; wi++ {
		for word := e.liveBits[wi]; word != 0; word &= word - 1 {
			u := int32(wi*64 + bits.TrailingZeros64(word))
			if e.outCount[u] != 0 {
				e.linkNode(u, w, st)
			}
			if e.qTotal[u] == 0 && e.inCount[u] == 0 && e.outCount[u] == 0 && !e.injQ[u].full {
				e.liveBits[wi] &^= 1 << (uint(u) & 63)
			}
		}
	}
}

// linkNode transfers at most one packet per direction over each of u's
// occupied outgoing links, into empty input buffers, rotating over the
// buffer classes for fairness. Arrivals are recorded on the destination's
// worklist directly when it lives on the same shard, or posted to the
// owner's mail lane for the next cycle otherwise.
func (e *Engine) linkNode(u int32, w int, st *cycleStats) {
	lbase := int(u) * e.ports
	if e.waitFast {
		// outMask is a bitset of the occupied output buffers, so the scan
		// jumps straight to the next occupied link instead of probing every
		// port; a link's bits are dropped from the local copy once the link
		// has had its transfer chance.
		for m := e.outMask[u]; m != 0; {
			p := int(e.slotPort[bits.TrailingZeros64(m)])
			m &^= ((uint64(1) << uint(e.bufClasses)) - 1) << uint(p*e.bufClasses)
			e.linkTransfer(u, lbase+p, p, w, st)
		}
		return
	}
	rem := int(e.outCount[u])
	for p := 0; p < e.ports; p++ {
		l := lbase + p
		ol := int(e.outLink[l])
		if ol == 0 {
			continue
		}
		rem -= ol
		e.linkTransfer(u, l, p, w, st)
		if rem == 0 {
			return
		}
	}
}

// linkTransfer moves at most one packet over the occupied directed link l
// (port p of node u), choosing among its occupied output buffers under the
// rotating class order and only into an empty input buffer.
func (e *Engine) linkTransfer(u int32, l, p, w int, st *cycleStats) {
	sbase := l * e.bufClasses
	dbase := e.linkDst[l]
	start := int(e.linkRR[l])
	for i := 0; i < e.bufClasses; i++ {
		bc := start + i
		if bc >= e.bufClasses {
			bc -= e.bufClasses
		}
		si := sbase + bc
		di := dbase + int32(bc)
		if e.outFull[si] == 0 || e.inFull[di] != 0 {
			continue
		}
		// Hops was already charged at commit time; the transfer is a
		// plain copy plus flag updates.
		e.inPkt[di] = e.outPkt[si]
		e.inFull[di] = 1
		e.outFull[si] = 0
		if e.waitFast {
			e.outMask[u] &^= 1 << uint((p*e.bufClasses+bc)&63)
		}
		e.outLink[l]--
		e.outCount[u]--
		// The class rotation advances one step past the winner's start
		// position per transfer; storing the next start directly avoids
		// a modulo on every occupied link.
		start++
		if start >= e.bufClasses {
			start = 0
		}
		e.linkRR[l] = uint32(start)
		st.moves++
		if e.obsOn {
			st.obs.Inc(obs.CLinkTransfers)
		}
		v := e.nbr[l]
		if dw := e.owner[v]; int(dw) == w {
			e.inCount[v]++
			e.setLive(v)
		} else {
			lane := &e.mail[w*e.workers+int(dw)]
			lane.buf = append(lane.buf, v)
			if e.obsOn {
				st.obs.Inc(obs.CMailPosts)
			}
		}
		return // one packet per link per cycle
	}
}

// deliver consumes a packet at its destination and updates statistics,
// asserting the livelock-freedom hop bound (and exact minimality for
// minimal algorithms).
func (e *Engine) deliver(pkt core.Packet, cycle int64, win runWindow, st *cycleStats) {
	// Misrouted packets left the minimal path to dodge a fault; their hop
	// bound is the misroute budget, enforced at misroute time instead.
	if !e.cfg.DisableInvariantChecks && !pkt.Misrouted() {
		bound := e.algo.MaxHops(pkt.Src, pkt.Dst)
		if pkt.HopCount() > bound {
			panic(fmt.Sprintf("sim: %s: packet %d took %d hops from %d to %d, bound %d",
				e.algo.Name(), pkt.ID, pkt.HopCount(), pkt.Src, pkt.Dst, bound))
		}
		if e.minimal && pkt.HopCount() != bound {
			panic(fmt.Sprintf("sim: %s: minimal algorithm delivered packet %d in %d hops, distance %d",
				e.algo.Name(), pkt.ID, pkt.HopCount(), bound))
		}
	}
	st.delivered++
	st.moves++
	lat := cycle - pkt.InjectedAt + 1
	if e.cfg.OnDeliver != nil {
		e.cfg.OnDeliver(pkt, lat)
	}
	if e.observer != nil {
		e.observer.OnDeliver(pkt, lat)
	}
	if e.obsOn {
		st.obs.Observe(obs.HLatency, lat)
	}
	if win.contains(cycle) {
		st.latencySum += lat
		st.measured++
		if lat > st.latencyMax {
			st.latencyMax = lat
		}
	}
}
