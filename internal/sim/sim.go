// Package sim provides the two packet-routing simulators used to evaluate
// the algorithms:
//
//   - Engine is the cycle-accurate buffered simulator implementing the node
//     and link model of Sections 6 and 7.1 of the paper: per-link input and
//     output buffers (one per static target queue plus one shared dynamic
//     buffer), a node cycle that first fills output buffers from the queues
//     in FIFO order and then drains input and injection buffers into the
//     queues fairly, and a link cycle that moves at most one packet per
//     direction. A hop therefore costs two cycles through a node, and an
//     uncongested d-hop route has latency 2d+1 — the calibration that makes
//     Table 2's L = 2n+1 come out exactly.
//
//   - AtomicEngine is the abstract store-and-forward model of Section 2
//     (the greedy Route(q) algorithm): queue-to-queue moves applied
//     atomically, one per queue per cycle. It is the reference model for
//     the deadlock-freedom semantics (MinFree conditions are exact) and for
//     algorithm-level studies.
//
// Both engines detect deadlock (no packet movement while packets remain)
// and assert livelock freedom (hop bounds at delivery), and both are fully
// deterministic for a fixed seed, including under parallel execution.
package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
)

// TrafficSource drives injection. Implementations live in internal/traffic;
// the interface is defined here so the engines carry no traffic dependency.
// Engines call Wants at most once per node per cycle and Take only when the
// injection actually commits, always from the goroutine that owns the node,
// so implementations need per-node state only.
type TrafficSource interface {
	// Wants reports whether node attempts to inject a packet this cycle.
	// An attempt against an occupied injection queue fails (and counts
	// against the effective injection rate); Take is then not called and
	// the source must not consider the packet consumed.
	Wants(node int32, cycle int64) bool
	// Take returns the destination of the packet being injected at node.
	// It is called at most once per Wants, and only when the injection
	// queue has room.
	Take(node int32, cycle int64) int32
	// Exhausted reports whether node will never attempt again. Dynamic
	// (Bernoulli) sources return false forever; static sources return true
	// once their per-node allotment is injected.
	Exhausted(node int32) bool
}

// Policy selects among the admissible candidate moves of a packet.
type Policy uint8

const (
	// PolicyFirstFree picks the first admissible move in candidate order,
	// which for every algorithm in core is low-to-high dimension order —
	// the paper's "each node fills its output buffers from low to high
	// dimensions" (Section 7.1). It is the default; it also makes the
	// uncongested Complement runs reproduce Table 2's exact L = 2n+1
	// (dimension-ordered complement traffic never collides).
	PolicyFirstFree Policy = iota
	// PolicyRandom picks uniformly at random among admissible moves; the
	// paper's select "may return any q' satisfying the condition", and the
	// random choice spreads load without positional bias.
	PolicyRandom
	// PolicyStaticFirst picks a random admissible static move if one
	// exists, falling back to dynamic moves: an ablation that treats
	// dynamic links strictly as overflow capacity.
	PolicyStaticFirst
	// PolicyLastFree picks the last admissible move in candidate order —
	// a deliberately unhelpful choice (it prefers dynamic links and high
	// dimensions) used by the stress tests to check that deadlock freedom
	// does not depend on benign selection.
	PolicyLastFree
)

func (p Policy) String() string {
	switch p {
	case PolicyRandom:
		return "random"
	case PolicyFirstFree:
		return "first-free"
	case PolicyStaticFirst:
		return "static-first"
	case PolicyLastFree:
		return "last-free"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// PolicyNames lists the textual policy names accepted by ParsePolicy, in
// Policy order.
var PolicyNames = []string{"first-free", "random", "static-first", "last-free"}

// ParsePolicy is the inverse of Policy.String: it resolves the textual
// policy names the CLIs and RunSpec accept. The empty string selects the
// default PolicyFirstFree.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "first-free":
		return PolicyFirstFree, nil
	case "random":
		return PolicyRandom, nil
	case "static-first":
		return PolicyStaticFirst, nil
	case "last-free":
		return PolicyLastFree, nil
	}
	return 0, fmt.Errorf("sim: unknown policy %q, valid: %v", s, PolicyNames)
}

// Config configures either engine.
type Config struct {
	Algorithm core.Algorithm
	// QueueCap is the capacity of each central queue (the paper fixes 5).
	// Must be >= 2 for algorithms that use bubble-guarded moves.
	QueueCap int
	// Policy selects among admissible moves; default PolicyFirstFree.
	Policy Policy
	// Seed makes runs reproducible. Every node derives its own generator
	// from it, so results are independent of worker count.
	Seed int64
	// Workers > 1 shards the nodes across goroutines with barriers between
	// the phases of a cycle. 0 or 1 means sequential.
	Workers int
	// RebalanceEvery > 0 recomputes the worker-shard boundaries every that
	// many cycles, weighting nodes by their central-queue occupancy (the
	// barrier-merged qTotal counters), so a congestion hot spot does not
	// leave most workers idle behind one overloaded shard. Boundaries stay
	// 64-aligned (the single-writer bitmap invariant), the recomputation
	// runs in the sequential section of the cycle, and its input is
	// simulation state only — results remain bit-identical for any worker
	// count, with rebalancing on or off. Ignored with Workers <= 1.
	// 0 disables rebalancing.
	RebalanceEvery int
	// PhaseProf measures the wall-clock time of each engine phase (inject,
	// node (a), node (b), link, stats merge) at the cycle barrier,
	// accumulated into PhaseTimes and — when the metrics core is on — the
	// obs phase-time counters. Profiling forces the unfused four-barrier
	// pipeline so each phase is individually observable; expect a few
	// percent of overhead. Off by default: the hot loop then pays one
	// predictable branch per phase.
	PhaseProf bool
	// DisableFusion forces a barrier between every phase of a cycle even
	// when the configuration would allow the inject/(a)/(b) phases to run
	// back-to-back per worker (see Engine docs). Fusion never changes
	// results; the switch exists for the determinism tests that pin that
	// claim and for before/after benchmarking of the barrier cost.
	DisableFusion bool
	// DeadlockWindow is the number of consecutive cycles without any packet
	// movement (while packets remain in the network) after which the run
	// aborts with ErrDeadlock. Default 1000.
	DeadlockWindow int
	// DisableInvariantChecks turns off per-delivery hop assertions (used
	// only by tests that measure raw speed).
	DisableInvariantChecks bool
	// CutThrough enables virtual cut-through switching [KK79], the hybrid
	// between packet routing and wormhole the paper's introduction names: a
	// packet arriving at a node may proceed straight from the input buffer
	// to a free output buffer in the same cycle, without being stored in a
	// central queue. Blocked packets fall back to the store-and-forward
	// path, so deadlock freedom is unchanged (cut-through only ever uses
	// free buffers); an uncongested hop costs 1 cycle instead of 2.
	CutThrough bool
	// HeadOnly restricts node phase (a) to each queue's head packet, the
	// strict reading of Section 2's Route(q) (one head move per queue per
	// cycle). The default lets packets behind a blocked head depart first
	// when they want a different buffer, the natural reading of Section
	// 7.1's per-buffer FIFO arbitration; HeadOnly quantifies the cost of
	// head-of-line blocking as an ablation.
	HeadOnly bool
	// Faults schedules link and node failures for the run (see the fault
	// package). The plan is compiled against the algorithm's topology when
	// the engine is built; a nil plan (the default) costs nothing on the hot
	// path. With faults enabled the engine routes around dead links
	// (misrouting with a hop budget when the minimal candidate set is
	// emptied), drops packets that faults strand, and applies
	// retry-with-backoff to saturated injection — all bit-deterministically
	// across worker counts.
	Faults *fault.Plan
	// HopBudget bounds the extra link traversals (beyond MaxHops) a
	// fault-misrouted packet may take before it is dropped. 0 selects the
	// plan's budget, or 64 when the plan sets none. Ignored without Faults.
	HopBudget int
	// DisablePortMask forces every routing decision through
	// Algorithm.Candidates even when the algorithm implements
	// core.PortMaskRouter. Routing is bit-identical either way (the
	// determinism tests pin this); the switch exists for those tests and for
	// same-host before/after benchmarking of the mask fast path. Disabling
	// costs nothing per cycle: the engines simply skip the interface
	// assertion at construction.
	DisablePortMask bool
	// DisableRouteTable forces algorithms that compile their routing
	// relation into flat next-hop tables at construction
	// (core.RouteTableRouter implementors — the graph-adaptive algorithm)
	// through their uncompiled interface scan path instead. Routing is
	// bit-identical either way (the route-table property tests pin this);
	// the switch mirrors DisablePortMask: it exists for those tests and for
	// same-binary before/after benchmarking, and costs nothing per cycle —
	// the swap happens once at engine construction. Algorithms without a
	// compiled table ignore it.
	DisableRouteTable bool
	// DisableBatchInject forces the per-node scalar injection path
	// (Wants/Take per node per cycle) even when the traffic source
	// implements BatchSource. Metrics are bit-identical either way (the
	// batch determinism tests pin this); the switch mirrors DisablePortMask
	// and DisableRouteTable: it exists for those tests and for same-binary
	// before/after benchmarking of the batched injection fast path, and
	// costs nothing per cycle — the engines simply skip the interface
	// assertion at the start of the run.
	DisableBatchInject bool
	// RemoteLookahead makes a packet commit to an output buffer only when
	// the target queue currently has room for every packet already headed
	// its way plus this one (occupancy + inbound < capacity). This realizes
	// the abstract Route(q) of Section 2 — "select q' : not Full(q')" —
	// over the buffered node model: the adaptive choice is made against the
	// state of the target queues rather than only the local buffers.
	RemoteLookahead bool
	// Observer, if set, receives the run's delivery, per-cycle, and
	// end-of-run probes together with the merged metric snapshots; compose
	// several with obs.Multi. Attaching an observer enables the metrics
	// core for the run (see Metrics). Observers are read-only taps: for a
	// fixed seed, Metrics and the final snapshot are bit-identical with or
	// without one attached.
	Observer obs.Observer
	// Metrics enables the metrics core even without an Observer: the run's
	// RunResult then carries the final snapshot, and Engine.Obs exposes
	// the live core (e.g. for a /metrics endpoint). With neither Metrics
	// nor Observer set, the instrumentation is compiled out of the hot
	// loop behind a single predictable branch.
	Metrics bool
	// OnDeliver, if set, is called at every delivery with the packet and
	// its measured latency (cycles since network entry). With Workers > 1
	// it is called concurrently and must be safe for parallel use.
	//
	// Deprecated: attach an Observer instead (obs.NewLatency replaces the
	// typical latency-collector use). The field keeps working and may be
	// combined with an Observer.
	OnDeliver func(pkt core.Packet, latency int64)
	// OnCycle, if set, is called once at the end of every simulated cycle,
	// outside the parallel phases, so it may safely inspect the engine
	// (e.g. through Snapshot) to sample congestion over time.
	//
	// Deprecated: attach an Observer instead; its OnCycle probe also
	// receives the merged metric snapshot. The field keeps working.
	OnCycle func(cycle int64)
}

func (c *Config) fill() error {
	if c.Algorithm == nil {
		return fmt.Errorf("sim: Config.Algorithm is nil")
	}
	if c.DisableRouteTable {
		if rt, ok := c.Algorithm.(core.RouteTableRouter); ok {
			c.Algorithm = rt.WithoutRouteTable()
		}
	}
	if c.QueueCap == 0 {
		c.QueueCap = 5
	}
	if c.QueueCap < 1 {
		return fmt.Errorf("sim: QueueCap must be >= 1, got %d", c.QueueCap)
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.RebalanceEvery < 0 {
		return fmt.Errorf("sim: RebalanceEvery must be >= 0, got %d", c.RebalanceEvery)
	}
	if c.DeadlockWindow == 0 {
		c.DeadlockWindow = 1000
	}
	return nil
}

// ErrDeadlock is returned when the watchdog observes no packet movement for
// DeadlockWindow consecutive cycles while undelivered packets remain. The
// verified algorithms never trigger it; tests use it with adversarial
// configurations to prove the watchdog works.
type ErrDeadlock struct {
	Cycle     int64
	InFlight  int
	Algorithm string
	// Dump is the wait-for state at the moment the watchdog fired: which
	// queue heads were blocked and which outputs they were waiting on. It is
	// also delivered to the run's observer when it implements
	// obs.DeadlockObserver.
	Dump *obs.DeadlockDump
}

func (e *ErrDeadlock) Error() string {
	return fmt.Sprintf("sim: deadlock: %s made no progress by cycle %d with %d packets in flight",
		e.Algorithm, e.Cycle, e.InFlight)
}

// Metrics aggregates the observables the paper reports, plus bookkeeping
// used by the tests.
type Metrics struct {
	Cycles       int64 `json:"cycles"`        // cycles simulated
	Injected     int64 `json:"injected"`      // packets that entered an injection queue
	Delivered    int64 `json:"delivered"`     // packets consumed at their destination
	Dropped      int64 `json:"dropped"`       // packets lost to faults (dead nodes/links, hop budget)
	InFlight     int64 `json:"in_flight"`     // packets still in the network when the run ended
	Attempts     int64 `json:"attempts"`      // injection attempts (dynamic model, measured window)
	Successes    int64 `json:"successes"`     // successful attempts (dynamic model, measured window)
	LatencySum   int64 `json:"latency_sum"`   // sum of latencies over measured deliveries
	LatencyMax   int64 `json:"latency_max"`   // maximum latency over measured deliveries
	Measured     int64 `json:"measured"`      // deliveries contributing to the latency statistics
	MaxQueue     int   `json:"max_queue"`     // maximum central-queue occupancy ever observed
	Moves        int64 `json:"moves"`         // total packet movements (progress events)
	DynamicMoves int64 `json:"dynamic_moves"` // movements that used a dynamic link
}

// AvgLatency returns the mean latency over the measured deliveries, the
// paper's L_avg.
func (m *Metrics) AvgLatency() float64 {
	if m.Measured == 0 {
		return 0
	}
	return float64(m.LatencySum) / float64(m.Measured)
}

// InjectionRate returns the effective injection rate I_r in [0,1]: the
// ratio of successful to attempted injections (Section 7.1).
func (m *Metrics) InjectionRate() float64 {
	if m.Attempts == 0 {
		return 0
	}
	return float64(m.Successes) / float64(m.Attempts)
}

func (m *Metrics) String() string {
	return fmt.Sprintf("cycles=%d injected=%d delivered=%d Lavg=%.2f Lmax=%d Ir=%.1f%%",
		m.Cycles, m.Injected, m.Delivered, m.AvgLatency(), m.LatencyMax, 100*m.InjectionRate())
}
