package sim

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/traffic"
)

// TestOnDeliverHook checks the delivery callback sees every packet exactly
// once with a plausible latency, on both engines.
func TestOnDeliverHook(t *testing.T) {
	a := core.NewHypercubeAdaptive(5)
	var mu sync.Mutex
	seen := map[int64]int64{}
	cfg := Config{
		Algorithm: a, Seed: 1,
		OnDeliver: func(p core.Packet, lat int64) {
			mu.Lock()
			seen[p.ID] = lat
			mu.Unlock()
		},
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := traffic.NewStaticSource(traffic.Random{Nodes: 32}, 32, 3, 2)
	m, err := e.RunStatic(src, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(seen)) != m.Delivered {
		t.Fatalf("hook saw %d deliveries, engine reported %d", len(seen), m.Delivered)
	}
	for id, lat := range seen {
		if lat < 1 || lat > m.LatencyMax {
			t.Fatalf("packet %d: latency %d out of range", id, lat)
		}
	}
}

// TestWorkersExceedNodes: more workers than nodes must still partition
// correctly and deterministically.
func TestWorkersExceedNodes(t *testing.T) {
	a := core.NewHypercubeAdaptive(3) // 8 nodes
	run := func(workers int) Metrics {
		e, err := NewEngine(Config{Algorithm: a, Seed: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		src := traffic.NewStaticSource(traffic.Random{Nodes: 8}, 8, 5, 2)
		m, err := e.RunStatic(src, 100000)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if a, b := run(1), run(32); a != b {
		t.Errorf("32 workers on 8 nodes diverged:\n%+v\n%+v", a, b)
	}
}

// TestEngineReuse: consecutive runs on one engine start from clean state.
func TestEngineReuse(t *testing.T) {
	a := core.NewHypercubeAdaptive(5)
	e, err := NewEngine(Config{Algorithm: a, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var prev Metrics
	for i := 0; i < 3; i++ {
		src := traffic.NewStaticSource(traffic.Complement{Bits: 5}, 32, 2, 3)
		m, err := e.RunStatic(src, 100000)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && m != prev {
			t.Fatalf("run %d differs from run %d:\n%+v\n%+v", i, i-1, m, prev)
		}
		prev = m
	}
}

// TestAtomicDynamicRun exercises the atomic engine's dynamic path on the
// shuffle-exchange (credited moves) and the torus.
func TestAtomicDynamicRun(t *testing.T) {
	for _, a := range []core.Algorithm{
		core.NewShuffleExchangeAdaptive(5),
		core.NewTorusAdaptive(4, 4),
	} {
		nodes := a.Topology().Nodes()
		e, err := NewAtomicEngine(Config{Algorithm: a, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		src := traffic.NewBernoulliSource(traffic.Random{Nodes: nodes}, nodes, 0.5, 3)
		m, err := e.RunDynamic(src, 100, 400)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if m.Delivered == 0 || m.Measured == 0 {
			t.Errorf("%s: nothing measured: %+v", a.Name(), m)
		}
	}
}

// TestRemoteLookahead exercises the advisory lookahead mode end to end: it
// must deliver everything and stay deadlock-free (reservations are released
// on delivery too).
func TestRemoteLookahead(t *testing.T) {
	for _, a := range []core.Algorithm{
		core.NewHypercubeAdaptive(5),
		core.NewShuffleExchangeAdaptive(4), // mixes credits with lookahead
	} {
		nodes := a.Topology().Nodes()
		e, err := NewEngine(Config{Algorithm: a, Seed: 1, RemoteLookahead: true, QueueCap: 3})
		if err != nil {
			t.Fatal(err)
		}
		src := traffic.NewStaticSource(traffic.Random{Nodes: nodes}, nodes, 6, 2)
		m, err := e.RunStatic(src, 1_000_000)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if m.Delivered != int64(nodes*6) {
			t.Errorf("%s: delivered %d, want %d", a.Name(), m.Delivered, nodes*6)
		}
	}
}

// TestDynamicWindowAccounting pins the measurement-window semantics: with
// warmup w and measurement m, attempts are counted only in [w, w+m).
func TestDynamicWindowAccounting(t *testing.T) {
	a := core.NewHypercubeAdaptive(4)
	e, err := NewEngine(Config{Algorithm: a, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	src := traffic.NewBernoulliSource(traffic.Random{Nodes: 16}, 16, 1.0, 2)
	m, err := e.RunDynamic(src, 50, 100)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(16 * 100); m.Attempts != want {
		t.Errorf("attempts = %d, want %d", m.Attempts, want)
	}
	if m.Cycles != 150 {
		t.Errorf("cycles = %d, want 150", m.Cycles)
	}
}

// TestInjectionQueueBackpressure: with destinations all equal (an extreme
// hotspot permutation is impossible, so use a many-to-one pattern via
// Permutation with all-but-one node sending to node 0's neighborhood), the
// injection queue must throttle without losing packets.
func TestInjectionQueueBackpressure(t *testing.T) {
	n := 5
	nodes := int32(1 << n)
	sigma := make([]int32, nodes)
	for i := range sigma {
		sigma[i] = int32(i) ^ (nodes - 1) // complement: heavy contention
	}
	a := core.NewHypercubeAdaptive(n)
	e, err := NewEngine(Config{Algorithm: a, Seed: 1, QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	src := traffic.NewStaticSource(&traffic.Permutation{Label: "compl", Sigma: sigma}, int(nodes), 20, 2)
	m, err := e.RunStatic(src, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Delivered != int64(nodes)*20 {
		t.Errorf("delivered %d, want %d", m.Delivered, int64(nodes)*20)
	}
	if m.MaxQueue > 2 {
		t.Errorf("queue occupancy %d exceeded capacity 2", m.MaxQueue)
	}
}

// TestConservationEveryCycle asserts the exact packet-conservation
// invariant Injected == Delivered + InNetwork at every cycle boundary of a
// loaded dynamic run, for several algorithms on the buffered engine.
func TestConservationEveryCycle(t *testing.T) {
	for _, a := range []core.Algorithm{
		core.NewHypercubeAdaptive(5),
		core.NewShuffleExchangeAdaptive(4),
		core.NewTorusAdaptive(4, 4),
		core.NewCCCAdaptive(3),
	} {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			nodes := a.Topology().Nodes()
			var eng *Engine
			injected, delivered := int64(0), int64(0)
			cfg := Config{Algorithm: a, Seed: 5, QueueCap: 3}
			cfg.OnDeliver = func(core.Packet, int64) { delivered++ }
			cfg.OnCycle = func(cycle int64) {
				inNet := int64(eng.InNetwork())
				if injected != delivered+inNet {
					t.Fatalf("cycle %d: injected %d != delivered %d + in-network %d",
						cycle, injected, delivered, inNet)
				}
			}
			var err error
			eng, err = NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			src := &countingSource{inner: traffic.NewBernoulliSource(traffic.Random{Nodes: nodes}, nodes, 0.8, 7), injected: &injected}
			if _, err := eng.RunDynamic(src, 0, 400); err != nil {
				t.Fatal(err)
			}
			if injected == 0 {
				t.Fatal("nothing injected")
			}
		})
	}
}

// countingSource counts committed injections.
type countingSource struct {
	inner    TrafficSource
	injected *int64
}

func (c *countingSource) Wants(node int32, cycle int64) bool { return c.inner.Wants(node, cycle) }
func (c *countingSource) Take(node int32, cycle int64) int32 {
	*c.injected++
	return c.inner.Take(node, cycle)
}
func (c *countingSource) Exhausted(node int32) bool { return c.inner.Exhausted(node) }

// TestCutThroughLatency pins the virtual cut-through timing: after the
// first store-and-forward hop out of the source queue, every uncongested
// hop costs one cycle (input buffer -> output buffer -> link in the same
// cycle), so the complement permutation with one packet per node delivers
// in exactly n+2 cycles instead of store-and-forward's 2n+1.
func TestCutThroughLatency(t *testing.T) {
	for _, n := range []int{4, 6, 8} {
		a := core.NewHypercubeAdaptive(n)
		src := traffic.NewStaticSource(traffic.Complement{Bits: n}, 1<<n, 1, 1)
		m := runStaticBuffered(t, a, src, Config{Seed: 42, CutThrough: true})
		if want := int64(n + 2); m.LatencyMax != want || m.AvgLatency() != float64(want) {
			t.Errorf("n=%d: latency = %.2f/%d, want exactly %d", n, m.AvgLatency(), m.LatencyMax, want)
		}
		if m.Delivered != int64(1<<n) {
			t.Errorf("n=%d: delivered %d", n, m.Delivered)
		}
	}
}

// TestCutThroughUnderPressure: cut-through must not break deadlock freedom
// or conservation in the congested regime, including for the credited
// shuffle-exchange moves (which must bypass cut-through).
func TestCutThroughUnderPressure(t *testing.T) {
	for _, a := range []core.Algorithm{
		core.NewHypercubeAdaptive(5),
		core.NewMeshAdaptive(5, 5),
		core.NewShuffleExchangeAdaptive(6),
		core.NewTorusAdaptive(5, 5),
		core.NewCCCAdaptive(4),
	} {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			nodes := a.Topology().Nodes()
			src := traffic.NewStaticSource(traffic.Random{Nodes: nodes}, nodes, 8, 3)
			m := runStaticBuffered(t, a, src, Config{QueueCap: 2, Seed: 13, CutThrough: true})
			if m.Delivered != int64(nodes*8) {
				t.Fatalf("delivered %d, want %d", m.Delivered, nodes*8)
			}
		})
	}
}

// TestCutThroughDeterministicParallel: cut-through with multiple workers
// must stay bit-deterministic.
func TestCutThroughDeterministicParallel(t *testing.T) {
	run := func(workers int) Metrics {
		a := core.NewHypercubeAdaptive(6)
		src := traffic.NewBernoulliSource(traffic.Random{Nodes: 64}, 64, 0.8, 3)
		e, err := NewEngine(Config{Algorithm: a, Seed: 3, Workers: workers, CutThrough: true})
		if err != nil {
			t.Fatal(err)
		}
		m, err := e.RunDynamic(src, 100, 300)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if a, b := run(1), run(4); a != b {
		t.Errorf("cut-through parallel run diverged:\n%+v\n%+v", a, b)
	}
}
