package sim

import (
	"math/bits"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/topology"
)

// faultState is the per-engine fault machinery, shared by both engines. It
// is nil when the configuration schedules no faults, so the no-fault hot
// path pays a single pointer test per guarded site.
//
// Determinism: the schedule is compiled before the run (probabilistic
// selections resolved there), events are applied sequentially at cycle
// boundaries, and every routing-time decision (candidate filtering,
// misroute port choice, injection backoff) depends only on node-local state
// — so fault-enabled runs stay bit-deterministic across worker counts.
type faultState struct {
	sched     *fault.Schedule
	nextEv    int
	live      *topology.Liveness
	livePorts []uint32  // per node: usable out-port mask (link + both endpoints alive)
	inEdges   [][]int32 // per node: directed-link ids (u*ports+p) entering it
	hopBudget int       // extra traversals beyond MaxHops before a misrouted packet drops
	injFail   []uint8   // per node: consecutive failed injection attempts (backoff exponent)
	injNext   []int64   // per node: next cycle at which injection may be attempted
}

// maxBackoffShift caps the injection backoff at 2^6 = 64 cycles.
const maxBackoffShift = 6

// defaultHopBudget is the misroute budget when neither Config.HopBudget nor
// the plan sets one.
const defaultHopBudget = 64

func newFaultState(t topology.Topology, sched *fault.Schedule, hopBudget int) *faultState {
	n, ports := t.Nodes(), t.Ports()
	f := &faultState{
		sched:     sched,
		live:      topology.NewLiveness(t),
		livePorts: make([]uint32, n),
		inEdges:   make([][]int32, n),
		hopBudget: hopBudget,
		injFail:   make([]uint8, n),
		injNext:   make([]int64, n),
	}
	if f.hopBudget <= 0 {
		f.hopBudget = sched.HopBudget
	}
	if f.hopBudget <= 0 {
		f.hopBudget = defaultHopBudget
	}
	for u := 0; u < n; u++ {
		for p := 0; p < ports; p++ {
			if v := t.Neighbor(u, p); v != topology.None && v != u {
				f.inEdges[v] = append(f.inEdges[v], int32(u*ports+p))
			}
		}
	}
	f.reset()
	return f
}

func (f *faultState) reset() {
	f.nextEv = 0
	f.live.Reset()
	f.recomputeLivePorts()
	for u := range f.injFail {
		f.injFail[u] = 0
		f.injNext[u] = 0
	}
}

func (f *faultState) recomputeLivePorts() {
	for u := range f.livePorts {
		f.livePorts[u] = f.live.LivePorts(u)
	}
}

// portAlive reports whether the directed link out of u through port p is
// usable for routing this cycle.
func (f *faultState) portAlive(u int32, p int16) bool {
	return f.livePorts[u]&(1<<uint(p)) != 0
}

// backoff handles a saturated injection attempt: the node waits an
// exponentially growing number of cycles before the next attempt.
func (f *faultState) backoff(u int32, cycle int64) {
	if f.injFail[u] < maxBackoffShift {
		f.injFail[u]++
	}
	f.injNext[u] = cycle + 1<<f.injFail[u]
}

// faultDropPacket accounts one packet lost to faults. The drop itself
// (removing the packet from whatever structure held it) is the caller's job.
func (e *Engine) faultDropPacket(pkt *core.Packet, cycle int64, st *cycleStats) {
	st.dropped++
	if e.obsOn {
		st.obs.Inc(obs.CFaultDrops)
		st.obs.Observe(obs.HDropAge, cycle-pkt.InjectedAt+1)
	}
}

// applyFaults replays all schedule events due at or before cycle. It runs
// sequentially before the parallel phases, so purges and liveness flips are
// ordered identically for every worker count.
func (e *Engine) applyFaults(cycle int64, st *cycleStats) {
	f := e.flt
	evs := f.sched.Events
	changed := false
	for f.nextEv < len(evs) && evs[f.nextEv].At <= cycle {
		ev := evs[f.nextEv]
		f.nextEv++
		switch {
		case ev.Port < 0 && ev.Up:
			f.live.ReviveNode(int(ev.Node))
		case ev.Port < 0:
			if f.live.KillNode(int(ev.Node)) {
				e.purgeNode(ev.Node, cycle, st)
			}
		case ev.Up:
			f.live.ReviveLink(int(ev.Node), int(ev.Port))
		default:
			if f.live.KillLink(int(ev.Node), int(ev.Port)) {
				e.purgeLink(int(ev.Node)*e.ports+int(ev.Port), cycle, st)
			}
		}
		changed = true
	}
	if changed {
		f.recomputeLivePorts()
	}
}

// purgeLink drops the packets waiting in the output buffers of the directed
// link l: they were committed to a link that no longer exists. Input
// buffers at the far end keep their packets — those already crossed.
func (e *Engine) purgeLink(l int, cycle int64, st *cycleStats) {
	u := int32(l / e.ports)
	base := l * e.bufClasses
	for bc := 0; bc < e.bufClasses; bc++ {
		if e.outFull[base+bc] == 0 {
			continue
		}
		pkt := &e.outPkt[base+bc]
		if pkt.MinFree == 0 {
			// Credited packet: release its reservation at the target queue.
			atomic.AddInt32(&e.inbound[e.queueIndex(e.nbr[l], pkt.Class)], -1)
		}
		e.faultDropPacket(pkt, cycle, st)
		e.outFull[base+bc] = 0
		e.outLink[l]--
		e.outCount[u]--
	}
}

// purgeNode drops every packet held at a dead node — central queues,
// injection queue, input buffers — plus the packets committed toward it in
// its in-edge output buffers. After the purge nothing can re-enter the node
// (phase (a), cut-through and misrouting all consult livePorts), so the
// node stays empty until revived.
func (e *Engine) purgeNode(u int32, cycle int64, st *cycleStats) {
	for _, l := range e.flt.inEdges[u] {
		e.purgeLink(int(l), cycle, st)
	}
	qi0 := int(u) * e.classes
	for c := 0; c < e.classes; c++ {
		qi := qi0 + c
		n := e.qlen[qi]
		for i := int32(0); i < n; i++ {
			e.faultDropPacket(e.qAt(qi, i), cycle, st)
		}
		e.qlen[qi] = 0
		e.qhead[qi] = 0
		if e.atomicOcc {
			atomic.StoreInt32(&e.occ[qi], 0)
			atomic.StoreInt32(&e.inbound[qi], 0)
		} else {
			e.occ[qi] = 0
			e.inbound[qi] = 0
		}
		if e.obsOn && n > 0 {
			st.obs.GaugeAdd(obs.GQueueOccupancy, -int64(n))
		}
	}
	e.qTotal[u] = 0
	if e.injQ[u].full {
		e.faultDropPacket(&e.injQ[u].pkt, cycle, st)
		e.injQ[u] = injSlot{}
		e.injFull[u>>6] &^= 1 << (uint(u) & 63)
	}
	base, deg := e.inBase[u], e.inDeg[u]
	for si := base; si < base+deg; si++ {
		if e.inFull[si] == 0 {
			continue
		}
		e.faultDropPacket(&e.inPkt[si], cycle, st)
		e.inFull[si] = 0
	}
	e.inCount[u] = 0
	lbase := int(u) * e.ports
	for p := 0; p < e.ports; p++ {
		if e.nbr[lbase+p] >= 0 {
			e.purgeLink(lbase+p, cycle, st)
		}
	}
}

// misrouteHash mixes the cycle, packet identity and hop count into the
// starting-port draw for a misroute (splitmix64 finalizer).
func misrouteHash(cycle, id int64, hops int) uint32 {
	x := uint64(cycle)*0x9E3779B97F4A7C15 ^ uint64(id)<<32 ^ uint64(hops)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return uint32(x)
}

// misroute is the degraded-routing fallback: every minimal candidate of the
// packet at FIFO position idx of queue qi was removed by faults. The packet
// is re-routed through any surviving link's shared dynamic buffer — it
// re-enters the neighbor as a fresh injection (class and scratch from
// Inject) with the misroute flag set — or dropped once its hop budget is
// exhausted. Reports whether the packet left the queue.
func (e *Engine) misroute(u int32, qi int, idx int32, pkt *core.Packet, cycle int64, st *cycleStats) bool {
	f := e.flt
	lp := f.livePorts[u]
	if lp == 0 || pkt.HopCount() >= e.algo.MaxHops(pkt.Src, pkt.Dst)+f.hopBudget {
		e.faultDropPacket(pkt, cycle, st)
		e.qDrop(u, qi, idx)
		return true
	}
	// Pick the starting port from a hash of the cycle, the packet and its
	// progress — deterministic and node-local, so worker counts cannot
	// change it. A plain (cycle+hops) rotation is not enough: on a closed
	// detour of length L both advance by L per lap, so the same port would
	// be chosen forever whenever 2L divides the live-port count, and the
	// packet would orbit until its hop budget ran out.
	n := bits.OnesCount32(lp)
	k := int(misrouteHash(cycle, pkt.ID, pkt.HopCount()) % uint32(n))
	upper := lp
	for i := 0; i < k; i++ {
		upper &= upper - 1
	}
	lbase := int(u) * e.ports
	for _, mk := range [2]uint32{upper, lp ^ upper} {
		for ; mk != 0; mk &= mk - 1 {
			p := bits.TrailingZeros32(mk)
			si := (lbase+p)*e.bufClasses + e.classes // shared dynamic buffer
			if e.outFull[si] != 0 {
				continue
			}
			v := e.nbr[lbase+p]
			class, work := e.algo.Inject(v, pkt.Dst)
			out := &e.outPkt[si]
			*out = *pkt
			out.Class = class
			out.Work = work
			out.MinFree = 1
			out.Hops++
			out.MarkMisrouted()
			e.qDrop(u, qi, idx)
			e.outFull[si] = 1
			e.outLink[lbase+p]++
			e.outCount[u]++
			st.moves++
			if e.obsOn {
				st.obs.Inc(obs.CMisrouted)
			}
			return true
		}
	}
	if e.obsOn {
		st.obs.Inc(obs.COutputStalls)
	}
	return false
}

// filterLiveMoves removes remote candidates over dead links, in place.
// The returned slice is empty exactly when faults trapped the packet
// (deliveries and internal moves always survive).
func (f *faultState) filterLiveMoves(u int32, moves []core.Move) []core.Move {
	lp := f.livePorts[u]
	kept := moves[:0]
	for i := range moves {
		if p := moves[i].Port; p >= 0 && lp&(1<<uint(p)) == 0 {
			continue
		}
		kept = append(kept, moves[i])
	}
	return kept
}

// buildDeadlockDump assembles the wait-for state behind a watchdog firing:
// one entry per non-empty central queue head, with the outputs its
// candidates wait on. headAt abstracts over the two engines' queue layouts.
func buildDeadlockDump(algo core.Algorithm, flt *faultState, window, cycle, inFlight int64,
	headAt func(u, c int) (*core.Packet, int)) *obs.DeadlockDump {
	t := algo.Topology()
	nodes, classes := t.Nodes(), algo.NumClasses()
	d := &obs.DeadlockDump{Cycle: cycle, Window: window, InFlight: inFlight}
	var cand []core.Move
	for u := 0; u < nodes; u++ {
		for c := 0; c < classes; c++ {
			pkt, qlen := headAt(u, c)
			if pkt == nil {
				continue
			}
			if len(d.Waits) >= obs.DumpLimit {
				d.Truncated = true
				return d
			}
			w := obs.WaitFor{
				Node: int32(u), Class: uint8(c), QueueLen: qlen,
				PacketID: pkt.ID, Dst: pkt.Dst,
			}
			cand = algo.Candidates(int32(u), core.QueueClass(c), pkt.Work, pkt.Dst, cand[:0])
			for _, mv := range cand {
				if mv.Deliver || mv.Port == core.PortInternal {
					continue
				}
				bc := uint8(mv.Class)
				dyn := mv.Kind == core.Dynamic
				if dyn {
					bc = uint8(classes)
				}
				dead := false
				if flt != nil {
					dead = !flt.portAlive(int32(u), mv.Port)
				}
				w.WaitsOn = append(w.WaitsOn, obs.WaitTarget{
					Node: int32(t.Neighbor(u, int(mv.Port))), Port: mv.Port,
					Class: bc, Dynamic: dyn, Dead: dead,
				})
			}
			d.Waits = append(d.Waits, w)
		}
	}
	return d
}
