package sim

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// runStaticBuffered is a test helper: buffered engine, static injection.
func runStaticBuffered(t *testing.T, a core.Algorithm, src TrafficSource, cfg Config) Metrics {
	t.Helper()
	cfg.Algorithm = a
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.RunStatic(src, 1_000_000)
	if err != nil {
		t.Fatalf("%s: %v", a.Name(), err)
	}
	return m
}

// TestLatencyCalibrationComplement pins the timing model: with one packet
// per node and the complement permutation on an uncongested run, every
// packet travels exactly n hops and the latency must be exactly 2n+1 —
// Table 2's closed form.
func TestLatencyCalibrationComplement(t *testing.T) {
	for _, n := range []int{4, 6, 8} {
		a := core.NewHypercubeAdaptive(n)
		src := traffic.NewStaticSource(traffic.Complement{Bits: n}, 1<<n, 1, 1)
		m := runStaticBuffered(t, a, src, Config{Seed: 42})
		want := int64(2*n + 1)
		if m.LatencyMax != want {
			t.Errorf("n=%d: Lmax = %d, want %d", n, m.LatencyMax, want)
		}
		if m.AvgLatency() != float64(want) {
			t.Errorf("n=%d: Lavg = %.3f, want %d", n, m.AvgLatency(), want)
		}
		if m.Delivered != int64(1<<n) {
			t.Errorf("n=%d: delivered %d, want %d", n, m.Delivered, 1<<n)
		}
	}
}

// TestLatencyCalibrationRandom checks Table 1's shape: with one packet per
// node and random destinations the average latency is ~ 2*(n/2)+1 = n+1.
func TestLatencyCalibrationRandom(t *testing.T) {
	n := 8
	a := core.NewHypercubeAdaptive(n)
	src := traffic.NewStaticSource(traffic.Random{Nodes: 1 << n}, 1<<n, 1, 7)
	m := runStaticBuffered(t, a, src, Config{Seed: 42})
	if avg := m.AvgLatency(); avg < float64(n)-0.5 || avg > float64(n)+2.0 {
		t.Errorf("Lavg = %.2f, want ~%d", avg, n+1)
	}
}

// TestConservation checks that every injected packet is delivered exactly
// once, for every algorithm, on both engines.
func TestConservation(t *testing.T) {
	algos := []core.Algorithm{
		core.NewHypercubeAdaptive(4),
		core.NewHypercubeHung(4),
		core.NewHypercubeECube(4),
		core.NewMeshAdaptive(4, 4),
		core.NewMeshTwoPhase(4, 4),
		core.NewMeshXY(4, 4),
		core.NewShuffleExchangeAdaptive(4),
		core.NewShuffleExchangeStatic(4),
		core.NewTorusAdaptive(4, 4),
	}
	for _, a := range algos {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			nodes := a.Topology().Nodes()
			inner := traffic.NewStaticSource(traffic.Random{Nodes: nodes}, nodes, 3, 5)
			rec := &traffic.RecordingSource{Inner: inner}
			m := runStaticBuffered(t, a, rec, Config{Seed: 9})
			if int(m.Injected) != len(rec.Taken) {
				t.Errorf("injected %d, source recorded %d", m.Injected, len(rec.Taken))
			}
			if m.Delivered != m.Injected {
				t.Errorf("delivered %d of %d", m.Delivered, m.Injected)
			}
			if m.InFlight != 0 {
				t.Errorf("in flight after drain: %d", m.InFlight)
			}
			if want := int64(nodes * 3); m.Injected != want {
				t.Errorf("injected %d, want %d", m.Injected, want)
			}

			// Same traffic through the atomic engine.
			e, err := NewAtomicEngine(Config{Algorithm: a, Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			src2 := traffic.NewStaticSource(traffic.Random{Nodes: nodes}, nodes, 3, 5)
			m2, err := e.RunStatic(src2, 1_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if m2.Delivered != m2.Injected || m2.Injected != int64(nodes*3) {
				t.Errorf("atomic: delivered %d of %d", m2.Delivered, m2.Injected)
			}
		})
	}
}

// TestDeterminism: identical configurations produce identical metrics, and
// the parallel engine matches the sequential one exactly.
func TestDeterminism(t *testing.T) {
	run := func(workers int, seed int64) Metrics {
		a := core.NewHypercubeAdaptive(6)
		src := traffic.NewBernoulliSource(traffic.Random{Nodes: 64}, 64, 1.0, seed)
		e, err := NewEngine(Config{Algorithm: a, Seed: seed, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		m, err := e.RunDynamic(src, 100, 300)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a1, a2 := run(1, 3), run(1, 3)
	if a1 != a2 {
		t.Errorf("same seed, different metrics:\n%+v\n%+v", a1, a2)
	}
	p := run(4, 3)
	if a1 != p {
		t.Errorf("parallel run differs from sequential:\n%+v\n%+v", a1, p)
	}
	b := run(1, 4)
	if a1 == b {
		t.Error("different seeds produced identical metrics (suspicious)")
	}
}

// brokenRing is a deliberately deadlock-prone algorithm: a single queue
// class on a unidirectional ring with no ordering at all. Filling the ring
// wedges it; the watchdog must catch this.
type brokenRing struct {
	torus *topology.Torus
}

func (b *brokenRing) Name() string                                    { return "broken-ring" }
func (b *brokenRing) Topology() topology.Topology                     { return b.torus }
func (b *brokenRing) NumClasses() int                                 { return 1 }
func (b *brokenRing) ClassName(core.QueueClass) string                { return "q" }
func (b *brokenRing) Props() core.Props                               { return core.Props{} }
func (b *brokenRing) MaxHops(src, dst int32) int                      { return b.torus.Nodes() }
func (b *brokenRing) Inject(src, dst int32) (core.QueueClass, uint32) { return 0, 0 }

func (b *brokenRing) Candidates(node int32, class core.QueueClass, work uint32, dst int32, buf []core.Move) []core.Move {
	if node == dst {
		return append(buf, core.Move{Node: node, Port: core.PortInternal, Kind: core.Static, MinFree: 1, Deliver: true})
	}
	// Always move +1 around dimension 0, with no dateline: a textbook
	// store-and-forward deadlock.
	return append(buf, core.Move{
		Node: int32(b.torus.Neighbor(int(node), 0)), Port: 0,
		Class: 0, Kind: core.Static, MinFree: 1,
	})
}

// TestWatchdogCatchesDeadlock wedges the broken ring and checks both
// engines report ErrDeadlock rather than spinning forever.
func TestWatchdogCatchesDeadlock(t *testing.T) {
	ring := &brokenRing{torus: topology.NewTorus(6)}
	mk := func() TrafficSource {
		// Every node floods packets to the node 3 ahead: the ring wedges.
		sigma := make([]int32, 6)
		for i := range sigma {
			sigma[i] = int32((i + 3) % 6)
		}
		return traffic.NewStaticSource(&traffic.Permutation{Label: "shift3", Sigma: sigma}, 6, 10, 1)
	}
	cfg := Config{Algorithm: ring, QueueCap: 1, DeadlockWindow: 200}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var dl *ErrDeadlock
	if _, err := e.RunStatic(mk(), 1_000_000); !errors.As(err, &dl) {
		t.Errorf("buffered engine: expected ErrDeadlock, got %v", err)
	}
	ae, err := NewAtomicEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ae.RunStatic(mk(), 1_000_000); !errors.As(err, &dl) {
		t.Errorf("atomic engine: expected ErrDeadlock, got %v", err)
	}
}

// TestNoDeadlockUnderPressure floods every verified algorithm with heavy
// static traffic through tiny queues — the adversarial regime for deadlock —
// and requires completion on both engines. The shuffle-exchange instances
// include the degenerate cycles that need the bubble guard (QueueCap 2 is
// its minimum).
func TestNoDeadlockUnderPressure(t *testing.T) {
	algos := []core.Algorithm{
		core.NewHypercubeAdaptive(5),
		core.NewHypercubeHung(5),
		core.NewMeshAdaptive(5, 5),
		core.NewMeshTwoPhase(5, 5),
		core.NewMeshXY(5, 5),
		core.NewShuffleExchangeAdaptive(4),
		core.NewShuffleExchangeAdaptive(6),
		core.NewShuffleExchangeStatic(4),
		core.NewShuffleExchangeEager(6),
		core.NewCCCAdaptive(4),
		core.NewCCCStatic(3),
		core.NewTorusAdaptive(4, 4),
		core.NewTorusAdaptive(5, 5),
	}
	for _, a := range algos {
		a := a
		t.Run(a.Name()+"/"+a.Topology().Name(), func(t *testing.T) {
			nodes := a.Topology().Nodes()
			for _, cap := range []int{2, 5} {
				// Adversarial selection: deadlock freedom must not depend
				// on the policy being benign.
				srcAdv := traffic.NewStaticSource(traffic.Random{Nodes: nodes}, nodes, 4, 3)
				mAdv := runStaticBuffered(t, a, srcAdv, Config{QueueCap: cap, Seed: 13, Policy: PolicyLastFree})
				if mAdv.Delivered != int64(nodes*4) {
					t.Fatalf("cap=%d adversarial policy: delivered %d, want %d", cap, mAdv.Delivered, nodes*4)
				}
				src := traffic.NewStaticSource(traffic.Random{Nodes: nodes}, nodes, 8, 3)
				m := runStaticBuffered(t, a, src, Config{QueueCap: cap, Seed: 13})
				if m.Delivered != int64(nodes*8) {
					t.Fatalf("cap=%d: delivered %d, want %d", cap, m.Delivered, nodes*8)
				}
				if m.MaxQueue > cap {
					t.Fatalf("cap=%d: queue occupancy reached %d", cap, m.MaxQueue)
				}
				ae, err := NewAtomicEngine(Config{Algorithm: a, QueueCap: cap, Seed: 13})
				if err != nil {
					t.Fatal(err)
				}
				src2 := traffic.NewStaticSource(traffic.Random{Nodes: nodes}, nodes, 8, 3)
				m2, err := ae.RunStatic(src2, 1_000_000)
				if err != nil {
					t.Fatal(err)
				}
				if m2.Delivered != int64(nodes*8) {
					t.Fatalf("atomic cap=%d: delivered %d, want %d", cap, m2.Delivered, nodes*8)
				}
			}
		})
	}
}

// TestDynamicRunSmoke checks the λ=1 dynamic model's observables are sane.
func TestDynamicRunSmoke(t *testing.T) {
	a := core.NewHypercubeAdaptive(6)
	src := traffic.NewBernoulliSource(traffic.Random{Nodes: 64}, 64, 1.0, 21)
	e, err := NewEngine(Config{Algorithm: a, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.RunDynamic(src, 200, 500)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycles != 700 {
		t.Errorf("cycles = %d, want 700", m.Cycles)
	}
	// λ=1: every node attempts every measured cycle.
	if want := int64(64 * 500); m.Attempts != want {
		t.Errorf("attempts = %d, want %d", m.Attempts, want)
	}
	ir := m.InjectionRate()
	if ir <= 0.3 || ir > 1.0 {
		t.Errorf("I_r = %.2f out of plausible range", ir)
	}
	if avg := m.AvgLatency(); avg < 7 || avg > 40 {
		t.Errorf("Lavg = %.2f out of plausible range", avg)
	}
	if m.Measured == 0 || m.LatencyMax < int64(avgInt(m)) {
		t.Errorf("inconsistent latency stats: %+v", m)
	}
}

func avgInt(m Metrics) int { return int(m.AvgLatency()) }

// TestDynamicMovesOnlyForAdaptive: the static ablations must never take a
// dynamic link; the adaptive scheme under a congesting permutation must.
func TestDynamicMovesOnlyForAdaptive(t *testing.T) {
	n := 6
	nodes := 1 << n
	mk := func(a core.Algorithm) Metrics {
		src := traffic.NewStaticSource(traffic.Complement{Bits: n}, nodes, int64ToInt(8), 3)
		return runStaticBuffered(t, a, src, Config{Seed: 17})
	}
	if m := mk(core.NewHypercubeHung(n)); m.DynamicMoves != 0 {
		t.Errorf("hung scheme took %d dynamic moves", m.DynamicMoves)
	}
	if m := mk(core.NewHypercubeAdaptive(n)); m.DynamicMoves == 0 {
		t.Error("adaptive scheme took no dynamic moves under complement load")
	}
}

func int64ToInt(v int64) int { return int(v) }

// TestAdaptiveBeatsHungOnComplement is the paper's headline ablation in
// miniature: under the complement permutation with n packets per node, the
// fully-adaptive scheme must finish at least as fast as the hung DAG
// without dynamic links (it avoids the congestion around node 1...1).
func TestAdaptiveBeatsHungOnComplement(t *testing.T) {
	n := 7
	nodes := 1 << n
	run := func(a core.Algorithm) Metrics {
		src := traffic.NewStaticSource(traffic.Complement{Bits: n}, nodes, n, 3)
		return runStaticBuffered(t, a, src, Config{Seed: 29})
	}
	ad := run(core.NewHypercubeAdaptive(n))
	hung := run(core.NewHypercubeHung(n))
	if ad.AvgLatency() > hung.AvgLatency() {
		t.Errorf("adaptive Lavg %.2f > hung Lavg %.2f", ad.AvgLatency(), hung.AvgLatency())
	}
	if ad.Cycles > hung.Cycles {
		t.Errorf("adaptive drained in %d cycles, hung in %d", ad.Cycles, hung.Cycles)
	}
}

// TestPolicies exercises all selection policies end to end.
func TestPolicies(t *testing.T) {
	for _, pol := range []Policy{PolicyRandom, PolicyFirstFree, PolicyStaticFirst} {
		a := core.NewHypercubeAdaptive(5)
		src := traffic.NewStaticSource(traffic.Random{Nodes: 32}, 32, 4, 3)
		m := runStaticBuffered(t, a, src, Config{Seed: 31, Policy: pol})
		if m.Delivered != 32*4 {
			t.Errorf("policy %v: delivered %d", pol, m.Delivered)
		}
	}
}

// TestConfigValidation covers the constructor error paths.
func TestConfigValidation(t *testing.T) {
	if _, err := NewEngine(Config{}); err == nil {
		t.Error("nil algorithm accepted")
	}
	if _, err := NewEngine(Config{Algorithm: core.NewHypercubeAdaptive(3), QueueCap: -1}); err == nil {
		t.Error("negative queue capacity accepted")
	}
}

// TestMaxCyclesExceeded checks the safety cap error path (not a deadlock:
// just too little time to drain).
func TestMaxCyclesExceeded(t *testing.T) {
	a := core.NewHypercubeAdaptive(5)
	src := traffic.NewStaticSource(traffic.Random{Nodes: 32}, 32, 10, 3)
	e, err := NewEngine(Config{Algorithm: a, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunStatic(src, 3); err == nil {
		t.Error("expected a max-cycles error")
	}
}

// TestMetricsHelpers covers the Metrics accessors.
func TestMetricsHelpers(t *testing.T) {
	m := Metrics{LatencySum: 30, Measured: 4, Attempts: 10, Successes: 9}
	if m.AvgLatency() != 7.5 {
		t.Errorf("AvgLatency = %v", m.AvgLatency())
	}
	if m.InjectionRate() != 0.9 {
		t.Errorf("InjectionRate = %v", m.InjectionRate())
	}
	var zero Metrics
	if zero.AvgLatency() != 0 || zero.InjectionRate() != 0 {
		t.Error("zero metrics should report zero rates")
	}
	if zero.String() == "" || m.String() == "" {
		t.Error("String() empty")
	}
}

// TestPolicyString covers the Stringer.
func TestPolicyString(t *testing.T) {
	cases := map[Policy]string{
		PolicyRandom: "random", PolicyFirstFree: "first-free",
		PolicyStaticFirst: "static-first", PolicyLastFree: "last-free",
		Policy(9): "policy(9)",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}
