package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/traffic"
)

// BenchmarkHotPathDim10 times the buffered engine's no-fault hot path on
// the paper's λ=1 dynamic random workload (dim-10 hypercube, 500 cycles).
// It is the in-tree twin of cmd/enginebench's dim-10 cell: use it with
// -count and benchstat-style min/median comparison when checking a hot-loop
// change, since single runs on a shared host swing several percent.
func BenchmarkHotPathDim10(b *testing.B) {
	a := core.NewHypercubeAdaptive(10)
	nodes := a.Topology().Nodes()
	for b.Loop() {
		e, err := NewEngine(Config{Algorithm: a, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		src := traffic.NewBernoulliSource(traffic.Random{Nodes: nodes}, nodes, 1.0, 7)
		if _, err := e.RunDynamic(src, 50, 450); err != nil {
			b.Fatal(err)
		}
	}
}
