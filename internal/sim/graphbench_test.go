package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// BenchmarkGraphStep measures one Step of a warmed graph-adaptive run, per
// engine and generator family, on both routing paths: the compiled next-hop
// route tables (the default) and the uncompiled interface-scan fallback
// (Config.DisableRouteTable). The table's win grows with port count — the
// scan pays two interface calls per port per decision, the table one load —
// so the high-radix families (hyperx, fat-tree) separate the paths hardest.
// The cross-cell trajectory lives in BENCH_engine.json (cmd/enginebench);
// these exist for quick same-host A/B and profiling of the routing share.
func BenchmarkGraphStep(b *testing.B) {
	families := []struct {
		name   string
		build  func() (*topology.Graph, error)
		lambda float64
	}{
		{"random-regular-256", func() (*topology.Graph, error) { return topology.NewRandomRegular(256, 4, 1) }, 0.05},
		{"hyperx-16x16", func() (*topology.Graph, error) { return topology.NewHyperX(16, 16) }, 0.1},
		{"fat-tree-32x16", func() (*topology.Graph, error) { return topology.NewFatTree(32, 16) }, 0.1},
	}
	for _, engine := range []string{"buffered", "atomic"} {
		for _, fam := range families {
			for _, path := range []struct {
				name string
				scan bool
			}{{"table", false}, {"scan", true}} {
				b.Run(engine+"/"+fam.name+"/"+path.name, func(b *testing.B) {
					g, err := fam.build()
					if err != nil {
						b.Fatal(err)
					}
					algo, err := core.NewGraphAdaptive(g)
					if err != nil {
						b.Fatal(err)
					}
					eng, err := NewSimulator(engine, Config{
						Algorithm: algo, Seed: 1, DisableRouteTable: path.scan,
					})
					if err != nil {
						b.Fatal(err)
					}
					nodes := g.Nodes()
					src := traffic.NewBernoulliSource(traffic.Random{Nodes: nodes}, nodes, fam.lambda, 3)
					eng.Start(src, DynamicPlan(0, 1<<30))
					for i := 0; i < 100; i++ {
						eng.Step()
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						eng.Step()
					}
				})
			}
		}
	}
}
