package sim

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// TestDeterminismAcrossWorkers pins the engine's bit-determinism contract:
// for a fixed seed, every Metrics field must be identical regardless of the
// worker count, across topologies, injection models, and the switching /
// lookahead variants. The worker counts are chosen to exercise sequential
// mode, an even shard split, and a ragged split (7 workers over a
// power-of-two node count).
func TestDeterminismAcrossWorkers(t *testing.T) {
	algos := []struct {
		name string
		mk   func() core.Algorithm
	}{
		{"hypercube", func() core.Algorithm { return core.NewHypercubeAdaptive(6) }},
		{"mesh", func() core.Algorithm { return core.NewMeshAdaptive(8, 8) }},
		{"torus", func() core.Algorithm { return core.NewTorusAdaptive(8, 8) }},
	}
	variants := []struct {
		name string
		ct   bool
		rl   bool
	}{
		{"plain", false, false},
		{"cutthrough", true, false},
		{"lookahead", false, true},
		{"cutthrough+lookahead", true, true},
	}
	for _, al := range algos {
		for _, inject := range []string{"static", "dynamic"} {
			for _, v := range variants {
				t.Run(fmt.Sprintf("%s/%s/%s", al.name, inject, v.name), func(t *testing.T) {
					t.Parallel()
					run := func(workers int) Metrics {
						a := al.mk()
						nodes := a.Topology().Nodes()
						cfg := Config{
							Algorithm:       a,
							Seed:            12345,
							Workers:         workers,
							CutThrough:      v.ct,
							RemoteLookahead: v.rl,
						}
						e, err := NewEngine(cfg)
						if err != nil {
							t.Fatal(err)
						}
						var m Metrics
						if inject == "static" {
							src := traffic.NewStaticSource(traffic.Random{Nodes: nodes}, nodes, 3, 99)
							m, err = e.RunStatic(src, 1_000_000)
						} else {
							src := traffic.NewBernoulliSource(traffic.Random{Nodes: nodes}, nodes, 0.5, 99)
							m, err = e.RunDynamic(src, 50, 150)
						}
						if err != nil {
							t.Fatalf("workers=%d: %v", workers, err)
						}
						return m
					}
					want := run(1)
					for _, w := range []int{2, 7} {
						if got := run(w); got != want {
							t.Errorf("workers=%d diverged from workers=1:\n got  %+v\n want %+v", w, got, want)
						}
					}
				})
			}
		}
	}
}

// TestDeterminismRebalance pins the shard-layout-independence contract the
// occupancy-weighted rebalancer relies on: re-cutting the boundaries mid-run
// must leave every Metrics field bit-identical to the sequential run, for
// any worker count, re-cut period, and pipeline (fused or split). The
// hotspot pattern concentrates queue population on one node, so the re-cut
// actually moves boundaries instead of reproducing the uniform split.
func TestDeterminismRebalance(t *testing.T) {
	run := func(workers, rebalance int, disableFusion bool) Metrics {
		a := core.NewHypercubeAdaptive(6)
		nodes := a.Topology().Nodes()
		e, err := NewEngine(Config{
			Algorithm:      a,
			Seed:           12345,
			Workers:        workers,
			RebalanceEvery: rebalance,
			DisableFusion:  disableFusion,
		})
		if err != nil {
			t.Fatal(err)
		}
		src := traffic.NewBernoulliSource(traffic.Hotspot{Nodes: nodes, Hot: 3, Fraction: 0.5}, nodes, 0.5, 99)
		m, err := e.RunDynamic(src, 50, 150)
		if err != nil {
			t.Fatalf("workers=%d rebalance=%d: %v", workers, rebalance, err)
		}
		return m
	}
	want := run(1, 0, false)
	for _, workers := range []int{2, 7} {
		for _, rebalance := range []int{0, 8, 64} {
			for _, df := range []bool{false, true} {
				if got := run(workers, rebalance, df); got != want {
					t.Errorf("workers=%d rebalance=%d disableFusion=%v diverged:\n got  %+v\n want %+v",
						workers, rebalance, df, got, want)
				}
			}
		}
	}
}

// TestDeterminismCanonicalSnapshot extends the contract to the metrics core:
// the Canonical() view of the final snapshot must be identical across worker
// counts and rebalancing, so observability artifacts diff clean in CI.
func TestDeterminismCanonicalSnapshot(t *testing.T) {
	run := func(workers, rebalance int) [obs.NumCounters]int64 {
		a := core.NewHypercubeAdaptive(6)
		nodes := a.Topology().Nodes()
		e, err := NewEngine(Config{
			Algorithm:      a,
			Seed:           7,
			Workers:        workers,
			RebalanceEvery: rebalance,
			Metrics:        true,
		})
		if err != nil {
			t.Fatal(err)
		}
		src := traffic.NewBernoulliSource(traffic.Random{Nodes: nodes}, nodes, 0.5, 99)
		if _, err := e.RunDynamic(src, 50, 150); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		snap := e.Obs().Latest().Canonical()
		return snap.Counters
	}
	want := run(1, 0)
	for _, tc := range []struct{ workers, rebalance int }{{2, 0}, {2, 8}, {7, 16}} {
		if got := run(tc.workers, tc.rebalance); got != want {
			t.Errorf("workers=%d rebalance=%d: canonical counters diverged:\n got  %v\n want %v",
				tc.workers, tc.rebalance, got, want)
		}
	}
}

// manyClassRing is a hop-ordered structured-buffer-pool scheme on a 6-node
// ring that declares the maximum representable number of queue classes
// (QueueClass is uint8, so 256). Packets are injected into class 250 and
// ascend one class per hop, and every hop also offers a dynamic alternative
// whose link buffer is the shared dynamic buffer at index NumClasses == 256.
// The engine's per-worker scratch must therefore be sized from the
// algorithm, not a fixed array; a fixed [256] lens table overflows here.
type manyClassRing struct {
	torus *topology.Torus
}

func (r *manyClassRing) Name() string                       { return "many-class-ring" }
func (r *manyClassRing) Topology() topology.Topology        { return r.torus }
func (r *manyClassRing) NumClasses() int                    { return 256 }
func (r *manyClassRing) ClassName(c core.QueueClass) string { return fmt.Sprintf("hop%d", c) }
func (r *manyClassRing) Props() core.Props                  { return core.Props{} }
func (r *manyClassRing) Inject(src, dst int32) (core.QueueClass, uint32) {
	return 250, 0
}

func (r *manyClassRing) MaxHops(src, dst int32) int {
	return (int(dst) - int(src) + r.torus.Nodes()) % r.torus.Nodes()
}

func (r *manyClassRing) Candidates(node int32, class core.QueueClass, work uint32, dst int32, buf []core.Move) []core.Move {
	if node == dst {
		return append(buf, core.Move{Node: node, Port: core.PortInternal, Kind: core.Static, MinFree: 1, Deliver: true})
	}
	next := int32(r.torus.Neighbor(int(node), 0))
	// Hop-ordered classes keep the static QDG acyclic; the dynamic twin of
	// the same move exists purely to route through buffer class 256.
	buf = append(buf, core.Move{Node: next, Port: 0, Class: class + 1, Kind: core.Static, MinFree: 1})
	return append(buf, core.Move{Node: next, Port: 0, Class: class + 1, Kind: core.Dynamic, MinFree: 1})
}

// TestEngineManyClasses regression-tests the worker-scratch sizing: with 256
// queue classes the dynamic link buffer has index 256, one past what a fixed
// 256-entry scratch table can address. The run must complete (not panic) and
// deliver every packet.
func TestEngineManyClasses(t *testing.T) {
	a := &manyClassRing{torus: topology.NewTorus(6)}
	for _, workers := range []int{1, 2} {
		e, err := NewEngine(Config{Algorithm: a, Seed: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		src := traffic.NewStaticSource(traffic.Random{Nodes: 6}, 6, 4, 11)
		m, err := e.RunStatic(src, 100_000)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if m.Delivered != m.Injected || m.InFlight != 0 {
			t.Errorf("workers=%d: delivered %d of %d, in-flight %d", workers, m.Delivered, m.Injected, m.InFlight)
		}
		if m.DynamicMoves == 0 {
			t.Errorf("workers=%d: no dynamic moves; the test did not exercise buffer class 256", workers)
		}
	}
}
