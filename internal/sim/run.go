package sim

import (
	"context"

	"repro/internal/obs"
)

// Plan describes the schedule of a run: either drain a finite (static)
// workload to completion, or simulate a fixed warmup+measure window of
// dynamic injection. Build one with StaticPlan or DynamicPlan.
type Plan struct {
	// Drain, when true, runs until the traffic source is exhausted and the
	// network is empty (the paper's static injection model).
	Drain bool
	// Warmup and Measure bound the dynamic model's measurement window:
	// the run simulates Warmup+Measure cycles and the latency / injection-
	// rate statistics cover only the measured part.
	Warmup, Measure int64
	// MaxCycles aborts the run with an error after this many cycles
	// (0 = no bound; ignored for dynamic plans, which are bounded by
	// Warmup+Measure).
	MaxCycles int64
}

// StaticPlan returns a drain-to-completion plan with the given cycle budget
// (0 = unbounded).
func StaticPlan(maxCycles int64) Plan {
	return Plan{Drain: true, MaxCycles: maxCycles}
}

// DynamicPlan returns a fixed-window dynamic plan.
func DynamicPlan(warmup, measure int64) Plan {
	return Plan{Warmup: warmup, Measure: measure}
}

// params lowers the plan to the engine loop's controls.
func (p Plan) params() (win runWindow, stopAt, maxCycles int64, drain bool) {
	if p.Drain {
		return runWindow{0, -1}, 0, p.MaxCycles, true
	}
	end := p.Warmup + p.Measure
	return runWindow{p.Warmup, end}, end, end, false
}

// RunResult is what a run hands back: the aggregate Metrics, and — when the
// metrics core was enabled (an Observer attached or Config.Metrics set) —
// the final metric snapshot.
type RunResult struct {
	// Metrics aggregates the paper's observables over the run.
	Metrics Metrics
	// Snapshot is the final merged metric snapshot; the zero value unless
	// Observed.
	Snapshot obs.Snapshot
	// Observed reports whether the metrics core was enabled for the run.
	Observed bool
	// Canceled reports that the run was stopped by context cancellation or
	// deadline; Metrics and Snapshot then cover the completed cycles.
	Canceled bool
}

// Run simulates according to plan, stopping early — within one cycle — if
// ctx is canceled or its deadline passes. On cancellation it returns the
// partial RunResult together with ctx.Err(). A nil ctx means never cancel.
func (e *Engine) Run(ctx context.Context, src TrafficSource, plan Plan) (RunResult, error) {
	win, stopAt, maxCycles, drain := plan.params()
	return e.run(ctx, src, win, stopAt, maxCycles, drain)
}

// Run simulates the atomic model according to plan; see (*Engine).Run.
func (e *AtomicEngine) Run(ctx context.Context, src TrafficSource, plan Plan) (RunResult, error) {
	win, stopAt, maxCycles, drain := plan.params()
	return e.run(ctx, src, win, stopAt, maxCycles, drain)
}

// Obs returns the engine's metrics core, or nil when observability is off
// (no Observer attached and Config.Metrics unset). The core's Latest and
// Handler are safe to use concurrently with a run — the hook behind
// routesim's /metrics endpoint.
func (e *Engine) Obs() *obs.Core { return e.obsCore }

// Obs returns the atomic engine's metrics core, or nil; see (*Engine).Obs.
func (e *AtomicEngine) Obs() *obs.Core { return e.obsCore }

// obsState is the per-engine observability plumbing shared by both engines.
type obsState struct {
	// obsOn gates every metric instrumentation site in the hot loop.
	obsOn    bool
	obsCore  *obs.Core
	observer obs.Observer
}

// initObs builds the metrics core when the configuration asks for it.
func (s *obsState) initObs(cfg *Config) {
	s.observer = cfg.Observer
	s.obsOn = cfg.Observer != nil || cfg.Metrics
	if s.obsOn {
		s.obsCore = obs.NewCore()
	}
}

// finish assembles the RunResult for a completed (or aborted) run and fires
// the observer's OnDone probe exactly once.
func (s *obsState) finish(m Metrics, canceled bool) RunResult {
	res := RunResult{Metrics: m, Canceled: canceled}
	if s.obsOn {
		snap := s.obsCore.EndCycle(m.Cycles)
		res.Snapshot = *snap
		res.Observed = true
		if s.observer != nil {
			s.observer.OnDone(snap)
		}
	}
	return res
}

// canceled reports whether ctx is done (nil ctx never is).
func canceled(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}
