package sim

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/traffic"
)

// TestObservedDeterminismAcrossWorkers pins the observability contract:
// with a sampling observer attached, Metrics stay bit-identical to an
// unobserved run, and the canonical metric snapshots (worker-dependent
// fields zeroed) are bit-identical across worker counts — including the
// sampler's whole time series.
func TestObservedDeterminismAcrossWorkers(t *testing.T) {
	type outcome struct {
		m    Metrics
		snap obs.Snapshot
		ts   []obs.Sample
	}
	run := func(workers int, observe bool) outcome {
		a := core.NewHypercubeAdaptive(6)
		nodes := a.Topology().Nodes()
		cfg := Config{Algorithm: a, Seed: 12345, Workers: workers}
		var smp *obs.Sampler
		if observe {
			smp = obs.NewSampler(25)
			cfg.Observer = smp
		}
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		src := traffic.NewStaticSource(traffic.Random{Nodes: nodes}, nodes, 3, 99)
		res, err := e.Run(context.Background(), src, StaticPlan(1_000_000))
		if err != nil {
			t.Fatalf("workers=%d observe=%v: %v", workers, observe, err)
		}
		out := outcome{m: res.Metrics, snap: res.Snapshot.Canonical()}
		if observe {
			if !res.Observed {
				t.Fatalf("workers=%d: observer attached but Observed=false", workers)
			}
			out.ts = smp.Samples
		}
		return out
	}

	base := run(1, false)
	want := run(1, true)
	if want.m != base.m {
		t.Fatalf("attaching an observer changed Metrics:\n with    %+v\n without %+v", want.m, base.m)
	}
	if want.snap.Counter(obs.CDelivered) != want.m.Delivered {
		t.Fatalf("snapshot delivered %d, metrics %d", want.snap.Counter(obs.CDelivered), want.m.Delivered)
	}
	for _, w := range []int{4, 7} {
		if got := run(w, false); got.m != base.m {
			t.Errorf("workers=%d unobserved Metrics diverged:\n got  %+v\n want %+v", w, got.m, base.m)
		}
		got := run(w, true)
		if got.m != want.m {
			t.Errorf("workers=%d observed Metrics diverged:\n got  %+v\n want %+v", w, got.m, want.m)
		}
		if got.snap != want.snap {
			t.Errorf("workers=%d canonical snapshot diverged:\n got  %+v\n want %+v", w, got.snap, want.snap)
		}
		if len(got.ts) != len(want.ts) {
			t.Errorf("workers=%d sampler series length %d, want %d", w, len(got.ts), len(want.ts))
			continue
		}
		for i := range got.ts {
			if got.ts[i] != want.ts[i] {
				t.Errorf("workers=%d sample %d diverged:\n got  %+v\n want %+v", w, i, got.ts[i], want.ts[i])
				break
			}
		}
	}
}

// cancelAt cancels its context the first time OnCycle sees the target cycle.
type cancelAt struct {
	obs.Base
	at     int64
	cancel context.CancelFunc
	seen   int64
}

func (c *cancelAt) OnCycle(cycle int64, _ *obs.Snapshot) {
	c.seen = cycle
	if cycle == c.at {
		c.cancel()
	}
}

// TestRunCancellation checks that Run stops within one cycle of
// cancellation and hands back the partial result.
func TestRunCancellation(t *testing.T) {
	a := core.NewHypercubeAdaptive(6)
	nodes := a.Topology().Nodes()
	ctx, cancel := context.WithCancel(context.Background())
	obsrv := &cancelAt{at: 40, cancel: cancel}
	e, err := NewEngine(Config{Algorithm: a, Seed: 7, Workers: 2, Observer: obsrv})
	if err != nil {
		t.Fatal(err)
	}
	src := traffic.NewBernoulliSource(traffic.Random{Nodes: nodes}, nodes, 0.5, 3)
	res, err := e.Run(ctx, src, DynamicPlan(1000, 1000))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !res.Canceled {
		t.Fatal("RunResult.Canceled = false")
	}
	if res.Metrics.Cycles != obsrv.at+1 {
		t.Errorf("stopped at cycle %d, canceled during cycle %d", res.Metrics.Cycles, obsrv.at)
	}
	if res.Metrics.Injected == 0 {
		t.Error("partial metrics empty")
	}
	if !res.Observed || res.Snapshot.Counter(obs.CInjected) != res.Metrics.Injected {
		t.Errorf("partial snapshot injected=%d, metrics=%d",
			res.Snapshot.Counter(obs.CInjected), res.Metrics.Injected)
	}
}

// TestRunCancellationAtomic is the same contract on the atomic engine.
func TestRunCancellationAtomic(t *testing.T) {
	a := core.NewHypercubeAdaptive(5)
	nodes := a.Topology().Nodes()
	ctx, cancel := context.WithCancel(context.Background())
	obsrv := &cancelAt{at: 25, cancel: cancel}
	e, err := NewAtomicEngine(Config{Algorithm: a, Seed: 7, Observer: obsrv})
	if err != nil {
		t.Fatal(err)
	}
	src := traffic.NewBernoulliSource(traffic.Random{Nodes: nodes}, nodes, 0.5, 3)
	res, err := e.Run(ctx, src, DynamicPlan(1000, 1000))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !res.Canceled || res.Metrics.Cycles != obsrv.at+1 {
		t.Errorf("canceled=%v cycles=%d (canceled during cycle %d)", res.Canceled, res.Metrics.Cycles, obsrv.at)
	}
}

// TestRunDeadlineAlreadyExpired: a context that is already done must stop
// the run before the first cycle.
func TestRunDeadlineAlreadyExpired(t *testing.T) {
	a := core.NewHypercubeAdaptive(4)
	nodes := a.Topology().Nodes()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e, err := NewEngine(Config{Algorithm: a, Seed: 1, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	src := traffic.NewStaticSource(traffic.Random{Nodes: nodes}, nodes, 1, 1)
	res, err := e.Run(ctx, src, StaticPlan(0))
	if !errors.Is(err, context.Canceled) || !res.Canceled {
		t.Fatalf("err=%v canceled=%v", err, res.Canceled)
	}
	if res.Metrics.Cycles != 0 || res.Metrics.Injected != 0 {
		t.Errorf("expired context still simulated: %+v", res.Metrics)
	}
}

// TestLegacyCallbacksStillFire: the deprecated OnDeliver/OnCycle fields
// keep working alongside an Observer.
func TestLegacyCallbacksStillFire(t *testing.T) {
	a := core.NewHypercubeAdaptive(4)
	nodes := a.Topology().Nodes()
	var legacyDeliver, legacyCycle int64
	lat := obs.NewLatency()
	e, err := NewEngine(Config{
		Algorithm: a, Seed: 3,
		Observer:  lat,
		OnDeliver: func(core.Packet, int64) { legacyDeliver++ },
		OnCycle:   func(int64) { legacyCycle++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	src := traffic.NewStaticSource(traffic.Random{Nodes: nodes}, nodes, 2, 5)
	res, err := e.Run(context.Background(), src, StaticPlan(100_000))
	if err != nil {
		t.Fatal(err)
	}
	if legacyDeliver != res.Metrics.Delivered || lat.Count() != res.Metrics.Delivered {
		t.Errorf("deliver taps: legacy=%d observer=%d engine=%d", legacyDeliver, lat.Count(), res.Metrics.Delivered)
	}
	if legacyCycle != res.Metrics.Cycles {
		t.Errorf("legacy OnCycle fired %d times over %d cycles", legacyCycle, res.Metrics.Cycles)
	}
}
