package sim

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/traffic"
)

// mkTrafficSource builds one of the traffic models over the given node
// count; the names match the spec grammar's traffic kinds.
func mkTrafficSource(t *testing.T, kind string, nodes int, seed int64) TrafficSource {
	t.Helper()
	pat := traffic.Random{Nodes: nodes}
	switch kind {
	case "static":
		return traffic.NewStaticSource(pat, nodes, 3, seed)
	case "bernoulli-1.0":
		return traffic.NewBernoulliSource(pat, nodes, 1.0, seed)
	case "bernoulli-0.3":
		return traffic.NewBernoulliSource(pat, nodes, 0.3, seed)
	case "mmpp":
		return traffic.NewMMPP(pat, nodes, 0.9, 0.05, 0.1, 0.1, seed)
	case "onoff":
		return traffic.NewOnOff(pat, nodes, 0.9, 0.1, 64, 32, seed)
	default:
		t.Fatalf("unknown source kind %q", kind)
		return nil
	}
}

// TestBatchInjectParity pins the tentpole contract: the batched injection
// path (BatchSource.FillCycle) must produce bit-identical Metrics to the
// scalar Wants/Take path, for every source that implements it, on both
// engines and across worker counts.
func TestBatchInjectParity(t *testing.T) {
	kinds := []string{"static", "bernoulli-1.0", "bernoulli-0.3", "mmpp", "onoff"}
	engines := []struct {
		kind    string
		workers []int
	}{
		{"buffered", []int{1, 2, 7}},
		{"atomic", []int{1}},
	}
	for _, srcKind := range kinds {
		for _, eng := range engines {
			for _, workers := range eng.workers {
				name := fmt.Sprintf("%s/%s/workers=%d", srcKind, eng.kind, workers)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					run := func(noBatch bool) Metrics {
						a := core.NewHypercubeAdaptive(6)
						nodes := a.Topology().Nodes()
						e, err := NewSimulator(eng.kind, Config{
							Algorithm:          a,
							Seed:               7,
							Workers:            workers,
							DisableBatchInject: noBatch,
						})
						if err != nil {
							t.Fatal(err)
						}
						src := mkTrafficSource(t, srcKind, nodes, 99)
						plan := DynamicPlan(50, 200)
						if srcKind == "static" {
							plan = StaticPlan(1_000_000)
						}
						res, err := e.Run(context.Background(), src, plan)
						if err != nil {
							t.Fatal(err)
						}
						return res.Metrics
					}
					batch, scalar := run(false), run(true)
					if batch != scalar {
						t.Errorf("batched path diverged from scalar:\n batch  %+v\n scalar %+v", batch, scalar)
					}
				})
			}
		}
	}
}

// TestBatchParityAcrossEngines cross-checks that for the atomic-model
// semantics shared by nothing (each engine has its own), the batch toggle
// changes nothing per engine — and that recording through a RecordingSource
// on the batched path records exactly the injections the run performed.
func TestBatchRecordingCounts(t *testing.T) {
	a := core.NewHypercubeAdaptive(6)
	nodes := a.Topology().Nodes()
	e, err := NewEngine(Config{Algorithm: a, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	inner := traffic.NewBernoulliSource(traffic.Random{Nodes: nodes}, nodes, 0.6, 99)
	rec := &traffic.RecordingSource{Inner: inner, Cap: 1 << 16}
	m, err := e.RunDynamic(rec, 20, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rec.TotalTaken() != m.Injected {
		t.Errorf("recorded %d injections, engine injected %d", rec.TotalTaken(), m.Injected)
	}
	if m.Injected == 0 {
		t.Error("no injections recorded")
	}
}
