package sim

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
)

// Simulator is the engine-agnostic view of a packet-routing simulation run.
// Both Engine (the buffered cycle-accurate model of Sections 6/7.1) and
// AtomicEngine (the abstract Route(q) model of Section 2) implement it, so
// tools and experiments pick the model with NewSimulator and drive it
// through one API instead of branching on the concrete type.
type Simulator interface {
	// Run simulates according to plan, stopping early if ctx is canceled.
	Run(ctx context.Context, src TrafficSource, plan Plan) (RunResult, error)
	// Start begins a stepwise run; Step then simulates one cycle at a time.
	Start(src TrafficSource, plan Plan)
	// Step simulates one cycle of the started plan. It reports done when the
	// plan completed (err then carries any failure, e.g. *ErrDeadlock); the
	// outcome is also available from Result.
	Step() (done bool, err error)
	// Result returns the outcome of the finished stepwise run.
	Result() (RunResult, error)
	// Metrics returns the aggregate metrics of the run so far.
	Metrics() Metrics
	// Snapshot visits every non-empty central queue (between cycles only).
	Snapshot(f func(QueueSnapshot))
	// InNetwork counts the packets currently held anywhere in the simulator.
	InNetwork() int
	// Obs returns the simulator's metrics core, or nil when observability is
	// off.
	Obs() *obs.Core
	// PhaseTimes returns the per-phase wall-clock breakdown accumulated so
	// far; all zero unless Config.PhaseProf was set.
	PhaseTimes() PhaseTimes
	// Algorithm returns the routing algorithm under simulation.
	Algorithm() core.Algorithm
}

// Compile-time checks that both engines satisfy the interface.
var (
	_ Simulator = (*Engine)(nil)
	_ Simulator = (*AtomicEngine)(nil)
)

// Algorithm returns the routing algorithm the engine simulates.
func (e *Engine) Algorithm() core.Algorithm { return e.algo }

// Algorithm returns the routing algorithm the engine simulates.
func (e *AtomicEngine) Algorithm() core.Algorithm { return e.algo }

// EngineKinds lists the valid NewSimulator kinds.
var EngineKinds = []string{"buffered", "atomic"}

// NewSimulator builds the simulation engine selected by kind: "buffered"
// (or "") for the cycle-accurate Engine, "atomic" for the AtomicEngine.
func NewSimulator(kind string, cfg Config) (Simulator, error) {
	switch kind {
	case "", "buffered":
		return NewEngine(cfg)
	case "atomic":
		return NewAtomicEngine(cfg)
	default:
		return nil, fmt.Errorf("sim: unknown engine %q, valid: %v", kind, EngineKinds)
	}
}
