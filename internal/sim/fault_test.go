package sim

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// faultyPlan builds the reference fault workload used by the determinism
// tests: a seeded 5% of links dead from the start, one timed link outage,
// and one node that dies and revives mid-run.
func faultyPlan() *fault.Plan {
	p := &fault.Plan{}
	p.FailRandomLinks(0.05, 1, 0, fault.Forever)
	p.FailLink(3, 2, 3, 40)
	p.FailNode(9, 2, 100)
	return p
}

// TestFaultDeterminismAcrossWorkers pins the robustness contract: a
// fault-enabled run — random dead links, a timed link outage, a node
// kill/revive — produces bit-identical Metrics and canonical metric
// snapshots at every worker count.
func TestFaultDeterminismAcrossWorkers(t *testing.T) {
	type outcome struct {
		m    Metrics
		snap obs.Snapshot
	}
	run := func(workers int, observe bool) outcome {
		a := core.NewHypercubeAdaptive(6)
		nodes := a.Topology().Nodes()
		cfg := Config{Algorithm: a, Seed: 12345, Workers: workers, Faults: faultyPlan()}
		if observe {
			cfg.Observer = obs.NewSampler(25)
		}
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		src := traffic.NewStaticSource(traffic.Random{Nodes: nodes}, nodes, 3, 99)
		res, err := e.Run(context.Background(), src, StaticPlan(1_000_000))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return outcome{m: res.Metrics, snap: res.Snapshot.Canonical()}
	}

	base := run(1, false)
	want := run(1, true)
	if want.m != base.m {
		t.Fatalf("attaching an observer changed fault-run Metrics:\n with    %+v\n without %+v", want.m, base.m)
	}
	if base.m.Dropped == 0 {
		t.Error("reference fault run dropped nothing; the fixture is not exercising faults")
	}
	if base.m.Injected != base.m.Delivered+base.m.Dropped {
		t.Errorf("conservation violated: injected %d != delivered %d + dropped %d",
			base.m.Injected, base.m.Delivered, base.m.Dropped)
	}
	for _, w := range []int{4, 7} {
		if got := run(w, false); got.m != base.m {
			t.Errorf("workers=%d fault Metrics diverged:\n got  %+v\n want %+v", w, got.m, base.m)
		}
		got := run(w, true)
		if got.m != want.m {
			t.Errorf("workers=%d observed fault Metrics diverged:\n got  %+v\n want %+v", w, got.m, want.m)
		}
		if got.snap != want.snap {
			t.Errorf("workers=%d canonical fault snapshot diverged:\n got  %+v\n want %+v", w, got.snap, want.snap)
		}
	}
}

// TestFaultDegradedDeliveryDim8 is the acceptance fixture from the issue: a
// dim-8 hypercube with a seeded 5% of links dead from cycle 0 must deliver
// every routable packet of a one-per-node static workload — no watchdog
// firing, nothing left in flight, and Injected = Delivered + Dropped exact.
func TestFaultDegradedDeliveryDim8(t *testing.T) {
	plan := &fault.Plan{}
	plan.FailRandomLinks(0.05, 1, 0, fault.Forever)
	for _, engine := range []string{"buffered", "atomic"} {
		a := core.NewHypercubeAdaptive(8)
		nodes := a.Topology().Nodes()
		eng, err := NewSimulator(engine, Config{
			Algorithm: a, Seed: 7, Faults: plan, Observer: &obs.Base{},
		})
		if err != nil {
			t.Fatal(err)
		}
		src := traffic.NewStaticSource(traffic.Random{Nodes: nodes}, nodes, 1, 42)
		res, err := eng.Run(context.Background(), src, StaticPlan(1_000_000))
		if err != nil {
			t.Errorf("%s: run failed: %v", engine, err)
			continue
		}
		m := res.Metrics
		if m.Injected != int64(nodes) {
			t.Errorf("%s: injected %d, want %d", engine, m.Injected, nodes)
		}
		if m.InFlight != 0 {
			t.Errorf("%s: %d packets left in flight", engine, m.InFlight)
		}
		if m.Injected != m.Delivered+m.Dropped {
			t.Errorf("%s: conservation violated: injected %d != delivered %d + dropped %d",
				engine, m.Injected, m.Delivered, m.Dropped)
		}
		// No node faults, so every destination is reachable: degraded
		// routing must deliver every single packet.
		if m.Delivered != m.Injected {
			t.Errorf("%s: only %d/%d delivered under 5%% dead links", engine, m.Delivered, m.Injected)
		}
		if res.Snapshot.Gauge(obs.GDeadLinks) == 0 {
			t.Errorf("%s: GDeadLinks gauge is zero with 5%% of links dead", engine)
		}
	}
}

// dumpCatcher records the wait-for dump the watchdog hands to observers
// implementing obs.DeadlockObserver.
type dumpCatcher struct {
	obs.Base
	dump *obs.DeadlockDump
}

func (d *dumpCatcher) OnDeadlock(dump *obs.DeadlockDump) { d.dump = dump }

// TestWatchdogDumpReportsWaits wedges the broken ring and checks both
// engines attach a populated wait-for dump to ErrDeadlock and deliver the
// same dump to a DeadlockObserver.
func TestWatchdogDumpReportsWaits(t *testing.T) {
	ring := &brokenRing{torus: topology.NewTorus(6)}
	mk := func() TrafficSource {
		sigma := make([]int32, 6)
		for i := range sigma {
			sigma[i] = int32((i + 3) % 6)
		}
		return traffic.NewStaticSource(&traffic.Permutation{Label: "shift3", Sigma: sigma}, 6, 10, 1)
	}
	for _, engine := range []string{"buffered", "atomic"} {
		catcher := &dumpCatcher{}
		eng, err := NewSimulator(engine, Config{
			Algorithm: ring, QueueCap: 1, DeadlockWindow: 200, Observer: catcher,
		})
		if err != nil {
			t.Fatal(err)
		}
		_, err = eng.Run(context.Background(), mk(), StaticPlan(1_000_000))
		var dl *ErrDeadlock
		if !errors.As(err, &dl) {
			t.Errorf("%s: expected ErrDeadlock, got %v", engine, err)
			continue
		}
		if dl.Dump == nil {
			t.Errorf("%s: ErrDeadlock carries no dump", engine)
			continue
		}
		if len(dl.Dump.Waits) == 0 {
			t.Errorf("%s: dump has no blocked heads", engine)
			continue
		}
		if dl.Dump.Cycle <= 0 || dl.Dump.InFlight <= 0 {
			t.Errorf("%s: implausible dump header %+v", engine, dl.Dump)
		}
		w := dl.Dump.Waits[0]
		if len(w.WaitsOn) == 0 {
			t.Errorf("%s: blocked head %+v waits on nothing", engine, w)
		}
		if catcher.dump != dl.Dump {
			t.Errorf("%s: observer got dump %p, error carries %p", engine, catcher.dump, dl.Dump)
		}
	}
}

// TestMisrouteAroundDeadLink kills the only minimal link for a single
// packet and checks the engines deliver it anyway by misrouting, counting
// the detour in CMisrouted.
func TestMisrouteAroundDeadLink(t *testing.T) {
	plan := &fault.Plan{}
	plan.FailLink(0, 0, 0, fault.Forever) // node 0 <-> node 1, the 0->1 minimal path
	for _, engine := range []string{"buffered", "atomic"} {
		a := core.NewHypercubeAdaptive(4)
		nodes := a.Topology().Nodes()
		sigma := make([]int32, nodes)
		for i := range sigma {
			sigma[i] = int32(i)
		}
		sigma[0] = 1 // the only traveling packet needs the dead link
		eng, err := NewSimulator(engine, Config{
			Algorithm: a, Seed: 3, Faults: plan, Observer: &obs.Base{},
		})
		if err != nil {
			t.Fatal(err)
		}
		src := traffic.NewStaticSource(&traffic.Permutation{Label: "deadmin", Sigma: sigma}, nodes, 1, 1)
		res, err := eng.Run(context.Background(), src, StaticPlan(100_000))
		if err != nil {
			t.Errorf("%s: %v", engine, err)
			continue
		}
		m := res.Metrics
		if m.Delivered != m.Injected || m.Dropped != 0 {
			t.Errorf("%s: injected %d, delivered %d, dropped %d; want all delivered",
				engine, m.Injected, m.Delivered, m.Dropped)
		}
		if got := res.Snapshot.Counter(obs.CMisrouted); got == 0 {
			t.Errorf("%s: packet crossed a dead minimal cut without misrouting", engine)
		}
	}
}

// TestNodeKillPurgeAndRevive kills a node mid-run and revives it: traffic
// caught inside or routed toward the dead node is dropped with exact
// accounting, the node's own source resumes after revival, and the
// liveness gauges return to zero.
func TestNodeKillPurgeAndRevive(t *testing.T) {
	// Kill early enough that node 7 still has pending injections: the run
	// must then outlive the outage, and the revival event gets applied.
	plan := &fault.Plan{}
	plan.FailNode(7, 2, 200)
	a := core.NewHypercubeAdaptive(5)
	nodes := a.Topology().Nodes()
	e, err := NewEngine(Config{Algorithm: a, Seed: 5, Faults: plan, Observer: &obs.Base{}})
	if err != nil {
		t.Fatal(err)
	}
	src := traffic.NewStaticSource(traffic.Random{Nodes: nodes}, nodes, 8, 17)
	res, err := e.Run(context.Background(), src, StaticPlan(1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.Injected != int64(nodes)*8 {
		t.Errorf("injected %d, want %d: node 7's source did not finish after revival", m.Injected, nodes*8)
	}
	if m.Injected != m.Delivered+m.Dropped || m.InFlight != 0 {
		t.Errorf("conservation violated: %+v", m)
	}
	if m.Dropped == 0 {
		t.Error("killing a node for 200 cycles dropped nothing")
	}
	if got := res.Snapshot.Counter(obs.CFaultDrops); got != m.Dropped {
		t.Errorf("CFaultDrops %d != Metrics.Dropped %d", got, m.Dropped)
	}
	if res.Snapshot.Gauge(obs.GDeadNodes) != 0 || res.Snapshot.Gauge(obs.GDeadLinks) != 0 {
		t.Errorf("liveness gauges nonzero after revival: nodes=%d links=%d",
			res.Snapshot.Gauge(obs.GDeadNodes), res.Snapshot.Gauge(obs.GDeadLinks))
	}
}

// TestFaultInjectionBackoff saturates tiny queues under a fault plan and
// checks the injection retry-with-backoff engages (CInjRetries > 0)
// without losing packets.
func TestFaultInjectionBackoff(t *testing.T) {
	plan := &fault.Plan{}
	plan.FailLink(0, 0, 0, fault.Forever)
	a := core.NewHypercubeAdaptive(4)
	nodes := a.Topology().Nodes()
	e, err := NewEngine(Config{
		Algorithm: a, Seed: 2, QueueCap: 1, Faults: plan, Observer: &obs.Base{},
	})
	if err != nil {
		t.Fatal(err)
	}
	src := traffic.NewStaticSource(traffic.Random{Nodes: nodes}, nodes, 12, 4)
	res, err := e.Run(context.Background(), src, StaticPlan(1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.Injected != m.Delivered+m.Dropped || m.InFlight != 0 {
		t.Errorf("conservation violated: %+v", m)
	}
	if res.Snapshot.Counter(obs.CInjRetries) == 0 {
		t.Error("saturated queues under faults never engaged injection backoff")
	}
}
