package sim

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/traffic"
)

// TestRecordReplayRoundTrip pins the trace pipeline's bit-exactness: a run
// recorded through a streaming RecordingSource and replayed through a
// TraceSource against the same configuration must reproduce every Metrics
// field, on both engines — and the trace is worker-count-invariant, so a
// trace recorded with 2 workers replays identically on 1 and vice versa.
func TestRecordReplayRoundTrip(t *testing.T) {
	cases := []struct {
		engine                 string
		recWorkers, repWorkers int
	}{
		{"buffered", 1, 1},
		{"buffered", 2, 2},
		{"buffered", 2, 1},
		{"buffered", 1, 2},
		{"atomic", 1, 1},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("%s/rec=%d/rep=%d", tc.engine, tc.recWorkers, tc.repWorkers)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			a := core.NewHypercubeAdaptive(6)
			nodes := a.Topology().Nodes()
			mkEngine := func(workers int) Simulator {
				e, err := NewSimulator(tc.engine, Config{
					Algorithm: core.NewHypercubeAdaptive(6),
					Seed:      11,
					Workers:   workers,
				})
				if err != nil {
					t.Fatal(err)
				}
				return e
			}
			plan := DynamicPlan(20, 200)

			var trace bytes.Buffer
			inner := traffic.NewBernoulliSource(traffic.Random{Nodes: nodes}, nodes, 0.6, 42)
			rec := &traffic.RecordingSource{Inner: inner, Cap: 1, W: &trace}
			res1, err := mkEngine(tc.recWorkers).Run(context.Background(), rec, plan)
			if err != nil {
				t.Fatal(err)
			}
			if err := rec.Flush(); err != nil {
				t.Fatal(err)
			}
			if res1.Metrics.Injected == 0 {
				t.Fatal("recorded run injected nothing")
			}

			src := traffic.NewTraceSource(bytes.NewReader(trace.Bytes()), nodes)
			res2, err := mkEngine(tc.repWorkers).Run(context.Background(), src, plan)
			if err != nil {
				t.Fatal(err)
			}
			if err := src.Err(); err != nil {
				t.Fatalf("trace decode: %v", err)
			}
			if res1.Metrics != res2.Metrics {
				t.Errorf("replay diverged from recording:\n recorded %+v\n replayed %+v", res1.Metrics, res2.Metrics)
			}
		})
	}
}

// TestTraceSourceSkipsForeignLines checks the decoder's coexistence rule:
// lines that are not trace records (obs JSONL metrics, blanks) are skipped.
func TestTraceSourceSkipsForeignLines(t *testing.T) {
	trace := `{"cycle":1,"counters":{"inj_attempts":3}}
{"c":0,"s":1,"d":2}

{"c":0,"b":2}
{"c":1,"s":3,"d":0}
`
	src := traffic.NewTraceSource(bytes.NewReader([]byte(trace)), 4)
	if !src.Wants(1, 0) {
		t.Error("node 1 should inject at cycle 0")
	}
	if dst := src.Take(1, 0); dst != 2 {
		t.Errorf("node 1 dst = %d, want 2", dst)
	}
	if src.Wants(2, 0) {
		t.Error("node 2 should not inject at cycle 0")
	}
	if !src.Wants(3, 1) {
		t.Error("node 3 should inject at cycle 1")
	}
	if dst := src.Take(3, 1); dst != 0 {
		t.Errorf("node 3 dst = %d, want 0", dst)
	}
	if !src.Exhausted(0) {
		t.Error("trace should be exhausted")
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestTraceReplayDivergence pins the off-config divergence policy: replaying
// against a configuration whose injection queue is still occupied counts the
// attempt as blocked and retries until the queue drains, losing no packets.
func TestTraceReplayDivergence(t *testing.T) {
	// Node 0 injects twice in consecutive cycles toward a far destination;
	// with the engine's single injection slot the second record can collide
	// if phase (b) stalls — the source must hold it and retry, so both
	// packets still enter the network.
	trace := `{"c":0,"s":0,"d":63}
{"c":1,"s":0,"d":63}
{"c":2,"s":0,"d":63}
`
	a := core.NewHypercubeAdaptive(6)
	src := traffic.NewTraceSource(bytes.NewReader([]byte(trace)), a.Topology().Nodes())
	e, err := NewEngine(Config{Algorithm: a, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), src, StaticPlan(10_000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Injected != 3 || res.Metrics.Delivered != 3 {
		t.Errorf("injected %d delivered %d, want 3/3", res.Metrics.Injected, res.Metrics.Delivered)
	}
}
