package fault

import (
	"sort"
	"testing"

	"repro/internal/topology"
)

func TestCompileLinkKillsBothDirections(t *testing.T) {
	topo := topology.NewHypercube(3)
	var p Plan
	p.FailLink(0, 1, 10, Forever)
	sched, err := p.Compile(topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Events) != 2 {
		t.Fatalf("expected 2 down events (both directions), got %+v", sched.Events)
	}
	// Port 1 of node 0 leads to node 2; the reverse direction must die too.
	want := map[[2]int32]bool{{0, 1}: true, {2, 1}: true}
	for _, ev := range sched.Events {
		if ev.Up || ev.At != 10 {
			t.Errorf("unexpected event %+v", ev)
		}
		delete(want, [2]int32{ev.Node, int32(ev.Port)})
	}
	if len(want) != 0 {
		t.Errorf("missing down events for %v", want)
	}
}

func TestCompileDurationExpandsToRevive(t *testing.T) {
	topo := topology.NewHypercube(3)
	var p Plan
	p.FailNode(5, 100, 50)
	sched, err := p.Compile(topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Events) != 2 {
		t.Fatalf("expected down+up events, got %+v", sched.Events)
	}
	down, up := sched.Events[0], sched.Events[1]
	if down.Up || down.At != 100 || down.Node != 5 || down.Port >= 0 {
		t.Errorf("bad down event %+v", down)
	}
	if !up.Up || up.At != 150 || up.Node != 5 || up.Port >= 0 {
		t.Errorf("bad up event %+v", up)
	}
}

func TestCompileEventsSorted(t *testing.T) {
	topo := topology.NewHypercube(4)
	var p Plan
	p.FailNode(1, 300, Forever)
	p.FailLink(2, 0, 5, 100)
	p.FailRandomLinks(0.2, 7, 50, Forever)
	sched, err := p.Compile(topo)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(sched.Events, func(i, j int) bool {
		return sched.Events[i].At < sched.Events[j].At
	}) {
		t.Errorf("events not sorted by cycle: %+v", sched.Events)
	}
}

func TestCompileRandomLinksDeterministic(t *testing.T) {
	topo := topology.NewHypercube(6)
	mk := func(seed int64) []Event {
		var p Plan
		p.FailRandomLinks(0.1, seed, 0, Forever)
		sched, err := p.Compile(topo)
		if err != nil {
			t.Fatal(err)
		}
		return sched.Events
	}
	a, b := mk(3), mk(3)
	if len(a) == 0 {
		t.Fatal("10% of a dim-6 hypercube's links selected nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed selected %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at event %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	if c := mk(4); len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds selected identical link sets")
		}
	}
}

func TestCompileValidation(t *testing.T) {
	topo := topology.NewHypercube(3)
	cases := []func(p *Plan){
		func(p *Plan) { p.FailLink(99, 0, 0, Forever) },         // node out of range
		func(p *Plan) { p.FailLink(0, 7, 0, Forever) },          // port out of range
		func(p *Plan) { p.FailNode(-1, 0, Forever) },            // negative node
		func(p *Plan) { p.FailRandomLinks(1.5, 1, 0, Forever) }, // fraction > 1
		func(p *Plan) { p.FailNode(0, -5, Forever) },            // negative cycle
	}
	for i, mk := range cases {
		var p Plan
		mk(&p)
		if _, err := p.Compile(topo); err == nil {
			t.Errorf("case %d: Compile accepted an invalid plan", i)
		}
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	plan, err := ParseSpec("link:0:1@50+10,node:3@100,links:0.05:7@0,nodes:0.1@20+5")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := plan.Compile(topology.NewHypercube(5))
	if err != nil {
		t.Fatal(err)
	}
	// link down+up both directions (4), node 3 down (1), plus the seeded
	// random selections (down for links, down+up for nodes).
	if len(sched.Events) < 5 {
		t.Fatalf("suspiciously few events: %+v", sched.Events)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus:1@0",    // unknown kind
		"link:0@0",     // missing port
		"link:0:1",     // missing @cycle
		"link:0:1@x",   // bad cycle
		"links:nope@0", // bad fraction
		"node:1@5+",    // empty duration
		"node:x@5",     // non-integer node
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted", spec)
		}
	}
}

func TestEmptyPlan(t *testing.T) {
	var p *Plan
	if !p.Empty() {
		t.Error("nil plan should be Empty")
	}
	p = &Plan{}
	if !p.Empty() {
		t.Error("zero plan should be Empty")
	}
	p.FailNode(0, 0, Forever)
	if p.Empty() {
		t.Error("plan with an item should not be Empty")
	}
}
