package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec parses the textual fault grammar used by the routesim -faults
// flag. A spec is a comma-separated list of items:
//
//	link:U:P@AT[+DUR]        link out of node U port P dies at cycle AT
//	node:U@AT[+DUR]          node U dies at cycle AT
//	links:FRAC[:SEED]@AT[+DUR]  a seeded random fraction of all links dies
//	nodes:FRAC[:SEED]@AT[+DUR]  a seeded random fraction of all nodes dies
//
// The optional +DUR suffix schedules recovery after DUR cycles; without it
// the failure is permanent. SEED defaults to 1.
//
// Examples:
//
//	link:0:3@100          link 0->port3 (and its reverse) dies at cycle 100
//	node:42@0+500         node 42 is down for cycles [0,500)
//	links:0.05:7@0        5% of links, seed 7, dead from the start
func ParseSpec(spec string) (*Plan, error) {
	p := &Plan{}
	for _, raw := range strings.Split(spec, ",") {
		itemSpec := strings.TrimSpace(raw)
		if itemSpec == "" {
			continue
		}
		head, timing, ok := strings.Cut(itemSpec, "@")
		if !ok {
			return nil, fmt.Errorf("fault: %q: missing @AT timing", itemSpec)
		}
		at, dur, err := parseTiming(timing)
		if err != nil {
			return nil, fmt.Errorf("fault: %q: %w", itemSpec, err)
		}
		fields := strings.Split(head, ":")
		switch fields[0] {
		case "link":
			if len(fields) != 3 {
				return nil, fmt.Errorf("fault: %q: want link:U:P", itemSpec)
			}
			u, err1 := strconv.Atoi(fields[1])
			port, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("fault: %q: non-integer node or port", itemSpec)
			}
			p.FailLink(u, port, at, dur)
		case "node":
			if len(fields) != 2 {
				return nil, fmt.Errorf("fault: %q: want node:U", itemSpec)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("fault: %q: non-integer node", itemSpec)
			}
			p.FailNode(u, at, dur)
		case "links", "nodes":
			if len(fields) != 2 && len(fields) != 3 {
				return nil, fmt.Errorf("fault: %q: want %s:FRAC[:SEED]", itemSpec, fields[0])
			}
			frac, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, fmt.Errorf("fault: %q: bad fraction %q", itemSpec, fields[1])
			}
			seed := int64(1)
			if len(fields) == 3 {
				seed, err = strconv.ParseInt(fields[2], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("fault: %q: bad seed %q", itemSpec, fields[2])
				}
			}
			if fields[0] == "links" {
				p.FailRandomLinks(frac, seed, at, dur)
			} else {
				p.FailRandomNodes(frac, seed, at, dur)
			}
		default:
			return nil, fmt.Errorf("fault: %q: unknown item kind %q (valid: link, node, links, nodes)", itemSpec, fields[0])
		}
	}
	return p, nil
}

func parseTiming(s string) (at, dur int64, err error) {
	dur = Forever
	atStr, durStr, hasDur := strings.Cut(s, "+")
	at, err = strconv.ParseInt(atStr, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad fail cycle %q", atStr)
	}
	if hasDur {
		dur, err = strconv.ParseInt(durStr, 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad duration %q", durStr)
		}
	}
	return at, dur, nil
}
