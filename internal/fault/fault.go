// Package fault implements deterministic fault injection for the simulators:
// schedulable link and node failures (fail-at-cycle, fail-for-duration, and
// probabilistic selections resolved from a seeded RNG at compile time).
//
// A Plan is a topology-independent description of what should fail and when.
// Compile resolves it against a concrete topology into a Schedule — a sorted
// list of directed-link and node down/up events — that the engines replay
// sequentially at cycle boundaries. Because probabilistic selections are
// resolved at compile time and events are applied outside the parallel
// phases, fault-enabled runs stay bit-deterministic across worker counts.
package fault

import (
	"fmt"
	"sort"

	"repro/internal/topology"
	"repro/internal/xrand"
)

// Forever marks a failure with no scheduled recovery.
const Forever int64 = -1

type itemKind uint8

const (
	itemLink itemKind = iota
	itemNode
	itemRandLinks
	itemRandNodes
)

type item struct {
	kind itemKind
	node int
	port int
	frac float64
	seed int64
	at   int64
	dur  int64 // Forever = permanent
}

// Plan is a buildable description of failures. The zero value is an empty
// plan; a nil *Plan is treated everywhere as "no faults".
type Plan struct {
	items []item
	// HopBudget bounds the extra link traversals a packet may spend
	// misrouting around faults before it is dropped. 0 selects the engine
	// default (see sim.Config).
	HopBudget int
}

// Empty reports whether the plan schedules no failures.
func (p *Plan) Empty() bool { return p == nil || len(p.items) == 0 }

// FailLink schedules the link out of node u through port p to die at cycle
// at and stay dead for dur cycles (Forever = permanently). The reverse
// direction, when the topology has one, dies with it.
func (p *Plan) FailLink(u, port int, at, dur int64) *Plan {
	p.items = append(p.items, item{kind: itemLink, node: u, port: port, at: at, dur: dur})
	return p
}

// FailNode schedules node u to die at cycle at for dur cycles.
func (p *Plan) FailNode(u int, at, dur int64) *Plan {
	p.items = append(p.items, item{kind: itemNode, node: u, at: at, dur: dur})
	return p
}

// FailRandomLinks schedules a seeded random fraction frac of the network's
// links (undirected pairs where the topology is bidirectional) to die at
// cycle at for dur cycles. The selection depends only on (seed, topology),
// never on execution order.
func (p *Plan) FailRandomLinks(frac float64, seed int64, at, dur int64) *Plan {
	p.items = append(p.items, item{kind: itemRandLinks, frac: frac, seed: seed, at: at, dur: dur})
	return p
}

// FailRandomNodes schedules a seeded random fraction frac of the nodes to
// die at cycle at for dur cycles.
func (p *Plan) FailRandomNodes(frac float64, seed int64, at, dur int64) *Plan {
	p.items = append(p.items, item{kind: itemRandNodes, frac: frac, seed: seed, at: at, dur: dur})
	return p
}

// Event is one liveness mutation: at cycle At, the directed link (Node,
// Port) — or the whole node when Port < 0 — goes down (Up == false) or
// comes back up (Up == true).
type Event struct {
	At   int64
	Node int32
	Port int16 // < 0: whole-node event
	Up   bool
}

// Schedule is a compiled plan: events sorted by cycle, replayed in order by
// the engine's fault clock.
type Schedule struct {
	Events []Event
	// HopBudget carries the plan's misroute budget (0 = engine default).
	HopBudget int
}

// Empty reports whether the schedule contains no events.
func (s *Schedule) Empty() bool { return s == nil || len(s.Events) == 0 }

// Compile resolves the plan against a topology into a sorted Schedule.
// Explicit link failures take the reverse direction down with them when one
// exists; probabilistic selections enumerate links in canonical (node, port)
// order and draw from a splitmix64 stream seeded by the item's seed, so the
// same plan and topology always yield the same schedule.
func (p *Plan) Compile(t topology.Topology) (*Schedule, error) {
	s := &Schedule{}
	if p == nil {
		return s, nil
	}
	s.HopBudget = p.HopBudget
	n, ports := t.Nodes(), t.Ports()
	addLink := func(u, port int, at, dur int64) error {
		if u < 0 || u >= n || port < 0 || port >= ports {
			return fmt.Errorf("fault: link %d:%d out of range for %s", u, port, t.Name())
		}
		v := t.Neighbor(u, port)
		if v == topology.None {
			return fmt.Errorf("fault: link %d:%d of %s is not connected", u, port, t.Name())
		}
		dirs := [][2]int{{u, port}}
		if rp := t.ReversePort(u, port); rp != topology.None {
			dirs = append(dirs, [2]int{v, rp})
		}
		for _, d := range dirs {
			s.Events = append(s.Events, Event{At: at, Node: int32(d[0]), Port: int16(d[1])})
			if dur != Forever {
				s.Events = append(s.Events, Event{At: at + dur, Node: int32(d[0]), Port: int16(d[1]), Up: true})
			}
		}
		return nil
	}
	addNode := func(u int, at, dur int64) error {
		if u < 0 || u >= n {
			return fmt.Errorf("fault: node %d out of range for %s", u, t.Name())
		}
		s.Events = append(s.Events, Event{At: at, Node: int32(u), Port: -1})
		if dur != Forever {
			s.Events = append(s.Events, Event{At: at + dur, Node: int32(u), Port: -1, Up: true})
		}
		return nil
	}
	for _, it := range p.items {
		if it.at < 0 {
			return nil, fmt.Errorf("fault: negative fail cycle %d", it.at)
		}
		if it.dur != Forever && it.dur <= 0 {
			return nil, fmt.Errorf("fault: non-positive fail duration %d", it.dur)
		}
		switch it.kind {
		case itemLink:
			if err := addLink(it.node, it.port, it.at, it.dur); err != nil {
				return nil, err
			}
		case itemNode:
			if err := addNode(it.node, it.at, it.dur); err != nil {
				return nil, err
			}
		case itemRandLinks:
			if it.frac < 0 || it.frac > 1 {
				return nil, fmt.Errorf("fault: link fraction %g outside [0,1]", it.frac)
			}
			rng := xrand.New(it.seed, -2)
			for u := 0; u < n; u++ {
				for port := 0; port < ports; port++ {
					v := t.Neighbor(u, port)
					if v == topology.None {
						continue
					}
					// Count each bidirectional pair once, from its
					// lower-endpoint direction, so frac means a fraction of
					// physical links and both directions die together.
					if rp := t.ReversePort(u, port); rp != topology.None {
						if v < u || (v == u && rp < port) {
							continue
						}
					}
					if rng.Coin(it.frac) {
						if err := addLink(u, port, it.at, it.dur); err != nil {
							return nil, err
						}
					}
				}
			}
		case itemRandNodes:
			if it.frac < 0 || it.frac > 1 {
				return nil, fmt.Errorf("fault: node fraction %g outside [0,1]", it.frac)
			}
			rng := xrand.New(it.seed, -3)
			for u := 0; u < n; u++ {
				if rng.Coin(it.frac) {
					if err := addNode(u, it.at, it.dur); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
	return s, nil
}
