package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func record(c *Collector, lats ...int64) {
	for _, l := range lats {
		c.OnDeliver(core.Packet{Hops: uint16(l / 2)}, l)
	}
}

func TestMeanStdDev(t *testing.T) {
	c := NewCollector()
	record(c, 2, 4, 4, 4, 5, 5, 7, 9)
	if got := c.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample variance of this classic set is 32/7.
	if got, want := c.StdDev(), math.Sqrt(32.0/7.0); math.Abs(got-want) > 1e-9 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if c.Min() != 2 || c.Max() != 9 || c.Count() != 8 {
		t.Errorf("extremes wrong: min=%d max=%d n=%d", c.Min(), c.Max(), c.Count())
	}
}

func TestEmptyCollector(t *testing.T) {
	c := NewCollector()
	if c.Mean() != 0 || c.StdDev() != 0 || c.Min() != 0 || c.Max() != 0 || c.Percentile(50) != 0 {
		t.Error("empty collector should report zeros")
	}
	if !strings.Contains(c.Histogram(5), "no deliveries") {
		t.Error("empty histogram text wrong")
	}
}

func TestPercentiles(t *testing.T) {
	c := NewCollector()
	for i := int64(1); i <= 100; i++ {
		record(c, i)
	}
	cases := map[float64]int64{0: 1, 1: 1, 50: 50, 95: 95, 99: 99, 100: 100}
	for p, want := range cases {
		if got := c.Percentile(p); got != want {
			t.Errorf("Percentile(%v) = %d, want %d", p, got, want)
		}
	}
	if got := c.Percentile(-5); got != 1 {
		t.Errorf("Percentile(-5) = %d, want clamp to 1", got)
	}
	if got := c.Percentile(200); got != 100 {
		t.Errorf("Percentile(200) = %d, want clamp to 100", got)
	}
}

func TestPercentileMonotonic(t *testing.T) {
	if err := quick.Check(func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		c := NewCollector()
		for _, v := range raw {
			record(c, int64(v%500)+1)
		}
		last := int64(0)
		for p := 0.0; p <= 100; p += 7 {
			v := c.Percentile(p)
			if v < last {
				return false
			}
			last = v
		}
		return c.Percentile(100) == c.Max() && c.Percentile(0) == c.Min()
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	c := NewCollector()
	record(c, 1, 1, 2, 10, 10, 10, 10)
	h := c.Histogram(2)
	lines := strings.Split(strings.TrimSpace(h), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 buckets, got %d:\n%s", len(lines), h)
	}
	if !strings.Contains(lines[0], "3") || !strings.Contains(lines[1], "4") {
		t.Errorf("bucket fills wrong:\n%s", h)
	}
	// The fuller bucket gets the longer bar.
	if strings.Count(lines[1], "#") <= strings.Count(lines[0], "#") {
		t.Errorf("bar lengths not proportional:\n%s", h)
	}
}

func TestHopHistogram(t *testing.T) {
	c := NewCollector()
	c.OnDeliver(core.Packet{Hops: 3}, 7)
	c.OnDeliver(core.Packet{Hops: 3}, 9)
	c.OnDeliver(core.Packet{Hops: 1}, 3)
	hh := c.HopHistogram()
	if len(hh) != 2 || hh[0] != [2]int64{1, 1} || hh[1] != [2]int64{3, 2} {
		t.Errorf("HopHistogram = %v", hh)
	}
}

func TestSummaryFormat(t *testing.T) {
	c := NewCollector()
	record(c, 5, 7, 9)
	s := c.Summary()
	for _, want := range []string{"n=3", "mean=7.00", "min=5", "max=9"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	c := NewCollector()
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := int64(1); i <= 1000; i++ {
				c.OnDeliver(core.Packet{}, i)
			}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if c.Count() != 4000 {
		t.Errorf("Count = %d, want 4000", c.Count())
	}
	if got := c.Mean(); math.Abs(got-500.5) > 1e-9 {
		t.Errorf("Mean = %v, want 500.5", got)
	}
}
