// Package stats provides the latency statistics used by the experiment
// harness and the routesim tool: streaming mean/variance (Welford), exact
// percentiles over a bounded latency domain, and a text histogram. A
// Collector plugs directly into sim.Config.OnDeliver.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
)

// Collector accumulates per-delivery latencies. It is safe for concurrent
// use (the buffered engine may deliver from several workers).
type Collector struct {
	mu sync.Mutex

	count  int64
	mean   float64
	m2     float64
	min    int64
	max    int64
	counts map[int64]int64 // exact latency -> occurrences
	byHops map[int]int64   // hop count -> deliveries
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{min: math.MaxInt64, counts: make(map[int64]int64), byHops: make(map[int]int64)}
}

// OnDeliver records one delivery; its signature matches sim.Config.OnDeliver.
func (c *Collector) OnDeliver(pkt core.Packet, latency int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.count++
	delta := float64(latency) - c.mean
	c.mean += delta / float64(c.count)
	c.m2 += delta * (float64(latency) - c.mean)
	if latency < c.min {
		c.min = latency
	}
	if latency > c.max {
		c.max = latency
	}
	c.counts[latency]++
	c.byHops[pkt.HopCount()]++
}

// Count returns the number of recorded deliveries.
func (c *Collector) Count() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// Mean returns the average latency.
func (c *Collector) Mean() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mean
}

// StdDev returns the sample standard deviation of the latencies.
func (c *Collector) StdDev() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.count < 2 {
		return 0
	}
	return math.Sqrt(c.m2 / float64(c.count-1))
}

// Min and Max return the latency extremes (0 if nothing was recorded).
func (c *Collector) Min() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.count == 0 {
		return 0
	}
	return c.min
}

// Max returns the largest recorded latency.
func (c *Collector) Max() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.max
}

// Percentile returns the smallest latency l such that at least p (in
// [0,100]) percent of deliveries had latency <= l.
func (c *Collector) Percentile(p float64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	need := int64(math.Ceil(p / 100 * float64(c.count)))
	if need < 1 {
		need = 1
	}
	lats := make([]int64, 0, len(c.counts))
	for l := range c.counts {
		lats = append(lats, l)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var seen int64
	for _, l := range lats {
		seen += c.counts[l]
		if seen >= need {
			return l
		}
	}
	return lats[len(lats)-1]
}

// HopHistogram returns the (hops, deliveries) pairs sorted by hop count.
func (c *Collector) HopHistogram() [][2]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	hops := make([]int, 0, len(c.byHops))
	for h := range c.byHops {
		hops = append(hops, h)
	}
	sort.Ints(hops)
	out := make([][2]int64, len(hops))
	for i, h := range hops {
		out[i] = [2]int64{int64(h), c.byHops[h]}
	}
	return out
}

// Histogram renders a text histogram of latencies with the given number of
// equal-width buckets (at least 1).
func (c *Collector) Histogram(buckets int) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.count == 0 {
		return "(no deliveries)\n"
	}
	if buckets < 1 {
		buckets = 1
	}
	span := c.max - c.min + 1
	width := (span + int64(buckets) - 1) / int64(buckets)
	if width < 1 {
		width = 1
	}
	fill := make([]int64, buckets)
	var peak int64
	for l, n := range c.counts {
		b := int((l - c.min) / width)
		if b >= buckets {
			b = buckets - 1
		}
		fill[b] += n
		if fill[b] > peak {
			peak = fill[b]
		}
	}
	var sb strings.Builder
	for b := 0; b < buckets; b++ {
		lo := c.min + int64(b)*width
		hi := lo + width - 1
		bar := 0
		if peak > 0 {
			bar = int(40 * fill[b] / peak)
		}
		fmt.Fprintf(&sb, "%6d-%-6d %8d %s\n", lo, hi, fill[b], strings.Repeat("#", bar))
	}
	return sb.String()
}

// Summary renders a one-line summary.
func (c *Collector) Summary() string {
	return fmt.Sprintf("n=%d mean=%.2f sd=%.2f min=%d p50=%d p95=%d p99=%d max=%d",
		c.Count(), c.Mean(), c.StdDev(), c.Min(),
		c.Percentile(50), c.Percentile(95), c.Percentile(99), c.Max())
}
