package repro

import "repro/internal/obs"

// EngineOption customizes an engine built by NewEngineOpts or
// NewAtomicEngineOpts. Options apply over the zero Config in order, so a
// later option overrides an earlier one; anything left unset keeps the
// Config defaults (queue capacity 5, PolicyFirstFree, one worker).
//
// The plain NewEngine(Config) constructor keeps working; the options form
// is a convenience over exactly the same Config.
type EngineOption func(*Config)

// WithQueueCap sets the central-queue capacity (the paper fixes 5).
func WithQueueCap(capacity int) EngineOption {
	return func(c *Config) { c.QueueCap = capacity }
}

// WithPolicy sets the selection policy among admissible moves.
func WithPolicy(p Policy) EngineOption {
	return func(c *Config) { c.Policy = p }
}

// WithSeed sets the reproducibility seed; results are independent of the
// worker count for a fixed seed.
func WithSeed(seed int64) EngineOption {
	return func(c *Config) { c.Seed = seed }
}

// WithWorkers shards the nodes across n goroutines (buffered engine only;
// the atomic engine is inherently sequential and this legacy Config path
// silently ignores it there). The canonical RunSpec path is stricter:
// RunSpec.Validate rejects workers > 1 with the atomic engine instead of
// ignoring them, so a spec never claims parallelism it does not have.
func WithWorkers(n int) EngineOption {
	return func(c *Config) { c.Workers = n }
}

// WithObserver attaches an observer to the run and enables the metrics
// core. Compose several with MultiObserver; observers are read-only taps,
// so attaching one never changes the simulation outcome.
func WithObserver(o Observer) EngineOption {
	return func(c *Config) { c.Observer = o }
}

// WithMetrics enables the metrics core without attaching an observer:
// Run's RunResult then carries the final snapshot and Engine.Obs exposes
// the live core (e.g. for a /metrics endpoint).
func WithMetrics() EngineOption {
	return func(c *Config) { c.Metrics = true }
}

// WithCutThrough enables virtual cut-through switching [KK79].
func WithCutThrough() EngineOption {
	return func(c *Config) { c.CutThrough = true }
}

// WithRemoteLookahead makes moves commit against target-queue state
// (Section 2's abstract Route(q) over the buffered model).
func WithRemoteLookahead() EngineOption {
	return func(c *Config) { c.RemoteLookahead = true }
}

// WithHeadOnly restricts node phase (a) to queue heads (the strict
// Section 2 reading) as an ablation of head-of-line blocking.
func WithHeadOnly() EngineOption {
	return func(c *Config) { c.HeadOnly = true }
}

// WithWatchdog sets the no-progress window after which the deadlock
// watchdog aborts the run with ErrDeadlock (default 1000 cycles). When it
// fires, the wait-for state of every blocked queue head is captured in
// ErrDeadlock.Dump and delivered to observers implementing OnDeadlock.
func WithWatchdog(windowCycles int) EngineOption {
	return func(c *Config) { c.DeadlockWindow = windowCycles }
}

// WithDeadlockWindow sets the watchdog's no-progress window.
//
// Deprecated: renamed WithWatchdog; this alias keeps working through v0.x.
func WithDeadlockWindow(cycles int) EngineOption { return WithWatchdog(cycles) }

// WithFaultPlan schedules deterministic link/node failures for the run and
// enables degraded-mode routing: misrouting over surviving links (bounded by
// hopBudget extra traversals beyond the minimal distance; <= 0 selects the
// plan's budget, or 64) when faults empty a packet's minimal candidate set,
// drops for packets that faults strand, and exponential retry-backoff for
// injection under saturation. Build the plan with FaultPlan methods or
// ParseFaultSpec. A nil plan leaves the fault machinery compiled out.
func WithFaultPlan(p *FaultPlan, hopBudget int) EngineOption {
	return func(c *Config) {
		c.Faults = p
		c.HopBudget = hopBudget
	}
}

// buildConfig folds the options over a zero Config for algo.
func buildConfig(algo Algorithm, opts []EngineOption) Config {
	cfg := Config{Algorithm: algo}
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return cfg
}

// NewSimulatorOpts builds either engine behind the engine-agnostic
// Simulator API from functional options:
//
//	s, err := repro.NewSimulatorOpts("buffered", algo,
//	    repro.WithQueueCap(5),
//	    repro.WithWorkers(4),
//	    repro.WithObserver(repro.NewLatencyObserver()))
//
// kind is "buffered" or "atomic" (EngineNames). For runs describable as a
// RunSpec, prefer RunSpec.Build — it validates, fingerprints and caches.
func NewSimulatorOpts(kind string, algo Algorithm, opts ...EngineOption) (Simulator, error) {
	return NewSimulator(kind, buildConfig(algo, opts))
}

// NewEngineOpts builds the buffered cycle-accurate engine from functional
// options.
//
// Deprecated: use NewSimulatorOpts("buffered", algo, opts...) or
// RunSpec.Build; like NewEngine, this concrete-engine constructor keeps
// working through v0.x.
func NewEngineOpts(algo Algorithm, opts ...EngineOption) (*Engine, error) {
	return NewEngine(buildConfig(algo, opts))
}

// NewAtomicEngineOpts builds the abstract queue-to-queue engine from
// functional options.
//
// Deprecated: use NewSimulatorOpts("atomic", algo, opts...) or
// RunSpec.Build; like NewAtomicEngine, this concrete-engine constructor
// keeps working through v0.x.
func NewAtomicEngineOpts(algo Algorithm, opts ...EngineOption) (*AtomicEngine, error) {
	return NewAtomicEngine(buildConfig(algo, opts))
}

// MultiObserver composes observers into one that fans every probe out to
// each in order. Nils are dropped; a single survivor is returned unwrapped
// and zero survivors yield nil.
func MultiObserver(os ...Observer) Observer { return obs.Multi(os...) }
