package repro_test

import (
	"strings"
	"testing"

	"repro"
)

func TestNewAlgorithmSpecs(t *testing.T) {
	good := map[string]string{
		"hypercube-adaptive:6": "hypercube-adaptive",
		"hypercube-hung:5":     "hypercube-hung",
		"hypercube-ecube:4":    "hypercube-ecube",
		"mesh-adaptive:4x6":    "mesh-adaptive",
		"mesh-twophase:3x3":    "mesh-twophase",
		"mesh-xy:5x5":          "mesh-xy",
		"shuffle-adaptive:5":   "shuffle-adaptive",
		"shuffle-static:5":     "shuffle-static",
		"torus-adaptive:4x4":   "torus-adaptive",
		"mesh-adaptive:3x4x2":  "mesh-adaptive",
	}
	for spec, wantName := range good {
		a, err := repro.NewAlgorithm(spec)
		if err != nil {
			t.Errorf("NewAlgorithm(%q): %v", spec, err)
			continue
		}
		if a.Name() != wantName {
			t.Errorf("NewAlgorithm(%q).Name() = %q, want %q", spec, a.Name(), wantName)
		}
	}
	for _, spec := range []string{"", "hypercube-adaptive", "nope:4", "mesh-adaptive:axb", "hypercube-adaptive:x"} {
		if _, err := repro.NewAlgorithm(spec); err == nil {
			t.Errorf("NewAlgorithm(%q) accepted", spec)
		}
	}
}

func TestAlgorithmNamesMatchConstructors(t *testing.T) {
	for _, tmpl := range repro.AlgorithmNames() {
		name := strings.SplitN(tmpl, ":", 2)[0]
		spec := name + ":4"
		if strings.Contains(tmpl, "x<side>") {
			spec = name + ":4x4"
		}
		if name == "graph-adaptive" {
			spec = name + ":fat-tree:leaves=4,spines=2"
		}
		if _, err := repro.NewAlgorithm(spec); err != nil {
			t.Errorf("listed algorithm %q is not constructible (%q): %v", tmpl, spec, err)
		}
	}
}

func TestNewPatternSpecs(t *testing.T) {
	cube, _ := repro.NewAlgorithm("hypercube-adaptive:6")
	for _, spec := range []string{"random", "complement", "transpose", "leveled", "bit-reversal", "hotspot:0.3"} {
		if _, err := repro.NewPattern(spec, cube, 1); err != nil {
			t.Errorf("NewPattern(%q) on hypercube: %v", spec, err)
		}
	}
	if _, err := repro.NewPattern("mesh-transpose", cube, 1); err == nil {
		t.Error("mesh-transpose accepted on a hypercube")
	}
	mesh, _ := repro.NewAlgorithm("mesh-adaptive:5x5")
	if _, err := repro.NewPattern("mesh-transpose", mesh, 1); err != nil {
		t.Errorf("mesh-transpose on square mesh: %v", err)
	}
	if _, err := repro.NewPattern("complement", mesh, 1); err == nil {
		t.Error("complement accepted on a 25-node mesh (not a power of two)")
	}
	if _, err := repro.NewPattern("nope", cube, 1); err == nil {
		t.Error("unknown pattern accepted")
	}
	if _, err := repro.NewPattern("hotspot:2", cube, 1); err == nil {
		t.Error("hotspot fraction > 1 accepted")
	}
}

// TestEndToEnd drives the whole public API the way the quickstart does.
func TestEndToEnd(t *testing.T) {
	algo, err := repro.NewAlgorithm("hypercube-adaptive:6")
	if err != nil {
		t.Fatal(err)
	}
	if err := repro.VerifyDeadlockFree(algo); err != nil {
		t.Fatal(err)
	}
	pat, err := repro.NewPattern("random", algo, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := repro.NewEngine(repro.Config{Algorithm: algo, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := eng.RunStatic(repro.NewStaticTraffic(pat, algo, 2, 2), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Delivered != 128 {
		t.Fatalf("delivered %d, want 128", m.Delivered)
	}
	ae, err := repro.NewAtomicEngine(repro.Config{Algorithm: algo, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ae.RunDynamic(repro.NewDynamicTraffic(pat, algo, 0.5, 3), 50, 200)
	if err != nil {
		t.Fatal(err)
	}
	if m2.InjectionRate() <= 0 {
		t.Fatal("atomic dynamic run measured nothing")
	}
}

func TestWriteQDGProducesDOT(t *testing.T) {
	algo, err := repro.NewAlgorithm("mesh-adaptive:3x3")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := repro.WriteQDG(&sb, algo); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "digraph") {
		t.Errorf("QDG output does not look like DOT: %.40q", sb.String())
	}
}

func TestVerifyAllPublicAlgorithms(t *testing.T) {
	for _, spec := range []string{
		"hypercube-adaptive:4", "hypercube-hung:4", "hypercube-ecube:4",
		"mesh-adaptive:3x3", "mesh-twophase:3x3", "mesh-xy:3x3",
		"shuffle-adaptive:4", "shuffle-static:4", "torus-adaptive:4x4",
	} {
		a, err := repro.NewAlgorithm(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := repro.VerifyDeadlockFree(a); err != nil {
			t.Errorf("%s: %v", spec, err)
		}
	}
}

func TestWormholeFacade(t *testing.T) {
	for _, tmpl := range repro.WormholeRouteNames() {
		name := strings.SplitN(tmpl, ":", 2)[0]
		r, err := repro.NewWormholeRoute(name + ":4")
		if err != nil {
			t.Errorf("NewWormholeRoute(%q:4): %v", name, err)
			continue
		}
		if r.NumVCs() < 1 {
			t.Errorf("%s: NumVCs = %d", name, r.NumVCs())
		}
	}
	for _, bad := range []string{"", "wh-nope:4", "wh-torus-dor", "wh-torus-dor:x"} {
		if _, err := repro.NewWormholeRoute(bad); err == nil {
			t.Errorf("NewWormholeRoute(%q) accepted", bad)
		}
	}
	// End-to-end through the facade.
	r, err := repro.NewWormholeRoute("wh-hypercube-adaptive:5")
	if err != nil {
		t.Fatal(err)
	}
	e, err := repro.NewWormholeEngine(repro.WormholeConfig{Route: r, Flits: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	algoLike, _ := repro.NewAlgorithm("hypercube-adaptive:5")
	pat, _ := repro.NewPattern("random", algoLike, 3)
	m, err := e.RunStatic(repro.NewStaticTraffic(pat, algoLike, 2, 7), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Delivered != 64 {
		t.Fatalf("delivered %d, want 64", m.Delivered)
	}
}

func TestDescribeNodeFacade(t *testing.T) {
	algo, err := repro.NewAlgorithm("hypercube-adaptive:3")
	if err != nil {
		t.Fatal(err)
	}
	desc, err := repro.DescribeNode(algo, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"node 5", "qA", "qB", "dynamic"} {
		if !strings.Contains(desc, want) {
			t.Errorf("DescribeNode output missing %q:\n%s", want, desc)
		}
	}
}

func TestLatencyObserverFacade(t *testing.T) {
	algo, err := repro.NewAlgorithm("hypercube-adaptive:5")
	if err != nil {
		t.Fatal(err)
	}
	col := repro.NewLatencyObserver()
	eng, err := repro.NewEngineOpts(algo, repro.WithSeed(1), repro.WithObserver(col))
	if err != nil {
		t.Fatal(err)
	}
	pat, _ := repro.NewPattern("random", algo, 3)
	m, err := eng.RunStatic(repro.NewStaticTraffic(pat, algo, 3, 7), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if col.Count() != m.Delivered {
		t.Fatalf("collector saw %d deliveries, engine %d", col.Count(), m.Delivered)
	}
	if int64(col.Mean()*float64(col.Count())+0.5) != m.LatencySum {
		t.Errorf("collector mean %.3f inconsistent with engine sum %d", col.Mean(), m.LatencySum)
	}
	if col.Percentile(100) != m.LatencyMax {
		t.Errorf("collector max %d vs engine %d", col.Percentile(100), m.LatencyMax)
	}
}
