// Quickstart: simulate the paper's fully-adaptive minimal deadlock-free
// routing algorithm on a 256-node hypercube.
//
//	go run ./examples/quickstart
//
// The program (1) certifies deadlock freedom mechanically on a small
// instance by building the queue dependency graph of Section 2, (2) runs a
// static random workload on the cycle-accurate simulator of Sections 6-7
// with a latency observer attached, and (3) runs the dynamic λ=1 workload
// under a cancelable context and reports the paper's three observables —
// average latency, maximum latency and effective injection rate — plus the
// metric snapshot the observability layer collected along the way.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. Deadlock-freedom certification (exhaustive, so use a small cube).
	small, err := repro.NewAlgorithm("hypercube-adaptive:4")
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.VerifyDeadlockFree(small); err != nil {
		log.Fatal(err)
	}
	fmt.Println("qdg: hypercube-adaptive:4 certified deadlock-free")

	// 2. Static injection: every node sends 4 packets to random targets.
	// The engine is built with functional options; the latency observer
	// collects the full per-delivery distribution (percentiles, histogram)
	// without touching the deprecated OnDeliver callback.
	algo, err := repro.NewAlgorithm("hypercube-adaptive:8")
	if err != nil {
		log.Fatal(err)
	}
	lat := repro.NewLatencyObserver()
	eng, err := repro.NewSimulatorOpts("buffered", algo,
		repro.WithSeed(1),
		repro.WithObserver(lat),
	)
	if err != nil {
		log.Fatal(err)
	}
	pat, err := repro.NewPattern("random", algo, 1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run(context.Background(),
		repro.NewStaticTraffic(pat, algo, 4, 2), repro.StaticPlan(1_000_000))
	if err != nil {
		log.Fatal(err)
	}
	m := res.Metrics
	fmt.Printf("static : delivered %d packets in %d cycles, Lavg=%.2f Lmax=%d p99=%d\n",
		m.Delivered, m.Cycles, m.AvgLatency(), m.LatencyMax, lat.Percentile(99))

	// 3. Dynamic injection at λ=1 (every node tries to inject every cycle).
	// A sampler records queue occupancy over time; the final snapshot in
	// the RunResult carries every counter the engine maintains. Run stops
	// within one cycle if the context is canceled — pass a deadline to
	// bound wall-clock time.
	smp := repro.NewSampler(100)
	eng, err = repro.NewSimulatorOpts("buffered", algo,
		repro.WithSeed(1),
		repro.WithObserver(smp),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err = eng.Run(context.Background(),
		repro.NewDynamicTraffic(pat, algo, 1.0, 3), repro.DynamicPlan(300, 1000))
	if err != nil {
		log.Fatal(err)
	}
	m = res.Metrics
	fmt.Printf("dynamic: Lavg=%.2f Lmax=%d Ir=%.0f%% (%.1f%% of moves used dynamic links)\n",
		m.AvgLatency(), m.LatencyMax, 100*m.InjectionRate(),
		100*float64(m.DynamicMoves)/float64(m.Moves))
	snap := res.Snapshot
	fmt.Printf("metrics: %d link transfers, %d output-buffer stalls, %d injection backpressure events\n",
		snap.Counter(repro.CLinkTransfers), snap.Counter(repro.COutputStalls),
		snap.Counter(repro.CInjBackpressure))
	last := smp.Samples[len(smp.Samples)-1]
	fmt.Printf("sampled: %d occupancy points; at cycle %d the queues held %d packets\n",
		len(smp.Samples), last.Cycle, last.QueueOcc)

	// 4. The same dynamic run, described as a canonical RunSpec — the
	// serializable JSON form the routesimd daemon accepts over HTTP and the
	// result store caches. Identical specs yield bit-identical metrics, so
	// the spec's fingerprint is a content address for its result.
	spec := repro.RunSpec{
		Algo:     "hypercube-adaptive",
		Topology: "hypercube:8",
		Pattern:  "random",
		Inject:   "dynamic",
		Lambda:   1,
		Warmup:   300,
		Measure:  1000,
		Seed:     1,
	}
	sres, err := repro.ExecuteSpec(context.Background(), spec, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("runspec: fingerprint %s, Lavg=%.2f (bit-identical to the dynamic run: %v)\n",
		sres.FP, sres.Metrics.AvgLatency(), sres.Metrics == m)
}
