// Quickstart: simulate the paper's fully-adaptive minimal deadlock-free
// routing algorithm on a 256-node hypercube.
//
//	go run ./examples/quickstart
//
// The program (1) certifies deadlock freedom mechanically on a small
// instance by building the queue dependency graph of Section 2, (2) runs a
// static random workload on the cycle-accurate simulator of Sections 6-7,
// and (3) runs the dynamic λ=1 workload and reports the paper's three
// observables: average latency, maximum latency and effective injection
// rate.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. Deadlock-freedom certification (exhaustive, so use a small cube).
	small, err := repro.NewAlgorithm("hypercube-adaptive:4")
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.VerifyDeadlockFree(small); err != nil {
		log.Fatal(err)
	}
	fmt.Println("qdg: hypercube-adaptive:4 certified deadlock-free")

	// 2. Static injection: every node sends 4 packets to random targets.
	algo, err := repro.NewAlgorithm("hypercube-adaptive:8")
	if err != nil {
		log.Fatal(err)
	}
	eng, err := repro.NewEngine(repro.Config{Algorithm: algo, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	pat, err := repro.NewPattern("random", algo, 1)
	if err != nil {
		log.Fatal(err)
	}
	m, err := eng.RunStatic(repro.NewStaticTraffic(pat, algo, 4, 2), 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static : delivered %d packets in %d cycles, Lavg=%.2f Lmax=%d\n",
		m.Delivered, m.Cycles, m.AvgLatency(), m.LatencyMax)

	// 3. Dynamic injection at λ=1 (every node tries to inject every cycle).
	m, err = eng.RunDynamic(repro.NewDynamicTraffic(pat, algo, 1.0, 3), 300, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic: Lavg=%.2f Lmax=%d Ir=%.0f%% (%.1f%% of moves used dynamic links)\n",
		m.AvgLatency(), m.LatencyMax, 100*m.InjectionRate(),
		100*float64(m.DynamicMoves)/float64(m.Moves))
}
