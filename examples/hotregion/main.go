// Hot-region measurement: Section 3 motivates the dynamic links with the
// observation that, when messages must correct all their 0->1 dimensions
// before any 1->0 dimension, "congestion around node 1...1 is likely to
// take place" — the hung cube funnels phase-A traffic toward its bottom.
//
// This example measures the claim directly: it runs the complement
// permutation (the worst case: every packet must cross the whole cube) with
// n packets per node through the hung scheme and the fully-adaptive scheme,
// samples every q_A queue each cycle, and prints the time-averaged
// occupancy grouped by the Hamming weight (level) of the node. Without
// dynamic links the occupancy piles up at the high levels near 1...1; with
// them it stays flat and the workload drains in a fraction of the cycles.
//
//	go run ./examples/hotregion
package main

import (
	"context"
	"fmt"
	"log"
	"math/bits"
	"strings"

	"repro"
)

const dims = 9

// qaProbe is an Observer that samples every q_A queue at the end of each
// cycle, accumulating occupancy by the Hamming level of the node. OnCycle
// runs outside the engine's parallel phases, so inspecting the engine
// through Snapshot is safe.
type qaProbe struct {
	repro.ObserverBase
	eng     repro.Simulator
	sum     []float64
	samples int
}

func (p *qaProbe) OnCycle(cycle int64, _ *repro.MetricSnapshot) {
	p.samples++
	p.eng.Snapshot(func(q repro.QueueSnapshot) {
		if q.Class == 0 { // q_A
			p.sum[bits.OnesCount32(uint32(q.Node))] += float64(q.Len)
		}
	})
}

// profile runs the workload and returns the time-averaged q_A occupancy per
// node level plus the drain time.
func profile(spec string) ([]float64, int64) {
	algo, err := repro.NewAlgorithm(spec)
	if err != nil {
		log.Fatal(err)
	}
	nodesAt := make([]float64, dims+1) // nodes per level
	for u := 0; u < 1<<dims; u++ {
		nodesAt[bits.OnesCount32(uint32(u))]++
	}
	probe := &qaProbe{sum: make([]float64, dims+1)}
	eng, err := repro.NewSimulatorOpts("buffered", algo,
		repro.WithSeed(17),
		repro.WithObserver(probe))
	if err != nil {
		log.Fatal(err)
	}
	probe.eng = eng
	pat, err := repro.NewPattern("complement", algo, 5)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run(context.Background(), repro.NewStaticTraffic(pat, algo, dims, 23), repro.StaticPlan(10_000_000))
	if err != nil {
		log.Fatal(err)
	}
	m := res.Metrics
	avg := make([]float64, dims+1)
	for l := range avg {
		avg[l] = probe.sum[l] / float64(probe.samples) / nodesAt[l]
	}
	return avg, m.Cycles
}

func main() {
	fmt.Printf("hypercube n=%d, complement permutation, %d packets per node\n", dims, dims)
	fmt.Println("time-averaged q_A occupancy per node (by Hamming level; capacity 5):")
	fmt.Printf("\n%-6s %-32s %-32s\n", "level", "hypercube-hung (no dyn links)", "hypercube-adaptive")

	hung, hungCycles := profile(fmt.Sprintf("hypercube-hung:%d", dims))
	adapt, adaptCycles := profile(fmt.Sprintf("hypercube-adaptive:%d", dims))
	for l := 0; l <= dims; l++ {
		fmt.Printf("%4d   %5.2f %-26s %5.2f %s\n",
			l, hung[l], bar(hung[l]), adapt[l], bar(adapt[l]))
	}
	fmt.Printf("\ndrain time: hung %d cycles, adaptive %d cycles (%.1fx faster)\n",
		hungCycles, adaptCycles, float64(hungCycles)/float64(adaptCycles))
	fmt.Println("\nThe hung scheme's q_A load climbs steeply toward level n (node 1...1),")
	fmt.Println("exactly the congestion Section 3 predicts; the dynamic links flatten it.")
}

func bar(v float64) string {
	n := int(v * 5)
	if n > 25 {
		n = 25
	}
	return strings.Repeat("#", n)
}
