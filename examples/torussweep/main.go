// Torus saturation sweep: the paper sketches a fully-adaptive minimal
// deadlock-free packet routing for tori at the end of Section 4; this
// repository realizes it with wrap-usage classes (see internal/core). The
// example sweeps the injection rate λ on an 8x8 torus under uniform random
// traffic and prints the throughput/latency curve — the standard way to
// read off a router's saturation point.
//
//	go run ./examples/torussweep
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	algo, err := repro.NewAlgorithm("torus-adaptive:8x8")
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.VerifyDeadlockFree(algo); err != nil {
		log.Fatal(err)
	}
	fmt.Println("qdg: torus-adaptive:8x8 certified deadlock-free")
	pat, err := repro.NewPattern("random", algo, 5)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := repro.NewSimulator("buffered", repro.Config{Algorithm: algo, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n8x8 torus, uniform random traffic, buffered node model:")
	fmt.Printf("  %6s | %8s %8s %8s %12s\n", "lambda", "Lavg", "Lmax", "Ir%", "delivered/cyc")
	for _, lambda := range []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0} {
		res, err := eng.Run(context.Background(), repro.NewDynamicTraffic(pat, algo, lambda, 9), repro.DynamicPlan(500, 2000))
		if err != nil {
			log.Fatal(err)
		}
		m := res.Metrics
		perCycle := float64(m.Delivered) / float64(m.Cycles) / float64(algo.Topology().Nodes())
		fmt.Printf("  %6.2f | %8.2f %8d %7.0f%% %12.3f\n",
			lambda, m.AvgLatency(), m.LatencyMax, 100*m.InjectionRate(), perCycle)
	}
	fmt.Println("\nLatency stays near the uncongested 2d+1 level until the router")
	fmt.Println("saturates, after which the effective injection rate caps the load")
	fmt.Println("while latency and queue occupancy level off — bounded queues, no")
	fmt.Println("deadlock, no livelock.")
}
