// Degraded-network robustness sweep: the paper proves deadlock freedom for
// the intact network; this example measures how gracefully the adaptive
// hypercube scheme degrades when links die. It runs the one-packet-per-node
// random workload on a dim-8 hypercube with 0%, 1% and 5% of the links dead
// from cycle 0 (seeded, so the table is reproducible), letting the engine
// misroute around the holes, and reports delivery, detours, drops and the
// latency cost of the detours.
//
//	go run ./examples/faults
package main

import (
	"fmt"
	"log"

	"repro"
)

const dims = 8

func sweep(deadFrac float64) {
	algo, err := repro.NewAlgorithm(fmt.Sprintf("hypercube-adaptive:%d", dims))
	if err != nil {
		log.Fatal(err)
	}
	plan := &repro.FaultPlan{}
	if deadFrac > 0 {
		plan.FailRandomLinks(deadFrac, 1, 0, repro.FaultForever)
	}
	eng, err := repro.NewSimulatorOpts("buffered", algo,
		repro.WithSeed(7),
		repro.WithMetrics(),
		repro.WithFaultPlan(plan, 0), // 0 = default misroute hop budget
	)
	if err != nil {
		log.Fatal(err)
	}
	pat, err := repro.NewPattern("random", algo, 5)
	if err != nil {
		log.Fatal(err)
	}
	src := repro.NewStaticTraffic(pat, algo, 1, 42)
	res, err := eng.Run(nil, src, repro.StaticPlan(10_000_000))
	if err != nil {
		log.Fatal(err)
	}
	m := res.Metrics
	fmt.Printf("%5.0f%%  %9d  %9d  %8d  %9d  %7.2f  %6d\n",
		deadFrac*100,
		res.Snapshot.Gauge(repro.GDeadLinks),
		m.Delivered, m.Dropped,
		res.Snapshot.Counter(repro.CMisrouted),
		m.AvgLatency(), m.Cycles)
}

func main() {
	fmt.Printf("hypercube n=%d (%d nodes), random pattern, 1 packet per node\n", dims, 1<<dims)
	fmt.Printf("seeded dead links from cycle 0; engine misroutes around the holes\n\n")
	fmt.Printf("%5s  %9s  %9s  %8s  %9s  %7s  %6s\n",
		"dead", "deadlinks", "delivered", "dropped", "misroutes", "L_avg", "drain")
	for _, frac := range []float64{0, 0.01, 0.05} {
		sweep(frac)
	}
	fmt.Println("\nEvery routable packet is delivered: injected = delivered + dropped,")
	fmt.Println("nothing is left in flight, and the deadlock watchdog never fires.")
}
