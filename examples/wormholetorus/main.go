// Wormhole routing on the 2-dimensional torus: the generalization the paper
// closes its introduction with ("some generalizations are possible for
// worm-hole routing on 2-dimensional tori [GPS91]"). This example runs the
// flit-level simulator with the adaptive scheme (adaptive virtual channel +
// dateline dimension-order escape, 3 VCs per link) against plain dateline
// dimension-order (2 VCs), across worm lengths and loads.
//
//	go run ./examples/wormholetorus
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const side = 12

	// Certify both routes first: the escape sub-network must deliver every
	// pair on its own and its channel dependency graph must be acyclic.
	for _, spec := range []string{"wh-torus-adaptive:5", "wh-torus-dor:5"} {
		r, err := repro.NewWormholeRoute(spec)
		if err != nil {
			log.Fatal(err)
		}
		if err := repro.VerifyWormholeDeadlockFree(r); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cdg: %s certified deadlock-free\n", spec)
	}
	fmt.Println()

	fmt.Printf("%dx%d torus, transpose permutation, 6 worms per node, 16-flit worms:\n", side, side)
	fmt.Printf("  %-20s %8s %8s %10s %10s\n", "route", "cycles", "Lavg", "Lheader", "adapt-VC%")
	for _, spec := range []string{"wh-torus-adaptive", "wh-torus-dor"} {
		r, err := repro.NewWormholeRoute(fmt.Sprintf("%s:%d", spec, side))
		if err != nil {
			log.Fatal(err)
		}
		e, err := repro.NewWormholeEngine(repro.WormholeConfig{Route: r, Flits: 16, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		algoLike, _ := repro.NewAlgorithm(fmt.Sprintf("torus-adaptive:%dx%d", side, side))
		pat, err := repro.NewPattern("mesh-transpose", algoLike, 5)
		if err != nil {
			log.Fatal(err)
		}
		m, err := e.RunStatic(repro.NewStaticTraffic(pat, algoLike, 6, 9), 5_000_000)
		if err != nil {
			log.Fatal(err)
		}
		adaptPct := 0.0
		if t := m.AdaptAlloc + m.EscapeAlloc; t > 0 {
			adaptPct = 100 * float64(m.AdaptAlloc) / float64(t)
		}
		fmt.Printf("  %-20s %8d %8.1f %10.1f %9.1f%%\n",
			r.Name(), m.Cycles, m.AvgLatency(), m.AvgHeaderLatency(), adaptPct)
	}

	fmt.Printf("\n%dx%d torus, uniform random, lambda sweep, 8-flit worms (dynamic):\n", side, side)
	fmt.Printf("  %6s | %-20s %8s %8s | %-20s %8s %8s\n", "lambda", "adaptive", "Lavg", "Ir%", "dor", "Lavg", "Ir%")
	for _, lambda := range []float64{0.01, 0.02, 0.04, 0.06, 0.08} {
		row := fmt.Sprintf("  %6.2f |", lambda)
		for _, spec := range []string{"wh-torus-adaptive", "wh-torus-dor"} {
			r, _ := repro.NewWormholeRoute(fmt.Sprintf("%s:%d", spec, side))
			e, err := repro.NewWormholeEngine(repro.WormholeConfig{Route: r, Flits: 8, Seed: 3})
			if err != nil {
				log.Fatal(err)
			}
			algoLike, _ := repro.NewAlgorithm(fmt.Sprintf("torus-adaptive:%dx%d", side, side))
			pat, _ := repro.NewPattern("random", algoLike, 5)
			m, err := e.RunDynamic(repro.NewDynamicTraffic(pat, algoLike, lambda, 9), 500, 2000)
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf(" %-20s %8.1f %7.0f%% |", r.Name(), m.AvgLatency(), 100*m.InjectionRate())
		}
		fmt.Println(row)
	}
	fmt.Println("\nThe adaptive scheme spreads transpose worms over both minimal")
	fmt.Println("dimensions per hop and keeps the dateline escape as its deadlock-free")
	fmt.Println("fallback — Section 2's dynamic-links-over-a-DAG idea in wormhole form.")
}
