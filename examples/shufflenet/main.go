// Shuffle-exchange scenario (Section 5): the paper's algorithm is the first
// adaptive deadlock-free routing for the shuffle-exchange that needs only a
// constant number of queues per node (four, plus injection and delivery).
//
// This example:
//
//  1. certifies the 4-queue scheme deadlock-free on networks that contain
//     the tricky degenerate shuffle cycles (periodic addresses like 0101,
//     which need bubble-guarded dateline crossings);
//
//  2. checks Theorem 3's 3·n hop bound empirically on a 1024-node network;
//
//  3. shows what the phase-1 dynamic exchange links buy over the static
//     two-pass scheme under random traffic.
//
//     go run ./examples/shufflenet
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. Certification, including degenerate cycles (n=4 has the 0101/1010
	// ring and the two rotation fixed points; n=6 adds length-2 and
	// length-3 cycles).
	for _, spec := range []string{"shuffle-adaptive:4", "shuffle-adaptive:6"} {
		a, err := repro.NewAlgorithm(spec)
		if err != nil {
			log.Fatal(err)
		}
		if err := repro.VerifyDeadlockFree(a); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("qdg: %s certified deadlock-free (bubble rings included)\n", spec)
	}

	// 2+3. 1024-node shuffle-exchange under static random traffic, with and
	// without the dynamic links, at the paper's queue size and at the
	// minimum queue size the bubble guard allows.
	const dims = 10
	fmt.Printf("\nshuffle-exchange n=%d (%d nodes), 8 random packets per node:\n", dims, 1<<dims)
	fmt.Printf("  %-16s %4s | %8s %8s %8s | %s\n", "algorithm", "cap", "cycles", "Lavg", "Lmax", "hop bound 3n=30")
	for _, spec := range []string{"shuffle-adaptive", "shuffle-static"} {
		for _, cap := range []int{5, 2} {
			a, err := repro.NewAlgorithm(fmt.Sprintf("%s:%d", spec, dims))
			if err != nil {
				log.Fatal(err)
			}
			pat, err := repro.NewPattern("random", a, 5)
			if err != nil {
				log.Fatal(err)
			}
			eng, err := repro.NewSimulator("buffered", repro.Config{Algorithm: a, Seed: 3, QueueCap: cap})
			if err != nil {
				log.Fatal(err)
			}
			// The engine asserts MaxHops (3n) at every delivery, so a
			// successful drain is itself the Theorem 3 check.
			res, err := eng.Run(context.Background(), repro.NewStaticTraffic(pat, a, 8, 9), repro.StaticPlan(10_000_000))
			if err != nil {
				log.Fatal(err)
			}
			m := res.Metrics
			fmt.Printf("  %-16s %4d | %8d %8.2f %8d | all %d deliveries within bound\n",
				spec, cap, m.Cycles, m.AvgLatency(), m.LatencyMax, m.Delivered)
		}
	}
	fmt.Println("\nEvery delivery is asserted against the 3n hop bound of Theorem 3;")
	fmt.Println("the cap=2 rows run at the smallest queue size the bubble-guarded")
	fmt.Println("dateline crossings permit, the regime where deadlock would show up.")
}
