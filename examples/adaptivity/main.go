// Adaptivity ablation: the paper's headline claim is that adding dynamic
// links to the hung-cube routing removes the congestion around node 1...1
// while keeping two queues per node. This example pits three schemes against
// each other on the same workloads:
//
//   - hypercube-adaptive: the paper's fully-adaptive minimal scheme,
//   - hypercube-hung:     the same two-phase scheme without dynamic links
//     ([BGSS89]/[Kon90]-style, partially adaptive),
//   - hypercube-ecube:    oblivious dimension-order routing with the
//     hop-ordered structured buffer pool (n+1 queues per node!).
//
// Complement and transpose are the adversarial permutations where adaptivity
// pays; the output shows drain time and latency for each.
//
//	go run ./examples/adaptivity
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	const dims = 9
	algos := []string{"hypercube-adaptive", "hypercube-hung", "hypercube-ecube"}
	patterns := []string{"complement", "transpose", "leveled", "random"}

	fmt.Printf("hypercube n=%d (%d nodes), static injection of n packets per node\n\n", dims, 1<<dims)
	fmt.Printf("%-12s | %-18s | %8s %8s %8s | %s\n", "pattern", "algorithm", "cycles", "Lavg", "Lmax", "queues/node")
	for _, p := range patterns {
		for _, name := range algos {
			spec := fmt.Sprintf("%s:%d", name, dims)
			algo, err := repro.NewAlgorithm(spec)
			if err != nil {
				log.Fatal(err)
			}
			pat, err := repro.NewPattern(p, algo, 7)
			if err != nil {
				log.Fatal(err)
			}
			eng, err := repro.NewSimulator("buffered", repro.Config{Algorithm: algo, Seed: 11})
			if err != nil {
				log.Fatal(err)
			}
			res, err := eng.Run(context.Background(), repro.NewStaticTraffic(pat, algo, dims, 13), repro.StaticPlan(10_000_000))
			if err != nil {
				log.Fatal(err)
			}
			m := res.Metrics
			fmt.Printf("%-12s | %-18s | %8d %8.2f %8d | %d\n",
				p, name, m.Cycles, m.AvgLatency(), m.LatencyMax, algo.NumClasses())
		}
		fmt.Println()
	}
	fmt.Println("Note how the fully-adaptive scheme drains the adversarial permutations")
	fmt.Println("fastest while using the fewest queues; the oblivious baseline needs")
	fmt.Println("n+1 queues per node just to stay deadlock-free, and still loses.")
}
