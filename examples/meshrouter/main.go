// Mesh routing scenario (Section 4): a 16x16 mesh-connected machine running
// the workloads a mesh router actually sees — a structured matrix transpose
// and uniform random traffic — under the paper's fully-adaptive two-queue
// scheme, its static two-phase ablation, and oblivious dimension-order (XY)
// routing. XY needs four directional queues to be deadlock-free in a
// store-and-forward mesh, so comparisons are shown at equal total buffering
// per node (2x10 slots vs 4x5 slots).
//
// Two regimes are shown deliberately:
//
//   - Finite (static) workloads, the paper's main regime: the adaptive
//     scheme drains them with minimal paths and bounded queues.
//
//   - Sustained overload (λ well above saturation): here the hung-mesh
//     structure funnels every packet with ascending work through the
//     high-coordinate region, and the network settles into a congested
//     equilibrium that drains at "bubble" speed, well below XY's balanced
//     L-paths. The paper observed exactly this hot-region effect on the
//     hypercube and added dynamic links to fix it; the mesh's border
//     asymmetry keeps some of the effect even with dynamic links. See
//     EXPERIMENTS.md for the full study.
//
//     go run ./examples/meshrouter
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

type variant struct {
	spec string
	cap  int // queue capacity chosen so total slots/node match (20)
}

var variants = []variant{
	{"mesh-adaptive:16x16", 10},
	{"mesh-twophase:16x16", 10},
	{"mesh-xy:16x16", 5},
}

func engine(v variant) (repro.Algorithm, repro.Simulator) {
	algo, err := repro.NewAlgorithm(v.spec)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := repro.NewSimulator("buffered", repro.Config{Algorithm: algo, Seed: 3, QueueCap: v.cap})
	if err != nil {
		log.Fatal(err)
	}
	return algo, eng
}

func main() {
	fmt.Println("16x16 mesh, equal total buffering (20 central slots per node)")

	fmt.Println("\nmatrix transpose, 16 packets per node (static):")
	fmt.Printf("  %-16s %8s %8s %8s %10s\n", "algorithm", "cycles", "Lavg", "Lmax", "dyn-moves")
	for _, v := range variants {
		algo, eng := engine(v)
		pat, err := repro.NewPattern("mesh-transpose", algo, 5)
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Run(context.Background(), repro.NewStaticTraffic(pat, algo, 16, 9), repro.StaticPlan(10_000_000))
		if err != nil {
			log.Fatal(err)
		}
		m := res.Metrics
		fmt.Printf("  %-16s %8d %8.2f %8d %9.1f%%\n",
			algo.Name(), m.Cycles, m.AvgLatency(), m.LatencyMax,
			100*float64(m.DynamicMoves)/float64(m.Moves))
	}

	fmt.Println("\nuniform random traffic at moderate load (lambda=0.15, dynamic):")
	fmt.Printf("  %-16s %8s %8s %8s\n", "algorithm", "Lavg", "Lmax", "Ir%")
	for _, v := range variants {
		algo, eng := engine(v)
		pat, err := repro.NewPattern("random", algo, 5)
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Run(context.Background(), repro.NewDynamicTraffic(pat, algo, 0.15, 9), repro.DynamicPlan(500, 2000))
		if err != nil {
			log.Fatal(err)
		}
		m := res.Metrics
		fmt.Printf("  %-16s %8.2f %8d %7.0f%%\n",
			algo.Name(), m.AvgLatency(), m.LatencyMax, 100*m.InjectionRate())
	}

	fmt.Println("\nuniform random traffic far beyond saturation (lambda=0.6, dynamic):")
	fmt.Printf("  %-16s %8s %8s %8s\n", "algorithm", "Lavg", "Lmax", "Ir%")
	for _, v := range variants {
		algo, eng := engine(v)
		pat, err := repro.NewPattern("random", algo, 5)
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Run(context.Background(), repro.NewDynamicTraffic(pat, algo, 0.6, 9), repro.DynamicPlan(500, 2000))
		if err != nil {
			log.Fatal(err)
		}
		m := res.Metrics
		fmt.Printf("  %-16s %8.2f %8d %7.0f%%\n",
			algo.Name(), m.AvgLatency(), m.LatencyMax, 100*m.InjectionRate())
	}

	fmt.Println("\nReading: on finite workloads the two-queue adaptive scheme is")
	fmt.Println("competitive with four-queue XY at equal buffering, and its paths stay")
	fmt.Println("minimal. Under sustained overload the hung-mesh phase structure")
	fmt.Println("congests the high-coordinate region and XY's balanced oblivious paths")
	fmt.Println("win on raw throughput — the mesh analogue of the hypercube hot-spot")
	fmt.Println("the paper's dynamic links were designed to relieve.")
}
