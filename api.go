// Package repro is the public facade of this reproduction of Pifarré,
// Gravano, Felperin and Sanz, "Fully-Adaptive Minimal Deadlock-Free Packet
// Routing in Hypercubes, Meshes, and Other Networks" (SPAA 1991).
//
// It re-exports the pieces a user composes:
//
//   - routing algorithms (NewAlgorithm or the core constructors),
//   - traffic patterns and injection models (NewPattern, NewStaticTraffic,
//     NewDynamicTraffic),
//   - the two simulators (NewEngine for the cycle-accurate buffered node
//     model of the paper's Sections 6-7, NewAtomicEngine for the abstract
//     queue-to-queue model of Section 2),
//   - the queue-dependency-graph verifier (VerifyDeadlockFree, WriteQDG),
//   - the experiment harness that regenerates the paper's Tables 1-12
//     (Tables, FindTable).
//
// See examples/quickstart for a complete end-to-end program.
package repro

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/qdg"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Re-exported core types.
type (
	// Algorithm is a routing function over per-node queues (Section 2).
	Algorithm = core.Algorithm
	// Packet is a message in flight.
	Packet = core.Packet
	// Move is a candidate next placement for a packet.
	Move = core.Move
	// Props describes an algorithm's static properties.
	Props = core.Props
	// Config configures a simulator.
	Config = sim.Config
	// Metrics aggregates a run's observables (L_avg, L_max, I_r, ...).
	Metrics = sim.Metrics
	// Engine is the buffered cycle-accurate simulator (Sections 6-7).
	Engine = sim.Engine
	// AtomicEngine is the abstract queue-to-queue simulator (Section 2).
	AtomicEngine = sim.AtomicEngine
	// TrafficSource drives packet injection.
	TrafficSource = sim.TrafficSource
	// Pattern maps sources to destinations.
	Pattern = traffic.Pattern
	// Policy selects among admissible candidate moves.
	Policy = sim.Policy
	// ErrDeadlock reports a watchdog-detected deadlock.
	ErrDeadlock = sim.ErrDeadlock
	// QueueSnapshot reports one central queue's instantaneous occupancy
	// (see Engine.Snapshot and Config.OnCycle).
	QueueSnapshot = sim.QueueSnapshot
)

// Selection policies.
const (
	PolicyFirstFree   = sim.PolicyFirstFree
	PolicyRandom      = sim.PolicyRandom
	PolicyStaticFirst = sim.PolicyStaticFirst
	PolicyLastFree    = sim.PolicyLastFree
)

// LatencyCollector accumulates per-delivery latency statistics (mean,
// percentiles, histograms). Assign its OnDeliver method to Config.OnDeliver.
type LatencyCollector = stats.Collector

// NewLatencyCollector returns an empty latency collector.
func NewLatencyCollector() *LatencyCollector { return stats.NewCollector() }

// NewEngine returns the buffered cycle-accurate simulator for cfg.
func NewEngine(cfg Config) (*Engine, error) { return sim.NewEngine(cfg) }

// NewAtomicEngine returns the abstract queue-to-queue simulator for cfg.
func NewAtomicEngine(cfg Config) (*AtomicEngine, error) { return sim.NewAtomicEngine(cfg) }

// AlgorithmNames lists the specs accepted by NewAlgorithm.
func AlgorithmNames() []string {
	return []string{
		"hypercube-adaptive:<dims>",
		"hypercube-hung:<dims>",
		"hypercube-ecube:<dims>",
		"mesh-adaptive:<side>x<side>[x...]",
		"mesh-twophase:<side>x<side>[x...]",
		"mesh-xy:<side>x<side>[x...]",
		"shuffle-adaptive:<dims>",
		"shuffle-static:<dims>",
		"shuffle-eager:<dims>",
		"ccc-adaptive:<dims>",
		"ccc-static:<dims>",
		"torus-adaptive:<side>x<side>[x...]",
	}
}

// NewAlgorithm builds an algorithm from a textual spec such as
// "hypercube-adaptive:10", "mesh-adaptive:16x16" or "torus-adaptive:8x8".
func NewAlgorithm(spec string) (Algorithm, error) {
	name, arg, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("repro: algorithm spec %q needs a size, e.g. %q", spec, "hypercube-adaptive:10")
	}
	dims := func() (int, error) { return strconv.Atoi(arg) }
	shape := func() ([]int, error) {
		parts := strings.Split(arg, "x")
		out := make([]int, len(parts))
		for i, p := range parts {
			v, err := strconv.Atoi(p)
			if err != nil {
				return nil, fmt.Errorf("repro: bad shape %q in %q", arg, spec)
			}
			out[i] = v
		}
		return out, nil
	}
	switch name {
	case "hypercube-adaptive":
		d, err := dims()
		if err != nil {
			return nil, err
		}
		return core.NewHypercubeAdaptive(d), nil
	case "hypercube-hung":
		d, err := dims()
		if err != nil {
			return nil, err
		}
		return core.NewHypercubeHung(d), nil
	case "hypercube-ecube":
		d, err := dims()
		if err != nil {
			return nil, err
		}
		return core.NewHypercubeECube(d), nil
	case "mesh-adaptive":
		s, err := shape()
		if err != nil {
			return nil, err
		}
		return core.NewMeshAdaptive(s...), nil
	case "mesh-twophase":
		s, err := shape()
		if err != nil {
			return nil, err
		}
		return core.NewMeshTwoPhase(s...), nil
	case "mesh-xy":
		s, err := shape()
		if err != nil {
			return nil, err
		}
		return core.NewMeshXY(s...), nil
	case "shuffle-adaptive":
		d, err := dims()
		if err != nil {
			return nil, err
		}
		return core.NewShuffleExchangeAdaptive(d), nil
	case "shuffle-static":
		d, err := dims()
		if err != nil {
			return nil, err
		}
		return core.NewShuffleExchangeStatic(d), nil
	case "shuffle-eager":
		d, err := dims()
		if err != nil {
			return nil, err
		}
		return core.NewShuffleExchangeEager(d), nil
	case "ccc-adaptive":
		d, err := dims()
		if err != nil {
			return nil, err
		}
		return core.NewCCCAdaptive(d), nil
	case "ccc-static":
		d, err := dims()
		if err != nil {
			return nil, err
		}
		return core.NewCCCStatic(d), nil
	case "torus-adaptive":
		s, err := shape()
		if err != nil {
			return nil, err
		}
		return core.NewTorusAdaptive(s...), nil
	}
	return nil, fmt.Errorf("repro: unknown algorithm %q (known: %s)", name, strings.Join(AlgorithmNames(), ", "))
}

// NewPattern builds a traffic pattern from a textual spec for an algorithm's
// topology: "random", "complement", "transpose", "leveled", "bit-reversal",
// "mesh-transpose" and "hotspot:<fraction>". Hypercube-address patterns
// (complement, transpose, leveled, bit-reversal) require a power-of-two node
// count; mesh-transpose requires a square 2-dimensional mesh or torus.
func NewPattern(spec string, a Algorithm, seed int64) (Pattern, error) {
	topo := a.Topology()
	nodes := topo.Nodes()
	bits := func() (int, error) {
		b := 0
		for 1<<b < nodes {
			b++
		}
		if 1<<b != nodes {
			return 0, fmt.Errorf("repro: pattern %q needs a power-of-two node count, have %d", spec, nodes)
		}
		return b, nil
	}
	name, arg, _ := strings.Cut(spec, ":")
	switch name {
	case "random":
		return traffic.Random{Nodes: nodes}, nil
	case "complement":
		b, err := bits()
		if err != nil {
			return nil, err
		}
		return traffic.Complement{Bits: b}, nil
	case "transpose":
		b, err := bits()
		if err != nil {
			return nil, err
		}
		return traffic.Transpose{Bits: b}, nil
	case "leveled":
		b, err := bits()
		if err != nil {
			return nil, err
		}
		return traffic.NewLeveled(b, seed), nil
	case "bit-reversal":
		b, err := bits()
		if err != nil {
			return nil, err
		}
		return traffic.BitReversal{Bits: b}, nil
	case "mesh-transpose":
		side := 0
		switch t := topo.(type) {
		case *topology.Mesh:
			if t.Dims() == 2 && t.Shape()[0] == t.Shape()[1] {
				side = t.Shape()[0]
			}
		case *topology.Torus:
			if t.Dims() == 2 && t.Shape()[0] == t.Shape()[1] {
				side = t.Shape()[0]
			}
		}
		if side == 0 {
			return nil, fmt.Errorf("repro: mesh-transpose needs a square 2-dimensional mesh or torus, have %s", topo.Name())
		}
		return traffic.MeshTranspose{Side: side}, nil
	case "hotspot":
		frac := 0.2
		if arg != "" {
			v, err := strconv.ParseFloat(arg, 64)
			if err != nil || v < 0 || v > 1 {
				return nil, fmt.Errorf("repro: bad hotspot fraction %q", arg)
			}
			frac = v
		}
		return traffic.Hotspot{Nodes: nodes, Hot: int32(nodes / 2), Fraction: frac}, nil
	}
	return nil, fmt.Errorf("repro: unknown pattern %q", spec)
}

// NewStaticTraffic returns the paper's static injection model: perNode
// packets at every node, destined per the pattern.
func NewStaticTraffic(p Pattern, a Algorithm, perNode int, seed int64) TrafficSource {
	return traffic.NewStaticSource(p, a.Topology().Nodes(), perNode, seed)
}

// NewDynamicTraffic returns the paper's dynamic injection model: every cycle
// each node attempts to inject with probability lambda.
func NewDynamicTraffic(p Pattern, a Algorithm, lambda float64, seed int64) TrafficSource {
	return traffic.NewBernoulliSource(p, a.Topology().Nodes(), lambda, seed)
}

// VerifyDeadlockFree builds the algorithm's queue dependency graph by
// exhaustive exploration and certifies the paper's deadlock-freedom
// conditions: the static edges form a DAG (up to certified bubble rings)
// and every dynamic link retains a static escape. Exploration is
// exhaustive, so use small instances (hundreds of nodes).
func VerifyDeadlockFree(a Algorithm) error {
	g, err := qdg.Build(a)
	if err != nil {
		return err
	}
	return g.Verify()
}

// DescribeNode renders the functional router design of Section 6 for one
// node of the algorithm's network — the buffers each physical link needs,
// as drawn in the paper's Figures 4-6. Like VerifyDeadlockFree it explores
// the algorithm exhaustively, so use small instances.
func DescribeNode(a Algorithm, node int) (string, error) {
	d, err := qdg.DescribeNode(a, int32(node))
	if err != nil {
		return "", err
	}
	return d.String(), nil
}

// WriteQDG writes the algorithm's queue dependency graph in Graphviz DOT
// format (static edges solid, dynamic dashed, bubble-guarded dotted) —
// the rendering of the paper's Figures 1-3.
func WriteQDG(w io.Writer, a Algorithm) error {
	g, err := qdg.Build(a)
	if err != nil {
		return err
	}
	return g.WriteDOT(w)
}
