// Package repro is the public facade of this reproduction of Pifarré,
// Gravano, Felperin and Sanz, "Fully-Adaptive Minimal Deadlock-Free Packet
// Routing in Hypercubes, Meshes, and Other Networks" (SPAA 1991).
//
// It re-exports the pieces a user composes:
//
//   - routing algorithms (NewAlgorithm or the core constructors),
//   - traffic patterns and injection models (NewPattern, NewStaticTraffic,
//     NewDynamicTraffic),
//   - the two simulators (NewEngine for the cycle-accurate buffered node
//     model of the paper's Sections 6-7, NewAtomicEngine for the abstract
//     queue-to-queue model of Section 2),
//   - the queue-dependency-graph verifier (VerifyDeadlockFree, WriteQDG),
//   - the experiment harness that regenerates the paper's Tables 1-12
//     (Tables, FindTable).
//
// See examples/quickstart for a complete end-to-end program.
package repro

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/qdg"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Re-exported core types.
type (
	// Algorithm is a routing function over per-node queues (Section 2).
	Algorithm = core.Algorithm
	// Packet is a message in flight.
	Packet = core.Packet
	// Move is a candidate next placement for a packet.
	Move = core.Move
	// Props describes an algorithm's static properties.
	Props = core.Props
	// Config configures a simulator.
	Config = sim.Config
	// Metrics aggregates a run's observables (L_avg, L_max, I_r, ...).
	Metrics = sim.Metrics
	// Engine is the buffered cycle-accurate simulator (Sections 6-7).
	Engine = sim.Engine
	// AtomicEngine is the abstract queue-to-queue simulator (Section 2).
	AtomicEngine = sim.AtomicEngine
	// TrafficSource drives packet injection.
	TrafficSource = sim.TrafficSource
	// Pattern maps sources to destinations.
	Pattern = traffic.Pattern
	// Policy selects among admissible candidate moves.
	Policy = sim.Policy
	// ErrDeadlock reports a watchdog-detected deadlock.
	ErrDeadlock = sim.ErrDeadlock
	// QueueSnapshot reports one central queue's instantaneous occupancy
	// (see Engine.Snapshot and Config.OnCycle).
	QueueSnapshot = sim.QueueSnapshot
	// Observer taps a run's deliveries, cycles, and completion; attach one
	// with Config.Observer or WithObserver. See the internal/obs package
	// docs for the probe contract.
	Observer = obs.Observer
	// MetricSnapshot is a merged, fixed-size snapshot of the metrics core:
	// counters, gauges, and exponential histograms at one cycle boundary.
	MetricSnapshot = obs.Snapshot
	// Plan schedules a run for Engine.Run / AtomicEngine.Run: build one
	// with StaticPlan or DynamicPlan.
	Plan = sim.Plan
	// RunResult carries a run's Metrics plus, when observability is on,
	// the final MetricSnapshot.
	RunResult = sim.RunResult
	// Sampler is the built-in queue-occupancy time-series observer.
	Sampler = obs.Sampler
	// Sample is one point of the Sampler's series.
	Sample = obs.Sample
	// LatencyObserver collects per-delivery latency statistics (mean,
	// percentiles, histograms) behind the Observer interface.
	LatencyObserver = obs.Latency
	// JSONLObserver writes the metric time series as JSON lines.
	JSONLObserver = obs.JSONLWriter
)

// Selection policies.
const (
	PolicyFirstFree   = sim.PolicyFirstFree
	PolicyRandom      = sim.PolicyRandom
	PolicyStaticFirst = sim.PolicyStaticFirst
	PolicyLastFree    = sim.PolicyLastFree
)

// Metric identifiers, for indexing a MetricSnapshot's counters, gauges and
// histograms (see internal/obs for the semantics of each).
type (
	// CounterID identifies a monotonic event counter.
	CounterID = obs.CounterID
	// GaugeID identifies an instantaneous level.
	GaugeID = obs.GaugeID
	// HistID identifies an exponential-bucket histogram.
	HistID = obs.HistID
)

const (
	CInjAttempts     = obs.CInjAttempts
	CInjBackpressure = obs.CInjBackpressure
	CInjected        = obs.CInjected
	CDelivered       = obs.CDelivered
	CMoves           = obs.CMoves
	CDynamicMoves    = obs.CDynamicMoves
	CLinkTransfers   = obs.CLinkTransfers
	COutputStalls    = obs.COutputStalls
	CWaitParked      = obs.CWaitParked
	CMailPosts       = obs.CMailPosts
	CCutThrough      = obs.CCutThrough

	GQueueOccupancy = obs.GQueueOccupancy
	GInFlight       = obs.GInFlight
	GMaxQueue       = obs.GMaxQueue
	GLiveNodes      = obs.GLiveNodes

	HLatency  = obs.HLatency
	HQueueLen = obs.HQueueLen
)

// LatencyCollector accumulates per-delivery latency statistics (mean,
// percentiles, histograms). Assign its OnDeliver method to Config.OnDeliver.
//
// Deprecated: use NewLatencyObserver with Config.Observer / WithObserver;
// it wraps the same collector behind the Observer interface.
type LatencyCollector = stats.Collector

// NewLatencyCollector returns an empty latency collector.
//
// Deprecated: use NewLatencyObserver.
func NewLatencyCollector() *LatencyCollector { return stats.NewCollector() }

// NewLatencyObserver returns an empty latency-collecting observer.
func NewLatencyObserver() *LatencyObserver { return obs.NewLatency() }

// NewSampler returns a queue-occupancy sampler with the given period.
func NewSampler(every int64) *Sampler { return obs.NewSampler(every) }

// NewJSONLObserver returns an observer writing one JSON line of metrics to
// w every `every` cycles, plus a final line at completion.
func NewJSONLObserver(w io.Writer, every int64) *JSONLObserver {
	return obs.NewJSONLWriter(w, every)
}

// StaticPlan returns a drain-to-completion plan with the given cycle
// budget (0 = unbounded) for Engine.Run.
func StaticPlan(maxCycles int64) Plan { return sim.StaticPlan(maxCycles) }

// DynamicPlan returns a fixed warmup+measure window plan for Engine.Run.
func DynamicPlan(warmup, measure int64) Plan { return sim.DynamicPlan(warmup, measure) }

// NewEngine returns the buffered cycle-accurate simulator for cfg.
func NewEngine(cfg Config) (*Engine, error) { return sim.NewEngine(cfg) }

// NewAtomicEngine returns the abstract queue-to-queue simulator for cfg.
func NewAtomicEngine(cfg Config) (*AtomicEngine, error) { return sim.NewAtomicEngine(cfg) }

// AlgorithmNames lists the specs accepted by NewAlgorithm.
func AlgorithmNames() []string {
	return []string{
		"hypercube-adaptive:<dims>",
		"hypercube-hung:<dims>",
		"hypercube-ecube:<dims>",
		"mesh-adaptive:<side>x<side>[x...]",
		"mesh-twophase:<side>x<side>[x...]",
		"mesh-xy:<side>x<side>[x...]",
		"shuffle-adaptive:<dims>",
		"shuffle-static:<dims>",
		"shuffle-eager:<dims>",
		"ccc-adaptive:<dims>",
		"ccc-static:<dims>",
		"torus-adaptive:<side>x<side>[x...]",
	}
}

// maxSpecNodes caps the node count a textual spec may ask for, so a typo
// like "mesh-adaptive:100000x100000" fails fast instead of allocating.
const maxSpecNodes = 1 << 24

// NewAlgorithm builds an algorithm from a textual spec such as
// "hypercube-adaptive:10", "mesh-adaptive:16x16" or "torus-adaptive:8x8".
// Malformed or out-of-range sizes (e.g. "hypercube-adaptive:-1",
// "mesh-adaptive:0x5") are reported as errors, never panics: each family's
// topology bounds — hypercube and shuffle-exchange dimension, CCC order,
// minimum mesh/torus sides — are validated here before construction.
func NewAlgorithm(spec string) (Algorithm, error) {
	name, arg, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("repro: algorithm spec %q needs a size, e.g. %q", spec, "hypercube-adaptive:10")
	}
	dims := func(lo, hi int) (int, error) {
		d, err := strconv.Atoi(arg)
		if err != nil {
			return 0, fmt.Errorf("repro: bad dimension %q in %q", arg, spec)
		}
		if d < lo || d > hi {
			return 0, fmt.Errorf("repro: %s: dimension %d out of range [%d,%d]", spec, d, lo, hi)
		}
		return d, nil
	}
	shape := func(minSide int) ([]int, error) {
		parts := strings.Split(arg, "x")
		out := make([]int, len(parts))
		nodes := 1
		for i, p := range parts {
			v, err := strconv.Atoi(p)
			if err != nil {
				return nil, fmt.Errorf("repro: bad shape %q in %q", arg, spec)
			}
			if v < minSide {
				return nil, fmt.Errorf("repro: %s: side %d must be >= %d, got %d", spec, i, minSide, v)
			}
			if nodes > maxSpecNodes/v {
				return nil, fmt.Errorf("repro: %s: more than %d nodes", spec, maxSpecNodes)
			}
			nodes *= v
			out[i] = v
		}
		return out, nil
	}
	switch name {
	case "hypercube-adaptive":
		d, err := dims(1, 30)
		if err != nil {
			return nil, err
		}
		return core.NewHypercubeAdaptive(d), nil
	case "hypercube-hung":
		d, err := dims(1, 30)
		if err != nil {
			return nil, err
		}
		return core.NewHypercubeHung(d), nil
	case "hypercube-ecube":
		d, err := dims(1, 30)
		if err != nil {
			return nil, err
		}
		return core.NewHypercubeECube(d), nil
	case "mesh-adaptive":
		s, err := shape(1)
		if err != nil {
			return nil, err
		}
		return core.NewMeshAdaptive(s...), nil
	case "mesh-twophase":
		s, err := shape(1)
		if err != nil {
			return nil, err
		}
		return core.NewMeshTwoPhase(s...), nil
	case "mesh-xy":
		s, err := shape(1)
		if err != nil {
			return nil, err
		}
		return core.NewMeshXY(s...), nil
	case "shuffle-adaptive":
		d, err := dims(1, 26)
		if err != nil {
			return nil, err
		}
		return core.NewShuffleExchangeAdaptive(d), nil
	case "shuffle-static":
		d, err := dims(1, 26)
		if err != nil {
			return nil, err
		}
		return core.NewShuffleExchangeStatic(d), nil
	case "shuffle-eager":
		d, err := dims(1, 26)
		if err != nil {
			return nil, err
		}
		return core.NewShuffleExchangeEager(d), nil
	case "ccc-adaptive":
		d, err := dims(2, 16)
		if err != nil {
			return nil, err
		}
		return core.NewCCCAdaptive(d), nil
	case "ccc-static":
		d, err := dims(2, 16)
		if err != nil {
			return nil, err
		}
		return core.NewCCCStatic(d), nil
	case "torus-adaptive":
		s, err := shape(3)
		if err != nil {
			return nil, err
		}
		return core.NewTorusAdaptive(s...), nil
	}
	return nil, fmt.Errorf("repro: unknown algorithm %q (known: %s)", name, strings.Join(AlgorithmNames(), ", "))
}

// NewPattern builds a traffic pattern from a textual spec for an algorithm's
// topology: "random", "complement", "transpose", "leveled", "bit-reversal",
// "mesh-transpose" and "hotspot:<fraction>". Hypercube-address patterns
// (complement, transpose, leveled, bit-reversal) require a power-of-two node
// count; mesh-transpose requires a square 2-dimensional mesh or torus.
func NewPattern(spec string, a Algorithm, seed int64) (Pattern, error) {
	topo := a.Topology()
	nodes := topo.Nodes()
	bits := func() (int, error) {
		b := 0
		for 1<<b < nodes {
			b++
		}
		if 1<<b != nodes {
			return 0, fmt.Errorf("repro: pattern %q needs a power-of-two node count, have %d", spec, nodes)
		}
		return b, nil
	}
	name, arg, _ := strings.Cut(spec, ":")
	switch name {
	case "random":
		return traffic.Random{Nodes: nodes}, nil
	case "complement":
		b, err := bits()
		if err != nil {
			return nil, err
		}
		return traffic.Complement{Bits: b}, nil
	case "transpose":
		b, err := bits()
		if err != nil {
			return nil, err
		}
		return traffic.Transpose{Bits: b}, nil
	case "leveled":
		b, err := bits()
		if err != nil {
			return nil, err
		}
		return traffic.NewLeveled(b, seed), nil
	case "bit-reversal":
		b, err := bits()
		if err != nil {
			return nil, err
		}
		return traffic.BitReversal{Bits: b}, nil
	case "mesh-transpose":
		side := 0
		switch t := topo.(type) {
		case *topology.Mesh:
			if t.Dims() == 2 && t.Shape()[0] == t.Shape()[1] {
				side = t.Shape()[0]
			}
		case *topology.Torus:
			if t.Dims() == 2 && t.Shape()[0] == t.Shape()[1] {
				side = t.Shape()[0]
			}
		}
		if side == 0 {
			return nil, fmt.Errorf("repro: mesh-transpose needs a square 2-dimensional mesh or torus, have %s", topo.Name())
		}
		return traffic.MeshTranspose{Side: side}, nil
	case "hotspot":
		frac := 0.2
		if arg != "" {
			v, err := strconv.ParseFloat(arg, 64)
			if err != nil || !(v >= 0 && v <= 1) { // rejects NaN too
				return nil, fmt.Errorf("repro: bad hotspot fraction %q", arg)
			}
			frac = v
		}
		return traffic.Hotspot{Nodes: nodes, Hot: int32(nodes / 2), Fraction: frac}, nil
	}
	return nil, fmt.Errorf("repro: unknown pattern %q", spec)
}

// NewStaticTraffic returns the paper's static injection model: perNode
// packets at every node, destined per the pattern.
func NewStaticTraffic(p Pattern, a Algorithm, perNode int, seed int64) TrafficSource {
	return traffic.NewStaticSource(p, a.Topology().Nodes(), perNode, seed)
}

// NewDynamicTraffic returns the paper's dynamic injection model: every cycle
// each node attempts to inject with probability lambda.
func NewDynamicTraffic(p Pattern, a Algorithm, lambda float64, seed int64) TrafficSource {
	return traffic.NewBernoulliSource(p, a.Topology().Nodes(), lambda, seed)
}

// VerifyDeadlockFree builds the algorithm's queue dependency graph by
// exhaustive exploration and certifies the paper's deadlock-freedom
// conditions: the static edges form a DAG (up to certified bubble rings)
// and every dynamic link retains a static escape. Exploration is
// exhaustive, so use small instances (hundreds of nodes).
func VerifyDeadlockFree(a Algorithm) error {
	g, err := qdg.Build(a)
	if err != nil {
		return err
	}
	return g.Verify()
}

// DescribeNode renders the functional router design of Section 6 for one
// node of the algorithm's network — the buffers each physical link needs,
// as drawn in the paper's Figures 4-6. Like VerifyDeadlockFree it explores
// the algorithm exhaustively, so use small instances.
func DescribeNode(a Algorithm, node int) (string, error) {
	d, err := qdg.DescribeNode(a, int32(node))
	if err != nil {
		return "", err
	}
	return d.String(), nil
}

// WriteQDG writes the algorithm's queue dependency graph in Graphviz DOT
// format (static edges solid, dynamic dashed, bubble-guarded dotted) —
// the rendering of the paper's Figures 1-3.
func WriteQDG(w io.Writer, a Algorithm) error {
	g, err := qdg.Build(a)
	if err != nil {
		return err
	}
	return g.WriteDOT(w)
}
