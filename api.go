// Package repro is the public facade of this reproduction of Pifarré,
// Gravano, Felperin and Sanz, "Fully-Adaptive Minimal Deadlock-Free Packet
// Routing in Hypercubes, Meshes, and Other Networks" (SPAA 1991).
//
// It re-exports the pieces a user composes:
//
//   - routing algorithms (NewAlgorithm or the core constructors),
//   - traffic patterns and injection models (NewPattern, NewStaticTraffic,
//     NewDynamicTraffic),
//   - the simulators behind the engine-agnostic Simulator API
//     (NewSimulator("buffered", cfg) for the cycle-accurate node model of
//     the paper's Sections 6-7, NewSimulator("atomic", cfg) for the
//     abstract queue-to-queue model of Section 2),
//   - the canonical RunSpec: a serializable description of a complete run
//     that validates, fingerprints and builds (RunSpec.Build, ExecuteSpec)
//     — the same currency the tables sweep, the result store and the
//     routesimd HTTP daemon trade in,
//   - the queue-dependency-graph verifier (VerifyDeadlockFree, WriteQDG),
//   - the experiment harness that regenerates the paper's Tables 1-12
//     (Tables, FindTable).
//
// The concrete-engine constructors NewEngine and NewAtomicEngine are
// deprecated in favor of NewSimulator and RunSpec.Build; they keep working
// through v0.x.
//
// See examples/quickstart for a complete end-to-end program.
package repro

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/qdg"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Re-exported core types.
type (
	// Algorithm is a routing function over per-node queues (Section 2).
	Algorithm = core.Algorithm
	// Packet is a message in flight.
	Packet = core.Packet
	// Move is a candidate next placement for a packet.
	Move = core.Move
	// Props describes an algorithm's static properties.
	Props = core.Props
	// Config configures a simulator.
	Config = sim.Config
	// Metrics aggregates a run's observables (L_avg, L_max, I_r, ...).
	Metrics = sim.Metrics
	// Engine is the buffered cycle-accurate simulator (Sections 6-7).
	Engine = sim.Engine
	// AtomicEngine is the abstract queue-to-queue simulator (Section 2).
	AtomicEngine = sim.AtomicEngine
	// Simulator is the engine-agnostic run API (Run, Step, Snapshot,
	// Metrics, ...) implemented by both Engine and AtomicEngine; build one
	// with NewSimulator.
	Simulator = sim.Simulator
	// FaultPlan schedules deterministic link and node failures for a run;
	// assign one to Config.Faults or WithFaultPlan. Build it with the
	// FaultPlan methods or parse a textual spec with ParseFaultSpec.
	FaultPlan = fault.Plan
	// DeadlockDump is the wait-for state captured when the deadlock watchdog
	// fires (ErrDeadlock.Dump, and the OnDeadlock observer probe).
	DeadlockDump = obs.DeadlockDump
	// TrafficSource drives packet injection.
	TrafficSource = sim.TrafficSource
	// Pattern maps sources to destinations.
	Pattern = traffic.Pattern
	// Policy selects among admissible candidate moves.
	Policy = sim.Policy
	// ErrDeadlock reports a watchdog-detected deadlock.
	ErrDeadlock = sim.ErrDeadlock
	// QueueSnapshot reports one central queue's instantaneous occupancy
	// (see Engine.Snapshot and Config.OnCycle).
	QueueSnapshot = sim.QueueSnapshot
	// Observer taps a run's deliveries, cycles, and completion; attach one
	// with Config.Observer or WithObserver. See the internal/obs package
	// docs for the probe contract.
	Observer = obs.Observer
	// ObserverBase is a no-op Observer for embedding: override only the
	// probes you need.
	ObserverBase = obs.Base
	// MetricSnapshot is a merged, fixed-size snapshot of the metrics core:
	// counters, gauges, and exponential histograms at one cycle boundary.
	MetricSnapshot = obs.Snapshot
	// Plan schedules a run for Engine.Run / AtomicEngine.Run: build one
	// with StaticPlan or DynamicPlan.
	Plan = sim.Plan
	// RunResult carries a run's Metrics plus, when observability is on,
	// the final MetricSnapshot.
	RunResult = sim.RunResult
	// Sampler is the built-in queue-occupancy time-series observer.
	Sampler = obs.Sampler
	// Sample is one point of the Sampler's series.
	Sample = obs.Sample
	// LatencyObserver collects per-delivery latency statistics (mean,
	// percentiles, histograms) behind the Observer interface.
	LatencyObserver = obs.Latency
	// JSONLObserver writes the metric time series as JSON lines.
	JSONLObserver = obs.JSONLWriter
)

// Selection policies.
const (
	PolicyFirstFree   = sim.PolicyFirstFree
	PolicyRandom      = sim.PolicyRandom
	PolicyStaticFirst = sim.PolicyStaticFirst
	PolicyLastFree    = sim.PolicyLastFree
)

// ParsePolicy parses a textual policy name ("first-free", "random",
// "static-first", "last-free"; "" means first-free) into a selection
// policy.
func ParsePolicy(s string) (sim.Policy, error) { return sim.ParsePolicy(s) }

// The canonical RunSpec API: one serializable description of a complete
// run — algorithm, pattern, engine kind, policy, seed, injection model,
// faults — shared by the library, the tables sweep and the routesimd
// daemon. A RunSpec validates (Validate, with structured SpecFieldError
// field errors), fingerprints (Fingerprint: the content address results
// are cached under), and builds (Build: a configured Simulator).
type (
	// RunSpec is the canonical, versioned run description (internal/exec).
	RunSpec = exec.RunSpec
	// SpecResult pairs a RunSpec with the metrics it produced, plus the
	// fingerprint and build identity — the unit the result store persists.
	SpecResult = exec.Result
	// SpecFieldError reports which RunSpec field failed validation and why.
	SpecFieldError = exec.FieldError
)

// ExecuteSpec validates and runs a RunSpec to completion (or ctx
// cancellation), with an optional read-only observer tapping the run. The
// returned SpecResult.Metrics is bit-deterministic for a given fingerprint.
func ExecuteSpec(ctx context.Context, s RunSpec, o Observer) (SpecResult, error) {
	return exec.Run(ctx, s, o)
}

// Metric identifiers, for indexing a MetricSnapshot's counters, gauges and
// histograms (see internal/obs for the semantics of each).
type (
	// CounterID identifies a monotonic event counter.
	CounterID = obs.CounterID
	// GaugeID identifies an instantaneous level.
	GaugeID = obs.GaugeID
	// HistID identifies an exponential-bucket histogram.
	HistID = obs.HistID
)

const (
	CInjAttempts     = obs.CInjAttempts
	CInjBackpressure = obs.CInjBackpressure
	CInjected        = obs.CInjected
	CDelivered       = obs.CDelivered
	CMoves           = obs.CMoves
	CDynamicMoves    = obs.CDynamicMoves
	CLinkTransfers   = obs.CLinkTransfers
	COutputStalls    = obs.COutputStalls
	CWaitParked      = obs.CWaitParked
	CMailPosts       = obs.CMailPosts
	CCutThrough      = obs.CCutThrough
	CMisrouted       = obs.CMisrouted
	CFaultDrops      = obs.CFaultDrops
	CInjRetries      = obs.CInjRetries

	GQueueOccupancy = obs.GQueueOccupancy
	GInFlight       = obs.GInFlight
	GMaxQueue       = obs.GMaxQueue
	GLiveNodes      = obs.GLiveNodes
	GDeadLinks      = obs.GDeadLinks
	GDeadNodes      = obs.GDeadNodes

	HLatency  = obs.HLatency
	HQueueLen = obs.HQueueLen
	HDropAge  = obs.HDropAge
)

// LatencyCollector accumulates per-delivery latency statistics (mean,
// percentiles, histograms). Assign its OnDeliver method to Config.OnDeliver.
//
// Deprecated: use NewLatencyObserver with Config.Observer / WithObserver;
// it wraps the same collector behind the Observer interface. Removal
// timeline: LatencyCollector, NewLatencyCollector and the raw
// Config.OnDeliver / Config.OnCycle callbacks were deprecated when the
// Observer API landed (PR 2); they remain supported through the v0.x line
// and will be removed together in v1. No code in this repository uses them
// anymore.
type LatencyCollector = stats.Collector

// NewLatencyCollector returns an empty latency collector.
//
// Deprecated: use NewLatencyObserver (see LatencyCollector for the removal
// timeline).
func NewLatencyCollector() *LatencyCollector { return stats.NewCollector() }

// NewLatencyObserver returns an empty latency-collecting observer.
func NewLatencyObserver() *LatencyObserver { return obs.NewLatency() }

// NewSampler returns a queue-occupancy sampler with the given period.
func NewSampler(every int64) *Sampler { return obs.NewSampler(every) }

// NewJSONLObserver returns an observer writing one JSON line of metrics to
// w every `every` cycles, plus a final line at completion.
func NewJSONLObserver(w io.Writer, every int64) *JSONLObserver {
	return obs.NewJSONLWriter(w, every)
}

// StaticPlan returns a drain-to-completion plan with the given cycle
// budget (0 = unbounded) for Engine.Run.
func StaticPlan(maxCycles int64) Plan { return sim.StaticPlan(maxCycles) }

// DynamicPlan returns a fixed warmup+measure window plan for Engine.Run.
func DynamicPlan(warmup, measure int64) Plan { return sim.DynamicPlan(warmup, measure) }

// NewEngine returns the buffered cycle-accurate simulator for cfg.
//
// Deprecated: use NewSimulator("buffered", cfg), which returns the same
// engine behind the engine-agnostic Simulator API, or build the whole run
// from a serializable RunSpec via RunSpec.Build. NewEngine remains
// supported through the v0.x line; new code should not need the concrete
// *Engine type.
func NewEngine(cfg Config) (*Engine, error) { return sim.NewEngine(cfg) }

// NewAtomicEngine returns the abstract queue-to-queue simulator for cfg.
//
// Deprecated: use NewSimulator("atomic", cfg) or RunSpec.Build; see
// NewEngine.
func NewAtomicEngine(cfg Config) (*AtomicEngine, error) { return sim.NewAtomicEngine(cfg) }

// EngineNames lists the engine kinds accepted by NewSimulator.
func EngineNames() []string { return sim.EngineKinds }

// NewSimulator builds the simulation engine selected by kind — "buffered"
// (or "") for the cycle-accurate Engine, "atomic" for the AtomicEngine —
// behind the engine-agnostic Simulator API.
func NewSimulator(kind string, cfg Config) (Simulator, error) { return sim.NewSimulator(kind, cfg) }

// ParseFaultSpec parses a textual fault schedule into a FaultPlan. The spec
// is a comma-separated list of:
//
//	link:<node>:<port>@<cycle>[+<dur>]   one directed link (and its reverse)
//	node:<node>@<cycle>[+<dur>]          one node with all its links
//	links:<frac>[:<seed>]@<cycle>[+<dur>]  a seeded random fraction of links
//	nodes:<frac>[:<seed>]@<cycle>[+<dur>]  a seeded random fraction of nodes
//
// Without +<dur> the failure is permanent; with it the component revives
// after dur cycles. Example: "links:0.05@0,node:3@100+50".
func ParseFaultSpec(s string) (*FaultPlan, error) { return fault.ParseSpec(s) }

// FaultForever marks a FaultPlan failure with no scheduled recovery.
const FaultForever = fault.Forever

// Spec grammar. Every textual spec the facade accepts is parsed by one
// grammar, documented here once; NewAlgorithm, NewTopology and NewPattern
// report malformed input with the same two structured error shapes — an
// *UnknownNameError when the family name is not recognized (listing the
// valid names) and a *SpecParseError when a recognized spec carries a
// malformed or out-of-range argument — and RunSpec validation wraps either
// in a *SpecFieldError naming the offending JSON field.
//
// Algorithm specs (NewAlgorithm, RunSpec.Algo) name a routing-algorithm
// family plus its network size:
//
//	hypercube-adaptive:<dims>    hypercube-hung:<dims>   hypercube-ecube:<dims>
//	mesh-adaptive:<s>x<s>[x...]  mesh-twophase:<shape>   mesh-xy:<shape>
//	torus-adaptive:<s>x<s>[x...] shuffle-adaptive:<dims> shuffle-static:<dims>
//	shuffle-eager:<dims>         ccc-adaptive:<dims>     ccc-static:<dims>
//	graph-adaptive:<generator>
//
// Topology specs (NewTopology, RunSpec.Topology) name a network on its
// own — the v2 RunSpec separation, in which the algo field carries only the
// bare family:
//
//	hypercube:<dims>   mesh:<s>x<s>[x...]   torus:<s>x<s>[x...]
//	shuffle:<dims>     ccc:<dims>           graph:<generator>
//
// where <generator> produces an irregular network, deterministically in
// its parameters, verified strongly-connected at construction:
//
//	random-regular:n=<n>,k=<k>,seed=<seed>   dragonfly:a=<a>,g=<g>
//	hyperx:<s>x<s>[x...]                     fat-tree:leaves=<l>,spines=<s>
//
// Pattern specs (NewPattern, RunSpec.Pattern): "random", "complement",
// "transpose", "leveled", "bit-reversal", "mesh-transpose",
// "hotspot:<fraction>". Fault specs (ParseFaultSpec, RunSpec.Faults) are
// documented at ParseFaultSpec.
type (
	// SpecParseError reports a recognized spec with a malformed or
	// out-of-range argument; Spec names the offending spec as given.
	SpecParseError = spec.ParseError
	// UnknownNameError reports a spec whose family name is not recognized,
	// listing the accepted names.
	UnknownNameError = spec.UnknownNameError
	// Topology is a static interconnection network: the node/port/link
	// structure an Algorithm routes on. Build one with NewTopology.
	Topology = topology.Topology
	// GraphTopology is an arbitrary strongly-connected digraph produced by
	// a "graph:" generator spec, with a precomputed all-pairs distance
	// table.
	GraphTopology = topology.Graph
)

// AlgorithmNames lists the specs accepted by NewAlgorithm.
func AlgorithmNames() []string { return spec.AlgorithmNames() }

// PatternNames lists the specs accepted by NewPattern.
func PatternNames() []string { return spec.PatternNames() }

// TopologyNames lists the specs accepted by NewTopology.
func TopologyNames() []string { return spec.TopologyNames() }

// NewAlgorithm builds an algorithm from a textual spec such as
// "hypercube-adaptive:10", "mesh-adaptive:16x16" or
// "graph-adaptive:dragonfly:a=4,g=9" (see AlgorithmNames for the full list,
// and the Spec grammar section above). Malformed or out-of-range sizes are
// reported as errors, never panics.
func NewAlgorithm(s string) (Algorithm, error) { return spec.Algorithm(s) }

// NewTopology builds a network from a textual topology spec such as
// "hypercube:10", "torus:8x8" or "graph:random-regular:n=256,k=4,seed=7"
// (see TopologyNames and the Spec grammar section above). Generated
// "graph:" networks are deterministic in their parameters and verified
// strongly connected; errors are the same structured shapes NewAlgorithm
// reports.
func NewTopology(s string) (Topology, error) { return spec.Topology(s) }

// TopologySpec renders the canonical spec of a topology built by
// NewTopology, such that NewTopology(TopologySpec(t)) reconstructs an
// equivalent network.
func TopologySpec(t Topology) (string, error) { return spec.FormatTopology(t) }

// AlgorithmSpec renders the canonical spec of an algorithm built by
// NewAlgorithm, such that NewAlgorithm(AlgorithmSpec(a)) reconstructs an
// equivalent algorithm.
func AlgorithmSpec(a Algorithm) (string, error) { return spec.Format(a) }

// NewPattern builds a traffic pattern from a textual spec for an algorithm's
// topology: "random", "complement", "transpose", "leveled", "bit-reversal",
// "mesh-transpose" and "hotspot:<fraction>". Hypercube-address patterns
// (complement, transpose, leveled, bit-reversal) require a power-of-two node
// count; mesh-transpose requires a square 2-dimensional mesh or torus.
func NewPattern(s string, a Algorithm, seed int64) (Pattern, error) {
	return spec.Pattern(s, a, seed)
}

// NewStaticTraffic returns the paper's static injection model: perNode
// packets at every node, destined per the pattern.
func NewStaticTraffic(p Pattern, a Algorithm, perNode int, seed int64) TrafficSource {
	return traffic.NewStaticSource(p, a.Topology().Nodes(), perNode, seed)
}

// NewDynamicTraffic returns the paper's dynamic injection model: every cycle
// each node attempts to inject with probability lambda.
func NewDynamicTraffic(p Pattern, a Algorithm, lambda float64, seed int64) TrafficSource {
	return traffic.NewBernoulliSource(p, a.Topology().Nodes(), lambda, seed)
}

// TrafficNames lists the traffic-model specs accepted by NewTrafficSource.
func TrafficNames() []string { return spec.TrafficNames() }

// NewTrafficSource builds a dynamic injection model from a textual traffic
// spec: "bernoulli" (the default; rate lambda), bursty
// "mmpp:on=0.9,off=0.05,p10=0.1,p01=0.1", square-wave
// "onoff:hi=0.9,lo=0.1,period=64,on=32", or "trace:<path>" replaying a
// recorded JSONL trace bit-exactly (the only model valid under a static
// plan; a trace carries its own cycle stamps). Rate parameters documented
// as defaulting do so from lambda; a trace path is opened here.
func NewTrafficSource(tspec string, p Pattern, a Algorithm, lambda float64, seed int64) (TrafficSource, error) {
	ts, err := spec.ParseTraffic(tspec)
	if err != nil {
		return nil, err
	}
	return ts.Build(p, a.Topology().Nodes(), lambda, seed)
}

// RecordingSource wraps a traffic source and records every injection;
// with W set it streams the record as trace JSONL that NewTrafficSource's
// "trace:" model replays bit-exactly. See NewRecordingTraffic.
type RecordingSource = traffic.RecordingSource

// NewRecordingTraffic wraps src so every injection (and, on the batched
// path, every blocked attempt) streams to w as trace JSONL. Call Flush when
// the run ends. The wrapper keeps only the latest record in memory, so
// recording adds no per-packet allocation to long runs.
func NewRecordingTraffic(src TrafficSource, w io.Writer) *RecordingSource {
	return &RecordingSource{Inner: src, Cap: 1, W: w}
}

// VerifyDeadlockFree builds the algorithm's queue dependency graph by
// exhaustive exploration and certifies the paper's deadlock-freedom
// conditions: the static edges form a DAG (up to certified bubble rings)
// and every dynamic link retains a static escape. A cycle the certification
// cannot discharge is reported as a *qdg.CycleError carrying the offending
// queue path (node and class, queue by queue). Exploration is exhaustive,
// so use small instances (hundreds of nodes).
func VerifyDeadlockFree(a Algorithm) error {
	g, err := qdg.Build(a)
	if err != nil {
		return err
	}
	return g.Verify()
}

// DescribeNode renders the functional router design of Section 6 for one
// node of the algorithm's network — the buffers each physical link needs,
// as drawn in the paper's Figures 4-6. Like VerifyDeadlockFree it explores
// the algorithm exhaustively, so use small instances.
func DescribeNode(a Algorithm, node int) (string, error) {
	d, err := qdg.DescribeNode(a, int32(node))
	if err != nil {
		return "", err
	}
	return d.String(), nil
}

// WriteQDG writes the algorithm's queue dependency graph in Graphviz DOT
// format (static edges solid, dynamic dashed, bubble-guarded dotted) —
// the rendering of the paper's Figures 1-3.
func WriteQDG(w io.Writer, a Algorithm) error {
	g, err := qdg.Build(a)
	if err != nil {
		return err
	}
	return g.WriteDOT(w)
}
