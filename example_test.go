package repro_test

import (
	"fmt"
	"log"

	"repro"
)

// Routing one static workload end to end: build the paper's fully-adaptive
// hypercube algorithm, certify it deadlock-free, and drain a complement
// permutation — whose latency is exactly 2n+1 on an uncongested run.
func Example() {
	algo, err := repro.NewAlgorithm("hypercube-adaptive:6")
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.VerifyDeadlockFree(algo); err != nil {
		log.Fatal(err)
	}
	pat, err := repro.NewPattern("complement", algo, 1)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := repro.NewEngine(repro.Config{Algorithm: algo, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	m, err := eng.RunStatic(repro.NewStaticTraffic(pat, algo, 1, 2), 100000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delivered %d packets, Lavg %.0f, Lmax %d\n", m.Delivered, m.AvgLatency(), m.LatencyMax)
	// Output: delivered 64 packets, Lavg 13, Lmax 13
}

// The queue-dependency-graph verifier certifies any algorithm exhaustively
// on a small instance; broken schemes are rejected with a concrete cycle.
func ExampleVerifyDeadlockFree() {
	for _, spec := range []string{"hypercube-adaptive:4", "shuffle-adaptive:4", "torus-adaptive:4x4"} {
		algo, err := repro.NewAlgorithm(spec)
		if err != nil {
			log.Fatal(err)
		}
		if err := repro.VerifyDeadlockFree(algo); err != nil {
			fmt.Println(spec, "FAILED:", err)
			continue
		}
		fmt.Println(spec, "certified")
	}
	// Output:
	// hypercube-adaptive:4 certified
	// shuffle-adaptive:4 certified
	// torus-adaptive:4x4 certified
}

// DescribeNode prints the Section 6 router design (Figures 4-6): the link
// buffers a node needs under a given algorithm.
func ExampleDescribeNode() {
	algo, err := repro.NewAlgorithm("hypercube-adaptive:3")
	if err != nil {
		log.Fatal(err)
	}
	desc, err := repro.DescribeNode(algo, 0b101)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(desc)
	// Node 101 has a single incorrect-zero dimension (bit 1), so every
	// ascending packet leaving it is performing its last 0->1 correction
	// and enters q_B directly: the ascending link carries only a qB buffer.
	// Output:
	// node 5 of hypercube(3) under hypercube-adaptive: 2 central queues (qA, qB) + injection + delivery
	//   port 0 -> node 4      out buffers: dynamic, qB
	//   port 1 -> node 7      out buffers: qB
	//   port 2 -> node 1      out buffers: dynamic, qB
	//   in from 4                      in buffers: qA, qB
	//   in from 7                      in buffers: qB
	//   in from 1                      in buffers: qA, qB
}
