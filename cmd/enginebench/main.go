// Command enginebench measures the buffered engine's raw throughput
// (cycles/sec and delivered packets/sec) on the paper's λ=1 dynamic random
// workload and appends the result to the BENCH_engine.json perf trajectory,
// so every change to the engine's hot loop is measured against the recorded
// history.
//
// Typical use:
//
//	go run ./cmd/enginebench -label my-change
//	go run ./cmd/enginebench -label quick -dims 8,10 -measure 200
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		label   = flag.String("label", "dev", "label recorded for this run (e.g. a revision name)")
		out     = flag.String("out", "BENCH_engine.json", "trajectory file to append to; empty = print only")
		dims    = flag.String("dims", "8,10,12", "comma-separated hypercube dimensions")
		workers = flag.String("workers", "", "comma-separated worker counts (default \"1,<NumCPU>\")")
		warmup  = flag.Int64("warmup", 100, "warmup cycles per cell")
		measure = flag.Int64("measure", 400, "measured cycles per cell")
		repeat  = flag.Int("repeat", 3, "timed repetitions per cell (fastest kept)")
		seed    = flag.Int64("seed", 1, "simulation seed")
		base    = flag.String("baseline", "", "label of a recorded run to print speedups against (default: first run in the file)")
		note    = flag.String("note", "", "free-form context recorded with the run (e.g. host conditions)")
	)
	flag.Parse()

	cfg := bench.EngineBenchConfig{
		Dims:    parseInts(*dims),
		Workers: parseInts(*workers),
		Warmup:  *warmup,
		Measure: *measure,
		Repeat:  *repeat,
		Seed:    *seed,
	}
	run, err := bench.RunEngineBench(*label, cfg)
	fatal(err)
	run.Note = *note

	var baseline *bench.EngineBenchRun
	if *out != "" {
		file, err := bench.LoadEngineBench(*out)
		fatal(err)
		for i := range file.Runs {
			if file.Runs[i].Label == *base || (*base == "" && i == 0 && file.Runs[i].Label != *label) {
				baseline = &file.Runs[i]
				break
			}
		}
		fatal(bench.AppendEngineBench(*out, run))
	}
	fmt.Print(bench.FormatEngineBench(run, baseline))
	if *out != "" {
		fmt.Printf("appended run %q to %s\n", *label, *out)
	}
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		fatal(err)
		out = append(out, v)
	}
	return out
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "enginebench:", err)
		os.Exit(1)
	}
}
