// Command enginebench measures the simulation engines' raw throughput
// (cycles/sec and delivered packets/sec) on a dynamic random workload (λ=1
// on the hypercube; the extended-suite rates on the other topologies) and
// appends the result to the BENCH_engine.json perf trajectory, so every
// change to the engine's hot loop is measured against the recorded history.
//
// Typical use:
//
//	go run ./cmd/enginebench -label my-change
//	go run ./cmd/enginebench -label quick -dims 8,10 -measure 200
//	go run ./cmd/enginebench -label atomic-change -engine atomic
//	go run ./cmd/enginebench -label mesh-before -algo mesh -nomask
//	go run ./cmd/enginebench -label graph-before -algo graph,hyperx -notable
//	go run ./cmd/enginebench -label inject-before -nobatch
//	go run ./cmd/enginebench -label bursty -traffic mmpp,trace
//
// Comparison mode gates CI on regressions: it compares the matching cells
// of two trajectory files and exits nonzero when any cell of the second
// lost more than -tolerance of its baseline throughput:
//
//	go run ./cmd/enginebench -compare -tolerance 0.15 old.json new.json
//
// Scaling mode measures one parallel-efficiency curve — cycles/s of a fixed
// workload per worker count, plus the per-phase wall-clock breakdown when
// -phaseprof is set — and records it in BENCH_scaling.json:
//
//	go run ./cmd/enginebench -scaling -label my-change -workers 1,2,4
//	go run ./cmd/enginebench -scaling -phaseprof -rebalance 64 -label rb
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		label     = flag.String("label", "dev", "label recorded for this run (e.g. a revision name)")
		out       = flag.String("out", "BENCH_engine.json", "trajectory file to append to; empty = print only")
		algo      = flag.String("algo", "hypercube", "routing algorithm(s) to benchmark, comma-separated: hypercube|mesh|torus|shuffle|ccc|graph|dragonfly|hyperx|fattree")
		dims      = flag.String("dims", "", "comma-separated sizes (hypercube/shuffle/ccc: dimensions; mesh/torus: side); default per algo, so leave empty when -algo lists several")
		nomask    = flag.Bool("nomask", false, "disable the port-mask fast path (same-binary baseline for before/after runs)")
		notable   = flag.Bool("notable", false, "disable the compiled next-hop route tables (same-binary scan-path baseline for graph-adaptive cells)")
		nobatch   = flag.Bool("nobatch", false, "disable the batched injection fast path (same-binary baseline for before/after runs)")
		tmodel    = flag.String("traffic", "", "injection model(s) to time, comma-separated: bernoulli|mmpp|trace|perm (default bernoulli)")
		workers   = flag.String("workers", "", "comma-separated worker counts (default \"1,<NumCPU>\")")
		warmup    = flag.Int64("warmup", 100, "warmup cycles per cell")
		measure   = flag.Int64("measure", 400, "measured cycles per cell")
		repeat    = flag.Int("repeat", 3, "timed repetitions per cell (fastest kept)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		engine    = flag.String("engine", "buffered", "simulation model to benchmark: buffered|atomic")
		base      = flag.String("baseline", "", "label of a recorded run to print speedups against (default: first run in the file)")
		note      = flag.String("note", "", "free-form context recorded with the run (e.g. host conditions)")
		compare   = flag.Bool("compare", false, "compare two trajectory files (old.json new.json) and exit nonzero on regression")
		tolerance = flag.Float64("tolerance", 0.10, "compare mode: tolerated relative slowdown per cell (0.10 = 10%)")
		useLabel  = flag.String("compare-labels", "", "compare mode: \"oldLabel,newLabel\" run labels to compare (default: last run of each file)")

		scaling    = flag.Bool("scaling", false, "scaling mode: record a parallel-efficiency curve over -workers instead of the throughput trajectory")
		scalingOut = flag.String("scaling-out", "BENCH_scaling.json", "scaling mode: artifact file to append to; empty = print only")
		phaseprof  = flag.Bool("phaseprof", false, "scaling mode: additionally profile each point's per-phase wall time (separate pass)")
		rebalance  = flag.Int("rebalance", 0, "occupancy-weighted shard re-cut period in cycles (0 = off; buffered engine, workers > 1)")
	)
	flag.Parse()

	if *compare {
		os.Exit(runCompare(flag.Args(), *tolerance, *useLabel))
	}
	if *scaling {
		runScaling(*label, *scalingOut, *algo, *engine, *dims, *workers,
			*warmup, *measure, *repeat, *seed, *phaseprof, *rebalance, *note)
		return
	}

	var run bench.EngineBenchRun
	first := true
	for _, a := range strings.Split(*algo, ",") {
		for _, tm := range strings.Split(*tmodel, ",") {
			cfg := bench.EngineBenchConfig{
				Algo:    strings.TrimSpace(a),
				Dims:    parseInts(*dims),
				Workers: parseInts(*workers),
				Warmup:  *warmup,
				Measure: *measure,
				Repeat:  *repeat,
				Seed:    *seed,
				Engine:  *engine,
				NoMask:  *nomask,
				NoTable: *notable,
				NoBatch: *nobatch,
				Traffic: strings.TrimSpace(tm),
			}
			r, err := bench.RunEngineBench(*label, cfg)
			fatal(err)
			if first {
				run = r
				first = false
			} else {
				run.Results = append(run.Results, r.Results...)
			}
		}
	}
	run.Note = *note

	var baseline *bench.EngineBenchRun
	if *out != "" {
		file, err := bench.LoadEngineBench(*out)
		fatal(err)
		for i := range file.Runs {
			if file.Runs[i].Label == *base || (*base == "" && i == 0 && file.Runs[i].Label != *label) {
				baseline = &file.Runs[i]
				break
			}
		}
		fatal(bench.AppendEngineBench(*out, run))
	}
	fmt.Print(bench.FormatEngineBench(run, baseline))
	if *out != "" {
		fmt.Printf("appended run %q to %s\n", *label, *out)
	}
}

// runScaling records one scaling curve per algo listed in algos (each engine
// sweep shares the worker ladder) and appends it to the scaling artifact.
func runScaling(label, out, algos, engine, dims, workers string,
	warmup, measure int64, repeat int, seed int64, phaseprof bool, rebalance int, note string) {
	sizes := parseInts(dims)
	for _, a := range strings.Split(algos, ",") {
		a = strings.TrimSpace(a)
		// The scaling protocol fixes one workload per curve; with -dims
		// listing several sizes, each size gets its own curve.
		curveDims := sizes
		if len(curveDims) == 0 {
			curveDims = []int{0} // ScalingConfig default for the algo
		}
		for _, d := range curveDims {
			cfg := bench.ScalingConfig{
				Engine:         engine,
				Algo:           a,
				Dims:           d,
				Workers:        parseInts(workers),
				Warmup:         warmup,
				Measure:        measure,
				Repeat:         repeat,
				Seed:           seed,
				PhaseProf:      phaseprof,
				RebalanceEvery: rebalance,
			}
			run, err := bench.RunScaling(label, cfg)
			fatal(err)
			run.Note = note
			if out != "" {
				fatal(bench.AppendScaling(out, run))
			}
			fmt.Print(bench.FormatScaling(run))
			if out != "" {
				fmt.Printf("appended scaling run %q to %s\n", label, out)
			}
		}
	}
}

// runCompare loads two trajectory files, picks one run from each, and
// reports the regressed cells. Exit status: 0 = no regression, 1 =
// regression found, 2 = usage or load error.
func runCompare(args []string, tolerance float64, labels string) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "enginebench: -compare needs exactly two trajectory files: old.json new.json")
		return 2
	}
	var oldLabel, newLabel string
	if labels != "" {
		parts := strings.SplitN(labels, ",", 2)
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "enginebench: -compare-labels wants \"oldLabel,newLabel\"")
			return 2
		}
		oldLabel, newLabel = parts[0], parts[1]
	}
	baseRun, err := pickRun(args[0], oldLabel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "enginebench:", err)
		return 2
	}
	curRun, err := pickRun(args[1], newLabel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "enginebench:", err)
		return 2
	}
	regs := bench.CompareEngineBench(baseRun, curRun, tolerance)
	fmt.Printf("compare %q (%s) vs %q (%s), tolerance %.0f%%:\n",
		baseRun.Label, args[0], curRun.Label, args[1], 100*tolerance)
	if len(regs) == 0 {
		fmt.Println("  ok: no cell regressed")
		return 0
	}
	for _, r := range regs {
		fmt.Println("  REGRESSION:", r)
	}
	return 1
}

// pickRun loads a trajectory file and returns the run with the given label,
// or the last recorded run when label is empty.
func pickRun(path, label string) (bench.EngineBenchRun, error) {
	file, err := bench.LoadEngineBench(path)
	if err != nil {
		return bench.EngineBenchRun{}, err
	}
	if len(file.Runs) == 0 {
		return bench.EngineBenchRun{}, fmt.Errorf("%s: no recorded runs", path)
	}
	if label == "" {
		return file.Runs[len(file.Runs)-1], nil
	}
	for i := range file.Runs {
		if file.Runs[i].Label == label {
			return file.Runs[i], nil
		}
	}
	return bench.EngineBenchRun{}, fmt.Errorf("%s: no run labeled %q", path, label)
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		fatal(err)
		out = append(out, v)
	}
	return out
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "enginebench:", err)
		os.Exit(1)
	}
}
