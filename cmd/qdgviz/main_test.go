package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

// TestGoldenGeneratedQDG pins the DOT export of a generated topology's
// derived hop-layered queue order. Regenerate with:
//
//	go run ./cmd/qdgviz -algo graph-adaptive:fat-tree:leaves=4,spines=2 \
//	    > cmd/qdgviz/testdata/fat_tree_4x2.dot
func TestGoldenGeneratedQDG(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "fat_tree_4x2.dot"))
	if err != nil {
		t.Fatal(err)
	}
	algo, err := repro.NewAlgorithm("graph-adaptive:fat-tree:leaves=4,spines=2")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	rejected, err := emit(&sb, algo, true)
	if err != nil {
		t.Fatal(err)
	}
	if rejected {
		t.Fatal("derived queue order was rejected")
	}
	if sb.String() != string(want) {
		t.Errorf("DOT output changed; regenerate the golden file if intentional.\ngot %d bytes, want %d",
			sb.Len(), len(want))
	}
}
