// Command qdgviz builds the queue dependency graph of a routing algorithm,
// certifies its deadlock-freedom structure, and emits it as Graphviz DOT.
// It regenerates the paper's figures:
//
//	qdgviz -algo hypercube-adaptive:3   # Figure 1: 3-cube hung from 000
//	qdgviz -algo mesh-adaptive:3x3      # Figure 2: 3-mesh hung from (0,0)
//	qdgviz -algo shuffle-adaptive:3     # Figure 3: 8-node shuffle-exchange
//
// Generated topologies work the same way — the spec carries the generator
// and the QDG shows the derived hop-layered queue order:
//
//	qdgviz -algo graph-adaptive:dragonfly:a=2,g=5
//	qdgviz -algo graph-adaptive:random-regular:n=16,k=3,seed=7
//
// Static links are drawn solid, dynamic links dashed, and bubble-guarded
// ring entries dotted. Pipe the output through `dot -Tsvg` to render.
//
// When -verify is on (the default) and the queue order fails the
// acyclicity check, qdgviz still writes the DOT — the graph containing
// the cycle is exactly what you want to look at — and then exits 1.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
)

func main() {
	var (
		algoSpec = flag.String("algo", "hypercube-adaptive:3", "algorithm spec (see routesim -list)")
		verify   = flag.Bool("verify", true, "certify deadlock freedom before writing the graph")
		node     = flag.Int("node", -1, "print the Section 6 router design of this node (Figures 4-6) instead of the QDG")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	algo, err := repro.NewAlgorithm(*algoSpec)
	fatal(err)
	if *node >= 0 {
		desc, err := repro.DescribeNode(algo, *node)
		fatal(err)
		fmt.Print(desc)
		return
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		fatal(err)
		defer f.Close()
		w = f
	}
	rejected, err := emit(w, algo, *verify)
	fatal(err)
	if rejected {
		os.Exit(1)
	}
}

// emit writes the QDG of algo to w in DOT form. With verify set it first
// runs the acyclicity check; a failing order is reported on stderr and
// still rendered (rejected=true), so the offending cycle can be inspected.
func emit(w io.Writer, algo repro.Algorithm, verify bool) (rejected bool, err error) {
	if verify {
		if verr := repro.VerifyDeadlockFree(algo); verr != nil {
			fmt.Fprintf(os.Stderr, "qdgviz: REJECTED: %v (writing the graph anyway)\n", verr)
			rejected = true
		} else {
			fmt.Fprintf(os.Stderr, "qdgviz: %s on %s certified deadlock-free\n",
				algo.Name(), algo.Topology().Name())
		}
	}
	bw := bufio.NewWriter(w)
	if err := repro.WriteQDG(bw, algo); err != nil {
		return rejected, err
	}
	return rejected, bw.Flush()
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "qdgviz:", err)
		os.Exit(1)
	}
}
