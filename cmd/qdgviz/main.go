// Command qdgviz builds the queue dependency graph of a routing algorithm,
// certifies its deadlock-freedom structure, and emits it as Graphviz DOT.
// It regenerates the paper's figures:
//
//	qdgviz -algo hypercube-adaptive:3   # Figure 1: 3-cube hung from 000
//	qdgviz -algo mesh-adaptive:3x3      # Figure 2: 3-mesh hung from (0,0)
//	qdgviz -algo shuffle-adaptive:3     # Figure 3: 8-node shuffle-exchange
//
// Static links are drawn solid, dynamic links dashed, and bubble-guarded
// ring entries dotted. Pipe the output through `dot -Tsvg` to render.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		algoSpec = flag.String("algo", "hypercube-adaptive:3", "algorithm spec (see routesim -list)")
		verify   = flag.Bool("verify", true, "certify deadlock freedom before writing the graph")
		node     = flag.Int("node", -1, "print the Section 6 router design of this node (Figures 4-6) instead of the QDG")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	algo, err := repro.NewAlgorithm(*algoSpec)
	fatal(err)
	if *node >= 0 {
		desc, err := repro.DescribeNode(algo, *node)
		fatal(err)
		fmt.Print(desc)
		return
	}
	if *verify {
		fatal(repro.VerifyDeadlockFree(algo))
		fmt.Fprintf(os.Stderr, "qdgviz: %s on %s certified deadlock-free\n", algo.Name(), algo.Topology().Name())
	}
	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		fatal(err)
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	fatal(repro.WriteQDG(w, algo))
	fatal(w.Flush())
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "qdgviz:", err)
		os.Exit(1)
	}
}
